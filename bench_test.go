package mittos

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the experiment end-to-end at quick scale (full
// scale via `go run ./cmd/mittbench -full`); ns/op therefore measures the
// cost of reproducing that result, and the reported custom metrics carry
// the experiment's headline numbers so regressions in the *shape* of the
// reproduction show up alongside performance regressions.

import (
	"fmt"
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/experiments"
	"mittos/internal/kv"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

// reportTailMetrics attaches a series' headline percentiles to the bench.
func reportTailMetrics(b *testing.B, res *ExperimentResult, series string, prefix string) {
	b.Helper()
	s := res.FindSeries(series)
	if s == nil {
		return
	}
	b.ReportMetric(float64(s.Sample.Percentile(95))/1e6, prefix+"-p95-ms")
	b.ReportMetric(float64(s.Sample.Percentile(99))/1e6, prefix+"-p99-ms")
}

func benchExperiment(b *testing.B, id string) *ExperimentResult {
	b.Helper()
	var res *ExperimentResult
	for i := 0; i < b.N; i++ {
		r, err := RunExperiment(id, true)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	return res
}

// BenchmarkTable1 regenerates Table 1 (the NoSQL tail-tolerance survey).
func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1")
}

// BenchmarkFig3 regenerates Figure 3 (EC2 millisecond dynamism).
func BenchmarkFig3(b *testing.B) {
	var pmf1 float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3(experiments.QuickFig3Options())
		pmf1 = res.BusyPMF[1]
	}
	b.ReportMetric(pmf1, "P(1-busy)")
}

// BenchmarkFig4 regenerates Figure 4 (the four microbenchmarks).
func BenchmarkFig4(b *testing.B) {
	opt := experiments.QuickFig4Options()
	opt.Duration = 4 * time.Second
	var res *ExperimentResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig4(opt)
	}
	reportTailMetrics(b, res, "CFQ-LowPrioNoise/MittOS", "mitt")
	reportTailMetrics(b, res, "CFQ-LowPrioNoise/Base", "base")
}

// BenchmarkFig4Metrics is BenchmarkFig4 with the observability layer fully
// on (counters, histograms, unlimited span tracing) — the recording
// overhead budget is <=15% over the metrics-off run.
func BenchmarkFig4Metrics(b *testing.B) {
	opt := experiments.QuickFig4Options()
	opt.Duration = 4 * time.Second
	opt.Metrics = true
	opt.TraceIOs = -1
	var res *ExperimentResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig4(opt)
	}
	if len(res.Metrics) == 0 {
		b.Fatal("metrics enabled but no snapshots attached")
	}
	reportTailMetrics(b, res, "CFQ-LowPrioNoise/MittOS", "mitt")
}

// BenchmarkFig5 regenerates Figure 5 (MittCFQ vs Hedged/Clone/AppTO).
func BenchmarkFig5(b *testing.B) {
	res := benchExperiment(b, "fig5")
	reportTailMetrics(b, res, "MittCFQ", "mitt")
	reportTailMetrics(b, res, "Hedged", "hedged")
}

// BenchmarkFig6 regenerates Figure 6 (tail amplified by scale).
func BenchmarkFig6(b *testing.B) {
	res := benchExperiment(b, "fig6")
	reportTailMetrics(b, res, "MittCFQ-SF10", "mitt-sf10")
	reportTailMetrics(b, res, "Hedged-SF10", "hedged-sf10")
}

// BenchmarkFig7 regenerates Figure 7 (MittCache vs Hedged).
func BenchmarkFig7(b *testing.B) {
	res := benchExperiment(b, "fig7")
	reportTailMetrics(b, res, "MittCache-SF1", "mitt")
	reportTailMetrics(b, res, "Hedged-SF1", "hedged")
}

// BenchmarkFig8 regenerates Figure 8 (hedging backfires on a shared-CPU
// SSD box).
func BenchmarkFig8(b *testing.B) {
	res := benchExperiment(b, "fig8")
	reportTailMetrics(b, res, "MittSSD", "mitt")
	reportTailMetrics(b, res, "Hedged", "hedged")
}

// BenchmarkFig9 regenerates Figure 9 (prediction accuracy on five traces).
func BenchmarkFig9(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Fig9(experiments.QuickFig9Options())
		worst = 0
		for _, r := range rows {
			if r.Layer != "Naive" && r.Acc.InaccuracyRate() > worst {
				worst = r.Acc.InaccuracyRate()
			}
		}
	}
	b.ReportMetric(100*worst, "worst-inacc-%")
}

// BenchmarkFig10 regenerates Figure 10 (sensitivity to injected error).
func BenchmarkFig10(b *testing.B) {
	res := benchExperiment(b, "fig10")
	reportTailMetrics(b, res, "NoError", "noerror")
	reportTailMetrics(b, res, "FalsePos-100%", "fp100")
}

// BenchmarkFig11 regenerates Figure 11 (macrobenchmark workload mix).
func BenchmarkFig11(b *testing.B) {
	res := benchExperiment(b, "fig11")
	reportTailMetrics(b, res, "MittCFQ", "mitt")
	reportTailMetrics(b, res, "Hedged", "hedged")
}

// BenchmarkFig12 regenerates Figure 12 (C3 vs sub-second burstiness).
func BenchmarkFig12(b *testing.B) {
	res := benchExperiment(b, "fig12")
	reportTailMetrics(b, res, "C3/1B2F-1sec", "c3-fast")
	reportTailMetrics(b, res, "C3/1B2F-5sec", "c3-slow")
}

// BenchmarkFig13 regenerates Figure 13 (LevelDB+Riak two-level EBUSY).
func BenchmarkFig13(b *testing.B) {
	res := benchExperiment(b, "fig13")
	reportTailMetrics(b, res, "MittCFQ", "mitt")
	reportTailMetrics(b, res, "Base", "base")
}

// BenchmarkAllInOne regenerates §7.8.5 (three Mitt layers co-existing).
func BenchmarkAllInOne(b *testing.B) {
	res := benchExperiment(b, "allinone")
	reportTailMetrics(b, res, "cache-user(0.2ms)/Mitt", "cache-mitt")
	reportTailMetrics(b, res, "cache-user(0.2ms)/Base", "cache-base")
}

// BenchmarkWrites regenerates §7.8.6 (write latencies unaffected by noise).
func BenchmarkWrites(b *testing.B) {
	res := benchExperiment(b, "writes")
	reportTailMetrics(b, res, "Base", "noisy")
	reportTailMetrics(b, res, "NoNoise", "clean")
}

// BenchmarkFailslow regenerates the graceful-degradation matrix (every
// strategy through the composite fault scenario).
func BenchmarkFailslow(b *testing.B) {
	res := benchExperiment(b, "failslow")
	reportTailMetrics(b, res, "MittOS", "mitt")
	reportTailMetrics(b, res, "Base", "base")
}

// BenchmarkYCSBMix regenerates the YCSB A/B/F mixed-workload matrix (every
// read strategy paired with its write-side mirror over quorum puts).
func BenchmarkYCSBMix(b *testing.B) {
	res := benchExperiment(b, "ycsbmix")
	reportTailMetrics(b, res, "A/MittOS put", "mitt-put")
	reportTailMetrics(b, res, "A/Base put", "base-put")
}

// BenchmarkLoadSweep regenerates the offered-load sweep (calibration plus
// the full rate × strategy × path matrix of open-loop Poisson legs). The
// custom metrics carry the headline comparison: SLO attainment at the
// highest pre-saturation rate for MittOS vs Base on the get path.
func BenchmarkLoadSweep(b *testing.B) {
	res := benchExperiment(b, "loadsweep")
	var kneeGet struct{ base, mitt float64 }
	knee := 0.0
	for _, p := range res.Sweep {
		if p.Path == "get" && p.RateMult < 1.0 && p.RateMult > knee {
			knee = p.RateMult
		}
	}
	for _, p := range res.Sweep {
		if p.Path != "get" || p.RateMult != knee {
			continue
		}
		switch p.Strategy {
		case "Base":
			kneeGet.base = p.AttainPct
		case "MittOS":
			kneeGet.mitt = p.AttainPct
		}
	}
	b.ReportMetric(kneeGet.mitt, "mitt-attain-%")
	b.ReportMetric(kneeGet.base, "base-attain-%")
}

// BenchmarkPutAdmission measures the accepted durable-put round trip: WAL
// group assembly, SLO admission through MittCFQ, dispatch, completion,
// memtable apply, and the memory-latency ack — the write-path twin of
// BenchmarkCFQSubmitDispatch, and allocation-free in steady state.
func BenchmarkPutAdmission(b *testing.B) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerCFQ, Mitt: true, Seed: 1})
	cfg := kv.DefaultConfig(0, 100<<30)
	cfg.MemtableCap = 1 << 30 // isolate the WAL path: never flush
	var ids blockio.IDGen
	st := kv.New(eng, cfg, s.Target(), &ids)
	done := func(error) {}
	put := func() {
		st.PutDurable(7, time.Second, done)
		eng.Run()
	}
	for i := 0; i < 64; i++ { // warm every pool on the path
		put()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		put()
	}
}

// BenchmarkAdmissionDecision measures the cost of one MittOS admission
// decision in the simulator — the analogue of the paper's <5µs syscall
// claim (here: pure prediction cost, no kernel crossing).
func BenchmarkAdmissionDecision(b *testing.B) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerNoop, Mitt: true, Seed: 1})
	for i := 0; i < 16; i++ {
		s.Read(int64(i+1)*(40<<30), 1<<20, 0, func(error) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.PredictWait(int64(i%900)<<30, 4096)
	}
}

// BenchmarkPredictWaitCFQ measures MittCFQ's admission prediction with P
// process nodes queued — the path the augmented service trees turned from an
// O(P) walk into O(log P) prefix queries, so ns/op should stay nearly flat
// as P grows.
func BenchmarkPredictWaitCFQ(b *testing.B) {
	for _, procs := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			eng := NewEngine()
			s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerCFQ, Mitt: true, Seed: 1})
			var ids blockio.IDGen
			for p := 0; p < procs; p++ {
				for k := 0; k < 2; k++ {
					req := &Request{ID: ids.Next(), Op: OpRead,
						Offset: int64(p*7+k+1) * (1 << 30), Size: 1 << 20, Proc: p + 2}
					s.Target().SubmitSLO(req, func(error) {})
				}
			}
			_ = s.PredictWait(100<<30, 4096) // warm the replay scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.PredictWait(int64(i%900)<<30, 4096)
			}
		})
	}
}

// BenchmarkCFQSubmitDispatch measures the full MittCFQ accept round trip:
// admission, tolerable-table entry, CFQ dispatch, disk service, completion,
// and recycling of every pooled context — the per-IO cost of the busiest
// experiment path.
func BenchmarkCFQSubmitDispatch(b *testing.B) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerCFQ, Mitt: true, Seed: 1})
	var pool blockio.Pool
	var ids blockio.IDGen
	var cur *blockio.Request
	done := func(error) { cur.Release() }
	submit := func(off int64) {
		cur = pool.Get()
		cur.ID = ids.Next()
		cur.Op = blockio.Read
		cur.Offset, cur.Size = off, 4096
		cur.Proc = 1
		cur.Deadline = time.Second
		s.Target().SubmitSLO(cur, done)
		eng.Run()
	}
	for i := 0; i < 64; i++ { // warm every pool on the path
		submit(int64(i+1) * (10 << 30))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit(int64(i%900) << 30)
	}
}

var seekCostSink time.Duration

// BenchmarkSeekCost measures one profile lookup — the innermost operation of
// every SSTF-mirror replay step, now a direct-index table instead of a
// division plus bucket clamp.
func BenchmarkSeekCost(b *testing.B) {
	prof := disk.ProfileTwin(disk.DefaultConfig(), 42, disk.DefaultProfilerOptions())
	b.ReportAllocs()
	b.ResetTimer()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += prof.SeekCost(int64(i%997) << 27)
	}
	seekCostSink = sink
}

// BenchmarkEngineThroughput measures raw event-loop throughput, the floor
// under every experiment's wall-clock time. It drives the fire-and-forget
// After path the device models use; with the engine's freelist warm,
// steady-state scheduling is allocation-free.
func BenchmarkEngineThroughput(b *testing.B) {
	eng := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(time.Microsecond, tick)
		}
	}
	eng.After(time.Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

// BenchmarkEngineCancelHeavy measures hedged-style schedule-then-cancel
// churn: 4096 request streams each re-arm a 30 ms timeout as a shared ~3 µs
// tick visits them round-robin (each stream every ~12 ms),
// so every timeout is cancelled long before it fires. This is the pattern
// Hedged/Tied/AppTO strategies and MittCFQ bumped-entry cancels put on the
// queue. The wheel sub-run uses the engine's O(1) intrusive unlink; the heap
// sub-run drives the retained min-heap oracle, which pays tombstone
// accumulation plus periodic compaction sweeps for the same workload.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	const (
		streams = 4096
		tickGap = 3 * time.Microsecond
		timeout = 30 * time.Millisecond
	)
	b.Run("wheel", func(b *testing.B) {
		eng := sim.NewEngine()
		nop := func() {}
		timeouts := make([]*sim.Event, streams)
		n, cur := 0, 0
		var tick func()
		tick = func() {
			s := cur
			cur = (cur + 1) % streams
			if timeouts[s] != nil {
				timeouts[s].Cancel()
			}
			timeouts[s] = eng.Schedule(timeout, nop)
			n++
			if n < b.N {
				eng.After(tickGap, tick)
			}
		}
		eng.After(tickGap, tick)
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
	b.Run("heap", func(b *testing.B) {
		eng := sim.NewEventHeap()
		nop := func() {}
		timeouts := make([]*sim.HeapEvent, streams)
		n, cur := 0, 0
		var tick func()
		tick = func() {
			s := cur
			cur = (cur + 1) % streams
			if timeouts[s] != nil {
				timeouts[s].Cancel()
			}
			timeouts[s] = eng.Schedule(timeout, nop)
			n++
			if n < b.N {
				eng.After(tickGap, tick)
			}
		}
		eng.After(tickGap, tick)
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
}

// BenchmarkEngineMixedHorizon interleaves µs-scale device events with ms-
// and multi-second deadlines — the shape of a real experiment leg, where
// disk completions share the queue with SLO timeouts and probe periods. The
// spread keeps several wheel levels occupied so cascading is exercised on
// the wheel sub-run, while the heap sub-run pays O(log n) sifts against the
// long-lived far-future entries.
func BenchmarkEngineMixedHorizon(b *testing.B) {
	b.Run("wheel", func(b *testing.B) {
		eng := sim.NewEngine()
		nop := func() {}
		i := 0
		var tick func()
		tick = func() {
			i++
			switch {
			case i%4096 == 0:
				eng.After(5*time.Second, nop)
			case i%256 == 0:
				eng.After(300*time.Millisecond, nop)
			case i%16 == 0:
				eng.After(4*time.Millisecond, nop)
			}
			if i < b.N {
				eng.After(2*time.Microsecond, tick)
			}
		}
		eng.After(2*time.Microsecond, tick)
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
	b.Run("heap", func(b *testing.B) {
		eng := sim.NewEventHeap()
		nop := func() {}
		i := 0
		var tick func()
		tick = func() {
			i++
			switch {
			case i%4096 == 0:
				eng.After(5*time.Second, nop)
			case i%256 == 0:
				eng.After(300*time.Millisecond, nop)
			case i%16 == 0:
				eng.After(4*time.Millisecond, nop)
			}
			if i < b.N {
				eng.After(2*time.Microsecond, tick)
			}
		}
		eng.After(2*time.Microsecond, tick)
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
}

// BenchmarkMittSMR measures the §8.2 SMR extension: deadline probes under
// write churn with band cleaning, reporting the accepted-read tail and the
// clean-rejection count.
func BenchmarkMittSMR(b *testing.B) {
	var worstMs float64
	var rejects uint64
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		cfg := DefaultSMRConfig()
		cfg.CacheBytes = 128 << 20
		mitt, drive := NewSMRStack(eng, cfg, 1)
		_ = drive
		wrng := NewRNG(2, "writes")
		prng := NewRNG(3, "probes")
		var ids uint64
		var worst time.Duration
		eng.NewTicker(15*time.Millisecond, func() {
			ids++
			req := &Request{ID: ids, Op: OpWrite, Offset: wrng.Int63n(900<<30) &^ 4095, Size: 2 << 20}
			mitt.SubmitSLO(req, func(error) {})
		})
		eng.NewTicker(20*time.Millisecond, func() {
			ids++
			start := eng.Now()
			req := &Request{ID: ids, Op: OpRead, Offset: prng.Int63n(900 << 30), Size: 4096,
				Deadline: 25 * time.Millisecond}
			mitt.SubmitSLO(req, func(err error) {
				if err == nil {
					if lat := eng.Now().Sub(start); lat > worst {
						worst = lat
					}
				}
			})
		})
		eng.RunFor(30 * time.Second)
		worstMs = float64(worst) / 1e6
		rejects = mitt.RejectedByClean()
	}
	b.ReportMetric(worstMs, "worst-accepted-ms")
	b.ReportMetric(float64(rejects), "clean-rejects")
}

// BenchmarkMittVMM measures the §8.2 VMM extension: frozen-VM rejection vs
// parking on a contended hypervisor.
func BenchmarkMittVMM(b *testing.B) {
	var p95ms float64
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		host := NewVMMHost(eng, DefaultVMMConfig(), []*GuestVM{
			{ID: 0, CPUBound: true}, {ID: 1, CPUBound: true}, {ID: 2, CPUBound: true},
		})
		idle := NewVMMHost(eng, DefaultVMMConfig(), []*GuestVM{{ID: 0}})
		lat := newBenchSample()
		rng := NewRNG(9, "vmm")
		eng.NewTicker(5*time.Millisecond, func() {
			start := eng.Now()
			host.Deliver(rng.Intn(3), 10*time.Millisecond, func(err error) {
				if IsBusy(err) {
					idle.Deliver(0, 0, func(error) { lat.Add(eng.Now().Sub(start)) })
					return
				}
				lat.Add(eng.Now().Sub(start))
			})
		})
		eng.RunFor(20 * time.Second)
		p95ms = float64(lat.Percentile(95)) / 1e6
	}
	b.ReportMetric(p95ms, "mitt-p95-ms")
}

// BenchmarkThroughputSLO measures the §8.1 token-bucket admission cost.
func BenchmarkThroughputSLO(b *testing.B) {
	eng := NewEngine()
	stack := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: true, Seed: 1})
	ts := NewThroughputSLO(eng, stack.Target(), DefaultOptions())
	ts.SetContract(1, 1e9, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := &Request{ID: uint64(i + 1), Op: OpRead, Offset: int64(i%1000) * (1 << 20),
			Size: 4096, Proc: 1}
		ts.SubmitSLO(req, func(error) {})
		if i%1024 == 0 {
			eng.Run() // drain periodically so queues stay bounded
		}
	}
	eng.Run()
}

// newBenchSample wraps internal/stats.Sample, which sorts once per query
// batch — the hand-rolled insertion sort it replaced was O(n²) and
// quadratic at full-scale sample sizes.
func newBenchSample() *benchSample { return &benchSample{s: stats.NewSample(1 << 12)} }

type benchSample struct{ s *stats.Sample }

func (b *benchSample) Add(d time.Duration)                { b.s.Add(d) }
func (b *benchSample) Percentile(p float64) time.Duration { return b.s.Percentile(p) }
