package mittos

import (
	"testing"
	"time"
)

func TestStackReadIdleDiskAccepts(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: true, Seed: 1})
	var err error = ErrBusy
	s.Read(100<<30, 4096, 30*time.Millisecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("idle read: %v", err)
	}
}

func TestStackReadBusyDiskRejects(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: true, Seed: 1})
	for i := 0; i < 30; i++ {
		s.Read(int64(i+1)*(20<<30), 1<<20, 0, func(error) {})
	}
	var err error
	s.Read(900<<30, 4096, 10*time.Millisecond, func(e error) { err = e })
	if !IsBusy(err) {
		// The rejection is delivered via a scheduled event; run briefly.
		eng.RunFor(time.Millisecond)
	}
	eng.Run()
	if !IsBusy(err) {
		t.Fatalf("busy read: %v, want EBUSY", err)
	}
	var be *BusyError
	if b, ok := err.(*BusyError); ok {
		be = b
	}
	if be == nil || be.PredictedWait <= 10*time.Millisecond {
		t.Fatalf("BusyError wait hint missing or implausible: %v", err)
	}
}

func TestStackVanillaIgnoresDeadlines(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: false, Seed: 1})
	for i := 0; i < 30; i++ {
		s.Read(int64(i+1)*(20<<30), 1<<20, 0, func(error) {})
	}
	var err error = ErrBusy
	s.Read(900<<30, 4096, time.Millisecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("vanilla stack returned %v; deadlines must be ignored", err)
	}
}

func TestStackSSD(t *testing.T) {
	eng := NewEngine()
	cfg := DefaultSSDConfig()
	cfg.Channels = 4
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 16
	cfg.PagesPerBlock = 64
	cfg.OverprovisionBlocks = 4
	s := NewStack(eng, StackConfig{Device: DeviceSSD, SSDConfig: cfg, Mitt: true, Seed: 1})
	// A write occupies chip 0; a tight-deadline read behind it is rejected.
	s.Write(0, cfg.PageSize, func(error) {})
	var err error
	s.Read(0, 4096, 300*time.Microsecond, func(e error) { err = e })
	eng.Run()
	if !IsBusy(err) {
		t.Fatalf("SSD read behind program: %v, want EBUSY", err)
	}
}

func TestStackAddrCheck(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: true, CachePages: 1000, Seed: 1})
	s.Cache.Warm(0, 4096)
	if err := s.AddrCheck(0, 4096, 100*time.Microsecond); err != nil {
		t.Fatalf("resident addrcheck: %v", err)
	}
	s.Cache.EvictRange(0, 4096)
	if err := s.AddrCheck(0, 4096, 100*time.Microsecond); !IsBusy(err) {
		t.Fatalf("evicted addrcheck: %v, want EBUSY", err)
	}
	eng.Run()
}

func TestStackAddrCheckRequiresCache(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: true, Seed: 1})
	if err := s.AddrCheck(0, 4096, time.Millisecond); err == nil || IsBusy(err) {
		t.Fatalf("cache-less AddrCheck: %v, want configuration error", err)
	}
}

func TestStackPredictWaitGrowsWithQueue(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerNoop, Mitt: true, Seed: 1})
	if w := s.PredictWait(500<<30, 4096); w != 0 {
		t.Fatalf("idle wait = %v", w)
	}
	for i := 0; i < 10; i++ {
		s.Read(int64(i+1)*(50<<30), 1<<20, 0, func(error) {})
	}
	if w := s.PredictWait(900<<30, 4096); w < 10*time.Millisecond {
		t.Fatalf("queued wait = %v, want tens of ms", w)
	}
	eng.Run()
}

func TestClusterFacade(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng, 0, NewRNG(1, "net"))
	tmpl := NodeConfig{
		Device:      DeviceDisk,
		DiskConfig:  DefaultDiskConfig(),
		UseCFQ:      true,
		Mitt:        true,
		MittOptions: DefaultOptions(),
		Keys:        5000,
		DiskProfile: DiskProfile(),
	}
	c := NewCluster(eng, net, 3, 3, tmpl, NewRNG(2, "nodes"))
	strat := &MittOSStrategy{C: c, Deadline: 20 * time.Millisecond}
	var res GetResult
	strat.Get(7, func(r GetResult) { res = r })
	eng.Run()
	if res.Err != nil {
		t.Fatalf("facade cluster get: %v", res.Err)
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	if _, err := RunExperiment("fig99", true); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestExperimentsListComplete(t *testing.T) {
	ids := Experiments()
	want := []string{"allinone", "failslow", "fig10", "fig11", "fig12", "fig13",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "loadsweep",
		"table1", "writes", "ycsbmix"}
	if len(ids) != len(want) {
		t.Fatalf("experiments = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("experiments = %v, want %v", ids, want)
		}
	}
}

func TestRunExperimentQuickSmoke(t *testing.T) {
	// One cheap end-to-end run through the facade.
	res, err := RunExperiment("writes", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "writes" || len(res.Series) == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestStackDeadlineScheduler(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Scheduler: SchedulerDeadline,
		Mitt: true, Seed: 1})
	for i := 0; i < 15; i++ {
		s.Read(int64(i+1)*(40<<30), 1<<20, 0, func(error) {})
	}
	var err error
	s.Read(900<<30, 4096, 10*time.Millisecond, func(e error) { err = e })
	eng.Run()
	if !IsBusy(err) {
		t.Fatalf("deadline-sched busy read: %v, want EBUSY", err)
	}
	if s.Accuracy().Total() != 0 {
		t.Fatal("non-shadow stack should not accumulate accuracy")
	}
}

func TestSeedRobustness(t *testing.T) {
	// The headline ordering (MittCFQ beats Hedged at p95) must hold under
	// fresh noise timelines, not just the default seed.
	for _, seed := range []int64{2, 3} {
		res, err := RunExperimentSeed("fig5", true, seed)
		if err != nil {
			t.Fatal(err)
		}
		mitt := res.FindSeries("MittCFQ").Sample
		hedged := res.FindSeries("Hedged").Sample
		if mitt.Percentile(95) >= hedged.Percentile(95) {
			t.Fatalf("seed %d: MittCFQ p95 %v not better than Hedged %v",
				seed, mitt.Percentile(95), hedged.Percentile(95))
		}
	}
}

func TestStackSSDWithCache(t *testing.T) {
	eng := NewEngine()
	cfg := DefaultSSDConfig()
	cfg.Channels = 4
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 16
	cfg.PagesPerBlock = 64
	cfg.OverprovisionBlocks = 4
	s := NewStack(eng, StackConfig{Device: DeviceSSD, SSDConfig: cfg,
		Mitt: true, CachePages: 1000, Seed: 1})
	// A cached page serves at memory speed even while the chip programs.
	s.Cache.Warm(0, 4096)
	s.Write(0, cfg.PageSize, func(error) {})
	var err error = ErrBusy
	var lat time.Duration
	start := eng.Now()
	s.Read(0, 4096, 100*time.Microsecond, func(e error) {
		err = e
		lat = eng.Now().Sub(start)
	})
	eng.Run()
	if err != nil {
		t.Fatalf("cached SSD read: %v", err)
	}
	if lat > time.Millisecond {
		t.Fatalf("cached read took %v; should not touch the busy chip", lat)
	}
}

func TestStackVanillaWithCache(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: false,
		CachePages: 1000, Seed: 1})
	s.Cache.Warm(0, 4096)
	var err error = ErrBusy
	s.Read(0, 4096, time.Nanosecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("vanilla cached read: %v (deadline must be ignored)", err)
	}
	if s.PredictWait(0, 4096) != 0 {
		t.Fatal("vanilla stack should predict nothing")
	}
}

func TestStackWriteCompletes(t *testing.T) {
	eng := NewEngine()
	s := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: true, Seed: 1})
	done := false
	s.Write(4096, 4096, func(e error) {
		if e != nil {
			t.Fatalf("write: %v", e)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("write never completed")
	}
}
