package mittos

import (
	"testing"
	"time"
)

func TestSMRStackRejectsDuringClean(t *testing.T) {
	eng := NewEngine()
	cfg := DefaultSMRConfig()
	cfg.CacheBytes = 64 << 20
	mitt, drive := NewSMRStack(eng, cfg, 1)
	rng := NewRNG(2, "writes")
	var ids uint64
	write := func() {
		ids++
		req := &Request{ID: ids, Op: OpWrite, Offset: rng.Int63n(900<<30) &^ 4095, Size: 1 << 20}
		mitt.SubmitSLO(req, func(error) {})
	}
	for drive.CacheFill() < cfg.CleanHighWater {
		write()
		eng.RunFor(time.Millisecond)
	}
	for i := 0; i < 1000 && mitt.CleanRemaining() == 0; i++ {
		eng.RunFor(10 * time.Millisecond)
	}
	if mitt.CleanRemaining() == 0 {
		t.Fatal("no clean observed")
	}
	ids++
	var err error
	req := &Request{ID: ids, Op: OpRead, Offset: 500 << 30, Size: 4096,
		Deadline: 20 * time.Millisecond}
	mitt.SubmitSLO(req, func(e error) { err = e })
	eng.RunFor(5 * time.Millisecond)
	if !IsBusy(err) {
		t.Fatalf("read during band clean: %v, want EBUSY", err)
	}
	eng.Run()
}

func TestThroughputSLOFacade(t *testing.T) {
	eng := NewEngine()
	stack := NewStack(eng, StackConfig{Device: DeviceDisk, Mitt: true, Seed: 1})
	ts := NewThroughputSLO(eng, stack.Target(), DefaultOptions())
	ts.SetContract(5, 50, 2)
	busy, ok := 0, 0
	for i := 0; i < 10; i++ {
		req := &Request{ID: uint64(i + 1), Op: OpRead, Offset: int64(i) * (10 << 30),
			Size: 4096, Proc: 5}
		ts.SubmitSLO(req, func(err error) {
			if IsBusy(err) {
				busy++
			} else if err == nil {
				ok++
			}
		})
	}
	eng.Run()
	if ok != 2 || busy != 8 {
		t.Fatalf("burst-2 contract: ok=%d busy=%d", ok, busy)
	}
}

func TestVMMFacade(t *testing.T) {
	eng := NewEngine()
	host := NewVMMHost(eng, DefaultVMMConfig(), []*GuestVM{
		{ID: 0, CPUBound: true}, {ID: 1, CPUBound: true}, {ID: 2, CPUBound: true},
	})
	var err error
	host.Deliver(2, 10*time.Millisecond, func(e error) { err = e })
	eng.RunFor(time.Millisecond)
	if !IsBusy(err) {
		t.Fatalf("frozen-VM deliver: %v", err)
	}
}

func TestWaitHintStrategyConstructor(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng, 0, NewRNG(1, "net"))
	tmpl := NodeConfig{
		Device: DeviceDisk, DiskConfig: DefaultDiskConfig(), UseCFQ: true,
		Mitt: true, MittOptions: DefaultOptions(), Keys: 1000,
		DiskProfile: DiskProfile(),
	}
	c := NewCluster(eng, net, 3, 3, tmpl, NewRNG(2, "nodes"))
	s := MittOSWaitHintStrategy(c, 15*time.Millisecond)
	if !s.UseWaitHint {
		t.Fatal("wait hint not enabled")
	}
	var res GetResult
	s.Get(1, func(r GetResult) { res = r })
	eng.Run()
	if res.Err != nil {
		t.Fatalf("get: %v", res.Err)
	}
}

func TestTiedStrategyFacade(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng, 0, NewRNG(1, "net"))
	tmpl := NodeConfig{
		Device: DeviceDisk, DiskConfig: DefaultDiskConfig(), UseCFQ: true,
		Keys: 1000, DiskProfile: DiskProfile(), MittOptions: DefaultOptions(),
	}
	c := NewCluster(eng, net, 3, 3, tmpl, NewRNG(2, "nodes"))
	s := &TiedStrategy{C: c, RNG: NewRNG(3, "tied")}
	var res GetResult
	s.Get(1, func(r GetResult) { res = r })
	eng.Run()
	if res.Err != nil {
		t.Fatalf("tied get: %v", res.Err)
	}
}
