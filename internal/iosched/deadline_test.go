package iosched

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/sim"
)

func newDeadlineRig(svc time.Duration) (*sim.Engine, *slowDevice, *DeadlineSched) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: svc}
	return eng, dev, NewDeadline(eng, DefaultDeadlineConfig(), dev)
}

func dlReq(op blockio.Op, off int64) *blockio.Request {
	r := &blockio.Request{Op: op, Offset: off, Size: 4096, Proc: 1}
	r.OnComplete = func(*blockio.Request) {}
	return r
}

func TestDeadlineSortedBatching(t *testing.T) {
	eng, dev, d := newDeadlineRig(time.Millisecond)
	// First request departs immediately; the rest dispatch in offset order.
	d.Submit(dlReq(blockio.Read, 100<<20))
	for _, off := range []int64{500 << 20, 200 << 20, 400 << 20, 300 << 20} {
		d.Submit(dlReq(blockio.Read, off))
	}
	eng.Run()
	got := offsets(dev.order)
	want := []int64{100 << 20, 200 << 20, 300 << 20, 400 << 20, 500 << 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want sorted %v", got, want)
		}
	}
}

func TestDeadlineReadsPreferredOverWrites(t *testing.T) {
	eng, dev, d := newDeadlineRig(time.Millisecond)
	d.Submit(dlReq(blockio.Read, 1<<20)) // occupies the device
	d.Submit(dlReq(blockio.Write, 2<<20))
	d.Submit(dlReq(blockio.Read, 3<<20))
	eng.Run()
	if dev.order[1].Op != blockio.Read {
		t.Fatalf("write dispatched before queued read: %v", offsets(dev.order))
	}
}

func TestDeadlineWritesNotStarvedForever(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	cfg := DefaultDeadlineConfig()
	cfg.FifoBatch = 2
	cfg.WritesStarved = 2
	d := NewDeadline(eng, cfg, dev)
	// Interleave: continuous reads, one write.
	w := dlReq(blockio.Write, 900<<20)
	d.Submit(dlReq(blockio.Read, 1<<20))
	d.Submit(w)
	for i := 2; i < 14; i++ {
		d.Submit(dlReq(blockio.Read, int64(i)<<20))
	}
	eng.Run()
	pos := -1
	for i, r := range dev.order {
		if r == w {
			pos = i
		}
	}
	if pos == -1 {
		t.Fatal("write never served")
	}
	if pos == len(dev.order)-1 {
		t.Fatal("write served dead last; starvation bound inert")
	}
}

func TestDeadlineExpiredReadPreemptsElevator(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: 30 * time.Millisecond}
	cfg := DefaultDeadlineConfig()
	cfg.ReadExpire = 50 * time.Millisecond
	cfg.FifoBatch = 4
	d := NewDeadline(eng, cfg, dev)
	d.Submit(dlReq(blockio.Read, 500<<20)) // in service; head ends at 500MB
	far := dlReq(blockio.Read, 1<<20)      // far behind the head
	d.Submit(far)
	// A stream of near-head arrivals would normally keep winning the
	// elevator...
	stop := false
	i := 0
	var feed func()
	feed = func() {
		if stop {
			return
		}
		i++
		d.Submit(dlReq(blockio.Read, (500+int64(i))<<20))
		eng.Schedule(25*time.Millisecond, feed)
	}
	eng.Schedule(time.Millisecond, feed)
	var servedAt sim.Time
	far.OnComplete = func(*blockio.Request) {
		servedAt = eng.Now()
		stop = true
	}
	eng.RunUntil(sim.Time(2 * sim.Second))
	if servedAt == 0 {
		t.Fatal("far request never served")
	}
	// ...but FIFO expiry guarantees service within ~expire + a batch.
	if servedAt.Duration() > 400*time.Millisecond {
		t.Fatalf("far request served at %v; expiry did not preempt", servedAt)
	}
}

func TestDeadlineCanceledDropped(t *testing.T) {
	eng, dev, d := newDeadlineRig(time.Millisecond)
	d.Submit(dlReq(blockio.Read, 1<<20))
	victim := dlReq(blockio.Read, 2<<20)
	d.Submit(victim)
	victim.Cancel()
	eng.Run()
	if len(dev.order) != 1 {
		t.Fatalf("device saw %d IOs; canceled not dropped", len(dev.order))
	}
	if d.InFlight() != 0 {
		t.Fatalf("InFlight = %d", d.InFlight())
	}
}

func TestDeadlineOverDisk(t *testing.T) {
	eng := sim.NewEngine()
	dsk := disk.New(eng, disk.DefaultConfig(), sim.NewRNG(13, "dl-disk"))
	d := NewDeadline(eng, DefaultDeadlineConfig(), dsk)
	rng := sim.NewRNG(14, "offs")
	done := 0
	for i := 0; i < 50; i++ {
		r := dlReq(blockio.Read, rng.Int63n(900<<30))
		r.OnComplete = func(*blockio.Request) { done++ }
		d.Submit(r)
	}
	eng.Run()
	if done != 50 {
		t.Fatalf("completed %d of 50", done)
	}
	if d.Dispatched() != 50 {
		t.Fatalf("dispatched %d", d.Dispatched())
	}
}
