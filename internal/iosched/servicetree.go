// Augmented red-black service tree: the per-class round-robin of CFQ process
// nodes, keyed by a monotonically increasing arrival sequence (so in-order
// traversal is exactly the old slice-based round-robin order), with each
// tree node carrying the sum of its subtree's slice-clamped predicted IO
// totals (procNode.contrib). The aggregate turns MittCFQ's O(P)
// "sum the nodes ahead" admission walk into one O(log P) prefix query:
//
//	sum(nodes before X in RR order) = prefixBefore(X)
//	sum(all nodes on the tree)      = total()
//
// The invariant — n.sum == sum(left) + sum(right) + n.pn.contrib — is
// maintained on append (path update on the way down), popMin (ancestor
// subtraction before splice), contrib changes (delta propagation to the
// root), and rotations (bottom-up recompute from children), and is checked
// exhaustively by FuzzCFQAggregates.
package iosched

import "time"

// stNode is one service-tree slot holding a process node.
type stNode struct {
	key    uint64
	pn     *procNode
	sum    time.Duration // subtree aggregate of pn.contrib
	color  rbColor
	left   *stNode
	right  *stNode
	parent *stNode
}

// serviceTree is one class's round-robin of process nodes.
type serviceTree struct {
	root *stNode
	size int
	free *stNode // recycled nodes, chained via right
}

func stSum(n *stNode) time.Duration {
	if n == nil {
		return 0
	}
	return n.sum
}

func stColor(n *stNode) rbColor {
	if n == nil {
		return rbBlack
	}
	return n.color
}

func (t *serviceTree) getNode() *stNode {
	if n := t.free; n != nil {
		t.free = n.right
		*n = stNode{}
		return n
	}
	return &stNode{}
}

func (t *serviceTree) putNode(n *stNode) {
	*n = stNode{}
	n.right = t.free
	t.free = n
}

// append inserts pn at the tail of the round-robin. key must exceed every
// key already in the tree (the caller's monotonic sequence guarantees it),
// so the insert always descends the right spine.
func (t *serviceTree) append(pn *procNode, key uint64) {
	n := t.getNode()
	n.key, n.pn, n.color, n.sum = key, pn, rbRed, pn.contrib
	t.size++
	pn.st = n
	if t.root == nil {
		n.color = rbBlack
		t.root = n
		return
	}
	cur := t.root
	for {
		cur.sum += pn.contrib
		if cur.right == nil {
			cur.right = n
			n.parent = cur
			break
		}
		cur = cur.right
	}
	t.insertFixup(n)
}

// popMin removes and returns the head of the round-robin, or nil.
func (t *serviceTree) popMin() *procNode {
	if t.root == nil {
		return nil
	}
	z := t.root
	for z.left != nil {
		z = z.left
	}
	pn := z.pn
	for a := z.parent; a != nil; a = a.parent {
		a.sum -= pn.contrib
	}
	t.size--
	x, xParent := z.right, z.parent
	t.transplant(z, z.right)
	if z.color == rbBlack {
		t.deleteFixup(x, xParent)
	}
	t.putNode(z)
	pn.st = nil
	return pn
}

// update adds delta to n's aggregate and every ancestor's — called when a
// member node's contrib changes in place.
func (t *serviceTree) update(n *stNode, delta time.Duration) {
	for ; n != nil; n = n.parent {
		n.sum += delta
	}
}

// prefixBefore returns the contrib sum of every node ordered before x —
// the nodes CFQ's round-robin serves ahead of x's process.
func (t *serviceTree) prefixBefore(x *stNode) time.Duration {
	sum := stSum(x.left)
	for x.parent != nil {
		if x == x.parent.right {
			sum += x.parent.pn.contrib + stSum(x.parent.left)
		}
		x = x.parent
	}
	return sum
}

// total returns the contrib sum of every node on the tree.
func (t *serviceTree) total() time.Duration { return stSum(t.root) }

// first returns the head of the round-robin order, or nil.
func (t *serviceTree) first() *stNode {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

// stNext returns x's in-order successor, or nil.
func stNext(x *stNode) *stNode {
	if x.right != nil {
		x = x.right
		for x.left != nil {
			x = x.left
		}
		return x
	}
	for x.parent != nil && x == x.parent.right {
		x = x.parent
	}
	return x.parent
}

// each visits process nodes in round-robin order; return false to stop.
func (t *serviceTree) each(fn func(*procNode) bool) bool {
	var walk func(n *stNode) bool
	walk = func(n *stNode) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.pn) && walk(n.right)
	}
	return walk(t.root)
}

func (t *serviceTree) transplant(u, v *stNode) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

// rotateLeft rotates x down-left and recomputes the two changed aggregates
// bottom-up (x first — it becomes the child).
func (t *serviceTree) rotateLeft(x *stNode) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	x.sum = stSum(x.left) + stSum(x.right) + x.pn.contrib
	y.sum = stSum(y.left) + stSum(y.right) + y.pn.contrib
}

func (t *serviceTree) rotateRight(x *stNode) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	x.sum = stSum(x.left) + stSum(x.right) + x.pn.contrib
	y.sum = stSum(y.left) + stSum(y.right) + y.pn.contrib
}

func (t *serviceTree) insertFixup(n *stNode) {
	for n.parent != nil && n.parent.color == rbRed {
		gp := n.parent.parent
		if n.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.color == rbRed {
				n.parent.color = rbBlack
				uncle.color = rbBlack
				gp.color = rbRed
				n = gp
			} else {
				if n == n.parent.right {
					n = n.parent
					t.rotateLeft(n)
				}
				n.parent.color = rbBlack
				gp.color = rbRed
				t.rotateRight(gp)
			}
		} else {
			uncle := gp.left
			if uncle != nil && uncle.color == rbRed {
				n.parent.color = rbBlack
				uncle.color = rbBlack
				gp.color = rbRed
				n = gp
			} else {
				if n == n.parent.left {
					n = n.parent
					t.rotateRight(n)
				}
				n.parent.color = rbBlack
				gp.color = rbRed
				t.rotateLeft(gp)
			}
		}
	}
	t.root.color = rbBlack
}

func (t *serviceTree) deleteFixup(x *stNode, parent *stNode) {
	for x != t.root && stColor(x) == rbBlack {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if stColor(w) == rbRed {
				w.color = rbBlack
				parent.color = rbRed
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if stColor(w.left) == rbBlack && stColor(w.right) == rbBlack {
				w.color = rbRed
				x = parent
				parent = x.parent
			} else {
				if stColor(w.right) == rbBlack {
					if w.left != nil {
						w.left.color = rbBlack
					}
					w.color = rbRed
					t.rotateRight(w)
					w = parent.right
				}
				w.color = parent.color
				parent.color = rbBlack
				if w.right != nil {
					w.right.color = rbBlack
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if stColor(w) == rbRed {
				w.color = rbBlack
				parent.color = rbRed
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if stColor(w.right) == rbBlack && stColor(w.left) == rbBlack {
				w.color = rbRed
				x = parent
				parent = x.parent
			} else {
				if stColor(w.left) == rbBlack {
					if w.right != nil {
						w.right.color = rbBlack
					}
					w.color = rbRed
					t.rotateLeft(w)
					w = parent.left
				}
				w.color = parent.color
				parent.color = rbBlack
				if w.left != nil {
					w.left.color = rbBlack
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.color = rbBlack
	}
}

// checkAggregates validates red-black shape, key order, and the subtree-sum
// invariant; used by property and fuzz tests. Returns the black-height or
// -1 on any violation.
func (t *serviceTree) checkAggregates() int {
	if stColor(t.root) != rbBlack {
		return -1
	}
	var check func(n *stNode) int
	check = func(n *stNode) int {
		if n == nil {
			return 1
		}
		if n.color == rbRed && (stColor(n.left) == rbRed || stColor(n.right) == rbRed) {
			return -1
		}
		if n.left != nil && n.left.key >= n.key {
			return -1
		}
		if n.right != nil && n.right.key <= n.key {
			return -1
		}
		if n.sum != stSum(n.left)+stSum(n.right)+n.pn.contrib {
			return -1
		}
		if n.pn.st != n {
			return -1
		}
		lh := check(n.left)
		rh := check(n.right)
		if lh < 0 || rh < 0 || lh != rh {
			return -1
		}
		if n.color == rbBlack {
			return lh + 1
		}
		return lh
	}
	return check(t.root)
}
