package iosched

import (
	"testing"
	"testing/quick"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/sim"
)

// slowDevice is a depth-1 Downstream with fixed service time, giving tests
// full control over ordering.
type slowDevice struct {
	eng     *sim.Engine
	svc     time.Duration
	busy    bool
	waiting []*blockio.Request
	order   []*blockio.Request
	hook    func()
}

func (d *slowDevice) Submit(req *blockio.Request) {
	if d.busy {
		panic("slowDevice: submit while busy (scheduler ignored backpressure)")
	}
	d.busy = true
	d.order = append(d.order, req)
	req.DispatchTime = d.eng.Now()
	d.eng.Schedule(d.svc, func() {
		d.busy = false
		req.CompleteTime = d.eng.Now()
		if req.OnComplete != nil {
			req.OnComplete(req)
		}
		if d.hook != nil {
			d.hook()
		}
	})
}

func (d *slowDevice) InFlight() int {
	if d.busy {
		return 1
	}
	return 0
}
func (d *slowDevice) CanAccept() bool          { return !d.busy }
func (d *slowDevice) SetSlotFreeHook(f func()) { d.hook = f }

func mkReq(proc int, class blockio.Class, prio int, off int64) *blockio.Request {
	r := &blockio.Request{Op: blockio.Read, Offset: off, Size: 4096,
		Proc: proc, Class: class, Priority: prio}
	r.OnComplete = func(*blockio.Request) {}
	return r
}

func TestNoopFIFOOrder(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	n := NewNoop(eng, dev)
	for _, off := range []int64{30, 10, 20} {
		n.Submit(mkReq(1, blockio.ClassBestEffort, 4, off))
	}
	eng.Run()
	want := []int64{30, 10, 20}
	for i, r := range dev.order {
		if r.Offset != want[i] {
			t.Fatalf("noop dispatched %v, want FIFO %v", offsets(dev.order), want)
		}
	}
}

func TestNoopRespectsBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	n := NewNoop(eng, dev)
	for i := 0; i < 5; i++ {
		n.Submit(mkReq(1, blockio.ClassBestEffort, 4, int64(i)*4096))
	}
	if n.QueueLen() != 4 {
		t.Fatalf("dispatch queue = %d, want 4 held back", n.QueueLen())
	}
	eng.Run()
	if len(dev.order) != 5 {
		t.Fatalf("served %d of 5", len(dev.order))
	}
	if n.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", n.InFlight())
	}
}

func TestNoopDropsCanceled(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	n := NewNoop(eng, dev)
	n.Submit(mkReq(1, blockio.ClassBestEffort, 4, 0))
	victim := mkReq(1, blockio.ClassBestEffort, 4, 4096)
	n.Submit(victim)
	victim.Cancel()
	eng.Run()
	if len(dev.order) != 1 {
		t.Fatalf("device saw %d IOs, want canceled one dropped", len(dev.order))
	}
}

func TestCFQRealTimePreemptsBestEffort(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	c := NewCFQ(eng, DefaultCFQConfig(), dev)
	// BE process floods; an RT IO arrives later but must be served before
	// the remaining BE queue.
	for i := 0; i < 5; i++ {
		c.Submit(mkReq(1, blockio.ClassBestEffort, 4, int64(i)*4096))
	}
	rt := mkReq(2, blockio.ClassRealTime, 0, 999*4096)
	c.Submit(rt)
	eng.Run()
	pos := -1
	for i, r := range dev.order {
		if r == rt {
			pos = i
		}
	}
	if pos == -1 || pos > 1 {
		t.Fatalf("RT IO served at position %d of %v", pos, offsets(dev.order))
	}
}

func TestCFQFairnessAcrossProcesses(t *testing.T) {
	// Two BE processes with equal priority submitting equal loads should
	// interleave (round robin), not starve one another.
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: 2 * time.Millisecond}
	cfg := CFQConfig{SliceBase: 4 * time.Millisecond, SliceStep: time.Millisecond}
	c := NewCFQ(eng, cfg, dev)
	for i := 0; i < 6; i++ {
		c.Submit(mkReq(1, blockio.ClassBestEffort, 4, int64(i)*4096))
		c.Submit(mkReq(2, blockio.ClassBestEffort, 4, int64(1000+i)*4096))
	}
	eng.Run()
	// Proc 2 must not wait for all of proc 1's IOs.
	firstP2 := -1
	for i, r := range dev.order {
		if r.Proc == 2 {
			firstP2 = i
			break
		}
	}
	if firstP2 == -1 || firstP2 >= 6 {
		t.Fatalf("proc 2 first served at %d; RR fairness broken", firstP2)
	}
}

func TestCFQHigherPriorityGetsLongerSlice(t *testing.T) {
	cfg := DefaultCFQConfig()
	if cfg.Slice(0) <= cfg.Slice(7) {
		t.Fatalf("slice(0)=%v should exceed slice(7)=%v", cfg.Slice(0), cfg.Slice(7))
	}
	if cfg.Slice(-5) != cfg.Slice(0) || cfg.Slice(99) != cfg.Slice(7) {
		t.Fatal("priority clamping broken")
	}
}

func TestCFQElevatorOrderWithinProcess(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	c := NewCFQ(eng, DefaultCFQConfig(), dev)
	// One process, shuffled offsets: dispatch should be ascending after
	// the first (which departs immediately on an idle device).
	for _, off := range []int64{500, 100, 300, 200, 400} {
		c.Submit(mkReq(1, blockio.ClassBestEffort, 4, off*4096))
	}
	eng.Run()
	got := offsets(dev.order)
	// First IO (500) dispatched before the rest arrived; the remaining
	// four wrap the elevator and come out ascending.
	want := []int64{500 * 4096, 100 * 4096, 200 * 4096, 300 * 4096, 400 * 4096}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

func TestCFQRemoveQueuedRequest(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	c := NewCFQ(eng, DefaultCFQConfig(), dev)
	c.Submit(mkReq(1, blockio.ClassBestEffort, 4, 0))
	victim := mkReq(1, blockio.ClassBestEffort, 4, 4096)
	c.Submit(victim)
	if !c.Remove(victim) {
		t.Fatal("Remove failed for a queued request")
	}
	if c.Remove(victim) {
		t.Fatal("double Remove succeeded")
	}
	eng.Run()
	if len(dev.order) != 1 {
		t.Fatalf("device saw %d IOs after removal", len(dev.order))
	}
}

func TestCFQRemoveDispatchedFails(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	c := NewCFQ(eng, DefaultCFQConfig(), dev)
	r := mkReq(1, blockio.ClassBestEffort, 4, 0)
	c.Submit(r) // goes straight to the idle device
	if c.Remove(r) {
		t.Fatal("removed an IO already at the device; §7.8.2 says device queue is invisible")
	}
	eng.Run()
}

func TestCFQProcsAheadOf(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: 50 * time.Millisecond}
	c := NewCFQ(eng, DefaultCFQConfig(), dev)
	c.Submit(mkReq(1, blockio.ClassBestEffort, 4, 0))     // active (dispatched), tree empty
	c.Submit(mkReq(1, blockio.ClassBestEffort, 4, 4096))  // queued under proc 1
	c.Submit(mkReq(2, blockio.ClassRealTime, 0, 8192))    // queued RT
	c.Submit(mkReq(3, blockio.ClassBestEffort, 4, 12288)) // queued BE

	ahead := c.ProcsAheadOf(4, blockio.ClassBestEffort)
	if !containsInt(ahead, 2) {
		t.Fatalf("RT proc 2 not ahead of new BE proc: %v", ahead)
	}
	if !containsInt(ahead, 3) {
		t.Fatalf("earlier BE proc 3 not ahead of new BE proc: %v", ahead)
	}
	// A new RT proc only waits for other RT nodes (and the active node).
	aheadRT := c.ProcsAheadOf(5, blockio.ClassRealTime)
	if containsInt(aheadRT, 3) {
		t.Fatalf("BE proc ahead of RT proc: %v", aheadRT)
	}
	eng.Run()
}

func TestCFQPendingOfAndEachQueued(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: 50 * time.Millisecond}
	c := NewCFQ(eng, DefaultCFQConfig(), dev)
	for i := 0; i < 4; i++ {
		c.Submit(mkReq(7, blockio.ClassBestEffort, 4, int64(i)*4096))
	}
	// One went to the device; three remain queued.
	if got := c.PendingOf(7); got != 3 {
		t.Fatalf("PendingOf = %d, want 3", got)
	}
	count := 0
	c.EachQueued(7, func(*blockio.Request) bool { count++; return true })
	if count != 3 {
		t.Fatalf("EachQueued visited %d", count)
	}
	if c.PendingOf(99) != 0 {
		t.Fatal("unknown proc should have 0 pending")
	}
	eng.Run()
}

func TestCFQOverDiskIntegration(t *testing.T) {
	// End-to-end: CFQ over the real disk model with two tenants; all IOs
	// complete and the scheduler drains.
	eng := sim.NewEngine()
	d := disk.New(eng, disk.DefaultConfig(), sim.NewRNG(3, "cfq-disk"))
	c := NewCFQ(eng, DefaultCFQConfig(), d)
	rng := sim.NewRNG(4, "offsets")
	done := 0
	for i := 0; i < 60; i++ {
		r := mkReq(i%3, blockio.ClassBestEffort, 4, rng.Int63n(900<<30))
		r.OnComplete = func(*blockio.Request) { done++ }
		c.Submit(r)
	}
	eng.Run()
	if done != 60 {
		t.Fatalf("completed %d of 60", done)
	}
	if c.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", c.InFlight())
	}
	if c.Dispatched() != 60 {
		t.Fatalf("Dispatched = %d", c.Dispatched())
	}
}

func TestCFQIdleClassServedLast(t *testing.T) {
	eng := sim.NewEngine()
	dev := &slowDevice{eng: eng, svc: time.Millisecond}
	c := NewCFQ(eng, DefaultCFQConfig(), dev)
	c.Submit(mkReq(1, blockio.ClassBestEffort, 4, 0)) // occupies device
	idle := mkReq(2, blockio.ClassIdle, 7, 4096)
	c.Submit(idle)
	c.Submit(mkReq(3, blockio.ClassBestEffort, 4, 8192))
	c.Submit(mkReq(4, blockio.ClassRealTime, 0, 12288))
	eng.Run()
	if dev.order[len(dev.order)-1] != idle {
		t.Fatalf("idle-class IO not served last: %v", offsets(dev.order))
	}
}

func offsets(rs []*blockio.Request) []int64 {
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = r.Offset
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestPropertyCFQConservation(t *testing.T) {
	// Work conservation: for any submission pattern (procs, classes,
	// priorities, offsets), every non-cancelled request completes exactly
	// once, no request completes twice, and the queues drain to zero.
	// (A cancel landing after dispatch legitimately still completes —
	// device queues are beyond revocation, §7.8.2.)
	f := func(ops []uint32) bool {
		eng := sim.NewEngine()
		dev := &slowDevice{eng: eng, svc: time.Millisecond}
		c := NewCFQ(eng, DefaultCFQConfig(), dev)
		type tracked struct {
			req       *blockio.Request
			cancelled bool
			done      int
		}
		var reqs []*tracked
		for _, op := range ops {
			tr := &tracked{}
			r := &blockio.Request{Op: blockio.Read, Offset: int64(op%1024) << 20,
				Size: 4096, Proc: int(op % 5), Class: blockio.Class(op / 5 % 3),
				Priority: int(op / 16 % 8)}
			r.OnComplete = func(*blockio.Request) { tr.done++ }
			tr.req = r
			c.Submit(r)
			if op%7 == 0 {
				r.Cancel()
				tr.cancelled = true
			}
			reqs = append(reqs, tr)
		}
		eng.Run()
		for _, tr := range reqs {
			if !tr.cancelled && tr.done != 1 {
				return false
			}
			if tr.done > 1 {
				return false
			}
		}
		return c.InFlight() == 0 && c.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeadlineConservation(t *testing.T) {
	f := func(ops []uint32) bool {
		eng := sim.NewEngine()
		dev := &slowDevice{eng: eng, svc: time.Millisecond}
		d := NewDeadline(eng, DefaultDeadlineConfig(), dev)
		type tracked struct {
			cancelled bool
			done      int
		}
		var reqs []*tracked
		for _, op := range ops {
			kind := blockio.Read
			if op%3 == 0 {
				kind = blockio.Write
			}
			tr := &tracked{}
			r := &blockio.Request{Op: kind, Offset: int64(op%1024) << 20, Size: 4096, Proc: 1}
			r.OnComplete = func(*blockio.Request) { tr.done++ }
			d.Submit(r)
			if op%11 == 0 {
				r.Cancel()
				tr.cancelled = true
			}
			reqs = append(reqs, tr)
		}
		eng.Run()
		for _, tr := range reqs {
			if !tr.cancelled && tr.done != 1 {
				return false
			}
			if tr.done > 1 {
				return false
			}
		}
		return d.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
