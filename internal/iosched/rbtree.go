// Red-black tree keyed by (offset, seq), used by CFQ process nodes to keep
// each process' pending IOs sorted by on-disk offset (§4.2: "in every node,
// there is a red-black tree for sorting the process' pending IOs based on
// their on-disk offsets"). Implemented from scratch — stdlib has no ordered
// tree — with the classic CLRS insert/delete fixups.
package iosched

import "mittos/internal/blockio"

type rbColor bool

const (
	rbRed   rbColor = false
	rbBlack rbColor = true
)

type rbNode struct {
	key    rbKey
	req    *blockio.Request
	color  rbColor
	left   *rbNode
	right  *rbNode
	parent *rbNode
}

// rbKey orders by offset, breaking ties by insertion sequence so duplicate
// offsets coexist.
type rbKey struct {
	offset int64
	seq    uint64
}

func (a rbKey) less(b rbKey) bool {
	if a.offset != b.offset {
		return a.offset < b.offset
	}
	return a.seq < b.seq
}

// rbTree is an offset-sorted set of requests.
type rbTree struct {
	root *rbNode
	size int
	seq  uint64
	free *rbNode // recycled nodes, chained via right
}

// Len returns the number of stored requests.
func (t *rbTree) Len() int { return t.size }

func (t *rbTree) getNode() *rbNode {
	if n := t.free; n != nil {
		t.free = n.right
		*n = rbNode{}
		return n
	}
	return &rbNode{}
}

func (t *rbTree) putNode(n *rbNode) {
	*n = rbNode{}
	n.right = t.free
	t.free = n
}

// Insert adds a request keyed by its offset.
func (t *rbTree) Insert(req *blockio.Request) {
	t.seq++
	n := t.getNode()
	n.key, n.req, n.color = rbKey{req.Offset, t.seq}, req, rbRed
	t.size++
	if t.root == nil {
		n.color = rbBlack
		t.root = n
		return
	}
	cur := t.root
	for {
		if n.key.less(cur.key) {
			if cur.left == nil {
				cur.left = n
				n.parent = cur
				break
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = n
				n.parent = cur
				break
			}
			cur = cur.right
		}
	}
	t.insertFixup(n)
}

func (t *rbTree) insertFixup(n *rbNode) {
	for n.parent != nil && n.parent.color == rbRed {
		gp := n.parent.parent
		if n.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.color == rbRed {
				n.parent.color = rbBlack
				uncle.color = rbBlack
				gp.color = rbRed
				n = gp
			} else {
				if n == n.parent.right {
					n = n.parent
					t.rotateLeft(n)
				}
				n.parent.color = rbBlack
				gp.color = rbRed
				t.rotateRight(gp)
			}
		} else {
			uncle := gp.left
			if uncle != nil && uncle.color == rbRed {
				n.parent.color = rbBlack
				uncle.color = rbBlack
				gp.color = rbRed
				n = gp
			} else {
				if n == n.parent.left {
					n = n.parent
					t.rotateRight(n)
				}
				n.parent.color = rbBlack
				gp.color = rbRed
				t.rotateLeft(gp)
			}
		}
	}
	t.root.color = rbBlack
}

func (t *rbTree) rotateLeft(x *rbNode) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *rbTree) rotateRight(x *rbNode) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *rbTree) minNode(n *rbNode) *rbNode {
	for n.left != nil {
		n = n.left
	}
	return n
}

// Min returns the lowest-offset request, or nil.
func (t *rbTree) Min() *blockio.Request {
	if t.root == nil {
		return nil
	}
	return t.minNode(t.root).req
}

// CeilingFrom returns the lowest-offset request with offset ≥ off, or nil —
// the CFQ "continue in the current seek direction" dispatch choice.
func (t *rbTree) CeilingFrom(off int64) *blockio.Request {
	var best *rbNode
	cur := t.root
	probe := rbKey{off, 0}
	for cur != nil {
		if probe.less(cur.key) || probe == cur.key {
			best = cur
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	if best == nil {
		return nil
	}
	return best.req
}

// PopMin removes and returns the lowest-offset request, or nil.
func (t *rbTree) PopMin() *blockio.Request {
	if t.root == nil {
		return nil
	}
	n := t.minNode(t.root)
	req := n.req
	t.delete(n)
	return req
}

// Remove deletes the node holding req (matched by identity). It returns
// whether the request was found.
func (t *rbTree) Remove(req *blockio.Request) bool {
	n := t.findReq(t.root, req)
	if n == nil {
		return false
	}
	t.delete(n)
	return true
}

func (t *rbTree) findReq(n *rbNode, req *blockio.Request) *rbNode {
	for n != nil {
		if n.req == req {
			return n
		}
		if req.Offset < n.key.offset {
			n = n.left
		} else if req.Offset > n.key.offset {
			n = n.right
		} else {
			// Same offset: identity can be on either side due to seq
			// tiebreak; search both.
			if found := t.findReq(n.left, req); found != nil {
				return found
			}
			n = n.right
		}
	}
	return nil
}

// Each visits requests in ascending offset order; return false to stop.
func (t *rbTree) Each(fn func(*blockio.Request) bool) {
	var walk func(n *rbNode) bool
	walk = func(n *rbNode) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		if !fn(n.req) {
			return false
		}
		return walk(n.right)
	}
	walk(t.root)
}

// delete removes node z (CLRS RB-DELETE).
func (t *rbTree) delete(z *rbNode) {
	t.size--
	var x, xParent *rbNode
	y := z
	yColor := y.color
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = t.minNode(z.right)
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == rbBlack {
		t.deleteFixup(x, xParent)
	}
	t.putNode(z)
}

func (t *rbTree) transplant(u, v *rbNode) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *rbTree) deleteFixup(x *rbNode, parent *rbNode) {
	for x != t.root && colorOf(x) == rbBlack {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if colorOf(w) == rbRed {
				w.color = rbBlack
				parent.color = rbRed
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if colorOf(w.left) == rbBlack && colorOf(w.right) == rbBlack {
				w.color = rbRed
				x = parent
				parent = x.parent
			} else {
				if colorOf(w.right) == rbBlack {
					if w.left != nil {
						w.left.color = rbBlack
					}
					w.color = rbRed
					t.rotateRight(w)
					w = parent.right
				}
				w.color = parent.color
				parent.color = rbBlack
				if w.right != nil {
					w.right.color = rbBlack
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if colorOf(w) == rbRed {
				w.color = rbBlack
				parent.color = rbRed
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if colorOf(w.right) == rbBlack && colorOf(w.left) == rbBlack {
				w.color = rbRed
				x = parent
				parent = x.parent
			} else {
				if colorOf(w.left) == rbBlack {
					if w.right != nil {
						w.right.color = rbBlack
					}
					w.color = rbRed
					t.rotateLeft(w)
					w = parent.left
				}
				w.color = parent.color
				parent.color = rbBlack
				if w.left != nil {
					w.left.color = rbBlack
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.color = rbBlack
	}
}

func colorOf(n *rbNode) rbColor {
	if n == nil {
		return rbBlack
	}
	return n.color
}

// checkInvariants validates red-black properties; used by property tests.
// It returns the black-height, or -1 on violation.
func (t *rbTree) checkInvariants() int {
	if colorOf(t.root) != rbBlack {
		return -1
	}
	var check func(n *rbNode) int
	check = func(n *rbNode) int {
		if n == nil {
			return 1
		}
		if n.color == rbRed && (colorOf(n.left) == rbRed || colorOf(n.right) == rbRed) {
			return -1
		}
		if n.left != nil && !n.left.key.less(n.key) {
			return -1
		}
		if n.right != nil && !n.key.less(n.right.key) {
			return -1
		}
		lh := check(n.left)
		rh := check(n.right)
		if lh < 0 || rh < 0 || lh != rh {
			return -1
		}
		if n.color == rbBlack {
			return lh + 1
		}
		return lh
	}
	return check(t.root)
}
