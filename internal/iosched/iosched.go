// Package iosched implements the two Linux block-layer IO schedulers the
// paper integrates MittOS into: the noop (FIFO) scheduler (§4.1) and a
// structurally faithful CFQ (§4.2) with per-class service trees
// (RealTime/BestEffort/Idle), per-process nodes holding offset-sorted
// red-black trees of pending IOs, priority-scaled time slices, and RealTime
// preemption.
//
// Simplifications vs. Linux CFQ, documented for reviewers: within a class,
// process nodes are served round-robin with slice lengths scaled by ionice
// priority (Linux additionally biases tree position by priority), and there
// is no anticipatory idling (noidle mode). Neither affects the property
// MittCFQ depends on: IOs already accepted can be pushed back by
// later-arriving higher-class IOs.
package iosched

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// Downstream is the device below a scheduler: a blockio.Device with
// device-queue backpressure (the NCQ boundary).
type Downstream interface {
	blockio.Device
	// CanAccept reports whether the device queue has a free slot.
	CanAccept() bool
	// SetSlotFreeHook registers the scheduler's refill callback.
	SetSlotFreeHook(func())
}

// Noop is the FIFO scheduler: arriving IOs enter a dispatch queue whose
// items are absorbed into the device queue as slots free up (§4.1).
type Noop struct {
	eng  *sim.Engine
	down Downstream
	fifo []*blockio.Request
	rec  *metrics.Recorder
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (n *Noop) SetRecorder(rec *metrics.Recorder) { n.rec = rec }

// NewNoop builds a noop scheduler over the device.
func NewNoop(eng *sim.Engine, down Downstream) *Noop {
	n := &Noop{eng: eng, down: down}
	down.SetSlotFreeHook(n.pump)
	return n
}

// Submit implements blockio.Device.
func (n *Noop) Submit(req *blockio.Request) {
	if req.SubmitTime == 0 {
		req.SubmitTime = n.eng.Now()
	}
	n.rec.SchedEnter(metrics.RSchedNoop, req)
	n.fifo = append(n.fifo, req)
	n.pump()
}

// InFlight implements blockio.Device.
func (n *Noop) InFlight() int { return len(n.fifo) + n.down.InFlight() }

// QueueLen returns the dispatch-queue length (excludes device-queue IOs).
func (n *Noop) QueueLen() int { return len(n.fifo) }

func (n *Noop) pump() {
	for n.down.CanAccept() && len(n.fifo) > 0 {
		req := n.fifo[0]
		n.fifo = n.fifo[1:]
		if req.Canceled() {
			n.rec.SchedDrop(metrics.RSchedNoop, req)
			req.Dropped()
			continue
		}
		n.rec.SchedExit(metrics.RSchedNoop, req)
		n.down.Submit(req)
	}
}

// CFQConfig tunes the CFQ model.
type CFQConfig struct {
	// SliceBase is the minimum time slice (lowest priority).
	SliceBase time.Duration
	// SliceStep is the additional slice per priority level above 7.
	SliceStep time.Duration
	// Quantum caps the IOs outstanding at the device (Linux cfq_quantum):
	// CFQ keeps the device queue shallow so its own ordering stays in
	// control instead of delegating everything to NCQ reordering.
	Quantum int
}

// DefaultCFQConfig returns Linux-scale slices (slice_sync is ~100ms for the
// highest priority) and a quantum of 1: the disk model is a serial server,
// so deeper NCQ queues buy no throughput and only surrender ordering
// control (and hence MittOS cancellation coverage) to device-level
// reordering.
func DefaultCFQConfig() CFQConfig {
	return CFQConfig{SliceBase: 40 * time.Millisecond, SliceStep: 10 * time.Millisecond, Quantum: 1}
}

// Slice returns the time slice granted to a node of the given priority
// (0 = highest → longest slice).
func (c CFQConfig) Slice(prio int) time.Duration {
	if prio < 0 {
		prio = 0
	}
	if prio > 7 {
		prio = 7
	}
	return c.SliceBase + time.Duration(7-prio)*c.SliceStep
}

// procNode is one process' queue inside CFQ.
type procNode struct {
	proc  int
	class blockio.Class
	prio  int
	tree  rbTree
	// total is the admission layer's predicted total IO time charged to
	// this node (§4.2: "MittCFQ keeps track of the predicted total IO time
	// of each process node"); contrib is the slice-clamped value the
	// service-tree aggregates sum — min(total, Slice(prio)) while the node
	// has queued IOs, 0 otherwise.
	total   time.Duration
	contrib time.Duration
	// st is the node's slot on its class service tree (nil while active or
	// idle); stRank is the class rank it was enqueued under, which lags
	// class until the node is re-enqueued (ionice semantics).
	st     *stNode
	stRank int
	// headPos is the offset dispatch resumes from (ascending elevator).
	headPos int64
}

// denseProcs bounds the O(1) proc→node lookup array; processes with IDs
// outside [0, denseProcs) fall back to the map.
const denseProcs = 1024

// CFQ is the Completely Fair Queueing scheduler model.
type CFQ struct {
	eng  *sim.Engine
	cfg  CFQConfig
	down Downstream

	dense    []*procNode       // proc → node for small non-negative IDs
	nodes    map[int]*procNode // fallback for IDs outside the dense range
	st       [3]serviceTree    // round-robin per class rank (0 = RT)
	stSeq    uint64
	active   *procNode
	sliceEnd sim.Time

	queued       int
	onDevice     int
	dispatched   uint64
	dispatchHook func(*blockio.Request)
	dropHook     func(*blockio.Request)
	dispFree     []*cfqDisp
	aheadScratch []int
	rec          *metrics.Recorder
}

// cfqDisp is the pooled on-device completion wrapper installed at dispatch:
// it returns the device slot to the quantum and refills the device queue.
type cfqDisp struct {
	c    *CFQ
	prev func(*blockio.Request)
	fn   func(*blockio.Request) // pre-bound d.done
}

func (d *cfqDisp) done(r *blockio.Request) {
	c, prev := d.c, d.prev
	d.prev = nil
	c.dispFree = append(c.dispFree, d)
	c.onDevice--
	if prev != nil {
		prev(r)
	}
	c.pump()
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (c *CFQ) SetRecorder(rec *metrics.Recorder) { c.rec = rec }

// SetDropHook registers a tap invoked when a cancelled request is discarded
// from the CFQ queues (so accounting layers can release its charge).
func (c *CFQ) SetDropHook(fn func(*blockio.Request)) { c.dropHook = fn }

// SetDispatchHook registers a tap invoked when an IO leaves the CFQ queues
// for the device — the moment it stops being cancellable (§7.8.2).
func (c *CFQ) SetDispatchHook(fn func(*blockio.Request)) { c.dispatchHook = fn }

// NewCFQ builds a CFQ scheduler over the device.
func NewCFQ(eng *sim.Engine, cfg CFQConfig, down Downstream) *CFQ {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1
	}
	c := &CFQ{eng: eng, cfg: cfg, down: down, nodes: make(map[int]*procNode)}
	down.SetSlotFreeHook(c.pump)
	return c
}

// Config returns the scheduler configuration.
func (c *CFQ) Config() CFQConfig { return c.cfg }

// Submit implements blockio.Device. The request's Proc/Class/Priority choose
// (or create) its process node, mirroring ionice semantics.
func (c *CFQ) Submit(req *blockio.Request) {
	if req.SubmitTime == 0 {
		req.SubmitTime = c.eng.Now()
	}
	c.rec.SchedEnter(metrics.RSchedCFQ, req)
	node := c.node(req.Proc)
	// ionice changes apply to subsequent IOs.
	node.class = req.Class
	node.prio = req.Priority
	node.tree.Insert(req)
	c.queued++
	c.refreshContrib(node)
	if node.st == nil && node != c.active {
		c.enqueue(node)
	}
	c.pump()
}

// enqueue appends the node to the tail of its class round-robin.
func (c *CFQ) enqueue(n *procNode) {
	c.stSeq++
	n.stRank = n.class.Rank()
	c.st[n.stRank].append(n, c.stSeq)
}

// lookup returns the proc's node, or nil.
func (c *CFQ) lookup(proc int) *procNode {
	if proc >= 0 && proc < len(c.dense) {
		return c.dense[proc]
	}
	return c.nodes[proc]
}

func (c *CFQ) node(proc int) *procNode {
	if n := c.lookup(proc); n != nil {
		return n
	}
	n := &procNode{proc: proc, class: blockio.ClassBestEffort, prio: 4}
	if proc >= 0 && proc < denseProcs {
		if proc >= len(c.dense) {
			grown := make([]*procNode, proc+1)
			copy(grown, c.dense)
			c.dense = grown
		}
		c.dense[proc] = n
	} else {
		c.nodes[proc] = n
	}
	return n
}

// refreshContrib recomputes the node's slice-clamped aggregate contribution
// after a change to its total, priority, or queued-IO count, propagating
// the delta into its service tree when it is enqueued.
func (c *CFQ) refreshContrib(n *procNode) {
	var nc time.Duration
	if n.tree.Len() > 0 {
		nc = n.total
		if s := c.cfg.Slice(n.prio); nc > s {
			nc = s
		}
	}
	if nc == n.contrib {
		return
	}
	delta := nc - n.contrib
	n.contrib = nc
	if n.st != nil {
		c.st[n.stRank].update(n.st, delta)
	}
}

// InFlight implements blockio.Device.
func (c *CFQ) InFlight() int { return c.queued + c.down.InFlight() }

// QueueLen returns the number of IOs held in CFQ queues (not yet at the
// device).
func (c *CFQ) QueueLen() int { return c.queued }

// Dispatched returns the total number of IOs sent to the device.
func (c *CFQ) Dispatched() uint64 { return c.dispatched }

// PendingOf returns the number of queued IOs of one process.
func (c *CFQ) PendingOf(proc int) int {
	if n := c.lookup(proc); n != nil {
		return n.tree.Len()
	}
	return 0
}

// Remove drops a still-queued request from its process node (MittCFQ's late
// cancellation path). It returns false if the request already left for the
// device.
func (c *CFQ) Remove(req *blockio.Request) bool {
	n := c.lookup(req.Proc)
	if n == nil {
		return false
	}
	if n.tree.Remove(req) {
		c.queued--
		c.refreshContrib(n)
		c.rec.SchedRemove(metrics.RSchedCFQ, req)
		return true
	}
	return false
}

// AddProcCharge adds predicted IO time to the proc's node total — MittCFQ's
// per-node accounting (§4.2), kept on the node so the service-tree
// aggregates can sum it.
func (c *CFQ) AddProcCharge(proc int, d time.Duration) {
	n := c.node(proc)
	n.total += d
	c.refreshContrib(n)
}

// ReleaseProcCharge returns predicted IO time to the proc's node when an IO
// dispatches, cancels, or drops, flooring at zero.
func (c *CFQ) ReleaseProcCharge(proc int, d time.Duration) {
	n := c.node(proc)
	if t := n.total - d; t > 0 {
		n.total = t
	} else {
		n.total = 0
	}
	c.refreshContrib(n)
}

// ProcCharge returns the proc's unclamped charged total.
func (c *CFQ) ProcCharge(proc int) time.Duration {
	if n := c.lookup(proc); n != nil {
		return n.total
	}
	return 0
}

// AheadCharge returns the slice-clamped charge sum of every process node
// CFQ would service before a newly arriving IO from `proc` at the given
// class — the augmented-tree form of the ProcsAheadOf walk: the active
// node's clamped charge plus one aggregate (or prefix) query per class rank,
// O(log P) total. ProcsAheadOf remains as the walking oracle; the two agree
// exactly because integer addition is order-independent and both apply the
// same inclusion and clamping rules.
func (c *CFQ) AheadCharge(proc int, class blockio.Class) time.Duration {
	var sum time.Duration
	rank := class.Rank()
	if c.active != nil && c.active.proc != proc && c.active.tree.Len() > 0 &&
		rank >= c.active.class.Rank() {
		sum += c.active.contrib
	}
	pn := c.lookup(proc)
	for r := 0; r <= rank; r++ {
		t := &c.st[r]
		if t.size == 0 {
			continue
		}
		if pn != nil && pn.st != nil && pn.stRank == r {
			if r < rank {
				// The walk skips the proc's own node wherever it sits.
				sum += t.total() - pn.contrib
			} else {
				// Same class: only nodes ahead in round-robin order count.
				sum += t.prefixBefore(pn.st)
			}
		} else {
			sum += t.total()
		}
	}
	return sum
}

// IsAheadOf reports whether candidate's node is among the processes CFQ
// would service before a new IO from proc at the given class — the O(log P)
// membership form of ProcsAheadOf, used when charging bumped entries.
func (c *CFQ) IsAheadOf(candidate, proc int, class blockio.Class) bool {
	if candidate == proc {
		return false
	}
	cn := c.lookup(candidate)
	if cn == nil || cn.tree.Len() == 0 {
		return false
	}
	rank := class.Rank()
	if cn == c.active {
		return rank >= c.active.class.Rank()
	}
	if cn.st == nil {
		return false
	}
	if cn.stRank > rank {
		return false
	}
	if cn.stRank < rank {
		return true
	}
	// Same class: everyone already queued is ahead of a newly-joining node
	// (RR tail insertion). If proc is already on the RR, nodes before it
	// are ahead.
	pn := c.lookup(proc)
	if pn == nil || pn.st == nil || pn.stRank != rank {
		return true
	}
	return cn.st.key < pn.st.key
}

// ProcsAheadOf returns the process IDs whose queued IOs CFQ would service
// before a newly arriving IO from `proc` at (class, prio) — the O(P) walk
// of §4.2, kept as the oracle AheadCharge and IsAheadOf are verified
// against. The order is: the active node, nodes of higher classes, then
// same-class nodes ahead in round-robin order. The returned slice is scratch
// reused across calls.
func (c *CFQ) ProcsAheadOf(proc int, class blockio.Class) []int {
	ahead := c.aheadScratch[:0]
	// The active node counts only when the newcomer cannot preempt it: a
	// higher-class arrival takes over at the next dispatch decision, so
	// only the active node's device-resident IOs (accounted separately by
	// the caller) delay it.
	rank := class.Rank()
	if c.active != nil && c.active.proc != proc && c.active.tree.Len() > 0 &&
		rank >= c.active.class.Rank() {
		ahead = append(ahead, c.active.proc)
	}
	var procKey uint64
	procOn := false
	if pn := c.lookup(proc); pn != nil && pn.st != nil && pn.stRank == rank {
		procKey, procOn = pn.st.key, true
	}
	for r := 0; r <= rank; r++ {
		for x := c.st[r].first(); x != nil; x = stNext(x) {
			n := x.pn
			if n.proc == proc || n.tree.Len() == 0 {
				continue
			}
			if r < rank || !procOn || x.key < procKey {
				ahead = append(ahead, n.proc)
			}
		}
	}
	c.aheadScratch = ahead
	return ahead
}

// NodeSlice returns the time slice the proc's node currently earns — the
// bound on how long one node can hold the device per round.
func (c *CFQ) NodeSlice(proc int) time.Duration {
	if n := c.lookup(proc); n != nil {
		return c.cfg.Slice(n.prio)
	}
	return c.cfg.Slice(4)
}

// EachQueued visits every queued request of a process in offset order.
func (c *CFQ) EachQueued(proc int, fn func(*blockio.Request) bool) {
	if n := c.lookup(proc); n != nil {
		n.tree.Each(fn)
	}
}

// OnDevice returns the number of CFQ-dispatched IOs still at the device.
func (c *CFQ) OnDevice() int { return c.onDevice }

// pump dispatches IOs while the device accepts them, keeping at most
// Quantum outstanding.
func (c *CFQ) pump() {
	for c.down.CanAccept() && c.onDevice < c.cfg.Quantum {
		if c.needNewSlice() {
			c.selectNext()
		}
		if c.active == nil {
			return
		}
		req := c.dispatchFrom(c.active)
		if req == nil {
			// Node drained mid-slice; pick another immediately (noidle).
			c.active = nil
			continue
		}
		c.queued--
		if req.Canceled() {
			if c.dropHook != nil {
				c.dropHook(req)
			}
			c.rec.SchedDrop(metrics.RSchedCFQ, req)
			req.Dropped()
			continue
		}
		c.rec.SchedExit(metrics.RSchedCFQ, req)
		c.dispatched++
		c.onDevice++
		var d *cfqDisp
		if n := len(c.dispFree); n > 0 {
			d = c.dispFree[n-1]
			c.dispFree = c.dispFree[:n-1]
		} else {
			d = &cfqDisp{c: c}
			d.fn = d.done
		}
		d.prev = req.OnComplete
		req.OnComplete = d.fn
		if c.dispatchHook != nil {
			c.dispatchHook(req)
		}
		c.down.Submit(req)
	}
}

func (c *CFQ) needNewSlice() bool {
	if c.active == nil || c.active.tree.Len() == 0 {
		return true
	}
	if c.eng.Now() >= c.sliceEnd {
		return true
	}
	// RealTime preemption: an RT node waiting preempts lower classes.
	if c.active.class != blockio.ClassRealTime && c.st[blockio.ClassRealTime.Rank()].size > 0 {
		return true
	}
	return false
}

// selectNext expires the active node and picks the next per CFQ policy:
// "always picks IOs from the RealTime tree first, and then from BestEffort
// and Idle. In the chosen tree, it picks a node in round robin style,
// proportional to its time slice."
func (c *CFQ) selectNext() {
	if c.active != nil {
		if c.active.tree.Len() > 0 {
			// Unfinished node goes to the back of its class RR.
			c.enqueue(c.active)
		}
		c.active = nil
	}
	for r := 0; r < 3; r++ {
		for c.st[r].size > 0 {
			n := c.st[r].popMin()
			if n.tree.Len() == 0 {
				continue
			}
			c.active = n
			c.sliceEnd = c.eng.Now().Add(c.cfg.Slice(n.prio))
			return
		}
	}
}

// dispatchFrom pops the node's next IO in ascending elevator order.
func (c *CFQ) dispatchFrom(n *procNode) *blockio.Request {
	for n.tree.Len() > 0 {
		req := n.tree.CeilingFrom(n.headPos)
		if req == nil {
			// Wrap the elevator.
			n.headPos = 0
			req = n.tree.Min()
		}
		n.tree.Remove(req)
		c.refreshContrib(n)
		n.headPos = req.End()
		return req
	}
	return nil
}
