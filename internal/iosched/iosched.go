// Package iosched implements the two Linux block-layer IO schedulers the
// paper integrates MittOS into: the noop (FIFO) scheduler (§4.1) and a
// structurally faithful CFQ (§4.2) with per-class service trees
// (RealTime/BestEffort/Idle), per-process nodes holding offset-sorted
// red-black trees of pending IOs, priority-scaled time slices, and RealTime
// preemption.
//
// Simplifications vs. Linux CFQ, documented for reviewers: within a class,
// process nodes are served round-robin with slice lengths scaled by ionice
// priority (Linux additionally biases tree position by priority), and there
// is no anticipatory idling (noidle mode). Neither affects the property
// MittCFQ depends on: IOs already accepted can be pushed back by
// later-arriving higher-class IOs.
package iosched

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// Downstream is the device below a scheduler: a blockio.Device with
// device-queue backpressure (the NCQ boundary).
type Downstream interface {
	blockio.Device
	// CanAccept reports whether the device queue has a free slot.
	CanAccept() bool
	// SetSlotFreeHook registers the scheduler's refill callback.
	SetSlotFreeHook(func())
}

// Noop is the FIFO scheduler: arriving IOs enter a dispatch queue whose
// items are absorbed into the device queue as slots free up (§4.1).
type Noop struct {
	eng  *sim.Engine
	down Downstream
	fifo []*blockio.Request
	rec  *metrics.Recorder
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (n *Noop) SetRecorder(rec *metrics.Recorder) { n.rec = rec }

// NewNoop builds a noop scheduler over the device.
func NewNoop(eng *sim.Engine, down Downstream) *Noop {
	n := &Noop{eng: eng, down: down}
	down.SetSlotFreeHook(n.pump)
	return n
}

// Submit implements blockio.Device.
func (n *Noop) Submit(req *blockio.Request) {
	if req.SubmitTime == 0 {
		req.SubmitTime = n.eng.Now()
	}
	n.rec.SchedEnter(metrics.RSchedNoop, req)
	n.fifo = append(n.fifo, req)
	n.pump()
}

// InFlight implements blockio.Device.
func (n *Noop) InFlight() int { return len(n.fifo) + n.down.InFlight() }

// QueueLen returns the dispatch-queue length (excludes device-queue IOs).
func (n *Noop) QueueLen() int { return len(n.fifo) }

func (n *Noop) pump() {
	for n.down.CanAccept() && len(n.fifo) > 0 {
		req := n.fifo[0]
		n.fifo = n.fifo[1:]
		if req.Canceled() {
			n.rec.SchedDrop(metrics.RSchedNoop, req)
			req.Dropped()
			continue
		}
		n.rec.SchedExit(metrics.RSchedNoop, req)
		n.down.Submit(req)
	}
}

// CFQConfig tunes the CFQ model.
type CFQConfig struct {
	// SliceBase is the minimum time slice (lowest priority).
	SliceBase time.Duration
	// SliceStep is the additional slice per priority level above 7.
	SliceStep time.Duration
	// Quantum caps the IOs outstanding at the device (Linux cfq_quantum):
	// CFQ keeps the device queue shallow so its own ordering stays in
	// control instead of delegating everything to NCQ reordering.
	Quantum int
}

// DefaultCFQConfig returns Linux-scale slices (slice_sync is ~100ms for the
// highest priority) and a quantum of 1: the disk model is a serial server,
// so deeper NCQ queues buy no throughput and only surrender ordering
// control (and hence MittOS cancellation coverage) to device-level
// reordering.
func DefaultCFQConfig() CFQConfig {
	return CFQConfig{SliceBase: 40 * time.Millisecond, SliceStep: 10 * time.Millisecond, Quantum: 1}
}

// Slice returns the time slice granted to a node of the given priority
// (0 = highest → longest slice).
func (c CFQConfig) Slice(prio int) time.Duration {
	if prio < 0 {
		prio = 0
	}
	if prio > 7 {
		prio = 7
	}
	return c.SliceBase + time.Duration(7-prio)*c.SliceStep
}

// procNode is one process' queue inside CFQ.
type procNode struct {
	proc  int
	class blockio.Class
	prio  int
	tree  rbTree
	onRR  bool
	// headPos is the offset dispatch resumes from (ascending elevator).
	headPos int64
}

// CFQ is the Completely Fair Queueing scheduler model.
type CFQ struct {
	eng  *sim.Engine
	cfg  CFQConfig
	down Downstream

	nodes    map[int]*procNode
	rr       [3][]*procNode // round-robin per class rank (0 = RT)
	active   *procNode
	sliceEnd sim.Time

	queued       int
	onDevice     int
	dispatched   uint64
	dispatchHook func(*blockio.Request)
	dropHook     func(*blockio.Request)
	dispFree     []*cfqDisp
	rec          *metrics.Recorder
}

// cfqDisp is the pooled on-device completion wrapper installed at dispatch:
// it returns the device slot to the quantum and refills the device queue.
type cfqDisp struct {
	c    *CFQ
	prev func(*blockio.Request)
	fn   func(*blockio.Request) // pre-bound d.done
}

func (d *cfqDisp) done(r *blockio.Request) {
	c, prev := d.c, d.prev
	d.prev = nil
	c.dispFree = append(c.dispFree, d)
	c.onDevice--
	if prev != nil {
		prev(r)
	}
	c.pump()
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (c *CFQ) SetRecorder(rec *metrics.Recorder) { c.rec = rec }

// SetDropHook registers a tap invoked when a cancelled request is discarded
// from the CFQ queues (so accounting layers can release its charge).
func (c *CFQ) SetDropHook(fn func(*blockio.Request)) { c.dropHook = fn }

// SetDispatchHook registers a tap invoked when an IO leaves the CFQ queues
// for the device — the moment it stops being cancellable (§7.8.2).
func (c *CFQ) SetDispatchHook(fn func(*blockio.Request)) { c.dispatchHook = fn }

// NewCFQ builds a CFQ scheduler over the device.
func NewCFQ(eng *sim.Engine, cfg CFQConfig, down Downstream) *CFQ {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1
	}
	c := &CFQ{eng: eng, cfg: cfg, down: down, nodes: make(map[int]*procNode)}
	down.SetSlotFreeHook(c.pump)
	return c
}

// Config returns the scheduler configuration.
func (c *CFQ) Config() CFQConfig { return c.cfg }

// Submit implements blockio.Device. The request's Proc/Class/Priority choose
// (or create) its process node, mirroring ionice semantics.
func (c *CFQ) Submit(req *blockio.Request) {
	if req.SubmitTime == 0 {
		req.SubmitTime = c.eng.Now()
	}
	c.rec.SchedEnter(metrics.RSchedCFQ, req)
	node := c.node(req.Proc)
	// ionice changes apply to subsequent IOs.
	node.class = req.Class
	node.prio = req.Priority
	node.tree.Insert(req)
	c.queued++
	if !node.onRR && node != c.active {
		node.onRR = true
		r := node.class.Rank()
		c.rr[r] = append(c.rr[r], node)
	}
	c.pump()
}

func (c *CFQ) node(proc int) *procNode {
	n, ok := c.nodes[proc]
	if !ok {
		n = &procNode{proc: proc, class: blockio.ClassBestEffort, prio: 4}
		c.nodes[proc] = n
	}
	return n
}

// InFlight implements blockio.Device.
func (c *CFQ) InFlight() int { return c.queued + c.down.InFlight() }

// QueueLen returns the number of IOs held in CFQ queues (not yet at the
// device).
func (c *CFQ) QueueLen() int { return c.queued }

// Dispatched returns the total number of IOs sent to the device.
func (c *CFQ) Dispatched() uint64 { return c.dispatched }

// PendingOf returns the number of queued IOs of one process.
func (c *CFQ) PendingOf(proc int) int {
	if n, ok := c.nodes[proc]; ok {
		return n.tree.Len()
	}
	return 0
}

// Remove drops a still-queued request from its process node (MittCFQ's late
// cancellation path). It returns false if the request already left for the
// device.
func (c *CFQ) Remove(req *blockio.Request) bool {
	n, ok := c.nodes[req.Proc]
	if !ok {
		return false
	}
	if n.tree.Remove(req) {
		c.queued--
		c.rec.SchedRemove(metrics.RSchedCFQ, req)
		return true
	}
	return false
}

// ProcsAheadOf returns the process IDs whose queued IOs CFQ would service
// before a newly arriving IO from `proc` at (class, prio) — the O(P) walk
// MittCFQ performs instead of iterating every pending IO (§4.2). The order
// is: the active node, nodes of higher classes, then same-class nodes ahead
// in round-robin order.
func (c *CFQ) ProcsAheadOf(proc int, class blockio.Class) []int {
	var ahead []int
	// The active node counts only when the newcomer cannot preempt it: a
	// higher-class arrival takes over at the next dispatch decision, so
	// only the active node's device-resident IOs (accounted separately by
	// the caller) delay it.
	rank := class.Rank()
	if c.active != nil && c.active.proc != proc && c.active.tree.Len() > 0 &&
		rank >= c.active.class.Rank() {
		ahead = append(ahead, c.active.proc)
	}
	for r := 0; r <= rank; r++ {
		for _, n := range c.rr[r] {
			if n.proc == proc || n.tree.Len() == 0 {
				continue
			}
			if r < rank {
				ahead = append(ahead, n.proc)
				continue
			}
			// Same class: everyone already queued is ahead of a
			// newly-joining node (RR tail insertion). If proc is already
			// on the RR, nodes before it are ahead.
			if idxOf(c.rr[r], proc) == -1 || idxOf(c.rr[r], proc) > idxOf(c.rr[r], n.proc) {
				ahead = append(ahead, n.proc)
			}
		}
	}
	return ahead
}

func idxOf(list []*procNode, proc int) int {
	for i, n := range list {
		if n.proc == proc {
			return i
		}
	}
	return -1
}

// NodeSlice returns the time slice the proc's node currently earns — the
// bound on how long one node can hold the device per round.
func (c *CFQ) NodeSlice(proc int) time.Duration {
	if n, ok := c.nodes[proc]; ok {
		return c.cfg.Slice(n.prio)
	}
	return c.cfg.Slice(4)
}

// EachQueued visits every queued request of a process in offset order.
func (c *CFQ) EachQueued(proc int, fn func(*blockio.Request) bool) {
	if n, ok := c.nodes[proc]; ok {
		n.tree.Each(fn)
	}
}

// OnDevice returns the number of CFQ-dispatched IOs still at the device.
func (c *CFQ) OnDevice() int { return c.onDevice }

// pump dispatches IOs while the device accepts them, keeping at most
// Quantum outstanding.
func (c *CFQ) pump() {
	for c.down.CanAccept() && c.onDevice < c.cfg.Quantum {
		if c.needNewSlice() {
			c.selectNext()
		}
		if c.active == nil {
			return
		}
		req := c.dispatchFrom(c.active)
		if req == nil {
			// Node drained mid-slice; pick another immediately (noidle).
			c.active = nil
			continue
		}
		c.queued--
		if req.Canceled() {
			if c.dropHook != nil {
				c.dropHook(req)
			}
			c.rec.SchedDrop(metrics.RSchedCFQ, req)
			req.Dropped()
			continue
		}
		c.rec.SchedExit(metrics.RSchedCFQ, req)
		c.dispatched++
		c.onDevice++
		var d *cfqDisp
		if n := len(c.dispFree); n > 0 {
			d = c.dispFree[n-1]
			c.dispFree = c.dispFree[:n-1]
		} else {
			d = &cfqDisp{c: c}
			d.fn = d.done
		}
		d.prev = req.OnComplete
		req.OnComplete = d.fn
		if c.dispatchHook != nil {
			c.dispatchHook(req)
		}
		c.down.Submit(req)
	}
}

func (c *CFQ) needNewSlice() bool {
	if c.active == nil || c.active.tree.Len() == 0 {
		return true
	}
	if c.eng.Now() >= c.sliceEnd {
		return true
	}
	// RealTime preemption: an RT node waiting preempts lower classes.
	if c.active.class != blockio.ClassRealTime && len(c.rr[blockio.ClassRealTime.Rank()]) > 0 {
		return true
	}
	return false
}

// selectNext expires the active node and picks the next per CFQ policy:
// "always picks IOs from the RealTime tree first, and then from BestEffort
// and Idle. In the chosen tree, it picks a node in round robin style,
// proportional to its time slice."
func (c *CFQ) selectNext() {
	if c.active != nil {
		if c.active.tree.Len() > 0 {
			// Unfinished node goes to the back of its class RR.
			c.active.onRR = true
			r := c.active.class.Rank()
			c.rr[r] = append(c.rr[r], c.active)
		} else {
			c.active.onRR = false
		}
		c.active = nil
	}
	for r := 0; r < 3; r++ {
		for len(c.rr[r]) > 0 {
			n := c.rr[r][0]
			c.rr[r] = c.rr[r][1:]
			n.onRR = false
			if n.tree.Len() == 0 {
				continue
			}
			c.active = n
			c.sliceEnd = c.eng.Now().Add(c.cfg.Slice(n.prio))
			return
		}
	}
}

// dispatchFrom pops the node's next IO in ascending elevator order.
func (c *CFQ) dispatchFrom(n *procNode) *blockio.Request {
	for n.tree.Len() > 0 {
		req := n.tree.CeilingFrom(n.headPos)
		if req == nil {
			// Wrap the elevator.
			n.headPos = 0
			req = n.tree.Min()
		}
		n.tree.Remove(req)
		n.headPos = req.End()
		return req
	}
	return nil
}
