package iosched

import (
	"sort"
	"testing"

	"mittos/internal/blockio"
)

// FuzzRBTree drives the CFQ red-black tree with a byte-program of
// insert/pop/remove/ceiling ops and checks every answer against a reference
// model (a sorted slice ordered by the same (offset, insertion-seq) key).
// After every mutation the tree must also satisfy the red-black structural
// invariants via checkInvariants.
func FuzzRBTree(f *testing.F) {
	f.Add([]byte{0, 3, 0, 3, 2, 4, 8, 3, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 2, 2, 2})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 3, 0, 3, 1, 3, 0, 4, 2})
	f.Add([]byte{0, 7, 0, 7, 0, 7, 0, 7, 3, 1, 3, 1, 2, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		type entry struct {
			off int64
			seq uint64
			req *blockio.Request
		}
		var (
			tr    rbTree
			model []entry
			seq   uint64
		)
		// insertAt keeps the model in (offset, seq) order — the tree's key.
		insertAt := func(e entry) {
			i := sort.Search(len(model), func(i int) bool {
				if model[i].off != e.off {
					return model[i].off > e.off
				}
				return model[i].seq > e.seq
			})
			model = append(model, entry{})
			copy(model[i+1:], model[i:])
			model[i] = e
		}
		check := func(op string) {
			t.Helper()
			if tr.checkInvariants() < 0 {
				t.Fatalf("%s: red-black invariants violated (size %d)", op, len(model))
			}
			if tr.Len() != len(model) {
				t.Fatalf("%s: Len=%d model=%d", op, tr.Len(), len(model))
			}
			min := tr.Min()
			switch {
			case len(model) == 0 && min != nil:
				t.Fatalf("%s: Min=%v on empty tree", op, min)
			case len(model) > 0 && min != model[0].req:
				t.Fatalf("%s: Min offset=%d, model min offset=%d", op, min.Offset, model[0].off)
			}
		}

		for i := 0; i+1 < len(data) && i < 4096; i += 2 {
			op, arg := data[i]%5, data[i+1]
			switch op {
			case 0, 1: // insert; small offset domain to force duplicates
				off := int64(arg%32) * 4096
				req := &blockio.Request{Offset: off}
				seq++
				tr.Insert(req)
				insertAt(entry{off: off, seq: seq, req: req})
				check("insert")
			case 2: // pop min
				got := tr.PopMin()
				if len(model) == 0 {
					if got != nil {
						t.Fatalf("PopMin=%v on empty tree", got)
					}
					continue
				}
				if got != model[0].req {
					t.Fatalf("PopMin offset=%d, model min offset=%d", got.Offset, model[0].off)
				}
				model = model[1:]
				check("popmin")
			case 3: // remove by identity
				if len(model) == 0 {
					if tr.Remove(&blockio.Request{}) {
						t.Fatal("Remove of a never-inserted request returned true")
					}
					continue
				}
				i := int(arg) % len(model)
				if !tr.Remove(model[i].req) {
					t.Fatalf("Remove lost request at offset %d", model[i].off)
				}
				model = append(model[:i], model[i+1:]...)
				check("remove")
			case 4: // ceiling query
				off := int64(arg%40) * 4096
				got := tr.CeilingFrom(off)
				var want *blockio.Request
				for _, e := range model {
					if e.off >= off {
						want = e.req
						break
					}
				}
				if got != want {
					t.Fatalf("CeilingFrom(%d): got %v want %v (size %d)", off, got, want, len(model))
				}
			}
		}

		// Drain: full in-order agreement, then the tree must be empty.
		var walked []*blockio.Request
		tr.Each(func(r *blockio.Request) bool { walked = append(walked, r); return true })
		if len(walked) != len(model) {
			t.Fatalf("Each visited %d of %d", len(walked), len(model))
		}
		for i, r := range walked {
			if r != model[i].req {
				t.Fatalf("Each order diverges at %d: offset %d vs %d", i, r.Offset, model[i].off)
			}
		}
		for len(model) > 0 {
			if got := tr.PopMin(); got != model[0].req {
				t.Fatalf("drain PopMin offset=%d, want %d", got.Offset, model[0].off)
			}
			model = model[1:]
			if tr.checkInvariants() < 0 {
				t.Fatal("drain: red-black invariants violated")
			}
		}
		if tr.Len() != 0 || tr.Min() != nil {
			t.Fatal("tree not empty after drain")
		}
	})
}
