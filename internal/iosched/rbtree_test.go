package iosched

import (
	"sort"
	"testing"
	"testing/quick"

	"mittos/internal/blockio"
)

func req(off int64) *blockio.Request {
	return &blockio.Request{Op: blockio.Read, Offset: off, Size: 4096}
}

func TestRBTreeInsertAscendingIteration(t *testing.T) {
	var tr rbTree
	offs := []int64{50, 10, 90, 30, 70, 20, 80, 40, 60, 0}
	for _, o := range offs {
		tr.Insert(req(o))
	}
	if tr.Len() != len(offs) {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []int64
	tr.Each(func(r *blockio.Request) bool {
		got = append(got, r.Offset)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("iteration not sorted: %v", got)
	}
}

func TestRBTreeMinPopMin(t *testing.T) {
	var tr rbTree
	for _, o := range []int64{5, 3, 8, 1, 9} {
		tr.Insert(req(o))
	}
	if tr.Min().Offset != 1 {
		t.Fatalf("Min = %d", tr.Min().Offset)
	}
	want := []int64{1, 3, 5, 8, 9}
	for _, w := range want {
		r := tr.PopMin()
		if r.Offset != w {
			t.Fatalf("PopMin = %d, want %d", r.Offset, w)
		}
	}
	if tr.PopMin() != nil || tr.Min() != nil {
		t.Fatal("empty tree should return nil")
	}
}

func TestRBTreeDuplicateOffsets(t *testing.T) {
	var tr rbTree
	a, b, c := req(42), req(42), req(42)
	tr.Insert(a)
	tr.Insert(b)
	tr.Insert(c)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d with duplicates", tr.Len())
	}
	if !tr.Remove(b) {
		t.Fatal("failed to remove middle duplicate")
	}
	if tr.Remove(b) {
		t.Fatal("double remove succeeded")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d after removal", tr.Len())
	}
	seen := map[*blockio.Request]bool{}
	tr.Each(func(r *blockio.Request) bool { seen[r] = true; return true })
	if !seen[a] || !seen[c] || seen[b] {
		t.Fatal("wrong survivors after duplicate removal")
	}
}

func TestRBTreeCeilingFrom(t *testing.T) {
	var tr rbTree
	for _, o := range []int64{10, 20, 30} {
		tr.Insert(req(o))
	}
	cases := []struct {
		from int64
		want int64
	}{{0, 10}, {10, 10}, {11, 20}, {25, 30}, {30, 30}}
	for _, c := range cases {
		got := tr.CeilingFrom(c.from)
		if got == nil || got.Offset != c.want {
			t.Fatalf("CeilingFrom(%d) = %v, want %d", c.from, got, c.want)
		}
	}
	if tr.CeilingFrom(31) != nil {
		t.Fatal("CeilingFrom past max should be nil")
	}
}

func TestRBTreeEachEarlyStop(t *testing.T) {
	var tr rbTree
	for i := int64(0); i < 10; i++ {
		tr.Insert(req(i))
	}
	count := 0
	tr.Each(func(*blockio.Request) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRBTreeRemoveMissing(t *testing.T) {
	var tr rbTree
	tr.Insert(req(1))
	if tr.Remove(req(1)) {
		t.Fatal("removed a request that was never inserted (identity match required)")
	}
}

func TestPropertyRBTreeInvariantsUnderInsertDelete(t *testing.T) {
	f := func(ops []int16) bool {
		var tr rbTree
		live := map[int64][]*blockio.Request{}
		n := 0
		for _, op := range ops {
			off := int64(op % 64)
			if off < 0 {
				off = -off
			}
			if op >= 0 {
				r := req(off)
				tr.Insert(r)
				live[off] = append(live[off], r)
				n++
			} else if rs := live[off]; len(rs) > 0 {
				r := rs[len(rs)-1]
				live[off] = rs[:len(rs)-1]
				if !tr.Remove(r) {
					return false
				}
				n--
			}
			if tr.Len() != n {
				return false
			}
			if tr.checkInvariants() < 0 {
				return false
			}
		}
		// Final iteration must be sorted and complete.
		var got []int64
		tr.Each(func(r *blockio.Request) bool { got = append(got, r.Offset); return true })
		if len(got) != n {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPopMinDrainsSorted(t *testing.T) {
	f := func(offs []uint16) bool {
		var tr rbTree
		for _, o := range offs {
			tr.Insert(req(int64(o)))
		}
		prev := int64(-1)
		for tr.Len() > 0 {
			r := tr.PopMin()
			if r.Offset < prev {
				return false
			}
			prev = r.Offset
			if tr.checkInvariants() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
