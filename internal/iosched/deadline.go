package iosched

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// DeadlineConfig tunes the deadline scheduler model.
type DeadlineConfig struct {
	// ReadExpire / WriteExpire bound how long a request may sit in its
	// FIFO before it preempts sorted dispatch (Linux defaults: 500ms/5s).
	ReadExpire  time.Duration
	WriteExpire time.Duration
	// FifoBatch is the number of sorted requests dispatched per batch.
	FifoBatch int
	// WritesStarved caps consecutive read batches before writes get one.
	WritesStarved int
}

// DefaultDeadlineConfig mirrors the Linux deadline scheduler's defaults.
func DefaultDeadlineConfig() DeadlineConfig {
	return DeadlineConfig{
		ReadExpire:    500 * time.Millisecond,
		WriteExpire:   5 * time.Second,
		FifoBatch:     16,
		WritesStarved: 2,
	}
}

// DeadlineSched models Linux's deadline IO scheduler (§3.4 lists it among
// the disciplines an EBUSY predictor must understand): per-direction
// offset-sorted dispatch in batches, with arrival-order FIFOs whose expiry
// preempts sorting, and read preference bounded by write starvation.
//
// Note the name collision is historical, not semantic: the *scheduler's*
// expiries are internal fairness knobs; MittOS deadlines are application
// SLOs layered on top (MittDeadline in internal/core).
type DeadlineSched struct {
	eng  *sim.Engine
	cfg  DeadlineConfig
	down Downstream

	sorted [2]rbTree             // by offset, per direction (0=read, 1=write)
	fifo   [2][]*blockio.Request // arrival order, per direction

	headPos    int64
	batchLeft  int
	batchDir   int
	starved    int
	queued     int
	onDevice   int
	dispatched uint64

	dispatchHook func(*blockio.Request)
}

// NewDeadline builds the scheduler over the device.
func NewDeadline(eng *sim.Engine, cfg DeadlineConfig, down Downstream) *DeadlineSched {
	if cfg.FifoBatch <= 0 {
		cfg.FifoBatch = 1
	}
	if cfg.WritesStarved <= 0 {
		cfg.WritesStarved = 1
	}
	d := &DeadlineSched{eng: eng, cfg: cfg, down: down}
	down.SetSlotFreeHook(d.pump)
	return d
}

// Config returns the scheduler configuration.
func (d *DeadlineSched) Config() DeadlineConfig { return d.cfg }

// SetDispatchHook registers a tap on device-bound requests.
func (d *DeadlineSched) SetDispatchHook(fn func(*blockio.Request)) { d.dispatchHook = fn }

func dirOf(op blockio.Op) int {
	if op == blockio.Write {
		return 1
	}
	return 0
}

// Submit implements blockio.Device.
func (d *DeadlineSched) Submit(req *blockio.Request) {
	if req.SubmitTime == 0 {
		req.SubmitTime = d.eng.Now()
	}
	dir := dirOf(req.Op)
	d.sorted[dir].Insert(req)
	d.fifo[dir] = append(d.fifo[dir], req)
	d.queued++
	d.pump()
}

// InFlight implements blockio.Device.
func (d *DeadlineSched) InFlight() int { return d.queued + d.down.InFlight() }

// QueueLen returns scheduler-held requests.
func (d *DeadlineSched) QueueLen() int { return d.queued }

// Dispatched returns total requests sent to the device.
func (d *DeadlineSched) Dispatched() uint64 { return d.dispatched }

// expiry returns the FIFO deadline for a direction.
func (d *DeadlineSched) expiry(dir int) time.Duration {
	if dir == 1 {
		return d.cfg.WriteExpire
	}
	return d.cfg.ReadExpire
}

// expiredHead reports whether the direction's oldest request has expired.
func (d *DeadlineSched) expiredHead(dir int) *blockio.Request {
	d.pruneFifo(dir)
	if len(d.fifo[dir]) == 0 {
		return nil
	}
	head := d.fifo[dir][0]
	if d.eng.Now().Sub(head.SubmitTime) > d.expiry(dir) {
		return head
	}
	return nil
}

// pruneFifo drops cancelled heads.
func (d *DeadlineSched) pruneFifo(dir int) {
	for len(d.fifo[dir]) > 0 && d.fifo[dir][0].Canceled() {
		d.fifo[dir] = d.fifo[dir][1:]
	}
}

// pump dispatches while the device accepts, keeping one request outstanding
// (like CFQ's quantum: the serial disk gains nothing from deeper NCQ and
// the scheduler keeps revocation control).
func (d *DeadlineSched) pump() {
	for d.down.CanAccept() && d.onDevice < 1 {
		req := d.next()
		if req == nil {
			return
		}
		d.queued--
		if req.Canceled() {
			continue
		}
		d.dispatched++
		d.onDevice++
		prev := req.OnComplete
		req.OnComplete = func(r *blockio.Request) {
			d.onDevice--
			if prev != nil {
				prev(r)
			}
			d.pump()
		}
		if d.dispatchHook != nil {
			d.dispatchHook(req)
		}
		d.down.Submit(req)
	}
}

// next picks per the deadline policy.
func (d *DeadlineSched) next() *blockio.Request {
	// Continue the current batch while sorted successors exist.
	if d.batchLeft > 0 {
		if req := d.sorted[d.batchDir].CeilingFrom(d.headPos); req != nil {
			d.take(d.batchDir, req)
			return req
		}
		d.batchLeft = 0
	}
	// Choose a direction: reads preferred; writes when starved or no reads.
	dir := 0
	hasReads := d.sorted[0].Len() > 0
	hasWrites := d.sorted[1].Len() > 0
	switch {
	case !hasReads && !hasWrites:
		return nil
	case !hasReads:
		dir = 1
	case hasWrites && d.starved >= d.cfg.WritesStarved:
		dir = 1
	}
	if dir == 1 {
		d.starved = 0
	} else if hasWrites {
		d.starved++
	}
	// Expired head preempts sorted order; otherwise resume the elevator.
	start := d.expiredHead(dir)
	if start == nil {
		start = d.sorted[dir].CeilingFrom(d.headPos)
		if start == nil {
			start = d.sorted[dir].Min() // wrap
		}
	}
	if start == nil {
		return nil
	}
	d.batchDir = dir
	d.batchLeft = d.cfg.FifoBatch
	d.take(dir, start)
	return start
}

// take removes a request from both structures and advances the elevator.
func (d *DeadlineSched) take(dir int, req *blockio.Request) {
	d.sorted[dir].Remove(req)
	for i, r := range d.fifo[dir] {
		if r == req {
			d.fifo[dir] = append(d.fifo[dir][:i], d.fifo[dir][i+1:]...)
			break
		}
	}
	d.headPos = req.End()
	if d.batchLeft > 0 {
		d.batchLeft--
	}
}
