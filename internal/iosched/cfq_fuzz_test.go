package iosched

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// fuzzDevice is a Downstream whose completions are driven explicitly by the
// fuzz program, so dispatch/complete interleavings are fully controllable.
type fuzzDevice struct {
	eng   *sim.Engine
	depth int
	inflt []*blockio.Request
	hook  func()
}

func (d *fuzzDevice) Submit(req *blockio.Request) {
	req.DispatchTime = d.eng.Now()
	d.inflt = append(d.inflt, req)
}
func (d *fuzzDevice) InFlight() int            { return len(d.inflt) }
func (d *fuzzDevice) CanAccept() bool          { return len(d.inflt) < d.depth }
func (d *fuzzDevice) SetSlotFreeHook(f func()) { d.hook = f }

func (d *fuzzDevice) completeOne() bool {
	if len(d.inflt) == 0 {
		return false
	}
	r := d.inflt[0]
	d.inflt = d.inflt[1:]
	r.CompleteTime = d.eng.Now()
	if r.OnComplete != nil {
		r.OnComplete(r)
	}
	if d.hook != nil {
		d.hook()
	}
	return true
}

// FuzzCFQAggregates drives CFQ with a byte-program of submits (including
// ionice class/priority changes), explicit device completions, removals,
// cancellations, charge mutations, and virtual-time advancement. After every
// operation it checks:
//
//   - the augmented service trees' red-black + subtree-sum invariants
//     (checkAggregates), which rotations must preserve;
//   - AheadCharge (O(log P) prefix query) against the retained O(P)
//     ProcsAheadOf walk combined with per-proc clamped charges;
//   - IsAheadOf membership against the same walk.
func FuzzCFQAggregates(f *testing.F) {
	f.Add([]byte{0, 17, 0, 42, 0, 99, 1, 0, 3, 20, 0, 7, 2, 1, 4, 20, 5, 9})
	f.Add([]byte{0, 0, 0, 54, 0, 108, 0, 162, 0, 216, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 5, 3, 200, 0, 11, 3, 100, 5, 30, 0, 23, 2, 0, 1, 0, 4, 250})
	f.Add([]byte{0, 1, 0, 2, 6, 3, 0, 4, 6, 5, 1, 0, 6, 7, 5, 45, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := sim.NewEngine()
		dev := &fuzzDevice{eng: eng, depth: 2}
		cfg := CFQConfig{SliceBase: 8 * time.Millisecond, SliceStep: 2 * time.Millisecond, Quantum: 2}
		c := NewCFQ(eng, cfg, dev)

		const nProcs = 6
		// naive recomputes AheadCharge from the walking oracle: the clamped
		// charge of every process the walk says is ahead.
		naive := func(proc int, class blockio.Class) time.Duration {
			var sum time.Duration
			for _, p := range c.ProcsAheadOf(proc, class) {
				ch := c.ProcCharge(p)
				if s := c.NodeSlice(p); ch > s {
					ch = s
				}
				sum += ch
			}
			return sum
		}
		check := func(op string) {
			t.Helper()
			for r := 0; r < 3; r++ {
				if c.st[r].checkAggregates() < 0 {
					t.Fatalf("%s: service tree %d invariants violated", op, r)
				}
			}
			// nProcs+1 also queries a process CFQ has never seen.
			for proc := 0; proc <= nProcs; proc++ {
				for cls := 0; cls < 3; cls++ {
					class := blockio.Class(cls)
					want := naive(proc, class)
					if got := c.AheadCharge(proc, class); got != want {
						t.Fatalf("%s: AheadCharge(%d,%v)=%v, oracle %v", op, proc, class, got, want)
					}
					ahead := c.ProcsAheadOf(proc, class)
					for cand := 0; cand <= nProcs; cand++ {
						if got, want := c.IsAheadOf(cand, proc, class), containsInt(ahead, cand); got != want {
							t.Fatalf("%s: IsAheadOf(%d,%d,%v)=%v, walk says %v",
								op, cand, proc, class, got, want)
						}
					}
				}
			}
		}

		var live []*blockio.Request
		steps := len(data) / 2
		if steps > 512 {
			steps = 512
		}
		for i := 0; i < steps*2; i += 2 {
			op, arg := data[i]%7, data[i+1]
			switch op {
			case 0: // submit (also applies ionice class/prio changes)
				r := &blockio.Request{Op: blockio.Read,
					Offset: int64(arg) * 8192, Size: 4096,
					Proc:     int(arg) % nProcs,
					Class:    blockio.Class(int(arg) / nProcs % 3),
					Priority: int(arg) / 18 % 8,
				}
				r.OnComplete = func(*blockio.Request) {}
				c.Submit(r)
				live = append(live, r)
				check("submit")
			case 1: // complete the oldest on-device IO
				dev.completeOne()
				check("complete")
			case 2: // remove a tracked request (late cancellation path)
				if len(live) == 0 {
					continue
				}
				j := int(arg) % len(live)
				c.Remove(live[j])
				live = append(live[:j], live[j+1:]...)
				check("remove")
			case 3: // charge predicted IO time
				c.AddProcCharge(int(arg)%nProcs, time.Duration(arg)*time.Millisecond/4)
				check("charge")
			case 4: // release predicted IO time (floors at zero)
				c.ReleaseProcCharge(int(arg)%nProcs, time.Duration(arg)*time.Millisecond/4)
				check("release")
			case 5: // advance virtual time (slice expiry on the next dispatch)
				eng.Schedule(time.Duration(arg%50)*time.Millisecond, func() {})
				eng.Run()
				check("advance")
			case 6: // cancel in place: dropped at its dispatch attempt
				if len(live) == 0 {
					continue
				}
				live[int(arg)%len(live)].Cancel()
				check("cancel")
			}
		}

		// Drain: every queued IO must dispatch (or drop) and complete.
		for {
			progressed := false
			for dev.completeOne() {
				progressed = true
			}
			if c.QueueLen() == 0 && len(dev.inflt) == 0 {
				break
			}
			if !progressed {
				t.Fatalf("stuck: %d queued, %d on device", c.QueueLen(), len(dev.inflt))
			}
		}
		check("drain")
		if c.InFlight() != 0 {
			t.Fatalf("InFlight = %d after drain", c.InFlight())
		}
	})
}
