package iosched

import (
	"testing"
	"time"
)

// naivePrefix walks the tree in round-robin order summing contribs until it
// reaches target — the reference for prefixBefore.
func naivePrefix(t *serviceTree, target *procNode) time.Duration {
	var sum time.Duration
	t.each(func(pn *procNode) bool {
		if pn == target {
			return false
		}
		sum += pn.contrib
		return true
	})
	return sum
}

func naiveTotal(t *serviceTree) time.Duration {
	var sum time.Duration
	t.each(func(pn *procNode) bool { sum += pn.contrib; return true })
	return sum
}

func TestServiceTreeAppendPopFIFO(t *testing.T) {
	var st serviceTree
	var seq uint64
	var order []*procNode
	for i := 0; i < 60; i++ {
		pn := &procNode{proc: i, contrib: time.Duration(i%7+1) * time.Millisecond}
		seq++
		st.append(pn, seq)
		order = append(order, pn)
		if st.checkAggregates() < 0 {
			t.Fatalf("aggregates broken after append %d", i)
		}
		if st.total() != naiveTotal(&st) {
			t.Fatalf("total()=%v, naive=%v after append %d", st.total(), naiveTotal(&st), i)
		}
	}
	if st.size != 60 {
		t.Fatalf("size = %d, want 60", st.size)
	}
	for i, want := range order {
		got := st.popMin()
		if got != want {
			t.Fatalf("popMin %d returned proc %d, want %d (FIFO)", i, got.proc, want.proc)
		}
		if got.st != nil {
			t.Fatalf("popped node still points at a tree slot")
		}
		if st.checkAggregates() < 0 {
			t.Fatalf("aggregates broken after pop %d", i)
		}
	}
	if st.popMin() != nil || st.size != 0 || st.total() != 0 {
		t.Fatal("tree not empty after drain")
	}
}

// TestServiceTreeRotationAggregates exercises the rotation paths hard:
// monotonic appends descend the right spine, so every insertFixup rotates,
// and interleaved pops exercise deleteFixup. The subtree sums and every
// prefix query must survive each restructure.
func TestServiceTreeRotationAggregates(t *testing.T) {
	var st serviceTree
	var seq uint64
	live := map[*procNode]bool{}
	checkAll := func(op string) {
		t.Helper()
		if st.checkAggregates() < 0 {
			t.Fatalf("%s: invariants violated (size %d)", op, st.size)
		}
		if st.total() != naiveTotal(&st) {
			t.Fatalf("%s: total mismatch", op)
		}
		for pn := range live {
			if got, want := st.prefixBefore(pn.st), naivePrefix(&st, pn); got != want {
				t.Fatalf("%s: prefixBefore(proc %d) = %v, naive %v", op, pn.proc, got, want)
			}
		}
	}
	for i := 0; i < 200; i++ {
		pn := &procNode{proc: i, contrib: time.Duration(i%13) * time.Millisecond}
		seq++
		st.append(pn, seq)
		live[pn] = true
		checkAll("append")
		if i%3 == 2 {
			popped := st.popMin()
			delete(live, popped)
			checkAll("popMin")
		}
		if i%5 == 4 {
			// In-place contrib change with delta propagation.
			var victim *procNode
			for pn := range live {
				victim = pn
				break
			}
			delta := time.Duration(i%9-4) * time.Millisecond
			if victim.contrib+delta < 0 {
				delta = -victim.contrib
			}
			victim.contrib += delta
			st.update(victim.st, delta)
			checkAll("update")
		}
	}
	for st.size > 0 {
		delete(live, st.popMin())
		checkAll("drain")
	}
}

func TestServiceTreeNodeRecycling(t *testing.T) {
	var st serviceTree
	var seq uint64
	// Fill and drain twice: the second round must reuse freelist nodes
	// without stale state leaking through.
	for round := 0; round < 2; round++ {
		for i := 0; i < 20; i++ {
			seq++
			st.append(&procNode{proc: i, contrib: time.Millisecond}, seq)
		}
		if st.total() != 20*time.Millisecond {
			t.Fatalf("round %d: total = %v", round, st.total())
		}
		for st.size > 0 {
			st.popMin()
			if st.checkAggregates() < 0 {
				t.Fatalf("round %d: invariants violated on drain", round)
			}
		}
	}
}
