// Config-string form of a Schedule, for `mittbench -faults`. The grammar is
// a semicolon-separated event list; each event is a kind keyword followed by
// key=value fields:
//
//	failslow  node=1 at=2s for=4s x=8        device timing ×8
//	eio       node=1 at=2s for=4s rate=0.02  2% of completions fail
//	crash     node=2 at=4s for=3s            fail-stop, restart at 7s
//	netslow   at=7s for=1s add=200us jitter=50us
//	miscal    node=3 at=5s for=4s bias=2ms scale=1.5
//	cachedrop node=0 at=3s frac=0.5          one-shot eviction
//
// `node=all` (the default when node is omitted) targets every node.
// Durations use Go syntax (300us, 2ms, 1.5s). String() renders the
// canonical form, and ParseSchedule(s.String()) reproduces s exactly.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSchedule parses the -faults config-string grammar above.
func ParseSchedule(s string) (*Schedule, error) {
	sch := &Schedule{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		sch.Events = append(sch.Events, e)
	}
	return sch, nil
}

func parseEvent(s string) (Event, error) {
	fields := strings.Fields(s)
	e := Event{Node: AllNodes}
	kind := fields[0]
	found := false
	for k, name := range kindNames {
		if name == kind {
			e.Kind = Kind(k)
			found = true
			break
		}
	}
	if !found {
		return e, fmt.Errorf("faults: unknown fault kind %q", kind)
	}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return e, fmt.Errorf("faults: %s: field %q is not key=value", kind, f)
		}
		var err error
		switch {
		case key == "node" && e.Kind != NetDegrade:
			if val == "all" {
				e.Node = AllNodes
				break
			}
			var n int
			if n, err = strconv.Atoi(val); err == nil {
				if n < 0 {
					err = fmt.Errorf("negative node %d", n)
				}
				e.Node = n
			}
		case key == "at":
			e.At, err = parseDur(val)
		case key == "for" && e.Kind != CachePressure:
			e.For, err = parseDur(val)
		case key == "x" && e.Kind == FailSlow:
			e.Factor, err = parseFloat(val)
		case key == "rate" && e.Kind == IOErrors:
			e.Factor, err = parseFloat(val)
		case key == "frac" && e.Kind == CachePressure:
			e.Factor, err = parseFloat(val)
		case key == "add" && e.Kind == NetDegrade:
			e.Extra, err = parseDur(val)
		case key == "jitter" && e.Kind == NetDegrade:
			e.Jitter, err = parseDur(val)
		case key == "bias" && e.Kind == Miscalibrate:
			e.Extra, err = parseDur(val)
		case key == "scale" && e.Kind == Miscalibrate:
			e.Scale, err = parseFloat(val)
		default:
			return e, fmt.Errorf("faults: %s does not take %q", kind, key)
		}
		if err != nil {
			return e, fmt.Errorf("faults: %s: bad %s %q: %v", kind, key, val, err)
		}
	}
	if err := e.Validate(); err != nil {
		return e, err
	}
	return e, nil
}

func parseDur(s string) (time.Duration, error) {
	return time.ParseDuration(s)
}

func parseFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	switch {
	case f != f: // NaN
		return 0, fmt.Errorf("NaN")
	case f > 1e18 || f < -1e18: // also rejects ±Inf
		return 0, fmt.Errorf("out of range")
	}
	return f, nil
}

// String renders the event in the canonical config-string form.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	if e.Kind != NetDegrade {
		if e.Node == AllNodes {
			b.WriteString(" node=all")
		} else {
			fmt.Fprintf(&b, " node=%d", e.Node)
		}
	}
	fmt.Fprintf(&b, " at=%v", e.At)
	if e.For > 0 && e.Kind != CachePressure {
		fmt.Fprintf(&b, " for=%v", e.For)
	}
	switch e.Kind {
	case FailSlow:
		fmt.Fprintf(&b, " x=%s", fmtFloat(e.Factor))
	case IOErrors:
		fmt.Fprintf(&b, " rate=%s", fmtFloat(e.Factor))
	case CachePressure:
		fmt.Fprintf(&b, " frac=%s", fmtFloat(e.Factor))
	case NetDegrade:
		if e.Extra != 0 {
			fmt.Fprintf(&b, " add=%v", e.Extra)
		}
		if e.Jitter != 0 {
			fmt.Fprintf(&b, " jitter=%v", e.Jitter)
		}
	case Miscalibrate:
		if e.Extra != 0 {
			fmt.Fprintf(&b, " bias=%v", e.Extra)
		}
		if e.Scale != 0 {
			fmt.Fprintf(&b, " scale=%s", fmtFloat(e.Scale))
		}
	}
	return b.String()
}

// String renders the schedule in the canonical config-string form;
// ParseSchedule inverts it exactly.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
