// Package faults is the deterministic fault-injection subsystem: a typed
// schedule of fault events fired by the virtual clock. It covers the
// degradation modes MittOS's motivation names — fail-slow devices, crashed
// nodes, flaky media (EIO), congested networks — plus the one MittOS itself
// can suffer: a miscalibrated latency predictor (the §7.6 accuracy story,
// and §8.1's "what if the profile goes stale").
//
// The package knows nothing about concrete resources. A Schedule fires
// against an Injector — the cluster layer provides one — so faults compose
// with any fleet shape. Determinism follows from two rules: events fire at
// fixed virtual times through the engine (same heap discipline as every
// other event), and injectors draw randomness only from their own forked
// RNG streams, only while a fault is active. A schedule that is never
// started, or an injection rate of zero, draws nothing and perturbs
// nothing: faults-off is byte-identical to faults-absent.
package faults

import (
	"fmt"
	"time"

	"mittos/internal/sim"
)

// Kind is the fault type.
type Kind uint8

// Fault kinds. Each maps to one Injector method pair (apply at At, restore
// at At+For).
const (
	// FailSlow scales a node's device timing costs (disk seek/rotation/
	// transfer, SSD chip read/program/channel transfer) by Factor. The
	// device limps; the Mitt* predictor keeps its healthy profile — which
	// is exactly the staleness hazard §8.1 discusses.
	FailSlow Kind = iota
	// IOErrors completes a fraction (Factor) of a node's device IOs with
	// EIO instead of success.
	IOErrors
	// Crash takes a node down fail-stop: in-flight calls error out, new
	// calls are refused until the window ends (restart). Storage state
	// survives.
	Crash
	// NetDegrade adds Extra latency (and Jitter stddev) to every network
	// hop. Node is ignored: the fabric is shared.
	NetDegrade
	// Miscalibrate distorts a node's Mitt* wait predictions: every
	// predicted wait becomes wait×Scale + Extra (Scale 0 means "no
	// scaling"). Only layers built with Mitt enabled feel it.
	Miscalibrate
	// CachePressure evicts a fraction (Factor) of a node's OS buffer
	// cache once, at At — a one-shot fault with no restore window.
	CachePressure
)

var kindNames = [...]string{
	FailSlow:      "failslow",
	IOErrors:      "eio",
	Crash:         "crash",
	NetDegrade:    "netslow",
	Miscalibrate:  "miscal",
	CachePressure: "cachedrop",
}

// String names the kind with its config-string keyword.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AllNodes targets every node in the fleet.
const AllNodes = -1

// Event is one scheduled fault: a kind, a target node, an onset time, a
// window length, and kind-specific magnitudes.
type Event struct {
	Kind Kind
	// Node is the target node index, or AllNodes. NetDegrade ignores it.
	Node int
	// At is the virtual-time onset, relative to Schedule.Start.
	At time.Duration
	// For is the window length; the restore fires at At+For. Zero means
	// the fault holds until the end of the run (CachePressure is one-shot
	// and ignores For).
	For time.Duration
	// Factor is the kind's scalar magnitude: FailSlow slowdown ×(>1 is
	// slower), IOErrors EIO rate in [0,1], CachePressure evicted fraction
	// in (0,1].
	Factor float64
	// Extra is NetDegrade's added hop latency, or Miscalibrate's wait
	// bias (may be negative: an optimistic predictor).
	Extra time.Duration
	// Jitter is NetDegrade's added hop jitter stddev.
	Jitter time.Duration
	// Scale is Miscalibrate's multiplicative distortion (0 = none).
	Scale float64
}

// Validate checks the event's fields against its kind's contract.
func (e Event) Validate() error {
	if e.Node < AllNodes {
		return fmt.Errorf("faults: %s: bad node %d", e.Kind, e.Node)
	}
	if e.At < 0 || e.For < 0 {
		return fmt.Errorf("faults: %s: negative time (at=%v for=%v)", e.Kind, e.At, e.For)
	}
	switch e.Kind {
	case FailSlow:
		if e.Factor <= 0 {
			return fmt.Errorf("faults: failslow: factor must be > 0, got %g", e.Factor)
		}
	case IOErrors:
		if e.Factor < 0 || e.Factor > 1 {
			return fmt.Errorf("faults: eio: rate must be in [0,1], got %g", e.Factor)
		}
	case Crash:
		// No magnitude.
	case NetDegrade:
		if e.Extra < 0 || e.Jitter < 0 {
			return fmt.Errorf("faults: netslow: negative add/jitter (%v/%v)", e.Extra, e.Jitter)
		}
		if e.Extra == 0 && e.Jitter == 0 {
			return fmt.Errorf("faults: netslow: add and jitter both zero")
		}
	case Miscalibrate:
		if e.Scale < 0 {
			return fmt.Errorf("faults: miscal: scale must be >= 0, got %g", e.Scale)
		}
		if e.Extra == 0 && e.Scale == 0 {
			return fmt.Errorf("faults: miscal: bias and scale both zero")
		}
	case CachePressure:
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("faults: cachedrop: frac must be in (0,1], got %g", e.Factor)
		}
	default:
		return fmt.Errorf("faults: unknown kind %d", uint8(e.Kind))
	}
	return nil
}

// Injector is what a Schedule fires against: the seam between the abstract
// fault timeline and concrete resources. cluster.FaultAdapter implements it
// for a replica fleet; tests implement it with a recorder.
type Injector interface {
	// FailSlow scales node's device timing by factor (1 restores).
	FailSlow(node int, factor float64)
	// SetIOErrorRate makes node's device complete IOs with EIO at rate
	// (0 restores).
	SetIOErrorRate(node int, rate float64)
	// Crash takes node down fail-stop; Revive brings it back.
	Crash(node int)
	Revive(node int)
	// NetDegrade adds per-hop latency/jitter fleet-wide; NetRestore heals.
	NetDegrade(extraLatency, extraJitter time.Duration)
	NetRestore()
	// Miscalibrate distorts node's Mitt* wait predictions to
	// wait×scale + bias ((0,0) restores).
	Miscalibrate(node int, bias time.Duration, scale float64)
	// CachePressure evicts frac of node's OS cache, once.
	CachePressure(node int, frac float64)
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

// Add validates and appends an event; it panics on an invalid event so
// programmatic schedules fail loudly at construction.
func (s *Schedule) Add(e Event) *Schedule {
	if err := e.Validate(); err != nil {
		panic(err)
	}
	s.Events = append(s.Events, e)
	return s
}

// Validate checks every event.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Start schedules every event's apply (at At) and restore (at At+For, when
// For > 0) on the engine, firing against inj. Offsets are relative to the
// engine's current virtual time. Startup allocates (one closure per edge);
// nothing allocates once the run is going.
func (s *Schedule) Start(eng *sim.Engine, inj Injector) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	for _, e := range s.Events {
		e := e
		eng.After(e.At, func() { apply(inj, e) })
		if e.For > 0 && e.Kind != CachePressure {
			eng.After(e.At+e.For, func() { restore(inj, e) })
		}
	}
}

func apply(inj Injector, e Event) {
	switch e.Kind {
	case FailSlow:
		inj.FailSlow(e.Node, e.Factor)
	case IOErrors:
		inj.SetIOErrorRate(e.Node, e.Factor)
	case Crash:
		inj.Crash(e.Node)
	case NetDegrade:
		inj.NetDegrade(e.Extra, e.Jitter)
	case Miscalibrate:
		inj.Miscalibrate(e.Node, e.Extra, e.Scale)
	case CachePressure:
		inj.CachePressure(e.Node, e.Factor)
	}
}

func restore(inj Injector, e Event) {
	switch e.Kind {
	case FailSlow:
		inj.FailSlow(e.Node, 1)
	case IOErrors:
		inj.SetIOErrorRate(e.Node, 0)
	case Crash:
		inj.Revive(e.Node)
	case NetDegrade:
		inj.NetRestore()
	case Miscalibrate:
		inj.Miscalibrate(e.Node, 0, 0)
	}
}
