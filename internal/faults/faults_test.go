package faults

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"mittos/internal/sim"
)

// recInjector records every injector call with the virtual time it fired.
type recInjector struct {
	eng   *sim.Engine
	calls []string
}

func (r *recInjector) log(format string, args ...any) {
	r.calls = append(r.calls, fmt.Sprintf("%v ", r.eng.Now())+fmt.Sprintf(format, args...))
}

func (r *recInjector) FailSlow(node int, factor float64) { r.log("failslow node=%d x=%g", node, factor) }
func (r *recInjector) SetIOErrorRate(node int, rate float64) {
	r.log("eio node=%d rate=%g", node, rate)
}
func (r *recInjector) Crash(node int)  { r.log("crash node=%d", node) }
func (r *recInjector) Revive(node int) { r.log("revive node=%d", node) }
func (r *recInjector) NetDegrade(extra, jitter time.Duration) {
	r.log("netslow add=%v jitter=%v", extra, jitter)
}
func (r *recInjector) NetRestore() { r.log("netrestore") }
func (r *recInjector) Miscalibrate(node int, bias time.Duration, scale float64) {
	r.log("miscal node=%d bias=%v scale=%g", node, bias, scale)
}
func (r *recInjector) CachePressure(node int, frac float64) {
	r.log("cachedrop node=%d frac=%g", node, frac)
}

func TestScheduleFiresApplyAndRestore(t *testing.T) {
	eng := sim.NewEngine()
	inj := &recInjector{eng: eng}
	s := &Schedule{}
	s.Add(Event{Kind: FailSlow, Node: 1, At: 2 * time.Second, For: 3 * time.Second, Factor: 8})
	s.Add(Event{Kind: IOErrors, Node: 1, At: 2 * time.Second, For: 3 * time.Second, Factor: 0.02})
	s.Add(Event{Kind: Crash, Node: 2, At: 4 * time.Second, For: 2 * time.Second})
	s.Add(Event{Kind: NetDegrade, At: 1 * time.Second, For: 1 * time.Second,
		Extra: 200 * time.Microsecond, Jitter: 50 * time.Microsecond})
	s.Add(Event{Kind: Miscalibrate, Node: 3, At: 5 * time.Second, Extra: 2 * time.Millisecond, Scale: 1.5})
	s.Add(Event{Kind: CachePressure, Node: 0, At: 3 * time.Second, Factor: 0.5})
	s.Start(eng, inj)
	eng.Run()

	want := []string{
		"1s netslow add=200µs jitter=50µs",
		"2s failslow node=1 x=8",
		"2s eio node=1 rate=0.02",
		"2s netrestore",
		"3s cachedrop node=0 frac=0.5",
		"4s crash node=2",
		"5s failslow node=1 x=1",
		"5s eio node=1 rate=0",
		"5s miscal node=3 bias=2ms scale=1.5",
		"6s revive node=2",
	}
	if !reflect.DeepEqual(inj.calls, want) {
		t.Fatalf("fired:\n%s\nwant:\n%s", strings.Join(inj.calls, "\n"), strings.Join(want, "\n"))
	}
}

func TestScheduleNoForMeansNoRestore(t *testing.T) {
	eng := sim.NewEngine()
	inj := &recInjector{eng: eng}
	s := (&Schedule{}).Add(Event{Kind: Crash, Node: 0, At: time.Second})
	s.Start(eng, inj)
	eng.Run()
	want := []string{"1s crash node=0"}
	if !reflect.DeepEqual(inj.calls, want) {
		t.Fatalf("fired %v, want %v", inj.calls, want)
	}
}

func TestAddPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted a zero-factor failslow")
		}
	}()
	(&Schedule{}).Add(Event{Kind: FailSlow, Node: 0, At: time.Second})
}

func TestParseScheduleRoundTrip(t *testing.T) {
	in := "failslow node=1 at=2s for=4s x=8; eio node=1 at=2s for=4s rate=0.02; " +
		"crash node=2 at=4s for=3s; netslow at=7s for=1s add=200us jitter=50us; " +
		"miscal node=3 at=5s for=4s bias=2ms scale=1.5; cachedrop node=0 at=3s frac=0.5; " +
		"miscal node=all at=1s bias=-500us"
	s, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 7 {
		t.Fatalf("parsed %d events, want 7", len(s.Events))
	}
	if e := s.Events[0]; e.Kind != FailSlow || e.Node != 1 || e.At != 2*time.Second ||
		e.For != 4*time.Second || e.Factor != 8 {
		t.Fatalf("event 0 = %+v", e)
	}
	if e := s.Events[6]; e.Node != AllNodes || e.Extra != -500*time.Microsecond || e.Scale != 0 {
		t.Fatalf("event 6 = %+v", e)
	}
	s2, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("roundtrip mismatch:\n  %+v\n  %+v", s.Events, s2.Events)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"meteorstrike node=0 at=1s",       // unknown kind
		"failslow node=0 at=1s",           // missing factor
		"failslow node=0 at=1s x=0",       // zero factor
		"eio node=0 at=1s rate=1.5",       // rate out of range
		"eio node=0 at=1s rate=nope",      // unparseable float
		"crash node=-2 at=1s",             // negative node
		"crash node=0 at=-1s",             // negative onset
		"crash node=0 at 1s",              // not key=value
		"crash node=0 at=1s x=3",          // field from another kind
		"netslow at=1s",                   // no magnitude
		"netslow node=2 at=1s add=100us",  // netslow takes no node
		"miscal node=0 at=1s",             // no bias, no scale
		"cachedrop node=0 at=1s frac=0",   // zero fraction
		"cachedrop node=0 at=1s for=1s frac=0.5", // cachedrop is one-shot
	}
	for _, in := range bad {
		if _, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", in)
		}
	}
}

func TestParseScheduleEmptyAndSeparators(t *testing.T) {
	s, err := ParseSchedule("  ;; crash node=0 at=1s ;  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != Crash {
		t.Fatalf("parsed %+v", s.Events)
	}
	s, err = ParseSchedule("")
	if err != nil || len(s.Events) != 0 {
		t.Fatalf("empty string: %v, %+v", err, s.Events)
	}
}

// FuzzParseSchedule asserts the parser never panics, and that accepted
// schedules survive a String→reparse roundtrip exactly (the canonical-form
// contract the -faults flag relies on).
func FuzzParseSchedule(f *testing.F) {
	f.Add("failslow node=1 at=2s for=4s x=8; crash node=2 at=4s for=3s")
	f.Add("eio node=all at=0s rate=0.01; netslow at=1s add=300us jitter=50us")
	f.Add("miscal node=3 at=5s for=4s bias=2ms scale=1.5; cachedrop node=0 at=3s frac=0.5")
	f.Add("crash node=0 at=1s;;;")
	f.Add("x=;=x;==;crash")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSchedule(in)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSchedule(%q) accepted an invalid schedule: %v", in, verr)
		}
		canon := s.String()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("roundtrip mismatch for %q:\n  %+v\n  %+v", in, s.Events, s2.Events)
		}
	})
}
