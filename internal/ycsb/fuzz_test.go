package ycsb

import (
	"testing"

	"mittos/internal/sim"
)

// FuzzYCSBWorkload drives Workload.Next across fuzzed configs (key-space
// size, read/insert fractions, distribution, seed) and checks the generator's
// contract:
//
//   - determinism: two workloads built from the same config and seed produce
//     identical op streams;
//   - key bounds: reads/updates stay inside the loaded key space (which only
//     inserts grow), inserts hand out fresh keys in order, and no key is
//     ever negative;
//   - mix edges: ReadFraction 1 yields only reads, InsertFraction >= 1
//     yields no updates (the legacy all-insert shape), InsertFraction 0
//     yields no inserts;
//   - for the uniform distribution, the exact stream is replayed by an
//     independent reference model making the same RNG draws.
func FuzzYCSBWorkload(f *testing.F) {
	f.Add(int64(1), int64(100), uint8(128), uint8(0), uint8(0), uint16(200))
	f.Add(int64(7), int64(3), uint8(255), uint8(255), uint8(1), uint16(64))
	f.Add(int64(42), int64(100000), uint8(0), uint8(64), uint8(2), uint16(500))
	f.Add(int64(-9), int64(1), uint8(13), uint8(200), uint8(1), uint16(1000))

	f.Fuzz(func(t *testing.T, seed, records int64, readB, insB, distB uint8, nOps uint16) {
		if records <= 0 {
			records = -records + 1
		}
		if records > 1<<40 {
			records %= 1 << 40
		}
		cfg := DefaultConfig(records)
		cfg.ReadFraction = float64(readB) / 255
		cfg.InsertFraction = float64(insB) / 255
		cfg.Dist = Distribution(int(distB) % 3)
		n := int(nOps)%2048 + 1

		w := New(cfg, sim.NewRNG(seed, "fuzz-ycsb"))
		twin := New(cfg, sim.NewRNG(seed, "fuzz-ycsb"))

		// The uniform reference model mirrors Next's documented draw order
		// on its own identically-seeded stream: read coin, then either a
		// uniform key, an insert (one coin, no key draw when InsertFraction
		// is saturated), or an insert coin plus a uniform key.
		ref := sim.NewRNG(seed, "fuzz-ycsb")
		refInserted := records
		refNext := func() Op {
			if ref.Bool(cfg.ReadFraction) {
				return Op{Kind: OpRead, Key: ref.Int63n(records)}
			}
			if cfg.InsertFraction >= 1 || ref.Bool(cfg.InsertFraction) {
				refInserted++
				return Op{Kind: OpInsert, Key: refInserted - 1}
			}
			return Op{Kind: OpUpdate, Key: ref.Int63n(records)}
		}

		inserted := records
		for i := 0; i < n; i++ {
			op := w.Next()
			if got := twin.Next(); got != op {
				t.Fatalf("op %d: stream diverged: %+v vs twin %+v", i, op, got)
			}
			if cfg.Dist == Uniform {
				if want := refNext(); op != want {
					t.Fatalf("op %d: %+v, reference model wants %+v", i, op, want)
				}
			}
			if op.Key < 0 {
				t.Fatalf("op %d: negative key %d", i, op.Key)
			}
			switch op.Kind {
			case OpInsert:
				if op.Key != inserted {
					t.Fatalf("op %d: insert key %d, want next fresh key %d", i, op.Key, inserted)
				}
				inserted++
				if cfg.ReadFraction >= 1 {
					t.Fatalf("op %d: insert from a read-only mix", i)
				}
				if cfg.InsertFraction <= 0 {
					t.Fatalf("op %d: insert with InsertFraction 0", i)
				}
			case OpUpdate:
				if cfg.InsertFraction >= 1 {
					t.Fatalf("op %d: update from an all-insert mix", i)
				}
				if op.Key >= inserted {
					t.Fatalf("op %d: update key %d outside loaded space [0,%d)", i, op.Key, inserted)
				}
			case OpRead:
				if op.Key >= inserted {
					t.Fatalf("op %d: read key %d outside loaded space [0,%d)", i, op.Key, inserted)
				}
			default:
				t.Fatalf("op %d: unknown kind %v", i, op.Kind)
			}
		}
	})
}
