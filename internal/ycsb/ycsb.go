// Package ycsb generates YCSB-style key-value workloads (Cooper et al.,
// SoCC'10): 1KB records, uniform/zipfian/latest request distributions, and
// configurable read/write mixes. The paper uses YCSB to generate "1KB
// key-value get() operations" throughout §7.
package ycsb

import (
	"fmt"

	"mittos/internal/sim"
)

// Distribution selects the request key distribution.
type Distribution int

// Supported request distributions.
const (
	Uniform Distribution = iota
	Zipfian
	Latest
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case Latest:
		return "latest"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// OpKind is a workload operation type.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpInsert
	// OpUpdate overwrites an existing key drawn from the request
	// distribution — the write half of YCSB A/B/F style mixes.
	OpUpdate
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  int64
}

// Config shapes a workload.
type Config struct {
	// Records is the loaded key-space size.
	Records int64
	// ValueSize is the record payload (1KB in the paper's runs).
	ValueSize int
	// ReadFraction of operations are reads (1.0 = read-only, like the
	// §7 get() workloads; 0.0 = the §7.8.6 write-only workload).
	ReadFraction float64
	// Dist is the request distribution. YCSB's default zipfian constant
	// (0.99) is used for Zipfian.
	Dist Distribution
	// ZipfTheta overrides the zipfian skew when > 0.
	ZipfTheta float64
	// InsertFraction is the fraction of write operations that insert fresh
	// keys; the rest are updates of existing keys drawn from the request
	// distribution. 1.0 (the DefaultConfig value) makes every write an
	// insert — the legacy behavior; 0.0 is the pure update mix of YCSB
	// workloads A/B/F.
	InsertFraction float64
}

// DefaultConfig is the paper's workload: 1KB reads over a large key space.
func DefaultConfig(records int64) Config {
	return Config{Records: records, ValueSize: 1024, ReadFraction: 1.0,
		Dist: Uniform, InsertFraction: 1.0}
}

// Workload produces operations deterministically from its RNG stream.
type Workload struct {
	cfg      Config
	rng      *sim.RNG
	zipf     *sim.Zipf
	inserted int64
}

// New builds a workload.
func New(cfg Config, rng *sim.RNG) *Workload {
	if cfg.Records <= 0 {
		panic("ycsb: Records must be positive")
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 1024
	}
	w := &Workload{cfg: cfg, rng: rng, inserted: cfg.Records}
	if cfg.Dist == Zipfian || cfg.Dist == Latest {
		theta := cfg.ZipfTheta
		if theta <= 0 || theta >= 1 {
			theta = 0.99
		}
		w.zipf = sim.NewZipf(rng, cfg.Records, theta)
	}
	return w
}

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }

// Next produces the next operation. The InsertFraction >= 1 short circuit
// keeps all-insert workloads (the DefaultConfig shape) drawing exactly one
// coin per write, so pre-existing RNG streams replay bit-identically.
func (w *Workload) Next() Op {
	if w.rng.Bool(w.cfg.ReadFraction) {
		return Op{Kind: OpRead, Key: w.nextKey()}
	}
	if w.cfg.InsertFraction >= 1 || w.rng.Bool(w.cfg.InsertFraction) {
		w.inserted++
		return Op{Kind: OpInsert, Key: w.inserted - 1}
	}
	return Op{Kind: OpUpdate, Key: w.nextKey()}
}

// NextKey produces a key per the request distribution.
func (w *Workload) NextKey() int64 { return w.nextKey() }

func (w *Workload) nextKey() int64 {
	switch w.cfg.Dist {
	case Zipfian:
		return w.zipf.Next()
	case Latest:
		// Hot keys are the most recently inserted ones.
		r := w.zipf.Next()
		k := w.inserted - 1 - r
		if k < 0 {
			k = 0
		}
		return k
	default:
		return w.rng.Int63n(w.cfg.Records)
	}
}
