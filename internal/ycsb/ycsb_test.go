package ycsb

import (
	"testing"
	"testing/quick"

	"mittos/internal/sim"
)

func TestUniformKeysInRange(t *testing.T) {
	w := New(DefaultConfig(1000), sim.NewRNG(1, "u"))
	f := func(_ uint8) bool {
		k := w.NextKey()
		return k >= 0 && k < 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	cfg := DefaultConfig(10000)
	cfg.Dist = Zipfian
	w := New(cfg, sim.NewRNG(2, "z"))
	hot := 0
	n := 20000
	for i := 0; i < n; i++ {
		if w.NextKey() < 100 {
			hot++
		}
	}
	if frac := float64(hot) / float64(n); frac < 0.3 {
		t.Fatalf("zipfian top-1%% fraction %.2f, want skew", frac)
	}
}

func TestLatestFavorsRecentInserts(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.Dist = Latest
	cfg.ReadFraction = 0.5
	w := New(cfg, sim.NewRNG(3, "l"))
	// Run some inserts to move the frontier.
	inserts := int64(0)
	for i := 0; i < 2000; i++ {
		if w.Next().Kind == OpInsert {
			inserts++
		}
	}
	if inserts == 0 {
		t.Fatal("no inserts at 50% write fraction")
	}
	// Now most reads should target the newer half of the key space.
	newer := 0
	n := 2000
	for i := 0; i < n; i++ {
		if w.NextKey() > 500 {
			newer++
		}
	}
	if frac := float64(newer) / float64(n); frac < 0.8 {
		t.Fatalf("latest distribution read %.2f from newer half", frac)
	}
}

func TestReadFraction(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.ReadFraction = 0.0
	w := New(cfg, sim.NewRNG(4, "w"))
	for i := 0; i < 100; i++ {
		if w.Next().Kind != OpInsert {
			t.Fatal("read produced at ReadFraction 0")
		}
	}
	cfg.ReadFraction = 1.0
	w = New(cfg, sim.NewRNG(4, "r"))
	for i := 0; i < 100; i++ {
		if w.Next().Kind != OpRead {
			t.Fatal("insert produced at ReadFraction 1")
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" ||
		Latest.String() != "latest" || Distribution(9).String() == "" {
		t.Fatal("Distribution.String broken")
	}
}

func TestInvalidRecordsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(DefaultConfig(0), sim.NewRNG(1, "x"))
}

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig(5000)
	cfg.Dist = Zipfian
	a := New(cfg, sim.NewRNG(7, "d"))
	b := New(cfg, sim.NewRNG(7, "d"))
	for i := 0; i < 1000; i++ {
		if a.NextKey() != b.NextKey() {
			t.Fatal("nondeterministic workload")
		}
	}
}
