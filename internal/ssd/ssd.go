// Package ssd models a host-managed (OpenChannel / LightNVM) SSD: parallel
// channels and chips with independent queues, page-granular reads, MLC
// lower/upper-page program-time asymmetry, block erases, and a page-mapped
// FTL with greedy garbage collection (§4.3 of the paper).
//
// Contention structure is what matters for MittSSD: a read is a two-stage
// operation (chip cell read, then channel transfer), chips queue
// independently, and the channel is shared by all chips behind it. The
// paper's constants are used throughout: 100µs unloaded page read, 60µs
// channel queueing delay per outstanding same-channel IO, 1ms/2ms
// lower/upper-page programs, 6ms erases.
package ssd

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// Config holds SSD geometry and timing.
type Config struct {
	Channels        int
	ChipsPerChannel int
	BlocksPerChip   int
	PagesPerBlock   int
	PageSize        int

	// ChipReadTime is the cell-array read portion of a page read.
	ChipReadTime time.Duration
	// ChannelXferTime is the channel-transfer portion of a page read (and
	// the inbound transfer of a page program). ChipReadTime +
	// ChannelXferTime = the paper's 100µs unloaded page read.
	ChannelXferTime time.Duration
	// LowerPageProgram / UpperPageProgram are MLC program times (§4.3:
	// lower bits 1ms, upper bits 2ms).
	LowerPageProgram time.Duration
	UpperPageProgram time.Duration
	// EraseTime is the block-erase time (6ms).
	EraseTime time.Duration

	// GCFreeBlockLow triggers garbage collection on a chip when its free
	// block count drops to this threshold.
	GCFreeBlockLow int
	// OverprovisionBlocks per chip are invisible to the logical space.
	OverprovisionBlocks int
	// WearLevelEvery triggers a wear-leveling episode on a chip after
	// this many erases (0 disables): the most-worn block's content moves
	// to a fresh block and both are erased — §4.3's "occasional
	// wear-leveling page movements will introduce a significant noise".
	WearLevelEvery int
}

// DefaultConfig mirrors the paper's OpenChannel SSD: 16 channels, 128 chips,
// 16KB pages, 512 pages/block. Block count is sized for a small-but-real
// logical space; experiments that need more override it.
func DefaultConfig() Config {
	return Config{
		Channels:            16,
		ChipsPerChannel:     8,
		BlocksPerChip:       64,
		PagesPerBlock:       512,
		PageSize:            16 << 10,
		ChipReadTime:        40 * time.Microsecond,
		ChannelXferTime:     60 * time.Microsecond,
		LowerPageProgram:    time.Millisecond,
		UpperPageProgram:    2 * time.Millisecond,
		EraseTime:           6 * time.Millisecond,
		GCFreeBlockLow:      2,
		OverprovisionBlocks: 8,
		WearLevelEvery:      64,
	}
}

// TotalChips returns the chip count.
func (c Config) TotalChips() int { return c.Channels * c.ChipsPerChannel }

// LogicalBytes returns the exposed logical capacity (excluding
// overprovisioning).
func (c Config) LogicalBytes() int64 {
	user := c.BlocksPerChip - c.OverprovisionBlocks
	return int64(c.TotalChips()) * int64(user) * int64(c.PagesPerBlock) * int64(c.PageSize)
}

// ProgramPattern returns the per-physical-page program time for a block,
// reproducing the paper's profiled "11111121121122...2112" lower/upper
// layout: a 10-page prefix, a repeating "1122" body, and a "2112" suffix.
func (c Config) ProgramPattern() []time.Duration {
	n := c.PagesPerBlock
	pat := make([]time.Duration, n)
	lower, upper := c.LowerPageProgram, c.UpperPageProgram
	prefix := []byte("1111112112")
	suffix := []byte("2112")
	body := []byte("1122")
	for i := 0; i < n; i++ {
		var ch byte
		switch {
		case i < len(prefix):
			ch = prefix[i]
		case i >= n-len(suffix):
			ch = suffix[i-(n-len(suffix))]
		default:
			ch = body[(i-len(prefix))%len(body)]
		}
		if ch == '1' {
			pat[i] = lower
		} else {
			pat[i] = upper
		}
	}
	return pat
}

// GCEvent describes one garbage-collection or wear-leveling episode on a
// chip, reported to the host (host-managed flash: the OS initiates both and
// therefore knows about them — the white-box visibility MittSSD relies on).
type GCEvent struct {
	Chip       int
	MovedPages int
	// BusyFor is the chip time consumed: page moves + erases.
	BusyFor time.Duration
	// WearLevel marks a wear-leveling episode rather than space reclaim.
	WearLevel bool
}

// SSD is the device model. It implements blockio.Device.
type SSD struct {
	eng *sim.Engine
	cfg Config

	chips    []*chip
	channels []*channel
	pattern  []time.Duration

	inflight int
	reads    uint64
	writes   uint64
	erases   uint64
	wlMoves  uint64

	erasesSinceWL []int

	// Freelists for the per-IO machinery: page ops, request groups, and
	// chip-busy episodes. The steady-state per-IO path allocates nothing.
	opFree   []*pageOp
	grpFree  []*ioGroup
	busyFree []*busyOp

	// degrade scales every chip and channel operation; 1.0 = healthy. The
	// FTL's GC bookkeeping and the host-visible profile (NextProgramTime,
	// GCEvent.BusyFor) deliberately stay unscaled: a fail-slow device is
	// precisely one whose real timing has drifted from its profile (§8.1).
	degrade float64

	// Fault injection: fraction of request completions that fail with
	// EIO, drawn from a dedicated stream (no draws at rate 0).
	errRate float64
	errRNG  *sim.RNG

	gcHook     func(GCEvent)
	submitHook func(*blockio.Request)
	rec        *metrics.Recorder
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (s *SSD) SetRecorder(rec *metrics.Recorder) { s.rec = rec }

// serverTask is one unit of work on a serial server. serve runs when the
// server reaches it; the task must call sv.finish exactly once (typically
// from a later timer) when the server may proceed to the next task.
type serverTask interface {
	serve(sv *server)
}

// server is a serial FIFO executor (a chip die or a channel bus). The queue
// is a consumed-prefix slice rather than a closure list: popping advances
// head and the backing array is reused, where the previous
// `queue = queue[1:]` form lost front capacity and reallocated on nearly
// every push.
type server struct {
	q       []serverTask
	head    int
	running bool
}

func (sv *server) run(t serverTask) {
	// Reclaim the consumed prefix once it dominates the slice so pushes
	// reuse the backing array even when the queue never fully drains.
	if sv.head > 32 && sv.head*2 >= len(sv.q) {
		n := copy(sv.q, sv.q[sv.head:])
		for i := n; i < len(sv.q); i++ {
			sv.q[i] = nil
		}
		sv.q = sv.q[:n]
		sv.head = 0
	}
	sv.q = append(sv.q, t)
	sv.kick()
}

func (sv *server) kick() {
	if sv.running || sv.head == len(sv.q) {
		return
	}
	sv.running = true
	t := sv.q[sv.head]
	sv.q[sv.head] = nil
	sv.head++
	if sv.head == len(sv.q) {
		sv.q = sv.q[:0]
		sv.head = 0
	}
	t.serve(sv)
}

// finish releases the server for the next queued task (the former per-task
// `release` closure).
func (sv *server) finish() {
	sv.running = false
	sv.kick()
}

func (sv *server) occupancy() int {
	n := len(sv.q) - sv.head
	if sv.running {
		n++
	}
	return n
}

// chip is one flash die: a serial server with its own queue plus FTL state.
type chip struct {
	id  int
	srv server

	// FTL state.
	mapping     []int32 // chip-local logical page → physical page (block*ppb+idx), -1 unmapped
	rmap        []int32 // physical page → chip-local logical page, -1 when not valid
	pageState   []int8  // physical page: 0 free, 1 valid, 2 invalid
	validCount  []int   // per block
	writeFront  []int   // per block: next unwritten page index
	freeBlocks  []int
	activeBlock int
	eraseCount  []int
}

// channel is the shared transfer bus behind a set of chips.
type channel struct {
	id  int
	srv server
}

// New builds an SSD on the engine.
func New(eng *sim.Engine, cfg Config) *SSD {
	if cfg.Channels <= 0 || cfg.ChipsPerChannel <= 0 || cfg.BlocksPerChip <= 1 ||
		cfg.PagesPerBlock <= 0 || cfg.PageSize <= 0 {
		panic("ssd: invalid geometry")
	}
	if cfg.OverprovisionBlocks >= cfg.BlocksPerChip {
		panic("ssd: overprovisioning exceeds capacity")
	}
	s := &SSD{eng: eng, cfg: cfg, pattern: cfg.ProgramPattern(),
		erasesSinceWL: make([]int, cfg.TotalChips()), degrade: 1.0}
	for i := 0; i < cfg.Channels; i++ {
		s.channels = append(s.channels, &channel{id: i})
	}
	pagesPerChip := cfg.BlocksPerChip * cfg.PagesPerBlock
	userPages := (cfg.BlocksPerChip - cfg.OverprovisionBlocks) * cfg.PagesPerBlock
	for i := 0; i < cfg.TotalChips(); i++ {
		c := &chip{
			id:          i,
			mapping:     make([]int32, userPages),
			rmap:        make([]int32, pagesPerChip),
			pageState:   make([]int8, pagesPerChip),
			validCount:  make([]int, cfg.BlocksPerChip),
			writeFront:  make([]int, cfg.BlocksPerChip),
			eraseCount:  make([]int, cfg.BlocksPerChip),
			activeBlock: 0,
		}
		for j := range c.mapping {
			c.mapping[j] = -1
		}
		for j := range c.rmap {
			c.rmap[j] = -1
		}
		for b := 1; b < cfg.BlocksPerChip; b++ {
			c.freeBlocks = append(c.freeBlocks, b)
		}
		s.chips = append(s.chips, c)
	}
	return s
}

// Config returns the SSD configuration.
func (s *SSD) Config() Config { return s.cfg }

// reset returns the device to its factory state on a (possibly reused)
// engine, exactly as New left it: FTL mappings cleared, server queues
// emptied, counters zeroed, degradation and fault injection off, hooks and
// recorder detached. The chips' backing arrays and the per-IO freelists
// survive, which is the point — a reset SSD costs a few array clears
// instead of the multi-hundred-MB rebuild New does at experiment scale.
// Tasks still queued on a die or channel are orphaned, so only reset a
// device whose engine has been halted or reset.
func (s *SSD) reset(eng *sim.Engine) {
	s.eng = eng
	for _, c := range s.chips {
		for j := range c.mapping {
			c.mapping[j] = -1
		}
		for j := range c.rmap {
			c.rmap[j] = -1
		}
		for j := range c.pageState {
			c.pageState[j] = 0
		}
		for j := range c.validCount {
			c.validCount[j] = 0
		}
		for j := range c.writeFront {
			c.writeFront[j] = 0
		}
		for j := range c.eraseCount {
			c.eraseCount[j] = 0
		}
		c.freeBlocks = c.freeBlocks[:0]
		for b := 1; b < s.cfg.BlocksPerChip; b++ {
			c.freeBlocks = append(c.freeBlocks, b)
		}
		c.activeBlock = 0
		c.srv.reset()
	}
	for _, ch := range s.channels {
		ch.srv.reset()
	}
	s.inflight = 0
	s.reads, s.writes, s.erases, s.wlMoves = 0, 0, 0, 0
	for i := range s.erasesSinceWL {
		s.erasesSinceWL[i] = 0
	}
	s.degrade = 1.0
	s.errRate, s.errRNG = 0, nil
	s.gcHook, s.submitHook, s.rec = nil, nil, nil
}

// reset empties a server queue, dropping any orphaned task references.
func (sv *server) reset() {
	for i := range sv.q {
		sv.q[i] = nil
	}
	sv.q = sv.q[:0]
	sv.head = 0
	sv.running = false
}

// Pool caches built SSDs by geometry so an experiment arena can hand a
// fully-constructed device from a finished leg to the next one: the FTL
// arrays of a DefaultConfig device are ~30MB, and a fleet of them dominated
// the per-leg allocation profile. Get resets a cached device onto the given
// engine (byte-identical to a fresh New) or builds one; Put parks a device
// whose engine is done with it.
type Pool struct {
	free map[Config][]*SSD
}

// Get returns a factory-state SSD with the given geometry on eng.
func (p *Pool) Get(eng *sim.Engine, cfg Config) *SSD {
	if cached := p.free[cfg]; len(cached) > 0 {
		s := cached[len(cached)-1]
		cached[len(cached)-1] = nil
		p.free[cfg] = cached[:len(cached)-1]
		s.reset(eng)
		return s
	}
	return New(eng, cfg)
}

// Put parks a device for reuse. The caller must be done driving its engine:
// any queued chip/channel work is abandoned at the next Get.
func (p *Pool) Put(s *SSD) {
	if p.free == nil {
		p.free = make(map[Config][]*SSD)
	}
	p.free[s.cfg] = append(p.free[s.cfg], s)
}

// SetDegradation scales all subsequent chip/channel operation times by
// factor (>1 slower). The host-visible profile does not move with it.
func (s *SSD) SetDegradation(factor float64) {
	if factor <= 0 {
		panic("ssd: degradation factor must be positive")
	}
	s.degrade = factor
}

// Degradation returns the current factor.
func (s *SSD) Degradation() float64 { return s.degrade }

// SetErrorInjection makes rate of subsequent request completions fail with
// blockio.ErrIO, drawn from rng (a dedicated stream). Rate 0 disables and
// draws nothing.
func (s *SSD) SetErrorInjection(rate float64, rng *sim.RNG) {
	if rate < 0 || rate > 1 {
		panic("ssd: error rate must be in [0,1]")
	}
	s.errRate, s.errRNG = rate, rng
}

// scaled applies the fail-slow factor to a device timing cost.
func (s *SSD) scaled(d time.Duration) time.Duration {
	if s.degrade != 1.0 {
		d = time.Duration(float64(d) * s.degrade)
	}
	return d
}

// SetGCHook registers the host-visible GC notification.
func (s *SSD) SetGCHook(fn func(GCEvent)) { s.gcHook = fn }

// SetSubmitHook registers a tap on every submitted request (used by the
// MittSSD predictor to track outstanding per-channel IOs).
func (s *SSD) SetSubmitHook(fn func(*blockio.Request)) { s.submitHook = fn }

// InFlight implements blockio.Device.
func (s *SSD) InFlight() int { return s.inflight }

// Stats returns operation counters (reads, writes, erases).
func (s *SSD) Stats() (reads, writes, erases uint64) {
	return s.reads, s.writes, s.erases
}

// EraseCount returns the total block erases on a chip (wear accounting).
func (s *SSD) EraseCount(chipID int) int {
	total := 0
	for _, e := range s.chips[chipID].eraseCount {
		total += e
	}
	return total
}

// ChipForOffset exposes the static striping: which chip and channel serve a
// logical byte offset. MittSSD uses this to pick the queue to inspect.
func (s *SSD) ChipForOffset(off int64) (chipID, channelID int) {
	lp := off / int64(s.cfg.PageSize)
	chipID = int(lp % int64(s.cfg.TotalChips()))
	channelID = chipID % s.cfg.Channels
	return chipID, channelID
}

// PageSpan returns the logical pages covered by [off, off+size).
func (s *SSD) PageSpan(off int64, size int) (first, count int64) {
	ps := int64(s.cfg.PageSize)
	first = off / ps
	last := (off + int64(size) - 1) / ps
	return first, last - first + 1
}

// Submit implements blockio.Device. Requests larger than a page are striped
// into per-page sub-IOs; the request completes when the last sub-IO does
// (§4.3: ">16KB multi-page read ... is automatically chopped").
func (s *SSD) Submit(req *blockio.Request) {
	if req.Offset < 0 || req.End() > s.cfg.LogicalBytes() {
		panic(fmt.Sprintf("ssd: IO out of range: %v", req))
	}
	if req.Op == blockio.Erase {
		panic("ssd: erase is device-internal")
	}
	req.DispatchTime = s.eng.Now()
	s.inflight++
	s.rec.DevEnter(metrics.RSSD, req)
	if s.submitHook != nil {
		s.submitHook(req)
	}
	first, count := s.PageSpan(req.Offset, req.Size)
	grp := s.getGroup(req, int(count))
	for p := first; p < first+count; p++ {
		if req.Op == blockio.Read {
			s.readPage(grp, p)
		} else {
			s.writePage(grp, p)
		}
	}
}

// ioGroup tracks one submitted request's outstanding page sub-IOs; the
// request completes when the last page does. Pooled: one per in-flight
// request, recycled at completion.
type ioGroup struct {
	s         *SSD
	req       *blockio.Request
	remaining int
}

func (g *ioGroup) pageDone() {
	g.remaining--
	if g.remaining != 0 {
		return
	}
	s, req := g.s, g.req
	g.req = nil
	s.grpFree = append(s.grpFree, g)
	if s.errRate > 0 && s.errRNG != nil && s.errRNG.Bool(s.errRate) {
		req.Err = blockio.ErrIO
	}
	req.CompleteTime = s.eng.Now()
	s.inflight--
	s.rec.DevDone(metrics.RSSD, req)
	if req.OnComplete != nil {
		req.OnComplete(req)
	}
}

func (s *SSD) getGroup(req *blockio.Request, pages int) *ioGroup {
	var g *ioGroup
	if n := len(s.grpFree); n > 0 {
		g = s.grpFree[n-1]
		s.grpFree = s.grpFree[:n-1]
	} else {
		g = &ioGroup{s: s}
	}
	g.req = req
	g.remaining = pages
	return g
}

// pageOp stages for the read and write pipelines.
const (
	opReadChip  uint8 = iota // cell read: die occupied
	opReadXfer               // data out: channel bus occupied
	opWriteXfer              // data in over the channel; die slot pending or held
	opWriteProg              // programming: die occupied
)

// pageOp is one per-page sub-IO flowing through a chip die and its channel
// bus. It replaces the former nest of per-page closures (up to five per
// written page): the op is pooled, pre-binds its timer callback once, and
// serves as the queued task on both servers.
type pageOp struct {
	s   *SSD
	grp *ioGroup
	req *blockio.Request
	lp  int64
	c   *chip
	ch  *channel

	stage uint8
	// Write-path interlock: the die slot is reserved at submit time (so
	// later reads queue behind it, as on real NAND), but programming can
	// only start once the channel has transferred the data in.
	transferred bool
	chipHeld    bool

	stepFn func() // pre-bound op.step, reused across recycles
}

func (s *SSD) getOp(grp *ioGroup, lp int64, stage uint8) *pageOp {
	var op *pageOp
	if n := len(s.opFree); n > 0 {
		op = s.opFree[n-1]
		s.opFree = s.opFree[:n-1]
	} else {
		op = &pageOp{s: s}
		op.stepFn = op.step
	}
	chipID := int(lp % int64(s.cfg.TotalChips()))
	op.grp, op.req, op.lp = grp, grp.req, lp
	op.c = s.chips[chipID]
	op.ch = s.channels[chipID%s.cfg.Channels]
	op.stage = stage
	op.transferred, op.chipHeld = false, false
	return op
}

func (s *SSD) freeOp(op *pageOp) {
	op.grp, op.req, op.c, op.ch = nil, nil, nil, nil
	s.opFree = append(s.opFree, op)
}

// serve implements serverTask: the op reached the front of a die or channel
// queue. For writes the same op is queued on both servers; sv disambiguates.
func (op *pageOp) serve(sv *server) {
	switch op.stage {
	case opReadChip:
		op.s.rec.DevStart(metrics.RSSD, op.req)
		op.s.eng.After(op.s.scaled(op.s.cfg.ChipReadTime), op.stepFn)
	case opReadXfer:
		op.s.eng.After(op.s.scaled(op.s.cfg.ChannelXferTime), op.stepFn)
	default: // opWriteXfer: channel transfer in, or the die slot opening up
		if sv == &op.ch.srv {
			op.s.eng.After(op.s.scaled(op.s.cfg.ChannelXferTime), op.stepFn)
		} else {
			op.chipHeld = true
			if op.transferred {
				op.startProgram()
			}
		}
	}
}

// step is the op's single timer callback; stage tells it which wait ended.
func (op *pageOp) step() {
	switch op.stage {
	case opReadChip:
		op.c.srv.finish()
		op.stage = opReadXfer
		op.ch.srv.run(op)
	case opReadXfer:
		op.ch.srv.finish()
		grp := op.grp
		op.s.freeOp(op)
		grp.pageDone()
	case opWriteXfer:
		op.ch.srv.finish()
		op.transferred = true
		if op.chipHeld {
			op.startProgram()
		}
	case opWriteProg:
		op.c.srv.finish()
		grp := op.grp
		op.s.freeOp(op)
		grp.pageDone()
	}
}

func (op *pageOp) startProgram() {
	s := op.s
	op.stage = opWriteProg
	s.rec.DevStart(metrics.RSSD, op.req)
	s.maybeGC(op.c)
	phys := s.allocPage(op.c, int32(op.lp/int64(s.cfg.TotalChips())))
	s.eng.After(s.scaled(s.pattern[phys%s.cfg.PagesPerBlock]), op.stepFn)
}

// readPage: chip cell read (die occupied), then channel transfer out.
func (s *SSD) readPage(grp *ioGroup, lp int64) {
	s.reads++
	op := s.getOp(grp, lp, opReadChip)
	op.c.srv.run(op)
}

// writePage reserves the die slot and starts the channel transfer at once;
// pageOp's interlock sequences transfer-then-program.
func (s *SSD) writePage(grp *ioGroup, lp int64) {
	s.writes++
	op := s.getOp(grp, lp, opWriteXfer)
	op.ch.srv.run(op)
	op.c.srv.run(op)
}

// busyOp occupies a die for a fixed episode (GC, wear leveling).
type busyOp struct {
	s      *SSD
	sv     *server
	d      time.Duration
	stepFn func()
}

func (b *busyOp) serve(sv *server) {
	b.sv = sv
	b.s.eng.After(b.d, b.stepFn)
}

func (b *busyOp) step() {
	sv := b.sv
	b.sv = nil
	b.s.busyFree = append(b.s.busyFree, b)
	sv.finish()
}

func (s *SSD) occupyChip(c *chip, busy time.Duration) {
	var b *busyOp
	if n := len(s.busyFree); n > 0 {
		b = s.busyFree[n-1]
		s.busyFree = s.busyFree[:n-1]
	} else {
		b = &busyOp{s: s}
		b.stepFn = b.step
	}
	b.d = s.scaled(busy)
	c.srv.run(b)
}

// allocPage invalidates the old mapping of chip-local logical page cl and
// returns a fresh physical page on the active block.
func (s *SSD) allocPage(c *chip, cl int32) int {
	if old := c.mapping[cl]; old >= 0 {
		c.pageState[old] = 2 // invalid
		c.rmap[old] = -1
		c.validCount[int(old)/s.cfg.PagesPerBlock]--
	}
	if c.writeFront[c.activeBlock] >= s.cfg.PagesPerBlock {
		if len(c.freeBlocks) == 0 {
			// GC must have freed something by now; if not, the device is
			// truly full — a configuration error in the experiment.
			panic("ssd: chip out of free blocks (logical space overcommitted)")
		}
		c.activeBlock = c.freeBlocks[0]
		c.freeBlocks = c.freeBlocks[1:]
	}
	phys := c.activeBlock*s.cfg.PagesPerBlock + c.writeFront[c.activeBlock]
	c.writeFront[c.activeBlock]++
	c.pageState[phys] = 1
	c.rmap[phys] = cl
	c.validCount[c.activeBlock]++
	c.mapping[cl] = int32(phys)
	return phys
}

// maybeGC runs greedy garbage collection when the chip's free-block pool is
// low: pick the block with the fewest valid pages, copy its valid pages to
// the active block (intra-chip copyback: read + program per page), erase it.
// The chip is busy for the whole episode — the background noise MittSSD is
// designed to dodge.
func (s *SSD) maybeGC(c *chip) {
	if len(c.freeBlocks) > s.cfg.GCFreeBlockLow {
		return
	}
	victim := -1
	best := int(^uint(0) >> 1)
	for b := 0; b < s.cfg.BlocksPerChip; b++ {
		if b == c.activeBlock {
			continue
		}
		if c.writeFront[b] == 0 {
			continue // never written; nothing to reclaim
		}
		if c.writeFront[b] < s.cfg.PagesPerBlock {
			continue // still open
		}
		if c.validCount[b] < best {
			victim, best = b, c.validCount[b]
		}
	}
	if victim < 0 {
		return
	}
	var busy time.Duration
	moved := 0
	// Copy valid pages forward.
	for p := 0; p < s.cfg.PagesPerBlock; p++ {
		phys := victim*s.cfg.PagesPerBlock + p
		if c.pageState[phys] != 1 {
			continue
		}
		// Find the chip-local logical page mapped here.
		cl := c.rmap[phys]
		if cl < 0 {
			continue
		}
		moved++
		busy += s.cfg.ChipReadTime
		newPhys := s.allocPage(c, cl)
		busy += s.pattern[newPhys%s.cfg.PagesPerBlock]
		c.pageState[phys] = 2
		c.rmap[phys] = -1
	}
	// Erase the victim.
	busy += s.cfg.EraseTime
	s.erases++
	c.eraseCount[victim]++
	c.validCount[victim] = 0
	c.writeFront[victim] = 0
	for p := 0; p < s.cfg.PagesPerBlock; p++ {
		c.pageState[victim*s.cfg.PagesPerBlock+p] = 0
	}
	c.freeBlocks = append(c.freeBlocks, victim)
	// Occupy the chip for the episode (the moves + erase run after the
	// program that triggered them; timing-wise the chip is busy either way).
	s.occupyChip(c, busy)
	if s.gcHook != nil {
		s.gcHook(GCEvent{Chip: c.id, MovedPages: moved, BusyFor: busy})
	}
	s.maybeWearLevel(c)
}

// maybeWearLevel periodically migrates a full block to spread erase wear:
// read+program every valid page, then erase the source — another chip-busy
// episode MittSSD must see coming.
func (s *SSD) maybeWearLevel(c *chip) {
	if s.cfg.WearLevelEvery <= 0 {
		return
	}
	s.erasesSinceWL[c.id]++
	if s.erasesSinceWL[c.id] < s.cfg.WearLevelEvery {
		return
	}
	s.erasesSinceWL[c.id] = 0
	// Victim: the most-erased block with valid content.
	victim, worst := -1, -1
	for b := 0; b < s.cfg.BlocksPerChip; b++ {
		if b == c.activeBlock || c.validCount[b] == 0 {
			continue
		}
		if c.writeFront[b] < s.cfg.PagesPerBlock {
			continue
		}
		if c.eraseCount[b] > worst {
			victim, worst = b, c.eraseCount[b]
		}
	}
	if victim < 0 || len(c.freeBlocks) == 0 {
		return
	}
	var busy time.Duration
	moved := 0
	for p := 0; p < s.cfg.PagesPerBlock; p++ {
		phys := victim*s.cfg.PagesPerBlock + p
		if c.pageState[phys] != 1 {
			continue
		}
		cl := c.rmap[phys]
		if cl < 0 {
			continue
		}
		moved++
		busy += s.cfg.ChipReadTime
		newPhys := s.allocPage(c, cl)
		busy += s.pattern[newPhys%s.cfg.PagesPerBlock]
		c.pageState[phys] = 2
		c.rmap[phys] = -1
	}
	busy += s.cfg.EraseTime
	s.erases++
	s.wlMoves += uint64(moved)
	c.eraseCount[victim]++
	c.validCount[victim] = 0
	c.writeFront[victim] = 0
	for p := 0; p < s.cfg.PagesPerBlock; p++ {
		c.pageState[victim*s.cfg.PagesPerBlock+p] = 0
	}
	c.freeBlocks = append(c.freeBlocks, victim)
	s.occupyChip(c, busy)
	if s.gcHook != nil {
		s.gcHook(GCEvent{Chip: c.id, MovedPages: moved, BusyFor: busy, WearLevel: true})
	}
}

// WearLevelMoves returns the total pages moved by wear leveling.
func (s *SSD) WearLevelMoves() uint64 { return s.wlMoves }

// NextProgramTime returns the program duration the next page write on the
// chip will incur. On host-managed flash the OS runs the FTL, so this is
// legitimately host-visible knowledge (§4.3: upper/lower page position
// determines 1ms vs 2ms programming).
func (s *SSD) NextProgramTime(chipID int) time.Duration {
	c := s.chips[chipID]
	idx := c.writeFront[c.activeBlock]
	if idx >= s.cfg.PagesPerBlock {
		idx = 0 // a fresh block starts at page 0
	}
	return s.pattern[idx]
}

// ChipQueueLen reports the number of queued-or-running tasks on a chip
// (diagnostics and tests).
func (s *SSD) ChipQueueLen(chipID int) int { return s.chips[chipID].srv.occupancy() }

// ChannelQueueLen reports the transfer-stage occupancy of a channel.
func (s *SSD) ChannelQueueLen(chID int) int { return s.channels[chID].srv.occupancy() }
