// Package ssd models a host-managed (OpenChannel / LightNVM) SSD: parallel
// channels and chips with independent queues, page-granular reads, MLC
// lower/upper-page program-time asymmetry, block erases, and a page-mapped
// FTL with greedy garbage collection (§4.3 of the paper).
//
// Contention structure is what matters for MittSSD: a read is a two-stage
// operation (chip cell read, then channel transfer), chips queue
// independently, and the channel is shared by all chips behind it. The
// paper's constants are used throughout: 100µs unloaded page read, 60µs
// channel queueing delay per outstanding same-channel IO, 1ms/2ms
// lower/upper-page programs, 6ms erases.
package ssd

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// Config holds SSD geometry and timing.
type Config struct {
	Channels        int
	ChipsPerChannel int
	BlocksPerChip   int
	PagesPerBlock   int
	PageSize        int

	// ChipReadTime is the cell-array read portion of a page read.
	ChipReadTime time.Duration
	// ChannelXferTime is the channel-transfer portion of a page read (and
	// the inbound transfer of a page program). ChipReadTime +
	// ChannelXferTime = the paper's 100µs unloaded page read.
	ChannelXferTime time.Duration
	// LowerPageProgram / UpperPageProgram are MLC program times (§4.3:
	// lower bits 1ms, upper bits 2ms).
	LowerPageProgram time.Duration
	UpperPageProgram time.Duration
	// EraseTime is the block-erase time (6ms).
	EraseTime time.Duration

	// GCFreeBlockLow triggers garbage collection on a chip when its free
	// block count drops to this threshold.
	GCFreeBlockLow int
	// OverprovisionBlocks per chip are invisible to the logical space.
	OverprovisionBlocks int
	// WearLevelEvery triggers a wear-leveling episode on a chip after
	// this many erases (0 disables): the most-worn block's content moves
	// to a fresh block and both are erased — §4.3's "occasional
	// wear-leveling page movements will introduce a significant noise".
	WearLevelEvery int
}

// DefaultConfig mirrors the paper's OpenChannel SSD: 16 channels, 128 chips,
// 16KB pages, 512 pages/block. Block count is sized for a small-but-real
// logical space; experiments that need more override it.
func DefaultConfig() Config {
	return Config{
		Channels:            16,
		ChipsPerChannel:     8,
		BlocksPerChip:       64,
		PagesPerBlock:       512,
		PageSize:            16 << 10,
		ChipReadTime:        40 * time.Microsecond,
		ChannelXferTime:     60 * time.Microsecond,
		LowerPageProgram:    time.Millisecond,
		UpperPageProgram:    2 * time.Millisecond,
		EraseTime:           6 * time.Millisecond,
		GCFreeBlockLow:      2,
		OverprovisionBlocks: 8,
		WearLevelEvery:      64,
	}
}

// TotalChips returns the chip count.
func (c Config) TotalChips() int { return c.Channels * c.ChipsPerChannel }

// LogicalBytes returns the exposed logical capacity (excluding
// overprovisioning).
func (c Config) LogicalBytes() int64 {
	user := c.BlocksPerChip - c.OverprovisionBlocks
	return int64(c.TotalChips()) * int64(user) * int64(c.PagesPerBlock) * int64(c.PageSize)
}

// ProgramPattern returns the per-physical-page program time for a block,
// reproducing the paper's profiled "11111121121122...2112" lower/upper
// layout: a 10-page prefix, a repeating "1122" body, and a "2112" suffix.
func (c Config) ProgramPattern() []time.Duration {
	n := c.PagesPerBlock
	pat := make([]time.Duration, n)
	lower, upper := c.LowerPageProgram, c.UpperPageProgram
	prefix := []byte("1111112112")
	suffix := []byte("2112")
	body := []byte("1122")
	for i := 0; i < n; i++ {
		var ch byte
		switch {
		case i < len(prefix):
			ch = prefix[i]
		case i >= n-len(suffix):
			ch = suffix[i-(n-len(suffix))]
		default:
			ch = body[(i-len(prefix))%len(body)]
		}
		if ch == '1' {
			pat[i] = lower
		} else {
			pat[i] = upper
		}
	}
	return pat
}

// GCEvent describes one garbage-collection or wear-leveling episode on a
// chip, reported to the host (host-managed flash: the OS initiates both and
// therefore knows about them — the white-box visibility MittSSD relies on).
type GCEvent struct {
	Chip       int
	MovedPages int
	// BusyFor is the chip time consumed: page moves + erases.
	BusyFor time.Duration
	// WearLevel marks a wear-leveling episode rather than space reclaim.
	WearLevel bool
}

// SSD is the device model. It implements blockio.Device.
type SSD struct {
	eng *sim.Engine
	cfg Config

	chips    []*chip
	channels []*channel
	pattern  []time.Duration

	inflight int
	reads    uint64
	writes   uint64
	erases   uint64
	wlMoves  uint64

	erasesSinceWL []int

	gcHook     func(GCEvent)
	submitHook func(*blockio.Request)
	rec        *metrics.Recorder
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (s *SSD) SetRecorder(rec *metrics.Recorder) { s.rec = rec }

// server is a serial FIFO executor (a chip die or a channel bus). Each task
// receives a release function and must call it when the server may proceed
// to the next task.
type server struct {
	queue   []func(release func())
	running bool
}

func (sv *server) run(task func(release func())) {
	sv.queue = append(sv.queue, task)
	sv.kick()
}

func (sv *server) kick() {
	if sv.running || len(sv.queue) == 0 {
		return
	}
	sv.running = true
	t := sv.queue[0]
	sv.queue = sv.queue[1:]
	t(func() {
		sv.running = false
		sv.kick()
	})
}

func (sv *server) occupancy() int {
	n := len(sv.queue)
	if sv.running {
		n++
	}
	return n
}

// chip is one flash die: a serial server with its own queue plus FTL state.
type chip struct {
	id  int
	srv server

	// FTL state.
	mapping     []int32 // chip-local logical page → physical page (block*ppb+idx), -1 unmapped
	rmap        []int32 // physical page → chip-local logical page, -1 when not valid
	pageState   []int8  // physical page: 0 free, 1 valid, 2 invalid
	validCount  []int   // per block
	writeFront  []int   // per block: next unwritten page index
	freeBlocks  []int
	activeBlock int
	eraseCount  []int
}

// channel is the shared transfer bus behind a set of chips.
type channel struct {
	id  int
	srv server
}

// New builds an SSD on the engine.
func New(eng *sim.Engine, cfg Config) *SSD {
	if cfg.Channels <= 0 || cfg.ChipsPerChannel <= 0 || cfg.BlocksPerChip <= 1 ||
		cfg.PagesPerBlock <= 0 || cfg.PageSize <= 0 {
		panic("ssd: invalid geometry")
	}
	if cfg.OverprovisionBlocks >= cfg.BlocksPerChip {
		panic("ssd: overprovisioning exceeds capacity")
	}
	s := &SSD{eng: eng, cfg: cfg, pattern: cfg.ProgramPattern(),
		erasesSinceWL: make([]int, cfg.TotalChips())}
	for i := 0; i < cfg.Channels; i++ {
		s.channels = append(s.channels, &channel{id: i})
	}
	pagesPerChip := cfg.BlocksPerChip * cfg.PagesPerBlock
	userPages := (cfg.BlocksPerChip - cfg.OverprovisionBlocks) * cfg.PagesPerBlock
	for i := 0; i < cfg.TotalChips(); i++ {
		c := &chip{
			id:          i,
			mapping:     make([]int32, userPages),
			rmap:        make([]int32, pagesPerChip),
			pageState:   make([]int8, pagesPerChip),
			validCount:  make([]int, cfg.BlocksPerChip),
			writeFront:  make([]int, cfg.BlocksPerChip),
			eraseCount:  make([]int, cfg.BlocksPerChip),
			activeBlock: 0,
		}
		for j := range c.mapping {
			c.mapping[j] = -1
		}
		for j := range c.rmap {
			c.rmap[j] = -1
		}
		for b := 1; b < cfg.BlocksPerChip; b++ {
			c.freeBlocks = append(c.freeBlocks, b)
		}
		s.chips = append(s.chips, c)
	}
	return s
}

// Config returns the SSD configuration.
func (s *SSD) Config() Config { return s.cfg }

// SetGCHook registers the host-visible GC notification.
func (s *SSD) SetGCHook(fn func(GCEvent)) { s.gcHook = fn }

// SetSubmitHook registers a tap on every submitted request (used by the
// MittSSD predictor to track outstanding per-channel IOs).
func (s *SSD) SetSubmitHook(fn func(*blockio.Request)) { s.submitHook = fn }

// InFlight implements blockio.Device.
func (s *SSD) InFlight() int { return s.inflight }

// Stats returns operation counters (reads, writes, erases).
func (s *SSD) Stats() (reads, writes, erases uint64) {
	return s.reads, s.writes, s.erases
}

// EraseCount returns the total block erases on a chip (wear accounting).
func (s *SSD) EraseCount(chipID int) int {
	total := 0
	for _, e := range s.chips[chipID].eraseCount {
		total += e
	}
	return total
}

// ChipForOffset exposes the static striping: which chip and channel serve a
// logical byte offset. MittSSD uses this to pick the queue to inspect.
func (s *SSD) ChipForOffset(off int64) (chipID, channelID int) {
	lp := off / int64(s.cfg.PageSize)
	chipID = int(lp % int64(s.cfg.TotalChips()))
	channelID = chipID % s.cfg.Channels
	return chipID, channelID
}

// PageSpan returns the logical pages covered by [off, off+size).
func (s *SSD) PageSpan(off int64, size int) (first, count int64) {
	ps := int64(s.cfg.PageSize)
	first = off / ps
	last := (off + int64(size) - 1) / ps
	return first, last - first + 1
}

// Submit implements blockio.Device. Requests larger than a page are striped
// into per-page sub-IOs; the request completes when the last sub-IO does
// (§4.3: ">16KB multi-page read ... is automatically chopped").
func (s *SSD) Submit(req *blockio.Request) {
	if req.Offset < 0 || req.End() > s.cfg.LogicalBytes() {
		panic(fmt.Sprintf("ssd: IO out of range: %v", req))
	}
	if req.Op == blockio.Erase {
		panic("ssd: erase is device-internal")
	}
	req.DispatchTime = s.eng.Now()
	s.inflight++
	s.rec.DevEnter(metrics.RSSD, req)
	if s.submitHook != nil {
		s.submitHook(req)
	}
	first, count := s.PageSpan(req.Offset, req.Size)
	remaining := int(count)
	done := func() {
		remaining--
		if remaining == 0 {
			req.CompleteTime = s.eng.Now()
			s.inflight--
			s.rec.DevDone(metrics.RSSD, req)
			if req.OnComplete != nil {
				req.OnComplete(req)
			}
		}
	}
	for p := first; p < first+count; p++ {
		lp := p
		if req.Op == blockio.Read {
			s.readPage(req, lp, done)
		} else {
			s.writePage(req, lp, done)
		}
	}
}

// readPage: chip cell read (die occupied), then channel transfer out.
func (s *SSD) readPage(req *blockio.Request, lp int64, done func()) {
	chipID := int(lp % int64(s.cfg.TotalChips()))
	c := s.chips[chipID]
	ch := s.channels[chipID%s.cfg.Channels]
	s.reads++
	c.srv.run(func(release func()) {
		s.rec.DevStart(metrics.RSSD, req)
		s.eng.After(s.cfg.ChipReadTime, func() {
			release()
			ch.srv.run(func(rel func()) {
				s.eng.After(s.cfg.ChannelXferTime, func() {
					rel()
					done()
				})
			})
		})
	})
}

// writePage: the die slot is reserved at submit time (so later reads queue
// behind it, as on real NAND), but programming can only start once the
// channel has transferred the data in.
func (s *SSD) writePage(req *blockio.Request, lp int64, done func()) {
	chipID := int(lp % int64(s.cfg.TotalChips()))
	c := s.chips[chipID]
	ch := s.channels[chipID%s.cfg.Channels]
	s.writes++
	transferred := false
	var resume func()
	ch.srv.run(func(rel func()) {
		s.eng.After(s.cfg.ChannelXferTime, func() {
			rel()
			transferred = true
			if resume != nil {
				resume()
			}
		})
	})
	c.srv.run(func(release func()) {
		start := func() {
			s.rec.DevStart(metrics.RSSD, req)
			s.maybeGC(c)
			phys := s.allocPage(c, int32(lp/int64(s.cfg.TotalChips())))
			progTime := s.pattern[phys%s.cfg.PagesPerBlock]
			s.eng.After(progTime, func() {
				release()
				done()
			})
		}
		if transferred {
			start()
		} else {
			resume = start
		}
	})
}

// allocPage invalidates the old mapping of chip-local logical page cl and
// returns a fresh physical page on the active block.
func (s *SSD) allocPage(c *chip, cl int32) int {
	if old := c.mapping[cl]; old >= 0 {
		c.pageState[old] = 2 // invalid
		c.rmap[old] = -1
		c.validCount[int(old)/s.cfg.PagesPerBlock]--
	}
	if c.writeFront[c.activeBlock] >= s.cfg.PagesPerBlock {
		if len(c.freeBlocks) == 0 {
			// GC must have freed something by now; if not, the device is
			// truly full — a configuration error in the experiment.
			panic("ssd: chip out of free blocks (logical space overcommitted)")
		}
		c.activeBlock = c.freeBlocks[0]
		c.freeBlocks = c.freeBlocks[1:]
	}
	phys := c.activeBlock*s.cfg.PagesPerBlock + c.writeFront[c.activeBlock]
	c.writeFront[c.activeBlock]++
	c.pageState[phys] = 1
	c.rmap[phys] = cl
	c.validCount[c.activeBlock]++
	c.mapping[cl] = int32(phys)
	return phys
}

// maybeGC runs greedy garbage collection when the chip's free-block pool is
// low: pick the block with the fewest valid pages, copy its valid pages to
// the active block (intra-chip copyback: read + program per page), erase it.
// The chip is busy for the whole episode — the background noise MittSSD is
// designed to dodge.
func (s *SSD) maybeGC(c *chip) {
	if len(c.freeBlocks) > s.cfg.GCFreeBlockLow {
		return
	}
	victim := -1
	best := int(^uint(0) >> 1)
	for b := 0; b < s.cfg.BlocksPerChip; b++ {
		if b == c.activeBlock {
			continue
		}
		if c.writeFront[b] == 0 {
			continue // never written; nothing to reclaim
		}
		if c.writeFront[b] < s.cfg.PagesPerBlock {
			continue // still open
		}
		if c.validCount[b] < best {
			victim, best = b, c.validCount[b]
		}
	}
	if victim < 0 {
		return
	}
	var busy time.Duration
	moved := 0
	// Copy valid pages forward.
	for p := 0; p < s.cfg.PagesPerBlock; p++ {
		phys := victim*s.cfg.PagesPerBlock + p
		if c.pageState[phys] != 1 {
			continue
		}
		// Find the chip-local logical page mapped here.
		cl := c.rmap[phys]
		if cl < 0 {
			continue
		}
		moved++
		busy += s.cfg.ChipReadTime
		newPhys := s.allocPage(c, cl)
		busy += s.pattern[newPhys%s.cfg.PagesPerBlock]
		c.pageState[phys] = 2
		c.rmap[phys] = -1
	}
	// Erase the victim.
	busy += s.cfg.EraseTime
	s.erases++
	c.eraseCount[victim]++
	c.validCount[victim] = 0
	c.writeFront[victim] = 0
	for p := 0; p < s.cfg.PagesPerBlock; p++ {
		c.pageState[victim*s.cfg.PagesPerBlock+p] = 0
	}
	c.freeBlocks = append(c.freeBlocks, victim)
	// Occupy the chip for the episode (the moves + erase run after the
	// program that triggered them; timing-wise the chip is busy either way).
	c.srv.run(func(release func()) {
		s.eng.After(busy, release)
	})
	if s.gcHook != nil {
		s.gcHook(GCEvent{Chip: c.id, MovedPages: moved, BusyFor: busy})
	}
	s.maybeWearLevel(c)
}

// maybeWearLevel periodically migrates a full block to spread erase wear:
// read+program every valid page, then erase the source — another chip-busy
// episode MittSSD must see coming.
func (s *SSD) maybeWearLevel(c *chip) {
	if s.cfg.WearLevelEvery <= 0 {
		return
	}
	s.erasesSinceWL[c.id]++
	if s.erasesSinceWL[c.id] < s.cfg.WearLevelEvery {
		return
	}
	s.erasesSinceWL[c.id] = 0
	// Victim: the most-erased block with valid content.
	victim, worst := -1, -1
	for b := 0; b < s.cfg.BlocksPerChip; b++ {
		if b == c.activeBlock || c.validCount[b] == 0 {
			continue
		}
		if c.writeFront[b] < s.cfg.PagesPerBlock {
			continue
		}
		if c.eraseCount[b] > worst {
			victim, worst = b, c.eraseCount[b]
		}
	}
	if victim < 0 || len(c.freeBlocks) == 0 {
		return
	}
	var busy time.Duration
	moved := 0
	for p := 0; p < s.cfg.PagesPerBlock; p++ {
		phys := victim*s.cfg.PagesPerBlock + p
		if c.pageState[phys] != 1 {
			continue
		}
		cl := c.rmap[phys]
		if cl < 0 {
			continue
		}
		moved++
		busy += s.cfg.ChipReadTime
		newPhys := s.allocPage(c, cl)
		busy += s.pattern[newPhys%s.cfg.PagesPerBlock]
		c.pageState[phys] = 2
		c.rmap[phys] = -1
	}
	busy += s.cfg.EraseTime
	s.erases++
	s.wlMoves += uint64(moved)
	c.eraseCount[victim]++
	c.validCount[victim] = 0
	c.writeFront[victim] = 0
	for p := 0; p < s.cfg.PagesPerBlock; p++ {
		c.pageState[victim*s.cfg.PagesPerBlock+p] = 0
	}
	c.freeBlocks = append(c.freeBlocks, victim)
	c.srv.run(func(release func()) {
		s.eng.After(busy, release)
	})
	if s.gcHook != nil {
		s.gcHook(GCEvent{Chip: c.id, MovedPages: moved, BusyFor: busy, WearLevel: true})
	}
}

// WearLevelMoves returns the total pages moved by wear leveling.
func (s *SSD) WearLevelMoves() uint64 { return s.wlMoves }

// NextProgramTime returns the program duration the next page write on the
// chip will incur. On host-managed flash the OS runs the FTL, so this is
// legitimately host-visible knowledge (§4.3: upper/lower page position
// determines 1ms vs 2ms programming).
func (s *SSD) NextProgramTime(chipID int) time.Duration {
	c := s.chips[chipID]
	idx := c.writeFront[c.activeBlock]
	if idx >= s.cfg.PagesPerBlock {
		idx = 0 // a fresh block starts at page 0
	}
	return s.pattern[idx]
}

// ChipQueueLen reports the number of queued-or-running tasks on a chip
// (diagnostics and tests).
func (s *SSD) ChipQueueLen(chipID int) int { return s.chips[chipID].srv.occupancy() }

// ChannelQueueLen reports the transfer-stage occupancy of a channel.
func (s *SSD) ChannelQueueLen(chID int) int { return s.channels[chID].srv.occupancy() }
