package ssd

import (
	"testing"
	"testing/quick"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

func newTestSSD(cfg Config) (*sim.Engine, *SSD) {
	eng := sim.NewEngine()
	return eng, New(eng, cfg)
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 8
	cfg.PagesPerBlock = 32
	cfg.OverprovisionBlocks = 2
	return cfg
}

func ioDone(lat *time.Duration) func(*blockio.Request) {
	return func(r *blockio.Request) { *lat = r.Latency() }
}

func TestUnloadedPageRead100us(t *testing.T) {
	// §4.3: "a page (16KB) read takes 100µs (chip read and channel transfer)".
	eng, s := newTestSSD(DefaultConfig())
	var lat time.Duration
	r := &blockio.Request{Op: blockio.Read, Offset: 0, Size: 4096, SubmitTime: eng.Now()}
	r.OnComplete = ioDone(&lat)
	s.Submit(r)
	eng.Run()
	if lat != 100*time.Microsecond {
		t.Fatalf("unloaded page read = %v, want 100µs", lat)
	}
}

func TestMultiPageReadStripesAcrossChannels(t *testing.T) {
	// Consecutive pages live on different channels, so a 4-page read on a
	// 2-channel × 2-chip device should take far less than 4×100µs.
	eng, s := newTestSSD(smallConfig())
	var lat time.Duration
	size := 4 * s.Config().PageSize
	r := &blockio.Request{Op: blockio.Read, Offset: 0, Size: size, SubmitTime: eng.Now()}
	r.OnComplete = ioDone(&lat)
	s.Submit(r)
	eng.Run()
	if lat >= 400*time.Microsecond {
		t.Fatalf("striped 4-page read = %v, want < 400µs", lat)
	}
	if lat < 100*time.Microsecond {
		t.Fatalf("striped read %v faster than a single page", lat)
	}
}

func TestReadsQueueBehindWritesOnSameChip(t *testing.T) {
	// The MittSSD motivation: a read behind a program waits ms, not µs.
	cfg := smallConfig()
	eng, s := newTestSSD(cfg)
	w := &blockio.Request{Op: blockio.Write, Offset: 0, Size: cfg.PageSize, SubmitTime: eng.Now()}
	w.OnComplete = func(*blockio.Request) {}
	s.Submit(w)
	var lat time.Duration
	r := &blockio.Request{Op: blockio.Read, Offset: 0, Size: 4096, SubmitTime: eng.Now()}
	r.OnComplete = ioDone(&lat)
	s.Submit(r)
	eng.Run()
	if lat < cfg.LowerPageProgram {
		t.Fatalf("read latency %v; should wait behind ≥%v program", lat, cfg.LowerPageProgram)
	}
}

func TestReadsOnDifferentChipsIndependent(t *testing.T) {
	// "ten IOs going to ten separate channels do not create queueing
	// delays" (§4.3).
	cfg := smallConfig()
	eng, s := newTestSSD(cfg)
	// Write to chip 0 (page 0); read from chip 1 (page 1, different channel).
	w := &blockio.Request{Op: blockio.Write, Offset: 0, Size: cfg.PageSize, SubmitTime: eng.Now()}
	w.OnComplete = func(*blockio.Request) {}
	s.Submit(w)
	var lat time.Duration
	r := &blockio.Request{Op: blockio.Read, Offset: int64(cfg.PageSize), Size: 4096, SubmitTime: eng.Now()}
	r.OnComplete = ioDone(&lat)
	s.Submit(r)
	eng.Run()
	if lat > 200*time.Microsecond {
		t.Fatalf("read on independent chip delayed: %v", lat)
	}
}

func TestChannelContention(t *testing.T) {
	// Two reads on different chips behind the SAME channel share the bus:
	// second transfer waits ~60µs.
	cfg := smallConfig() // channels=2, chips/ch=2: chips 0,2 on channel 0
	eng, s := newTestSSD(cfg)
	var lat0, lat2 time.Duration
	pg := int64(cfg.PageSize)
	r0 := &blockio.Request{Op: blockio.Read, Offset: 0 * pg, Size: 4096, SubmitTime: eng.Now()}
	r0.OnComplete = ioDone(&lat0)
	r2 := &blockio.Request{Op: blockio.Read, Offset: 2 * pg, Size: 4096, SubmitTime: eng.Now()}
	r2.OnComplete = ioDone(&lat2)
	s.Submit(r0)
	s.Submit(r2)
	eng.Run()
	fast, slow := lat0, lat2
	if fast > slow {
		fast, slow = slow, fast
	}
	if fast != 100*time.Microsecond {
		t.Fatalf("first read = %v, want 100µs", fast)
	}
	if slow != 160*time.Microsecond {
		t.Fatalf("second read = %v, want 160µs (channel queueing)", slow)
	}
}

func TestProgramPattern(t *testing.T) {
	cfg := DefaultConfig()
	pat := cfg.ProgramPattern()
	if len(pat) != cfg.PagesPerBlock {
		t.Fatalf("pattern len %d", len(pat))
	}
	// §4.3: "1ms write time is needed for pages #0-6, 2ms for page #7,
	// 1ms for pages #8-9" and the middle repeats "1122".
	for i := 0; i <= 5; i++ {
		if pat[i] != cfg.LowerPageProgram {
			t.Fatalf("page %d = %v, want lower", i, pat[i])
		}
	}
	if pat[6] != cfg.UpperPageProgram {
		t.Fatalf("page 6 = %v, want upper (pattern prefix 1111112...)", pat[6])
	}
	// Suffix "...2112".
	n := len(pat)
	if pat[n-4] != cfg.UpperPageProgram || pat[n-3] != cfg.LowerPageProgram ||
		pat[n-2] != cfg.LowerPageProgram || pat[n-1] != cfg.UpperPageProgram {
		t.Fatal("pattern suffix is not 2112")
	}
	// Body must contain both speeds.
	lower, upper := 0, 0
	for _, p := range pat {
		if p == cfg.LowerPageProgram {
			lower++
		} else {
			upper++
		}
	}
	if lower == 0 || upper == 0 {
		t.Fatal("pattern lacks speed diversity")
	}
}

func TestWriteLatencyFollowsPattern(t *testing.T) {
	cfg := smallConfig()
	eng, s := newTestSSD(cfg)
	pat := cfg.ProgramPattern()
	// First write to chip 0 lands on physical page 0 of the active block.
	var lat time.Duration
	w := &blockio.Request{Op: blockio.Write, Offset: 0, Size: cfg.PageSize, SubmitTime: eng.Now()}
	w.OnComplete = ioDone(&lat)
	s.Submit(w)
	eng.Run()
	want := cfg.ChannelXferTime + pat[0]
	if lat != want {
		t.Fatalf("first write latency %v, want %v", lat, want)
	}
}

func TestGCTriggersAndFreesBlocks(t *testing.T) {
	cfg := smallConfig()
	eng, s := newTestSSD(cfg)
	events := 0
	s.SetGCHook(func(ev GCEvent) {
		events++
		if ev.BusyFor < cfg.EraseTime {
			t.Fatalf("GC busy %v < erase time", ev.BusyFor)
		}
	})
	// Overwrite a small logical window repeatedly on one chip so blocks
	// fill with mostly-invalid pages.
	nChips := cfg.TotalChips()
	pg := int64(cfg.PageSize)
	writes := cfg.BlocksPerChip * cfg.PagesPerBlock * 2
	for i := 0; i < writes; i++ {
		lp := int64(i%4) * int64(nChips) // 4 chip-local pages on chip 0
		w := &blockio.Request{Op: blockio.Write, Offset: lp * pg, Size: cfg.PageSize, SubmitTime: eng.Now()}
		w.OnComplete = func(*blockio.Request) {}
		s.Submit(w)
		eng.Run()
	}
	if events == 0 {
		t.Fatal("GC never triggered under overwrite churn")
	}
	_, _, erases := s.Stats()
	if erases == 0 {
		t.Fatal("no erases recorded")
	}
	if s.EraseCount(0) == 0 {
		t.Fatal("chip 0 wear accounting empty")
	}
}

func TestGCDelaysReads(t *testing.T) {
	cfg := smallConfig()
	eng, s := newTestSSD(cfg)
	gcHappened := false
	var readDuringGC time.Duration
	s.SetGCHook(func(ev GCEvent) {
		if gcHappened {
			return
		}
		gcHappened = true
		r := &blockio.Request{Op: blockio.Read, Offset: 0, Size: 4096, SubmitTime: eng.Now()}
		r.OnComplete = ioDone(&readDuringGC)
		s.Submit(r)
	})
	nChips := cfg.TotalChips()
	pg := int64(cfg.PageSize)
	for i := 0; i < cfg.BlocksPerChip*cfg.PagesPerBlock*2 && !gcHappened; i++ {
		lp := int64(i%4) * int64(nChips)
		w := &blockio.Request{Op: blockio.Write, Offset: lp * pg, Size: cfg.PageSize, SubmitTime: eng.Now()}
		w.OnComplete = func(*blockio.Request) {}
		s.Submit(w)
		eng.Run()
	}
	eng.Run()
	if !gcHappened {
		t.Skip("GC did not trigger with this geometry")
	}
	if readDuringGC < cfg.EraseTime {
		t.Fatalf("read during GC took %v; should be stuck behind ≥6ms erase", readDuringGC)
	}
}

func TestChipForOffsetStriping(t *testing.T) {
	cfg := smallConfig()
	_, s := newTestSSD(cfg)
	pg := int64(cfg.PageSize)
	chip0, chan0 := s.ChipForOffset(0)
	chip1, chan1 := s.ChipForOffset(pg)
	if chip0 == chip1 {
		t.Fatal("consecutive pages on same chip; striping broken")
	}
	if chan0 == chan1 {
		t.Fatal("consecutive pages on same channel; striping broken")
	}
}

func TestPageSpan(t *testing.T) {
	cfg := smallConfig()
	_, s := newTestSSD(cfg)
	ps := int64(cfg.PageSize)
	cases := []struct {
		off         int64
		size        int
		first, cnt  int64
		description string
	}{
		{0, 1, 0, 1, "1 byte"},
		{0, cfg.PageSize, 0, 1, "exactly one page"},
		{0, cfg.PageSize + 1, 0, 2, "one page + 1 byte"},
		{ps - 1, 2, 0, 2, "straddles boundary"},
		{2 * ps, 3 * cfg.PageSize, 2, 3, "aligned 3 pages"},
	}
	for _, c := range cases {
		f, n := s.PageSpan(c.off, c.size)
		if f != c.first || n != c.cnt {
			t.Fatalf("%s: PageSpan(%d,%d) = (%d,%d), want (%d,%d)",
				c.description, c.off, c.size, f, n, c.first, c.cnt)
		}
	}
}

func TestInFlightAccounting(t *testing.T) {
	eng, s := newTestSSD(smallConfig())
	r := &blockio.Request{Op: blockio.Read, Offset: 0, Size: 4096}
	r.OnComplete = func(*blockio.Request) {}
	s.Submit(r)
	if s.InFlight() != 1 {
		t.Fatalf("InFlight = %d", s.InFlight())
	}
	eng.Run()
	if s.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", s.InFlight())
	}
}

func TestSubmitHookFires(t *testing.T) {
	eng, s := newTestSSD(smallConfig())
	hooked := 0
	s.SetSubmitHook(func(*blockio.Request) { hooked++ })
	r := &blockio.Request{Op: blockio.Read, Offset: 0, Size: 4096}
	r.OnComplete = func(*blockio.Request) {}
	s.Submit(r)
	eng.Run()
	if hooked != 1 {
		t.Fatalf("submit hook fired %d times", hooked)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, s := newTestSSD(smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := &blockio.Request{Op: blockio.Read, Offset: s.Config().LogicalBytes(), Size: 4096}
	s.Submit(r)
}

func TestErasePanics(t *testing.T) {
	_, s := newTestSSD(smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Submit(&blockio.Request{Op: blockio.Erase, Offset: 0, Size: 4096})
}

func TestInvalidGeometryPanics(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewEngine(), cfg)
}

func TestPropertyFTLMappingBijective(t *testing.T) {
	// After any sequence of page writes, every mapped logical page maps to
	// a distinct valid physical page and rmap inverts mapping.
	cfg := smallConfig()
	f := func(seq []uint16) bool {
		eng, s := newTestSSD(cfg)
		nChips := cfg.TotalChips()
		pg := int64(cfg.PageSize)
		userPages := (cfg.BlocksPerChip - cfg.OverprovisionBlocks) * cfg.PagesPerBlock
		for _, v := range seq {
			cl := int64(v) % int64(userPages/4) // stress a subrange
			off := (cl*int64(nChips) + 0) * pg  // chip 0 always
			w := &blockio.Request{Op: blockio.Write, Offset: off, Size: cfg.PageSize}
			w.OnComplete = func(*blockio.Request) {}
			s.Submit(w)
			eng.Run()
		}
		c := s.chips[0]
		seen := map[int32]bool{}
		for cl, phys := range c.mapping {
			if phys < 0 {
				continue
			}
			if seen[phys] {
				return false // two logical pages share a physical page
			}
			seen[phys] = true
			if c.pageState[phys] != 1 {
				return false // mapped but not valid
			}
			if c.rmap[phys] != int32(cl) {
				return false // rmap does not invert mapping
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalBytesExcludesOverprovisioning(t *testing.T) {
	cfg := smallConfig()
	want := int64(cfg.TotalChips()) * int64(cfg.BlocksPerChip-cfg.OverprovisionBlocks) *
		int64(cfg.PagesPerBlock) * int64(cfg.PageSize)
	if cfg.LogicalBytes() != want {
		t.Fatalf("LogicalBytes = %d, want %d", cfg.LogicalBytes(), want)
	}
}

func TestWearLevelingTriggersAndMovesPages(t *testing.T) {
	cfg := smallConfig()
	cfg.WearLevelEvery = 3
	eng, s := newTestSSD(cfg)
	wlEvents := 0
	s.SetGCHook(func(ev GCEvent) {
		if ev.WearLevel {
			wlEvents++
			if ev.BusyFor < cfg.EraseTime {
				t.Fatalf("wear-level episode busy %v < erase time", ev.BusyFor)
			}
		}
	})
	nChips := cfg.TotalChips()
	pg := int64(cfg.PageSize)
	// Heavy overwrite churn on chip 0 → many GCs → wear leveling.
	for i := 0; i < cfg.BlocksPerChip*cfg.PagesPerBlock*4; i++ {
		lp := int64(i%4) * int64(nChips)
		w := &blockio.Request{Op: blockio.Write, Offset: lp * pg, Size: cfg.PageSize}
		w.OnComplete = func(*blockio.Request) {}
		s.Submit(w)
		eng.Run()
	}
	if wlEvents == 0 {
		t.Skip("churn insufficient to trigger wear leveling with this geometry")
	}
	// Data integrity: the hot pages remain readable after migrations.
	for i := 0; i < 4; i++ {
		done := false
		r := &blockio.Request{Op: blockio.Read, Offset: int64(i) * int64(nChips) * pg, Size: 4096}
		r.OnComplete = func(*blockio.Request) { done = true }
		s.Submit(r)
		eng.Run()
		if !done {
			t.Fatalf("read of hot page %d lost after wear leveling", i)
		}
	}
}

func TestWearLevelingDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.WearLevelEvery = 0
	eng, s := newTestSSD(cfg)
	nChips := cfg.TotalChips()
	pg := int64(cfg.PageSize)
	for i := 0; i < cfg.BlocksPerChip*cfg.PagesPerBlock*2; i++ {
		lp := int64(i%4) * int64(nChips)
		w := &blockio.Request{Op: blockio.Write, Offset: lp * pg, Size: cfg.PageSize}
		w.OnComplete = func(*blockio.Request) {}
		s.Submit(w)
		eng.Run()
	}
	if s.WearLevelMoves() != 0 {
		t.Fatalf("wear leveling ran while disabled: %d moves", s.WearLevelMoves())
	}
}
