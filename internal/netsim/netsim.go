// Package netsim models the datacenter network between NoSQL clients and
// replica nodes: a one-hop latency with small jitter. The paper measures
// this hop at ~0.3ms on EC2 and Emulab (§3.3) and MittOS's entire advantage
// rests on the failover costing one such hop instead of a multi-millisecond
// wait.
package netsim

import (
	"time"

	"mittos/internal/sim"
)

// Config holds the network parameters.
type Config struct {
	// HopLatency is the one-way client↔node latency.
	HopLatency time.Duration
	// JitterStd is the standard deviation of Gaussian per-message jitter.
	JitterStd time.Duration
}

// DefaultConfig matches the paper's testbed: 0.3ms per hop with a little
// jitter. (RAMCloud-style Infiniband would be 10µs, §3.3.)
func DefaultConfig() Config {
	return Config{HopLatency: 300 * time.Microsecond, JitterStd: 20 * time.Microsecond}
}

// Network delivers messages between endpoints in virtual time.
type Network struct {
	eng *sim.Engine
	cfg Config
	rng *sim.RNG

	sent uint64
}

// New builds a network on the engine.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *Network {
	if cfg.HopLatency < 0 {
		panic("netsim: negative hop latency")
	}
	return &Network{eng: eng, cfg: cfg, rng: rng}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Sent returns the number of messages delivered so far.
func (n *Network) Sent() uint64 { return n.sent }

// HopCost samples one hop's latency.
func (n *Network) HopCost() time.Duration {
	d := n.cfg.HopLatency
	if n.cfg.JitterStd > 0 && n.rng != nil {
		d = n.rng.NormalDuration(d, n.cfg.JitterStd)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Send delivers fn after one network hop.
func (n *Network) Send(fn func()) {
	n.sent++
	n.eng.After(n.HopCost(), fn)
}

// RoundTrip delivers fn after two hops (request + response), the cost of
// asking a remote node that answers immediately.
func (n *Network) RoundTrip(fn func()) {
	n.sent += 2
	n.eng.After(n.HopCost()+n.HopCost(), fn)
}
