// Package netsim models the datacenter network between NoSQL clients and
// replica nodes: a one-hop latency with small jitter. The paper measures
// this hop at ~0.3ms on EC2 and Emulab (§3.3) and MittOS's entire advantage
// rests on the failover costing one such hop instead of a multi-millisecond
// wait.
package netsim

import (
	"time"

	"mittos/internal/sim"
)

// Config holds the network parameters.
type Config struct {
	// HopLatency is the one-way client↔node latency.
	HopLatency time.Duration
	// JitterStd is the standard deviation of Gaussian per-message jitter.
	JitterStd time.Duration
}

// DefaultConfig matches the paper's testbed: 0.3ms per hop with a little
// jitter. (RAMCloud-style Infiniband would be 10µs, §3.3.)
func DefaultConfig() Config {
	return Config{HopLatency: 300 * time.Microsecond, JitterStd: 20 * time.Microsecond}
}

// Network delivers messages between endpoints in virtual time.
type Network struct {
	eng *sim.Engine
	cfg Config
	rng *sim.RNG

	// Fault-injection state: extra per-hop latency and jitter while a
	// network-degradation window is open. Both zero when healthy, and the
	// healthy path draws no extra random numbers, so an unused degradation
	// hook cannot perturb a seeded run.
	extraLatency time.Duration
	extraJitter  time.Duration

	sent uint64
}

// New builds a network on the engine.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *Network {
	if cfg.HopLatency < 0 {
		panic("netsim: negative hop latency")
	}
	return &Network{eng: eng, cfg: cfg, rng: rng}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Sent returns the number of messages delivered so far.
func (n *Network) Sent() uint64 { return n.sent }

// SetDegradation opens a degradation window: every subsequent hop costs
// extraLatency more, plus Gaussian noise with stddev extraJitter. Used by
// fault injection to model a congested or flapping fabric.
func (n *Network) SetDegradation(extraLatency, extraJitter time.Duration) {
	if extraLatency < 0 || extraJitter < 0 {
		panic("netsim: negative degradation")
	}
	n.extraLatency, n.extraJitter = extraLatency, extraJitter
}

// ClearDegradation restores healthy hop costs.
func (n *Network) ClearDegradation() { n.extraLatency, n.extraJitter = 0, 0 }

// Degraded reports whether a degradation window is open.
func (n *Network) Degraded() bool { return n.extraLatency > 0 || n.extraJitter > 0 }

// HopCost samples one hop's latency.
func (n *Network) HopCost() time.Duration {
	d := n.cfg.HopLatency
	if n.cfg.JitterStd > 0 && n.rng != nil {
		d = n.rng.NormalDuration(d, n.cfg.JitterStd)
	}
	if n.extraLatency > 0 || n.extraJitter > 0 {
		d += n.extraLatency
		if n.extraJitter > 0 && n.rng != nil {
			d += n.rng.NormalDuration(0, n.extraJitter)
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Send delivers fn after one network hop.
func (n *Network) Send(fn func()) {
	n.sent++
	n.eng.After(n.HopCost(), fn)
}

// RoundTrip delivers fn after two hops (request + response), the cost of
// asking a remote node that answers immediately. The return hop's cost is
// sampled when the request arrives, not at send time, so a degradation
// window that opens mid-flight slows the response hop too.
func (n *Network) RoundTrip(fn func()) {
	n.sent += 2
	n.eng.After(n.HopCost(), func() {
		n.eng.After(n.HopCost(), fn)
	})
}
