package netsim

import (
	"testing"
	"time"

	"mittos/internal/sim"
)

func TestSendTakesOneHop(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{HopLatency: 300 * time.Microsecond}, nil)
	var at sim.Time
	n.Send(func() { at = eng.Now() })
	eng.Run()
	if at != sim.Time(300*time.Microsecond) {
		t.Fatalf("delivered at %v, want 300µs", at)
	}
	if n.Sent() != 1 {
		t.Fatalf("Sent = %d", n.Sent())
	}
}

func TestRoundTripTakesTwoHops(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{HopLatency: 300 * time.Microsecond}, nil)
	var at sim.Time
	n.RoundTrip(func() { at = eng.Now() })
	eng.Run()
	if at != sim.Time(600*time.Microsecond) {
		t.Fatalf("delivered at %v, want 600µs", at)
	}
}

func TestRoundTripReturnHopSeesMidFlightDegradation(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{HopLatency: 300 * time.Microsecond}, nil)
	var at sim.Time
	n.RoundTrip(func() { at = eng.Now() })
	// The degradation window opens while the request hop is in flight: the
	// return hop must pay the extra latency. (The old implementation priced
	// both hops at send time, letting the response dodge the slowdown.)
	eng.After(100*time.Microsecond, func() { n.SetDegradation(time.Millisecond, 0) })
	eng.Run()
	want := sim.Time(2*300*time.Microsecond + time.Millisecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestJitterVariesButStaysPositive(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig(), sim.NewRNG(1, "net"))
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		d := n.HopCost()
		if d < 0 {
			t.Fatalf("negative hop cost %v", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatal("jitter produced nearly constant hops")
	}
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewEngine(), Config{HopLatency: -time.Second}, nil)
}
