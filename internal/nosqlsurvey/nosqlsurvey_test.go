package nosqlsurvey

import (
	"strings"
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/cluster"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/netsim"
	"mittos/internal/noise"
	"mittos/internal/sim"
)

var testProfile = disk.ProfileTwin(disk.DefaultConfig(), 42,
	disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})

func buildSurveyCluster(seed int64) (*cluster.Cluster, func(), func()) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.DefaultConfig(), sim.NewRNG(seed, "net"))
	tmpl := cluster.NodeConfig{
		Device:      cluster.DeviceDisk,
		DiskConfig:  disk.DefaultConfig(),
		UseCFQ:      true,
		MittOptions: core.DefaultOptions(),
		Keys:        20000,
		DiskProfile: testProfile,
	}
	c := cluster.NewCluster(eng, net, 3, 3, tmpl, sim.NewRNG(seed, "nodes"))
	sinks := []blockio.Device{
		c.Nodes[0].NoiseSink(), c.Nodes[1].NoiseSink(), c.Nodes[2].NoiseSink(),
	}
	rot := noise.NewRotating(eng, sinks, time.Second, 4, 1<<20, 500<<30,
		sim.NewRNG(seed, "rot"))
	return c, rot.Start, rot.Stop
}

func TestTable1Specs(t *testing.T) {
	specs := Systems()
	if len(specs) != 6 {
		t.Fatalf("systems = %d, want 6", len(specs))
	}
	// §2's findings encoded in the specs:
	noDefault, noFailover, clones, hedges := 0, 0, 0, 0
	for _, s := range specs {
		if !s.DefaultTT {
			noDefault++
		}
		if !s.FailoverOnTimeout {
			noFailover++
		}
		if s.Clone {
			clones++
		}
		if s.HedgedOrTied {
			hedges++
		}
		if s.DefaultTO < 5*time.Second {
			t.Fatalf("%s default TO %v; the paper reports tens of seconds", s.Name, s.DefaultTO)
		}
	}
	if noDefault != 6 {
		t.Fatal("all six systems lack default tail tolerance")
	}
	if noFailover != 3 {
		t.Fatalf("three systems must not failover on timeout, got %d", noFailover)
	}
	if clones != 2 {
		t.Fatalf("exactly two systems clone, got %d", clones)
	}
	if hedges != 0 {
		t.Fatalf("no system hedges, got %d", hedges)
	}
}

func TestSurveyMeasuresNoTT(t *testing.T) {
	opt := DefaultRunOptions()
	opt.Requests = 400 // keep the test quick; the bench runs full scale
	results := Run(opt, buildSurveyCluster)
	if len(results) != 6 {
		t.Fatalf("rows = %d", len(results))
	}
	for _, r := range results {
		// Default config: coarse timeouts never fire, so rotating
		// contention shows up in the p99.
		if r.DefaultP99 < 20*time.Millisecond {
			t.Fatalf("%s default p99 = %v; contention invisible", r.Spec.Name, r.DefaultP99)
		}
		if r.Spec.FailoverOnTimeout || r.Spec.Snitch {
			if r.TunedErrors != 0 {
				t.Fatalf("%s surfaced %d errors despite failover support",
					r.Spec.Name, r.TunedErrors)
			}
		} else if r.TunedErrors == 0 {
			t.Fatalf("%s should surface read errors with a 100ms timeout", r.Spec.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	results := []Result{{Spec: Systems()[0], DefaultP99: 42 * time.Millisecond}}
	out := Table(results)
	for _, want := range []string{"Cassandra", "12s", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
