// Package nosqlsurvey reproduces Table 1 ("No 'TT' in NoSQL", §2): the
// tail-tolerance behaviour of six popular NoSQL systems, each modeled by
// its default timeout value and its failover/clone/hedging capabilities,
// exercised under the paper's methodology — 4 nodes (1 client, 3 replicas),
// thousands of 1KB reads, severe IO contention rotating across the replicas
// every second.
package nosqlsurvey

import (
	"errors"
	"strconv"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

// ErrTimeout is the user-visible read error systems without
// failover-on-timeout return ("undesirably, the users receive read errors
// even though less-busy replicas are available", §2).
var ErrTimeout = errors.New("nosqlsurvey: read timed out")

// SystemSpec encodes one NoSQL system's Table 1 row.
type SystemSpec struct {
	Name string
	// DefaultTT: whether the default configuration fails over away from a
	// busy replica at all (Table 1 column "Def. TT" — ✗ for all six).
	DefaultTT bool
	// DefaultTO is the default timeout (column "TO Val.").
	DefaultTO time.Duration
	// FailoverOnTimeout: with the timeout exercised (set to 100ms), does
	// the system retry another replica, or surface a read error?
	FailoverOnTimeout bool
	// Clone / HedgedOrTied: advanced mechanisms available (last columns).
	Clone        bool
	HedgedOrTied bool
	// Snitch: Cassandra picks replicas by monitored latency.
	Snitch bool
}

// Systems returns the six systems exactly as Table 1 reports them:
// all lack default tail tolerance; timeouts are tens of seconds; Couchbase,
// MongoDB, and Riak do not fail over even when a timeout fires; only HBase
// and Voldemort can clone; none hedge.
func Systems() []SystemSpec {
	return []SystemSpec{
		{Name: "Cassandra", DefaultTO: 12 * time.Second, FailoverOnTimeout: true, Snitch: true},
		{Name: "Couchbase", DefaultTO: 75 * time.Second},
		{Name: "HBase", DefaultTO: 60 * time.Second, FailoverOnTimeout: true, Clone: true},
		{Name: "MongoDB", DefaultTO: 30 * time.Second},
		{Name: "Riak", DefaultTO: 10 * time.Second},
		{Name: "Voldemort", DefaultTO: 5 * time.Second, FailoverOnTimeout: true, Clone: true},
	}
}

// Result is one measured row.
type Result struct {
	Spec SystemSpec
	// DefaultP99 is the p99 read latency under rotating contention with
	// the system's default configuration (timeouts in the tens of seconds
	// never fire, so the tail absorbs the full contention).
	DefaultP99 time.Duration
	// TunedErrors counts user-visible read errors when the timeout is
	// tightened to 100ms on a system that cannot fail over.
	TunedErrors int
	// TunedP99 is the p99 with the 100ms timeout.
	TunedP99 time.Duration
	// Requests is the sample size per phase.
	Requests int
}

// systemStrategy adapts a SystemSpec to a request strategy.
type systemStrategy struct {
	c      *cluster.Cluster
	spec   SystemSpec
	to     time.Duration
	snitch *cluster.SnitchStrategy
	rng    *sim.RNG
}

func (s *systemStrategy) get(key int64, onDone func(lat time.Duration, err error)) {
	start := s.c.Eng.Now()
	if s.spec.Snitch {
		// Cassandra: snitching picks the historically fastest replica; no
		// timeout-based failover within our 100ms-class window.
		s.snitch.Get(key, func(res cluster.GetResult) {
			onDone(s.c.Eng.Now().Sub(start), res.Err)
		})
		return
	}
	replicas := s.c.ReplicasFor(key)
	var attempt func(i int)
	attempt = func(i int) {
		done := false
		var timer *sim.Event
		timer = s.c.Eng.Schedule(s.to, func() {
			if done {
				return
			}
			done = true
			if s.spec.FailoverOnTimeout && i+1 < len(replicas) {
				attempt(i + 1)
				return
			}
			// No failover: the user gets a read error (§2).
			onDone(s.c.Eng.Now().Sub(start), ErrTimeout)
		})
		s.sendTo(replicas[i], key, func(err error) {
			if done {
				return
			}
			done = true
			timer.Cancel()
			onDone(s.c.Eng.Now().Sub(start), err)
		})
	}
	attempt(0)
}

func (s *systemStrategy) sendTo(node int, key int64, onDone func(error)) {
	s.c.Net.Send(func() {
		s.c.Nodes[node].ServeGet(key, 0, func(err error) {
			s.c.Net.Send(func() { onDone(err) })
		})
	})
}

// RunOptions shape the survey experiment.
type RunOptions struct {
	Requests       int           // reads per phase
	Interval       time.Duration // client request spacing
	RotationPeriod time.Duration // contention rotation (1s in §2)
	TunedTO        time.Duration // the exercised timeout (100ms in §2)
	Keys           int64
	Seed           int64
}

// DefaultRunOptions mirror §2 at simulation-friendly scale.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		Requests:       2000,
		Interval:       5 * time.Millisecond,
		RotationPeriod: time.Second,
		TunedTO:        100 * time.Millisecond,
		Keys:           20000,
		Seed:           1,
	}
}

// BuildCluster constructs the 3-replica fleet the survey runs against; the
// caller owns noise injection so tests can reuse it.
type runPhase struct {
	lat    *stats.Sample
	errors int
}

// Run executes the survey for every system and returns measured rows.
// The builder function must return a fresh 3-node cluster plus a "start
// rotating contention" thunk; each (system, phase) runs on its own cluster
// so state never leaks between rows.
func Run(opt RunOptions, build func(seed int64) (*cluster.Cluster, func(), func())) []Result {
	var out []Result
	for si, spec := range Systems() {
		res := Result{Spec: spec, Requests: opt.Requests}
		// Phase 1: default configuration.
		p := runPhase{lat: stats.NewSample(opt.Requests)}
		runOne(opt, build, int64(si)*2+opt.Seed, spec, spec.DefaultTO, &p)
		res.DefaultP99 = p.lat.Percentile(99)
		// Phase 2: timeout tightened to 100ms.
		p2 := runPhase{lat: stats.NewSample(opt.Requests)}
		runOne(opt, build, int64(si)*2+1+opt.Seed, spec, opt.TunedTO, &p2)
		res.TunedErrors = p2.errors
		res.TunedP99 = p2.lat.Percentile(99)
		out = append(out, res)
	}
	return out
}

func runOne(opt RunOptions, build func(seed int64) (*cluster.Cluster, func(), func()),
	seed int64, spec SystemSpec, to time.Duration, phase *runPhase) {
	c, startNoise, stopNoise := build(seed)
	strat := &systemStrategy{
		c: c, spec: spec, to: to,
		snitch: &cluster.SnitchStrategy{C: c},
		rng:    sim.NewRNG(seed, "survey"),
	}
	startNoise()
	keyRNG := sim.NewRNG(seed, "keys")
	issued := 0
	var tick *sim.Ticker
	tick = c.Eng.NewTicker(opt.Interval, func() {
		if issued >= opt.Requests {
			tick.Stop()
			return
		}
		issued++
		strat.get(keyRNG.Int63n(opt.Keys), func(lat time.Duration, err error) {
			phase.lat.Add(lat)
			if err != nil {
				phase.errors++
			}
		})
	})
	horizon := time.Duration(opt.Requests)*opt.Interval + 2*opt.RotationPeriod + to
	c.Eng.RunFor(horizon)
	stopNoise()
	c.Eng.RunFor(to + time.Second) // drain stragglers
}

// Table renders the paper-style Table 1 plus measured columns.
func Table(results []Result) string {
	tb := &stats.Table{Header: []string{
		"System", "Def.TT", "TO Val.", "Failover", "Clone", "Hedged/Tied",
		"p99 (default)", "errors @100ms TO",
	}}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range results {
		tb.AddRow(
			r.Spec.Name,
			mark(r.Spec.DefaultTT),
			r.Spec.DefaultTO.String(),
			mark(r.Spec.FailoverOnTimeout),
			mark(r.Spec.Clone),
			mark(r.Spec.HedgedOrTied),
			stats.FormatDuration(r.DefaultP99),
			strconv.Itoa(r.TunedErrors),
		)
	}
	return tb.String()
}
