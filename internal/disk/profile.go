package disk

import (
	"math/bits"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// Profile is the white-box latency model MittOS learns about a disk by
// offline profiling (Appendix A: "we measure the latency (seek cost) of all
// pairs of random IOs per GB distance ... profile the disk with 10 tries and
// use linear regression for more accuracy"). Predictors consume only this —
// never the device's true parameters — so prediction error is real.
type Profile struct {
	// SeekBuckets holds the measured positioning cost per distance bucket;
	// bucket i covers distances [i, i+1) * BucketBytes.
	SeekBuckets []time.Duration
	// BucketBytes is the distance width of one bucket.
	BucketBytes int64
	// SeqThreshold mirrors the device's sequential window as measured.
	SeqThreshold int64
	// SeqCost is the measured sequential positioning cost.
	SeqCost time.Duration
	// TransferPerKB is the measured per-KiB transfer slope.
	TransferPerKB time.Duration
	// AgeLimit is the device's command-aging bound (from the vendor spec
	// or policy characterization, as Appendix A characterizes the queue
	// policy): IOs older than this are served FIFO, not SSTF.
	AgeLimit time.Duration

	// Direct-index seek lookup built by Prepare: seekIdx maps
	// dist>>seekShift to a candidate bucket (the cell width 2^seekShift
	// never exceeds BucketBytes, so a cell spans at most two buckets and
	// one boundary compare resolves it), replacing the hot-path division.
	// BucketBytes is not a power of two for realistic capacities, so a
	// plain shift cannot index the buckets directly.
	seekIdx   []int16
	seekShift uint
	seekBound []int64 // (i+1)*BucketBytes per bucket
}

// Prepare builds the division-free seek lookup. ProfileDisk calls it;
// hand-built profiles may call it too (or skip it — SeekCost falls back to
// the dividing path). The profile must not be mutated afterwards.
func (p *Profile) Prepare() {
	nb := len(p.SeekBuckets)
	if nb == 0 || nb > 1<<15-1 || p.BucketBytes <= 0 {
		return
	}
	shift := uint(bits.Len64(uint64(p.BucketBytes)) - 1)
	span := int64(nb) * p.BucketBytes
	idx := make([]int16, span>>shift+1)
	for j := range idx {
		i := (int64(j) << shift) / p.BucketBytes
		if i >= int64(nb) {
			i = int64(nb) - 1
		}
		idx[j] = int16(i)
	}
	bound := make([]int64, nb)
	for i := range bound {
		bound[i] = (int64(i) + 1) * p.BucketBytes
	}
	p.seekIdx, p.seekShift, p.seekBound = idx, shift, bound
}

// SeekCost predicts the positioning cost for a head movement of dist bytes.
func (p *Profile) SeekCost(dist int64) time.Duration {
	if dist < 0 {
		dist = -dist
	}
	if dist <= p.SeqThreshold {
		return p.SeqCost
	}
	if t := p.seekIdx; t != nil {
		if j := uint64(dist) >> p.seekShift; j < uint64(len(t)) {
			i := int(t[j])
			if i+1 < len(p.SeekBuckets) && dist >= p.seekBound[i] {
				i++
			}
			return p.SeekBuckets[i]
		}
		return p.SeekBuckets[len(p.SeekBuckets)-1]
	}
	i := int(dist / p.BucketBytes)
	if i >= len(p.SeekBuckets) {
		i = len(p.SeekBuckets) - 1
	}
	return p.SeekBuckets[i]
}

// ServiceTime predicts the full service time of an IO of `size` bytes whose
// start offset is `dist` away from the current head position. This is the
// paper's TprocessNewIO = f(size, jump distance) (§4.1).
func (p *Profile) ServiceTime(dist int64, size int) time.Duration {
	kb := (size + 1023) / 1024
	return p.SeekCost(dist) + time.Duration(kb)*p.TransferPerKB
}

// ProfilerOptions tunes the offline profiling pass.
type ProfilerOptions struct {
	// Buckets is the number of seek-distance buckets (the paper fills a
	// 1000×1000 per-GB matrix; distance bucketing is the regression-style
	// compression of that matrix).
	Buckets int
	// Tries is the number of measurements averaged per bucket.
	Tries int
	// ProbeSize is the IO size used for seek probing.
	ProbeSize int
}

// DefaultProfilerOptions matches the paper's 10-try methodology.
func DefaultProfilerOptions() ProfilerOptions {
	return ProfilerOptions{Buckets: 64, Tries: 10, ProbeSize: 4096}
}

// ProfileDisk measures a disk's latency profile by running probe IOs on a
// dedicated engine, exactly the way the paper's one-time 11-hour profiling
// pass does (compressed here because virtual time is free). The disk must be
// otherwise idle; profiling a shared engine mid-experiment would perturb it,
// so callers typically profile a twin disk built from the same Config and
// an identical RNG stream family.
func ProfileDisk(eng *sim.Engine, d *Disk, opt ProfilerOptions) *Profile {
	if opt.Buckets <= 0 || opt.Tries <= 0 || opt.ProbeSize <= 0 {
		opt = DefaultProfilerOptions()
	}
	cap := d.cfg.CapacityBytes
	bucketBytes := cap / int64(opt.Buckets)
	if bucketBytes == 0 {
		bucketBytes = 1
	}
	prof := &Profile{
		BucketBytes:  bucketBytes,
		SeqThreshold: d.cfg.SeqThreshold, // discoverable by bisection; taken as given
		AgeLimit:     d.cfg.AgeLimit,     // queue-policy characterization
		SeekBuckets:  make([]time.Duration, opt.Buckets),
	}

	var ids blockio.IDGen
	measure := func(from, to int64, size int) time.Duration {
		// Position the head deterministically, then measure the probe.
		var latency time.Duration
		pos := &blockio.Request{ID: ids.Next(), Op: blockio.Read, Offset: from, Size: 512}
		pos.OnComplete = func(*blockio.Request) {}
		d.Submit(pos)
		eng.Run()
		probe := &blockio.Request{ID: ids.Next(), Op: blockio.Read, Offset: to, Size: size}
		probe.OnComplete = func(r *blockio.Request) { latency = r.ServiceTime() }
		d.Submit(probe)
		eng.Run()
		return latency
	}

	// 1. Transfer slope: two sequential sizes at the same locality.
	const bigProbe = 256 << 10
	lat4k := measure(0, 4096, 4096)
	latBig := measure(0, 4096, bigProbe)
	deltaKB := (bigProbe - 4096) / 1024
	slope := (latBig - lat4k) / time.Duration(deltaKB)
	if slope < 0 {
		slope = 0
	}
	prof.TransferPerKB = slope

	// 2. Sequential cost: back-to-back probe, transfer removed.
	seq := measure(0, 8192, opt.ProbeSize) - time.Duration((opt.ProbeSize+1023)/1024)*slope
	if seq < 0 {
		seq = 0
	}
	prof.SeqCost = seq

	// 3. Seek cost per distance bucket, averaged over Tries.
	transfer := time.Duration((opt.ProbeSize+1023)/1024) * slope
	for b := 0; b < opt.Buckets; b++ {
		dist := int64(b)*bucketBytes + bucketBytes/2
		span := cap - dist - int64(opt.ProbeSize)
		if span <= 0 {
			// Bucket reaches past the end of the disk; measure from 0.
			span = 1
			dist = cap - int64(opt.ProbeSize) - 1
		}
		var sum time.Duration
		n := 0
		for t := 0; t < opt.Tries; t++ {
			// Vary the starting track to average geometry effects.
			from := (int64(t) * 977 * 4096) % span
			to := from + dist
			lat := measure(from, to, opt.ProbeSize) - transfer
			if lat < 0 {
				lat = 0
			}
			sum += lat
			n++
		}
		prof.SeekBuckets[b] = sum / time.Duration(n)
	}

	// 4. Smooth the curve with a 3-point moving average — the stand-in for
	// the paper's linear regression; it removes residual per-measurement
	// noise while preserving the concave shape.
	smoothed := make([]time.Duration, len(prof.SeekBuckets))
	for i := range prof.SeekBuckets {
		sum, n := time.Duration(0), 0
		for j := i - 1; j <= i+1; j++ {
			if j >= 0 && j < len(prof.SeekBuckets) {
				sum += prof.SeekBuckets[j]
				n++
			}
		}
		smoothed[i] = sum / time.Duration(n)
	}
	prof.SeekBuckets = smoothed
	prof.Prepare()
	return prof
}

// ProfileTwin builds a fresh engine + disk from cfg and profiles it — the
// usual entry point: experiments profile a twin so the production disk's RNG
// stream is untouched.
func ProfileTwin(cfg Config, seed int64, opt ProfilerOptions) *Profile {
	eng := sim.NewEngine()
	d := New(eng, cfg, sim.NewRNG(seed, "disk-profiler"))
	return ProfileDisk(eng, d, opt)
}
