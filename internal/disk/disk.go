// Package disk models a rotating hard disk with a seek-distance-dependent
// service time, an SSTF-reordering device queue, and an NVRAM write-back
// buffer — the three properties of real disks that the paper's MittNoop and
// MittCFQ predictors have to contend with (§4.1–4.2, §7.8.6, Appendix A).
//
// The model is deliberately *not* trivially predictable: per-IO service time
// includes zero-mean noise and the device reorders its queue by SSTF, so a
// MittOS predictor sitting above it accumulates drift exactly as on real
// hardware and has to calibrate via Tdiff feedback. Prediction accuracy in
// the Figure 9 experiment is therefore an emergent property of the model,
// not an assumption.
package disk

import (
	"fmt"
	"math"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// Config holds the disk's physical parameters.
type Config struct {
	// CapacityBytes is the size of the logical address space.
	CapacityBytes int64
	// SeekBase is the fixed positioning cost of any non-sequential IO
	// (controller overhead + head settle + average partial rotation).
	SeekBase time.Duration
	// SeekMax is the additional full-stroke seek cost; the seek curve is
	// SeekBase + SeekMax*sqrt(distance/capacity), the standard concave
	// shape of disk seek profiles (Ruemmler & Wilkes).
	SeekMax time.Duration
	// SeqThreshold is the byte distance below which an IO counts as
	// sequential and pays only SeqCost.
	SeqThreshold int64
	// SeqCost is the near-zero positioning cost of a sequential IO.
	SeqCost time.Duration
	// TransferPerKB is the media transfer cost per KiB.
	TransferPerKB time.Duration
	// ServiceNoiseStd is the standard deviation of zero-mean Gaussian
	// noise added to every spindle operation (vibration, thermal
	// recalibration, rotational phase) — the reason profiling needs
	// multiple tries (Appendix A: "10 tries and linear regression").
	ServiceNoiseStd time.Duration
	// QueueDepth is the device (NCQ) queue depth visible to SSTF
	// reordering. The OS dispatch queue above holds the excess.
	QueueDepth int
	// AgeLimit bounds SSTF starvation: a queued IO older than this is
	// served next regardless of seek distance, mirroring the command
	// aging real NCQ firmware applies so far-offset IOs cannot starve
	// behind a stream of near-head arrivals.
	AgeLimit time.Duration
	// WriteBufferSlots is the capacity of the capacitor-backed NVRAM
	// write buffer (§7.8.6). 0 disables write buffering.
	WriteBufferSlots int
	// WriteAckLatency is the latency of a buffered write acknowledgement.
	WriteAckLatency time.Duration
}

// DefaultConfig returns parameters calibrated so a random 4KB read takes
// 6–10ms without contention, matching §6's "latencies without noise are
// expected to be 6-10ms (disk)".
func DefaultConfig() Config {
	return Config{
		CapacityBytes:    1000 << 30, // 1TB, as the Emulab d430 testbed
		SeekBase:         2 * time.Millisecond,
		SeekMax:          8 * time.Millisecond,
		SeqThreshold:     2 << 20,
		SeqCost:          300 * time.Microsecond,
		TransferPerKB:    10 * time.Microsecond, // ≈100MB/s media rate
		ServiceNoiseStd:  250 * time.Microsecond,
		QueueDepth:       31,
		AgeLimit:         15 * time.Millisecond,
		WriteBufferSlots: 4096,
		WriteAckLatency:  50 * time.Microsecond,
	}
}

// destageRec is the disk's private copy of one NVRAM-buffered write: the
// originating request is acked (terminal) at buffer time, so the spindle
// must not rely on the pointer staying valid.
type destageRec struct {
	offset int64
	size   int
}

// Disk is the device model. It implements blockio.Device.
type Disk struct {
	eng *sim.Engine
	cfg Config
	rng *sim.RNG

	headPos int64
	queue   []*blockio.Request // device queue, reordered by SSTF
	destage []destageRec       // NVRAM writes awaiting idle destaging
	scratch blockio.Request    // reused to present destage records to the spindle
	busy    bool

	inflight int
	served   uint64

	// degrade scales every spindle operation; 1.0 = healthy. Models the
	// §8.1 concern that "hardware performance can degrade over time" (or
	// improve as SLC cells wear), invalidating old latency profiles.
	degrade float64

	// Fault injection: fraction of completions that fail with EIO, drawn
	// from a dedicated stream so an idle (rate 0) injector consumes no
	// randomness and cannot perturb a seeded run.
	errRate float64
	errRNG  *sim.RNG

	// onSlotFree lets the scheduler above refill the device queue.
	onSlotFree func()

	svcFree []*diskSvcOp
	ackFree []*diskAckOp

	rec *metrics.Recorder
}

// diskSvcOp is the pooled spindle-service completion (the timer callback at
// the end of one seek+transfer).
type diskSvcOp struct {
	d        *Disk
	req      *blockio.Request
	destaged bool
	fn       func() // pre-bound op.fire
}

func (op *diskSvcOp) fire() {
	d, req, destaged := op.d, op.req, op.destaged
	op.req = nil
	d.svcFree = append(d.svcFree, op)
	d.headPos = req.End()
	d.busy = false
	d.served++
	if !destaged {
		d.complete(req)
	}
	if d.onSlotFree != nil {
		d.onSlotFree()
	}
	d.kick()
}

// diskAckOp is the pooled NVRAM write-acknowledgement timer callback.
type diskAckOp struct {
	d   *Disk
	req *blockio.Request
	fn  func() // pre-bound op.fire
}

func (op *diskAckOp) fire() {
	d, req := op.d, op.req
	op.req = nil
	d.ackFree = append(d.ackFree, op)
	d.complete(req)
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (d *Disk) SetRecorder(rec *metrics.Recorder) { d.rec = rec }

// New builds a disk on the engine. rng must be a dedicated stream.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *Disk {
	if cfg.CapacityBytes <= 0 {
		panic("disk: capacity must be positive")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	return &Disk{eng: eng, cfg: cfg, rng: rng, degrade: 1.0}
}

// SetDegradation scales all subsequent spindle operations by factor
// (>1 slower, <1 faster). The §8.1 scenario: a drive ages and its offline
// profile silently goes stale.
func (d *Disk) SetDegradation(factor float64) {
	if factor <= 0 {
		panic("disk: degradation factor must be positive")
	}
	d.degrade = factor
}

// Degradation returns the current factor.
func (d *Disk) Degradation() float64 { return d.degrade }

// SetErrorInjection makes rate of subsequent completions fail with
// blockio.ErrIO, drawn from rng (which must be a dedicated stream). Rate 0
// disables and draws nothing.
func (d *Disk) SetErrorInjection(rate float64, rng *sim.RNG) {
	if rate < 0 || rate > 1 {
		panic("disk: error rate must be in [0,1]")
	}
	d.errRate, d.errRNG = rate, rng
}

// Config returns the disk's configuration.
func (d *Disk) Config() Config { return d.cfg }

// SetSlotFreeHook registers a callback invoked whenever a device-queue slot
// frees up, so the IO scheduler above can dispatch more requests.
func (d *Disk) SetSlotFreeHook(fn func()) { d.onSlotFree = fn }

// CanAccept reports whether the device queue has room (NCQ not full).
func (d *Disk) CanAccept() bool { return len(d.queue) < d.cfg.QueueDepth }

// InFlight implements blockio.Device.
func (d *Disk) InFlight() int { return d.inflight }

// QueueLen returns the current device-queue occupancy (reads + destage
// candidates are not included; only spindle-bound queued IOs).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Served returns the number of completed spindle operations.
func (d *Disk) Served() uint64 { return d.served }

// HeadPos returns the current head position (for tests and predictors; the
// paper notes the head position is "known from the last IO completed").
func (d *Disk) HeadPos() int64 { return d.headPos }

// Submit implements blockio.Device. Writes are absorbed by the NVRAM buffer
// when space allows; reads (and overflow writes) enter the device queue.
func (d *Disk) Submit(req *blockio.Request) {
	if req.Offset < 0 || req.End() > d.cfg.CapacityBytes {
		panic(fmt.Sprintf("disk: IO out of range: %v", req))
	}
	req.DispatchTime = d.eng.Now()
	d.inflight++
	d.rec.DevEnter(metrics.RDisk, req)
	if req.Op == blockio.Write && d.cfg.WriteBufferSlots > 0 &&
		len(d.destage) < d.cfg.WriteBufferSlots {
		// NVRAM absorbs the write; destage happens during idle periods.
		// The buffer keeps its own copy of the geometry: the request is
		// acked (and possibly recycled by its owner) before the spindle
		// writes the data back.
		d.destage = append(d.destage, destageRec{offset: req.Offset, size: req.Size})
		var op *diskAckOp
		if n := len(d.ackFree); n > 0 {
			op = d.ackFree[n-1]
			d.ackFree = d.ackFree[:n-1]
		} else {
			op = &diskAckOp{d: d}
			op.fn = op.fire
		}
		op.req = req
		d.eng.After(d.cfg.WriteAckLatency, op.fn)
		d.kick() // idle disks destage immediately
		return
	}
	d.queue = append(d.queue, req)
	d.kick()
}

// kick starts the service loop if the spindle is idle.
func (d *Disk) kick() {
	if d.busy {
		return
	}
	req, destaged := d.next()
	if req == nil {
		return
	}
	d.busy = true
	if !destaged {
		d.rec.DevStart(metrics.RDisk, req)
	}
	svc := d.ServiceTime(d.headPos, req)
	var op *diskSvcOp
	if n := len(d.svcFree); n > 0 {
		op = d.svcFree[n-1]
		d.svcFree = d.svcFree[:n-1]
	} else {
		op = &diskSvcOp{d: d}
		op.fn = op.fire
	}
	op.req, op.destaged = req, destaged
	d.eng.After(svc, op.fn)
}

// next pops the SSTF-closest request from the device queue; if the queue is
// empty it opportunistically destages one buffered write (idle destaging).
// The second result reports whether the request is a destage (its completion
// callback already fired at NVRAM-ack time).
func (d *Disk) next() (*blockio.Request, bool) {
	// Drop cancelled requests first (they never reach the spindle).
	live := d.queue[:0]
	for _, r := range d.queue {
		if r.Canceled() {
			d.inflight--
			d.rec.DevDrop(metrics.RDisk, r)
			r.Dropped()
			continue
		}
		live = append(live, r)
	}
	d.queue = live
	if len(d.queue) == 0 {
		if len(d.destage) > 0 {
			w := d.destage[0]
			// Pop by copy-down, not re-slicing: the buffer is bounded by
			// WriteBufferSlots and keeping its capacity makes the
			// steady-state write path allocation-free.
			d.destage = d.destage[:copy(d.destage, d.destage[1:])]
			d.scratch = blockio.Request{Op: blockio.Write, Offset: w.offset, Size: w.size}
			return &d.scratch, true
		}
		return nil, false
	}
	// Command aging: the oldest starving IO preempts SSTF order.
	if d.cfg.AgeLimit > 0 {
		oldest, oldestAt := -1, sim.Time(math.MaxInt64)
		for i, r := range d.queue {
			if r.DispatchTime < oldestAt {
				oldest, oldestAt = i, r.DispatchTime
			}
		}
		if oldest >= 0 && d.eng.Now().Sub(oldestAt) > d.cfg.AgeLimit {
			req := d.queue[oldest]
			d.queue = append(d.queue[:oldest], d.queue[oldest+1:]...)
			return req, false
		}
	}
	best, bestDist := 0, int64(math.MaxInt64)
	for i, r := range d.queue {
		dist := absI64(r.Offset - d.headPos)
		if dist < bestDist {
			best, bestDist = i, dist
		}
	}
	req := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	return req, false
}

func (d *Disk) complete(req *blockio.Request) {
	if d.errRate > 0 && d.errRNG != nil && d.errRNG.Bool(d.errRate) {
		req.Err = blockio.ErrIO
	}
	req.CompleteTime = d.eng.Now()
	d.inflight--
	d.rec.DevDone(metrics.RDisk, req)
	if req.OnComplete != nil {
		req.OnComplete(req)
	}
}

// ServiceTime returns the spindle time to serve req from head position
// `from`, including the model's per-IO noise. Exposed so tests and the
// profiler can call it; predictors must NOT — they only see profiled data.
func (d *Disk) ServiceTime(from int64, req *blockio.Request) time.Duration {
	base := d.seekCost(from, req.Offset) + d.transferCost(req.Size)
	if d.cfg.ServiceNoiseStd > 0 {
		base = d.rng.NormalDuration(base, d.cfg.ServiceNoiseStd)
	}
	if base < d.cfg.SeqCost {
		base = d.cfg.SeqCost
	}
	if d.degrade != 1.0 {
		base = time.Duration(float64(base) * d.degrade)
	}
	return base
}

func (d *Disk) seekCost(from, to int64) time.Duration {
	dist := absI64(to - from)
	if dist <= d.cfg.SeqThreshold {
		return d.cfg.SeqCost
	}
	frac := float64(dist) / float64(d.cfg.CapacityBytes)
	return d.cfg.SeekBase + time.Duration(float64(d.cfg.SeekMax)*math.Sqrt(frac))
}

func (d *Disk) transferCost(size int) time.Duration {
	kb := (size + 1023) / 1024
	return time.Duration(kb) * d.cfg.TransferPerKB
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
