package disk

import (
	"testing"
	"testing/quick"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

func newTestDisk(t *testing.T) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, DefaultConfig(), sim.NewRNG(1, t.Name()))
}

func read(off int64, size int) *blockio.Request {
	return &blockio.Request{Op: blockio.Read, Offset: off, Size: size}
}

func TestRandomReadLatencyBand(t *testing.T) {
	// §6: random 4KB reads without noise should land in ~6-10ms.
	eng, d := newTestDisk(t)
	rng := sim.NewRNG(2, "offsets")
	s := stats.NewSample(0)
	var issue func(i int)
	issue = func(i int) {
		if i == 0 {
			return
		}
		r := read(rng.Int63n(d.Config().CapacityBytes-4096), 4096)
		r.OnComplete = func(r *blockio.Request) {
			s.Add(r.Latency())
			issue(i - 1)
		}
		r.SubmitTime = eng.Now()
		d.Submit(r)
	}
	issue(500)
	eng.Run()
	mean := s.Mean()
	if mean < 4*time.Millisecond || mean > 12*time.Millisecond {
		t.Fatalf("mean random-read latency %v outside 4–12ms", mean)
	}
	if s.N() != 500 {
		t.Fatalf("completed %d of 500", s.N())
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	eng, d := newTestDisk(t)
	var seqLat, randLat time.Duration
	r1 := read(0, 4096)
	r1.OnComplete = func(*blockio.Request) {}
	d.Submit(r1)
	eng.Run()
	r2 := read(8192, 4096) // sequential w.r.t. head
	r2.SubmitTime = eng.Now()
	r2.OnComplete = func(r *blockio.Request) { seqLat = r.Latency() }
	d.Submit(r2)
	eng.Run()
	r3 := read(500<<30, 4096) // half-stroke seek
	r3.SubmitTime = eng.Now()
	r3.OnComplete = func(r *blockio.Request) { randLat = r.Latency() }
	d.Submit(r3)
	eng.Run()
	if seqLat*4 > randLat {
		t.Fatalf("sequential %v not ≪ random %v", seqLat, randLat)
	}
}

func TestSSTFOrdering(t *testing.T) {
	// While one IO is in service, queue three more; the disk must serve
	// the one closest to the head next, not FIFO.
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ServiceNoiseStd = 0 // determinism for ordering assertions
	d := New(eng, cfg, sim.NewRNG(1, "sstf"))
	var order []int64
	mk := func(off int64) *blockio.Request {
		r := read(off, 4096)
		r.OnComplete = func(r *blockio.Request) { order = append(order, r.Offset) }
		return r
	}
	d.Submit(mk(100 << 30)) // starts service immediately; head ends near 100GB
	d.Submit(mk(900 << 30)) // farthest
	d.Submit(mk(120 << 30)) // closest to head after first completes
	d.Submit(mk(500 << 30))
	eng.Run()
	want := []int64{100 << 30, 120 << 30, 500 << 30, 900 << 30}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v (SSTF)", order, want)
		}
	}
}

func TestWriteBufferAbsorbsWrites(t *testing.T) {
	// §7.8.6: buffered writes ack in µs even when the spindle is busy.
	eng, d := newTestDisk(t)
	// Saturate the spindle with reads.
	for i := 0; i < 10; i++ {
		r := read(int64(i)*(50<<30), 4096)
		r.OnComplete = func(*blockio.Request) {}
		d.Submit(r)
	}
	var wLat time.Duration
	w := &blockio.Request{Op: blockio.Write, Offset: 4096, Size: 4096}
	w.SubmitTime = eng.Now()
	w.OnComplete = func(r *blockio.Request) { wLat = r.Latency() }
	d.Submit(w)
	eng.Run()
	if wLat > time.Millisecond {
		t.Fatalf("buffered write latency %v, want ≪1ms", wLat)
	}
}

func TestWriteBufferOverflowHitsSpindle(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.WriteBufferSlots = 1
	d := New(eng, cfg, sim.NewRNG(1, "wb"))
	var lats []time.Duration
	for i := 0; i < 3; i++ {
		w := &blockio.Request{Op: blockio.Write, Offset: int64(i) * (100 << 30), Size: 4096}
		w.SubmitTime = eng.Now()
		w.OnComplete = func(r *blockio.Request) { lats = append(lats, r.Latency()) }
		d.Submit(w)
	}
	eng.Run()
	if len(lats) != 3 {
		t.Fatalf("completed %d of 3 writes", len(lats))
	}
	slow := 0
	for _, l := range lats {
		if l > time.Millisecond {
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("overflow writes should pay spindle latency")
	}
}

func TestDestageDoesNotDoubleComplete(t *testing.T) {
	eng, d := newTestDisk(t)
	completions := 0
	w := &blockio.Request{Op: blockio.Write, Offset: 0, Size: 4096}
	w.OnComplete = func(*blockio.Request) { completions++ }
	d.Submit(w)
	eng.Run() // ack + idle destage both happen
	if completions != 1 {
		t.Fatalf("write completed %d times, want exactly 1", completions)
	}
	if d.Served() != 1 {
		t.Fatalf("destaged spindle ops = %d, want 1", d.Served())
	}
}

func TestCanceledRequestSkipped(t *testing.T) {
	eng, d := newTestDisk(t)
	served := 0
	r1 := read(0, 4096)
	r1.OnComplete = func(*blockio.Request) { served++ }
	r2 := read(500<<30, 4096)
	r2.OnComplete = func(*blockio.Request) { served++ }
	r3 := read(900<<30, 4096)
	r3.OnComplete = func(*blockio.Request) { served++ }
	d.Submit(r1)
	d.Submit(r2)
	d.Submit(r3)
	r2.Cancel()
	eng.Run()
	if served != 2 {
		t.Fatalf("served %d, want 2 (one canceled)", served)
	}
	if d.InFlight() != 0 {
		t.Fatalf("inflight %d after drain", d.InFlight())
	}
}

func TestInFlightAccounting(t *testing.T) {
	eng, d := newTestDisk(t)
	r := read(0, 4096)
	r.OnComplete = func(*blockio.Request) {}
	d.Submit(r)
	if d.InFlight() != 1 {
		t.Fatalf("inflight = %d, want 1", d.InFlight())
	}
	eng.Run()
	if d.InFlight() != 0 {
		t.Fatalf("inflight = %d after completion", d.InFlight())
	}
}

func TestSlotFreeHookFires(t *testing.T) {
	eng, d := newTestDisk(t)
	fired := 0
	d.SetSlotFreeHook(func() { fired++ })
	r := read(0, 4096)
	r.OnComplete = func(*blockio.Request) {}
	d.Submit(r)
	eng.Run()
	if fired == 0 {
		t.Fatal("slot-free hook never fired")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, d := newTestDisk(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range IO")
		}
	}()
	d.Submit(read(d.Config().CapacityBytes, 4096))
}

func TestLargerIOTakesLonger(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ServiceNoiseStd = 0
	d := New(eng, cfg, sim.NewRNG(1, "size"))
	lat := func(size int) time.Duration {
		r := read(500<<30, size)
		r.SubmitTime = eng.Now()
		var l time.Duration
		r.OnComplete = func(r *blockio.Request) { l = r.Latency() }
		d.Submit(r)
		eng.Run()
		return l
	}
	small := lat(4096)
	large := lat(1 << 20)
	if large <= small {
		t.Fatalf("1MB read (%v) not slower than 4KB (%v)", large, small)
	}
	// The paper's noise injector: a 1MB read adds ~12ms of busy time.
	if large < 5*time.Millisecond {
		t.Fatalf("1MB read %v implausibly fast", large)
	}
}

func TestProfileAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	prof := ProfileTwin(cfg, 42, DefaultProfilerOptions())
	// Compare prediction vs the analytic noise-free service time across
	// distances. Errors should be well under a millisecond on average.
	eng := sim.NewEngine()
	truth := New(eng, Config{
		CapacityBytes: cfg.CapacityBytes, SeekBase: cfg.SeekBase,
		SeekMax: cfg.SeekMax, SeqThreshold: cfg.SeqThreshold,
		SeqCost: cfg.SeqCost, TransferPerKB: cfg.TransferPerKB,
		QueueDepth: 1,
	}, sim.NewRNG(1, "truth"))
	var sumErr time.Duration
	n := 0
	for _, distGB := range []int64{1, 10, 50, 100, 250, 500, 900} {
		dist := distGB << 30
		want := truth.ServiceTime(0, read(dist, 4096))
		got := prof.ServiceTime(dist, 4096)
		err := got - want
		if err < 0 {
			err = -err
		}
		sumErr += err
		n++
	}
	avg := sumErr / time.Duration(n)
	if avg > time.Millisecond {
		t.Fatalf("profile mean abs error %v > 1ms", avg)
	}
}

func TestProfileSeekMonotoneOverall(t *testing.T) {
	prof := ProfileTwin(DefaultConfig(), 7, ProfilerOptions{Buckets: 16, Tries: 8, ProbeSize: 4096})
	first := prof.SeekCost(prof.BucketBytes)
	last := prof.SeekCost(prof.BucketBytes * int64(len(prof.SeekBuckets)-1))
	if last <= first {
		t.Fatalf("seek profile not increasing: near=%v far=%v", first, last)
	}
}

func TestProfileServiceTimeScalesWithSize(t *testing.T) {
	prof := ProfileTwin(DefaultConfig(), 7, ProfilerOptions{Buckets: 8, Tries: 4, ProbeSize: 4096})
	if prof.ServiceTime(1<<30, 1<<20) <= prof.ServiceTime(1<<30, 4096) {
		t.Fatal("profile ignores IO size")
	}
}

func TestPropertySeekCostSymmetricNonNegative(t *testing.T) {
	prof := ProfileTwin(DefaultConfig(), 9, ProfilerOptions{Buckets: 8, Tries: 3, ProbeSize: 4096})
	f := func(raw int64) bool {
		d := raw % (1000 << 30)
		return prof.SeekCost(d) >= 0 && prof.SeekCost(d) == prof.SeekCost(-d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		eng := sim.NewEngine()
		d := New(eng, DefaultConfig(), sim.NewRNG(5, "replay"))
		rng := sim.NewRNG(6, "offsets")
		var lats []time.Duration
		for i := 0; i < 50; i++ {
			r := read(rng.Int63n(900<<30), 4096)
			r.SubmitTime = eng.Now()
			r.OnComplete = func(r *blockio.Request) { lats = append(lats, r.Latency()) }
			d.Submit(r)
		}
		eng.Run()
		return lats
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPropertyAgingBoundsStarvation(t *testing.T) {
	// Under a continuous stream of near-head arrivals, no queued IO may
	// starve beyond roughly AgeLimit + one service time — the command
	// aging guarantee the predictors rely on.
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		d := New(eng, cfg, sim.NewRNG(seed, "aging"))
		rng := sim.NewRNG(seed, "stream")
		// Far victim enters first (after a warm-up IO).
		warm := read(100<<30, 4096)
		warm.OnComplete = func(*blockio.Request) {}
		d.Submit(warm)
		victim := read(900<<30, 4096)
		var waited time.Duration
		victim.OnComplete = func(r *blockio.Request) { waited = r.Latency() }
		victim.SubmitTime = eng.Now()
		d.Submit(victim)
		// Continuous near-head stream for 2 seconds.
		tick := eng.NewTicker(3*time.Millisecond, func() {
			if d.QueueLen() > 8 {
				return
			}
			r := read(rng.Int63n(200<<30), 4096)
			r.OnComplete = func(*blockio.Request) {}
			d.Submit(r)
		})
		eng.RunUntil(sim.Time(2 * sim.Second))
		tick.Stop()
		eng.Run()
		// Bound: age limit + a couple of worst-case services.
		return waited > 0 && waited < cfg.AgeLimit+40*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
