// Package fixture exercises the mapiter checker: exactly one of the two
// ranges below must be flagged.
package fixture

// Flagged ranges over a map with no marker.
func Flagged(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Suppressed carries the marker and must not be flagged.
func Suppressed(m map[int]int) []int {
	var keys []int
	for k := range m { //mapiter:sorted
		keys = append(keys, k)
	}
	return keys
}
