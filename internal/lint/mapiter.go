// Package lint holds vet-style checks for determinism hazards the standard
// toolchain does not catch. The simulation's outputs must be byte-identical
// across runs and worker counts, and the classic way to lose that property
// in Go is ranging over a map on a simulation-visible path: iteration order
// is randomized per run, so any map-ordered sequence of IOs, event
// schedules, or slot assignments diverges silently.
//
// CheckMapIter flags every `for ... range m` where m is map-typed. Ranges
// whose order provably cannot reach simulation state are suppressed by a
// `//mapiter:sorted` comment on the range line — the convention is that the
// loop only collects keys that are sorted (or order-insensitively reduced)
// before use, and the comment is the reviewer's assertion of that.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one unsuppressed map iteration.
type Finding struct {
	Pos  string // file:line
	Text string // one-line description
}

// CheckMapIter type-checks the package in each directory and returns a
// finding for every range over a map-typed expression not marked
// //mapiter:sorted. Test files are skipped: their iteration order cannot
// reach simulation outputs.
func CheckMapIter(dirs []string) ([]Finding, error) {
	var out []Finding
	for _, dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

func checkDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, name := range sortedKeys(pkgs) {
		pkg := pkgs[name]
		files := make([]*ast.File, 0, len(pkg.Files))
		for _, fname := range sortedKeys(pkg.Files) {
			files = append(files, pkg.Files[fname])
		}
		// Type-check from source so map-typed expressions are recognized
		// through aliases, struct fields, and function results. Type errors
		// are tolerated: a partially-typed package still yields the Types
		// entries the range check needs.
		conf := types.Config{
			Importer:         importer.ForCompiler(fset, "source", nil),
			Error:            func(error) {},
			IgnoreFuncBodies: false,
		}
		info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
		_, _ = conf.Check(dir, fset, files, info)

		for _, f := range files {
			suppressed := suppressedLines(fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := fset.Position(rs.Pos())
				if suppressed[pos.Line] {
					return true
				}
				findings = append(findings, Finding{
					Pos: fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line),
					Text: fmt.Sprintf("range over map %s: iteration order is nondeterministic; "+
						"sort the keys or mark //mapiter:sorted", types.ExprString(rs.X)),
				})
				return true
			})
		}
	}
	return findings, nil
}

// suppressedLines returns the lines carrying a //mapiter:sorted marker.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "mapiter:sorted") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //mapiter:sorted
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
