package lint

import "testing"

// TestNoMapIterationOnSimulationPaths is the determinism sweep: the
// packages whose control flow reaches simulation state must not range over
// maps without an explicit //mapiter:sorted justification. A failure here
// means a code path whose behavior can differ between two runs of the same
// seed.
func TestNoMapIterationOnSimulationPaths(t *testing.T) {
	findings, err := CheckMapIter([]string{
		"../core",
		"../iosched",
		"../cluster",
		"../kv",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s", f.Pos, f.Text)
	}
}

// TestCheckerSeesThisPackage guards the checker itself against silently
// going blind (e.g. a parse-filter change skipping every file): it must
// still detect a plain map range in a fixture.
func TestCheckerSeesThisPackage(t *testing.T) {
	findings, err := CheckMapIter([]string{"testdata/fixture"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("fixture findings = %d, want exactly 1: %v", len(findings), findings)
	}
}
