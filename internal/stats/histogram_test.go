package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 1.1)
	for i := 1; i <= 1000; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Max() != time.Second {
		t.Fatalf("Max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Fatalf("Mean = %v, want ≈500ms", mean)
	}
}

func TestHistogramPercentileRelativeError(t *testing.T) {
	h := NewHistogram(time.Microsecond, 10*time.Second, 1.1)
	for i := 1; i <= 10000; i++ {
		h.Add(time.Duration(i) * 100 * time.Microsecond) // 0.1ms .. 1s
	}
	for _, p := range []float64{50, 90, 95, 99} {
		exact := time.Duration(p/100*10000) * 100 * time.Microsecond
		got := h.Percentile(p)
		rel := math.Abs(float64(got-exact)) / float64(exact)
		if rel > 0.12 {
			t.Fatalf("p%v = %v vs exact %v (rel err %.2f)", p, got, exact, rel)
		}
	}
}

func TestHistogramUnderflowAndEmpty(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second, 1.5)
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should be zero")
	}
	h.Add(time.Microsecond) // below min
	if h.N() != 1 {
		t.Fatal("underflow not counted")
	}
	if h.Percentile(50) != time.Millisecond {
		t.Fatalf("underflow percentile = %v, want clamped to min", h.Percentile(50))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(time.Microsecond, time.Second, 1.2)
	b := NewHistogram(time.Microsecond, time.Second, 1.2)
	for i := 1; i <= 500; i++ {
		a.Add(time.Duration(i) * time.Millisecond)
		b.Add(time.Duration(i+500) * time.Millisecond)
	}
	a.Merge(b)
	if a.N() != 1000 {
		t.Fatalf("merged N = %d", a.N())
	}
	med := a.Percentile(50)
	if med < 400*time.Millisecond || med > 600*time.Millisecond {
		t.Fatalf("merged median %v", med)
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	a := NewHistogram(time.Microsecond, time.Second, 1.2)
	b := NewHistogram(time.Microsecond, time.Second, 1.3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramInvalidConfigPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, time.Second, 1.1) },
		func() { NewHistogram(time.Second, time.Second, 1.1) },
		func() { NewHistogram(time.Microsecond, time.Second, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPropertyHistogramQuantilesMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(time.Microsecond, time.Minute, 1.15)
		for _, r := range raw {
			h.Add(time.Duration(r%60000) * time.Millisecond / 60)
		}
		prev := time.Duration(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99} {
			q := h.Percentile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlotCDFs(t *testing.T) {
	a := NewSample(0)
	b := NewSample(0)
	for i := 1; i <= 100; i++ {
		a.Add(time.Duration(i) * time.Millisecond)
		b.Add(time.Duration(i) * 2 * time.Millisecond)
	}
	out := PlotCDFs([]struct {
		Name   string
		Sample *Sample
	}{{"fast", a}, {"slow", b}}, 60, 12)
	for _, want := range []string{"*", "+", "fast", "slow", "log scale", "1.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestPlotCDFsEmpty(t *testing.T) {
	out := PlotCDFs(nil, 60, 12)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
}
