// Package stats provides the measurement machinery behind every table and
// figure in the MittOS reproduction: streaming summaries, exact-percentile
// latency samples, CDFs, and the paper's "% latency reduction" computation
// ((T_other − T_mitt) / T_other, §7.2 footnote 2).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates count/mean/variance/min/max using Welford's method.
// It is safe for very long runs (no catastrophic cancellation).
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration observation in nanoseconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(float64(d)) }

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean (0 for an empty summary).
func (s *Summary) Mean() float64 {
	return s.mean
}

// MeanDuration returns the mean as a duration.
func (s *Summary) MeanDuration() time.Duration { return time.Duration(s.mean) }

// Var returns the sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Merge folds other into s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	mean := s.mean + d*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Sample collects latency observations and answers exact percentile queries.
// The evaluation's request counts (10⁴–10⁶ per run) fit comfortably in
// memory, so exactness is preferred over sketches: the paper reports
// specific percentiles (p75/p90/p95/p99) and small errors there would
// distort the reduction tables.
type Sample struct {
	vals   []time.Duration
	sorted bool
	sum    Summary
}

// NewSample returns a sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{vals: make([]time.Duration, 0, capacity)}
}

// NewSampleBuf returns a sample recording into buf (truncated to length
// zero). Used with BufPool so short-lived samples — per-client latency
// buffers that are merged and discarded at the end of every experiment leg —
// reuse one arena-owned allocation instead of growing a fresh one per leg.
func NewSampleBuf(buf []time.Duration) *Sample {
	return &Sample{vals: buf[:0]}
}

// TakeBuf detaches and returns the sample's backing buffer, leaving the
// sample empty. The caller owns the buffer (typically returning it to a
// BufPool); the sample remains usable but starts from scratch.
func (s *Sample) TakeBuf() []time.Duration {
	buf := s.vals
	s.vals = nil
	s.sorted = false
	s.sum = Summary{}
	return buf
}

// BufPool recycles sample buffers across experiment legs. Get prefers the
// largest parked buffer so a reused buffer almost never regrows; capacity
// differences are invisible to Sample semantics (only vals[:len] is read),
// which keeps arena-reuse runs byte-identical to fresh-heap runs.
type BufPool struct {
	bufs [][]time.Duration
}

// Get returns a zero-length buffer with at least the given capacity,
// reusing a parked buffer when one is large enough.
func (p *BufPool) Get(capacity int) []time.Duration {
	best := -1
	for i, b := range p.bufs {
		if cap(b) >= capacity && (best < 0 || cap(b) > cap(p.bufs[best])) {
			best = i
		}
	}
	if best < 0 {
		return make([]time.Duration, 0, capacity)
	}
	buf := p.bufs[best]
	last := len(p.bufs) - 1
	p.bufs[best] = p.bufs[last]
	p.bufs[last] = nil
	p.bufs = p.bufs[:last]
	return buf[:0]
}

// Put parks a buffer for reuse. Nil or zero-capacity buffers are dropped.
func (p *BufPool) Put(buf []time.Duration) {
	if cap(buf) == 0 {
		return
	}
	p.bufs = append(p.bufs, buf[:0])
}

// Add records one latency.
func (s *Sample) Add(d time.Duration) {
	s.vals = append(s.vals, d)
	s.sorted = false
	s.sum.AddDuration(d)
}

// AddCO records one closed-loop observation with HdrHistogram-style
// coordinated-omission correction: alongside the raw latency, synthetic
// samples lat−expected, lat−2·expected, … (while ≥ expected) stand in for
// the requests the stalled loop never issued. expected is the loop's
// intended inter-arrival interval; non-positive values disable correction.
func (s *Sample) AddCO(lat, expected time.Duration) {
	s.Add(lat)
	if expected <= 0 {
		return
	}
	for v := lat - expected; v >= expected; v -= expected {
		s.Add(v)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the mean latency.
func (s *Sample) Mean() time.Duration { return s.sum.MeanDuration() }

// Max returns the maximum latency.
func (s *Sample) Max() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	return time.Duration(s.sum.Max())
}

// Min returns the minimum latency.
func (s *Sample) Min() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	return time.Duration(s.sum.Min())
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Slice(s.vals, func(i, j int) bool { return s.vals[i] < s.vals[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using the
// nearest-rank method on the sorted sample. An empty sample returns 0.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// FractionAbove returns the fraction of observations strictly above d.
func (s *Sample) FractionAbove(d time.Duration) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] > d })
	return float64(len(s.vals)-i) / float64(len(s.vals))
}

// CDF returns the empirical CDF as (latency, cumulative-probability) points,
// downsampled to at most maxPoints for plotting. With maxPoints ≤ 0 every
// distinct observation becomes a point.
func (s *Sample) CDF(maxPoints int) []CDFPoint {
	n := len(s.vals)
	if n == 0 {
		return nil
	}
	s.sort()
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		// Always include the max as the last point.
		idx := int(float64(i+1)/float64(maxPoints)*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		pts = append(pts, CDFPoint{
			Latency: s.vals[idx],
			P:       float64(idx+1) / float64(n),
		})
	}
	return pts
}

// Merge folds another sample's observations into s.
func (s *Sample) Merge(other *Sample) {
	s.vals = append(s.vals, other.vals...)
	s.sorted = false
	s.sum.Merge(&other.sum)
}

// Values returns a copy of the raw observations (sorted).
func (s *Sample) Values() []time.Duration {
	s.sort()
	out := make([]time.Duration, len(s.vals))
	copy(out, s.vals)
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Latency time.Duration
	P       float64
}

// Reduction computes the paper's latency-reduction metric,
// (other − mitt) / other, as a percentage. A non-positive other yields 0.
func Reduction(mitt, other time.Duration) float64 {
	if other <= 0 {
		return 0
	}
	return 100 * float64(other-mitt) / float64(other)
}

// Percentiles is the standard set reported in the paper's bar charts.
var Percentiles = []float64{75, 90, 95, 99}

// ReductionRow reports the %-reduction of `mitt` vs `other` at Avg and the
// standard percentiles, in the order Avg, p75, p90, p95, p99 — the x-axis of
// Figures 5b, 6d, 7b, 8b.
func ReductionRow(mitt, other *Sample) []float64 {
	row := []float64{Reduction(mitt.Mean(), other.Mean())}
	for _, p := range Percentiles {
		row = append(row, Reduction(mitt.Percentile(p), other.Percentile(p)))
	}
	return row
}

// Table renders rows of labelled values as an aligned ASCII table; every
// experiment uses it to print paper-style output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FormatDuration renders a duration with millisecond-scale readability, the
// unit the paper's figures use.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return d.String()
	}
}

// FormatPct renders a percentage with one decimal.
func FormatPct(p float64) string { return fmt.Sprintf("%.1f%%", p) }
