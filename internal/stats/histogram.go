package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram is a streaming log-scale latency histogram: O(1) memory over
// arbitrarily long runs, at the cost of bounded relative error on quantile
// queries. Experiments that keep every sample use Sample; monitors that run
// for virtual hours (Figure 3's probes) can use this instead.
type Histogram struct {
	// buckets[i] counts observations in [min*growth^i, min*growth^(i+1)).
	buckets []uint64
	min     time.Duration
	growth  float64
	under   uint64 // below min
	count   uint64
	sum     time.Duration
	max     time.Duration
}

// NewHistogram builds a histogram covering [min, max] with the given
// per-bucket growth factor (e.g. 1.1 → ≤10% relative quantile error).
func NewHistogram(min, max time.Duration, growth float64) *Histogram {
	if min <= 0 || max <= min || growth <= 1 {
		panic("stats: NewHistogram requires 0 < min < max and growth > 1")
	}
	n := int(math.Ceil(math.Log(float64(max)/float64(min))/math.Log(growth))) + 1
	return &Histogram{buckets: make([]uint64, n), min: min, growth: growth}
}

// Add records one observation.
func (h *Histogram) Add(d time.Duration) {
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if d < h.min {
		h.under++
		return
	}
	i := int(math.Log(float64(d)/float64(h.min)) / math.Log(h.growth))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// N returns the observation count.
func (h *Histogram) N() uint64 { return h.count }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Percentile returns an approximation of the p-th percentile: the upper
// edge of the bucket containing that rank.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank <= h.under {
		return h.min
	}
	seen := h.under
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			edge := float64(h.min) * math.Pow(h.growth, float64(i+1))
			if d := time.Duration(edge); d < h.max {
				return d
			}
			return h.max
		}
	}
	return h.max
}

// Merge folds another histogram (same shape) into h.
func (h *Histogram) Merge(o *Histogram) {
	if len(o.buckets) != len(h.buckets) || o.min != h.min || o.growth != h.growth {
		panic("stats: merging histograms of different shapes")
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.under += o.under
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// PlotCDFs renders labelled samples as an ASCII CDF chart: x = latency
// (log scale), y = cumulative probability. Each series gets a marker; the
// paper's latency-CDF figures map directly onto it.
func PlotCDFs(series []struct {
	Name   string
	Sample *Sample
}, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	var lo, hi time.Duration
	first := true
	for _, s := range series {
		if s.Sample.N() == 0 {
			continue
		}
		mn, mx := s.Sample.Min(), s.Sample.Max()
		if first || mn < lo {
			lo = mn
		}
		if first || mx > hi {
			hi = mx
		}
		first = false
	}
	if first || lo <= 0 || hi <= lo {
		return "(no data)\n"
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	logLo, logHi := math.Log(float64(lo)), math.Log(float64(hi))
	xOf := func(d time.Duration) int {
		frac := (math.Log(float64(d)) - logLo) / (logHi - logLo)
		x := int(frac * float64(width-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		return x
	}
	var legend strings.Builder
	for si, s := range series {
		if s.Sample.N() == 0 {
			continue
		}
		m := markers[si%len(markers)]
		fmt.Fprintf(&legend, "  %c %s", m, s.Name)
		for _, pt := range s.Sample.CDF(width * 2) {
			x := xOf(pt.Latency)
			y := height - 1 - int(pt.P*float64(height-1))
			if y < 0 {
				y = 0
			}
			if grid[y][x] == ' ' {
				grid[y][x] = m
			}
		}
	}
	var b strings.Builder
	for y, row := range grid {
		p := 1 - float64(y)/float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", p, string(row))
	}
	b.WriteString("      ")
	b.WriteString(strings.Repeat("-", width+2))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "      %-*s%s (log scale)\n", width-8, FormatDuration(lo), FormatDuration(hi))
	b.WriteString(legend.String())
	b.WriteByte('\n')
	return b.String()
}
