package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Var()-2.5) > 1e-9 {
		t.Fatalf("Var = %v, want 2.5", s.Var())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("Stddev = %v", s.Stddev())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all-zero")
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, whole Summary
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	for i, x := range xs {
		whole.Add(x)
		if i < 5 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Var()-whole.Var()) > 1e-9 {
		t.Fatalf("merged var %v, want %v", a.Var(), whole.Var())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var a, b Summary
	b.Add(7)
	a.Merge(&b) // empty ← nonempty
	if a.N() != 1 || a.Mean() != 7 {
		t.Fatal("merge into empty failed")
	}
	var c Summary
	a.Merge(&c) // nonempty ← empty
	if a.N() != 1 {
		t.Fatal("merge of empty changed state")
	}
}

func TestSamplePercentileNearestRank(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Fatalf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Percentile(95) != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty sample should return zeros")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
	if s.FractionAbove(time.Second) != 0 {
		t.Fatal("empty FractionAbove should be 0")
	}
}

func TestSampleInterleavedAddQuery(t *testing.T) {
	s := NewSample(0)
	s.Add(10 * time.Millisecond)
	if s.Percentile(100) != 10*time.Millisecond {
		t.Fatal("single-element percentile")
	}
	s.Add(5 * time.Millisecond) // add after a query must re-sort
	if s.Percentile(0) != 5*time.Millisecond {
		t.Fatal("sample did not re-sort after Add")
	}
}

func TestFractionAbove(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.FractionAbove(7 * time.Millisecond); got != 0.3 {
		t.Fatalf("FractionAbove(7ms) = %v, want 0.3", got)
	}
	if got := s.FractionAbove(0); got != 1.0 {
		t.Fatalf("FractionAbove(0) = %v, want 1", got)
	}
	if got := s.FractionAbove(time.Second); got != 0 {
		t.Fatalf("FractionAbove(1s) = %v, want 0", got)
	}
}

func TestCDFShape(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	pts := s.CDF(100)
	if len(pts) != 100 {
		t.Fatalf("CDF points = %d", len(pts))
	}
	if pts[len(pts)-1].P != 1.0 {
		t.Fatalf("last CDF point P = %v, want 1", pts[len(pts)-1].P)
	}
	if pts[len(pts)-1].Latency != time.Millisecond {
		t.Fatalf("last CDF latency = %v, want max", pts[len(pts)-1].Latency)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P || pts[i].Latency < pts[i-1].Latency {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestCDFFull(t *testing.T) {
	s := NewSample(0)
	s.Add(time.Millisecond)
	s.Add(2 * time.Millisecond)
	pts := s.CDF(0)
	if len(pts) != 2 {
		t.Fatalf("full CDF points = %d", len(pts))
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(77*time.Millisecond, 100*time.Millisecond); math.Abs(got-23) > 1e-9 {
		t.Fatalf("Reduction = %v, want 23", got)
	}
	if Reduction(time.Millisecond, 0) != 0 {
		t.Fatal("Reduction with zero baseline should be 0")
	}
	if got := Reduction(120*time.Millisecond, 100*time.Millisecond); got >= 0 {
		t.Fatalf("worse latency should be negative reduction, got %v", got)
	}
}

func TestReductionRow(t *testing.T) {
	mitt, other := NewSample(0), NewSample(0)
	for i := 1; i <= 100; i++ {
		mitt.Add(time.Duration(i) * time.Millisecond / 2)
		other.Add(time.Duration(i) * time.Millisecond)
	}
	row := ReductionRow(mitt, other)
	if len(row) != 1+len(Percentiles) {
		t.Fatalf("row len = %d", len(row))
	}
	for _, v := range row {
		if math.Abs(v-50) > 1e-9 {
			t.Fatalf("uniform halving should be 50%% everywhere, got %v", row)
		}
	}
}

func TestSampleValuesSortedCopy(t *testing.T) {
	s := NewSample(0)
	s.Add(3 * time.Millisecond)
	s.Add(time.Millisecond)
	v := s.Values()
	if !sort.SliceIsSorted(v, func(i, j int) bool { return v[i] < v[j] }) {
		t.Fatal("Values not sorted")
	}
	v[0] = time.Hour // mutation must not affect the sample
	if s.Percentile(0) == time.Hour {
		t.Fatal("Values returned aliased slice")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"strategy", "p95"}}
	tb.AddRow("MittCFQ", "13ms")
	tb.AddRow("Hedged", "17ms")
	out := tb.String()
	if out == "" {
		t.Fatal("empty table output")
	}
	for _, want := range []string{"strategy", "MittCFQ", "Hedged", "---"} {
		if !contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:        "2.00s",
		13 * time.Millisecond:  "13.00ms",
		300 * time.Microsecond: "300.0µs",
		5 * time.Nanosecond:    "5ns",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestPropertyPercentileMatchesSort(t *testing.T) {
	f := func(raw []uint32, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pRaw) / 255 * 100
		s := NewSample(len(raw))
		vals := make([]time.Duration, len(raw))
		for i, r := range raw {
			d := time.Duration(r)
			vals[i] = d
			s.Add(d)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		rank := int(math.Ceil(p / 100 * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		return s.Percentile(p) == vals[rank-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySummaryMeanMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		sum := 0.0
		for _, r := range raw {
			s.Add(float64(r))
			sum += float64(r)
		}
		naive := sum / float64(len(raw))
		return math.Abs(s.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
