// Package oscache models the OS buffer/page cache that sits between
// applications and block devices: page-granular residency, LRU eviction,
// write-back dirty pages, mmap-style address checks, and the memory-space
// contention (ballooning, fadvise eviction) that MittCache detects (§4.4).
package oscache

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// Config holds cache parameters.
type Config struct {
	// PageSize is the cache page granularity (4KB, like the kernel).
	PageSize int
	// CapacityPages is the resident-set limit.
	CapacityPages int
	// HitLatency is the cost of serving a fully-resident read (page-table
	// walk + copy) — §6 measures ~0.02ms for cached 4KB reads.
	HitLatency time.Duration
	// AddrCheckLatency is the cost of the addrcheck() system call: "only
	// adds a negligible overhead (82ns per call)" (§4.4).
	AddrCheckLatency time.Duration
	// Slab, when non-nil, is a shared page freelist: an experiment arena
	// passes one slab across legs (reclaiming each finished cache's pages
	// with Reclaim) so the next leg's resident set reuses the same page
	// structs. Nil gets a private slab.
	Slab *PageSlab
	// Reqs, when non-nil, is the request pool background sub-IOs draw from,
	// shared for the same reason. Nil gets a private pool.
	Reqs *blockio.Pool
}

// DefaultConfig returns a cache shaped like the paper's: 4KB pages and a
// ~20µs hit path.
func DefaultConfig() Config {
	return Config{
		PageSize:         4096,
		CapacityPages:    1 << 20, // 4GB, fits the paper's 3.5GB dataset
		HitLatency:       20 * time.Microsecond,
		AddrCheckLatency: 82 * time.Nanosecond,
	}
}

// page is one resident cache page, doubly linked into the LRU list
// directly (no container/list element allocation) and recycled through the
// cache's freelist on eviction.
type page struct {
	id         int64
	dirty      bool
	prev, next *page
}

// Cache is the page cache. Reads that miss go to the backing device; writes
// are absorbed (write-back) and flushed on eviction.
type Cache struct {
	eng     *sim.Engine
	cfg     Config
	backing blockio.Device

	pages map[int64]*page
	// Intrusive LRU: head = most recently used, tail = eviction victim.
	lruHead, lruTail *page
	resident         int
	slab             *PageSlab // page freelist, possibly shared across legs

	// everResident distinguishes first-time accesses (cold misses) from
	// re-evicted pages: MittCache only signals EBUSY for the latter
	// ("should return EBUSY to signal memory space contention ... but not
	// for first-time accesses", §4.4).
	everResident map[int64]bool

	ids      blockio.IDGen
	inflight int

	// Per-IO freelists: background sub-requests and the hit/miss
	// completion contexts that replace per-IO closures.
	reqs    *blockio.Pool
	opFree  []*cacheOp
	victims []*page // EvictFraction scratch

	hits, misses, evictions uint64

	// degrade scales the hit path (memory-bus contention from a noisy
	// co-tenant); 1.0 = healthy.
	degrade float64

	rec *metrics.Recorder
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (c *Cache) SetRecorder(rec *metrics.Recorder) { c.rec = rec }

// New builds a cache over the backing device.
func New(eng *sim.Engine, cfg Config, backing blockio.Device) *Cache {
	if cfg.PageSize <= 0 || cfg.CapacityPages <= 0 {
		panic("oscache: invalid config")
	}
	slab := cfg.Slab
	if slab == nil {
		slab = &PageSlab{}
	}
	reqs := cfg.Reqs
	if reqs == nil {
		reqs = &blockio.Pool{}
	}
	return &Cache{
		eng:          eng,
		cfg:          cfg,
		backing:      backing,
		slab:         slab,
		reqs:         reqs,
		pages:        make(map[int64]*page),
		everResident: make(map[int64]bool),
		degrade:      1.0,
	}
}

// Reclaim hands every resident page back to the (shared) slab and empties
// the LRU. Call only at experiment-leg teardown: the cache is unusable
// afterwards, it exists so an arena can recycle the page structs of a
// finished leg's resident set into the next leg's cache.
func (c *Cache) Reclaim() {
	for pg := c.lruHead; pg != nil; {
		next := pg.next
		c.slab.put(pg)
		pg = next
	}
	c.lruHead, c.lruTail, c.resident = nil, nil, 0
	c.pages = nil
}

// SetDegradation scales the hit-serving latency by factor (>1 slower);
// 1 restores. Misses are priced by the backing device, which has its own
// degradation hook.
func (c *Cache) SetDegradation(factor float64) {
	if factor <= 0 {
		panic("oscache: degradation factor must be positive")
	}
	c.degrade = factor
}

// Degradation returns the current factor.
func (c *Cache) Degradation() float64 { return c.degrade }

// hitLatency is the possibly-degraded cost of serving from memory.
func (c *Cache) hitLatency() time.Duration {
	if c.degrade != 1.0 {
		return time.Duration(float64(c.cfg.HitLatency) * c.degrade)
	}
	return c.cfg.HitLatency
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns hit/miss/eviction counters.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// ResidentPages returns the current resident-set size in pages.
func (c *Cache) ResidentPages() int { return c.resident }

// InFlight implements blockio.Device.
func (c *Cache) InFlight() int { return c.inflight }

func (c *Cache) span(off int64, size int) (first, last int64) {
	ps := int64(c.cfg.PageSize)
	return off / ps, (off + int64(size) - 1) / ps
}

// Resident reports whether every page of [off, off+size) is resident. This
// is the page-table walk behind both the read() fast path and addrcheck().
func (c *Cache) Resident(off int64, size int) bool {
	first, last := c.span(off, size)
	for p := first; p <= last; p++ {
		if _, ok := c.pages[p]; !ok {
			return false
		}
	}
	return true
}

// WasEverResident reports whether every page of the range has been resident
// at some point — i.e. a miss now means memory-space contention, not a cold
// first access.
func (c *Cache) WasEverResident(off int64, size int) bool {
	first, last := c.span(off, size)
	for p := first; p <= last; p++ {
		if !c.everResident[p] {
			return false
		}
	}
	return true
}

// AddrCheckCost returns the modeled cost of one addrcheck() call.
func (c *Cache) AddrCheckCost() time.Duration { return c.cfg.AddrCheckLatency }

// cacheOp is the pooled per-IO context for the cache's deferred work: the
// hit-latency completion timer and the insert-then-complete callback of a
// read-through or prefetch sub-IO. Callback fields are bound once at
// allocation and reused across recycles.
type cacheOp struct {
	c           *Cache
	req         *blockio.Request         // the client request to complete (nil for prefetch)
	first, last int64                    // pages to insert on sub-IO completion
	fireFn      func()                   // pre-bound op.fire (hit/write timer)
	fillFn      func(r *blockio.Request) // pre-bound op.fill (sub-IO completion)
}

func (c *Cache) getOp(req *blockio.Request) *cacheOp {
	var op *cacheOp
	if n := len(c.opFree); n > 0 {
		op = c.opFree[n-1]
		c.opFree = c.opFree[:n-1]
	} else {
		op = &cacheOp{c: c}
		op.fireFn = op.fire
		op.fillFn = op.fill
	}
	op.req = req
	return op
}

func (c *Cache) freeOp(op *cacheOp) {
	op.req = nil
	c.opFree = append(c.opFree, op)
}

// fire completes a hit/write after the hit latency elapsed.
func (op *cacheOp) fire() {
	c, req := op.c, op.req
	c.freeOp(op)
	c.complete(req)
}

// fill runs when a read-through or prefetch sub-IO finishes: populate the
// fetched pages and, for a read-through, complete the waiting client.
func (op *cacheOp) fill(*blockio.Request) {
	c, req := op.c, op.req
	first, last := op.first, op.last
	c.freeOp(op)
	for p := first; p <= last; p++ {
		c.insert(p, false)
	}
	if req != nil {
		c.complete(req)
	}
}

// Submit implements blockio.Device: reads serve from the cache when fully
// resident, otherwise read through to the backing device and populate.
// Writes are absorbed write-back.
func (c *Cache) Submit(req *blockio.Request) {
	if req.Size <= 0 {
		panic(fmt.Sprintf("oscache: empty IO: %v", req))
	}
	c.inflight++
	req.DispatchTime = c.eng.Now()
	c.rec.DevEnter(metrics.RCache, req)
	switch req.Op {
	case blockio.Write:
		first, last := c.span(req.Offset, req.Size)
		for p := first; p <= last; p++ {
			c.insert(p, true)
		}
		c.eng.After(c.hitLatency(), c.getOp(req).fireFn)
	case blockio.Read:
		if c.Resident(req.Offset, req.Size) {
			c.serveHit(req)
			return
		}
		c.misses++
		c.rec.Incr(metrics.RCache, metrics.CCacheMiss)
		c.readThrough(req)
	default:
		panic(fmt.Sprintf("oscache: unsupported op %v", req.Op))
	}
}

// serveHit completes a fully-resident read at memory speed.
func (c *Cache) serveHit(req *blockio.Request) {
	c.hits++
	c.rec.Incr(metrics.RCache, metrics.CCacheHit)
	c.touchRange(req.Offset, req.Size)
	c.eng.After(c.hitLatency(), c.getOp(req).fireFn)
}

// SubmitResident serves a read the caller has already verified fully
// resident (MittCache's read()-fast-path admission does the page-table walk
// itself, §4.4). Observable behavior is identical to Submit on a resident
// read; only the duplicate residency walk is skipped.
func (c *Cache) SubmitResident(req *blockio.Request) {
	if req.Size <= 0 || req.Op != blockio.Read {
		panic(fmt.Sprintf("oscache: SubmitResident on non-read: %v", req))
	}
	c.inflight++
	req.DispatchTime = c.eng.Now()
	c.rec.DevEnter(metrics.RCache, req)
	c.serveHit(req)
}

// Prefetch populates the pages of [off,size) in the background with no
// waiting client — the "MittCache should continue swapping in the data in
// the background, even after EBUSY is already returned" rule (§4.4).
func (c *Cache) Prefetch(off int64, size int, class blockio.Class, prio int, proc int) {
	if c.Resident(off, size) {
		return
	}
	c.rec.Incr(metrics.RCache, metrics.CPrefetch)
	op := c.getOp(nil)
	op.first, op.last = c.span(off, size)
	sub := c.reqs.Get()
	sub.ID = c.ids.Next()
	sub.Op = blockio.Read
	sub.Offset, sub.Size = off, size
	sub.Proc, sub.Class, sub.Priority = proc, class, prio
	sub.SubmitTime = c.eng.Now()
	sub.OnComplete = op.fillFn
	sub.AutoFree = true
	c.backing.Submit(sub)
}

// readThrough fetches the full request range from the backing device
// (kernel readahead reads whole pages), inserts the pages, then completes
// the client request.
func (c *Cache) readThrough(req *blockio.Request) {
	ps := int64(c.cfg.PageSize)
	first, last := c.span(req.Offset, req.Size)
	op := c.getOp(req)
	op.first, op.last = first, last
	sub := c.reqs.Get()
	sub.ID = c.ids.Next()
	sub.Op = blockio.Read
	sub.Offset, sub.Size = first*ps, int((last-first+1)*ps)
	sub.Proc, sub.Class, sub.Priority = req.Proc, req.Class, req.Priority
	sub.Deadline = req.Deadline
	sub.SubmitTime = c.eng.Now()
	sub.OnComplete = op.fillFn
	sub.AutoFree = true
	c.backing.Submit(sub)
}

func (c *Cache) complete(req *blockio.Request) {
	req.CompleteTime = c.eng.Now()
	c.inflight--
	c.rec.DevDone(metrics.RCache, req)
	if req.OnComplete != nil {
		req.OnComplete(req)
	}
}

// Intrusive-LRU plumbing.

// pageSlabSize batches page allocations: experiment-scale workloads touch
// hundreds of thousands of distinct pages, and one heap object per page
// dominated the allocation profile. Pages recycle through the freelist
// forever, so slabs only grow the footprint to the peak resident set.
const pageSlabSize = 1024

// PageSlab is a page freelist with slab-batched growth. The zero value is
// ready to use; a shared slab (Config.Slab) lets consecutive experiment legs
// reuse one peak-resident-set worth of page structs instead of growing a
// fresh freelist per cache.
type PageSlab struct {
	free *page
}

func (s *PageSlab) get() *page {
	if s.free == nil {
		slab := make([]page, pageSlabSize)
		for i := range slab {
			slab[i].next = s.free
			s.free = &slab[i]
		}
	}
	pg := s.free
	s.free = pg.next
	pg.next = nil
	return pg
}

func (s *PageSlab) put(pg *page) {
	*pg = page{next: s.free}
	s.free = pg
}

func (c *Cache) getPage() *page  { return c.slab.get() }
func (c *Cache) freePage(pg *page) { c.slab.put(pg) }

func (c *Cache) pushFront(pg *page) {
	pg.prev = nil
	pg.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = pg
	}
	c.lruHead = pg
	if c.lruTail == nil {
		c.lruTail = pg
	}
	c.resident++
}

func (c *Cache) unlink(pg *page) {
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		c.lruHead = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		c.lruTail = pg.prev
	}
	pg.prev, pg.next = nil, nil
	c.resident--
}

func (c *Cache) moveToFront(pg *page) {
	if c.lruHead == pg {
		return
	}
	c.unlink(pg)
	c.pushFront(pg)
}

// insert makes a page resident (touching it if already resident), evicting
// the LRU page when at capacity.
func (c *Cache) insert(id int64, dirty bool) {
	if pg, ok := c.pages[id]; ok {
		pg.dirty = pg.dirty || dirty
		c.moveToFront(pg)
		return
	}
	for c.resident >= c.cfg.CapacityPages {
		c.evictLRU()
	}
	pg := c.getPage()
	pg.id, pg.dirty = id, dirty
	c.pushFront(pg)
	c.pages[id] = pg
	c.everResident[id] = true
}

func (c *Cache) touchRange(off int64, size int) {
	first, last := c.span(off, size)
	for p := first; p <= last; p++ {
		if pg, ok := c.pages[p]; ok {
			c.moveToFront(pg)
		}
	}
}

func (c *Cache) evictLRU() {
	if c.lruTail == nil {
		return
	}
	c.evict(c.lruTail)
}

func (c *Cache) evict(pg *page) {
	c.unlink(pg)
	delete(c.pages, pg.id)
	c.evictions++
	c.rec.Incr(metrics.RCache, metrics.CEviction)
	if pg.dirty {
		// Write-back on eviction, fire-and-forget at idle priority.
		wb := c.reqs.Get()
		wb.ID = c.ids.Next()
		wb.Op = blockio.Write
		wb.Offset, wb.Size = pg.id*int64(c.cfg.PageSize), c.cfg.PageSize
		wb.Class, wb.Priority = blockio.ClassIdle, 7
		wb.SubmitTime = c.eng.Now()
		wb.AutoFree = true
		c.backing.Submit(wb)
	}
	c.freePage(pg)
}

// EvictRange drops the pages covering [off, off+size), the moral equivalent
// of posix_fadvise(DONTNEED) — §7.1 uses it to "throw away about 20% of the
// cached data".
func (c *Cache) EvictRange(off int64, size int) {
	first, last := c.span(off, size)
	for p := first; p <= last; p++ {
		if pg, ok := c.pages[p]; ok {
			c.evict(pg)
		}
	}
}

// EvictFraction drops approximately frac of the resident set, chosen
// pseudo-randomly — the manual swapping methodology of §7.4.
func (c *Cache) EvictFraction(frac float64, rng *sim.RNG) {
	if frac <= 0 {
		return
	}
	c.victims = c.victims[:0]
	// Iterate the LRU list for deterministic order, then sample.
	for pg := c.lruHead; pg != nil; pg = pg.next {
		if rng.Bool(frac) {
			c.victims = append(c.victims, pg)
		}
	}
	for i, pg := range c.victims {
		c.evict(pg)
		c.victims[i] = nil
	}
	c.victims = c.victims[:0]
}

// Balloon shrinks the cache capacity by nPages (another tenant's VM balloon
// inflating, §6's "VM ballooning effect"), evicting immediately if needed.
// Negative nPages grows the capacity back.
func (c *Cache) Balloon(nPages int) {
	c.cfg.CapacityPages -= nPages
	if c.cfg.CapacityPages < 1 {
		c.cfg.CapacityPages = 1
	}
	for c.resident > c.cfg.CapacityPages {
		c.evictLRU()
	}
}

// Warm loads [off, off+size) into the cache instantly (experiment setup:
// "we pre-read 3.5GB file", §6) without consuming virtual time.
func (c *Cache) Warm(off int64, size int) {
	first, last := c.span(off, size)
	for p := first; p <= last; p++ {
		c.insert(p, false)
	}
}
