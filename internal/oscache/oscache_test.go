package oscache

import (
	"testing"
	"testing/quick"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// fakeDevice completes every IO after a fixed delay and records them.
type fakeDevice struct {
	eng      *sim.Engine
	delay    time.Duration
	inflight int
	seen     []*blockio.Request
}

func (f *fakeDevice) Submit(req *blockio.Request) {
	f.inflight++
	f.seen = append(f.seen, req)
	req.DispatchTime = f.eng.Now()
	f.eng.Schedule(f.delay, func() {
		req.CompleteTime = f.eng.Now()
		f.inflight--
		if req.OnComplete != nil {
			req.OnComplete(req)
		}
	})
}

func (f *fakeDevice) InFlight() int { return f.inflight }

func newTestCache(capPages int) (*sim.Engine, *Cache, *fakeDevice) {
	eng := sim.NewEngine()
	dev := &fakeDevice{eng: eng, delay: 8 * time.Millisecond}
	cfg := DefaultConfig()
	cfg.CapacityPages = capPages
	return eng, New(eng, cfg, dev), dev
}

func readReq(eng *sim.Engine, off int64, size int, lat *time.Duration) *blockio.Request {
	r := &blockio.Request{Op: blockio.Read, Offset: off, Size: size, SubmitTime: eng.Now()}
	r.OnComplete = func(r *blockio.Request) { *lat = r.Latency() }
	return r
}

func TestHitIsFast(t *testing.T) {
	eng, c, dev := newTestCache(100)
	c.Warm(0, 4096)
	var lat time.Duration
	c.Submit(readReq(eng, 0, 4096, &lat))
	eng.Run()
	if lat != c.Config().HitLatency {
		t.Fatalf("hit latency %v, want %v", lat, c.Config().HitLatency)
	}
	if len(dev.seen) != 0 {
		t.Fatal("hit should not touch the backing device")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestMissReadsThrough(t *testing.T) {
	eng, c, dev := newTestCache(100)
	var lat time.Duration
	c.Submit(readReq(eng, 0, 4096, &lat))
	eng.Run()
	if lat < dev.delay {
		t.Fatalf("miss latency %v < device delay %v", lat, dev.delay)
	}
	if !c.Resident(0, 4096) {
		t.Fatal("page not resident after read-through")
	}
	// Second read is a hit.
	var lat2 time.Duration
	c.Submit(readReq(eng, 0, 4096, &lat2))
	eng.Run()
	if lat2 != c.Config().HitLatency {
		t.Fatalf("second read latency %v, want hit", lat2)
	}
}

func TestMissReadsWholePages(t *testing.T) {
	eng, c, dev := newTestCache(100)
	var lat time.Duration
	c.Submit(readReq(eng, 100, 8, &lat)) // 8 bytes in the middle of page 0
	eng.Run()
	if len(dev.seen) != 1 {
		t.Fatalf("backing IOs = %d", len(dev.seen))
	}
	if dev.seen[0].Offset != 0 || dev.seen[0].Size != c.Config().PageSize {
		t.Fatalf("backing IO %v; want whole page", dev.seen[0])
	}
}

func TestLRUEviction(t *testing.T) {
	eng, c, _ := newTestCache(2)
	ps := int64(c.Config().PageSize)
	c.Warm(0*ps, 4096)
	c.Warm(1*ps, 4096)
	// Touch page 0 so page 1 is LRU.
	var lat time.Duration
	c.Submit(readReq(eng, 0, 4096, &lat))
	eng.Run()
	c.Warm(2*ps, 4096) // evicts page 1
	if !c.Resident(0, 4096) {
		t.Fatal("recently used page evicted")
	}
	if c.Resident(ps, 4096) {
		t.Fatal("LRU page not evicted")
	}
	if !c.Resident(2*ps, 4096) {
		t.Fatal("new page not resident")
	}
}

func TestWriteAbsorbedAndFlushedOnEviction(t *testing.T) {
	eng, c, dev := newTestCache(1)
	var lat time.Duration
	w := &blockio.Request{Op: blockio.Write, Offset: 0, Size: 4096, SubmitTime: eng.Now()}
	w.OnComplete = func(r *blockio.Request) { lat = r.Latency() }
	c.Submit(w)
	eng.Run()
	if lat != c.Config().HitLatency {
		t.Fatalf("write latency %v, want absorbed", lat)
	}
	if len(dev.seen) != 0 {
		t.Fatal("dirty page flushed too early")
	}
	// Evict it: the dirty page must be written back.
	c.Warm(int64(c.Config().PageSize), 4096)
	eng.Run()
	if len(dev.seen) != 1 || dev.seen[0].Op != blockio.Write {
		t.Fatalf("expected 1 write-back, got %v", dev.seen)
	}
}

func TestEvictRange(t *testing.T) {
	_, c, _ := newTestCache(100)
	ps := int64(c.Config().PageSize)
	c.Warm(0, int(4*ps))
	c.EvictRange(ps, int(2*ps))
	if c.Resident(ps, 4096) || c.Resident(2*ps, 4096) {
		t.Fatal("fadvised pages still resident")
	}
	if !c.Resident(0, 4096) || !c.Resident(3*ps, 4096) {
		t.Fatal("untargeted pages evicted")
	}
}

func TestEvictFraction(t *testing.T) {
	_, c, _ := newTestCache(10000)
	ps := int64(c.Config().PageSize)
	n := 1000
	c.Warm(0, int(int64(n)*ps))
	c.EvictFraction(0.2, sim.NewRNG(1, "evict"))
	got := c.ResidentPages()
	if got < 700 || got > 900 {
		t.Fatalf("after 20%% eviction: %d of %d pages resident", got, n)
	}
}

func TestWasEverResidentDistinguishesColdMisses(t *testing.T) {
	_, c, _ := newTestCache(100)
	ps := int64(c.Config().PageSize)
	if c.WasEverResident(0, 4096) {
		t.Fatal("cold page reported as previously resident")
	}
	c.Warm(0, 4096)
	c.EvictRange(0, 4096)
	if c.Resident(0, 4096) {
		t.Fatal("evicted page still resident")
	}
	if !c.WasEverResident(0, 4096) {
		t.Fatal("re-evicted page not flagged as memory contention")
	}
	_ = ps
}

func TestBalloonShrinksResidentSet(t *testing.T) {
	_, c, _ := newTestCache(100)
	ps := int64(c.Config().PageSize)
	c.Warm(0, int(100*ps))
	if c.ResidentPages() != 100 {
		t.Fatalf("warm pages = %d", c.ResidentPages())
	}
	c.Balloon(60)
	if c.ResidentPages() != 40 {
		t.Fatalf("after balloon: %d pages, want 40", c.ResidentPages())
	}
	c.Balloon(-60)
	c.Warm(0, int(100*ps))
	if c.ResidentPages() != 100 {
		t.Fatalf("after deflate: %d pages, want 100", c.ResidentPages())
	}
}

func TestPrefetchPopulatesInBackground(t *testing.T) {
	eng, c, dev := newTestCache(100)
	c.Prefetch(0, 4096, blockio.ClassBestEffort, 4, 1)
	if c.Resident(0, 4096) {
		t.Fatal("prefetch resident before device completed")
	}
	eng.Run()
	if !c.Resident(0, 4096) {
		t.Fatal("prefetch did not populate")
	}
	if len(dev.seen) != 1 {
		t.Fatalf("backing IOs = %d", len(dev.seen))
	}
	// Prefetching a resident range is a no-op.
	c.Prefetch(0, 4096, blockio.ClassBestEffort, 4, 1)
	eng.Run()
	if len(dev.seen) != 1 {
		t.Fatal("redundant prefetch hit the device")
	}
}

func TestDeadlinePropagatedToBackingIO(t *testing.T) {
	eng, c, dev := newTestCache(100)
	var lat time.Duration
	r := readReq(eng, 0, 4096, &lat)
	r.Deadline = 20 * time.Millisecond
	c.Submit(r)
	eng.Run()
	if dev.seen[0].Deadline != 20*time.Millisecond {
		t.Fatalf("backing deadline = %v; §4.4 requires propagation", dev.seen[0].Deadline)
	}
}

func TestAddrCheckCost(t *testing.T) {
	_, c, _ := newTestCache(10)
	if c.AddrCheckCost() != 82*time.Nanosecond {
		t.Fatalf("addrcheck cost %v", c.AddrCheckCost())
	}
}

func TestInFlightAccounting(t *testing.T) {
	eng, c, _ := newTestCache(10)
	var lat time.Duration
	c.Submit(readReq(eng, 0, 4096, &lat))
	if c.InFlight() != 1 {
		t.Fatalf("InFlight = %d", c.InFlight())
	}
	eng.Run()
	if c.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", c.InFlight())
	}
}

func TestEmptyIOPanics(t *testing.T) {
	_, c, _ := newTestCache(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Submit(&blockio.Request{Op: blockio.Read, Offset: 0, Size: 0})
}

func TestPropertyResidencyNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		eng, c, _ := newTestCache(8)
		ps := int64(c.Config().PageSize)
		for _, op := range ops {
			pageID := int64(op % 64)
			switch op % 3 {
			case 0:
				c.Warm(pageID*ps, 4096)
			case 1:
				w := &blockio.Request{Op: blockio.Write, Offset: pageID * ps, Size: 4096}
				w.OnComplete = func(*blockio.Request) {}
				c.Submit(w)
			case 2:
				c.EvictRange(pageID*ps, 4096)
			}
			if c.ResidentPages() > 8 {
				return false
			}
		}
		eng.Run()
		return c.ResidentPages() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyResidentImpliesWasEverResident(t *testing.T) {
	f := func(pagesRaw []uint8) bool {
		_, c, _ := newTestCache(16)
		ps := int64(c.Config().PageSize)
		for _, p := range pagesRaw {
			c.Warm(int64(p)*ps, 4096)
		}
		for _, p := range pagesRaw {
			off := int64(p) * ps
			if c.Resident(off, 4096) && !c.WasEverResident(off, 4096) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
