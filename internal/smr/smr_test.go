package smr

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

func newTestDrive(t *testing.T) (*sim.Engine, *Drive) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.CacheBytes = 64 << 20 // small cache so cleaning triggers quickly
	return eng, New(eng, cfg, sim.NewRNG(1, t.Name()))
}

func write(d *Drive, off int64, size int) {
	req := &blockio.Request{Op: blockio.Write, Offset: off, Size: size}
	req.OnComplete = func(*blockio.Request) {}
	d.Submit(req)
}

func TestWritesFillCache(t *testing.T) {
	eng, d := newTestDrive(t)
	write(d, 0, 1<<20)
	eng.Run()
	if d.CacheFill() <= 0 {
		t.Fatal("cache fill did not grow")
	}
	if d.Cleaning() {
		t.Fatal("cleaning started below the high watermark")
	}
}

func TestCleaningTriggersAtHighWater(t *testing.T) {
	eng, d := newTestDrive(t)
	events := 0
	d.SetCleanHook(func(ev CleanEvent) {
		events++
		if ev.BusyFor <= 0 {
			t.Fatal("zero-duration clean")
		}
	})
	// Fill past the 75% watermark with writes spread over many bands.
	rng := sim.NewRNG(2, "offsets")
	for d.CacheFill() < d.Config().CleanHighWater {
		write(d, rng.Int63n(900<<30)&^4095, 1<<20)
		eng.RunFor(time.Millisecond)
	}
	eng.RunFor(time.Minute)
	if events == 0 {
		t.Fatal("no band cleans happened")
	}
	if d.CacheFill() > d.Config().CleanHighWater {
		t.Fatalf("cache still at %.0f%% after cleaning", 100*d.CacheFill())
	}
	if d.Cleans() != uint64(events) {
		t.Fatalf("Cleans()=%d, events=%d", d.Cleans(), events)
	}
}

func TestCleanStartHookPredictsDuration(t *testing.T) {
	eng, d := newTestDrive(t)
	var predicted time.Duration
	var actual time.Duration
	d.SetCleanStartHook(func(_ int64, est time.Duration) {
		if predicted == 0 {
			predicted = est
		}
	})
	d.SetCleanHook(func(ev CleanEvent) {
		if actual == 0 {
			actual = ev.BusyFor
		}
	})
	rng := sim.NewRNG(2, "offsets")
	for d.CacheFill() < d.Config().CleanHighWater {
		write(d, rng.Int63n(900<<30)&^4095, 1<<20)
		eng.RunFor(time.Millisecond)
	}
	eng.RunFor(time.Minute)
	if predicted == 0 || actual == 0 {
		t.Fatal("hooks did not fire")
	}
	ratio := float64(actual) / float64(predicted)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("clean estimate %v vs actual %v (ratio %.2f)", predicted, actual, ratio)
	}
}

func TestReadsStallBehindCleaning(t *testing.T) {
	eng, d := newTestDrive(t)
	cleanStarted := false
	var stalled time.Duration
	d.SetCleanStartHook(func(int64, time.Duration) {
		if cleanStarted {
			return
		}
		cleanStarted = true
		// Issue a read right as the clean starts; it queues behind the
		// band read-modify-write.
		req := &blockio.Request{Op: blockio.Read, Offset: 500 << 30, Size: 4096,
			SubmitTime: eng.Now()}
		req.OnComplete = func(r *blockio.Request) { stalled = r.Latency() }
		d.Submit(req)
	})
	rng := sim.NewRNG(2, "offsets")
	for !cleanStarted {
		write(d, rng.Int63n(900<<30)&^4095, 1<<20)
		eng.RunFor(5 * time.Millisecond)
	}
	eng.RunFor(time.Minute)
	if stalled < 100*time.Millisecond {
		t.Fatalf("read during band clean took %v; §8.2 expects a long stall", stalled)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.BandBytes = 0 },
		func(c *Config) { c.CleanLowWater = 0.9 },
	} {
		cfg := DefaultConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			New(sim.NewEngine(), cfg, sim.NewRNG(1, "x"))
		}()
	}
}

func TestDriveString(t *testing.T) {
	_, d := newTestDrive(t)
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}
