// Package smr models a host-aware Shingled Magnetic Recording drive — the
// §8.2 extension target: "SMR disk drives must perform 'band cleaning'
// operations, which can easily induce tail latencies ... MittOS can be
// applied naturally in this context."
//
// The model layers SMR semantics over the conventional disk model of
// internal/disk: the surface is divided into shingled bands written
// strictly sequentially; random writes land in a small persistent-cache
// region and are later cleaned into their home bands by a
// read-modify-write of the whole band — the multi-hundred-millisecond
// background operation that stalls reads. Band cleaning is host-visible
// (host-aware SMR reports zone state), which is exactly what MittSMR's
// predictor exploits.
package smr

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/sim"
)

// Config shapes the SMR drive.
type Config struct {
	// Disk is the underlying mechanics (seeks, transfer, queueing).
	Disk disk.Config
	// BandBytes is the size of one shingled band (typically 256MB).
	BandBytes int64
	// CacheBytes is the persistent (media) cache absorbing random writes.
	CacheBytes int64
	// CleanHighWater starts cleaning when the cache passes this fraction.
	CleanHighWater float64
	// CleanLowWater stops cleaning when the cache drains below this.
	CleanLowWater float64
	// CleanChunkBytes splits each band pass into chunks so foreground
	// reads can interleave between them (real drives clean incrementally);
	// the total clean still occupies the spindle for the full band twice.
	CleanChunkBytes int64
	// CleanIdleDelay postpones cleaning briefly after the trigger.
	CleanIdleDelay time.Duration
}

// DefaultConfig returns a drive-managed-style 1TB SMR drive.
func DefaultConfig() Config {
	return Config{
		Disk:            disk.DefaultConfig(),
		BandBytes:       64 << 20, // ~1.3s clean per band at 100MB/s media rate
		CacheBytes:      8 << 30,
		CleanHighWater:  0.75,
		CleanLowWater:   0.50,
		CleanChunkBytes: 8 << 20,
		CleanIdleDelay:  50 * time.Millisecond,
	}
}

// CleanEvent reports one band-cleaning episode to the host (host-aware SMR
// exposes zone activity).
type CleanEvent struct {
	Band    int64
	Start   sim.Time
	BusyFor time.Duration
}

// Drive is the SMR device. It implements blockio.Device.
type Drive struct {
	eng  *sim.Engine
	cfg  Config
	disk *disk.Disk

	cacheUsed int64
	// dirtyBands tracks which bands have cached writes awaiting cleaning,
	// in arrival order (cleaning is FIFO over bands).
	dirtyBands []int64
	dirtySet   map[int64]int64 // band → cached bytes
	cleaning   bool

	cleans         uint64
	cleanHook      func(CleanEvent)
	cleanStartHook func(band int64, estimated time.Duration)

	// Band-clean state machine. Cleans run one at a time (d.cleaning) and
	// issue chunks strictly sequentially, so one reusable request and a
	// pre-bound completion cover every chunk IO without allocating.
	cleanBand   int64
	cleanCached int64
	cleanStart  sim.Time
	cleanIssued int64
	cleanTotal  int64
	cleanChunk  int64
	cleanReq    blockio.Request
	chunkFn     func(*blockio.Request) // pre-bound chunk completion
	cleanFn     func()                 // pre-bound d.cleanNext

	reqs     blockio.Pool
	slowFree []*slowOp
}

// slowOp is the pooled completion context for the cache-full slow path: it
// acks the original write when the drive-owned spindle pass finishes.
type slowOp struct {
	d   *Drive
	req *blockio.Request // the original write being acked
	fn  func(*blockio.Request)
}

func (op *slowOp) done(r *blockio.Request) {
	d, req := op.d, op.req
	op.req = nil
	d.slowFree = append(d.slowFree, op)
	r.Release()
	req.CompleteTime = d.eng.Now()
	if req.OnComplete != nil {
		req.OnComplete(req)
	}
}

// New builds the drive.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *Drive {
	if cfg.BandBytes <= 0 || cfg.CacheBytes <= 0 {
		panic("smr: invalid config")
	}
	if cfg.CleanLowWater >= cfg.CleanHighWater {
		panic("smr: watermarks inverted")
	}
	d := &Drive{
		eng:      eng,
		cfg:      cfg,
		disk:     disk.New(eng, cfg.Disk, rng),
		dirtySet: make(map[int64]int64),
	}
	d.chunkFn = func(*blockio.Request) { d.issueChunk() }
	d.cleanFn = d.cleanNext
	return d
}

// SetCleanHook registers the host-visible band-cleaning notification,
// analogous to the SSD GC hook.
func (d *Drive) SetCleanHook(fn func(CleanEvent)) { d.cleanHook = fn }

// SetCleanStartHook registers a notification fired when a band clean
// BEGINS, with the predicted duration — the host-aware zone-activity
// signal MittSMR folds into its wait predictions.
func (d *Drive) SetCleanStartHook(fn func(band int64, estimated time.Duration)) {
	d.cleanStartHook = fn
}

// EstimateCleanDuration predicts one band clean: two sequential passes over
// the band plus positioning.
func (d *Drive) EstimateCleanDuration() time.Duration {
	pass := time.Duration(d.cfg.BandBytes/1024) * d.cfg.Disk.TransferPerKB
	return 2*pass + 2*(d.cfg.Disk.SeekBase+d.cfg.Disk.SeekMax/2)
}

// Cleans returns the number of completed band cleans.
func (d *Drive) Cleans() uint64 { return d.cleans }

// CacheFill returns the persistent-cache occupancy fraction.
func (d *Drive) CacheFill() float64 {
	return float64(d.cacheUsed) / float64(d.cfg.CacheBytes)
}

// Cleaning reports whether a band clean is in progress.
func (d *Drive) Cleaning() bool { return d.cleaning }

// CanAccept / SetSlotFreeHook / InFlight delegate to the underlying disk so
// Drive satisfies iosched.Downstream and can sit under noop or CFQ.
func (d *Drive) CanAccept() bool { return d.disk.CanAccept() }

// SetSlotFreeHook implements iosched.Downstream.
func (d *Drive) SetSlotFreeHook(fn func()) { d.disk.SetSlotFreeHook(fn) }

// InFlight implements blockio.Device.
func (d *Drive) InFlight() int { return d.disk.InFlight() }

// Config returns the drive configuration.
func (d *Drive) Config() Config { return d.cfg }

// Underlying exposes the conventional-disk mechanics beneath the bands.
func (d *Drive) Underlying() *disk.Disk     { return d.disk }
func (d *Drive) band(off int64) int64       { return off / d.cfg.BandBytes }
func (d *Drive) bandStart(band int64) int64 { return band * d.cfg.BandBytes }

// Submit implements blockio.Device: reads pass through; writes land in the
// persistent cache (fast, sequential-ish) and accumulate cleaning debt.
func (d *Drive) Submit(req *blockio.Request) {
	if req.Op == blockio.Write {
		if d.cacheUsed+int64(req.Size) > d.cfg.CacheBytes {
			// Persistent cache full: the drive falls back to a direct
			// (slow, spindle-bound) shingled write — the throttling every
			// overdriven SMR drive exhibits. Model it as a spindle pass
			// over the written range.
			slow := d.reqs.Get()
			slow.Op, slow.Offset, slow.Size = blockio.Read, req.Offset, req.Size
			slow.Proc, slow.Class, slow.Priority = req.Proc, req.Class, req.Priority
			slow.SubmitTime = req.SubmitTime
			var op *slowOp
			if n := len(d.slowFree); n > 0 {
				op = d.slowFree[n-1]
				d.slowFree = d.slowFree[:n-1]
			} else {
				op = &slowOp{d: d}
				op.fn = op.done
			}
			op.req = req
			slow.OnComplete = op.fn
			d.disk.Submit(slow)
			d.maybeClean()
			return
		}
		// Random writes go to the media cache: cheap now, cleaned later.
		d.cacheUsed += int64(req.Size)
		b := d.band(req.Offset)
		if _, ok := d.dirtySet[b]; !ok {
			d.dirtySet[b] = 0
			d.dirtyBands = append(d.dirtyBands, b)
		}
		d.dirtySet[b] += int64(req.Size)
		d.disk.Submit(req) // NVRAM/write-cache path in the disk model
		d.maybeClean()
		return
	}
	d.disk.Submit(req)
}

// maybeClean starts band cleaning above the high watermark and keeps
// cleaning until the low watermark — the bursty, long-lived background
// noise SMR is notorious for.
func (d *Drive) maybeClean() {
	if d.cleaning || d.CacheFill() < d.cfg.CleanHighWater {
		return
	}
	d.cleaning = true
	d.eng.After(d.cfg.CleanIdleDelay, d.cleanFn)
}

func (d *Drive) cleanNext() {
	if len(d.dirtyBands) == 0 || d.CacheFill() <= d.cfg.CleanLowWater {
		d.cleaning = false
		return
	}
	band := d.dirtyBands[0]
	d.dirtyBands = d.dirtyBands[1:]
	d.cleanBand = band
	d.cleanCached = d.dirtySet[band]
	delete(d.dirtySet, band)
	d.cleanStart = d.eng.Now()
	if d.cleanStartHook != nil {
		d.cleanStartHook(band, d.EstimateCleanDuration())
	}

	// Read-modify-write of the whole band, issued as chunked sequential
	// IOs (two full passes) so foreground reads can slot in between
	// chunks. The passes are modeled as spindle-occupying reads: the disk
	// model's write path would ack from NVRAM, which is wrong for a band
	// rewrite, so the rewrite pass reuses the sequential-read cost model.
	chunk := d.cfg.CleanChunkBytes
	if chunk <= 0 || chunk > d.cfg.BandBytes {
		chunk = d.cfg.BandBytes
	}
	d.cleanChunk = chunk
	d.cleanTotal = 2 * ((d.cfg.BandBytes + chunk - 1) / chunk)
	d.cleanIssued = 0
	d.issueChunk()
}

// issueChunk advances the clean state machine by one chunk. Chunks run
// strictly one at a time, so the drive reuses a single request struct; the
// next chunk is issued from the previous one's completion.
func (d *Drive) issueChunk() {
	if d.cleanIssued >= d.cleanTotal {
		d.cacheUsed -= d.cleanCached
		if d.cacheUsed < 0 {
			d.cacheUsed = 0
		}
		d.cleans++
		if d.cleanHook != nil {
			d.cleanHook(CleanEvent{Band: d.cleanBand, Start: d.cleanStart,
				BusyFor: d.eng.Now().Sub(d.cleanStart)})
		}
		d.cleanNext()
		return
	}
	off := d.bandStart(d.cleanBand) + (d.cleanIssued%(d.cleanTotal/2))*d.cleanChunk
	size := d.cleanChunk
	if off+size > d.bandStart(d.cleanBand)+d.cfg.BandBytes {
		size = d.bandStart(d.cleanBand) + d.cfg.BandBytes - off
	}
	d.cleanIssued++
	d.cleanReq = blockio.Request{Op: blockio.Read, Offset: off, Size: int(size),
		Proc: -1, Class: blockio.ClassIdle, Priority: 7, OnComplete: d.chunkFn}
	d.disk.Submit(&d.cleanReq)
}

// String describes drive state.
func (d *Drive) String() string {
	return fmt.Sprintf("smr.Drive{cache=%.0f%% dirtyBands=%d cleaning=%v cleans=%d}",
		100*d.CacheFill(), len(d.dirtyBands), d.cleaning, d.cleans)
}
