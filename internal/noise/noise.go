// Package noise implements the noisy neighbors of the paper's evaluation:
//
//   - Bursty — the EC2 multi-tenant contention process of §6: noise
//     episodes with Poisson arrivals, heavy-tailed (Pareto) durations and
//     variable intensity, calibrated so that across a 20-node fleet mostly
//     only 1–2 nodes are busy at the same time (Figure 3g: ~25% one busy,
//     ~5% two busy).
//   - Steady — the microbenchmark injector of §7.1: a fixed number of
//     closed-loop contender streams (e.g. "4 threads of 4KB random reads",
//     "a thread of 64KB writes").
//   - Rotating — the severe 1-busy/2-free rotating contention used by the
//     Table 1 NoSQL survey and the §7.8.3 snitching/C3 experiment.
//   - CacheEvictor — the memory-space contention for MittCache runs:
//     periodic eviction of a fraction of the cached working set (§7.4).
package noise

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/oscache"
	"mittos/internal/sim"
)

// BurstyConfig shapes one node's EC2-like contention process.
type BurstyConfig struct {
	// MeanInterarrival is the mean gap between episode starts (Poisson).
	MeanInterarrival time.Duration
	// EpisodeMin/EpisodeAlpha/EpisodeCap parameterize the bounded-Pareto
	// episode duration: most bursts are sub-second, a few run long —
	// §6's "noises come and go at various intervals".
	EpisodeMin   time.Duration
	EpisodeAlpha float64
	EpisodeCap   time.Duration
	// MaxStreams is the contention intensity ceiling: each episode runs
	// 1..MaxStreams closed-loop contender streams.
	MaxStreams int
	// IODepth is the queue depth each stream keeps outstanding (fio-style
	// neighbors submit batches, not one IO at a time).
	IODepth int
	// IOSize and Op describe the contender IOs.
	IOSize int
	Op     blockio.Op
	// Class/Priority are the contenders' ionice identity.
	Class    blockio.Class
	Priority int
	// Proc is the tenant id the contender IOs carry.
	Proc int
	// AddrSpace is the device range contenders touch.
	AddrSpace int64
}

// DefaultDiskBursty calibrates the disk contention process so a single node
// is busy ≈2% of the time; across 20 nodes this yields Figure 3g's
// P(1 busy)≈25%, P(2 busy)≈5%.
func DefaultDiskBursty(addrSpace int64, proc int) BurstyConfig {
	return BurstyConfig{
		MeanInterarrival: 12 * time.Second,
		EpisodeMin:       100 * time.Millisecond,
		EpisodeAlpha:     1.3,
		EpisodeCap:       1500 * time.Millisecond,
		MaxStreams:       3, // concurrent 1MB reads, "each will add 12ms delay" (§7.2)
		IODepth:          3,
		IOSize:           1 << 20,
		Op:               blockio.Read,
		Class:            blockio.ClassBestEffort,
		Priority:         4,
		Proc:             proc,
		AddrSpace:        addrSpace,
	}
}

// DefaultSSDBursty calibrates SSD contention: bursts of writes.
func DefaultSSDBursty(addrSpace int64, proc int) BurstyConfig {
	return BurstyConfig{
		MeanInterarrival: 7 * time.Second,
		EpisodeMin:       50 * time.Millisecond,
		EpisodeAlpha:     1.3,
		EpisodeCap:       2500 * time.Millisecond,
		MaxStreams:       6,
		IODepth:          2,
		IOSize:           256 << 10, // bursts of large writes spanning many chips
		Op:               blockio.Write,
		Class:            blockio.ClassBestEffort,
		Priority:         4,
		Proc:             proc,
		AddrSpace:        addrSpace,
	}
}

// Bursty runs the episode process against a device.
type Bursty struct {
	eng *sim.Engine
	cfg BurstyConfig
	dev blockio.Device
	rng *sim.RNG
	ids blockio.IDGen

	active   bool
	stop     bool
	episodes []Episode
	inFlight int

	reqs       blockio.Pool
	streamFree []*bStream
}

// bStream is one pooled closed-loop contender stream; its completion
// callback is bound once so per-IO reissue allocates nothing.
type bStream struct {
	b     *Bursty
	until sim.Time
	fn    func(*blockio.Request) // pre-bound (*bStream).complete
}

func (st *bStream) complete(*blockio.Request) {
	st.b.inFlight--
	st.b.stream(st)
}

// Episode records one contention burst (for inter-arrival analysis, Fig 3d-f).
type Episode struct {
	Start    sim.Time
	Duration time.Duration
	Streams  int
}

// NewBursty builds (but does not start) the process.
func NewBursty(eng *sim.Engine, cfg BurstyConfig, dev blockio.Device, rng *sim.RNG) *Bursty {
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 1
	}
	if cfg.IODepth <= 0 {
		cfg.IODepth = 1
	}
	if cfg.IOSize <= 0 {
		cfg.IOSize = 4096
	}
	return &Bursty{eng: eng, cfg: cfg, dev: dev, rng: rng}
}

// Start schedules the first episode.
func (b *Bursty) Start() { b.scheduleNext() }

// Stop halts the process after the current episode drains.
func (b *Bursty) Stop() { b.stop = true }

// Busy reports whether an episode is in progress.
func (b *Bursty) Busy() bool { return b.active }

// Episodes returns the recorded bursts.
func (b *Bursty) Episodes() []Episode { return b.episodes }

func (b *Bursty) scheduleNext() {
	if b.stop {
		return
	}
	gap := b.rng.Exp(b.cfg.MeanInterarrival)
	b.eng.After(gap, b.beginEpisode)
}

func (b *Bursty) beginEpisode() {
	if b.stop {
		return
	}
	dur := b.rng.ParetoDuration(b.cfg.EpisodeMin, b.cfg.EpisodeAlpha, b.cfg.EpisodeCap)
	streams := 1 + b.rng.Intn(b.cfg.MaxStreams)
	b.active = true
	b.episodes = append(b.episodes, Episode{Start: b.eng.Now(), Duration: dur, Streams: streams})
	end := b.eng.Now().Add(dur)
	for i := 0; i < streams*b.cfg.IODepth; i++ {
		var st *bStream
		if n := len(b.streamFree); n > 0 {
			st = b.streamFree[n-1]
			b.streamFree = b.streamFree[:n-1]
		} else {
			st = &bStream{b: b}
			st.fn = st.complete
		}
		st.until = end
		b.stream(st)
	}
	b.eng.FireAt(end, func() {
		b.active = false
		b.scheduleNext()
	})
}

// stream is one closed-loop contender: issue, wait, repeat until the
// episode ends. Requests come from the pool and are boundary-owned
// (AutoFree): the block layer recycles each one after its completion has
// been observed.
func (b *Bursty) stream(st *bStream) {
	if b.eng.Now() >= st.until || b.stop {
		b.streamFree = append(b.streamFree, st)
		return
	}
	req := b.reqs.Get()
	req.ID, req.Op = b.ids.Next(), b.cfg.Op
	req.Offset, req.Size = b.randomOffset(), b.cfg.IOSize
	req.Proc, req.Class, req.Priority = b.cfg.Proc, b.cfg.Class, b.cfg.Priority
	req.SubmitTime = b.eng.Now()
	req.AutoFree = true
	req.OnComplete = st.fn
	b.inFlight++
	b.dev.Submit(req)
}

func (b *Bursty) randomOffset() int64 {
	span := b.cfg.AddrSpace - int64(b.cfg.IOSize)
	if span <= 0 {
		return 0
	}
	off := b.rng.Int63n(span)
	// Align to 4KB so page-granular devices behave.
	return off &^ 4095
}

// Steady is the §7.1 microbenchmark injector: N contender streams running
// continuously from start to stop.
type Steady struct {
	eng *sim.Engine
	dev blockio.Device
	rng *sim.RNG
	ids blockio.IDGen

	op       blockio.Op
	size     int
	streamsN int
	class    blockio.Class
	priority int
	proc     int
	space    int64

	running bool

	reqs   blockio.Pool
	doneFn func(*blockio.Request) // bound once: re-loop on completion
}

// NewSteady builds a steady injector of `streams` closed-loop contenders.
func NewSteady(eng *sim.Engine, dev blockio.Device, rng *sim.RNG,
	op blockio.Op, size, streams int, class blockio.Class, priority, proc int,
	space int64) *Steady {
	s := &Steady{eng: eng, dev: dev, rng: rng, op: op, size: size,
		streamsN: streams, class: class, priority: priority, proc: proc,
		space: space}
	s.doneFn = func(*blockio.Request) { s.loop() }
	return s
}

// Start launches the contender streams.
func (s *Steady) Start() {
	if s.running {
		return
	}
	s.running = true
	for i := 0; i < s.streamsN; i++ {
		s.loop()
	}
}

// Stop ends the streams after their current IOs complete.
func (s *Steady) Stop() { s.running = false }

func (s *Steady) loop() {
	if !s.running {
		return
	}
	span := s.space - int64(s.size)
	if span <= 0 {
		span = 1
	}
	req := s.reqs.Get()
	req.ID, req.Op, req.Offset = s.ids.Next(), s.op, s.rng.Int63n(span)&^4095
	req.Size, req.Proc, req.Class, req.Priority = s.size, s.proc, s.class, s.priority
	req.SubmitTime = s.eng.Now()
	req.AutoFree = true
	req.OnComplete = s.doneFn
	s.dev.Submit(req)
}

// Rotating moves severe contention across a set of devices: one busy,
// the rest free, advancing every period (Table 1's "severe IO contention
// for one second in a rotating manner"; §7.8.3's 1B2F patterns).
type Rotating struct {
	eng     *sim.Engine
	devs    []blockio.Device
	period  time.Duration
	streams int
	size    int
	space   int64
	rng     *sim.RNG
	ids     blockio.IDGen

	current int
	epoch   uint64
	running bool

	reqs       blockio.Pool
	streamFree []*rStream
}

// rStream is one pooled rotating-contender stream, pinned to a node and
// epoch; stale streams retire at their next completion.
type rStream struct {
	r     *Rotating
	node  int
	epoch uint64
	fn    func(*blockio.Request) // pre-bound (*rStream).complete
}

func (st *rStream) complete(*blockio.Request) { st.r.loop(st) }

// NewRotating builds the rotating injector.
func NewRotating(eng *sim.Engine, devs []blockio.Device, period time.Duration,
	streams, size int, space int64, rng *sim.RNG) *Rotating {
	if len(devs) == 0 {
		panic("noise: Rotating needs at least one device")
	}
	return &Rotating{eng: eng, devs: devs, period: period, streams: streams,
		size: size, space: space, rng: rng}
}

// Start begins rotating from device 0.
func (r *Rotating) Start() {
	r.running = true
	r.beginEpoch()
}

// Stop halts after in-flight IOs drain.
func (r *Rotating) Stop() { r.running = false; r.epoch++ }

// BusyNode returns the currently contended device index.
func (r *Rotating) BusyNode() int { return r.current }

func (r *Rotating) beginEpoch() {
	if !r.running {
		return
	}
	r.epoch++
	for i := 0; i < r.streams; i++ {
		var st *rStream
		if n := len(r.streamFree); n > 0 {
			st = r.streamFree[n-1]
			r.streamFree = r.streamFree[:n-1]
		} else {
			st = &rStream{r: r}
			st.fn = st.complete
		}
		st.node, st.epoch = r.current, r.epoch
		r.loop(st)
	}
	r.eng.After(r.period, func() {
		if !r.running {
			return
		}
		r.current = (r.current + 1) % len(r.devs)
		r.beginEpoch()
	})
}

func (r *Rotating) loop(st *rStream) {
	if !r.running || st.epoch != r.epoch {
		r.streamFree = append(r.streamFree, st)
		return
	}
	span := r.space - int64(r.size)
	if span <= 0 {
		span = 1
	}
	req := r.reqs.Get()
	req.ID, req.Op, req.Offset = r.ids.Next(), blockio.Read, r.rng.Int63n(span)&^4095
	req.Size, req.Proc = r.size, 1000+st.node
	req.Class, req.Priority = blockio.ClassBestEffort, 4
	req.SubmitTime = r.eng.Now()
	req.AutoFree = true
	req.OnComplete = st.fn
	r.devs[st.node].Submit(req)
}

// CacheEvictor models memory-space contention for MittCache runs: every
// period it evicts a fraction of the cache (a neighbor VM ballooning), the
// §7.4 "manual swapping" methodology.
type CacheEvictor struct {
	eng    *sim.Engine
	cache  *oscache.Cache
	frac   float64
	period time.Duration
	rng    *sim.RNG
	ticker *sim.Ticker
}

// NewCacheEvictor builds the evictor.
func NewCacheEvictor(eng *sim.Engine, cache *oscache.Cache, frac float64,
	period time.Duration, rng *sim.RNG) *CacheEvictor {
	return &CacheEvictor{eng: eng, cache: cache, frac: frac, period: period, rng: rng}
}

// Start begins periodic eviction.
func (c *CacheEvictor) Start() {
	c.ticker = c.eng.NewTicker(c.period, func() {
		c.cache.EvictFraction(c.frac, c.rng)
	})
}

// Stop halts eviction.
func (c *CacheEvictor) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}
