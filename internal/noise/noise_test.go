package noise

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/oscache"
	"mittos/internal/sim"
)

// countingDevice completes IOs after a fixed delay and counts them.
type countingDevice struct {
	eng      *sim.Engine
	delay    time.Duration
	count    int
	inflight int
}

func (d *countingDevice) Submit(req *blockio.Request) {
	d.count++
	d.inflight++
	d.eng.Schedule(d.delay, func() {
		d.inflight--
		req.CompleteTime = d.eng.Now()
		if req.OnComplete != nil {
			req.OnComplete(req)
		}
	})
}
func (d *countingDevice) InFlight() int { return d.inflight }

func TestBurstyEpisodesOccur(t *testing.T) {
	eng := sim.NewEngine()
	dev := &countingDevice{eng: eng, delay: 5 * time.Millisecond}
	cfg := DefaultDiskBursty(100<<30, 99)
	cfg.MeanInterarrival = 500 * time.Millisecond
	b := NewBursty(eng, cfg, dev, sim.NewRNG(1, "bursty"))
	b.Start()
	eng.RunUntil(sim.Time(20 * sim.Second))
	eps := b.Episodes()
	if len(eps) < 10 {
		t.Fatalf("episodes = %d over 20s with 500ms mean gap", len(eps))
	}
	if dev.count == 0 {
		t.Fatal("no contender IOs issued")
	}
	for _, e := range eps {
		if e.Duration < cfg.EpisodeMin || e.Duration > cfg.EpisodeCap {
			t.Fatalf("episode duration %v outside [%v,%v]", e.Duration, cfg.EpisodeMin, cfg.EpisodeCap)
		}
		if e.Streams < 1 || e.Streams > cfg.MaxStreams {
			t.Fatalf("episode streams %d", e.Streams)
		}
	}
}

func TestBurstyBusyFractionCalibration(t *testing.T) {
	// Figure 3g calibration: each node busy a low-single-digit percent of
	// the time.
	eng := sim.NewEngine()
	dev := &countingDevice{eng: eng, delay: 5 * time.Millisecond}
	b := NewBursty(eng, DefaultDiskBursty(100<<30, 99), dev, sim.NewRNG(7, "frac"))
	b.Start()
	busyTicks, ticks := 0, 0
	eng.NewTicker(100*time.Millisecond, func() {
		ticks++
		if b.Busy() {
			busyTicks++
		}
	})
	eng.RunUntil(sim.Time(20 * 60 * sim.Second)) // 20 virtual minutes
	frac := float64(busyTicks) / float64(ticks)
	if frac < 0.005 || frac > 0.08 {
		t.Fatalf("busy fraction %.3f outside the §6-calibrated band [0.5%%, 8%%]", frac)
	}
}

func TestBurstyStop(t *testing.T) {
	eng := sim.NewEngine()
	dev := &countingDevice{eng: eng, delay: time.Millisecond}
	cfg := DefaultDiskBursty(100<<30, 99)
	cfg.MeanInterarrival = 100 * time.Millisecond
	b := NewBursty(eng, cfg, dev, sim.NewRNG(2, "stop"))
	b.Start()
	eng.RunUntil(sim.Time(2 * sim.Second))
	b.Stop()
	eng.Run() // must terminate: no endless rescheduling
	if eng.Pending() != 0 {
		t.Fatalf("pending events after stop: %d", eng.Pending())
	}
}

func TestSteadyRunsUntilStopped(t *testing.T) {
	eng := sim.NewEngine()
	dev := &countingDevice{eng: eng, delay: 2 * time.Millisecond}
	s := NewSteady(eng, dev, sim.NewRNG(3, "steady"),
		blockio.Read, 4096, 4, blockio.ClassBestEffort, 4, 99, 100<<30)
	s.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if dev.count < 1000 {
		t.Fatalf("steady 4-stream injector issued %d IOs in 1s, want ~2000", dev.count)
	}
	s.Stop()
	eng.Run()
	if eng.Pending() != 0 {
		t.Fatal("steady injector did not drain after Stop")
	}
	// Double Start is a no-op while running.
	s.Start()
	s.Stop()
}

func TestRotatingMovesAcrossDevices(t *testing.T) {
	eng := sim.NewEngine()
	devs := []*countingDevice{
		{eng: eng, delay: 2 * time.Millisecond},
		{eng: eng, delay: 2 * time.Millisecond},
		{eng: eng, delay: 2 * time.Millisecond},
	}
	ifaces := []blockio.Device{devs[0], devs[1], devs[2]}
	r := NewRotating(eng, ifaces, time.Second, 2, 1<<20, 100<<30, sim.NewRNG(4, "rot"))
	r.Start()
	// During the first second only device 0 sees IOs.
	eng.RunUntil(sim.Time(900 * time.Millisecond))
	if devs[0].count == 0 || devs[1].count != 0 || devs[2].count != 0 {
		t.Fatalf("first epoch counts: %d/%d/%d", devs[0].count, devs[1].count, devs[2].count)
	}
	if r.BusyNode() != 0 {
		t.Fatalf("BusyNode = %d", r.BusyNode())
	}
	// After rotation, device 1 gets contention.
	eng.RunUntil(sim.Time(1900 * time.Millisecond))
	if devs[1].count == 0 {
		t.Fatal("rotation did not move to device 1")
	}
	if r.BusyNode() != 1 {
		t.Fatalf("BusyNode = %d after one rotation", r.BusyNode())
	}
	before0 := devs[0].count
	eng.RunUntil(sim.Time(2900 * time.Millisecond))
	if devs[0].count > before0+2 {
		t.Fatalf("device 0 kept receiving noise after its epoch: %d → %d", before0, devs[0].count)
	}
	r.Stop()
	eng.Run()
}

func TestCacheEvictorEvicts(t *testing.T) {
	eng := sim.NewEngine()
	backing := &countingDevice{eng: eng, delay: 5 * time.Millisecond}
	cache := oscache.New(eng, oscache.DefaultConfig(), backing)
	cache.Warm(0, 4096*1000)
	ev := NewCacheEvictor(eng, cache, 0.2, 100*time.Millisecond, sim.NewRNG(5, "ev"))
	ev.Start()
	eng.RunUntil(sim.Time(350 * time.Millisecond))
	ev.Stop()
	if cache.ResidentPages() >= 1000 {
		t.Fatal("evictor removed nothing")
	}
	// ~0.8³ of the set should survive three rounds, very roughly.
	if cache.ResidentPages() < 300 {
		t.Fatalf("evictor too aggressive: %d pages left", cache.ResidentPages())
	}
	eng.Run()
}

func TestRotatingPanicsWithoutDevices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRotating(sim.NewEngine(), nil, time.Second, 1, 4096, 1<<30, sim.NewRNG(1, "x"))
}
