package core

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/sim"
)

type cfqRig struct {
	eng  *sim.Engine
	disk *disk.Disk
	cfq  *iosched.CFQ
	mitt *MittCFQ
	ids  blockio.IDGen
}

func newCFQRig(t *testing.T, opt Options) *cfqRig {
	t.Helper()
	eng := sim.NewEngine()
	cfg := disk.DefaultConfig()
	d := disk.New(eng, cfg, sim.NewRNG(21, t.Name()))
	cfq := iosched.NewCFQ(eng, iosched.DefaultCFQConfig(), d)
	prof := disk.ProfileTwin(cfg, 42, disk.ProfilerOptions{Buckets: 32, Tries: 6, ProbeSize: 4096})
	return &cfqRig{eng: eng, disk: d, cfq: cfq, mitt: NewMittCFQ(eng, cfq, prof, opt)}
}

func (r *cfqRig) submit(proc int, class blockio.Class, prio int, off int64,
	deadline time.Duration, cb func(error)) *blockio.Request {
	req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Read, Offset: off,
		Size: 4096, Proc: proc, Class: class, Priority: prio, Deadline: deadline}
	r.mitt.SubmitSLO(req, cb)
	return req
}

func TestMittCFQIdleAccepts(t *testing.T) {
	r := newCFQRig(t, DefaultOptions())
	var err error = blockio.ErrBusy
	r.submit(1, blockio.ClassBestEffort, 4, 100<<30, 20*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("idle rejected: %v", err)
	}
}

func TestMittCFQRejectsWhenOtherProcsAhead(t *testing.T) {
	r := newCFQRig(t, DefaultOptions())
	// Noise proc floods 20 IOs.
	for i := 0; i < 20; i++ {
		r.submit(9, blockio.ClassBestEffort, 4, int64(i+1)*(40<<30), 0, func(error) {})
	}
	var err error
	r.submit(1, blockio.ClassBestEffort, 4, 500<<30, 10*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("expected EBUSY behind 20-deep noise queue, got %v", err)
	}
	_, rej, _ := r.mitt.Counts()
	if rej != 1 {
		t.Fatalf("rejected = %d", rej)
	}
}

func TestMittCFQRealTimeNotBlockedByBestEffort(t *testing.T) {
	// An RT-class request does not wait behind BE noise, so MittCFQ should
	// accept it where an equally-deadlined BE request is rejected.
	r := newCFQRig(t, DefaultOptions())
	for i := 0; i < 20; i++ {
		r.submit(9, blockio.ClassBestEffort, 4, int64(i+1)*(40<<30), 0, func(error) {})
	}
	// The deadline must cover the device-resident quantum (which nobody
	// preempts) but not the full BE backlog.
	deadline := 45 * time.Millisecond
	var beErr, rtErr error
	r.submit(1, blockio.ClassBestEffort, 4, 500<<30, deadline, func(e error) { beErr = e })
	r.submit(2, blockio.ClassRealTime, 0, 500<<30, deadline, func(e error) { rtErr = e })
	r.eng.Run()
	if !IsBusy(beErr) {
		t.Fatalf("BE request not rejected: %v", beErr)
	}
	if rtErr != nil {
		t.Fatalf("RT request rejected or failed: %v", rtErr)
	}
}

func TestMittCFQLateCancellation(t *testing.T) {
	// The §4.2 bump-back scenario: a BE IO is accepted with slack, then a
	// burst of RT IOs consumes its tolerable time; the accepted IO must be
	// cancelled with EBUSY instead of silently missing its deadline.
	r := newCFQRig(t, DefaultOptions())
	// Seed enough BE noise to fill the dispatch quantum (so the victim
	// stays in the CFQ queues, still cancellable) and give it a wait
	// close to — but under — its deadline.
	for i := 0; i < 5; i++ {
		r.submit(9, blockio.ClassBestEffort, 5, int64(i+1)*(100<<30), 0, func(error) {})
	}
	var victimErr error
	victimDone := false
	r.submit(1, blockio.ClassBestEffort, 4, 500<<30, 48*time.Millisecond, func(e error) {
		victimErr = e
		victimDone = true
	})
	// Burst of high-priority RT IOs right behind it.
	for i := 0; i < 12; i++ {
		r.submit(2, blockio.ClassRealTime, 0, int64(i+1)*(60<<30), 0, func(error) {})
	}
	r.eng.Run()
	if !victimDone {
		t.Fatal("victim never resolved")
	}
	_, _, cancelled := r.mitt.Counts()
	if cancelled == 0 {
		t.Fatal("no late cancellation happened; tolerable-time table inert")
	}
	if !IsBusy(victimErr) {
		t.Fatalf("victim got %v, want late EBUSY", victimErr)
	}
	// The cancelled IO must not reach the disk.
	if got := r.disk.Served(); got != 17 {
		t.Fatalf("disk served %d IOs, want 17 (victim dropped)", got)
	}
}

func TestMittCFQNoDeadlineNeverRejected(t *testing.T) {
	r := newCFQRig(t, DefaultOptions())
	for i := 0; i < 30; i++ {
		r.submit(9, blockio.ClassBestEffort, 4, int64(i+1)*(20<<30), 0, func(error) {})
	}
	done := 0
	r.submit(1, blockio.ClassBestEffort, 4, 500<<30, 0, func(e error) {
		if e != nil {
			t.Fatalf("no-SLO IO got %v", e)
		}
		done++
	})
	r.eng.Run()
	if done != 1 {
		t.Fatal("no-SLO IO did not complete")
	}
}

func TestMittCFQNodeTotalsDrainToZero(t *testing.T) {
	r := newCFQRig(t, DefaultOptions())
	for i := 0; i < 10; i++ {
		r.submit(3, blockio.ClassBestEffort, 4, int64(i+1)*(50<<30), 0, func(error) {})
	}
	r.eng.Run()
	if w := r.mitt.PredictWait(3, blockio.ClassBestEffort); w > 6*time.Millisecond {
		t.Fatalf("post-drain predicted wait %v; node totals leaked", w)
	}
}

func TestMittCFQShadowAccuracyUnderContention(t *testing.T) {
	opt := DefaultOptions()
	opt.Shadow = true
	r := newCFQRig(t, opt)
	rng := sim.NewRNG(5, "offs")
	// Noise proc: bursts of 4 every 120ms.
	r.eng.NewTicker(120*time.Millisecond, func() {
		for i := 0; i < 4; i++ {
			r.submit(9, blockio.ClassBestEffort, 6, rng.Int63n(900<<30), 0, func(error) {})
		}
	})
	// Probes with a deadline near the workload's p95.
	r.eng.NewTicker(30*time.Millisecond, func() {
		r.submit(1, blockio.ClassBestEffort, 2, rng.Int63n(900<<30), 35*time.Millisecond, func(error) {})
	})
	r.eng.RunUntil(sim.Time(12 * sim.Second))
	acc := r.mitt.Accuracy()
	if acc.Total() < 300 {
		t.Fatalf("verdicted %d", acc.Total())
	}
	if acc.InaccuracyRate() > 0.10 {
		t.Fatalf("MittCFQ inaccuracy %.1f%% too high (FP %.1f%%, FN %.1f%%)",
			100*acc.InaccuracyRate(), 100*acc.FalsePosRate(), 100*acc.FalseNegRate())
	}
}

func TestMittCFQErrorInjection(t *testing.T) {
	r := newCFQRig(t, DefaultOptions())
	r.mitt.SetErrorInjection(0, 1.0, sim.NewRNG(2, "inj"))
	var err error
	r.submit(1, blockio.ClassBestEffort, 4, 100<<30, 20*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("100%% FP injection accepted: %v", err)
	}
}

func TestOutranks(t *testing.T) {
	cases := []struct {
		ca   blockio.Class
		pa   int
		cb   blockio.Class
		pb   int
		want bool
	}{
		{blockio.ClassRealTime, 7, blockio.ClassBestEffort, 0, true},
		{blockio.ClassBestEffort, 0, blockio.ClassRealTime, 7, false},
		{blockio.ClassBestEffort, 2, blockio.ClassBestEffort, 5, true},
		{blockio.ClassBestEffort, 5, blockio.ClassBestEffort, 2, false},
		{blockio.ClassBestEffort, 4, blockio.ClassBestEffort, 4, false},
		{blockio.ClassIdle, 0, blockio.ClassBestEffort, 7, false},
	}
	for _, c := range cases {
		if got := outranks(c.ca, c.pa, c.cb, c.pb); got != c.want {
			t.Fatalf("outranks(%v/%d, %v/%d) = %v", c.ca, c.pa, c.cb, c.pb, got)
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[time.Duration]int64{
		0:                        0,
		500 * time.Microsecond:   0,
		time.Millisecond:         1,
		9500 * time.Microsecond:  9,
		-500 * time.Microsecond:  -1,
		-time.Millisecond:        -1,
		-1500 * time.Microsecond: -2,
	}
	for d, want := range cases {
		if got := bucketOf(d); got != want {
			t.Fatalf("bucketOf(%v) = %d, want %d", d, got, want)
		}
	}
}
