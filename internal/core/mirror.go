package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/sim"
)

// sstfMirror is the predictor's model of a disk device queue: it tracks
// every outstanding IO and, knowing the device's SSTF policy (Appendix A:
// "we found that our target disk exhibits SSTF policy"), replays the
// service order with profiled per-IO costs. MittNoop mirrors the whole
// dispatch+device queue; MittCFQ mirrors just the device-resident quantum.
//
// Completion residuals feed an EWMA bias corrector — the Tdiff calibration
// of §4.1 — so profile error cannot accumulate.
type sstfMirror struct {
	eng       *sim.Engine
	prof      *disk.Profile
	calibrate bool

	pending   []*mirrorEntry
	inService *mirrorEntry
	svcEnd    sim.Time
	headPos   int64
	driftBias time.Duration

	entryFree []*mirrorEntry // recycled entries
	scratch   []*mirrorEntry // replay working set, reused across calls
}

// DriftBias exposes the calibration residual. A persistently large value
// means the offline profile no longer matches the device — §8.1's "latency
// profiles must be recollected over time; a sampling runtime method can be
// used to catch a significant deviation".
func (m *sstfMirror) DriftBias() time.Duration { return m.driftBias }

type mirrorEntry struct {
	req *blockio.Request
	off int64
	end int64
	sz  int
	at  sim.Time // when the device saw it (for command-aging modeling)
}

func newSSTFMirror(eng *sim.Engine, prof *disk.Profile, calibrate bool) *sstfMirror {
	return &sstfMirror{eng: eng, prof: prof, calibrate: calibrate}
}

// svcTime predicts the service time for a jump from `from` to (off, sz),
// bias-corrected.
func (m *sstfMirror) svcTime(from, off int64, sz int) time.Duration {
	svc := m.prof.ServiceTime(off-from, sz)
	if m.calibrate {
		svc += m.driftBias
		if svc < 0 {
			svc = 0
		}
	}
	return svc
}

// add registers a newly submitted IO.
func (m *sstfMirror) add(req *blockio.Request) {
	var e *mirrorEntry
	if n := len(m.entryFree); n > 0 {
		e = m.entryFree[n-1]
		m.entryFree = m.entryFree[:n-1]
	} else {
		e = &mirrorEntry{}
	}
	e.req, e.off, e.end, e.sz, e.at = req, req.Offset, req.End(), req.Size, m.eng.Now()
	m.pending = append(m.pending, e)
	if m.inService == nil {
		m.start()
	}
}

// complete removes a finished IO, calibrates, and advances the mirror.
func (m *sstfMirror) complete(req *blockio.Request) {
	if m.calibrate && m.inService != nil && m.inService.req == req {
		err := m.eng.Now().Sub(m.svcEnd)
		err = clampDur(err, -2*time.Millisecond, 2*time.Millisecond)
		m.driftBias += (err - m.driftBias) / 8
	}
	for i, p := range m.pending {
		if p.req == req {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			p.req = nil
			m.entryFree = append(m.entryFree, p)
			break
		}
	}
	m.headPos = req.End()
	m.start()
}

// start begins predicted service of the next pending IO under the device's
// policy: command-aged FIFO first, SSTF otherwise.
func (m *sstfMirror) start() {
	m.inService = nil
	best := m.pick(m.pending, m.headPos, m.eng.Now(), nil)
	if best == nil {
		return
	}
	m.inService = best
	m.svcEnd = m.eng.Now().Add(m.svcTime(m.headPos, best.off, best.sz))
}

// pick applies the device policy to choose the next IO among entries. skip
// excludes one entry (the in-service one when scanning pending directly).
//
// Entries arrive in virtual-time order (add appends, complete splices), so
// `at` is non-decreasing along the slice and the command-aging candidate is
// simply the first valid entry — O(1) instead of a minimum scan, with the
// same first-win tie-break. Only the non-aged path pays the SSTF distance
// pass.
func (m *sstfMirror) pick(entries []*mirrorEntry, pos int64, t sim.Time, skip *mirrorEntry) *mirrorEntry {
	var oldest *mirrorEntry
	oi := 0
	for i, p := range entries {
		if p == skip || p.req.Canceled() {
			continue
		}
		oldest, oi = p, i
		break
	}
	if oldest == nil {
		return nil
	}
	if m.prof.AgeLimit > 0 && t.Sub(oldest.at) > m.prof.AgeLimit {
		return oldest
	}
	var best *mirrorEntry
	bestDist := int64(1) << 62
	for _, p := range entries[oi:] {
		if p == skip || p.req.Canceled() {
			continue
		}
		if d := absDist(p.off, pos); d < bestDist {
			best, bestDist = p, d
		}
	}
	return best
}

// drainTime returns the predicted time until the mirrored queue empties.
func (m *sstfMirror) drainTime() time.Duration {
	return m.replay(0, 0, true)
}

// waitFor returns the predicted delay until a candidate IO at (off, sz)
// would start service if submitted now — it competes for SSTF slots like
// any queued IO.
func (m *sstfMirror) waitFor(off int64, sz int) time.Duration {
	return m.replay(off, sz, false)
}

func (m *sstfMirror) replay(off int64, sz int, drain bool) time.Duration {
	now := m.eng.Now()
	t := now
	pos := m.headPos
	if m.inService != nil {
		t = m.svcEnd
		if t < now {
			t = now
		}
		pos = m.inService.end
	}
	rest := m.scratch[:0]
	for _, p := range m.pending {
		if p != m.inService && !p.req.Canceled() {
			rest = append(rest, p)
		}
	}
	m.scratch = rest[:0] // keep the grown backing array for the next replay
	ageLimit := m.prof.AgeLimit
	for len(rest) > 0 {
		p := m.pick(rest, pos, t, nil)
		aged := ageLimit > 0 && t.Sub(p.at) > ageLimit
		if !drain && !aged && absDist(off, pos) < absDist(p.off, pos) {
			// No starving entry outranks the candidate, and the
			// candidate is SSTF-closest: it wins the next slot.
			return t.Sub(now)
		}
		t = t.Add(m.svcTime(pos, p.off, p.sz))
		pos = p.end
		for i, q := range rest {
			if q == p {
				if i == 0 {
					// Aged FIFO consumption pops the front; avoid the
					// memmove.
					rest = rest[1:]
				} else {
					rest = append(rest[:i], rest[i+1:]...)
				}
				break
			}
		}
	}
	return t.Sub(now)
}

func absDist(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
