package core

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

func newThroughputRig(t *testing.T) (*sim.Engine, *ThroughputSLO) {
	t.Helper()
	eng := sim.NewEngine()
	dev := &stubDevice{eng: eng, delay: 100 * time.Microsecond}
	return eng, NewThroughputSLO(eng, &Vanilla{Dev: dev}, DefaultOptions())
}

func submitN(eng *sim.Engine, ts *ThroughputSLO, proc, n int) (ok, busy int) {
	for i := 0; i < n; i++ {
		req := &blockio.Request{Op: blockio.Read, Offset: int64(i) * 4096, Size: 4096, Proc: proc}
		ts.SubmitSLO(req, func(err error) {
			if IsBusy(err) {
				busy++
			} else {
				ok++
			}
		})
	}
	eng.Run()
	return ok, busy
}

func TestThroughputUncontractedUnlimited(t *testing.T) {
	eng, ts := newThroughputRig(t)
	ok, busy := submitN(eng, ts, 1, 1000)
	if busy != 0 || ok != 1000 {
		t.Fatalf("uncontracted tenant throttled: ok=%d busy=%d", ok, busy)
	}
}

func TestThroughputBurstThenReject(t *testing.T) {
	eng, ts := newThroughputRig(t)
	ts.SetContract(7, 100, 10) // 100 IOPS, burst 10
	ok, busy := submitN(eng, ts, 7, 50)
	if ok != 10 {
		t.Fatalf("burst allowed %d, want exactly 10", ok)
	}
	if busy != 40 {
		t.Fatalf("rejected %d, want 40", busy)
	}
}

func TestThroughputRefills(t *testing.T) {
	eng, ts := newThroughputRig(t)
	ts.SetContract(7, 100, 10)
	submitN(eng, ts, 7, 10)            // drain the burst
	eng.RunFor(100 * time.Millisecond) // refills 10 tokens at 100 IOPS
	ok, busy := submitN(eng, ts, 7, 10)
	if ok != 10 || busy != 0 {
		t.Fatalf("after refill: ok=%d busy=%d", ok, busy)
	}
}

func TestThroughputSustainedRate(t *testing.T) {
	eng, ts := newThroughputRig(t)
	ts.SetContract(7, 200, 5)
	okTotal := 0
	eng.NewTicker(time.Millisecond, func() {
		req := &blockio.Request{Op: blockio.Read, Offset: 0, Size: 4096, Proc: 7}
		ts.SubmitSLO(req, func(err error) {
			if err == nil {
				okTotal++
			}
		})
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	// Offered 1000 IOPS; contracted 200: ~400 accepted over 2s (+burst).
	if okTotal < 350 || okTotal > 450 {
		t.Fatalf("sustained accepts = %d over 2s at 200 IOPS contract", okTotal)
	}
}

func TestThroughputBusyCarriesWaitHint(t *testing.T) {
	eng, ts := newThroughputRig(t)
	ts.SetContract(7, 100, 1)
	var errs []error
	for i := 0; i < 2; i++ {
		req := &blockio.Request{Op: blockio.Read, Offset: 0, Size: 4096, Proc: 7}
		ts.SubmitSLO(req, func(err error) { errs = append(errs, err) })
	}
	eng.Run()
	// The EBUSY (2µs syscall) lands before the accepted IO's completion.
	if len(errs) != 2 || !IsBusy(errs[0]) || errs[1] != nil {
		t.Fatalf("errs = %v", errs)
	}
	be := errs[0].(*BusyError)
	// Next token at 100 IOPS is ~10ms away.
	if be.PredictedWait < 5*time.Millisecond || be.PredictedWait > 15*time.Millisecond {
		t.Fatalf("wait hint %v, want ≈10ms", be.PredictedWait)
	}
}

func TestThroughputContractRemoval(t *testing.T) {
	eng, ts := newThroughputRig(t)
	ts.SetContract(7, 1, 1)
	ts.SetContract(7, 0, 0) // remove
	ok, busy := submitN(eng, ts, 7, 100)
	if busy != 0 || ok != 100 {
		t.Fatalf("removed contract still throttles: ok=%d busy=%d", ok, busy)
	}
	if ts.Remaining(7) != -1 {
		t.Fatal("Remaining for uncontracted proc should be -1")
	}
}

func TestThroughputRemainingPeeks(t *testing.T) {
	eng, ts := newThroughputRig(t)
	ts.SetContract(7, 100, 10)
	if got := ts.Remaining(7); got != 10 {
		t.Fatalf("initial tokens %v", got)
	}
	submitN(eng, ts, 7, 4)
	got := ts.Remaining(7)
	if got < 5.9 || got > 6.5 {
		t.Fatalf("after 4 takes: %v tokens", got)
	}
}
