package core

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/oscache"
	"mittos/internal/sim"
)

type cacheRig struct {
	eng   *sim.Engine
	cache *oscache.Cache
	mitt  *MittCache
	lower *MittNoop
	disk  *disk.Disk
	ids   blockio.IDGen
}

func newCacheRig(t *testing.T, capPages int) *cacheRig {
	t.Helper()
	eng := sim.NewEngine()
	dcfg := disk.DefaultConfig()
	d := disk.New(eng, dcfg, sim.NewRNG(41, t.Name()))
	nop := iosched.NewNoop(eng, d)
	prof := disk.ProfileTwin(dcfg, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	lower := NewMittNoop(eng, nop, prof, DefaultOptions())
	ccfg := oscache.DefaultConfig()
	ccfg.CapacityPages = capPages
	cache := oscache.New(eng, ccfg, nop)
	// Smallest possible IO latency below: a sequential 4KB disk read.
	mitt := NewMittCache(eng, cache, lower, 300*time.Microsecond, DefaultOptions())
	return &cacheRig{eng: eng, cache: cache, mitt: mitt, lower: lower, disk: d}
}

func (r *cacheRig) read(off int64, size int, deadline time.Duration, cb func(error)) *blockio.Request {
	req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Read, Offset: off,
		Size: size, Deadline: deadline}
	r.mitt.SubmitSLO(req, cb)
	return req
}

func TestMittCacheHitServedFast(t *testing.T) {
	r := newCacheRig(t, 1000)
	r.cache.Warm(0, 4096)
	var lat time.Duration
	var err error = blockio.ErrBusy
	start := r.eng.Now()
	r.read(0, 4096, 100*time.Microsecond, func(e error) {
		err = e
		lat = r.eng.Now().Sub(start)
	})
	r.eng.Run()
	if err != nil {
		t.Fatalf("cache hit rejected: %v", err)
	}
	if lat > time.Millisecond {
		t.Fatalf("hit latency %v", lat)
	}
}

func TestMittCacheContentionMissRejected(t *testing.T) {
	// §4.4: tiny deadline (in-memory expectation) + page swapped out under
	// contention ⇒ EBUSY, and the data is swapped back in behind the error.
	r := newCacheRig(t, 1000)
	r.cache.Warm(0, 4096)
	r.cache.EvictRange(0, 4096) // memory-space contention
	var err error
	r.read(0, 4096, 100*time.Microsecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("contention miss not rejected: %v", err)
	}
	// Background swap-in must have repopulated the page.
	if !r.cache.Resident(0, 4096) {
		t.Fatal("no background swap-in after EBUSY")
	}
}

func TestMittCacheFirstAccessNotRejected(t *testing.T) {
	// A cold first access is not memory contention: even with a tiny
	// deadline, MittCache must not signal EBUSY for it (§4.4). The miss
	// propagates to the IO layer, which accepts (the disk is idle).
	r := newCacheRig(t, 1000)
	var err error = blockio.ErrBusy
	r.read(0, 4096, 100*time.Microsecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("cold miss got %v; first-time access must not be EBUSY", err)
	}
}

func TestMittCacheMissPropagatesDeadlineToIOLayer(t *testing.T) {
	// With the disk made busy, a cold miss with a generous deadline is
	// still rejected — by the IO layer below, not the cache.
	r := newCacheRig(t, 1000)
	rng := sim.NewRNG(5, "noise")
	for i := 0; i < 10; i++ {
		req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Read,
			Offset: rng.Int63n(900 << 30), Size: 4096}
		r.lower.SubmitSLO(req, func(error) {})
	}
	var err error
	r.read(500<<30, 4096, 10*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("busy-disk miss not rejected by the IO layer: %v", err)
	}
	_, rejCache := r.mitt.Counts()
	if rejCache != 0 {
		t.Fatal("rejection attributed to the cache; should come from the IO layer")
	}
}

func TestMittCacheMissPopulatesCache(t *testing.T) {
	r := newCacheRig(t, 1000)
	var err error = blockio.ErrBusy
	r.read(8192, 4096, 50*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("miss read failed: %v", err)
	}
	if !r.cache.Resident(8192, 4096) {
		t.Fatal("page not cached after miss read")
	}
	// Second read: a hit (no disk IO).
	served := r.disk.Served()
	r.read(8192, 4096, 50*time.Millisecond, func(error) {})
	r.eng.Run()
	if r.disk.Served() != served {
		t.Fatal("second read hit the disk")
	}
}

func TestMittCacheAddrCheck(t *testing.T) {
	r := newCacheRig(t, 1000)
	// Resident: OK.
	r.cache.Warm(0, 4096)
	if err := r.mitt.AddrCheck(0, 4096, 100*time.Microsecond); err != nil {
		t.Fatalf("resident addrcheck: %v", err)
	}
	// Cold page: OK (first access).
	if err := r.mitt.AddrCheck(1<<20, 4096, 100*time.Microsecond); err != nil {
		t.Fatalf("cold addrcheck: %v", err)
	}
	// Evicted page with in-memory deadline: EBUSY.
	r.cache.EvictRange(0, 4096)
	err := r.mitt.AddrCheck(0, 4096, 100*time.Microsecond)
	if !IsBusy(err) {
		t.Fatalf("evicted addrcheck: %v", err)
	}
	// Evicted page with a disk-tolerant deadline: OK (the app will fault
	// and wait).
	if err := r.mitt.AddrCheck(0, 4096, 50*time.Millisecond); err != nil {
		t.Fatalf("patient addrcheck: %v", err)
	}
	r.eng.Run()
}

func TestMittCacheWritesAbsorbed(t *testing.T) {
	r := newCacheRig(t, 1000)
	var err error = blockio.ErrBusy
	var lat time.Duration
	start := r.eng.Now()
	req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Write, Offset: 0, Size: 4096}
	r.mitt.SubmitSLO(req, func(e error) {
		err = e
		lat = r.eng.Now().Sub(start)
	})
	r.eng.Run()
	if err != nil {
		t.Fatalf("write got %v", err)
	}
	if lat > time.Millisecond {
		t.Fatalf("write latency %v; should be absorbed", lat)
	}
}

func TestMittCacheBalloonCausesRejections(t *testing.T) {
	// End-to-end §6 scenario: warm working set, another tenant balloons
	// memory away, small-deadline reads start bouncing with EBUSY.
	r := newCacheRig(t, 1000)
	ps := int64(4096)
	for p := int64(0); p < 500; p++ {
		r.cache.Warm(p*ps, 4096)
	}
	r.cache.Balloon(960) // capacity 40 pages: evicts most of the working set
	busy := 0
	for p := int64(0); p < 500; p += 10 {
		r.read(p*ps, 4096, 100*time.Microsecond, func(e error) {
			if IsBusy(e) {
				busy++
			}
		})
		r.eng.Run()
	}
	if busy == 0 {
		t.Fatal("ballooning produced no EBUSY")
	}
	// The background swap-ins kept repopulating the cache: re-reading the
	// most recently rejected page must now hit.
	var err error = blockio.ErrBusy
	r.read(490*ps, 4096, 100*time.Microsecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("re-read after swap-in got %v", err)
	}
}
