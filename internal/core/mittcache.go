package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/metrics"
	"mittos/internal/oscache"
	"mittos/internal/sim"
)

// MittCache is MittOS integrated with OS cache management (§4.4).
//
// For read()-path IOs it walks the page tables: fully-resident reads are
// served at memory speed; misses propagate the deadline to the IO layer
// below, with one extra check — if the deadline is smaller than the
// smallest possible device IO latency, the user expected an in-memory read
// and EBUSY is returned immediately. For mmap-path accesses, AddrCheck
// models the paper's addrcheck() system call (an 82ns page-table walk).
//
// Two §4.4 caveats are implemented: EBUSY signals memory-space contention
// (pages that were resident and got swapped out), never first-time cold
// accesses; and after EBUSY the data continues to be swapped in, in the
// background, so the cache stays warm for applications that expect memory
// residency.
type MittCache struct {
	eng   *sim.Engine
	cache *oscache.Cache
	lower Target
	// minIO is the smallest possible IO latency of the layer below; a
	// deadline under it means "I expect a cache hit".
	minIO time.Duration
	opt   Options
	dec   decider

	accepted uint64
	rejected uint64

	replies  busyReplies
	hitFree  []*cacheHitOp
	missFree []*cacheMissOp

	rec *metrics.Recorder
}

// cacheHitOp is the pooled completion wrapper for write-absorb and hit
// paths (prev + onDone(nil)).
type cacheHitOp struct {
	m      *MittCache
	prev   func(*blockio.Request)
	onDone func(error)
	fn     func(*blockio.Request) // pre-bound op.done
}

func (op *cacheHitOp) done(r *blockio.Request) {
	m, prev, onDone := op.m, op.prev, op.onDone
	op.prev, op.onDone = nil, nil
	m.hitFree = append(m.hitFree, op)
	if prev != nil {
		prev(r)
	}
	onDone(nil)
}

// wrapHit chains the pooled completion wrapper onto req.
func (m *MittCache) wrapHit(req *blockio.Request, onDone func(error)) {
	var op *cacheHitOp
	if n := len(m.hitFree); n > 0 {
		op = m.hitFree[n-1]
		m.hitFree = m.hitFree[:n-1]
	} else {
		op = &cacheHitOp{m: m}
		op.fn = op.done
	}
	op.prev, op.onDone = req.OnComplete, onDone
	req.OnComplete = op.fn
}

func (m *MittCache) submitHit(req *blockio.Request, onDone func(error)) {
	m.wrapHit(req, onDone)
	m.cache.Submit(req)
}

// submitResident is submitHit for a read whose residency the admission
// check above just verified: the cache can skip its duplicate page-table
// walk (the SubmitSLO fast path would otherwise walk every page twice).
func (m *MittCache) submitResident(req *blockio.Request, onDone func(error)) {
	m.wrapHit(req, onDone)
	m.cache.SubmitResident(req)
}

// cacheMissOp is the pooled lower-layer callback for the miss path: warm
// the cache on success, then hand the verdict up.
type cacheMissOp struct {
	m      *MittCache
	req    *blockio.Request
	onDone func(error)
	fn     func(error) // pre-bound op.done
}

func (op *cacheMissOp) done(err error) {
	m, req, onDone := op.m, op.req, op.onDone
	op.req, op.onDone = nil, nil
	m.missFree = append(m.missFree, op)
	if err == nil {
		m.cache.Warm(req.Offset, req.Size)
	}
	onDone(err)
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (m *MittCache) SetRecorder(rec *metrics.Recorder) { m.rec = rec }

// NewMittCache builds the layer over a page cache and the (Mitt-wrapped)
// IO path below it. minIO is the smallest possible IO latency of the
// backing device (e.g. ~100µs for flash, ~300µs sequential disk).
func NewMittCache(eng *sim.Engine, cache *oscache.Cache, lower Target, minIO time.Duration, opt Options) *MittCache {
	m := &MittCache{eng: eng, cache: cache, lower: lower, minIO: minIO, opt: opt}
	m.dec.thop = opt.Thop
	m.dec.shadow = opt.Shadow
	return m
}

// SetMiscalibration distorts the layer's miss-cost estimate (minIO) to
// minIO×scale + bias (scale 0 = no scaling; (0,0) restores it). MittCache's
// residency walk is exact, so this is the only prediction it can get wrong.
func (m *MittCache) SetMiscalibration(bias time.Duration, scale float64) {
	m.dec.misBias, m.dec.misScale = bias, scale
}

// Accuracy returns shadow-mode counters. MittCache predictions are exact
// page-table lookups ("there is no accuracy issues", §4.4), so FP/FN stay
// zero; the method exists for interface symmetry and tests.
func (m *MittCache) Accuracy() Accuracy { return m.dec.acc }

// Counts returns accepted/rejected totals.
func (m *MittCache) Counts() (accepted, rejected uint64) { return m.accepted, m.rejected }

// Resident reports whether [off, off+size) is fully cached.
func (m *MittCache) Resident(off int64, size int) bool { return m.cache.Resident(off, size) }

// AddrCheck models the addrcheck(&buf, size, deadline) system call: a
// page-table walk before dereferencing an mmap-ed pointer. It returns nil
// when the application may proceed (data resident, or a miss it is willing
// to wait for) and EBUSY when the data was swapped out under memory
// contention and the deadline expects residency. The walk costs
// cache.AddrCheckCost() (82ns) — negligible, so it is not modeled as an
// event, matching the paper's measurement.
func (m *MittCache) AddrCheck(off int64, size int, deadline time.Duration) error {
	if m.cache.Resident(off, size) {
		return nil
	}
	missCost := m.dec.adjust(m.minIO)
	if deadline > blockio.NoDeadline && deadline < missCost && m.cache.WasEverResident(off, size) {
		m.rejected++
		// addrcheck has no request descriptor; only the counter moves.
		m.rec.Incr(metrics.RMittCache, metrics.CRejected)
		// Keep swapping the data in behind the EBUSY (§4.4).
		m.cache.Prefetch(off, size, blockio.ClassBestEffort, 4, -1)
		return &BusyError{PredictedWait: missCost}
	}
	return nil
}

// SubmitSLO implements Target for the read()-with-deadline path.
func (m *MittCache) SubmitSLO(req *blockio.Request, onDone func(error)) {
	now := m.eng.Now()
	if req.SubmitTime == 0 {
		req.SubmitTime = now
	}
	if req.Op == blockio.Write {
		// Writes are absorbed by the cache; no deadline semantics (§7.8.6).
		m.submitHit(req, onDone)
		return
	}

	if m.cache.Resident(req.Offset, req.Size) {
		m.accepted++
		m.rec.Incr(metrics.RMittCache, metrics.CAccepted)
		m.submitResident(req, onDone) // hit path, residency just verified
		return
	}

	// Miss. The in-memory-expectation check (§4.4): a deadline below any
	// possible IO latency plus evidence of prior residency = memory-space
	// contention → EBUSY, with background swap-in.
	hasSLO := req.Deadline > blockio.NoDeadline
	missCost := m.dec.adjust(m.minIO)
	if hasSLO && req.Deadline < missCost && !m.dec.shadow &&
		m.cache.WasEverResident(req.Offset, req.Size) {
		m.rejected++
		m.rec.Rejected(metrics.RMittCache, req, missCost, false)
		m.cache.Prefetch(req.Offset, req.Size, req.Class, req.Priority, req.Proc)
		m.replies.deliver(m.eng, m.opt.SyscallCost, onDone, &BusyError{PredictedWait: missCost})
		return
	}

	// Propagate the deadline to the IO layer below (§4.4), reading whole
	// pages and populating the cache on success.
	m.accepted++
	m.rec.Incr(metrics.RMittCache, metrics.CAccepted)
	var op *cacheMissOp
	if n := len(m.missFree); n > 0 {
		op = m.missFree[n-1]
		m.missFree = m.missFree[:n-1]
	} else {
		op = &cacheMissOp{m: m}
		op.fn = op.done
	}
	op.req, op.onDone = req, onDone
	m.lower.SubmitSLO(req, op.fn)
}
