package core

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

// noopRig wires engine → noop scheduler → disk, with a profiled MittNoop.
type noopRig struct {
	eng  *sim.Engine
	disk *disk.Disk
	nop  *iosched.Noop
	mitt *MittNoop
	ids  blockio.IDGen
}

func newNoopRig(t *testing.T, opt Options) *noopRig {
	t.Helper()
	eng := sim.NewEngine()
	cfg := disk.DefaultConfig()
	d := disk.New(eng, cfg, sim.NewRNG(11, t.Name()))
	nop := iosched.NewNoop(eng, d)
	prof := disk.ProfileTwin(cfg, 42, disk.ProfilerOptions{Buckets: 32, Tries: 6, ProbeSize: 4096})
	return &noopRig{eng: eng, disk: d, nop: nop, mitt: NewMittNoop(eng, nop, prof, opt)}
}

func (r *noopRig) read(off int64, deadline time.Duration, cb func(error)) *blockio.Request {
	req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Read, Offset: off,
		Size: 4096, Deadline: deadline}
	r.mitt.SubmitSLO(req, cb)
	return req
}

func TestMittNoopIdleDiskAccepts(t *testing.T) {
	r := newNoopRig(t, DefaultOptions())
	var err error = blockio.ErrBusy
	r.read(100<<30, 20*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("idle disk rejected: %v", err)
	}
	if acc, rej := r.mitt.Counts(); acc != 1 || rej != 0 {
		t.Fatalf("counts = %d/%d", acc, rej)
	}
}

func TestMittNoopBusyDiskRejectsFast(t *testing.T) {
	r := newNoopRig(t, DefaultOptions())
	// Pile up enough reads to push the predicted wait past 20ms.
	for i := 0; i < 10; i++ {
		r.read(int64(i)*(80<<30), 0, func(error) {})
	}
	start := r.eng.Now()
	var err error
	var rejectedAt sim.Time
	r.read(500<<30, 20*time.Millisecond, func(e error) { err = e; rejectedAt = r.eng.Now() })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("expected EBUSY, got %v", err)
	}
	if rejectedAt.Sub(start) > time.Millisecond {
		t.Fatalf("EBUSY took %v; must be instant (<5µs per §3.3)", rejectedAt.Sub(start))
	}
	var be *BusyError
	if !asBusy(err, &be) || be.PredictedWait < 20*time.Millisecond {
		t.Fatalf("BusyError wait = %v, want > deadline", be.PredictedWait)
	}
}

func asBusy(err error, out **BusyError) bool {
	be, ok := err.(*BusyError)
	if ok {
		*out = be
	}
	return ok
}

func TestMittNoopNoDeadlinePassesThrough(t *testing.T) {
	r := newNoopRig(t, DefaultOptions())
	for i := 0; i < 20; i++ {
		r.read(int64(i)*(40<<30), 0, func(error) {})
	}
	done := 0
	r.read(900<<30, 0, func(e error) {
		if e != nil {
			t.Fatalf("SLO-less IO got %v", e)
		}
		done++
	})
	r.eng.Run()
	if done != 1 {
		t.Fatal("SLO-less IO did not complete")
	}
}

func TestMittNoopRejectedIONeverReachesDisk(t *testing.T) {
	r := newNoopRig(t, DefaultOptions())
	for i := 0; i < 10; i++ {
		r.read(int64(i)*(80<<30), 0, func(error) {})
	}
	served := r.disk.Served
	var err error
	r.read(500<<30, time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("expected EBUSY, got %v", err)
	}
	if r.disk.Served() != 10 {
		t.Fatalf("disk served %d IOs, want 10 (rejected IO must not queue)", r.disk.Served())
	}
	_ = served
}

func TestMittNoopPredictionTracksQueue(t *testing.T) {
	r := newNoopRig(t, DefaultOptions())
	if w := r.mitt.PredictWait(); w != 0 {
		t.Fatalf("idle wait = %v", w)
	}
	r.read(100<<30, 0, func(error) {})
	r.read(500<<30, 0, func(error) {})
	w := r.mitt.PredictWait()
	if w < 5*time.Millisecond {
		t.Fatalf("wait after 2 random reads = %v, want several ms", w)
	}
	r.eng.Run()
	if w2 := r.mitt.PredictWait(); w2 != 0 {
		t.Fatalf("wait after drain = %v", w2)
	}
}

func TestMittNoopCalibrationKeepsPredictionsAccurate(t *testing.T) {
	// Shadow-mode accuracy under a bursty open-loop workload shaped like
	// the §7.6 trace replays (probes with idle gaps plus periodic bursts):
	// mean |actual−predicted| wait error must stay under the paper's 3ms
	// and the FP+FN rate must stay in the low single digits.
	opt := DefaultOptions()
	opt.Shadow = true
	r := newNoopRig(t, opt)
	// Deadline at ≈p95 of this workload's latency, as the paper prescribes.
	const deadline = 20 * time.Millisecond
	rng := sim.NewRNG(9, "offsets")
	r.eng.NewTicker(25*time.Millisecond, func() {
		r.read(rng.Int63n(900<<30), deadline, func(error) {})
	})
	r.eng.NewTicker(300*time.Millisecond, func() {
		for i := 0; i < 4; i++ {
			r.read(rng.Int63n(900<<30), deadline, func(error) {})
		}
	})
	r.eng.RunUntil(sim.Time(12 * sim.Second))
	acc := r.mitt.Accuracy()
	if acc.Total() < 400 {
		t.Fatalf("verdicted %d IOs, want ≥ 400", acc.Total())
	}
	if acc.MeanAbsDiff() > 3*time.Millisecond {
		t.Fatalf("mean abs prediction error %v > 3ms", acc.MeanAbsDiff())
	}
	if acc.InaccuracyRate() > 0.04 {
		t.Fatalf("inaccuracy %.2f%% too high", 100*acc.InaccuracyRate())
	}
}

func TestMittNoopSaturatedQueueErrorBounded(t *testing.T) {
	// Under a permanently backlogged closed loop (worst case for SSTF
	// position prediction — future arrivals keep jumping ahead) the error
	// may grow, but must stay bounded near one seek time.
	opt := DefaultOptions()
	opt.Shadow = true
	r := newNoopRig(t, opt)
	rng := sim.NewRNG(9, "offsets")
	var issue func(i int)
	issue = func(i int) {
		if i == 0 {
			return
		}
		r.read(rng.Int63n(900<<30), 15*time.Millisecond, func(error) { issue(i - 1) })
	}
	for k := 0; k < 4; k++ {
		issue(100)
	}
	r.eng.Run()
	acc := r.mitt.Accuracy()
	if acc.MeanAbsDiff() > 12*time.Millisecond {
		t.Fatalf("saturated-queue mean abs error %v > 12ms", acc.MeanAbsDiff())
	}
}

func TestMittNoopPrecisionAblation(t *testing.T) {
	// The naive FIFO TnextFree predictor (no SSTF modeling) must be
	// visibly worse — the §7.6 "without our precision improvements"
	// comparison.
	run := func(precise bool) time.Duration {
		opt := DefaultOptions()
		opt.Shadow = true
		opt.Naive = !precise
		opt.Calibrate = precise
		r := newNoopRig(t, opt)
		rng := sim.NewRNG(9, "offsets")
		var issue func(i int)
		issue = func(i int) {
			if i == 0 {
				return
			}
			r.read(rng.Int63n(900<<30), 15*time.Millisecond, func(error) { issue(i - 1) })
		}
		for k := 0; k < 4; k++ {
			issue(150)
		}
		r.eng.Run()
		return r.mitt.Accuracy().MeanAbsDiff()
	}
	with := run(true)
	without := run(false)
	if without <= with {
		t.Fatalf("precision ablation: precise=%v naive=%v; expected naive worse", with, without)
	}
}

func TestMittNoopShadowModeNeverRejects(t *testing.T) {
	opt := DefaultOptions()
	opt.Shadow = true
	r := newNoopRig(t, opt)
	for i := 0; i < 10; i++ {
		r.read(int64(i)*(80<<30), 0, func(error) {})
	}
	var err error = blockio.ErrBusy
	req := r.read(500<<30, time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("shadow mode rejected: %v", err)
	}
	if !req.ShadowBusy {
		t.Fatal("shadow verdict not recorded on the descriptor")
	}
}

func TestMittNoopErrorInjectionFalseNegative(t *testing.T) {
	r := newNoopRig(t, DefaultOptions())
	r.mitt.SetErrorInjection(1.0, 0, sim.NewRNG(3, "inj"))
	for i := 0; i < 10; i++ {
		r.read(int64(i)*(80<<30), 0, func(error) {})
	}
	var err error = blockio.ErrBusy
	r.read(500<<30, time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("100%% FN injection still rejected: %v", err)
	}
}

func TestMittNoopErrorInjectionFalsePositive(t *testing.T) {
	r := newNoopRig(t, DefaultOptions())
	r.mitt.SetErrorInjection(0, 1.0, sim.NewRNG(3, "inj"))
	var err error
	r.read(100<<30, 20*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("100%% FP injection accepted an idle-disk IO: %v", err)
	}
}

func TestMittNoopTailCutUnderNoise(t *testing.T) {
	// The headline behaviour: with a noisy neighbor, deadline-carrying
	// reads either finish fast or get EBUSY fast — the wait-tail is gone.
	mk := func(useSLO bool) (*stats.Sample, int) {
		opt := DefaultOptions()
		r := newNoopRig(t, opt)
		rng := sim.NewRNG(17, "noise-offsets")
		// Noisy neighbor: a burst of ten 1MB reads every 200ms.
		r.eng.NewTicker(200*time.Millisecond, func() {
			for i := 0; i < 10; i++ {
				req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Read,
					Offset: rng.Int63n(900 << 30), Size: 1 << 20, Proc: 99}
				r.mitt.SubmitSLO(req, func(error) {})
			}
		})
		lat := stats.NewSample(0)
		busy := 0
		deadline := time.Duration(0)
		if useSLO {
			deadline = 15 * time.Millisecond
		}
		probe := func() {
			start := r.eng.Now()
			req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Read,
				Offset: rng.Int63n(900 << 30), Size: 4096, Deadline: deadline}
			r.mitt.SubmitSLO(req, func(e error) {
				if IsBusy(e) {
					busy++
					return
				}
				lat.Add(r.eng.Now().Sub(start))
			})
		}
		r.eng.NewTicker(20*time.Millisecond, probe)
		r.eng.RunUntil(sim.Time(3 * sim.Second))
		return lat, busy
	}
	base, baseBusy := mk(false)
	mitt, mittBusy := mk(true)
	if baseBusy != 0 {
		t.Fatal("no-SLO run saw EBUSY")
	}
	if mittBusy == 0 {
		t.Fatal("SLO run never rejected under noise")
	}
	if mitt.Percentile(99) >= base.Percentile(99) {
		t.Fatalf("MittNoop p99 %v not better than Base %v",
			mitt.Percentile(99), base.Percentile(99))
	}
	// Accepted IOs should essentially never blow through the deadline by a
	// wide margin (small FN tail allowed).
	if frac := mitt.FractionAbove(40 * time.Millisecond); frac > 0.02 {
		t.Fatalf("%.1f%% of accepted IOs exceeded 40ms", 100*frac)
	}
}

func TestProfileStalenessDetection(t *testing.T) {
	// §8.1: "hardware performance can degrade over time ... latency
	// profiles must be recollected; a sampling runtime method can be used
	// to catch a significant deviation." Degrade the disk 1.6× mid-run:
	// the calibration residual crosses the staleness threshold; after
	// re-profiling the degraded device, it settles again.
	r := newNoopRig(t, DefaultOptions())
	rng := sim.NewRNG(23, "stale")
	probe := func(n int) {
		for i := 0; i < n; i++ {
			r.read(rng.Int63n(900<<30), 0, func(error) {})
			r.eng.Run()
		}
	}
	probe(100)
	if r.mitt.ProfileStale() {
		t.Fatalf("fresh profile flagged stale (drift %v)", r.mitt.ProfileDrift())
	}
	// The drive ages.
	r.disk.SetDegradation(1.6)
	probe(100)
	if !r.mitt.ProfileStale() {
		t.Fatalf("degraded device not detected (drift %v)", r.mitt.ProfileDrift())
	}
	// Recollect the profile against the aged device (a degraded twin).
	cfg := disk.DefaultConfig()
	cfg.SeekBase = time.Duration(1.6 * float64(cfg.SeekBase))
	cfg.SeekMax = time.Duration(1.6 * float64(cfg.SeekMax))
	cfg.TransferPerKB = time.Duration(1.6 * float64(cfg.TransferPerKB))
	cfg.SeqCost = time.Duration(1.6 * float64(cfg.SeqCost))
	fresh := disk.ProfileTwin(cfg, 43, disk.ProfilerOptions{Buckets: 32, Tries: 6, ProbeSize: 4096})
	r.mitt.Reprofile(fresh)
	probe(100)
	if r.mitt.ProfileStale() {
		t.Fatalf("re-profiled predictor still stale (drift %v)", r.mitt.ProfileDrift())
	}
}

func TestDegradationInvalidPanics(t *testing.T) {
	r := newNoopRig(t, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.disk.SetDegradation(0)
}
