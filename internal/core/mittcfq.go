package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// MittCFQ is MittOS integrated with the CFQ scheduler (§4.2).
//
// Admission is O(P), not O(N): the layer keeps a running predicted-total-IO
// time per process node, so the wait estimate for an arriving IO is the
// device drain time plus the totals of the nodes CFQ will service first.
//
// Because CFQ can accept an IO and later push it back behind
// newly-arriving higher-priority IOs, MittCFQ additionally maintains the
// paper's tolerable-time hash table: accepted deadline-carrying IOs are
// bucketed by how much extra delay they can still absorb (1ms buckets).
// When a higher-priority IO is admitted, affected entries are re-bucketed;
// entries whose tolerable time goes negative are cancelled out of the CFQ
// queues and their owners receive EBUSY.
type MittCFQ struct {
	eng   *sim.Engine
	sched *iosched.CFQ
	prof  *disk.Profile
	opt   Options
	dec   decider

	// mirror models the device-resident IOs (the dispatched quantum) with
	// the same SSTF replay MittNoop uses; CFQ-queued IOs are accounted via
	// the per-node totals instead.
	mirror *sstfMirror

	// nodeTotal is the predicted total IO time per process node (§4.2:
	// "MittCFQ keeps track of the predicted total IO time of each process
	// node ... reducing O(N) to O(P)").
	nodeTotal map[int]time.Duration

	// Tolerable-time hash table: key = tolerable milliseconds.
	buckets map[int64][]*cfqEntry
	entries map[*blockio.Request]*cfqEntry
	// order is the insertion-ordered view of entries. Charging bumped
	// entries must walk them in a deterministic order — ranging over the
	// entries map would randomize bucket-list and cancellation order and
	// with it the simulation's event sequence.
	order []*cfqEntry

	accepted  uint64
	rejected  uint64 // at admission
	cancelled uint64 // late EBUSY via the tolerable-time table

	replies  busyReplies
	opFree   []*cfqOp
	dispFree []*cfqDispatch

	rec *metrics.Recorder
}

// cfqOp is the pooled admission-side completion context. Its entry pointer
// stays valid for the op's whole life: cfqEntry is deliberately not pooled
// (a cancelled entry's late-completion guard may be consulted after the
// entry left the table).
type cfqOp struct {
	m       *MittCFQ
	entry   *cfqEntry
	hasSLO  bool
	rawBusy bool
	wait    time.Duration
	svc     time.Duration
	prev    func(*blockio.Request)
	onDone  func(error)
	fn      func(*blockio.Request) // pre-bound op.done
}

func (op *cfqOp) done(r *blockio.Request) {
	m, entry, prev, onDone := op.m, op.entry, op.prev, op.onDone
	hasSLO, rawBusy, wait, svc := op.hasSLO, op.rawBusy, op.wait, op.svc
	op.entry, op.prev, op.onDone = nil, nil, nil
	m.opFree = append(m.opFree, op)
	if entry != nil && entry.done {
		// Cancelled late; EBUSY already delivered. (The scheduler drops
		// cancelled IOs before dispatch, so this should not fire.)
		return
	}
	if hasSLO && m.dec.shadow {
		actualWait := r.Latency() - svc
		if actualWait < 0 {
			actualWait = 0
		}
		m.dec.observe(rawBusy, wait, actualWait, r.Deadline)
	}
	if m.rec != nil {
		actualWait := r.Latency() - svc
		if actualWait < 0 {
			actualWait = 0
		}
		m.rec.Prediction(metrics.RMittCFQ, r, wait, actualWait)
	}
	err := r.Err
	if prev != nil {
		prev(r)
	}
	onDone(err)
}

// cfqDispatch is the pooled dispatch-side wrapper feeding the device mirror.
type cfqDispatch struct {
	m    *MittCFQ
	prev func(*blockio.Request)
	fn   func(*blockio.Request) // pre-bound d.done
}

func (d *cfqDispatch) done(r *blockio.Request) {
	m, prev := d.m, d.prev
	d.prev = nil
	m.dispFree = append(m.dispFree, d)
	m.mirror.complete(r)
	if prev != nil {
		prev(r)
	}
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (m *MittCFQ) SetRecorder(rec *metrics.Recorder) { m.rec = rec }

// cfqEntry is one accepted, still-cancellable, deadline-carrying IO.
type cfqEntry struct {
	req       *blockio.Request
	onDone    func(error)
	tolerable time.Duration
	bucket    int64
	class     blockio.Class
	prio      int
	svc       time.Duration
	done      bool
}

// NewMittCFQ builds the layer over a CFQ scheduler and a disk profile.
func NewMittCFQ(eng *sim.Engine, sched *iosched.CFQ, prof *disk.Profile, opt Options) *MittCFQ {
	m := &MittCFQ{
		eng: eng, sched: sched, prof: prof, opt: opt,
		mirror:    newSSTFMirror(eng, prof, opt.Calibrate),
		nodeTotal: make(map[int]time.Duration),
		buckets:   make(map[int64][]*cfqEntry),
		entries:   make(map[*blockio.Request]*cfqEntry),
	}
	m.dec.thop = opt.Thop
	m.dec.shadow = opt.Shadow
	sched.SetDispatchHook(m.onDispatch)
	sched.SetDropHook(func(req *blockio.Request) {
		// A request revoked by its owner (tied-request cancellation) was
		// discarded before dispatch: release its node charge and entry.
		if t := m.nodeTotal[req.Proc] - req.PredictedService; t > 0 {
			m.nodeTotal[req.Proc] = t
		} else {
			m.nodeTotal[req.Proc] = 0
		}
		if entry, ok := m.entries[req]; ok {
			m.dropEntry(entry)
		}
	})
	return m
}

// SetErrorInjection enables §7.7 fault injection.
func (m *MittCFQ) SetErrorInjection(fnRate, fpRate float64, rng *sim.RNG) {
	m.dec.injFN, m.dec.injFP, m.dec.injRNG = fnRate, fpRate, rng
}

// SetMiscalibration distorts every wait prediction to wait×scale + bias
// (scale 0 = no scaling; (0,0) restores the calibrated predictor).
func (m *MittCFQ) SetMiscalibration(bias time.Duration, scale float64) {
	m.dec.misBias, m.dec.misScale = bias, scale
}

// Accuracy returns shadow-mode counters.
func (m *MittCFQ) Accuracy() Accuracy { return m.dec.acc }

// Counts returns accepted / rejected-at-admission / late-cancelled totals.
func (m *MittCFQ) Counts() (accepted, rejected, cancelled uint64) {
	return m.accepted, m.rejected, m.cancelled
}

// PredictWait estimates the queueing delay an IO from proc at the given
// class would see right now: device drain + totals of nodes ahead + the
// proc's own queued IOs.
func (m *MittCFQ) PredictWait(proc int, class blockio.Class) time.Duration {
	wait := m.mirror.drainTime()
	for _, p := range m.sched.ProcsAheadOf(proc, class) {
		t := m.nodeTotal[p]
		// A node ahead can hold the device for at most its time slice per
		// round before this proc's node is served — part of
		// "understanding the queueing discipline of the target resource"
		// (§3.4).
		if slice := m.sched.NodeSlice(p); t > slice {
			t = slice
		}
		wait += t
	}
	wait += m.nodeTotal[proc]
	return wait
}

// SubmitSLO implements Target.
func (m *MittCFQ) SubmitSLO(req *blockio.Request, onDone func(error)) {
	now := m.eng.Now()
	if req.SubmitTime == 0 {
		req.SubmitTime = now
	}
	wait := m.dec.adjust(m.PredictWait(req.Proc, req.Class))
	svc := m.mirror.svcTime(m.mirror.headPos, req.Offset, req.Size)
	req.PredictedWait = wait
	req.PredictedService = svc

	hasSLO := req.Deadline > blockio.NoDeadline
	rawBusy := hasSLO && wait > m.dec.threshold(req.Deadline)
	if hasSLO {
		if m.dec.shadow {
			req.ShadowBusy = rawBusy
			if rawBusy {
				m.rec.ShadowBusy(metrics.RMittCFQ)
			}
		} else if m.dec.rejects(rawBusy) {
			m.rejected++
			m.rec.Rejected(metrics.RMittCFQ, req, wait, false)
			m.replies.deliver(m.eng, m.opt.SyscallCost, onDone, &BusyError{PredictedWait: wait})
			return
		}
	}

	m.accepted++
	m.rec.Admitted(metrics.RMittCFQ, req)
	m.nodeTotal[req.Proc] += svc

	var entry *cfqEntry
	if hasSLO && !m.dec.shadow {
		// Track the IO in the tolerable-time table until dispatch.
		entry = &cfqEntry{
			req: req, onDone: onDone,
			tolerable: m.dec.threshold(req.Deadline) - wait,
			class:     req.Class, prio: req.Priority, svc: svc,
		}
		entry.bucket = bucketOf(entry.tolerable)
		m.buckets[entry.bucket] = append(m.buckets[entry.bucket], entry)
		m.entries[req] = entry
		m.order = append(m.order, entry)
	}

	var op *cfqOp
	if n := len(m.opFree); n > 0 {
		op = m.opFree[n-1]
		m.opFree = m.opFree[:n-1]
	} else {
		op = &cfqOp{m: m}
		op.fn = op.done
	}
	op.entry, op.hasSLO, op.rawBusy, op.wait, op.svc = entry, hasSLO, rawBusy, wait, svc
	op.prev, op.onDone = req.OnComplete, onDone
	req.OnComplete = op.fn
	m.sched.Submit(req)

	// A newly accepted IO consumes the slack of queued IOs it will be
	// serviced ahead of.
	m.chargeBumpedEntries(req, svc)
}

// onDispatch fires when an IO leaves CFQ for the device: its predicted time
// moves from its node's total to the device mirror, and it stops being
// cancellable.
func (m *MittCFQ) onDispatch(req *blockio.Request) {
	svc := req.PredictedService
	if t := m.nodeTotal[req.Proc] - svc; t > 0 {
		m.nodeTotal[req.Proc] = t
	} else {
		m.nodeTotal[req.Proc] = 0
	}
	if entry, ok := m.entries[req]; ok {
		m.dropEntry(entry)
	}
	m.mirror.add(req)
	var d *cfqDispatch
	if n := len(m.dispFree); n > 0 {
		d = m.dispFree[n-1]
		m.dispFree = m.dispFree[:n-1]
	} else {
		d = &cfqDispatch{m: m}
		d.fn = d.done
	}
	d.prev = req.OnComplete
	req.OnComplete = d.fn
}

// chargeBumpedEntries implements the re-bucketing rule (§4.2): every queued
// entry that the new IO would be serviced ahead of loses `svc` of tolerable
// time; entries that go negative are cancelled with EBUSY. An entry is
// "bumped" when the newcomer outranks it (higher class or ionice priority)
// or when CFQ's round-robin currently schedules the newcomer's node ahead
// of the entry's — the same-priority variant of "accepted initially, but
// soon new IOs arrive and the deadlines of the earlier IOs can be violated
// as they are bumped to the back".
func (m *MittCFQ) chargeBumpedEntries(newReq *blockio.Request, svc time.Duration) {
	if len(m.entries) == 0 {
		return
	}
	var victims []*cfqEntry
	for _, entry := range m.order {
		if entry.req == newReq || entry.done || entry.req.Proc == newReq.Proc {
			continue
		}
		bumps := outranks(newReq.Class, newReq.Priority, entry.class, entry.prio)
		if !bumps && newReq.Class == entry.class {
			for _, p := range m.sched.ProcsAheadOf(entry.req.Proc, entry.class) {
				if p == newReq.Proc {
					bumps = true
					break
				}
			}
		}
		if !bumps {
			continue
		}
		m.rebucket(entry, entry.tolerable-svc)
		if entry.tolerable < 0 {
			victims = append(victims, entry)
		}
	}
	for _, v := range victims {
		m.cancel(v)
	}
}

// outranks reports whether (ca,pa) is scheduled ahead of (cb,pb): a higher
// class always wins; within a class, a numerically lower ionice priority.
func outranks(ca blockio.Class, pa int, cb blockio.Class, pb int) bool {
	if ca != cb {
		return ca.Rank() < cb.Rank()
	}
	return pa < pb
}

func bucketOf(d time.Duration) int64 {
	ms := d / time.Millisecond
	if d < 0 && d%time.Millisecond != 0 {
		ms--
	}
	return int64(ms)
}

func (m *MittCFQ) rebucket(e *cfqEntry, newTolerable time.Duration) {
	nb := bucketOf(newTolerable)
	if nb != e.bucket {
		m.removeFromBucket(e)
		e.bucket = nb
		m.buckets[nb] = append(m.buckets[nb], e)
	}
	e.tolerable = newTolerable
}

func (m *MittCFQ) removeFromBucket(e *cfqEntry) {
	list := m.buckets[e.bucket]
	for i, x := range list {
		if x == e {
			m.buckets[e.bucket] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(m.buckets[e.bucket]) == 0 {
		delete(m.buckets, e.bucket)
	}
}

func (m *MittCFQ) dropEntry(e *cfqEntry) {
	m.removeFromBucket(e)
	delete(m.entries, e.req)
	for i, x := range m.order {
		if x == e {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// cancel delivers late EBUSY: the IO is pulled out of the CFQ queues (never
// reaching the device) and its owner notified.
func (m *MittCFQ) cancel(e *cfqEntry) {
	if e.done {
		return
	}
	if !m.dec.rejects(true) {
		// Injected false negative (§7.7): the cancellation verdict is
		// suppressed and the IO continues; stop tracking it.
		m.dropEntry(e)
		return
	}
	e.done = true
	m.dropEntry(e)
	if !m.sched.Remove(e.req) {
		// Raced with dispatch: the IO is already at the device and will
		// complete normally; undo the cancellation.
		e.done = false
		return
	}
	e.req.Cancel()
	if t := m.nodeTotal[e.req.Proc] - e.svc; t > 0 {
		m.nodeTotal[e.req.Proc] = t
	} else {
		m.nodeTotal[e.req.Proc] = 0
	}
	m.cancelled++
	busyErr := &BusyError{PredictedWait: -e.tolerable + e.req.Deadline}
	m.rec.Rejected(metrics.RMittCFQ, e.req, busyErr.PredictedWait, true)
	m.replies.deliver(m.eng, m.opt.SyscallCost, e.onDone, busyErr)
}
