package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// MittCFQ is MittOS integrated with the CFQ scheduler (§4.2).
//
// Admission is O(log P), not O(N): each process node carries its running
// predicted-total-IO time (slice-clamped) inside the scheduler's augmented
// service trees, so the wait estimate for an arriving IO is the device
// drain time plus one aggregate prefix query — see CFQ.AheadCharge.
//
// Because CFQ can accept an IO and later push it back behind
// newly-arriving higher-priority IOs, MittCFQ additionally maintains the
// paper's tolerable-time hash table: accepted deadline-carrying IOs are
// bucketed by how much extra delay they can still absorb (1ms buckets).
// When a higher-priority IO is admitted, affected entries are re-bucketed;
// entries whose tolerable time goes negative are cancelled out of the CFQ
// queues and their owners receive EBUSY. The table is allocation-free in
// steady state: entries are pooled, buckets are pooled intrusive rings,
// and the request→entry index is the request's SchedPriv back-pointer.
type MittCFQ struct {
	eng   *sim.Engine
	sched *iosched.CFQ
	prof  *disk.Profile
	opt   Options
	dec   decider

	// mirror models the device-resident IOs (the dispatched quantum) with
	// the same SSTF replay MittNoop uses; CFQ-queued IOs are accounted via
	// the per-node totals instead.
	mirror *sstfMirror

	// Tolerable-time hash table: key = tolerable milliseconds. Each bucket
	// is an intrusive doubly-linked ring in insertion order; empty buckets
	// recycle through bktFree.
	buckets map[int64]*cfqBucket
	bktFree *cfqBucket
	// ordHead/ordTail is the insertion-ordered view of table entries.
	// Charging bumped entries must walk them in a deterministic order —
	// ranging over a map would randomize re-bucketing and cancellation
	// order and with it the simulation's event sequence.
	ordHead, ordTail *cfqEntry
	entryFree        *cfqEntry // pooled entries, chained via olNext
	victims          []*cfqEntry

	accepted  uint64
	rejected  uint64 // at admission
	cancelled uint64 // late EBUSY via the tolerable-time table

	replies  busyReplies
	opFree   []*cfqOp
	dispFree []*cfqDispatch

	rec *metrics.Recorder
}

// cfqOp is the pooled admission-side completion context. Until the IO
// dispatches it is reachable from the request via SchedPriv, so the drop
// and late-cancellation paths can reclaim it (and its entry) when the
// completion callback will never fire.
type cfqOp struct {
	m       *MittCFQ
	entry   *cfqEntry
	hasSLO  bool
	rawBusy bool
	wait    time.Duration
	svc     time.Duration
	prev    func(*blockio.Request)
	onDone  func(error)
	fn      func(*blockio.Request) // pre-bound op.done
}

func (op *cfqOp) done(r *blockio.Request) {
	m, entry, prev, onDone := op.m, op.entry, op.prev, op.onDone
	hasSLO, rawBusy, wait, svc := op.hasSLO, op.rawBusy, op.wait, op.svc
	op.entry, op.prev, op.onDone = nil, nil, nil
	m.opFree = append(m.opFree, op)
	if entry != nil {
		if entry.done {
			// Cancelled late; EBUSY already delivered. (The scheduler drops
			// cancelled IOs before dispatch, so this should not fire.)
			return
		}
		m.putEntry(entry)
	}
	if hasSLO && m.dec.shadow {
		actualWait := r.Latency() - svc
		if actualWait < 0 {
			actualWait = 0
		}
		m.dec.observe(rawBusy, wait, actualWait, r.Deadline)
	}
	if m.rec != nil {
		actualWait := r.Latency() - svc
		if actualWait < 0 {
			actualWait = 0
		}
		m.rec.Prediction(metrics.RMittCFQ, r, wait, actualWait)
	}
	err := r.Err
	if prev != nil {
		prev(r)
	}
	onDone(err)
}

// cfqDispatch is the pooled dispatch-side wrapper feeding the device mirror.
type cfqDispatch struct {
	m    *MittCFQ
	prev func(*blockio.Request)
	fn   func(*blockio.Request) // pre-bound d.done
}

func (d *cfqDispatch) done(r *blockio.Request) {
	m, prev := d.m, d.prev
	d.prev = nil
	m.dispFree = append(m.dispFree, d)
	m.mirror.complete(r)
	if prev != nil {
		prev(r)
	}
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (m *MittCFQ) SetRecorder(rec *metrics.Recorder) { m.rec = rec }

// cfqEntry is one accepted, still-cancellable, deadline-carrying IO. It is
// pooled: alive from admission until its op completes, its request drops,
// or its late cancellation succeeds.
type cfqEntry struct {
	req       *blockio.Request
	onDone    func(error)
	op        *cfqOp
	tolerable time.Duration
	class     blockio.Class
	prio      int
	svc       time.Duration
	done      bool

	bkt            *cfqBucket // nil once off the table
	bkPrev, bkNext *cfqEntry  // bucket ring, insertion order
	olPrev, olNext *cfqEntry  // global insertion-order list
}

// cfqBucket is one 1ms tolerable-time bucket: an intrusive list head,
// recycled through the layer's bucket freelist when emptied.
type cfqBucket struct {
	key  int64
	head *cfqEntry
	tail *cfqEntry
	next *cfqBucket // freelist chain
}

// NewMittCFQ builds the layer over a CFQ scheduler and a disk profile.
func NewMittCFQ(eng *sim.Engine, sched *iosched.CFQ, prof *disk.Profile, opt Options) *MittCFQ {
	m := &MittCFQ{
		eng: eng, sched: sched, prof: prof, opt: opt,
		mirror:  newSSTFMirror(eng, prof, opt.Calibrate),
		buckets: make(map[int64]*cfqBucket),
	}
	m.dec.thop = opt.Thop
	m.dec.shadow = opt.Shadow
	sched.SetDispatchHook(m.onDispatch)
	sched.SetDropHook(m.onDrop)
	return m
}

// SetErrorInjection enables §7.7 fault injection.
func (m *MittCFQ) SetErrorInjection(fnRate, fpRate float64, rng *sim.RNG) {
	m.dec.injFN, m.dec.injFP, m.dec.injRNG = fnRate, fpRate, rng
}

// SetMiscalibration distorts every wait prediction to wait×scale + bias
// (scale 0 = no scaling; (0,0) restores the calibrated predictor).
func (m *MittCFQ) SetMiscalibration(bias time.Duration, scale float64) {
	m.dec.misBias, m.dec.misScale = bias, scale
}

// Accuracy returns shadow-mode counters.
func (m *MittCFQ) Accuracy() Accuracy { return m.dec.acc }

// Counts returns accepted / rejected-at-admission / late-cancelled totals.
func (m *MittCFQ) Counts() (accepted, rejected, cancelled uint64) {
	return m.accepted, m.rejected, m.cancelled
}

// PredictWait estimates the queueing delay an IO from proc at the given
// class would see right now: device drain + slice-clamped totals of nodes
// ahead (one augmented-tree query) + the proc's own queued IOs.
func (m *MittCFQ) PredictWait(proc int, class blockio.Class) time.Duration {
	return m.mirror.drainTime() + m.sched.AheadCharge(proc, class) + m.sched.ProcCharge(proc)
}

// SubmitSLO implements Target.
func (m *MittCFQ) SubmitSLO(req *blockio.Request, onDone func(error)) {
	now := m.eng.Now()
	if req.SubmitTime == 0 {
		req.SubmitTime = now
	}
	wait := m.dec.adjust(m.PredictWait(req.Proc, req.Class))
	svc := m.mirror.svcTime(m.mirror.headPos, req.Offset, req.Size)
	req.PredictedWait = wait
	req.PredictedService = svc

	hasSLO := req.Deadline > blockio.NoDeadline
	rawBusy := hasSLO && wait > m.dec.threshold(req.Deadline)
	if hasSLO {
		if m.dec.shadow {
			req.ShadowBusy = rawBusy
			if rawBusy {
				m.rec.ShadowBusy(metrics.RMittCFQ)
			}
		} else if m.dec.rejects(rawBusy) {
			m.rejected++
			m.rec.Rejected(metrics.RMittCFQ, req, wait, false)
			m.replies.deliver(m.eng, m.opt.SyscallCost, onDone, &BusyError{PredictedWait: wait})
			return
		}
	}

	m.accepted++
	m.rec.Admitted(metrics.RMittCFQ, req)
	m.sched.AddProcCharge(req.Proc, svc)

	var op *cfqOp
	if n := len(m.opFree); n > 0 {
		op = m.opFree[n-1]
		m.opFree = m.opFree[:n-1]
	} else {
		op = &cfqOp{m: m}
		op.fn = op.done
	}
	op.hasSLO, op.rawBusy, op.wait, op.svc = hasSLO, rawBusy, wait, svc
	op.prev, op.onDone = req.OnComplete, onDone

	var entry *cfqEntry
	if hasSLO && !m.dec.shadow {
		// Track the IO in the tolerable-time table until dispatch.
		entry = m.getEntry()
		entry.req, entry.onDone, entry.op = req, onDone, op
		entry.tolerable = m.dec.threshold(req.Deadline) - wait
		entry.class, entry.prio, entry.svc = req.Class, req.Priority, svc
		m.bucketAdd(entry, bucketOf(entry.tolerable))
		m.orderAppend(entry)
	}
	op.entry = entry
	req.OnComplete = op.fn
	req.SchedPriv = op
	m.sched.Submit(req)

	// A newly accepted IO consumes the slack of queued IOs it will be
	// serviced ahead of.
	m.chargeBumpedEntries(req, svc)
}

// onDispatch fires when an IO leaves CFQ for the device: its predicted time
// moves from its node's total to the device mirror, and it stops being
// cancellable.
func (m *MittCFQ) onDispatch(req *blockio.Request) {
	m.sched.ReleaseProcCharge(req.Proc, req.PredictedService)
	if op, ok := req.SchedPriv.(*cfqOp); ok {
		req.SchedPriv = nil
		if op.entry != nil {
			// The entry stays with the op (freed at completion); it merely
			// leaves the tolerable-time table.
			m.dropEntry(op.entry)
		}
	}
	m.mirror.add(req)
	var d *cfqDispatch
	if n := len(m.dispFree); n > 0 {
		d = m.dispFree[n-1]
		m.dispFree = m.dispFree[:n-1]
	} else {
		d = &cfqDispatch{m: m}
		d.fn = d.done
	}
	d.prev = req.OnComplete
	req.OnComplete = d.fn
}

// onDrop fires when the scheduler discards a request revoked by its owner
// (tied-request cancellation) before dispatch: release its node charge and
// reclaim the op and entry — their completion callback will never run.
func (m *MittCFQ) onDrop(req *blockio.Request) {
	m.sched.ReleaseProcCharge(req.Proc, req.PredictedService)
	if op, ok := req.SchedPriv.(*cfqOp); ok {
		req.SchedPriv = nil
		req.OnComplete = op.prev
		if e := op.entry; e != nil {
			m.dropEntry(e)
			m.putEntry(e)
		}
		op.entry, op.prev, op.onDone = nil, nil, nil
		m.opFree = append(m.opFree, op)
	}
}

// chargeBumpedEntries implements the re-bucketing rule (§4.2): every queued
// entry that the new IO would be serviced ahead of loses `svc` of tolerable
// time; entries that go negative are cancelled with EBUSY. An entry is
// "bumped" when the newcomer outranks it (higher class or ionice priority)
// or when CFQ's round-robin currently schedules the newcomer's node ahead
// of the entry's — the same-priority variant of "accepted initially, but
// soon new IOs arrive and the deadlines of the earlier IOs can be violated
// as they are bumped to the back".
func (m *MittCFQ) chargeBumpedEntries(newReq *blockio.Request, svc time.Duration) {
	if m.ordHead == nil {
		return
	}
	victims := m.victims[:0]
	for entry := m.ordHead; entry != nil; entry = entry.olNext {
		if entry.req == newReq || entry.done || entry.req.Proc == newReq.Proc {
			continue
		}
		bumps := outranks(newReq.Class, newReq.Priority, entry.class, entry.prio) ||
			(newReq.Class == entry.class &&
				m.sched.IsAheadOf(newReq.Proc, entry.req.Proc, entry.class))
		if !bumps {
			continue
		}
		m.rebucket(entry, entry.tolerable-svc)
		if entry.tolerable < 0 {
			victims = append(victims, entry)
		}
	}
	for i, v := range victims {
		m.cancel(v)
		victims[i] = nil
	}
	m.victims = victims[:0]
}

// outranks reports whether (ca,pa) is scheduled ahead of (cb,pb): a higher
// class always wins; within a class, a numerically lower ionice priority.
func outranks(ca blockio.Class, pa int, cb blockio.Class, pb int) bool {
	if ca != cb {
		return ca.Rank() < cb.Rank()
	}
	return pa < pb
}

func bucketOf(d time.Duration) int64 {
	ms := d / time.Millisecond
	if d < 0 && d%time.Millisecond != 0 {
		ms--
	}
	return int64(ms)
}

func (m *MittCFQ) getEntry() *cfqEntry {
	if e := m.entryFree; e != nil {
		m.entryFree = e.olNext
		*e = cfqEntry{}
		return e
	}
	return &cfqEntry{}
}

func (m *MittCFQ) putEntry(e *cfqEntry) {
	*e = cfqEntry{}
	e.olNext = m.entryFree
	m.entryFree = e
}

// bucketAdd appends the entry to the tail of the key's bucket ring,
// creating (or recycling) the bucket on first use.
func (m *MittCFQ) bucketAdd(e *cfqEntry, key int64) {
	b := m.buckets[key]
	if b == nil {
		if b = m.bktFree; b != nil {
			m.bktFree = b.next
			b.key, b.next = key, nil
		} else {
			b = &cfqBucket{key: key}
		}
		m.buckets[key] = b
	}
	e.bkt, e.bkPrev, e.bkNext = b, b.tail, nil
	if b.tail != nil {
		b.tail.bkNext = e
	} else {
		b.head = e
	}
	b.tail = e
}

// bucketRemove unlinks the entry from its bucket ring, recycling the bucket
// when it empties.
func (m *MittCFQ) bucketRemove(e *cfqEntry) {
	b := e.bkt
	if b == nil {
		return
	}
	if e.bkPrev != nil {
		e.bkPrev.bkNext = e.bkNext
	} else {
		b.head = e.bkNext
	}
	if e.bkNext != nil {
		e.bkNext.bkPrev = e.bkPrev
	} else {
		b.tail = e.bkPrev
	}
	e.bkt, e.bkPrev, e.bkNext = nil, nil, nil
	if b.head == nil {
		delete(m.buckets, b.key)
		b.next = m.bktFree
		m.bktFree = b
	}
}

func (m *MittCFQ) rebucket(e *cfqEntry, newTolerable time.Duration) {
	nb := bucketOf(newTolerable)
	if nb != e.bkt.key {
		m.bucketRemove(e)
		m.bucketAdd(e, nb)
	}
	e.tolerable = newTolerable
}

func (m *MittCFQ) orderAppend(e *cfqEntry) {
	e.olPrev, e.olNext = m.ordTail, nil
	if m.ordTail != nil {
		m.ordTail.olNext = e
	} else {
		m.ordHead = e
	}
	m.ordTail = e
}

// dropEntry takes the entry off the tolerable-time table (bucket ring and
// order list); it is a no-op for entries already off.
func (m *MittCFQ) dropEntry(e *cfqEntry) {
	if e.bkt == nil {
		return
	}
	m.bucketRemove(e)
	if e.olPrev != nil {
		e.olPrev.olNext = e.olNext
	} else {
		m.ordHead = e.olNext
	}
	if e.olNext != nil {
		e.olNext.olPrev = e.olPrev
	} else {
		m.ordTail = e.olPrev
	}
	e.olPrev, e.olNext = nil, nil
}

// cancel delivers late EBUSY: the IO is pulled out of the CFQ queues (never
// reaching the device) and its owner notified.
func (m *MittCFQ) cancel(e *cfqEntry) {
	if e.done {
		return
	}
	if !m.dec.rejects(true) {
		// Injected false negative (§7.7): the cancellation verdict is
		// suppressed and the IO continues; stop tracking it. The entry
		// stays with its op until the IO completes.
		m.dropEntry(e)
		return
	}
	e.done = true
	m.dropEntry(e)
	if !m.sched.Remove(e.req) {
		// Raced with dispatch: the IO is already at the device and will
		// complete normally; undo the cancellation.
		e.done = false
		return
	}
	req := e.req
	req.Cancel()
	m.sched.ReleaseProcCharge(req.Proc, e.svc)
	m.cancelled++
	busyErr := &BusyError{PredictedWait: -e.tolerable + req.Deadline}
	m.rec.Rejected(metrics.RMittCFQ, req, busyErr.PredictedWait, true)
	m.replies.deliver(m.eng, m.opt.SyscallCost, e.onDone, busyErr)
	// The removed IO never dispatches, so its completion callback never
	// fires: unwind it and reclaim the op and entry.
	if op := e.op; op != nil {
		req.OnComplete = op.prev
		req.SchedPriv = nil
		op.entry, op.prev, op.onDone = nil, nil, nil
		m.opFree = append(m.opFree, op)
	}
	m.putEntry(e)
}
