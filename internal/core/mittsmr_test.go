package core

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/sim"
	"mittos/internal/smr"
)

type smrRig struct {
	eng   *sim.Engine
	drive *smr.Drive
	mitt  *MittSMR
	ids   blockio.IDGen
}

func newSMRRig(t *testing.T) *smrRig {
	t.Helper()
	eng := sim.NewEngine()
	cfg := smr.DefaultConfig()
	cfg.CacheBytes = 64 << 20
	drive := smr.New(eng, cfg, sim.NewRNG(71, t.Name()))
	nop := iosched.NewNoop(eng, drive)
	prof := disk.ProfileTwin(cfg.Disk, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	return &smrRig{eng: eng, drive: drive,
		mitt: NewMittSMR(eng, nop, drive, prof, DefaultOptions())}
}

func (r *smrRig) read(off int64, deadline time.Duration, cb func(error)) {
	req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Read, Offset: off,
		Size: 4096, Deadline: deadline}
	r.mitt.SubmitSLO(req, cb)
}

func (r *smrRig) write(off int64, size int) {
	req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Write, Offset: off, Size: size}
	r.mitt.SubmitSLO(req, func(error) {})
}

func TestMittSMRIdleAccepts(t *testing.T) {
	r := newSMRRig(t)
	var err error = blockio.ErrBusy
	r.read(100<<30, 20*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("idle SMR read: %v", err)
	}
}

func TestMittSMRRejectsDuringBandClean(t *testing.T) {
	r := newSMRRig(t)
	// Fill the persistent cache so cleaning starts.
	rng := sim.NewRNG(5, "offsets")
	for r.drive.CacheFill() < r.drive.Config().CleanHighWater {
		r.write(rng.Int63n(900<<30)&^4095, 1<<20)
		r.eng.RunFor(time.Millisecond)
	}
	// Run until a clean is actually in progress.
	for i := 0; i < 1000 && r.mitt.CleanRemaining() == 0; i++ {
		r.eng.RunFor(10 * time.Millisecond)
	}
	if r.mitt.CleanRemaining() == 0 {
		t.Fatal("no clean observed")
	}
	var err error
	r.read(500<<30, 20*time.Millisecond, func(e error) { err = e })
	r.eng.RunFor(5 * time.Millisecond)
	if !IsBusy(err) {
		t.Fatalf("read during band clean: %v, want EBUSY", err)
	}
	if r.mitt.RejectedByClean() == 0 {
		t.Fatal("clean-rejection counter not incremented")
	}
	var be *BusyError
	if b, ok := err.(*BusyError); ok {
		be = b
	}
	// The hint reflects the chunk-bounded clean penalty (one ~80ms chunk
	// plus the device age limit), not the whole multi-second clean.
	if be == nil || be.PredictedWait < 50*time.Millisecond {
		t.Fatalf("wait hint %v should reflect the clean penalty", err)
	}
	r.eng.Run()
}

func TestMittSMRAcceptsAfterCleanFinishes(t *testing.T) {
	r := newSMRRig(t)
	rng := sim.NewRNG(5, "offsets")
	for r.drive.CacheFill() < r.drive.Config().CleanHighWater {
		r.write(rng.Int63n(900<<30)&^4095, 1<<20)
		r.eng.RunFor(time.Millisecond)
	}
	r.eng.RunFor(2 * time.Minute) // cleans drain to the low watermark
	if r.drive.Cleaning() {
		t.Fatal("still cleaning after 2 minutes")
	}
	var err error = blockio.ErrBusy
	r.read(100<<30, 20*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("post-clean read: %v", err)
	}
}

func TestMittSMRTailCut(t *testing.T) {
	// End-to-end: deadline probes under write churn either complete fast
	// or bounce with EBUSY — never stall behind a band clean.
	r := newSMRRig(t)
	rng := sim.NewRNG(7, "probe")
	wrng := sim.NewRNG(8, "writes")
	var worst time.Duration
	busy := 0
	r.eng.NewTicker(20*time.Millisecond, func() {
		r.write(wrng.Int63n(900<<30)&^4095, 2<<20)
	})
	r.eng.NewTicker(25*time.Millisecond, func() {
		start := r.eng.Now()
		r.read(rng.Int63n(900<<30), 25*time.Millisecond, func(e error) {
			if IsBusy(e) {
				busy++
				return
			}
			if lat := r.eng.Now().Sub(start); lat > worst {
				worst = lat
			}
		})
	})
	r.eng.RunUntil(sim.Time(60 * sim.Second))
	if r.drive.Cleans() == 0 {
		t.Skip("no cleans in this window")
	}
	if busy == 0 {
		t.Fatal("no rejections despite band cleaning")
	}
	if worst > 120*time.Millisecond {
		t.Fatalf("an accepted read stalled %v behind a clean", worst)
	}
}
