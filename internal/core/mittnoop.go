package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// MittNoop is MittOS integrated with the noop disk scheduler (§4.1,
// Appendix A).
//
// The predictor mirrors the device queue: it tracks every outstanding IO
// and, knowing the disk's SSTF policy, replays the service order to compute
// the wait an arriving IO would experience (`sstfTime`). Admission rejects
// with EBUSY when that wait exceeds deadline+Thop, before the IO is queued.
// Per-IO service times come from the offline disk profile; completion-time
// residuals feed an EWMA bias corrector (the Tdiff calibration of §4.1) so
// model error does not accumulate.
//
// Options.Naive selects the paper's strawman instead: a single FIFO
// TnextFree accumulator with no SSTF modeling — the "without our precision
// improvements" ablation of §7.6, whose inaccuracy is dramatically higher.
type MittNoop struct {
	eng    *sim.Engine
	sched  *iosched.Noop
	prof   *disk.Profile
	opt    Options
	dec    decider
	mirror *sstfMirror

	// Naive-mode state (Options.Naive).
	nextFree sim.Time
	lastTail int64

	accepted uint64
	rejected uint64

	replies busyReplies
	opFree  []*noopOp

	rec *metrics.Recorder
}

// noopOp is the pooled per-IO completion context: calibration inputs and
// the caller's callbacks, with the OnComplete wrapper bound once.
type noopOp struct {
	m              *MittNoop
	predCompletion sim.Time
	hasSLO         bool
	rawBusy        bool
	wait           time.Duration
	svc            time.Duration
	prev           func(*blockio.Request)
	onDone         func(error)
	fn             func(*blockio.Request) // pre-bound op.done
}

func (op *noopOp) done(r *blockio.Request) {
	m, prev, onDone := op.m, op.prev, op.onDone
	predCompletion, hasSLO, rawBusy := op.predCompletion, op.hasSLO, op.rawBusy
	wait, svc := op.wait, op.svc
	op.prev, op.onDone = nil, nil
	m.opFree = append(m.opFree, op)
	if m.opt.Naive {
		if m.opt.Calibrate {
			// Tdiff calibration (§4.1): shift TnextFree by the
			// prediction residual, bounded so one bad sample cannot
			// destabilize the model.
			diff := r.CompleteTime.Sub(predCompletion)
			m.nextFree = m.nextFree.Add(clampDur(diff, -5*time.Millisecond, 5*time.Millisecond))
		}
	} else {
		m.mirror.complete(r)
	}
	if hasSLO && m.dec.shadow {
		actualWait := r.Latency() - svc
		if actualWait < 0 {
			actualWait = 0
		}
		m.dec.observe(rawBusy, wait, actualWait, r.Deadline)
	}
	if m.rec != nil {
		actualWait := r.Latency() - svc
		if actualWait < 0 {
			actualWait = 0
		}
		m.rec.Prediction(metrics.RMittNoop, r, wait, actualWait)
	}
	err := r.Err
	if prev != nil {
		prev(r)
	}
	onDone(err)
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (m *MittNoop) SetRecorder(rec *metrics.Recorder) { m.rec = rec }

// NewMittNoop builds the layer over a noop scheduler and its disk profile.
func NewMittNoop(eng *sim.Engine, sched *iosched.Noop, prof *disk.Profile, opt Options) *MittNoop {
	m := &MittNoop{eng: eng, sched: sched, prof: prof, opt: opt,
		mirror: newSSTFMirror(eng, prof, opt.Calibrate)}
	m.dec.thop = opt.Thop
	m.dec.shadow = opt.Shadow
	return m
}

// SetErrorInjection enables §7.7 fault injection.
func (m *MittNoop) SetErrorInjection(fnRate, fpRate float64, rng *sim.RNG) {
	m.dec.injFN, m.dec.injFP, m.dec.injRNG = fnRate, fpRate, rng
}

// SetMiscalibration distorts every wait prediction to wait×scale + bias
// (scale 0 = no scaling; (0,0) restores the calibrated predictor). This is
// the §8.1 stale-profile fault: the predictor is wrong in a structured way.
func (m *MittNoop) SetMiscalibration(bias time.Duration, scale float64) {
	m.dec.misBias, m.dec.misScale = bias, scale
}

// Accuracy returns shadow-mode counters.
func (m *MittNoop) Accuracy() Accuracy { return m.dec.acc }

// Counts returns accepted/rejected totals.
func (m *MittNoop) Counts() (accepted, rejected uint64) { return m.accepted, m.rejected }

// ProfileDrift returns the calibration layer's running residual — the
// §8.1 staleness signal. A healthy profile keeps it near zero; sustained
// values beyond ProfileStaleThreshold mean the device no longer matches
// its offline profile and should be re-profiled.
func (m *MittNoop) ProfileDrift() time.Duration { return m.mirror.DriftBias() }

// ProfileStaleThreshold is the suggested drift bound beyond which callers
// should re-profile (half the typical seek cost).
const ProfileStaleThreshold = time.Millisecond

// ProfileStale reports whether the drift signal exceeds the threshold.
func (m *MittNoop) ProfileStale() bool {
	d := m.ProfileDrift()
	if d < 0 {
		d = -d
	}
	return d > ProfileStaleThreshold
}

// Reprofile swaps in a freshly collected profile and resets calibration —
// the §8.1 recollection step.
func (m *MittNoop) Reprofile(prof *disk.Profile) {
	m.prof = prof
	m.mirror.prof = prof
	m.mirror.driftBias = 0
}

// PredictWait returns the time until the disk drains everything currently
// outstanding — the queue-level busyness signal (Fig. 13b plots it).
func (m *MittNoop) PredictWait() time.Duration {
	if m.opt.Naive {
		now := m.eng.Now()
		if m.nextFree <= now {
			return 0
		}
		return m.nextFree.Sub(now)
	}
	return m.mirror.drainTime()
}

// PredictWaitFor returns the wait an IO at (off, sz) would experience if
// submitted now, per the SSTF replay.
func (m *MittNoop) PredictWaitFor(off int64, sz int) time.Duration {
	if m.opt.Naive {
		return m.PredictWait()
	}
	return m.mirror.waitFor(off, sz)
}

// SubmitSLO implements Target.
func (m *MittNoop) SubmitSLO(req *blockio.Request, onDone func(error)) {
	now := m.eng.Now()
	if req.SubmitTime == 0 {
		req.SubmitTime = now
	}
	var wait, svc time.Duration
	if m.opt.Naive {
		wait = m.PredictWait()
		svc = m.prof.ServiceTime(req.Offset-m.lastTail, req.Size)
	} else {
		wait = m.mirror.waitFor(req.Offset, req.Size)
		svc = m.mirror.svcTime(m.mirror.headPos, req.Offset, req.Size)
	}
	wait = m.dec.adjust(wait)
	req.PredictedWait = wait
	req.PredictedService = svc

	hasSLO := req.Deadline > blockio.NoDeadline
	rawBusy := hasSLO && wait > m.dec.threshold(req.Deadline)
	if hasSLO {
		if m.dec.shadow {
			req.ShadowBusy = rawBusy
			if rawBusy {
				m.rec.ShadowBusy(metrics.RMittNoop)
			}
		} else if m.dec.rejects(rawBusy) {
			// Fast rejection: the IO is never queued (§3.3 "the rejected
			// request is not queued; it is automatically cancelled").
			m.rejected++
			m.rec.Rejected(metrics.RMittNoop, req, wait, false)
			m.replies.deliver(m.eng, m.opt.SyscallCost, onDone, &BusyError{PredictedWait: wait})
			return
		}
	}

	m.accepted++
	m.rec.Admitted(metrics.RMittNoop, req)
	var predCompletion sim.Time
	if m.opt.Naive {
		if m.nextFree < now {
			// Idle disk: automatic recalibration (TnextFree = Tnow + Tprocess).
			m.nextFree = now
		}
		predCompletion = m.nextFree.Add(svc)
		m.nextFree = predCompletion
		m.lastTail = req.End()
	} else {
		m.mirror.add(req)
	}

	var op *noopOp
	if n := len(m.opFree); n > 0 {
		op = m.opFree[n-1]
		m.opFree = m.opFree[:n-1]
	} else {
		op = &noopOp{m: m}
		op.fn = op.done
	}
	op.predCompletion, op.hasSLO, op.rawBusy = predCompletion, hasSLO, rawBusy
	op.wait, op.svc = wait, svc
	op.prev, op.onDone = req.OnComplete, onDone
	req.OnComplete = op.fn
	m.sched.Submit(req)
}
