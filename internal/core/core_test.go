package core

import (
	"errors"
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

func TestBusyErrorUnwrapsToErrBusy(t *testing.T) {
	err := &BusyError{PredictedWait: 20 * time.Millisecond}
	if !errors.Is(err, blockio.ErrBusy) {
		t.Fatal("BusyError does not unwrap to ErrBusy")
	}
	if !IsBusy(err) {
		t.Fatal("IsBusy(BusyError) = false")
	}
	if IsBusy(errors.New("other")) {
		t.Fatal("IsBusy(other) = true")
	}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestAccuracyRates(t *testing.T) {
	a := Accuracy{TruePos: 10, TrueNeg: 80, FalsePos: 4, FalseNeg: 6}
	if a.Total() != 100 {
		t.Fatalf("Total = %d", a.Total())
	}
	if got := a.FalsePosRate(); got != 0.04 {
		t.Fatalf("FalsePosRate = %v", got)
	}
	if got := a.FalseNegRate(); got != 0.06 {
		t.Fatalf("FalseNegRate = %v", got)
	}
	if got := a.InaccuracyRate(); got != 0.10 {
		t.Fatalf("InaccuracyRate = %v", got)
	}
	var empty Accuracy
	if empty.FalsePosRate() != 0 || empty.FalseNegRate() != 0 ||
		empty.InaccuracyRate() != 0 || empty.MeanAbsDiff() != 0 {
		t.Fatal("empty accuracy should be all-zero")
	}
}

func TestDeciderObserve(t *testing.T) {
	d := decider{thop: time.Millisecond}
	deadline := 10 * time.Millisecond
	// busy verdict + actual violation = TP
	d.observe(true, 20*time.Millisecond, 20*time.Millisecond, deadline)
	// busy verdict + actual OK = FP
	d.observe(true, 20*time.Millisecond, 5*time.Millisecond, deadline)
	// accept verdict + violation = FN
	d.observe(false, time.Millisecond, 30*time.Millisecond, deadline)
	// accept verdict + OK = TN
	d.observe(false, time.Millisecond, 2*time.Millisecond, deadline)
	a := d.acc
	if a.TruePos != 1 || a.FalsePos != 1 || a.FalseNeg != 1 || a.TrueNeg != 1 {
		t.Fatalf("accuracy matrix = %+v", a)
	}
	if a.MeanAbsDiff() == 0 {
		t.Fatal("MeanAbsDiff not accumulated")
	}
}

func TestDeciderInjection(t *testing.T) {
	rng := sim.NewRNG(1, "inj")
	d := decider{injFN: 1.0, injRNG: rng}
	if d.rejects(true) {
		t.Fatal("100% false-negative injection should suppress rejection")
	}
	d = decider{injFP: 1.0, injRNG: rng}
	if !d.rejects(false) {
		t.Fatal("100% false-positive injection should force rejection")
	}
	d = decider{}
	if !d.rejects(true) || d.rejects(false) {
		t.Fatal("no injection should be identity")
	}
}

func TestDeciderThreshold(t *testing.T) {
	d := decider{thop: 300 * time.Microsecond}
	if d.threshold(20*time.Millisecond) != 20*time.Millisecond+300*time.Microsecond {
		t.Fatal("threshold must add Thop")
	}
}

func TestVanillaPassthrough(t *testing.T) {
	eng := sim.NewEngine()
	dev := &stubDevice{eng: eng, delay: time.Millisecond}
	v := &Vanilla{Dev: dev}
	var got error = errors.New("sentinel")
	r := &blockio.Request{Op: blockio.Read, Offset: 0, Size: 4096,
		Deadline: time.Nanosecond} // deadline must be ignored
	v.SubmitSLO(r, func(err error) { got = err })
	eng.Run()
	if got != nil {
		t.Fatalf("vanilla returned %v", got)
	}
}

func TestClampDur(t *testing.T) {
	if clampDur(10, 0, 5) != 5 || clampDur(-10, 0, 5) != 0 || clampDur(3, 0, 5) != 3 {
		t.Fatal("clampDur broken")
	}
}

// stubDevice completes after a fixed delay.
type stubDevice struct {
	eng      *sim.Engine
	delay    time.Duration
	inflight int
}

func (s *stubDevice) Submit(req *blockio.Request) {
	s.inflight++
	req.DispatchTime = s.eng.Now()
	s.eng.Schedule(s.delay, func() {
		s.inflight--
		req.CompleteTime = s.eng.Now()
		if req.OnComplete != nil {
			req.OnComplete(req)
		}
	})
}
func (s *stubDevice) InFlight() int { return s.inflight }
