// Package core implements MittOS itself: the fast-rejecting, SLO-aware IO
// admission layer the paper contributes (§3–§4). One Mitt* type wraps each
// resource manager:
//
//   - MittNoop  — the noop disk scheduler (§4.1): O(1) TnextFree tracking
//     with Tdiff calibration against a profiled seek-cost model.
//   - MittCFQ   — the CFQ scheduler (§4.2): O(P) per-process-node wait
//     accounting plus the tolerable-time hash table that cancels accepted
//     IOs bumped back by higher-priority arrivals.
//   - MittSSD   — host-managed SSD (§4.3): per-chip next-free times and
//     channel-occupancy costs, with GC visibility.
//   - MittCache — the OS page cache (§4.4): residency walks for read() and
//     addrcheck(), EBUSY only on memory-space contention, background
//     swap-in after rejection.
//
// All four implement Target. Rejection is delivered as blockio.ErrBusy —
// immediately at admission, or late (MittCFQ only) when a queued IO's
// deadline becomes unmeetable.
//
// Every layer also supports the paper's two measurement modes: shadow mode
// (§7.6: the EBUSY verdict is recorded on the descriptor instead of being
// returned, so actual latency can be compared against the prediction) and
// error injection (§7.7: forced false-negative/false-positive rates).
package core

import (
	"errors"
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// DefaultThop is the one-hop failover allowance added to deadlines at
// admission: "Thop is a constant of 0.3ms one-hop failover in our testbed"
// (§4.1).
const DefaultThop = 300 * time.Microsecond

// DefaultSyscallCost models making a system call and receiving EBUSY:
// "only takes <5µs" (§3.3).
const DefaultSyscallCost = 2 * time.Microsecond

// Target is a deadline-aware storage endpoint: requests with a Deadline are
// admission-checked; requests without one pass through untouched ("keep
// existing OS policies", §3.3).
type Target interface {
	// SubmitSLO submits the request. Exactly one of the following happens:
	// onDone(req.Err) after the IO completes (nil on success, ErrIO under
	// error injection), or onDone(blockio.ErrBusy) if the IO is rejected
	// (possibly after initial acceptance, for MittCFQ's late
	// cancellation). onDone runs in virtual time.
	SubmitSLO(req *blockio.Request, onDone func(error))
}

// BusyError is the enriched EBUSY carrying the predicted wait — the paper's
// proposed extension "having MittOS return EBUSY with wait time, to allow a
// 4th retry to the least busy node" (§5, §7.8.1, §8.1). errors.Is(err,
// blockio.ErrBusy) holds for every BusyError.
type BusyError struct {
	// PredictedWait is the queueing delay MittOS predicted when rejecting.
	PredictedWait time.Duration
}

// Error implements the error interface.
func (e *BusyError) Error() string {
	return fmt.Sprintf("%v (predicted wait %v)", blockio.ErrBusy, e.PredictedWait)
}

// Unwrap makes errors.Is(err, blockio.ErrBusy) true.
func (e *BusyError) Unwrap() error { return blockio.ErrBusy }

// IsBusy reports whether err is an EBUSY rejection.
func IsBusy(err error) bool { return errors.Is(err, blockio.ErrBusy) }

// Accuracy accumulates the §7.6 prediction-quality counters. A false
// positive is an EBUSY verdict for an IO that would have met its deadline; a
// false negative is an accepted IO that missed it.
type Accuracy struct {
	TruePos  int // busy verdict, deadline indeed missed
	TrueNeg  int // accepted, deadline met
	FalsePos int
	FalseNeg int
	// SumAbsDiff accumulates |actual wait − predicted wait| over verdicted
	// IOs, for the "how far off are we" analysis (§7.6: diffs <3ms disk,
	// <1ms SSD).
	SumAbsDiff time.Duration
}

// Total returns the number of verdicted IOs.
func (a Accuracy) Total() int { return a.TruePos + a.TrueNeg + a.FalsePos + a.FalseNeg }

// FalsePosRate returns the false-positive fraction over all verdicted IOs.
func (a Accuracy) FalsePosRate() float64 {
	if a.Total() == 0 {
		return 0
	}
	return float64(a.FalsePos) / float64(a.Total())
}

// FalseNegRate returns the false-negative fraction over all verdicted IOs.
func (a Accuracy) FalseNegRate() float64 {
	if a.Total() == 0 {
		return 0
	}
	return float64(a.FalseNeg) / float64(a.Total())
}

// InaccuracyRate returns (FP+FN)/total.
func (a Accuracy) InaccuracyRate() float64 {
	if a.Total() == 0 {
		return 0
	}
	return float64(a.FalsePos+a.FalseNeg) / float64(a.Total())
}

// MeanAbsDiff returns the mean |actual − predicted| wait error.
func (a Accuracy) MeanAbsDiff() time.Duration {
	if a.Total() == 0 {
		return 0
	}
	return a.SumAbsDiff / time.Duration(a.Total())
}

// decider centralizes the admission verdict plumbing shared by all Mitt
// layers: error injection (§7.7), shadow-mode accuracy accounting (§7.6),
// and the Thop allowance.
type decider struct {
	thop    time.Duration
	shadow  bool
	injFN   float64 // P(suppress a busy verdict)
	injFP   float64 // P(reject an acceptable IO)
	injRNG  *sim.RNG
	acc     Accuracy
	verdict uint64 // IOs decided (deadline-carrying only)

	// Miscalibration fault injection: every predicted wait becomes
	// wait×misScale + misBias before it is compared or returned. Unlike
	// injFN/injFP's coin flips this distorts the prediction itself — the
	// §8.1 "profile goes stale" failure, where the predictor is wrong in
	// a structured way rather than randomly.
	misBias  time.Duration
	misScale float64 // 0 = no scaling
}

// adjust applies the injected miscalibration to a predicted wait. Both
// knobs zero (the default) returns wait unchanged through a single branch.
func (d *decider) adjust(wait time.Duration) time.Duration {
	if d.misBias == 0 && d.misScale == 0 {
		return wait
	}
	if d.misScale != 0 {
		wait = time.Duration(float64(wait) * d.misScale)
	}
	wait += d.misBias
	if wait < 0 {
		wait = 0
	}
	return wait
}

// rejects converts the raw busy prediction into the effective decision,
// applying injected errors.
func (d *decider) rejects(busy bool) bool {
	if busy && d.injFN > 0 && d.injRNG != nil && d.injRNG.Bool(d.injFN) {
		return false
	}
	if !busy && d.injFP > 0 && d.injRNG != nil && d.injRNG.Bool(d.injFP) {
		return true
	}
	return busy
}

// threshold returns the admission bound for a deadline.
func (d *decider) threshold(deadline time.Duration) time.Duration {
	return deadline + d.thop
}

// observe records shadow-mode accuracy for a completed IO. verdictBusy is
// the *raw* prediction (before injection); actualWait and predictedWait are
// the measured and predicted queueing delays.
func (d *decider) observe(verdictBusy bool, predictedWait, actualWait, deadline time.Duration) {
	violated := actualWait > d.threshold(deadline)
	switch {
	case verdictBusy && violated:
		d.acc.TruePos++
	case verdictBusy && !violated:
		d.acc.FalsePos++
	case !verdictBusy && violated:
		d.acc.FalseNeg++
	default:
		d.acc.TrueNeg++
	}
	diff := actualWait - predictedWait
	if diff < 0 {
		diff = -diff
	}
	d.acc.SumAbsDiff += diff
}

// Options configures a Mitt layer.
type Options struct {
	// Thop is the failover-hop allowance added to deadlines (§4.1).
	Thop time.Duration
	// SyscallCost models the EBUSY system-call round trip (§3.3).
	SyscallCost time.Duration
	// Shadow enables §7.6 accuracy mode: verdicts are recorded, never
	// enforced.
	Shadow bool
	// Calibrate enables Tdiff feedback (§4.1).
	Calibrate bool
	// Naive switches MittNoop to the strawman predictor: one FIFO
	// TnextFree accumulator with no SSTF modeling. Together with
	// Calibrate=false this is the "without our precision improvements"
	// ablation whose inaccuracy §7.6 reports as high as 47%.
	Naive bool
}

// DefaultOptions returns the paper's constants.
func DefaultOptions() Options {
	return Options{
		Thop:        DefaultThop,
		SyscallCost: DefaultSyscallCost,
		Calibrate:   true,
	}
}

// clampDur bounds a duration into [lo, hi].
func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// busyReplies pools the deferred EBUSY deliveries (the syscall-cost timer
// callback) so a rejection allocates only its BusyError, which escapes to
// the caller and cannot be pooled.
type busyReplies struct {
	free []*busyReply
}

type busyReply struct {
	c      *busyReplies
	onDone func(error)
	err    error
	fn     func() // pre-bound r.fire
}

func (r *busyReply) fire() {
	c, onDone, err := r.c, r.onDone, r.err
	r.onDone, r.err = nil, nil
	c.free = append(c.free, r)
	onDone(err)
}

// deliver schedules onDone(err) after the syscall round trip.
func (c *busyReplies) deliver(eng *sim.Engine, d time.Duration, onDone func(error), err error) {
	var r *busyReply
	if n := len(c.free); n > 0 {
		r = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		r = &busyReply{c: c}
		r.fn = r.fire
	}
	r.onDone, r.err = onDone, err
	eng.After(d, r.fn)
}

// Vanilla is the no-MittOS passthrough Target used by Base runs: deadlines
// are ignored, every IO queues and waits, onDone receives the device's
// completion verdict (nil unless error injection is on).
type Vanilla struct {
	Dev blockio.Device

	opFree []*vanillaOp
}

// vanillaOp is the pooled completion wrapper: bound once, reused per IO.
type vanillaOp struct {
	v      *Vanilla
	prev   func(*blockio.Request)
	onDone func(error)
	fn     func(*blockio.Request) // pre-bound op.done
}

func (op *vanillaOp) done(r *blockio.Request) {
	v, prev, onDone := op.v, op.prev, op.onDone
	op.prev, op.onDone = nil, nil
	v.opFree = append(v.opFree, op)
	err := r.Err // read before prev: the previous hook may recycle r
	if prev != nil {
		prev(r)
	}
	onDone(err)
}

// SubmitSLO implements Target.
func (v *Vanilla) SubmitSLO(req *blockio.Request, onDone func(error)) {
	var op *vanillaOp
	if n := len(v.opFree); n > 0 {
		op = v.opFree[n-1]
		v.opFree = v.opFree[:n-1]
	} else {
		op = &vanillaOp{v: v}
		op.fn = op.done
	}
	op.prev, op.onDone = req.OnComplete, onDone
	req.OnComplete = op.fn
	v.Dev.Submit(req)
}
