package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/sim"
	"mittos/internal/smr"
)

// MittSMR applies the MittOS principle to shingled-magnetic-recording
// drives — the §8.2 extension: "SMR disk drives must perform 'band
// cleaning' operations, which can easily induce tail latencies ... MittOS
// can be applied naturally in this context, also empowered by the
// development of SMR-aware OS/file systems."
//
// The layer composes the noop-scheduler queue predictor (the drive's
// mechanics are a conventional disk) with zone-activity awareness: a
// host-aware SMR drive announces when a band clean begins and the predictor
// folds the clean's predicted duration into every wait estimate, so
// deadline reads arriving mid-clean are rejected instantly instead of
// stalling behind a multi-hundred-millisecond read-modify-write.
type MittSMR struct {
	noop  *MittNoop
	drive *smr.Drive
	eng   *sim.Engine
	opt   Options

	cleanBusyUntil sim.Time

	rejectedByClean uint64
}

// NewMittSMR builds the layer over a noop scheduler stacked on the drive.
func NewMittSMR(eng *sim.Engine, sched *iosched.Noop, drive *smr.Drive,
	prof *disk.Profile, opt Options) *MittSMR {
	m := &MittSMR{
		noop:  NewMittNoop(eng, sched, prof, opt),
		drive: drive,
		eng:   eng,
		opt:   opt,
	}
	drive.SetCleanStartHook(func(band int64, est time.Duration) {
		until := eng.Now().Add(est)
		if until > m.cleanBusyUntil {
			m.cleanBusyUntil = until
		}
	})
	return m
}

// CleanRemaining returns the predicted residual of the in-progress band
// clean (0 when idle).
func (m *MittSMR) CleanRemaining() time.Duration {
	now := m.eng.Now()
	if m.cleanBusyUntil <= now {
		return 0
	}
	return m.cleanBusyUntil.Sub(now)
}

// cleanPenalty is the extra wait a read arriving now pays for the
// in-progress clean. Cleaning is chunked and the device ages starving
// reads ahead of later chunks, so the penalty is bounded by roughly one
// chunk's service time plus the device's age limit — not the whole clean.
func (m *MittSMR) cleanPenalty() time.Duration {
	rem := m.CleanRemaining()
	if rem == 0 {
		return 0
	}
	cfg := m.drive.Config()
	chunk := cfg.CleanChunkBytes
	if chunk <= 0 || chunk > cfg.BandBytes {
		chunk = cfg.BandBytes
	}
	bound := time.Duration(chunk/1024)*cfg.Disk.TransferPerKB + cfg.Disk.AgeLimit
	if rem < bound {
		return rem
	}
	return bound
}

// Counts returns (accepted, rejected) totals, including clean-rejections.
func (m *MittSMR) Counts() (accepted, rejected uint64) {
	a, r := m.noop.Counts()
	return a, r + m.rejectedByClean
}

// RejectedByClean returns rejections attributable to band cleaning alone.
func (m *MittSMR) RejectedByClean() uint64 { return m.rejectedByClean }

// PredictWaitFor combines the queue estimate with the clean penalty.
func (m *MittSMR) PredictWaitFor(off int64, sz int) time.Duration {
	return m.noop.PredictWaitFor(off, sz) + m.cleanPenalty()
}

// SubmitSLO implements Target.
func (m *MittSMR) SubmitSLO(req *blockio.Request, onDone func(error)) {
	if req.Deadline > blockio.NoDeadline && req.Op == blockio.Read {
		if c := m.cleanPenalty(); c > req.Deadline+m.opt.Thop {
			// The drive is mid-clean and will not surface this read in
			// time: fast rejection without queueing.
			m.rejectedByClean++
			busyErr := &BusyError{PredictedWait: c}
			m.eng.After(m.opt.SyscallCost, func() { onDone(busyErr) })
			return
		}
	}
	m.noop.SubmitSLO(req, onDone)
}
