package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// ThroughputSLO is the §8.1 extension: "other forms of SLO information such
// as throughput can be included as input to MittOS." It wraps any Target
// with per-tenant IOPS contracts enforced by token buckets: a tenant
// submitting beyond its contracted rate gets the same fast EBUSY as a
// deadline violation, so it can shed load or retry elsewhere instead of
// inflating everyone's queues.
//
// Requests within contract pass through untouched (and may still carry
// deadlines for the inner layer). Tenants without a contract are never
// throughput-limited.
type ThroughputSLO struct {
	eng   *sim.Engine
	inner Target
	opt   Options

	buckets map[int]*tokenBucket

	accepted uint64
	rejected uint64
}

// tokenBucket refills continuously at `rate` IOPS up to `burst` tokens.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   sim.Time
}

func (b *tokenBucket) take(now sim.Time) bool {
	elapsed := now.Sub(b.last).Seconds()
	b.last = now
	b.tokens += elapsed * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// NewThroughputSLO wraps inner with throughput admission.
func NewThroughputSLO(eng *sim.Engine, inner Target, opt Options) *ThroughputSLO {
	return &ThroughputSLO{
		eng: eng, inner: inner, opt: opt,
		buckets: make(map[int]*tokenBucket),
	}
}

// SetContract grants proc a sustained IOPS rate with the given burst
// allowance. A rate ≤ 0 removes the contract.
func (t *ThroughputSLO) SetContract(proc int, iops float64, burst int) {
	if iops <= 0 {
		delete(t.buckets, proc)
		return
	}
	if burst < 1 {
		burst = 1
	}
	t.buckets[proc] = &tokenBucket{
		rate: iops, burst: float64(burst), tokens: float64(burst),
		last: t.eng.Now(),
	}
}

// Counts returns accepted/rejected totals at this layer.
func (t *ThroughputSLO) Counts() (accepted, rejected uint64) {
	return t.accepted, t.rejected
}

// Remaining reports the tenant's current token balance (diagnostics).
func (t *ThroughputSLO) Remaining(proc int) float64 {
	b, ok := t.buckets[proc]
	if !ok {
		return -1
	}
	// Peek without consuming.
	now := t.eng.Now()
	tokens := b.tokens + now.Sub(b.last).Seconds()*b.rate
	if tokens > b.burst {
		tokens = b.burst
	}
	return tokens
}

// SubmitSLO implements Target.
func (t *ThroughputSLO) SubmitSLO(req *blockio.Request, onDone func(error)) {
	if b, ok := t.buckets[req.Proc]; ok {
		if !b.take(t.eng.Now()) {
			t.rejected++
			// The predicted wait is the time until the next token.
			deficit := 1 - b.tokens
			wait := time.Duration(deficit / b.rate * float64(time.Second))
			busyErr := &BusyError{PredictedWait: wait}
			t.eng.After(t.opt.SyscallCost, func() { onDone(busyErr) })
			return
		}
	}
	t.accepted++
	t.inner.SubmitSLO(req, onDone)
}
