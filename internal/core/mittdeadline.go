package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/sim"
)

// MittDeadline integrates MittOS with the deadline IO scheduler —
// demonstrating that the admission principle carries across queueing
// disciplines (§3.4 names "noop/FIFO, CFQ, anticipatory, etc."). The
// deadline scheduler dispatches in sorted batches with FIFO-expiry
// preemption, so a newly arriving read's wait is bounded by the total
// predicted service of everything queued ahead of it plus the
// device-resident work; MittDeadline keeps that total as a running O(1)
// accumulator (reads only — queued writes can be starved behind it).
type MittDeadline struct {
	eng   *sim.Engine
	sched *iosched.DeadlineSched
	prof  *disk.Profile
	opt   Options
	dec   decider

	mirror *sstfMirror

	// queueTotal tracks the predicted service time of scheduler-held
	// requests per direction (0=read, 1=write).
	queueTotal [2]time.Duration

	accepted uint64
	rejected uint64
}

// NewMittDeadline builds the layer over a deadline scheduler.
func NewMittDeadline(eng *sim.Engine, sched *iosched.DeadlineSched,
	prof *disk.Profile, opt Options) *MittDeadline {
	m := &MittDeadline{
		eng: eng, sched: sched, prof: prof, opt: opt,
		mirror: newSSTFMirror(eng, prof, opt.Calibrate),
	}
	m.dec.thop = opt.Thop
	m.dec.shadow = opt.Shadow
	sched.SetDispatchHook(func(req *blockio.Request) {
		dir := 0
		if req.Op == blockio.Write {
			dir = 1
		}
		if t := m.queueTotal[dir] - req.PredictedService; t > 0 {
			m.queueTotal[dir] = t
		} else {
			m.queueTotal[dir] = 0
		}
		m.mirror.add(req)
		prev := req.OnComplete
		req.OnComplete = func(r *blockio.Request) {
			m.mirror.complete(r)
			if prev != nil {
				prev(r)
			}
		}
	})
	return m
}

// Accuracy returns shadow-mode counters.
func (m *MittDeadline) Accuracy() Accuracy { return m.dec.acc }

// Counts returns accepted/rejected totals.
func (m *MittDeadline) Counts() (accepted, rejected uint64) { return m.accepted, m.rejected }

// PredictWait estimates a new read's queueing delay: device drain + all
// queued reads (they sort ahead or behind, but the batch visits everything
// within ~one sweep) + expired writes' batch share.
func (m *MittDeadline) PredictWait() time.Duration {
	wait := m.mirror.drainTime() + m.queueTotal[0]
	// One write batch can interleave per WritesStarved read batches; the
	// conservative bound charges the queued writes' share.
	if m.queueTotal[1] > 0 {
		share := m.queueTotal[1] / time.Duration(m.sched.Config().WritesStarved)
		wait += share
	}
	return wait
}

// SubmitSLO implements Target.
func (m *MittDeadline) SubmitSLO(req *blockio.Request, onDone func(error)) {
	now := m.eng.Now()
	if req.SubmitTime == 0 {
		req.SubmitTime = now
	}
	wait := m.PredictWait()
	svc := m.mirror.svcTime(m.mirror.headPos, req.Offset, req.Size)
	req.PredictedWait = wait
	req.PredictedService = svc

	hasSLO := req.Deadline > blockio.NoDeadline
	rawBusy := hasSLO && wait > m.dec.threshold(req.Deadline)
	if hasSLO {
		if m.dec.shadow {
			req.ShadowBusy = rawBusy
		} else if m.dec.rejects(rawBusy) {
			m.rejected++
			busyErr := &BusyError{PredictedWait: wait}
			m.eng.After(m.opt.SyscallCost, func() { onDone(busyErr) })
			return
		}
	}

	m.accepted++
	dir := 0
	if req.Op == blockio.Write {
		dir = 1
	}
	m.queueTotal[dir] += svc

	prev := req.OnComplete
	req.OnComplete = func(r *blockio.Request) {
		if hasSLO && m.dec.shadow {
			actualWait := r.Latency() - svc
			if actualWait < 0 {
				actualWait = 0
			}
			m.dec.observe(rawBusy, wait, actualWait, r.Deadline)
		}
		if prev != nil {
			prev(r)
		}
		onDone(nil)
	}
	m.sched.Submit(req)
}
