package core

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
	"mittos/internal/ssd"
)

type ssdRig struct {
	eng  *sim.Engine
	dev  *ssd.SSD
	mitt *MittSSD
	ids  blockio.IDGen
}

func newSSDRig(t *testing.T) *ssdRig {
	t.Helper()
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Channels = 4
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 16
	cfg.PagesPerBlock = 64
	cfg.OverprovisionBlocks = 4
	dev := ssd.New(eng, cfg)
	return &ssdRig{eng: eng, dev: dev, mitt: NewMittSSD(eng, dev, DefaultOptions())}
}

func (r *ssdRig) io(op blockio.Op, off int64, size int, deadline time.Duration, cb func(error)) *blockio.Request {
	req := &blockio.Request{ID: r.ids.Next(), Op: op, Offset: off, Size: size, Deadline: deadline}
	r.mitt.SubmitSLO(req, cb)
	return req
}

func TestMittSSDIdleReadAccepted(t *testing.T) {
	r := newSSDRig(t)
	var err error = blockio.ErrBusy
	r.io(blockio.Read, 0, 4096, time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("idle SSD rejected: %v", err)
	}
}

func TestMittSSDReadBehindWriteRejected(t *testing.T) {
	// §4.3's motivating case: a <1ms-deadline read queued behind a program
	// on the same chip must be rejected instantly.
	r := newSSDRig(t)
	ps := r.dev.Config().PageSize
	r.io(blockio.Write, 0, ps, 0, func(error) {}) // occupies chip 0 ≥1ms
	var err error
	var rejectAt sim.Time
	r.io(blockio.Read, 0, 4096, 500*time.Microsecond, func(e error) {
		err = e
		rejectAt = r.eng.Now()
	})
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("read behind write not rejected: %v", err)
	}
	if rejectAt > sim.Time(100*time.Microsecond) {
		t.Fatalf("rejection at %v; must be instant", rejectAt)
	}
}

func TestMittSSDReadOnDifferentChipAccepted(t *testing.T) {
	r := newSSDRig(t)
	ps := r.dev.Config().PageSize
	r.io(blockio.Write, 0, ps, 0, func(error) {}) // chip 0
	var err error = blockio.ErrBusy
	// Page 1 lives on chip 1, channel 1: independent queue.
	r.io(blockio.Read, int64(ps), 4096, time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("read on independent chip rejected: %v", err)
	}
}

func TestMittSSDChannelOccupancyCounted(t *testing.T) {
	r := newSSDRig(t)
	ps := int64(r.dev.Config().PageSize)
	nChips := r.dev.Config().TotalChips()
	// Saturate channel 0 via several reads to its chips (chips 0 and 4 on
	// a 4-channel × 2 layout).
	for i := 0; i < 6; i++ {
		off := (int64(i%2)*int64(nChips)/2 + int64(i/2)*int64(nChips)) * ps
		_ = off
	}
	// Simpler: repeated reads to chip 0 stack its queue.
	for i := 0; i < 8; i++ {
		r.io(blockio.Read, 0, 4096, 0, func(error) {})
	}
	w := r.mitt.PredictWait(0, 4096)
	if w < 500*time.Microsecond {
		t.Fatalf("predicted wait %v after 8 stacked reads; want ≥ 0.5ms", w)
	}
	var err error
	r.io(blockio.Read, 0, 4096, 200*time.Microsecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("stacked chip read not rejected: %v", err)
	}
}

func TestMittSSDMultiPageAllOrNothing(t *testing.T) {
	// A striped read is rejected whole if ANY sub-page chip is busy.
	r := newSSDRig(t)
	ps := r.dev.Config().PageSize
	r.io(blockio.Write, 0, ps, 0, func(error) {}) // chip 0 busy ≥1ms
	reads, _, _ := r.dev.Stats()
	var err error
	// 4-page read covering chips 0..3.
	r.io(blockio.Read, 0, 4*ps, 300*time.Microsecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("striped read with one busy chip not rejected: %v", err)
	}
	newReads, _, _ := r.dev.Stats()
	if newReads != reads {
		t.Fatalf("sub-pages submitted despite rejection: %d → %d", reads, newReads)
	}
}

func TestMittSSDGCVisibleToPredictor(t *testing.T) {
	r := newSSDRig(t)
	cfg := r.dev.Config()
	ps := int64(cfg.PageSize)
	nChips := cfg.TotalChips()
	// Hammer chip 0 with overwrites until GC fires.
	gcSeen := false
	r.dev.SetGCHook(func(ssd.GCEvent) { gcSeen = true })
	// Note: MittSSD installed its own GC hook in NewMittSSD; re-installing
	// here would disconnect it, so instead we detect GC via erase stats.
	r.mitt = NewMittSSD(r.eng, r.dev, DefaultOptions())
	for i := 0; i < cfg.BlocksPerChip*cfg.PagesPerBlock*2; i++ {
		lp := int64(i%4) * int64(nChips)
		r.io(blockio.Write, lp*ps, cfg.PageSize, 0, func(error) {})
		r.eng.Run()
		_, _, erases := r.dev.Stats()
		if erases > 0 {
			break
		}
	}
	_, _, erases := r.dev.Stats()
	if erases == 0 {
		t.Skip("GC did not trigger with this geometry")
	}
	_ = gcSeen
	// Immediately after a GC-completing write burst, the chip's predicted
	// wait must reflect the 6ms erase.
	// Trigger one more write to the same chip and check the wait jumps.
	var waits []time.Duration
	for i := 0; i < 2; i++ {
		waits = append(waits, r.mitt.PredictWait(0, 4096))
		r.io(blockio.Write, 0, cfg.PageSize, 0, func(error) {})
	}
	// We can't assert exact values (GC timing interleaves), but the
	// predictor must never report negative waits and must see the erase
	// when it happens mid-sequence.
	for _, w := range waits {
		if w < 0 {
			t.Fatalf("negative predicted wait %v", w)
		}
	}
	r.eng.Run()
}

func TestMittSSDPredictionAccuracyShadow(t *testing.T) {
	eng := sim.NewEngine()
	cfg := ssd.DefaultConfig()
	cfg.Channels = 4
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 16
	cfg.PagesPerBlock = 64
	cfg.OverprovisionBlocks = 4
	dev := ssd.New(eng, cfg)
	opt := DefaultOptions()
	opt.Shadow = true
	opt.Thop = 0 // single machine, as §7.6
	mitt := NewMittSSD(eng, dev, opt)
	rng := sim.NewRNG(31, "ssd-acc")
	var ids blockio.IDGen
	logical := cfg.LogicalBytes()

	// Background writer (the noise) + read probes with a 1ms deadline.
	eng.NewTicker(400*time.Microsecond, func() {
		req := &blockio.Request{ID: ids.Next(), Op: blockio.Write,
			Offset: rng.Int63n(logical/int64(cfg.PageSize)) * int64(cfg.PageSize), Size: cfg.PageSize}
		mitt.SubmitSLO(req, func(error) {})
	})
	eng.NewTicker(150*time.Microsecond, func() {
		req := &blockio.Request{ID: ids.Next(), Op: blockio.Read,
			Offset: rng.Int63n(logical - 4096), Size: 4096, Deadline: 1500 * time.Microsecond}
		mitt.SubmitSLO(req, func(error) {})
	})
	eng.RunUntil(sim.Time(2 * sim.Second))
	acc := mitt.Accuracy()
	if acc.Total() < 1000 {
		t.Fatalf("verdicted %d", acc.Total())
	}
	if acc.InaccuracyRate() > 0.05 {
		t.Fatalf("MittSSD inaccuracy %.2f%% (FP %.2f%%, FN %.2f%%)",
			100*acc.InaccuracyRate(), 100*acc.FalsePosRate(), 100*acc.FalseNegRate())
	}
	if acc.MeanAbsDiff() > time.Millisecond {
		t.Fatalf("MittSSD mean abs diff %v > 1ms (§7.6)", acc.MeanAbsDiff())
	}
}

func TestMittSSDCountsAndInjection(t *testing.T) {
	r := newSSDRig(t)
	r.mitt.SetErrorInjection(0, 1.0, sim.NewRNG(2, "inj"))
	var err error
	r.io(blockio.Read, 0, 4096, time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("FP injection accepted: %v", err)
	}
	acc, rej := r.mitt.Counts()
	if acc != 0 || rej != 1 {
		t.Fatalf("counts = %d/%d", acc, rej)
	}
}
