package core

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/metrics"
	"mittos/internal/sim"
	"mittos/internal/ssd"
)

// MittSSD is MittOS integrated with host-managed flash (§4.3).
//
// Unlike disks, an SSD has no single queue: every chip queues
// independently and chips behind one channel share its bus. MittSSD keeps
// the next-available time of every chip (O(1) per-IO prediction, §4.3:
// "the overhead is only 300ns") plus the count of outstanding IOs per
// channel; the predicted wait of a page IO is
//
//	max(0, TchipNextFree − now) + 60µs × #outstanding-on-same-channel.
//
// A multi-page request is striped across chips; if ANY sub-page would
// violate the deadline, the whole request gets EBUSY and nothing is
// submitted.
//
// Because the host owns the FTL on OpenChannel SSDs, MittSSD also knows
// program times (upper vs lower pages, via the profiled 512-entry pattern)
// and garbage-collection episodes (via the GC hook), which it folds into
// the per-chip next-free times.
type MittSSD struct {
	eng *sim.Engine
	dev *ssd.SSD
	opt Options
	dec decider

	chipNextFree []sim.Time
	chanOut      []int // outstanding page IOs per channel

	pageRead  time.Duration // profiled unloaded page read (100µs)
	chanDelay time.Duration // profiled per-outstanding-IO channel delay (60µs)

	// pattern is the profiled 512-entry per-page program-time array
	// ("the profiled data can be stored in an 512-item array", §4.3);
	// writeIdx tracks each chip's predicted write frontier through it, so
	// back-to-back writes get distinct lower/upper predictions.
	pattern  []time.Duration
	writeIdx []int

	accepted uint64
	rejected uint64

	replies busyReplies
	opFree  []*ssdOp
	decFree []*chanDec
	// chanPages is admission scratch: pages of the current request per
	// channel. Invariant: all-zero between submissions — each accepted
	// submission re-zeroes exactly the channels it touched.
	chanPages []int

	rec *metrics.Recorder
}

// ssdOp is the pooled per-IO completion context.
type ssdOp struct {
	m       *MittSSD
	hasSLO  bool
	rawBusy bool
	wait    time.Duration
	svc     time.Duration
	prev    func(*blockio.Request)
	onDone  func(error)
	fn      func(*blockio.Request) // pre-bound op.done
}

func (op *ssdOp) done(r *blockio.Request) {
	m, prev, onDone := op.m, op.prev, op.onDone
	hasSLO, rawBusy, wait, svc := op.hasSLO, op.rawBusy, op.wait, op.svc
	op.prev, op.onDone = nil, nil
	m.opFree = append(m.opFree, op)
	if hasSLO && m.dec.shadow {
		actualWait := r.Latency() - svc
		if actualWait < 0 {
			actualWait = 0
		}
		m.dec.observe(rawBusy, wait, actualWait, r.Deadline)
	}
	if m.rec != nil {
		actualWait := r.Latency() - svc
		if actualWait < 0 {
			actualWait = 0
		}
		m.rec.Prediction(metrics.RMittSSD, r, wait, actualWait)
	}
	err := r.Err
	if prev != nil {
		prev(r)
	}
	onDone(err)
}

// chanDec is one pooled channel-occupancy decrement, scheduled at a page's
// predicted transfer completion.
type chanDec struct {
	m  *MittSSD
	ch int
	fn func() // pre-bound d.fire
}

func (d *chanDec) fire() {
	m, ch := d.m, d.ch
	m.decFree = append(m.decFree, d)
	if m.chanOut[ch] > 0 {
		m.chanOut[ch]--
	}
}

// SetRecorder attaches a metrics recorder (nil disables, the default).
func (m *MittSSD) SetRecorder(rec *metrics.Recorder) { m.rec = rec }

// NewMittSSD builds the layer over a host-managed SSD. The read/channel
// costs come from the vendor NAND spec or profiling (§4.3); we take them
// from the device config the same way the paper takes them from the
// OpenChannel spec sheet.
func NewMittSSD(eng *sim.Engine, dev *ssd.SSD, opt Options) *MittSSD {
	cfg := dev.Config()
	m := &MittSSD{
		eng:          eng,
		dev:          dev,
		opt:          opt,
		chipNextFree: make([]sim.Time, cfg.TotalChips()),
		chanOut:      make([]int, cfg.Channels),
		pageRead:     cfg.ChipReadTime + cfg.ChannelXferTime,
		chanDelay:    cfg.ChannelXferTime,
		pattern:      cfg.ProgramPattern(),
		writeIdx:     make([]int, cfg.TotalChips()),
		chanPages:    make([]int, cfg.Channels),
	}
	m.dec.thop = opt.Thop
	m.dec.shadow = opt.Shadow
	dev.SetGCHook(func(ev ssd.GCEvent) {
		// Host-initiated GC: the chip is busy for the whole episode, and
		// the page moves advance the write frontier.
		now := m.eng.Now()
		if m.chipNextFree[ev.Chip] < now {
			m.chipNextFree[ev.Chip] = now
		}
		m.chipNextFree[ev.Chip] = m.chipNextFree[ev.Chip].Add(ev.BusyFor)
		m.writeIdx[ev.Chip] += ev.MovedPages
	})
	return m
}

// SetErrorInjection enables §7.7 fault injection.
func (m *MittSSD) SetErrorInjection(fnRate, fpRate float64, rng *sim.RNG) {
	m.dec.injFN, m.dec.injFP, m.dec.injRNG = fnRate, fpRate, rng
}

// SetMiscalibration distorts every wait prediction to wait×scale + bias
// (scale 0 = no scaling; (0,0) restores the calibrated predictor).
func (m *MittSSD) SetMiscalibration(bias time.Duration, scale float64) {
	m.dec.misBias, m.dec.misScale = bias, scale
}

// Accuracy returns shadow-mode counters.
func (m *MittSSD) Accuracy() Accuracy { return m.dec.acc }

// Counts returns accepted/rejected totals.
func (m *MittSSD) Counts() (accepted, rejected uint64) { return m.accepted, m.rejected }

// PredictWait returns the worst sub-page wait for a request at [off, size).
func (m *MittSSD) PredictWait(off int64, size int) time.Duration {
	now := m.eng.Now()
	first, count := m.dev.PageSpan(off, size)
	worst := time.Duration(0)
	ps := int64(m.dev.Config().PageSize)
	for p := first; p < first+count; p++ {
		chipID, chanID := m.dev.ChipForOffset(p * ps)
		w := time.Duration(0)
		if m.chipNextFree[chipID] > now {
			w = m.chipNextFree[chipID].Sub(now)
		}
		w += time.Duration(m.chanOut[chanID]) * m.chanDelay
		if w > worst {
			worst = w
		}
	}
	return worst
}

// SubmitSLO implements Target.
func (m *MittSSD) SubmitSLO(req *blockio.Request, onDone func(error)) {
	now := m.eng.Now()
	if req.SubmitTime == 0 {
		req.SubmitTime = now
	}
	wait := m.dec.adjust(m.PredictWait(req.Offset, req.Size))
	req.PredictedWait = wait
	// Per-request predicted service: pages run in parallel across chips,
	// but pages sharing a channel serialize their transfers.
	_, nPages := m.dev.PageSpan(req.Offset, req.Size)
	perChan := (int(nPages) + m.dev.Config().Channels - 1) / m.dev.Config().Channels
	svc := m.pageRead + time.Duration(perChan-1)*m.chanDelay
	if req.Op == blockio.Write {
		svc = m.chanDelay + m.dev.Config().LowerPageProgram +
			time.Duration(perChan-1)*m.chanDelay
	}
	req.PredictedService = svc

	hasSLO := req.Deadline > blockio.NoDeadline
	rawBusy := hasSLO && wait > m.dec.threshold(req.Deadline)
	if hasSLO {
		if m.dec.shadow {
			req.ShadowBusy = rawBusy
			if rawBusy {
				m.rec.ShadowBusy(metrics.RMittSSD)
			}
		} else if m.dec.rejects(rawBusy) {
			// "If any sub-IO violates the deadline, EBUSY is returned for
			// the entire request; all sub-pages are not submitted." (§4.3)
			m.rejected++
			m.rec.Rejected(metrics.RMittSSD, req, wait, false)
			m.replies.deliver(m.eng, m.opt.SyscallCost, onDone, &BusyError{PredictedWait: wait})
			return
		}
	}

	m.accepted++
	m.rec.Admitted(metrics.RMittSSD, req)
	// Advance per-chip next-free times and channel occupancy. Channel
	// occupancy reflects pending *transfers*: each page holds its channel
	// for ~one transfer slot, so the decrement is scheduled at the page's
	// predicted transfer completion, not the request's (holding the count
	// for a striped request's whole lifetime would overestimate waits for
	// everyone else — false positives).
	first, count := m.dev.PageSpan(req.Offset, req.Size)
	ps := int64(m.dev.Config().PageSize)
	for p := first; p < first+count; p++ {
		chipID, chanID := m.dev.ChipForOffset(p * ps)
		if m.chipNextFree[chipID] < now {
			m.chipNextFree[chipID] = now
		}
		var cost, xferAt time.Duration
		if req.Op == blockio.Read {
			// TchipNextFree += 100µs per new page read (§4.3).
			cost = m.pageRead
			xferAt = m.pageRead + time.Duration(m.chanPages[chanID])*m.chanDelay
		} else {
			cost = m.pattern[m.writeIdx[chipID]%len(m.pattern)]
			m.writeIdx[chipID]++
			// A write's transfer happens up front; the chip then programs
			// for 1–2ms with the channel already free.
			xferAt = time.Duration(m.chanPages[chanID]+1) * m.chanDelay
		}
		m.chanPages[chanID]++
		m.chipNextFree[chipID] = m.chipNextFree[chipID].Add(cost)
		m.chanOut[chanID]++
		var d *chanDec
		if n := len(m.decFree); n > 0 {
			d = m.decFree[n-1]
			m.decFree = m.decFree[:n-1]
		} else {
			d = &chanDec{m: m}
			d.fn = d.fire
		}
		d.ch = chanID
		m.eng.After(xferAt, d.fn)
	}
	// Restore the scratch's all-zero invariant, touching only the channels
	// this request used instead of sweeping the whole array per submit.
	if count >= int64(len(m.chanPages)) {
		for i := range m.chanPages {
			m.chanPages[i] = 0
		}
	} else {
		for p := first; p < first+count; p++ {
			_, chanID := m.dev.ChipForOffset(p * ps)
			m.chanPages[chanID] = 0
		}
	}

	var op *ssdOp
	if n := len(m.opFree); n > 0 {
		op = m.opFree[n-1]
		m.opFree = m.opFree[:n-1]
	} else {
		op = &ssdOp{m: m}
		op.fn = op.done
	}
	op.hasSLO, op.rawBusy, op.wait, op.svc = hasSLO, rawBusy, wait, svc
	op.prev, op.onDone = req.OnComplete, onDone
	req.OnComplete = op.fn
	m.dev.Submit(req)
}
