package core

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/sim"
)

type dlRig struct {
	eng  *sim.Engine
	disk *disk.Disk
	mitt *MittDeadline
	ids  blockio.IDGen
}

func newDLRig(t *testing.T, opt Options) *dlRig {
	t.Helper()
	eng := sim.NewEngine()
	cfg := disk.DefaultConfig()
	d := disk.New(eng, cfg, sim.NewRNG(81, t.Name()))
	sched := iosched.NewDeadline(eng, iosched.DefaultDeadlineConfig(), d)
	prof := disk.ProfileTwin(cfg, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	return &dlRig{eng: eng, disk: d, mitt: NewMittDeadline(eng, sched, prof, opt)}
}

func (r *dlRig) read(off int64, deadline time.Duration, cb func(error)) {
	req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Read, Offset: off,
		Size: 4096, Deadline: deadline}
	r.mitt.SubmitSLO(req, cb)
}

func TestMittDeadlineIdleAccepts(t *testing.T) {
	r := newDLRig(t, DefaultOptions())
	var err error = blockio.ErrBusy
	r.read(100<<30, 20*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("idle read: %v", err)
	}
}

func TestMittDeadlineBusyRejects(t *testing.T) {
	r := newDLRig(t, DefaultOptions())
	for i := 0; i < 15; i++ {
		r.read(int64(i+1)*(40<<30), 0, func(error) {})
	}
	var err error
	r.read(900<<30, 10*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !IsBusy(err) {
		t.Fatalf("busy read: %v, want EBUSY", err)
	}
	acc, rej := r.mitt.Counts()
	if rej != 1 || acc != 15 {
		t.Fatalf("counts = %d/%d", acc, rej)
	}
}

func TestMittDeadlineQueuedWritesCharged(t *testing.T) {
	r := newDLRig(t, DefaultOptions())
	// Queue a pile of writes beyond the NVRAM (writes over the buffer go
	// to the spindle); the read's predicted wait must include their share.
	for i := 0; i < 40; i++ {
		req := &blockio.Request{ID: r.ids.Next(), Op: blockio.Write,
			Offset: int64(i+1) * (20 << 30), Size: 1 << 20}
		r.mitt.SubmitSLO(req, func(error) {})
	}
	if w := r.mitt.PredictWait(); w == 0 {
		t.Fatal("write backlog invisible to the read predictor")
	}
	r.eng.Run()
}

func TestMittDeadlinePredictionDrains(t *testing.T) {
	r := newDLRig(t, DefaultOptions())
	for i := 0; i < 10; i++ {
		r.read(int64(i+1)*(50<<30), 0, func(error) {})
	}
	if w := r.mitt.PredictWait(); w < 10*time.Millisecond {
		t.Fatalf("queued wait %v too small", w)
	}
	r.eng.Run()
	if w := r.mitt.PredictWait(); w > 5*time.Millisecond {
		t.Fatalf("post-drain wait %v; accumulator leaked", w)
	}
}

func TestMittDeadlineShadowAccuracy(t *testing.T) {
	opt := DefaultOptions()
	opt.Shadow = true
	r := newDLRig(t, opt)
	rng := sim.NewRNG(9, "offs")
	r.eng.NewTicker(25*time.Millisecond, func() {
		r.read(rng.Int63n(900<<30), 25*time.Millisecond, func(error) {})
	})
	r.eng.NewTicker(300*time.Millisecond, func() {
		for i := 0; i < 4; i++ {
			r.read(rng.Int63n(900<<30), 25*time.Millisecond, func(error) {})
		}
	})
	r.eng.RunUntil(sim.Time(10 * sim.Second))
	acc := r.mitt.Accuracy()
	if acc.Total() < 300 {
		t.Fatalf("verdicted %d", acc.Total())
	}
	if acc.InaccuracyRate() > 0.12 {
		t.Fatalf("MittDeadline inaccuracy %.1f%% (FP %.1f%%, FN %.1f%%)",
			100*acc.InaccuracyRate(), 100*acc.FalsePosRate(), 100*acc.FalseNegRate())
	}
}
