package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(7*time.Millisecond, func() { at = e.Now() })
	e.Run()
	if at != Time(7*time.Millisecond) {
		t.Fatalf("event saw clock %v, want 7ms", at)
	}
	if e.Now() != Time(7*time.Millisecond) {
		t.Fatalf("final clock %v, want 7ms", e.Now())
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5*time.Millisecond, func() {
		e.Schedule(-time.Second, func() { ran = true })
		if e.Pending() != 1 {
			t.Fatalf("pending = %d", e.Pending())
		}
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now() != Time(5*time.Millisecond) {
		t.Fatalf("clock went backwards: %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(time.Millisecond, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Cancelling twice is a no-op.
	ev.Cancel()
}

func TestCancelDuringRun(t *testing.T) {
	e := NewEngine()
	ran := false
	var ev *Event
	e.Schedule(time.Millisecond, func() { ev.Cancel() })
	ev = e.Schedule(2*time.Millisecond, func() { ran = true })
	e.Run()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Duration
	for _, d := range []Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(Time(2 * time.Millisecond))
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1ms and 2ms", fired)
	}
	if e.Now() != Time(2*time.Millisecond) {
		t.Fatalf("clock %v, want 2ms", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event did not run: %v", fired)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Second)
	if e.Now() != Time(time.Second) {
		t.Fatalf("clock %v, want 1s", e.Now())
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (halt should stop the loop)", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 after resuming", count)
	}
}

// TestHaltDuringRunUntilKeepsDueEvents is the REVIEW.md repro: Halt stops
// RunUntil while an event inside the bound is still queued (on a higher
// wheel level than the one that fired). The clock must not jump to the
// bound — that would strand the pending event's slot behind its level
// cursor and panic the next findMin — and resuming must fire it normally.
func TestHaltDuringRunUntilKeepsDueEvents(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, func() {
		fired = append(fired, e.Now())
		e.Halt()
	})
	e.At(500, func() { fired = append(fired, e.Now()) }) // level-1 slot
	e.RunUntil(1000)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired %v before halt, want [10ns]", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock %v after halted RunUntil, want 10ns (due event still queued)", e.Now())
	}
	e.RunUntil(1000) // resume: must not panic, must fire the 500ns event
	if len(fired) != 2 || fired[1] != 500 {
		t.Fatalf("fired %v after resume, want [10ns 500ns]", fired)
	}
	if e.Now() != 1000 {
		t.Fatalf("clock %v after drained RunUntil, want 1µs", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// TestHaltDuringRunUntilNothingDue checks the complementary case: when the
// halt leaves no events inside the bound, the clock still advances to it.
func TestHaltDuringRunUntilNothingDue(t *testing.T) {
	e := NewEngine()
	e.At(10, func() { e.Halt() })
	e.At(Time(time.Second), func() {})
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock %v, want 1µs (no due events remained)", e.Now())
	}
}

func TestEventsScheduledFromEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Microsecond, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != Time(99*time.Microsecond) {
		t.Fatalf("clock %v, want 99µs", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tk *Ticker
	tk = e.NewTicker(10*time.Millisecond, func() {
		ticks++
		if ticks == 5 {
			tk.Stop()
		}
	})
	e.RunUntil(Time(time.Second))
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-period ticker")
		}
	}()
	NewEngine().NewTicker(0, func() {})
}

func TestAtNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	NewEngine().At(0, nil)
}

func TestTimeAddSaturates(t *testing.T) {
	if MaxTime.Add(time.Hour) != MaxTime {
		t.Fatal("Add should saturate at MaxTime")
	}
	if got := Time(math.MaxInt64 - 5).Add(time.Hour); got != MaxTime {
		t.Fatalf("near-max positive overflow: got %d, want MaxTime", got)
	}
	// Negative overflow must clamp at MinTime, not wrap around to a huge
	// positive timestamp.
	if got := MinTime.Add(-time.Hour); got != MinTime {
		t.Fatalf("Add should saturate at MinTime, got %d", got)
	}
	if got := Time(math.MinInt64 + 5).Add(-time.Hour); got != MinTime {
		t.Fatalf("near-min negative overflow: got %d, want MinTime", got)
	}
	// Non-overflowing sums are untouched.
	if got := Time(100).Add(-30 * time.Nanosecond); got != 70 {
		t.Fatalf("plain negative add: got %d, want 70", got)
	}
}

func TestPropertyEventOrderMatchesSort(t *testing.T) {
	// Property: for any set of delays, events fire in nondecreasing
	// timestamp order, and equal timestamps preserve insertion order.
	f := func(delaysRaw []uint16) bool {
		e := NewEngine()
		type firing struct {
			at  Time
			idx int
		}
		var fired []firing
		for i, d := range delaysRaw {
			i, d := i, d
			e.Schedule(Duration(d)*time.Microsecond, func() {
				fired = append(fired, firing{e.Now(), i})
			})
		}
		e.Run()
		if len(fired) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].idx < fired[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Duration(d)*time.Microsecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineString(t *testing.T) {
	e := NewEngine()
	if e.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestAfterOrderingMatchesSchedule(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.FireAt(Time(10*time.Millisecond), func() { got = append(got, 10+1) }) // same instant: FIFO after
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFreelistReusesOwnedEvents(t *testing.T) {
	e := NewEngine()
	// Steady state: one owned event in flight, rescheduled from its own
	// callback. After warmup every firing must reuse the recycled Event.
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(time.Microsecond, tick)
	e.Run()
	if n != 1000 {
		t.Fatalf("ticks = %d, want 1000", n)
	}
	if got := len(e.free); got != 1 {
		t.Fatalf("freelist holds %d events, want the 1 recycled steady-state event", got)
	}
	// The whole run must have allocated exactly one Event (the first).
	e2 := NewEngine()
	e2.After(time.Microsecond, func() {})
	e2.Run() // prime the freelist
	allocs := testing.AllocsPerRun(100, func() {
		e2.After(time.Microsecond, func() {})
		e2.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state After+Step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestScheduleHandlesAreNeverRecycled(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(time.Millisecond, func() {})
	e.Run()
	// A fired handle-returning event must not enter the freelist: a caller
	// could still Cancel it, and recycling would alias a later event.
	if len(e.free) != 0 {
		t.Fatalf("freelist holds %d events after a Schedule fire, want 0", len(e.free))
	}
	ev.Cancel() // late cancel of a fired event: documented no-op
	if ev.Cancelled() {
		t.Fatal("Cancel after fire should be a no-op")
	}
}

func TestCancelUpdatesPendingImmediately(t *testing.T) {
	e := NewEngine()
	evs := make([]*Event, 10)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for _, ev := range evs[:7] {
		ev.Cancel()
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d after 7 cancels, want 3", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3 (cancelled events must not count)", e.Fired())
	}
}

func TestMassCancelUnlinksImmediately(t *testing.T) {
	e := NewEngine()
	// Schedule a large batch and cancel most of it: the wheel unlinks each
	// cancelled event on the spot — no tombstones survive anywhere.
	const total, keep = 1024, 16
	evs := make([]*Event, total)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i+1)*time.Microsecond, func() {})
	}
	for i, ev := range evs {
		if i%64 != 0 { // cancel 1008, keep 16
			ev.Cancel()
		}
	}
	if e.Pending() != keep {
		t.Fatalf("Pending = %d, want %d", e.Pending(), keep)
	}
	if q := e.queuedCount(); q != keep {
		t.Fatalf("wheel holds %d entries after mass cancel, want %d (unlink broken)", q, keep)
	}
	// The survivors still fire in timestamp order with correct counters.
	e.Run()
	if e.Fired() != keep {
		t.Fatalf("Fired = %d, want %d", e.Fired(), keep)
	}
	if e.Pending() != 0 || e.queuedCount() != 0 {
		t.Fatalf("pending=%d queued=%d after drain, want 0/0", e.Pending(), e.queuedCount())
	}
}

func TestMassCancelPreservesOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]*Event, 256)
	for i := range evs {
		i := i
		// Interleaved timestamps with duplicates to stress (time, seq) order.
		evs[i] = e.Schedule(time.Duration(i%16)*time.Millisecond, func() { got = append(got, i) })
	}
	for i, ev := range evs {
		if i%2 == 1 {
			ev.Cancel() // unlinks in place; survivors must keep (time, seq) order
		}
	}
	e.Run()
	if len(got) != 128 {
		t.Fatalf("fired %d, want 128", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a%16 > b%16 || (a%16 == b%16 && a > b) {
			t.Fatalf("order violated after compaction: %d before %d", a, b)
		}
	}
}

func TestTickerSingleClosure(t *testing.T) {
	// The ticker must not allocate a fresh closure per tick; 1000 ticks of a
	// primed ticker allocate only the per-tick handle Events.
	e := NewEngine()
	ticks := 0
	tk := e.NewTicker(time.Millisecond, func() { ticks++ })
	e.RunFor(time.Second)
	tk.Stop()
	if ticks != 1000 {
		t.Fatalf("ticks = %d, want 1000", ticks)
	}
	e.Run()
	if ticks != 1000 {
		t.Fatal("ticker fired after Stop")
	}
}
