package sim

import "math/bits"

// The engine's event queue is a hierarchical timing wheel (Varghese &
// Lauck), replacing the earlier hand-specialized binary min-heap (retained
// in heaporacle.go as the differential-testing oracle and benchmark
// baseline).
//
// Layout: wheelLevels levels of wheelSlots slots each. A slot at level k
// spans 256^k ns, so level 0 resolves exact nanoseconds, level 1 spans
// 256 ns per slot, and so on up to level 5 (2^40 ns ≈ 18 min per slot);
// the whole wheel covers 2^48 ns ≈ 3.3 days of virtual time ahead of the
// clock. An event at absolute time t is hung on the lowest level whose
// current rotation contains t — equivalently, the level of the highest
// base-256 digit in which t and now differ. Events further out than the
// top level's rotation (notably saturating MaxTime deadlines) park on an
// unsorted overflow list until the clock enters their 2^48 ns superslot.
//
// Because placement requires t's digits above the event's level to equal
// now's, a level's occupied slots always sit at or after its cursor (the
// digit of now at that level): there are no wrapped slots, and scanning a
// level's occupancy bitmap from the cursor finds its earliest slot.
//
// Cascading: when the cursor digit at level k reaches an occupied slot,
// that slot's events are redistributed — each lands at a strictly lower
// level, so an event cascades at most wheelLevels-1 times in its life and
// schedule/cancel/fire are all O(1) amortized. Cancel is an intrusive
// unlink from the event's doubly-linked slot list: no tombstones, no
// compaction sweeps.
//
// Determinism: events must fire in exactly the (time, seq) total order the
// heap produced — FIFO within a timestamp. Within one rotation a level-0
// slot holds only events of a single exact timestamp, so it suffices to
// keep level-0 lists sorted by seq: direct posts carry the largest seq yet
// issued and append in one compare, and the rare cascade or overflow
// promotion into level 0 insertion-sorts backward from the tail. Levels
// ≥ 1 stay unordered; their minimum is found by list scan exactly once per
// slot activation, after which the slot cascades and the cost is not paid
// again.
//
// Solo fast path: a post into an empty queue parks the event unplaced in
// Engine.solo (qlevel == soloLevel) instead of hanging it on the wheel —
// the common "next timer" case, e.g. a device model's single in-flight
// completion, costs no slot, bitmap, or cascade work at all. The parked
// event is placed normally the moment a second event arrives.
const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits // 256 slots per level
	wheelMask  = wheelSlots - 1
	// wheelLevels bounds the horizon at 2^(8·6) = 2^48 ns ≈ 3.3 days of
	// virtual time — far past any experiment leg, so in practice only
	// saturating MaxTime deadlines overflow.
	wheelLevels       = 6
	wheelWords        = wheelSlots / 64            // occupancy-bitmap words per level
	wheelHorizonShift = wheelBits * wheelLevels    // 48
	overflowLevel     = int16(wheelLevels)         // Event.qlevel: parked on the overflow list
	unqueuedLevel     = int16(-1)                  // Event.qlevel: not in the queue
	soloLevel         = int16(-2)                  // Event.qlevel: parked in Engine.solo, unplaced
)

// evList is one slot's intrusive doubly-linked event list (also the shape
// of the overflow list). n is the occupancy, kept for the max-slot stat
// and for O(1) cascade accounting.
type evList struct {
	head, tail *Event
	n          int32
}

// pushBack appends ev. For direct posts this preserves level-0 seq order
// for free: a fresh event's seq exceeds every queued event's.
func (l *evList) pushBack(ev *Event) {
	ev.prev = l.tail
	ev.next = nil
	if l.tail == nil {
		l.head = ev
	} else {
		l.tail.next = ev
	}
	l.tail = ev
	l.n++
}

// insertBySeq inserts ev into a seq-sorted list, walking backward from the
// tail. Only cascades and overflow promotions into level 0 ever walk;
// their re-inserted events are few and slots are shallow.
func (l *evList) insertBySeq(ev *Event) {
	after := l.tail
	for after != nil && after.seq > ev.seq {
		after = after.prev
	}
	if after == nil {
		ev.prev, ev.next = nil, l.head
		if l.head == nil {
			l.tail = ev
		} else {
			l.head.prev = ev
		}
		l.head = ev
	} else {
		ev.prev, ev.next = after, after.next
		if after.next == nil {
			l.tail = ev
		} else {
			after.next.prev = ev
		}
		after.next = ev
	}
	l.n++
}

// remove unlinks ev in O(1).
func (l *evList) remove(ev *Event) {
	if ev.prev == nil {
		l.head = ev.next
	} else {
		ev.prev.next = ev.next
	}
	if ev.next == nil {
		l.tail = ev.prev
	} else {
		ev.next.prev = ev.prev
	}
	ev.prev, ev.next = nil, nil
	l.n--
}

// minEvent scans for the (time, seq) minimum. Used on level ≥ 1 slots and
// the overflow list, which are not time-ordered; each such slot is scanned
// at most once before it cascades, so the cost amortizes away.
func (l *evList) minEvent() *Event {
	best := l.head
	for ev := best.next; ev != nil; ev = ev.next {
		if ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			best = ev
		}
	}
	return best
}

// place hangs ev (at, seq already set) on the wheel or the overflow list.
func (e *Engine) place(ev *Event) {
	t := ev.at
	// The level is the highest base-256 digit where t and now differ; the
	// xor localizes it without a division or loop.
	x := uint64(t) ^ uint64(e.now)
	lvl := 0
	if x != 0 {
		lvl = (bits.Len64(x) - 1) >> 3
	}
	if lvl >= wheelLevels {
		// Beyond the top level's rotation — typically a saturating MaxTime
		// deadline. Park until the clock enters the event's superslot.
		ev.qlevel, ev.qslot = overflowLevel, 0
		e.overflow.pushBack(ev)
		return
	}
	s := int(uint64(t)>>(uint(lvl)*wheelBits)) & wheelMask
	ev.qlevel, ev.qslot = int16(lvl), int16(s)
	l := &e.wheel[lvl][s]
	if lvl == 0 && l.tail != nil && l.tail.seq > ev.seq {
		// A cascade or promotion delivering an older event into a slot that
		// already holds a newer one: keep the list seq-sorted so FIFO within
		// the timestamp survives.
		l.insertBySeq(ev)
	} else {
		l.pushBack(ev)
	}
	e.occ[lvl][s>>6] |= 1 << (uint(s) & 63)
	e.lvlN[lvl]++
	if int(l.n) > e.maxSlot {
		e.maxSlot = int(l.n)
	}
}

// unlink removes ev from whichever list holds it, clearing the occupancy
// bit when its slot empties. O(1): this is what makes Cancel cheap.
func (e *Engine) unlink(ev *Event) {
	if ev.qlevel == soloLevel {
		e.solo = nil
		ev.qlevel = unqueuedLevel
		return
	}
	if ev.qlevel == overflowLevel {
		e.overflow.remove(ev)
	} else {
		lvl, s := int(ev.qlevel), int(ev.qslot)
		l := &e.wheel[lvl][s]
		l.remove(ev)
		if l.head == nil {
			e.occ[lvl][s>>6] &^= 1 << (uint(s) & 63)
		}
		e.lvlN[lvl]--
	}
	ev.qlevel = unqueuedLevel
}

// cascadeSlot redistributes one cursor slot's events downward. Every event
// lands at a strictly lower level (its digits at and above lvl now match
// now's), so cascading cannot loop and each event moves at most
// wheelLevels-1 times over its lifetime.
func (e *Engine) cascadeSlot(lvl, s int) {
	l := &e.wheel[lvl][s]
	ev := l.head
	moved := l.n
	l.head, l.tail, l.n = nil, nil, 0
	e.occ[lvl][s>>6] &^= 1 << (uint(s) & 63)
	e.lvlN[lvl] -= int(moved)
	e.cascades += uint64(moved)
	for ev != nil {
		next := ev.next
		ev.prev, ev.next = nil, nil
		e.place(ev)
		ev = next
	}
}

// scanOcc returns the first occupied slot ≥ from at the given level. The
// caller guarantees the level is nonempty; since occupied slots never sit
// before the cursor, the scan cannot miss.
func (e *Engine) scanOcc(lvl, from int) int {
	w := from >> 6
	word := e.occ[lvl][w] &^ (1<<uint(from&63) - 1)
	for word == 0 {
		w++
		word = e.occ[lvl][w]
	}
	return w<<6 + bits.TrailingZeros64(word)
}

// findMin returns the queue's (time, seq)-minimum event without advancing
// the clock, cascading any due cursor slots along the way. The result is
// cached so a peek (RunUntil's bound check) and the fire that follows pay
// for one search.
func (e *Engine) findMin() *Event {
	if e.cachedMin != nil {
		return e.cachedMin
	}
	if e.nLive == 0 {
		return nil
	}
	// Bring events whose slot range contains the present down toward level
	// 0. Top-down, so a cascade landing in a lower cursor slot is picked up
	// by the next iteration.
	for lvl := wheelLevels - 1; lvl >= 1; lvl-- {
		if e.lvlN[lvl] == 0 {
			continue
		}
		c := int(uint64(e.now)>>(uint(lvl)*wheelBits)) & wheelMask
		if e.wheel[lvl][c].head != nil {
			e.cascadeSlot(lvl, c)
		}
	}
	// After the pass no cursor slot at level ≥ 1 is occupied, so the first
	// occupied slot at the lowest nonempty level bounds every other level's
	// events from below — and within one rotation a level-0 slot holds a
	// single exact timestamp, seq-sorted, so its head is the minimum.
	var min *Event
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if e.lvlN[lvl] == 0 {
			continue
		}
		c := int(uint64(e.now)>>(uint(lvl)*wheelBits)) & wheelMask
		l := &e.wheel[lvl][e.scanOcc(lvl, c)]
		if lvl == 0 {
			min = l.head
		} else {
			min = l.minEvent()
		}
		break
	}
	if min == nil {
		// Wheel empty but live events remain: they are all parked beyond
		// the horizon. Rare (an experiment would need to idle for virtual
		// days, or drain MaxTime deadlines), so a list scan is fine.
		min = e.overflow.minEvent()
	}
	e.cachedMin = min
	return min
}

// fire unlinks ev, advances the clock to it, and runs its callback.
func (e *Engine) fire(ev *Event) {
	e.unlink(ev)
	e.cachedMin = nil
	e.nLive--
	if ev.at > e.now {
		e.setNow(ev.at)
	}
	fn := ev.fn
	ev.fn = nil
	if ev.owned {
		// Safe to recycle before running fn: the callback was extracted,
		// and no caller holds a pointer to an owned event.
		e.free = append(e.free, ev)
	}
	e.fired++
	fn()
}

// setNow advances the clock, promoting overflow events whose superslot has
// arrived. The clock never goes backward, so topRot only moves forward.
func (e *Engine) setNow(t Time) {
	e.now = t
	if uint64(t)>>wheelHorizonShift != e.topRot {
		e.topRot = uint64(t) >> wheelHorizonShift
		e.promoteOverflow()
	}
}

// promoteOverflow re-places parked events that now fall inside the wheel's
// horizon. Promotion happens only on a 2^48 ns superslot crossing.
func (e *Engine) promoteOverflow() {
	var next *Event
	for ev := e.overflow.head; ev != nil; ev = next {
		next = ev.next
		if uint64(ev.at)>>wheelHorizonShift == e.topRot {
			e.overflow.remove(ev)
			e.place(ev)
		}
	}
}
