package sim

import (
	"testing"
	"time"
)

// queuedCount walks every slot list and the overflow list counting queued
// events — a structural cross-check against the nLive counter, test-only.
func (e *Engine) queuedCount() int {
	n := 0
	for lvl := range e.wheel {
		for s := range e.wheel[lvl] {
			for ev := e.wheel[lvl][s].head; ev != nil; ev = ev.next {
				n++
			}
		}
	}
	for ev := e.overflow.head; ev != nil; ev = ev.next {
		n++
	}
	if e.solo != nil {
		n++
	}
	return n
}

// checkInvariants validates occupancy bitmaps, per-level counts, and list
// back-links against the actual slot contents.
func (e *Engine) checkInvariants(t *testing.T) {
	t.Helper()
	total := 0
	for lvl := range e.wheel {
		lvlTotal := 0
		for s := range e.wheel[lvl] {
			l := &e.wheel[lvl][s]
			occupied := e.occ[lvl][s>>6]&(1<<(uint(s)&63)) != 0
			if (l.head != nil) != occupied {
				t.Fatalf("level %d slot %d: occ bit %v but head %v", lvl, s, occupied, l.head)
			}
			n := 0
			var prev *Event
			for ev := l.head; ev != nil; ev = ev.next {
				if ev.prev != prev {
					t.Fatalf("level %d slot %d: broken prev link", lvl, s)
				}
				if ev.qlevel != int16(lvl) || ev.qslot != int16(s) {
					t.Fatalf("level %d slot %d: event tagged (%d,%d)", lvl, s, ev.qlevel, ev.qslot)
				}
				prev = ev
				n++
			}
			if l.tail != prev {
				t.Fatalf("level %d slot %d: tail mismatch", lvl, s)
			}
			if int(l.n) != n {
				t.Fatalf("level %d slot %d: n=%d, counted %d", lvl, s, l.n, n)
			}
			lvlTotal += n
		}
		if e.lvlN[lvl] != lvlTotal {
			t.Fatalf("level %d: lvlN=%d, counted %d", lvl, e.lvlN[lvl], lvlTotal)
		}
		total += lvlTotal
	}
	total += int(e.overflow.n)
	if e.solo != nil {
		if e.solo.qlevel != soloLevel {
			t.Fatalf("solo event tagged level %d, want soloLevel", e.solo.qlevel)
		}
		if total != 0 {
			t.Fatalf("solo event parked while %d events are on the wheel", total)
		}
		total++
	}
	if total != e.nLive {
		t.Fatalf("queued %d events, nLive=%d", total, e.nLive)
	}
}

func TestWheelCascadeBoundaries(t *testing.T) {
	// Delays chosen to straddle every level boundary: 256^k - 1, 256^k, and
	// 256^k + 1 land on adjacent levels and must still fire in time order.
	delays := []Duration{
		0, 1, 2,
		255, 256, 257, // level 0 / 1 edge
		65535, 65536, 65537, // level 1 / 2 edge
		1<<24 - 1, 1 << 24, 1<<24 + 1, // level 2 / 3 edge
		1<<32 - 1, 1 << 32, 1<<32 + 1, // level 3 / 4 edge
		1<<40 - 1, 1 << 40, 1<<40 + 1, // level 4 / 5 edge
	}
	e := NewEngine()
	var fired []Time
	for _, d := range delays {
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.checkInvariants(t)
	e.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d of %d", len(fired), len(delays))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order at %d: %d after %d", i, fired[i], fired[i-1])
		}
	}
	if e.Stats().Cascades == 0 {
		t.Fatal("multi-level schedule produced no cascades")
	}
	e.checkInvariants(t)
}

func TestWheelCascadeKeepsFIFOWithinTimestamp(t *testing.T) {
	// Regression for the determinism hazard: an event scheduled early for a
	// far timestamp (low seq, parked at a high level) cascades into a level-0
	// slot that already holds a later-scheduled event for the same timestamp
	// (high seq, placed directly once the clock got close). The cascaded
	// event's lower seq must still fire first.
	e := NewEngine()
	const target = Time(1 << 20) // level 2 from t=0
	var got []int
	e.At(target, func() { got = append(got, 0) }) // seq 0, parked high
	// Advance the clock to just below the target so a direct post lands at
	// level 0, then post the same timestamp again.
	e.At(target-1, func() {
		e.At(target, func() { got = append(got, 1) }) // higher seq, direct
	})
	e.Run()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("same-timestamp order = %v, want [0 1]", got)
	}
}

func TestWheelOverflowPromotion(t *testing.T) {
	e := NewEngine()
	const horizon = Time(1) << wheelHorizonShift
	var fired []Time
	// Beyond the horizon: parks on the overflow list.
	e.At(horizon+5, func() { fired = append(fired, e.Now()) })
	e.At(horizon+3, func() { fired = append(fired, e.Now()) })
	if e.Stats().Overflow != 2 {
		t.Fatalf("overflow len = %d, want 2", e.Stats().Overflow)
	}
	// Inside the horizon: goes straight onto the wheel.
	e.At(100, func() { fired = append(fired, e.Now()) })
	e.checkInvariants(t)
	e.Run()
	want := []Time{100, horizon + 3, horizon + 5}
	if len(fired) != 3 || fired[0] != want[0] || fired[1] != want[1] || fired[2] != want[2] {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	if e.Stats().Overflow != 0 {
		t.Fatalf("overflow not drained: %d", e.Stats().Overflow)
	}
}

func TestWheelMaxTimeDeadlineDrains(t *testing.T) {
	// Saturating deadlines (After(forever)) are the common overflow case:
	// they must stay parked while normal work proceeds, then drain last.
	e := NewEngine()
	deadline := false
	e.At(MaxTime, func() { deadline = true })
	ticks := 0
	for i := 1; i <= 100; i++ {
		e.After(Duration(i)*time.Millisecond, func() { ticks++ })
	}
	e.RunFor(time.Second)
	if ticks != 100 || deadline {
		t.Fatalf("ticks=%d deadline=%v mid-run, want 100/false", ticks, deadline)
	}
	e.Run()
	if !deadline || e.Now() != MaxTime {
		t.Fatalf("deadline=%v now=%v after drain, want true/MaxTime", deadline, e.Now())
	}
}

func TestWheelOverflowCancel(t *testing.T) {
	e := NewEngine()
	ev := e.At(MaxTime, func() { t.Fatal("cancelled overflow event fired") })
	mid := e.At(MaxTime-1, func() {})
	e.At(MaxTime-2, func() {})
	if e.Stats().Overflow != 3 {
		t.Fatalf("overflow len = %d, want 3", e.Stats().Overflow)
	}
	mid.Cancel() // middle-of-list unlink
	ev.Cancel()
	if e.Stats().Overflow != 1 || e.Pending() != 1 {
		t.Fatalf("overflow=%d pending=%d after cancels, want 1/1", e.Stats().Overflow, e.Pending())
	}
	e.checkInvariants(t)
	e.Run()
	if e.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", e.Fired())
	}
}

func TestWheelResetThenReuse(t *testing.T) {
	// A reset engine must be indistinguishable from a fresh one: same fire
	// order, same Now() trajectory, and pending events from the old run are
	// gone (owned ones recycled into the freelist).
	run := func(e *Engine) (order []int, now Time) {
		delays := []Duration{3 * time.Millisecond, time.Microsecond, 1 << 30, 256, 65536}
		for i, d := range delays {
			i := i
			e.Schedule(d, func() { order = append(order, i) })
		}
		e.Run()
		return order, e.Now()
	}
	fresh := NewEngine()
	wantOrder, wantNow := run(fresh)

	reused := NewEngine()
	// Dirty it thoroughly: mid-flight events across levels, overflow, a
	// half-run, cancels.
	for i := 0; i < 500; i++ {
		e := reused
		e.After(Duration(i)*time.Microsecond, func() {})
	}
	h := reused.Schedule(time.Hour, func() {})
	reused.At(MaxTime, func() {})
	reused.RunFor(200 * time.Microsecond)
	h.Cancel()
	reused.Reset()

	if reused.Pending() != 0 || reused.Now() != 0 || reused.Fired() != 0 {
		t.Fatalf("post-Reset state: pending=%d now=%v fired=%d", reused.Pending(), reused.Now(), reused.Fired())
	}
	if reused.queuedCount() != 0 {
		t.Fatalf("post-Reset wheel still holds %d events", reused.queuedCount())
	}
	if len(reused.free) == 0 {
		t.Fatal("Reset should have recycled owned events into the freelist")
	}
	reused.checkInvariants(t)

	gotOrder, gotNow := run(reused)
	if gotNow != wantNow || len(gotOrder) != len(wantOrder) {
		t.Fatalf("reused run: now=%v order=%v, want now=%v order=%v", gotNow, gotOrder, wantNow, wantOrder)
	}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("reused run order %v, want %v", gotOrder, wantOrder)
		}
	}
}

func TestWheelResetReuseDoesNotAllocate(t *testing.T) {
	// PR 7's leg arenas depend on Reset keeping the wheel's storage: a
	// warmed engine re-running an owned-event workload must stay at zero
	// allocations per leg.
	e := NewEngine()
	leg := func() {
		for i := 0; i < 64; i++ {
			e.After(Duration(i)*time.Microsecond, func() {})
		}
		e.Run()
		e.Reset()
	}
	leg() // warm the freelist
	avg := testing.AllocsPerRun(20, leg)
	if avg != 0 {
		t.Fatalf("Reset-then-reuse allocates %v/leg, want 0", avg)
	}
}

func TestWheelStatsCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.At(Time(1<<20), func() {}) // same far slot: stacks one slot 8 deep
	}
	ev := e.Schedule(time.Microsecond, func() {})
	ev.Cancel()
	e.Run()
	st := e.Stats()
	if st.Cascades == 0 {
		t.Fatal("expected cascades from far-slot batch")
	}
	if st.MaxSlot < 8 {
		t.Fatalf("MaxSlot = %d, want ≥ 8", st.MaxSlot)
	}
	if st.Cancelled != 1 || st.Fired != 8 || st.Scheduled != 9 {
		t.Fatalf("cancelled=%d fired=%d scheduled=%d, want 1/8/9", st.Cancelled, st.Fired, st.Scheduled)
	}
	if st.MaxPending != 9 {
		t.Fatalf("MaxPending = %d, want 9", st.MaxPending)
	}
}

func TestWheelCancelClearsSlot(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(time.Millisecond, func() {})
	b := e.Schedule(time.Millisecond, func() {})
	c := e.Schedule(2*time.Millisecond, func() {})
	b.Cancel()
	a.Cancel()
	e.checkInvariants(t)
	c.Cancel()
	e.checkInvariants(t)
	if e.queuedCount() != 0 || e.Pending() != 0 {
		t.Fatalf("queued=%d pending=%d after cancelling all, want 0/0", e.queuedCount(), e.Pending())
	}
	if e.Step() {
		t.Fatal("Step fired an event on an empty engine")
	}
}

func TestWheelFarFutureScanAfterLongIdle(t *testing.T) {
	// Fast-forward: with only one far event queued, Run must jump the clock
	// straight to it (via cascades), not crawl slot by slot.
	e := NewEngine()
	var at Time
	e.Schedule(3*time.Hour, func() { at = e.Now() })
	e.Run()
	if want := Time(Duration(3 * time.Hour)); at != want {
		t.Fatalf("fired at %v, want %v", at, want)
	}
}
