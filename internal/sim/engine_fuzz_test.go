package sim

import (
	"testing"
	"time"
)

// fuzzDelays spans every wheel level plus the overflow list: zero and
// sub-slot delays, the 256^k slot-width edges on both sides, mid-level
// spans, the full 2^48 ns horizon, and near-MaxTime saturation. Index with
// arg%len to give the fuzzer cheap reach into every cascade path.
var fuzzDelays = [...]Duration{
	0,
	1,
	255, 256, 257, // level 0 / 1 edge
	65535, 65536, 65537, // level 1 / 2 edge
	Duration(time.Millisecond),
	1 << 24, // level 3
	1 << 32, // level 4
	Duration(300 * time.Second),
	1 << 48, // overflow horizon
	Duration(1 << 62), // near MaxTime; saturates under accumulation
}

// FuzzEngineWheel differentially fuzzes the timing-wheel engine against the
// retained min-heap (EventHeap, heaporacle.go) with a byte-program of
// schedule/After/cancel/Step/RunUntil/Reset/halted-RunUntil ops. Both
// queues implement the same (time, seq) contract, so every observable must
// match exactly: fire order, Now() trajectory after every op, Pending, and
// Fired. The delay table reaches across cascade boundaries and the
// overflow horizon, where the two data structures' internals diverge the
// most; the halt op stops RunUntil from inside a callback with due events
// still queued, the one state where the wheel must refuse to advance the
// clock (an occupied slot behind its cursor is a structural violation).
func FuzzEngineWheel(f *testing.F) {
	f.Add([]byte{0, 5, 1, 3, 3, 0, 0, 0, 2, 0, 3, 0, 3, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 0, 2, 1, 3, 0})
	f.Add([]byte{1, 7, 1, 7, 3, 0, 1, 7, 3, 0, 3, 0, 3, 0})
	f.Add([]byte{0, 1, 2, 0, 0, 1, 2, 0, 0, 1, 2, 0, 0, 1, 2, 0})
	// Cascade-edge and overflow seeds.
	f.Add([]byte{0, 3, 0, 4, 0, 9, 0, 12, 4, 6, 3, 0, 3, 0, 3, 0, 3, 0})
	f.Add([]byte{1, 13, 0, 13, 0, 8, 4, 12, 2, 0, 3, 0, 3, 0})
	// Reset mid-flight, then rebuild.
	f.Add([]byte{0, 9, 1, 10, 3, 0, 5, 0, 0, 2, 1, 3, 3, 0, 3, 0})
	f.Add([]byte{1, 12, 1, 12, 4, 13, 5, 0, 0, 5, 3, 0})
	// Halt mid-RunUntil with due events still queued, then resume: the
	// second seed halts with a cross-level (slot-256) event pending, the
	// REVIEW.md repro shape that once stranded a slot behind the cursor.
	f.Add([]byte{0, 5, 0, 8, 6, 1, 4, 8, 3, 0, 3, 0})
	f.Add([]byte{0, 1, 0, 3, 6, 0, 4, 7, 2, 0, 3, 0, 3, 0})
	f.Add([]byte{1, 7, 6, 2, 5, 0, 0, 4, 6, 9, 4, 12, 3, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := NewEngine()
		oracle := NewEventHeap()
		var (
			engFired    []int
			oracleFired []int
			handles     []*Event     // live wheel handles, index-aligned with oracleHandles
			oracleHs    []*HeapEvent // live oracle handles
			nextID      int
		)
		check := func(op string) {
			t.Helper()
			if eng.Now() != oracle.Now() {
				t.Fatalf("%s: Now wheel=%v oracle=%v", op, eng.Now(), oracle.Now())
			}
			if eng.Pending() != oracle.Pending() {
				t.Fatalf("%s: Pending wheel=%d oracle=%d", op, eng.Pending(), oracle.Pending())
			}
			if eng.Fired() != oracle.Fired() {
				t.Fatalf("%s: Fired wheel=%d oracle=%d", op, eng.Fired(), oracle.Fired())
			}
			if len(engFired) != len(oracleFired) {
				t.Fatalf("%s: fire-log lengths %d vs %d", op, len(engFired), len(oracleFired))
			}
			for i := range engFired {
				if engFired[i] != oracleFired[i] {
					t.Fatalf("%s: fire order diverges at %d: wheel #%d, oracle #%d",
						op, i, engFired[i], oracleFired[i])
				}
			}
		}

		for i := 0; i+1 < len(data) && i < 4096; i += 2 {
			op, arg := data[i]%7, data[i+1]
			switch op {
			case 0: // Schedule (handle-returning, cancellable)
				d := fuzzDelays[int(arg)%len(fuzzDelays)]
				id := nextID
				nextID++
				handles = append(handles,
					eng.Schedule(d, func() { engFired = append(engFired, id) }))
				oracleHs = append(oracleHs,
					oracle.Schedule(d, func() { oracleFired = append(oracleFired, id) }))
				check("schedule")
			case 1: // After (owned, freelist-recycled)
				d := fuzzDelays[int(arg)%len(fuzzDelays)]
				id := nextID
				nextID++
				eng.After(d, func() { engFired = append(engFired, id) })
				oracle.After(d, func() { oracleFired = append(oracleFired, id) })
				check("after")
			case 2: // Cancel the same live handle on both sides
				if len(handles) == 0 {
					continue
				}
				j := int(arg) % len(handles)
				handles[j].Cancel()
				oracleHs[j].Cancel()
				if handles[j].Cancelled() != oracleHs[j].Cancelled() {
					t.Fatalf("cancel: Cancelled() wheel=%v oracle=%v",
						handles[j].Cancelled(), oracleHs[j].Cancelled())
				}
				check("cancel")
			case 3: // Step
				if eng.Step() != oracle.Step() {
					t.Fatal("step: one queue ran, the other idled")
				}
				check("step")
			case 4: // RunUntil a delay-table offset past the current clock
				until := eng.Now().Add(fuzzDelays[int(arg)%len(fuzzDelays)])
				eng.RunUntil(until)
				oracle.RunUntil(until)
				check("rununtil")
			case 5: // Reset both; old handles must be inert on both sides
				eng.Reset()
				oracle.Reset()
				for j := range handles {
					handles[j].Cancel() // must be a no-op post-Reset
					oracleHs[j].Cancel()
				}
				handles, oracleHs = handles[:0], oracleHs[:0]
				check("reset")
			case 6: // Halt from inside a callback mid-RunUntil, leaving any
				// other due events queued behind the stopped clock.
				d := fuzzDelays[int(arg)%len(fuzzDelays)]
				id := nextID
				nextID++
				eng.After(d, func() {
					engFired = append(engFired, id)
					eng.Halt()
				})
				oracle.After(d, func() {
					oracleFired = append(oracleFired, id)
					oracle.Halt()
				})
				until := eng.Now().Add(d).Add(fuzzDelays[(int(arg)+3)%len(fuzzDelays)])
				eng.RunUntil(until)
				oracle.RunUntil(until)
				check("halt")
			}
		}

		// Drain both completely and compare the final trajectories.
		for {
			a, b := eng.Step(), oracle.Step()
			if a != b {
				t.Fatal("drain: one queue ran, the other idled")
			}
			check("drain")
			if !a {
				break
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("Pending=%d after drain", eng.Pending())
		}
	})
}
