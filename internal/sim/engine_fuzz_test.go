package sim

import (
	"testing"
	"time"
)

// FuzzEngineHeap drives the engine's hand-specialized min-heap (freelist,
// tombstone cancellation, compaction included) with a byte-program of
// schedule/after/cancel/step ops, checking every firing against a reference
// model: events fire in nondecreasing (time, scheduling-seq) order,
// cancelled events never fire, and Pending always matches the model's live
// count.
func FuzzEngineHeap(f *testing.F) {
	f.Add([]byte{0, 5, 1, 3, 3, 0, 0, 0, 2, 0, 3, 0, 3, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 0, 2, 1, 3, 0})
	f.Add([]byte{1, 7, 1, 7, 3, 0, 1, 7, 3, 0, 3, 0, 3, 0})
	f.Add([]byte{0, 1, 2, 0, 0, 1, 2, 0, 0, 1, 2, 0, 0, 1, 2, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := NewEngine()
		type item struct {
			id        int
			at        Time
			cancelled bool
			fired     bool
			ev        *Event // nil for owned (After) events
		}
		var (
			model    []*item // in scheduling order = engine seq order
			fired    []int   // ids in actual firing order
			modelNow Time
		)
		// nextLive returns the model's next expected firing: minimum (at,
		// scheduling order) over live items — exactly the heap's contract.
		nextLive := func() *item {
			var best *item
			for _, it := range model {
				if it.cancelled || it.fired {
					continue
				}
				if best == nil || it.at < best.at {
					best = it
				}
			}
			return best
		}
		liveCount := func() int {
			n := 0
			for _, it := range model {
				if !it.cancelled && !it.fired {
					n++
				}
			}
			return n
		}
		stepOnce := func(op string) {
			t.Helper()
			want := nextLive()
			ran := eng.Step()
			if want == nil {
				if ran {
					t.Fatalf("%s: Step ran with no live events", op)
				}
				return
			}
			if !ran {
				t.Fatalf("%s: Step idle with %d live events", op, liveCount())
			}
			want.fired = true
			if got := fired[len(fired)-1]; got != want.id {
				t.Fatalf("%s: fired #%d, want #%d (at=%v)", op, got, want.id, want.at)
			}
			if want.at > modelNow {
				modelNow = want.at
			}
			if eng.Now() != modelNow {
				t.Fatalf("%s: clock %v, model %v", op, eng.Now(), modelNow)
			}
		}

		for i := 0; i+1 < len(data) && i < 4096; i += 2 {
			op, arg := data[i]%4, data[i+1]
			switch op {
			case 0: // Schedule (handle-returning, cancellable)
				d := Duration(arg%8) * Duration(time.Microsecond)
				it := &item{id: len(model), at: modelNow.Add(d)}
				it.ev = eng.Schedule(d, func() { fired = append(fired, it.id) })
				model = append(model, it)
			case 1: // After (owned, freelist-recycled)
				d := Duration(arg%8) * Duration(time.Microsecond)
				it := &item{id: len(model), at: modelNow.Add(d)}
				eng.After(d, func() { fired = append(fired, it.id) })
				model = append(model, it)
			case 2: // Cancel a live handle event
				var handles []*item
				for _, it := range model {
					if it.ev != nil && !it.cancelled && !it.fired {
						handles = append(handles, it)
					}
				}
				if len(handles) == 0 {
					continue
				}
				it := handles[int(arg)%len(handles)]
				it.ev.Cancel()
				it.cancelled = true
				if !it.ev.Cancelled() {
					t.Fatalf("event #%d not marked cancelled", it.id)
				}
			case 3: // Step
				stepOnce("step")
			}
			if eng.Pending() != liveCount() {
				t.Fatalf("Pending=%d, model live=%d", eng.Pending(), liveCount())
			}
		}

		// Drain and verify the complete firing order.
		for nextLive() != nil {
			stepOnce("drain")
		}
		if eng.Step() {
			t.Fatal("engine fired after the model drained")
		}
		if eng.Pending() != 0 {
			t.Fatalf("Pending=%d after drain", eng.Pending())
		}
		for i := 1; i < len(fired); i++ {
			a, b := model[fired[i-1]], model[fired[i]]
			if b.at < a.at || (b.at == a.at && b.id < a.id) {
				t.Fatalf("firing order violates (time, seq): #%d(at=%v) before #%d(at=%v)",
					a.id, a.at, b.id, b.at)
			}
		}
		for _, it := range model {
			if it.cancelled && it.fired {
				t.Fatalf("cancelled event #%d fired", it.id)
			}
			if !it.cancelled && !it.fired {
				t.Fatalf("event #%d neither fired nor cancelled after drain", it.id)
			}
		}
	})
}
