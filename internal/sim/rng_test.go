package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42, "disk")
	b := NewRNG(42, "disk")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed,name) produced different streams")
		}
	}
}

func TestRNGNameSeparation(t *testing.T) {
	a := NewRNG(42, "disk")
	b := NewRNG(42, "ssd")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different names produced identical streams")
	}
}

func TestRNGFork(t *testing.T) {
	a := NewRNG(1, "root").Fork("child")
	b := NewRNG(1, "root").Fork("child")
	if a.Float64() != b.Float64() {
		t.Fatal("forked streams not deterministic")
	}
}

func TestDurationBounds(t *testing.T) {
	g := NewRNG(7, "t")
	for i := 0; i < 1000; i++ {
		d := g.Duration(time.Millisecond)
		if d < 0 || d >= time.Millisecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if g.Duration(0) != 0 {
		t.Fatal("Duration(0) should be 0")
	}
	if g.Duration(-time.Second) != 0 {
		t.Fatal("Duration(negative) should be 0")
	}
}

func TestDurationRange(t *testing.T) {
	g := NewRNG(7, "t")
	lo, hi := 2*time.Millisecond, 5*time.Millisecond
	for i := 0; i < 1000; i++ {
		d := g.DurationRange(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("DurationRange out of range: %v", d)
		}
	}
	if g.DurationRange(hi, lo) != hi {
		t.Fatal("inverted range should return lo")
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(11, "exp")
	mean := 10 * time.Millisecond
	var sum time.Duration
	n := 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(mean)
	}
	got := float64(sum) / float64(n)
	want := float64(mean)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("Exp mean = %v, want ≈ %v", time.Duration(got), mean)
	}
	if g.Exp(0) != 0 {
		t.Fatal("Exp(0) should be 0")
	}
}

func TestNormalDurationNonNegative(t *testing.T) {
	g := NewRNG(3, "norm")
	for i := 0; i < 1000; i++ {
		if d := g.NormalDuration(time.Millisecond, 5*time.Millisecond); d < 0 {
			t.Fatalf("NormalDuration returned negative %v", d)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(5, "pareto")
	for i := 0; i < 5000; i++ {
		v := g.Pareto(1.0, 1.5, 100.0)
		if v < 1.0 || v > 100.0 {
			t.Fatalf("Pareto out of [1,100]: %v", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// With alpha=1.1 a nontrivial fraction of mass should exceed 5×xm.
	g := NewRNG(5, "pareto2")
	over := 0
	n := 10000
	for i := 0; i < n; i++ {
		if g.Pareto(1.0, 1.1, 1000.0) > 5.0 {
			over++
		}
	}
	frac := float64(over) / float64(n)
	if frac < 0.05 || frac > 0.5 {
		t.Fatalf("tail fraction %v implausible for Pareto(1.1)", frac)
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(9, "bool")
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
	if g.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !g.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestZipfInRangeProperty(t *testing.T) {
	g := NewRNG(13, "zipf")
	z := NewZipf(g, 1000, 0.99)
	f := func(_ uint8) bool {
		v := z.Next()
		return v >= 0 && v < 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(13, "zipfskew")
	z := NewZipf(g, 10000, 0.99)
	n := 50000
	hot := 0
	for i := 0; i < n; i++ {
		if z.Next() < 100 { // top 1% of keys
			hot++
		}
	}
	frac := float64(hot) / float64(n)
	// YCSB zipfian(0.99): top 1% of a 10k key space draws well over a third
	// of accesses.
	if frac < 0.3 {
		t.Fatalf("top-1%% key fraction = %v, want skewed (>0.3)", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	g := NewRNG(1, "z")
	for _, fn := range []func(){
		func() { NewZipf(g, 0, 0.99) },
		func() { NewZipf(g, 10, 0) },
		func() { NewZipf(g, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestParetoAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha<=0")
		}
	}()
	NewRNG(1, "p").Pareto(1, 0, 10)
}
