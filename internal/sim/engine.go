// Package sim provides a deterministic discrete-event simulation engine.
//
// Every component of the MittOS reproduction — disks, SSDs, the page cache,
// IO schedulers, the network, noisy neighbors, and NoSQL clients — runs in
// virtual time on top of this engine. Virtual time makes every experiment
// exactly reproducible: the same seed yields the same latency tables, which
// is essential both for the test suite and for regenerating the paper's
// figures without testbed noise.
//
// The engine is intentionally single-threaded. Events execute in
// (time, sequence) order; ties in time break by scheduling order, so the
// simulation is a total order and there are no data races by construction.
// (Different Engines are fully independent and may run on different
// goroutines; see internal/experiments for the parallel runner that
// exploits this.)
//
// The event loop is the floor under every experiment's wall-clock time, so
// it is built to allocate nothing in steady state: the priority queue is a
// hand-specialized min-heap over []*Event (no container/heap interface
// boxing), and events scheduled through the fire-and-forget After/FireAt
// path are recycled through an engine-owned freelist. Schedule/At return a
// cancellation handle and therefore pin their Event for the engine's
// lifetime; hot paths that never cancel should prefer After.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration's resolution so model
// constants can be written as time.Duration literals.
type Time int64

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

// Common durations used by device models.
const (
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Add returns t shifted by d. It saturates at MaxTime.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d > 0 && s < t {
		return MaxTime
	}
	return s
}

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Duration converts the absolute time into a duration since time zero.
func (t Time) Duration() Duration { return Duration(t) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. Events are returned by the Schedule family
// so callers can cancel them (e.g. a hedged request cancelling its timeout
// when the first reply wins). Events scheduled via After/FireAt are owned
// by the engine and recycled once fired; no handle is exposed for them.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	eng       *Engine
	owned     bool // engine-owned (After/FireAt): recycled after firing
	cancelled bool
}

// Time reports when the event fires.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The event stays in the heap as a
// tombstone and is discarded when popped, which keeps Cancel O(1); the
// engine compacts the heap when tombstones outnumber live events.
func (e *Event) Cancel() {
	if e.cancelled || e.fn == nil {
		// Already cancelled, or already fired (fn is cleared at fire time).
		return
	}
	e.cancelled = true
	e.fn = nil
	eng := e.eng
	eng.nLive--
	eng.nCancelled++
	eng.cancelledTotal++
	if eng.nCancelled > len(eng.heap)/2 {
		eng.compact()
	}
}

// Engine is the event loop. The zero value is not usable; use NewEngine.
type Engine struct {
	now        Time
	seq        uint64
	heap       []*Event
	free       []*Event // recycled engine-owned events
	nLive      int      // scheduled, not-yet-cancelled events
	nCancelled int      // tombstones still in the heap
	fired      uint64
	halted     bool

	// Cumulative diagnostics surfaced by Stats.
	cancelledTotal uint64
	compactions    uint64
	maxHeap        int
}

// EngineStats is a point-in-time summary of engine activity, exposed so the
// metrics layer can report event-loop health (heap growth, tombstone churn)
// alongside IO-level numbers. All counters are cumulative since NewEngine.
type EngineStats struct {
	Now         Time   `json:"now_ns"`       // current virtual time
	Fired       uint64 `json:"fired"`        // events executed
	Scheduled   uint64 `json:"scheduled"`    // events ever posted
	Cancelled   uint64 `json:"cancelled"`    // events cancelled before firing
	Compactions uint64 `json:"compactions"`  // tombstone sweeps of the heap
	Pending     int    `json:"pending"`      // live events still queued
	MaxHeap     int    `json:"max_heap"`     // high-water heap length (incl. tombstones)
	FreeList    int    `json:"freelist_len"` // recycled events currently parked
}

// Stats snapshots the engine's diagnostic counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:         e.now,
		Fired:       e.fired,
		Scheduled:   e.seq,
		Cancelled:   e.cancelledTotal,
		Compactions: e.compactions,
		Pending:     e.nLive,
		MaxHeap:     e.maxHeap,
		FreeList:    len(e.free),
	}
}

// NewEngine returns an engine positioned at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-cancelled events.
func (e *Engine) Pending() int { return e.nLive }

// Schedule runs fn after delay d and returns a cancellation handle. A
// negative delay is treated as zero: the event fires "now", after any
// events already scheduled for the current instant (FIFO within a
// timestamp).
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute virtual time t and returns a cancellation handle.
// Scheduling in the past is clamped to the present.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.post(t, fn, false)
}

// After runs fn after delay d, fire-and-forget: no cancellation handle is
// returned, which lets the engine recycle the event through its freelist.
// Steady-state scheduling through After allocates nothing. It is the right
// call for device models, network hops, and every other hot path that
// never cancels.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.post(e.now.Add(d), fn, true)
}

// FireAt is the absolute-time form of After: fire-and-forget at virtual
// time t, clamped to the present.
func (e *Engine) FireAt(t Time, fn func()) {
	e.post(t, fn, true)
}

// post enqueues fn at time t. Owned events come from — and return to — the
// engine's freelist; handle-returning events are allocated fresh and never
// recycled, so a caller-held *Event can never alias a later event.
func (e *Engine) post(t Time, fn func(), owned bool) *Event {
	if fn == nil {
		panic("sim: schedule called with nil callback")
	}
	if t < e.now {
		t = e.now
	}
	var ev *Event
	if n := len(e.free); owned && n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{eng: e}
	}
	ev.at, ev.seq, ev.fn, ev.owned, ev.cancelled = t, e.seq, fn, owned, false
	e.seq++
	e.push(ev)
	e.nLive++
	return ev
}

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.nCancelled--
			continue
		}
		e.nLive--
		if ev.at > e.now {
			e.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		if ev.owned {
			// Safe to recycle before running fn: the callback was extracted,
			// and no caller holds a pointer to an owned event.
			e.free = append(e.free, ev)
		}
		e.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t
// (if the clock has not already passed it). Events scheduled exactly at t
// do run.
func (e *Engine) RunUntil(t Time) {
	e.halted = false
	for !e.halted {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Reset returns the engine to its NewEngine state — virtual time zero,
// sequence zero, empty queue — while keeping the event freelist and the
// heap's backing array, so a reused engine schedules without reallocating.
// Pending owned events are recycled; pending handle-returning events are
// dropped (their handles stay valid but inert: already marked cancelled).
// A reset engine is indistinguishable from a fresh one to the simulation —
// the (time, seq) order restarts from zero, which is what keeps reused-arena
// runs byte-identical to fresh-heap runs.
func (e *Engine) Reset() {
	for i, ev := range e.heap {
		ev.fn = nil
		ev.cancelled = true
		if ev.owned {
			e.free = append(e.free, ev)
		}
		e.heap[i] = nil
	}
	e.heap = e.heap[:0]
	e.now, e.seq, e.fired = 0, 0, 0
	e.nLive, e.nCancelled = 0, 0
	e.halted = false
	e.cancelledTotal, e.compactions, e.maxHeap = 0, 0, 0
}

func (e *Engine) peek() *Event {
	for len(e.heap) > 0 {
		if ev := e.heap[0]; ev.cancelled {
			e.pop()
			e.nCancelled--
			continue
		}
		return e.heap[0]
	}
	return nil
}

// Sleep returns a channel-free helper used in tests: it schedules fn after d
// and returns the event; semantic sugar for Schedule.
func (e *Engine) Sleep(d Duration, fn func()) *Event { return e.Schedule(d, fn) }

// String summarizes engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d fired=%d}", e.now, e.nLive, e.fired)
}

// The priority queue is a hand-specialized binary min-heap ordered by
// (time, seq). Specializing over []*Event avoids container/heap's
// per-operation interface dispatch, which dominated the event loop's
// profile before the rewrite.

// before reports whether a fires strictly before b. seq is unique per
// engine, so the order is total and the simulation deterministic.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	h := append(e.heap, ev)
	e.heap = h
	if len(h) > e.maxHeap {
		e.maxHeap = len(h)
	}
	// Sift up.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !before(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) pop() *Event {
	h := e.heap
	n := len(h)
	ev := h[0]
	last := h[n-1]
	h[n-1] = nil
	h = h[:n-1]
	e.heap = h
	if len(h) > 0 {
		h[0] = last
		e.siftDown(0)
	}
	return ev
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && before(h[right], h[left]) {
			min = right
		}
		if !before(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// compact removes cancelled tombstones from the heap and re-heapifies.
// Without it, a workload that schedules and cancels timeouts forever (e.g.
// hedged requests whose first reply always wins) grows the heap without
// bound even though Pending stays flat.
func (e *Engine) compact() {
	h := e.heap
	kept := h[:0]
	for _, ev := range h {
		if ev.cancelled {
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(h); i++ {
		h[i] = nil
	}
	e.heap = kept
	e.nCancelled = 0
	e.compactions++
	for i := len(kept)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Ticker repeatedly invokes fn every period until Stop is called. It is the
// virtual-time analogue of time.Ticker and is used by probe loops and noise
// generators.
type Ticker struct {
	e      *Engine
	period Duration
	fn     func()
	tick   func() // the single re-armed closure, built once in NewTicker
	ev     *Event
	stop   bool
}

// NewTicker schedules fn every period, with the first firing after period.
// A non-positive period panics: a zero-period ticker would live-lock the
// event loop.
func (e *Engine) NewTicker(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker requires a positive period")
	}
	t := &Ticker{e: e, period: period, fn: fn}
	t.tick = func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.e.Schedule(t.period, t.tick)
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
