// Package sim provides a deterministic discrete-event simulation engine.
//
// Every component of the MittOS reproduction — disks, SSDs, the page cache,
// IO schedulers, the network, noisy neighbors, and NoSQL clients — runs in
// virtual time on top of this engine. Virtual time makes every experiment
// exactly reproducible: the same seed yields the same latency tables, which
// is essential both for the test suite and for regenerating the paper's
// figures without testbed noise.
//
// The engine is intentionally single-threaded. Events execute in
// (time, sequence) order; ties in time break by scheduling order, so the
// simulation is a total order and there are no data races by construction.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration's resolution so model
// constants can be written as time.Duration literals.
type Time int64

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

// Common durations used by device models.
const (
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Add returns t shifted by d. It saturates at MaxTime.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d > 0 && s < t {
		return MaxTime
	}
	return s
}

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Duration converts the absolute time into a duration since time zero.
func (t Time) Duration() Duration { return Duration(t) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. Events are returned by the Schedule family
// so callers can cancel them (e.g. a hedged request cancelling its timeout
// when the first reply wins).
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index; -1 once popped or cancelled
	cancelled bool
}

// Time reports when the event fires.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The event stays in the heap and is
// discarded when popped; this keeps Cancel O(1).
func (e *Event) Cancel() {
	e.cancelled = true
	e.fn = nil
}

// Engine is the event loop. The zero value is not usable; use NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	nLive  int // scheduled, not-yet-cancelled events
	fired  uint64
	halted bool
}

// NewEngine returns an engine positioned at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-cancelled events.
func (e *Engine) Pending() int { return e.nLive }

// Schedule runs fn after delay d. A negative delay is treated as zero: the
// event fires "now", after any events already scheduled for the current
// instant (FIFO within a timestamp).
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is clamped
// to the present.
func (e *Engine) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	e.nLive++
	return ev
}

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.nLive--
		if ev.at > e.now {
			e.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t
// (if the clock has not already passed it). Events scheduled exactly at t
// do run.
func (e *Engine) RunUntil(t Time) {
	e.halted = false
	for !e.halted {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		if e.queue[0].cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}

// Sleep returns a channel-free helper used in tests: it schedules fn after d
// and returns the event; semantic sugar for Schedule.
func (e *Engine) Sleep(d Duration, fn func()) *Event { return e.Schedule(d, fn) }

// String summarizes engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d fired=%d}", e.now, e.nLive, e.fired)
}

// eventHeap orders by (time, seq).
type eventHeap []*Event

// Len, Less, Swap, Push, and Pop implement container/heap.Interface.
func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Ticker repeatedly invokes fn every period until Stop is called. It is the
// virtual-time analogue of time.Ticker and is used by probe loops and noise
// generators.
type Ticker struct {
	e      *Engine
	period Duration
	fn     func()
	ev     *Event
	stop   bool
}

// NewTicker schedules fn every period, with the first firing after period.
// A non-positive period panics: a zero-period ticker would live-lock the
// event loop.
func (e *Engine) NewTicker(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker requires a positive period")
	}
	t := &Ticker{e: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.e.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
