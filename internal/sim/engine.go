// Package sim provides a deterministic discrete-event simulation engine.
//
// Every component of the MittOS reproduction — disks, SSDs, the page cache,
// IO schedulers, the network, noisy neighbors, and NoSQL clients — runs in
// virtual time on top of this engine. Virtual time makes every experiment
// exactly reproducible: the same seed yields the same latency tables, which
// is essential both for the test suite and for regenerating the paper's
// figures without testbed noise.
//
// The engine is intentionally single-threaded. Events execute in
// (time, sequence) order; ties in time break by scheduling order, so the
// simulation is a total order and there are no data races by construction.
// (Different Engines are fully independent and may run on different
// goroutines; see internal/experiments for the parallel runner that
// exploits this.)
//
// The event loop is the floor under every experiment's wall-clock time, so
// it is built to allocate nothing in steady state: the event queue is a
// hierarchical timing wheel (see wheel.go) with O(1) amortized schedule,
// O(1) cancel by intrusive unlink, and a fast-forward that jumps the clock
// to the next occupied slot; events scheduled through the fire-and-forget
// After/FireAt path are recycled through an engine-owned freelist.
// Schedule/At return a cancellation handle and therefore pin their Event
// for the engine's lifetime; hot paths that never cancel should prefer
// After.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration's resolution so model
// constants can be written as time.Duration literals.
type Time int64

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

// Common durations used by device models.
const (
	Microsecond = Time(time.Microsecond)
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// MinTime is the smallest representable virtual time.
const MinTime = Time(math.MinInt64)

// Add returns t shifted by d. It saturates in both directions: at MaxTime
// on positive overflow and at MinTime on negative overflow (a silent
// negative wrap would leap a deadline into the far future).
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d > 0 && s < t {
		return MaxTime
	}
	if d < 0 && s > t {
		return MinTime
	}
	return s
}

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Duration converts the absolute time into a duration since time zero.
func (t Time) Duration() Duration { return Duration(t) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. Events are returned by the Schedule family
// so callers can cancel them (e.g. a hedged request cancelling its timeout
// when the first reply wins). Events scheduled via After/FireAt are owned
// by the engine and recycled once fired; no handle is exposed for them.
type Event struct {
	at         Time
	seq        uint64
	fn         func()
	eng        *Engine
	prev, next *Event // intrusive links within the event's wheel-slot list
	qlevel     int16  // wheel level, overflowLevel, or unqueuedLevel
	qslot      int16  // slot index within qlevel
	owned      bool   // engine-owned (After/FireAt): recycled after firing
	cancelled  bool
}

// Time reports when the event fires.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The event is unlinked from its wheel
// slot immediately — O(1), no tombstones left behind and no compaction
// sweeps, which is what makes cancel-heavy strategies (hedged timeouts,
// MittCFQ bumped entries) cheap.
func (e *Event) Cancel() {
	if e.cancelled || e.fn == nil {
		// Already cancelled, or already fired (fn is cleared at fire time).
		return
	}
	e.cancelled = true
	e.fn = nil
	eng := e.eng
	eng.unlink(e)
	eng.nLive--
	eng.cancelledTotal++
	if eng.cachedMin == e {
		eng.cachedMin = nil
	}
}

// Engine is the event loop. The zero value is not usable; use NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	free   []*Event // recycled engine-owned events
	nLive  int      // scheduled, not-yet-cancelled events
	fired  uint64
	halted bool

	// The hierarchical timing wheel (see wheel.go).
	wheel     [wheelLevels][wheelSlots]evList
	occ       [wheelLevels][wheelWords]uint64 // per-level slot-occupancy bitmaps
	lvlN      [wheelLevels]int                // live events per level (skip empty levels)
	overflow  evList                          // events beyond the wheel horizon
	topRot    uint64                          // now >> wheelHorizonShift as of the last advance
	solo      *Event                          // sole live event, parked unplaced (fast path)
	cachedMin *Event                          // memoized findMin result, nil when stale

	// Cumulative diagnostics surfaced by Stats.
	cancelledTotal uint64
	cascades       uint64
	maxSlot        int
	maxPending     int
}

// EngineStats is a point-in-time summary of engine activity, exposed so the
// metrics layer can report event-loop health (cascade churn, slot hot
// spots, overflow parking) alongside IO-level numbers. All counters are
// cumulative since NewEngine.
type EngineStats struct {
	Now        Time   `json:"now_ns"`       // current virtual time
	Fired      uint64 `json:"fired"`        // events executed
	Scheduled  uint64 `json:"scheduled"`    // events ever posted
	Cancelled  uint64 `json:"cancelled"`    // events cancelled before firing
	Cascades   uint64 `json:"cascades"`     // events redistributed down a wheel level
	Pending    int    `json:"pending"`      // live events still queued
	MaxPending int    `json:"max_pending"`  // high-water live events queued
	MaxSlot    int    `json:"max_slot"`     // high-water single-slot occupancy
	Overflow   int    `json:"overflow_len"` // events currently parked beyond the horizon
	FreeList   int    `json:"freelist_len"` // recycled events currently parked
}

// Stats snapshots the engine's diagnostic counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:        e.now,
		Fired:      e.fired,
		Scheduled:  e.seq,
		Cancelled:  e.cancelledTotal,
		Cascades:   e.cascades,
		Pending:    e.nLive,
		MaxPending: e.maxPending,
		MaxSlot:    e.maxSlot,
		Overflow:   int(e.overflow.n),
		FreeList:   len(e.free),
	}
}

// NewEngine returns an engine positioned at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-cancelled events.
func (e *Engine) Pending() int { return e.nLive }

// Schedule runs fn after delay d and returns a cancellation handle. A
// negative delay is treated as zero: the event fires "now", after any
// events already scheduled for the current instant (FIFO within a
// timestamp).
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute virtual time t and returns a cancellation handle.
// Scheduling in the past is clamped to the present.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.post(t, fn, false)
}

// After runs fn after delay d, fire-and-forget: no cancellation handle is
// returned, which lets the engine recycle the event through its freelist.
// Steady-state scheduling through After allocates nothing. It is the right
// call for device models, network hops, and every other hot path that
// never cancels.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.post(e.now.Add(d), fn, true)
}

// FireAt is the absolute-time form of After: fire-and-forget at virtual
// time t, clamped to the present.
func (e *Engine) FireAt(t Time, fn func()) {
	e.post(t, fn, true)
}

// post enqueues fn at time t. Owned events come from — and return to — the
// engine's freelist; handle-returning events are allocated fresh and never
// recycled, so a caller-held *Event can never alias a later event.
func (e *Engine) post(t Time, fn func(), owned bool) *Event {
	if fn == nil {
		panic("sim: schedule called with nil callback")
	}
	if t < e.now {
		t = e.now
	}
	var ev *Event
	if n := len(e.free); owned && n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{eng: e}
	}
	ev.at, ev.seq, ev.fn, ev.owned, ev.cancelled = t, e.seq, fn, owned, false
	e.seq++
	if e.nLive == 0 {
		// Solo fast path: the queue's only event skips the wheel entirely
		// and waits in e.solo until it fires, is cancelled, or company
		// arrives.
		ev.qlevel = soloLevel
		e.solo = ev
		e.cachedMin = ev
		e.nLive = 1
		if e.maxPending == 0 {
			e.maxPending = 1
		}
		return ev
	}
	if s := e.solo; s != nil {
		// Second arrival: hang the parked event on the wheel before placing
		// the newcomer. s.at ≥ now still holds (it has not fired), so the
		// placement invariants are intact.
		e.solo = nil
		s.qlevel = unqueuedLevel
		e.place(s)
	}
	e.place(ev)
	e.nLive++
	if e.nLive > e.maxPending {
		e.maxPending = e.nLive
	}
	// Keep the memoized minimum exact: a strictly earlier arrival takes it
	// over (on a time tie the incumbent's smaller seq wins).
	if m := e.cachedMin; m != nil && t < m.at {
		e.cachedMin = ev
	}
	return ev
}

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	ev := e.findMin()
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted {
		ev := e.findMin()
		if ev == nil {
			return
		}
		e.fire(ev)
	}
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t
// (if the clock has not already passed it). Events scheduled exactly at t
// do run. If Halt stops the run while due events remain queued, the clock
// stays where the halt left it — the pending events must remain ahead of
// the clock (a queued event behind the wheel's cursor would strand its
// slot) — and a later Run/RunUntil resumes from there.
func (e *Engine) RunUntil(t Time) {
	e.halted = false
	for !e.halted {
		ev := e.findMin()
		if ev == nil || ev.at > t {
			break
		}
		e.fire(ev)
	}
	if e.now < t {
		if ev := e.findMin(); ev == nil || ev.at > t {
			e.setNow(t)
		}
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Reset returns the engine to its NewEngine state — virtual time zero,
// sequence zero, empty queue — while keeping the event freelist (the wheel's
// slot arrays are fixed-size engine fields), so a reused engine schedules
// without reallocating. Pending owned events are recycled; pending
// handle-returning events are dropped (their handles stay valid but inert:
// already marked cancelled). A reset engine is indistinguishable from a
// fresh one to the simulation — the (time, seq) order restarts from zero,
// which is what keeps reused-arena runs byte-identical to fresh-heap runs.
func (e *Engine) Reset() {
	for lvl := range e.wheel {
		if e.lvlN[lvl] == 0 {
			continue
		}
		for s := range e.wheel[lvl] {
			for ev := e.wheel[lvl][s].head; ev != nil; {
				next := ev.next
				e.dropEvent(ev)
				ev = next
			}
			e.wheel[lvl][s] = evList{}
		}
		e.lvlN[lvl] = 0
	}
	for ev := e.overflow.head; ev != nil; {
		next := ev.next
		e.dropEvent(ev)
		ev = next
	}
	e.overflow = evList{}
	e.occ = [wheelLevels][wheelWords]uint64{}
	if e.solo != nil {
		e.dropEvent(e.solo)
		e.solo = nil
	}
	e.cachedMin = nil
	e.topRot = 0
	e.now, e.seq, e.fired = 0, 0, 0
	e.nLive = 0
	e.halted = false
	e.cancelledTotal, e.cascades, e.maxSlot, e.maxPending = 0, 0, 0, 0
}

// dropEvent neutralizes one queued event during Reset: handles turn inert
// (cancelled), owned events return to the freelist.
func (e *Engine) dropEvent(ev *Event) {
	ev.fn = nil
	ev.cancelled = true
	ev.prev, ev.next = nil, nil
	ev.qlevel = unqueuedLevel
	if ev.owned {
		e.free = append(e.free, ev)
	}
}

// Sleep returns a channel-free helper used in tests: it schedules fn after d
// and returns the event; semantic sugar for Schedule.
func (e *Engine) Sleep(d Duration, fn func()) *Event { return e.Schedule(d, fn) }

// String summarizes engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d fired=%d}", e.now, e.nLive, e.fired)
}

// Ticker repeatedly invokes fn every period until Stop is called. It is the
// virtual-time analogue of time.Ticker and is used by probe loops and noise
// generators.
type Ticker struct {
	e      *Engine
	period Duration
	fn     func()
	tick   func() // the single re-armed closure, built once in NewTicker
	ev     *Event
	stop   bool
}

// NewTicker schedules fn every period, with the first firing after period.
// A non-positive period panics: a zero-period ticker would live-lock the
// event loop.
func (e *Engine) NewTicker(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker requires a positive period")
	}
	t := &Ticker{e: e, period: period, fn: fn}
	t.tick = func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.e.Schedule(t.period, t.tick)
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
