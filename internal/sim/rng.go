package sim

import (
	"math"
	"math/rand"
)

// RNG is a named, seeded random stream. Each simulation component draws from
// its own stream so that adding randomness to one component never perturbs
// another — the property that keeps experiment diffs reviewable.
//
// RNG wraps math/rand.Rand (stdlib-only requirement) with the distribution
// helpers the device and noise models need.
type RNG struct {
	r *rand.Rand
}

// NewRNG derives a deterministic stream from a root seed and a component
// name. The same (seed, name) pair always produces the same stream.
func NewRNG(seed int64, name string) *RNG {
	h := uint64(seed)
	// FNV-1a over the name, mixed into the seed. Stable across runs and
	// platforms; cryptographic quality is irrelevant here.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	nh := uint64(offset64)
	for i := 0; i < len(name); i++ {
		nh ^= uint64(name[i])
		nh *= prime64
	}
	h ^= nh
	// SplitMix64 finalizer to decorrelate nearby seeds.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return &RNG{r: rand.New(rand.NewSource(int64(h)))}
}

// Fork derives a child stream, e.g. one per node in a fleet.
func (g *RNG) Fork(name string) *RNG {
	return NewRNG(g.r.Int63(), name)
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0,n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Duration returns a uniform duration in [0,d).
func (g *RNG) Duration(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(g.r.Int63n(int64(d)))
}

// DurationRange returns a uniform duration in [lo,hi).
func (g *RNG) DurationRange(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + g.Duration(hi-lo)
}

// Exp returns an exponentially distributed duration with the given mean,
// used for Poisson arrival processes (noise episodes, open-loop clients).
func (g *RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	d := Duration(float64(mean) * g.r.ExpFloat64())
	const cap = 1 << 62
	if d < 0 || d > cap {
		return cap
	}
	return d
}

// Normal returns a normally distributed value.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// NormalDuration returns a normally distributed duration clamped at ≥ 0.
func (g *RNG) NormalDuration(mean, stddev Duration) Duration {
	d := Duration(g.Normal(float64(mean), float64(stddev)))
	if d < 0 {
		return 0
	}
	return d
}

// Pareto returns a bounded Pareto sample in [xm, cap] with shape alpha.
// Heavy-tailed noise episode lengths use this: most bursts are short, a few
// are long — the sub-second burstiness of §6.
func (g *RNG) Pareto(xm float64, alpha float64, cap float64) float64 {
	if alpha <= 0 {
		panic("sim: Pareto requires alpha > 0")
	}
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	v := xm / math.Pow(u, 1/alpha)
	if cap > 0 && v > cap {
		v = cap
	}
	return v
}

// ParetoDuration is Pareto over durations.
func (g *RNG) ParetoDuration(xm Duration, alpha float64, cap Duration) Duration {
	return Duration(g.Pareto(float64(xm), alpha, float64(cap)))
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Zipf draws from a Zipf-like distribution over [0,n) with exponent theta in
// (0,1), using the YCSB/Gray et al. construction. A theta of 0.99 matches
// YCSB's default "zipfian" request distribution.
type Zipf struct {
	n      int64
	theta  float64
	alpha  float64
	zetan  float64
	eta    float64
	zeta2  float64
	source *RNG
}

// NewZipf builds a Zipf sampler over [0,n).
func NewZipf(g *RNG, n int64, theta float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf requires n > 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("sim: NewZipf requires theta in (0,1)")
	}
	z := &Zipf{n: n, theta: theta, source: g}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next sample in [0,n). Rank 0 is the hottest item.
func (z *Zipf) Next() int64 {
	u := z.source.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	if v < 0 {
		v = 0
	}
	return v
}
