package sim

// EventHeap is the engine's former event queue — a hand-specialized binary
// min-heap over (time, seq) with tombstone cancellation, 50%-tombstone
// compaction, and an owned-event freelist — retained verbatim after the
// timing-wheel rewrite for two jobs:
//
//   - the differential-testing oracle: FuzzEngineWheel drives an Engine and
//     an EventHeap with the same byte program and demands identical fire
//     order and Now() trajectories;
//   - the benchmark baseline: BenchmarkEngineCancelHeavy and
//     BenchmarkEngineMixedHorizon run the same workload on both queues so
//     the wheel's win is measured, not asserted.
//
// It is not used by Engine and has no Ticker/metrics surface; it mirrors
// exactly the scheduling semantics the simulation depends on.
type EventHeap struct {
	now        Time
	seq        uint64
	heap       []*HeapEvent
	free       []*HeapEvent
	nLive      int
	nCancelled int
	fired      uint64
	halted     bool
}

// HeapEvent is the oracle's cancellation handle, mirroring Event.
type HeapEvent struct {
	at        Time
	seq       uint64
	fn        func()
	h         *EventHeap
	owned     bool
	cancelled bool
}

// Time reports when the event fires.
func (e *HeapEvent) Time() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *HeapEvent) Cancelled() bool { return e.cancelled }

// Cancel tombstones the event; the heap compacts when tombstones outnumber
// live events.
func (e *HeapEvent) Cancel() {
	if e.cancelled || e.fn == nil {
		return
	}
	e.cancelled = true
	e.fn = nil
	h := e.h
	h.nLive--
	h.nCancelled++
	if h.nCancelled > len(h.heap)/2 {
		h.compact()
	}
}

// NewEventHeap returns a heap-backed queue positioned at virtual time zero.
func NewEventHeap() *EventHeap { return &EventHeap{} }

// Now returns the current virtual time.
func (h *EventHeap) Now() Time { return h.now }

// Fired returns the number of events executed so far.
func (h *EventHeap) Fired() uint64 { return h.fired }

// Pending returns the number of scheduled, not-cancelled events.
func (h *EventHeap) Pending() int { return h.nLive }

// Schedule runs fn after delay d and returns a cancellation handle.
func (h *EventHeap) Schedule(d Duration, fn func()) *HeapEvent {
	if d < 0 {
		d = 0
	}
	return h.At(h.now.Add(d), fn)
}

// At runs fn at absolute virtual time t and returns a cancellation handle.
func (h *EventHeap) At(t Time, fn func()) *HeapEvent {
	return h.post(t, fn, false)
}

// After runs fn after delay d, fire-and-forget through the freelist.
func (h *EventHeap) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	h.post(h.now.Add(d), fn, true)
}

// FireAt is the absolute-time form of After.
func (h *EventHeap) FireAt(t Time, fn func()) {
	h.post(t, fn, true)
}

func (h *EventHeap) post(t Time, fn func(), owned bool) *HeapEvent {
	if fn == nil {
		panic("sim: schedule called with nil callback")
	}
	if t < h.now {
		t = h.now
	}
	var ev *HeapEvent
	if n := len(h.free); owned && n > 0 {
		ev = h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
	} else {
		ev = &HeapEvent{h: h}
	}
	ev.at, ev.seq, ev.fn, ev.owned, ev.cancelled = t, h.seq, fn, owned, false
	h.seq++
	h.push(ev)
	h.nLive++
	return ev
}

// Step executes the next event, if any, and reports whether one ran.
func (h *EventHeap) Step() bool {
	for len(h.heap) > 0 {
		ev := h.pop()
		if ev.cancelled {
			h.nCancelled--
			continue
		}
		h.nLive--
		if ev.at > h.now {
			h.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		if ev.owned {
			h.free = append(h.free, ev)
		}
		h.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (h *EventHeap) Run() {
	h.halted = false
	for !h.halted {
		if !h.Step() {
			return
		}
	}
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t.
// Like Engine.RunUntil, a Halt that leaves due events queued also leaves
// the clock where the halt happened, so the two trajectories stay
// comparable in the differential fuzzer.
func (h *EventHeap) RunUntil(t Time) {
	h.halted = false
	for !h.halted {
		ev := h.peek()
		if ev == nil || ev.at > t {
			break
		}
		h.Step()
	}
	if h.now < t {
		if ev := h.peek(); ev == nil || ev.at > t {
			h.now = t
		}
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (h *EventHeap) Halt() { h.halted = true }

// Reset returns the queue to its initial state, keeping the freelist and
// the heap's backing array.
func (h *EventHeap) Reset() {
	for i, ev := range h.heap {
		ev.fn = nil
		ev.cancelled = true
		if ev.owned {
			h.free = append(h.free, ev)
		}
		h.heap[i] = nil
	}
	h.heap = h.heap[:0]
	h.now, h.seq, h.fired = 0, 0, 0
	h.nLive, h.nCancelled = 0, 0
	h.halted = false
}

func (h *EventHeap) peek() *HeapEvent {
	for len(h.heap) > 0 {
		if ev := h.heap[0]; ev.cancelled {
			h.pop()
			h.nCancelled--
			continue
		}
		return h.heap[0]
	}
	return nil
}

// heapBefore reports whether a fires strictly before b.
func heapBefore(a, b *HeapEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *EventHeap) push(ev *HeapEvent) {
	hp := append(h.heap, ev)
	h.heap = hp
	i := len(hp) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapBefore(hp[i], hp[parent]) {
			break
		}
		hp[i], hp[parent] = hp[parent], hp[i]
		i = parent
	}
}

func (h *EventHeap) pop() *HeapEvent {
	hp := h.heap
	n := len(hp)
	ev := hp[0]
	last := hp[n-1]
	hp[n-1] = nil
	hp = hp[:n-1]
	h.heap = hp
	if len(hp) > 0 {
		hp[0] = last
		h.siftDown(0)
	}
	return ev
}

func (h *EventHeap) siftDown(i int) {
	hp := h.heap
	n := len(hp)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && heapBefore(hp[right], hp[left]) {
			min = right
		}
		if !heapBefore(hp[min], hp[i]) {
			break
		}
		hp[i], hp[min] = hp[min], hp[i]
		i = min
	}
}

// compact removes cancelled tombstones and re-heapifies.
func (h *EventHeap) compact() {
	hp := h.heap
	kept := hp[:0]
	for _, ev := range hp {
		if ev.cancelled {
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(hp); i++ {
		hp[i] = nil
	}
	h.heap = kept
	h.nCancelled = 0
	for i := len(kept)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}
