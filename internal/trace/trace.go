// Package trace provides block-level IO traces: a record/replay format plus
// synthetic generators for the five production Windows-server workloads the
// paper replays in its §7.6 accuracy study (DAPPS, DTRS, EXCH, LMBE, TPCC,
// from the SNIA IOTTA repository / Kavalanekar et al., IISWC'08).
//
// The original traces are not redistributable, so each generator synthesizes
// a stream with that workload's published character — read/write mix, size
// mix, sequentiality, locality skew, arrival burstiness. What the §7.6
// experiment needs is five *differently shaped* stressors for the
// predictors, not the original bytes; DESIGN.md documents this substitution.
package trace

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// Record is one trace entry.
type Record struct {
	At     time.Duration // offset from trace start
	Op     blockio.Op
	Offset int64
	Size   int
}

// Trace is an ordered sequence of records.
type Trace struct {
	Name    string
	Records []Record
}

// Stats summarizes a trace.
type Stats struct {
	Records   int
	Duration  time.Duration
	IOPS      float64
	ReadFrac  float64
	MeanSize  int
	TotalSize int64
}

// Stats computes the summary.
func (t *Trace) Stats() Stats {
	s := Stats{Records: len(t.Records)}
	if len(t.Records) == 0 {
		return s
	}
	reads := 0
	for _, r := range t.Records {
		if r.Op == blockio.Read {
			reads++
		}
		s.TotalSize += int64(r.Size)
	}
	s.Duration = t.Records[len(t.Records)-1].At
	if s.Duration > 0 {
		s.IOPS = float64(len(t.Records)) / s.Duration.Seconds()
	}
	s.ReadFrac = float64(reads) / float64(len(t.Records))
	s.MeanSize = int(s.TotalSize / int64(len(t.Records)))
	return s
}

// Busiest extracts the window of the given length with the most records —
// the paper "choose[s] the busiest 5 minutes" of each trace. Timestamps are
// rebased to the window start.
func (t *Trace) Busiest(window time.Duration) *Trace {
	if len(t.Records) == 0 || window <= 0 {
		return &Trace{Name: t.Name}
	}
	best, bestCount := 0, 0
	j := 0
	for i := range t.Records {
		for j < len(t.Records) && t.Records[j].At < t.Records[i].At+window {
			j++
		}
		if j-i > bestCount {
			best, bestCount = i, j-i
		}
	}
	out := &Trace{Name: t.Name + "-busiest"}
	base := t.Records[best].At
	for _, r := range t.Records[best : best+bestCount] {
		r.At -= base
		out.Records = append(out.Records, r)
	}
	return out
}

// Rerate compresses inter-arrival times by `factor` (the paper re-rates
// disk traces 128× for the 128-chip SSD test).
func (t *Trace) Rerate(factor float64) *Trace {
	if factor <= 0 {
		panic("trace: Rerate factor must be positive")
	}
	out := &Trace{Name: fmt.Sprintf("%s-x%g", t.Name, factor)}
	for _, r := range t.Records {
		r.At = time.Duration(float64(r.At) / factor)
		out.Records = append(out.Records, r)
	}
	return out
}

// Clamp rewrites offsets/sizes to fit a device of the given capacity.
func (t *Trace) Clamp(capacity int64) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Records {
		if int64(r.Size) > capacity {
			r.Size = int(capacity / 2)
		}
		span := capacity - int64(r.Size)
		if span <= 0 {
			span = 1
		}
		r.Offset %= span
		if r.Offset < 0 {
			r.Offset += span
		}
		r.Offset &^= 4095
		out.Records = append(out.Records, r)
	}
	return out
}

// Profile shapes a synthetic workload generator.
type Profile struct {
	Name     string
	ReadFrac float64
	// Sizes is a weighted size mix.
	Sizes []SizeWeight
	// SeqProb is the probability that an IO continues the previous one
	// sequentially (run-length geometric).
	SeqProb float64
	// HotTheta is the Zipf skew over the address space (0 = uniform).
	HotTheta float64
	// MeanIOPS is the long-run arrival rate.
	MeanIOPS float64
	// BurstDuty and BurstFactor shape on/off burstiness: during a burst
	// (fraction BurstDuty of the time) the rate is multiplied by
	// BurstFactor, and scaled down off-burst to preserve the mean.
	BurstDuty   float64
	BurstFactor float64
	// AddrSpace is the device range the workload touches.
	AddrSpace int64
}

// SizeWeight pairs an IO size with a selection weight.
type SizeWeight struct {
	Size   int
	Weight float64
}

// Profiles returns the five §7.6 workload profiles, shaped after the
// published characterizations of the production Windows-server traces.
func Profiles(addrSpace int64) []Profile {
	return []Profile{
		{
			// DAPPS: display-ads platform payload server — read-heavy,
			// small-to-medium random IOs, moderately bursty.
			Name: "DAPPS", ReadFrac: 0.85,
			Sizes:   []SizeWeight{{4 << 10, 0.45}, {8 << 10, 0.30}, {32 << 10, 0.20}, {64 << 10, 0.05}},
			SeqProb: 0.15, HotTheta: 0.9, MeanIOPS: 120,
			BurstDuty: 0.15, BurstFactor: 5, AddrSpace: addrSpace,
		},
		{
			// DTRS: developer-tools release server — large sequential
			// reads (file downloads) with long runs.
			Name: "DTRS", ReadFrac: 0.95,
			Sizes:   []SizeWeight{{64 << 10, 0.50}, {256 << 10, 0.35}, {1 << 20, 0.15}},
			SeqProb: 0.75, HotTheta: 0.6, MeanIOPS: 40,
			BurstDuty: 0.25, BurstFactor: 3, AddrSpace: addrSpace,
		},
		{
			// EXCH: Microsoft Exchange mail store — mixed read/write,
			// 8–32KB random, highly bursty.
			Name: "EXCH", ReadFrac: 0.60,
			Sizes:   []SizeWeight{{8 << 10, 0.55}, {16 << 10, 0.25}, {32 << 10, 0.20}},
			SeqProb: 0.05, HotTheta: 0.95, MeanIOPS: 180,
			BurstDuty: 0.10, BurstFactor: 8, AddrSpace: addrSpace,
		},
		{
			// LMBE: Live Maps back end — tile reads, large sequential plus
			// random, sustained high throughput.
			Name: "LMBE", ReadFrac: 0.90,
			Sizes:   []SizeWeight{{16 << 10, 0.40}, {64 << 10, 0.40}, {256 << 10, 0.20}},
			SeqProb: 0.45, HotTheta: 0.8, MeanIOPS: 150,
			BurstDuty: 0.30, BurstFactor: 3, AddrSpace: addrSpace,
		},
		{
			// TPCC: OLTP — steady 8KB random with a 2:1 read:write mix.
			Name: "TPCC", ReadFrac: 0.65,
			Sizes:   []SizeWeight{{8 << 10, 0.90}, {16 << 10, 0.10}},
			SeqProb: 0.02, HotTheta: 0.99, MeanIOPS: 250,
			BurstDuty: 0.05, BurstFactor: 2, AddrSpace: addrSpace,
		},
	}
}

// ProfileByName finds one of the five profiles.
func ProfileByName(name string, addrSpace int64) (Profile, bool) {
	for _, p := range Profiles(addrSpace) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate synthesizes `duration` worth of trace from the profile.
func Generate(p Profile, duration time.Duration, rng *sim.RNG) *Trace {
	if p.MeanIOPS <= 0 || p.AddrSpace <= 0 {
		panic("trace: profile needs MeanIOPS and AddrSpace")
	}
	out := &Trace{Name: p.Name}
	var zipf *sim.Zipf
	const extents = 1 << 16
	if p.HotTheta > 0 && p.HotTheta < 1 {
		zipf = sim.NewZipf(rng, extents, p.HotTheta)
	}
	// Burst-modulated Poisson arrivals: offRate keeps the long-run mean.
	burstRate := p.MeanIOPS * p.BurstFactor
	offRate := p.MeanIOPS
	if p.BurstDuty > 0 && p.BurstDuty < 1 && p.BurstFactor > 1 {
		offRate = p.MeanIOPS * (1 - p.BurstDuty*p.BurstFactor) / (1 - p.BurstDuty)
		if offRate < 1 {
			offRate = 1
		}
	}
	const burstWindow = 500 * time.Millisecond
	now := time.Duration(0)
	var lastEnd int64
	for now < duration {
		inBurst := rng.Bool(p.BurstDuty)
		rate := offRate
		if inBurst {
			rate = burstRate
		}
		windowEnd := now + burstWindow
		for now < windowEnd && now < duration {
			gap := rng.Exp(time.Duration(float64(time.Second) / rate))
			now += gap
			if now >= duration {
				break
			}
			size := pickSize(p.Sizes, rng)
			var off int64
			if rng.Bool(p.SeqProb) && lastEnd+int64(size) < p.AddrSpace {
				off = lastEnd
			} else if zipf != nil {
				extent := zipf.Next()
				extSize := p.AddrSpace / extents
				off = extent*extSize + rng.Int63n(maxI64(extSize-int64(size), 1))
			} else {
				off = rng.Int63n(maxI64(p.AddrSpace-int64(size), 1))
			}
			off &^= 4095
			op := blockio.Write
			if rng.Bool(p.ReadFrac) {
				op = blockio.Read
			}
			out.Records = append(out.Records, Record{At: now, Op: op, Offset: off, Size: size})
			lastEnd = off + int64(size)
		}
		if now < windowEnd {
			now = windowEnd
		}
	}
	return out
}

func pickSize(sizes []SizeWeight, rng *sim.RNG) int {
	if len(sizes) == 0 {
		return 4096
	}
	total := 0.0
	for _, s := range sizes {
		total += s.Weight
	}
	x := rng.Float64() * total
	for _, s := range sizes {
		x -= s.Weight
		if x <= 0 {
			return s.Size
		}
	}
	return sizes[len(sizes)-1].Size
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Replayer issues a trace open-loop against a submit function in virtual
// time. The submit function owns deadline tagging and completion handling.
type Replayer struct {
	eng   *sim.Engine
	trace *Trace
	// Submit is invoked for each record at its timestamp.
	Submit func(rec Record)
	issued int
}

// NewReplayer builds a replayer.
func NewReplayer(eng *sim.Engine, tr *Trace, submit func(Record)) *Replayer {
	return &Replayer{eng: eng, trace: tr, Submit: submit}
}

// Start schedules every record. For multi-hundred-thousand-record traces
// this preloads the event queue; the engine handles it fine and the
// alternative (self-scheduling) would be no cheaper.
func (r *Replayer) Start() {
	for _, rec := range r.trace.Records {
		rec := rec
		r.eng.After(rec.At, func() {
			r.issued++
			r.Submit(rec)
		})
	}
}

// Issued returns how many records have fired so far.
func (r *Replayer) Issued() int { return r.issued }
