package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

func genFor(t *testing.T, name string, dur time.Duration) *Trace {
	t.Helper()
	p, ok := ProfileByName(name, 100<<30)
	if !ok {
		t.Fatalf("unknown profile %s", name)
	}
	return Generate(p, dur, sim.NewRNG(1, name))
}

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Profiles(100 << 30) {
		tr := Generate(p, 10*time.Second, sim.NewRNG(1, p.Name))
		st := tr.Stats()
		if st.Records == 0 {
			t.Fatalf("%s: empty trace", p.Name)
		}
		// The long-run rate should be in the ballpark of MeanIOPS.
		if st.IOPS < p.MeanIOPS*0.4 || st.IOPS > p.MeanIOPS*2.5 {
			t.Fatalf("%s: IOPS %.1f vs target %.1f", p.Name, st.IOPS, p.MeanIOPS)
		}
		if math.Abs(st.ReadFrac-p.ReadFrac) > 0.1 {
			t.Fatalf("%s: read frac %.2f vs target %.2f", p.Name, st.ReadFrac, p.ReadFrac)
		}
	}
}

func TestProfilesAreDistinct(t *testing.T) {
	// The five workloads must differ meaningfully (that is their entire
	// purpose in §7.6): compare mean sizes and read fractions pairwise.
	stats := map[string]Stats{}
	for _, p := range Profiles(100 << 30) {
		stats[p.Name] = Generate(p, 10*time.Second, sim.NewRNG(1, p.Name)).Stats()
	}
	if !(stats["DTRS"].MeanSize > 4*stats["TPCC"].MeanSize) {
		t.Fatalf("DTRS (%d) should be much larger IOs than TPCC (%d)",
			stats["DTRS"].MeanSize, stats["TPCC"].MeanSize)
	}
	if !(stats["EXCH"].ReadFrac < stats["DTRS"].ReadFrac) {
		t.Fatal("EXCH should be writier than DTRS")
	}
}

func TestRecordsOrderedAndInRange(t *testing.T) {
	tr := genFor(t, "EXCH", 20*time.Second)
	var prev time.Duration
	for _, r := range tr.Records {
		if r.At < prev {
			t.Fatal("records out of order")
		}
		prev = r.At
		if r.Offset < 0 || r.Offset+int64(r.Size) > 100<<30 {
			t.Fatalf("record out of range: %+v", r)
		}
		if r.Offset%4096 != 0 {
			t.Fatalf("unaligned offset %d", r.Offset)
		}
	}
}

func TestBusiestWindow(t *testing.T) {
	tr := genFor(t, "EXCH", 60*time.Second)
	busy := tr.Busiest(5 * time.Second)
	if len(busy.Records) == 0 {
		t.Fatal("empty busiest window")
	}
	if busy.Records[0].At != 0 {
		t.Fatal("busiest window not rebased")
	}
	last := busy.Records[len(busy.Records)-1].At
	if last >= 5*time.Second {
		t.Fatalf("window spans %v > 5s", last)
	}
	// It must be at least as dense as the average.
	avgRate := float64(len(tr.Records)) / 60
	busyRate := float64(len(busy.Records)) / 5
	if busyRate < avgRate {
		t.Fatalf("busiest rate %.1f < average %.1f", busyRate, avgRate)
	}
}

func TestBusiestEmpty(t *testing.T) {
	tr := &Trace{Name: "empty"}
	if got := tr.Busiest(time.Second); len(got.Records) != 0 {
		t.Fatal("busiest of empty trace not empty")
	}
}

func TestRerate(t *testing.T) {
	tr := genFor(t, "TPCC", 10*time.Second)
	fast := tr.Rerate(128)
	if len(fast.Records) != len(tr.Records) {
		t.Fatal("rerate changed record count")
	}
	origDur := tr.Records[len(tr.Records)-1].At
	fastDur := fast.Records[len(fast.Records)-1].At
	ratio := float64(origDur) / float64(fastDur)
	if ratio < 127 || ratio > 129 {
		t.Fatalf("rerate ratio %.1f, want 128", ratio)
	}
}

func TestRerateInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Trace{}).Rerate(0)
}

func TestClampFitsCapacity(t *testing.T) {
	tr := genFor(t, "LMBE", 10*time.Second)
	small := tr.Clamp(1 << 30)
	for _, r := range small.Records {
		if r.Offset < 0 || r.Offset+int64(r.Size) > 1<<30 {
			t.Fatalf("clamped record out of range: %+v", r)
		}
	}
}

func TestReplayerIssuesAllInOrder(t *testing.T) {
	eng := sim.NewEngine()
	tr := genFor(t, "DAPPS", 5*time.Second)
	var got []Record
	rep := NewReplayer(eng, tr, func(rec Record) { got = append(got, rec) })
	rep.Start()
	eng.Run()
	if len(got) != len(tr.Records) {
		t.Fatalf("replayed %d of %d", len(got), len(tr.Records))
	}
	if rep.Issued() != len(tr.Records) {
		t.Fatalf("Issued = %d", rep.Issued())
	}
	for i := range got {
		if got[i] != tr.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genFor(t, "TPCC", 5*time.Second)
	b := genFor(t, "TPCC", 5*time.Second)
	if len(a.Records) != len(b.Records) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("nondeterministic record")
		}
	}
}

func TestGenerateInvalidProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Profile{Name: "bad"}, time.Second, sim.NewRNG(1, "bad"))
}

func TestStatsEmptyTrace(t *testing.T) {
	var tr Trace
	st := tr.Stats()
	if st.Records != 0 || st.IOPS != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestPropertyClampAlwaysInRange(t *testing.T) {
	f := func(offs []int64, capRaw uint32) bool {
		capacity := int64(capRaw)%(10<<30) + (1 << 20)
		tr := &Trace{}
		for i, o := range offs {
			tr.Records = append(tr.Records, Record{
				At: time.Duration(i) * time.Millisecond, Op: blockio.Read,
				Offset: o, Size: 4096,
			})
		}
		c := tr.Clamp(capacity)
		for _, r := range c.Records {
			if r.Offset < 0 || r.Offset+int64(r.Size) > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
