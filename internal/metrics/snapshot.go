package metrics

import (
	"fmt"
	"strings"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// Snapshot is the end-of-run readout of one Set, shaped for both JSON
// export (stable field order, snake_case keys) and the deterministic text
// dump rendered by String. Rows are emitted in enum order — never map
// order — and empty rows are elided, so the same simulation produces the
// same bytes every run.
type Snapshot struct {
	Leg    string          `json:"leg"`
	Engine sim.EngineStats `json:"engine"`

	Counters []CounterRow `json:"counters"`
	MaxQueue []QueueRow   `json:"max_queue"`
	Hists    []HistRow    `json:"hists"`
	Predict  []PredictRow `json:"predict"`

	Spans        []*Span  `json:"spans,omitempty"`
	SpansDropped uint64   `json:"spans_dropped"`
	Violations   []string `json:"violations,omitempty"`
}

// CounterRow is one non-zero counter.
type CounterRow struct {
	Resource string `json:"resource"`
	Counter  string `json:"counter"`
	Value    uint64 `json:"value"`
}

// QueueRow is one resource's high-water queue depth.
type QueueRow struct {
	Resource string `json:"resource"`
	Max      int64  `json:"max_depth"`
}

// HistRow summarizes one non-empty histogram.
type HistRow struct {
	Resource string `json:"resource"`
	Kind     string `json:"kind"`
	Op       string `json:"op"`
	N        uint64 `json:"n"`
	MinNs    int64  `json:"min_ns"`
	MeanNs   int64  `json:"mean_ns"`
	P50Ns    int64  `json:"p50_ns"`
	P90Ns    int64  `json:"p90_ns"`
	P95Ns    int64  `json:"p95_ns"`
	P99Ns    int64  `json:"p99_ns"`
	MaxNs    int64  `json:"max_ns"`
}

// PredictRow is the §7.6 prediction-accuracy readout for one Mitt* layer:
// distribution of |actual − predicted| wait over completed admitted IOs,
// plus the signed bias (positive = the predictor underestimates waits).
type PredictRow struct {
	Resource     string `json:"resource"`
	N            uint64 `json:"n"`
	MeanAbsErrNs int64  `json:"mean_abs_err_ns"`
	P50AbsErrNs  int64  `json:"p50_abs_err_ns"`
	P95AbsErrNs  int64  `json:"p95_abs_err_ns"`
	P99AbsErrNs  int64  `json:"p99_abs_err_ns"`
	MaxAbsErrNs  int64  `json:"max_abs_err_ns"`
	BiasNs       int64  `json:"bias_ns"` // mean signed (actual − predicted)
}

// Snapshot renders the Set's current state under the given leg label.
func (s *Set) Snapshot(leg string) *Snapshot {
	sn := &Snapshot{
		Leg:          leg,
		Engine:       s.eng.Stats(),
		Spans:        s.spans,
		SpansDropped: s.spansDropped,
		Violations:   s.violations,
	}
	for r := Resource(0); r < numResources; r++ {
		for c := Counter(0); c < numCounters; c++ {
			if v := s.counters[r][c]; v > 0 {
				sn.Counters = append(sn.Counters, CounterRow{r.String(), c.String(), v})
			}
		}
	}
	for r := Resource(0); r < numResources; r++ {
		if m := s.gauges[r].Max; m > 0 {
			sn.MaxQueue = append(sn.MaxQueue, QueueRow{r.String(), m})
		}
	}
	for r := Resource(0); r < numResources; r++ {
		for k := HistKind(0); k < numHistKinds; k++ {
			for op := 0; op < numOps; op++ {
				h := &s.hists[r][k][op]
				if h.N == 0 {
					continue
				}
				sn.Hists = append(sn.Hists, HistRow{
					Resource: r.String(), Kind: k.String(), Op: blockio.Op(op).String(),
					N: h.N, MinNs: h.Min, MeanNs: h.Mean(),
					P50Ns: h.Quantile(0.50), P90Ns: h.Quantile(0.90),
					P95Ns: h.Quantile(0.95), P99Ns: h.Quantile(0.99),
					MaxNs: h.Max,
				})
			}
		}
	}
	for r := Resource(0); r < numResources; r++ {
		if s.predN[r] == 0 {
			continue
		}
		// Aggregate the per-op abs-error histograms into one row per layer.
		var agg Hist
		for op := 0; op < numOps; op++ {
			h := &s.hists[r][HPredictErr][op]
			if h.N == 0 {
				continue
			}
			if agg.N == 0 || h.Min < agg.Min {
				agg.Min = h.Min
			}
			if h.Max > agg.Max {
				agg.Max = h.Max
			}
			agg.N += h.N
			agg.Sum += h.Sum
			for i := range h.Buckets {
				agg.Buckets[i] += h.Buckets[i]
			}
		}
		sn.Predict = append(sn.Predict, PredictRow{
			Resource: r.String(), N: s.predN[r],
			MeanAbsErrNs: agg.Mean(),
			P50AbsErrNs:  agg.Quantile(0.50),
			P95AbsErrNs:  agg.Quantile(0.95),
			P99AbsErrNs:  agg.Quantile(0.99),
			MaxAbsErrNs:  agg.Max,
			BiasNs:       s.predBias[r] / int64(s.predN[r]),
		})
	}
	return sn
}

// fmtNs renders nanoseconds as a duration string.
func fmtNs(ns int64) string { return time.Duration(ns).String() }

// String renders the snapshot as a deterministic, human-oriented text dump.
func (sn *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics [%s]\n", sn.Leg)
	e := sn.Engine
	fmt.Fprintf(&b, "  engine: now=%v fired=%d scheduled=%d cancelled=%d cascades=%d pending=%d max-pending=%d max-slot=%d overflow=%d freelist=%d\n",
		e.Now, e.Fired, e.Scheduled, e.Cancelled, e.Cascades, e.Pending, e.MaxPending, e.MaxSlot, e.Overflow, e.FreeList)
	if len(sn.Counters) > 0 {
		fmt.Fprintf(&b, "  counters:\n")
		last := ""
		for _, c := range sn.Counters {
			if c.Resource != last {
				if last != "" {
					fmt.Fprintln(&b)
				}
				fmt.Fprintf(&b, "    %-10s", c.Resource+":")
				last = c.Resource
			}
			fmt.Fprintf(&b, " %s=%d", c.Counter, c.Value)
		}
		fmt.Fprintln(&b)
	}
	if len(sn.MaxQueue) > 0 {
		fmt.Fprintf(&b, "  max queue depth:")
		for _, q := range sn.MaxQueue {
			fmt.Fprintf(&b, " %s=%d", q.Resource, q.Max)
		}
		fmt.Fprintln(&b)
	}
	if len(sn.Hists) > 0 {
		fmt.Fprintf(&b, "  histograms:\n")
		for _, h := range sn.Hists {
			fmt.Fprintf(&b, "    %s/%s/%s: n=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
				h.Resource, h.Kind, h.Op, h.N,
				fmtNs(h.MeanNs), fmtNs(h.P50Ns), fmtNs(h.P95Ns), fmtNs(h.P99Ns), fmtNs(h.MaxNs))
		}
	}
	if len(sn.Predict) > 0 {
		fmt.Fprintf(&b, "  prediction error (|actual-predicted| wait, §7.6):\n")
		for _, p := range sn.Predict {
			fmt.Fprintf(&b, "    %s: n=%d mean=%s p50=%s p95=%s p99=%s max=%s bias=%s\n",
				p.Resource, p.N, fmtNs(p.MeanAbsErrNs), fmtNs(p.P50AbsErrNs),
				fmtNs(p.P95AbsErrNs), fmtNs(p.P99AbsErrNs), fmtNs(p.MaxAbsErrNs), fmtNs(p.BiasNs))
		}
	}
	if len(sn.Spans) > 0 || sn.SpansDropped > 0 {
		fmt.Fprintf(&b, "  spans: %d traced, %d dropped\n", len(sn.Spans), sn.SpansDropped)
	}
	for _, v := range sn.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	return b.String()
}
