package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mittos/internal/sim"
)

// TestSnapshotEngineStats pins the engine-health plumbing: the wheel's
// diagnostic counters (cascades, max pending, max slot occupancy, overflow
// length) must survive the trip through Snapshot into both the text dump
// and the JSON export.
func TestSnapshotEngineStats(t *testing.T) {
	eng := sim.NewEngine()
	set := New(eng, 1, 0)

	// Produce recognizable engine activity: a burst sharing one far wheel
	// slot (the survivors cascade down when the cursor reaches it), one
	// cancel, and one beyond-horizon deadline left pending (overflow).
	for i := 0; i < 8; i++ {
		eng.After(time.Duration(1<<20+i*1024), func() {})
	}
	ev := eng.Schedule(time.Microsecond, func() {})
	ev.Cancel()
	eng.At(sim.MaxTime, func() {})
	eng.RunFor(10 * time.Millisecond)

	sn := set.Snapshot("leg-a")
	e := sn.Engine
	if e.Fired != 8 || e.Cancelled != 1 || e.Scheduled != 10 {
		t.Fatalf("fired=%d cancelled=%d scheduled=%d, want 8/1/10", e.Fired, e.Cancelled, e.Scheduled)
	}
	if e.Cascades == 0 {
		t.Fatalf("multi-level burst recorded no cascades: %+v", e)
	}
	if e.Overflow != 1 || e.Pending != 1 {
		t.Fatalf("overflow=%d pending=%d, want 1/1 (the MaxTime deadline)", e.Overflow, e.Pending)
	}
	if e.MaxPending < 9 || e.MaxSlot < 1 {
		t.Fatalf("max_pending=%d max_slot=%d, want ≥9/≥1", e.MaxPending, e.MaxSlot)
	}

	text := sn.String()
	for _, want := range []string{"cascades=", "max-pending=", "max-slot=", "overflow=1", "freelist="} {
		if !strings.Contains(text, want) {
			t.Fatalf("text dump missing %q:\n%s", want, text)
		}
	}

	raw, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	engObj, ok := doc["engine"].(map[string]any)
	if !ok {
		t.Fatalf("no engine object in JSON: %s", raw)
	}
	for _, key := range []string{"cascades", "max_pending", "max_slot", "overflow_len", "freelist_len"} {
		if _, ok := engObj[key]; !ok {
			t.Fatalf("engine JSON missing %q: %s", key, raw)
		}
	}
	if engObj["cascades"].(float64) != float64(e.Cascades) {
		t.Fatalf("JSON cascades %v != stats %d", engObj["cascades"], e.Cascades)
	}
}

// TestSnapshotStringDeterministic locks the dump's byte-for-byte
// stability: two sets fed identically must render identically.
func TestSnapshotStringDeterministic(t *testing.T) {
	build := func() string {
		eng := sim.NewEngine()
		set := New(eng, 1, 0)
		for i := 0; i < 4; i++ {
			eng.After(time.Duration(i+1)*300*time.Microsecond, func() {})
		}
		eng.Run()
		return set.Snapshot("leg").String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("identical runs rendered different dumps:\n%s\n---\n%s", a, b)
	}
}
