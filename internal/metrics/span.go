package metrics

import (
	"fmt"

	"mittos/internal/blockio"
)

// Span is the structured trace of one IO's life:
//
//	submit → sched queue → device queue → service → complete/EBUSY
//
// Timestamps are virtual-time nanoseconds; -1 means the IO never reached
// that stage (a fast-rejected IO has only Submit and End; a cache hit never
// enters a scheduler). Spans are created at the node's storage boundary and
// stamped by each layer as the request descends.
type Span struct {
	Node  int    `json:"node"`
	ID    uint64 `json:"id"`
	Op    string `json:"op"`
	Proc  int    `json:"proc"`
	Class string `json:"class"`
	Prio  int    `json:"prio"`

	DeadlineNs int64 `json:"deadline_ns"` // 0 = no SLO

	// WalQueueNs is the group-commit queueing the oldest batched put spent
	// above the stack before this WAL IO was submitted (0 for IOs that were
	// never batch-queued) — the put path's wal-queue stage.
	WalQueueNs int64 `json:"wal_queue_ns,omitempty"`

	SubmitNs     int64 `json:"submit_ns"`
	SchedEnterNs int64 `json:"sched_enter_ns"`
	SchedExitNs  int64 `json:"sched_exit_ns"`
	DevEnterNs   int64 `json:"dev_enter_ns"`
	DevStartNs   int64 `json:"dev_start_ns"`
	EndNs        int64 `json:"end_ns"`

	// Admission bookkeeping: the Mitt* layer's wait/service estimate and,
	// once completed, the measured wait — the per-IO §7.6 record.
	PredWaitNs   int64 `json:"pred_wait_ns"`
	PredSvcNs    int64 `json:"pred_svc_ns"`
	ActualWaitNs int64 `json:"actual_wait_ns"`

	// Verdict is the terminal state: "completed", "busy" (fast EBUSY),
	// "busy-late" (MittCFQ cancellation), "revoked" (owner cancelled a tied
	// request), or "" while in flight.
	Verdict    string `json:"verdict"`
	RejectLate bool   `json:"reject_late,omitempty"`

	// Terminals counts terminal verdicts delivered; the exactly-once
	// invariant demands it never exceeds 1.
	Terminals int `json:"terminals"`
}

// terminal records a terminal verdict, flagging double delivery.
func (sp *Span) terminal(s *Set, verdict string) {
	sp.Terminals++
	if sp.Terminals > 1 {
		s.violations = append(s.violations, fmt.Sprintf(
			"io#%d node=%d: %d terminal verdicts (%s then %s)",
			sp.ID, sp.Node, sp.Terminals, sp.Verdict, verdict))
		return
	}
	sp.Verdict = verdict
	sp.EndNs = int64(s.eng.Now())
}

// IOBegin opens a span at the node's storage boundary. Every IO that enters
// the stack — client gets, WAL/flush writes, noise, cache background IO —
// passes exactly one boundary, so spans are created exactly once.
func (r *Recorder) IOBegin(req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	s.counters[RNode][CSubmitted]++
	if req.SubmitTime == 0 {
		// Stamp submit time for paths whose first layer would not (the
		// vanilla cache-hit path): same virtual instant either way.
		req.SubmitTime = s.eng.Now()
	}
	if s.spanIdx == nil {
		return
	}
	if sp := s.spanIdx[req]; sp != nil {
		s.violations = append(s.violations, fmt.Sprintf(
			"io#%d node=%d: submitted twice at the boundary", req.ID, r.node))
		return
	}
	if s.traceMax >= 0 && len(s.spans) >= s.traceMax {
		s.spansDropped++
		return
	}
	sp := &Span{
		Node: r.node, ID: req.ID, Op: req.Op.String(),
		Proc: req.Proc, Class: req.Class.String(), Prio: req.Priority,
		DeadlineNs:   int64(req.Deadline),
		SubmitNs:     int64(s.eng.Now()),
		SchedEnterNs: -1, SchedExitNs: -1, DevEnterNs: -1, DevStartNs: -1,
		EndNs: -1, PredWaitNs: -1, PredSvcNs: -1, ActualWaitNs: -1,
	}
	if req.QueuedTime > 0 {
		sp.WalQueueNs = int64(s.eng.Now().Sub(req.QueuedTime))
	}
	s.spans = append(s.spans, sp)
	s.spanIdx[req] = sp
}

// IOEnd closes a span with the IO's final verdict: err == nil is normal
// completion, a busy error (blockio.ErrBusy / core.BusyError) is an EBUSY
// rejection. The boundary latency histogram is fed here.
func (r *Recorder) IOEnd(req *blockio.Request, err error, busy bool) {
	if r == nil {
		return
	}
	s := r.set
	now := s.eng.Now()
	var sp *Span
	if s.spanIdx != nil {
		sp = s.spanIdx[req]
		// The span stays in s.spans; only the request-pointer index entry
		// goes, because a pooled request recycles at its terminal and the
		// same pointer will be a fresh IO on its next submission.
		delete(s.spanIdx, req)
	}
	switch {
	case err == nil:
		s.counters[RNode][CCompleted]++
		s.hists[RNode][HLatency][opIndex(req.Op)].Observe(now.Sub(req.SubmitTime))
		if sp != nil {
			sp.terminal(s, "completed")
		}
	case busy:
		s.counters[RNode][CRejected]++
		if sp != nil {
			if sp.RejectLate {
				sp.terminal(s, "busy-late")
			} else {
				sp.terminal(s, "busy")
			}
		}
	default:
		// Non-busy errors (e.g. kv.ErrNotFound) never reach the block
		// layer; treat as completed-with-error for accounting.
		s.counters[RNode][CCompleted]++
		if sp != nil {
			sp.terminal(s, "error")
		}
	}
}

// Spans returns the traced spans in creation order.
func (s *Set) Spans() []*Span { return s.spans }

// SpansDropped reports IOs not traced because the trace cap was reached.
func (s *Set) SpansDropped() uint64 { return s.spansDropped }

// Violations returns invariant breaches detected online (empty on a
// healthy run).
func (s *Set) Violations() []string { return s.violations }
