// Package metrics is the observability substrate for the simulated storage
// stack: a zero-allocation-on-hot-path registry of counters, queue-depth
// gauges, and fixed-bucket latency histograms keyed by (resource, op), plus
// a structured per-IO span tracer (see span.go).
//
// Design constraints, in order:
//
//  1. Metrics off must cost nothing measurable. Every layer holds a
//     *Recorder and calls it unconditionally; a nil *Recorder is the
//     disabled state and every method no-ops on a nil receiver. Using a
//     concrete pointer rather than an interface keeps the disabled path a
//     single predictable branch and avoids the typed-nil interface trap.
//  2. Metrics on must not allocate per IO. All counters, gauges, and
//     histograms live in fixed arrays sized by the Resource/Counter/
//     HistKind enums; histogram buckets are power-of-two nanosecond ranges
//     indexed with bits.Len64. Only span tracing (opt-in via TraceIOs)
//     allocates, because it materializes one record per IO by design.
//  3. Output must be deterministic. Snapshots iterate enum-ordered arrays,
//     never Go maps, so the rendered dump is byte-identical run to run —
//     the same property the golden tests enforce for experiment output.
//
// One Set belongs to one simulation engine (one experiment leg) and is not
// goroutine-safe; legs are single-threaded by construction (see
// internal/sim), so no synchronization is needed or wanted.
package metrics

import (
	"math/bits"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/sim"
)

// Resource identifies one instrumented layer of the stack.
type Resource uint8

// Instrumented resources. RNode is the node's storage-stack boundary — the
// point where an IO enters SubmitSLO (or the raw block layer, for noise and
// background IO) and where its final verdict is observed.
const (
	RNode Resource = iota
	RSchedNoop
	RSchedCFQ
	RDisk
	RSSD
	RCache
	RMittNoop
	RMittCFQ
	RMittSSD
	RMittCache
	numResources
)

var resourceNames = [numResources]string{
	"node", "sched-noop", "sched-cfq", "disk", "ssd", "cache",
	"mittnoop", "mittcfq", "mittssd", "mittcache",
}

// String names the resource.
func (r Resource) String() string {
	if int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return "resource(?)"
}

// Counter identifies one event count within a resource.
type Counter uint8

// Counters. Admission counters (CAccepted..CShadowBusy) are meaningful on
// the Mitt* resources; CDispatched on schedulers; the cache counters on
// RCache; CSubmitted/CCompleted/CRejected* on every resource that sees the
// request flow.
const (
	CSubmitted    Counter = iota // IOs entering the resource
	CCompleted                   // IOs that finished normally
	CAccepted                    // admission decisions that let the IO through
	CRejected                    // fast EBUSY at admission
	CRejectedLate                // EBUSY after acceptance (MittCFQ cancellation)
	CShadowBusy                  // shadow-mode busy verdicts (recorded, not enforced)
	CDropped                     // revoked IOs dropped by a scheduler before dispatch
	CDispatched                  // IOs handed from a scheduler to the device
	CCacheHit
	CCacheMiss
	CEviction
	CPrefetch
	// CSLOMet / CSLOMissed count client-side user-request SLO verdicts
	// (recorded on RNode by cluster clients with ClientConfig.SLO set) —
	// the load sweep's attainment numerator and denominator complement.
	CSLOMet
	CSLOMissed
	numCounters
)

var counterNames = [numCounters]string{
	"submitted", "completed", "accepted", "rejected", "rejected-late",
	"shadow-busy", "dropped", "dispatched", "cache-hit", "cache-miss",
	"evictions", "prefetches", "slo-met", "slo-missed",
}

// String names the counter.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter(?)"
}

// HistKind identifies one latency distribution within a resource.
type HistKind uint8

// Histogram kinds, all in nanoseconds of virtual time.
const (
	HLatency       HistKind = iota // submit → terminal verdict at the node boundary
	HQueueWait                     // scheduler residency: sched enter → dispatch
	HDevice                        // device residency: device enter → completion
	HPredictedWait                 // predicted queueing wait at each admission decision
	HPredictErr                    // |actual − predicted| wait of completed admitted IOs (§7.6)
	// Put-path stages (SLO-aware writes): group-commit queueing above the
	// stack, WAL group service, enqueue→memtable-ack per put, and the
	// user-visible quorum latency of replicated puts.
	HPutWalQueue
	HPutWalService
	HPutMemAck
	HPutQuorum
	numHistKinds
)

var histKindNames = [numHistKinds]string{
	"latency", "queue-wait", "device", "predicted-wait", "predict-err",
	"put-wal-queue", "put-wal-service", "put-mem-ack", "put-quorum",
}

// String names the histogram kind.
func (k HistKind) String() string {
	if int(k) < len(histKindNames) {
		return histKindNames[k]
	}
	return "hist(?)"
}

// numOps dimensions histograms by blockio.Op (read/write/erase).
const numOps = 3

// numBuckets covers [1ns, ~9h) in power-of-two buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// Bucket 0 holds exact zeros. 45 buckets reach 2^44 ns ≈ 4.9h, far past any
// simulated latency; larger values clamp into the last bucket.
const numBuckets = 45

// Hist is a fixed-bucket latency histogram. The zero value is ready to use.
// Observe is allocation-free; quantiles are approximate (bucket upper edge,
// clamped to the observed min/max), which is plenty for tail reporting at
// power-of-two resolution.
type Hist struct {
	N       uint64
	Sum     int64 // nanoseconds
	Min     int64
	Max     int64
	Buckets [numBuckets]uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.N++
	h.Sum += ns
	if h.N == 1 || ns < h.Min {
		h.Min = ns
	}
	if ns > h.Max {
		h.Max = ns
	}
	i := bits.Len64(uint64(ns))
	if i >= numBuckets {
		i = numBuckets - 1
	}
	h.Buckets[i]++
}

// Mean returns the average observation in nanoseconds (0 if empty).
func (h *Hist) Mean() int64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / int64(h.N)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) in
// nanoseconds: the upper edge of the bucket holding the rank, clamped to
// the observed [Min, Max].
func (h *Hist) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.N-1)) // 0-based rank
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.Buckets[i]
		if cum > rank {
			var est int64
			if i > 0 {
				est = int64(1)<<uint(i) - 1 // upper edge of [2^(i-1), 2^i)
			}
			if est > h.Max {
				est = h.Max
			}
			if est < h.Min {
				est = h.Min
			}
			return est
		}
	}
	return h.Max
}

// gauge is a current/high-water pair (queue depths).
type gauge struct {
	Cur int64
	Max int64
}

// Set is one engine's worth of metrics: all counters, gauges, histograms,
// and spans for one experiment leg. Construct with New; share the returned
// per-node Recorders across the leg's layers.
type Set struct {
	eng *sim.Engine

	counters [numResources][numCounters]uint64
	gauges   [numResources]gauge
	hists    [numResources][numHistKinds][numOps]Hist

	// Signed prediction bias Σ(actual − predicted) wait per resource, the
	// companion to the absolute-error histogram: a large |bias| with small
	// mean error means the predictor is consistently early or late.
	predBias [numResources]int64
	predN    [numResources]uint64

	// Span tracing (span.go). traceMax < 0 means unlimited.
	traceMax     int
	spans        []*Span
	spanIdx      map[*blockio.Request]*Span
	spansDropped uint64

	// violations accumulates invariant breaches detected online (e.g. a
	// request delivering two terminal verdicts). Property tests assert this
	// stays empty.
	violations []string

	recs []Recorder
}

// New builds a Set over the engine. nodes sizes the per-node Recorder pool;
// traceIOs bounds span tracing (0 disables it, < 0 traces every IO).
func New(eng *sim.Engine, nodes, traceIOs int) *Set {
	s := &Set{eng: eng, traceMax: traceIOs}
	if traceIOs != 0 {
		s.spanIdx = make(map[*blockio.Request]*Span)
	}
	if nodes < 1 {
		nodes = 1
	}
	s.recs = make([]Recorder, nodes)
	for i := range s.recs {
		s.recs[i] = Recorder{set: s, node: i}
	}
	return s
}

// Node returns the recorder for node i. A nil Set returns a nil Recorder,
// which is the valid "metrics disabled" recorder — every layer can hold and
// call it unconditionally.
func (s *Set) Node(i int) *Recorder {
	if s == nil {
		return nil
	}
	if i < 0 || i >= len(s.recs) {
		return &Recorder{set: s, node: -1}
	}
	return &s.recs[i]
}

// Counter reads one counter (tests and snapshots).
func (s *Set) Counter(r Resource, c Counter) uint64 { return s.counters[r][c] }

// HistOf returns one histogram for inspection (may have N == 0).
func (s *Set) HistOf(r Resource, k HistKind, op blockio.Op) *Hist {
	return &s.hists[r][k][opIndex(op)]
}

func opIndex(op blockio.Op) int {
	if int(op) >= numOps {
		return numOps - 1
	}
	return int(op)
}

// Recorder is a per-node view of a Set. The nil *Recorder is the disabled
// state: every method is safe — and a near-free early return — on a nil
// receiver, so instrumented layers never branch on "metrics enabled?".
type Recorder struct {
	set  *Set
	node int
}

// Incr bumps one counter.
func (r *Recorder) Incr(res Resource, c Counter) {
	if r == nil {
		return
	}
	r.set.counters[res][c]++
}

// SchedEnter records an IO entering a scheduler queue.
func (r *Recorder) SchedEnter(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	s.counters[res][CSubmitted]++
	g := &s.gauges[res]
	g.Cur++
	if g.Cur > g.Max {
		g.Max = g.Cur
	}
	if sp := s.spanIdx[req]; sp != nil && sp.SchedEnterNs < 0 {
		sp.SchedEnterNs = int64(s.eng.Now())
	}
}

// SchedExit records an IO leaving a scheduler for the device (dispatch).
func (r *Recorder) SchedExit(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	now := s.eng.Now()
	s.counters[res][CDispatched]++
	s.gauges[res].Cur--
	s.hists[res][HQueueWait][opIndex(req.Op)].Observe(now.Sub(req.SubmitTime))
	if sp := s.spanIdx[req]; sp != nil && sp.SchedExitNs < 0 {
		sp.SchedExitNs = int64(now)
	}
}

// SchedDrop records a scheduler discarding a revoked IO before dispatch.
// This is a terminal for the span: the owner revoked the request (tied
// requests, §6) and no completion or EBUSY will ever be delivered.
func (r *Recorder) SchedDrop(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	s.counters[res][CDropped]++
	s.gauges[res].Cur--
	if sp := s.spanIdx[req]; sp != nil {
		sp.terminal(s, "revoked")
		delete(s.spanIdx, req)
	}
}

// SchedRemove records an IO pulled out of a scheduler queue by explicit
// cancellation (MittCFQ's late EBUSY): only the queue-depth gauge moves —
// the rejection itself is counted at the Mitt* layer, and the span's
// terminal verdict arrives with the EBUSY delivery.
func (r *Recorder) SchedRemove(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	r.set.gauges[res].Cur--
}

// DevDrop records a device discarding a revoked IO from its queue before
// service — a terminal for the span, like SchedDrop.
func (r *Recorder) DevDrop(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	s.counters[res][CDropped]++
	s.gauges[res].Cur--
	if sp := s.spanIdx[req]; sp != nil {
		sp.terminal(s, "revoked")
		delete(s.spanIdx, req)
	}
}

// DevEnter records an IO arriving at a device queue.
func (r *Recorder) DevEnter(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	s.counters[res][CSubmitted]++
	g := &s.gauges[res]
	g.Cur++
	if g.Cur > g.Max {
		g.Max = g.Cur
	}
	if sp := s.spanIdx[req]; sp != nil && sp.DevEnterNs < 0 {
		sp.DevEnterNs = int64(s.eng.Now())
	}
}

// DevStart records the device beginning actual service of an IO (first
// chip/spindle occupancy). Set-if-unset: striped SSD IOs call it once per
// page and the first page wins.
func (r *Recorder) DevStart(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	if sp := s.spanIdx[req]; sp != nil && sp.DevStartNs < 0 {
		sp.DevStartNs = int64(s.eng.Now())
	}
}

// DevDone records device completion; the device-residency histogram gets
// dispatch → completion (queueing inside the device included).
func (r *Recorder) DevDone(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	s.counters[res][CCompleted]++
	s.gauges[res].Cur--
	s.hists[res][HDevice][opIndex(req.Op)].Observe(req.CompleteTime.Sub(req.DispatchTime))
}

// Admitted records a Mitt* layer letting an IO through, with its predicted
// wait and service time already attached to the request.
func (r *Recorder) Admitted(res Resource, req *blockio.Request) {
	if r == nil {
		return
	}
	s := r.set
	s.counters[res][CAccepted]++
	s.hists[res][HPredictedWait][opIndex(req.Op)].Observe(req.PredictedWait)
	if sp := s.spanIdx[req]; sp != nil {
		sp.PredWaitNs = int64(req.PredictedWait)
		sp.PredSvcNs = int64(req.PredictedService)
	}
}

// Rejected records an EBUSY verdict: predicted is the wait estimate that
// broke the deadline; late marks MittCFQ's post-acceptance cancellation.
func (r *Recorder) Rejected(res Resource, req *blockio.Request, predicted time.Duration, late bool) {
	if r == nil {
		return
	}
	s := r.set
	if late {
		s.counters[res][CRejectedLate]++
	} else {
		s.counters[res][CRejected]++
	}
	s.hists[res][HPredictedWait][opIndex(req.Op)].Observe(predicted)
	if sp := s.spanIdx[req]; sp != nil {
		if sp.PredWaitNs < 0 {
			sp.PredWaitNs = int64(predicted)
		}
		sp.RejectLate = late
	}
}

// Observe records one duration in an arbitrary (resource, kind, op)
// histogram — the hook for stage latencies measured above the block layer,
// like the put path's wal-queue/mem-ack/quorum stages.
func (r *Recorder) Observe(res Resource, k HistKind, op blockio.Op, d time.Duration) {
	if r == nil {
		return
	}
	r.set.hists[res][k][opIndex(op)].Observe(d)
}

// ShadowBusy records a shadow-mode busy verdict (§7.6): the IO proceeds,
// only the verdict is counted.
func (r *Recorder) ShadowBusy(res Resource) {
	if r == nil {
		return
	}
	r.set.counters[res][CShadowBusy]++
}

// Prediction scores one completed, admitted IO: the §7.6 accuracy metric as
// a runtime histogram. actual is the measured queueing wait (latency minus
// service), predicted the admission-time estimate.
func (r *Recorder) Prediction(res Resource, req *blockio.Request, predicted, actual time.Duration) {
	if r == nil {
		return
	}
	s := r.set
	diff := actual - predicted
	s.predBias[res] += int64(diff)
	s.predN[res]++
	if diff < 0 {
		diff = -diff
	}
	s.hists[res][HPredictErr][opIndex(req.Op)].Observe(diff)
	if sp := s.spanIdx[req]; sp != nil {
		sp.ActualWaitNs = int64(actual)
	}
}
