// Package vmm models a virtual machine monitor scheduling CPU-bound VMs in
// timeslices, and MittVMM — the §8.2 extension: "The VMM by default sets a
// VM's CPU timeslice to 30ms, thus user requests to a frozen VM will be
// parked in the VMM for tens of ms. With MittOS, the user can pass a
// deadline through the network stack, and when the message is received by
// the VMM, it can reject the message with EBUSY if the target VM must still
// sleep more than the deadline time."
package vmm

import (
	"fmt"
	"time"

	"mittos/internal/core"
	"mittos/internal/sim"
)

// Config shapes the host's VM scheduler.
type Config struct {
	// Timeslice is each runnable VM's CPU quantum (Xen-style 30ms).
	Timeslice time.Duration
	// DeliverCost is the VMM's message-delivery overhead once the target
	// VM is running.
	DeliverCost time.Duration
}

// DefaultConfig matches §8.2's 30ms timeslice.
func DefaultConfig() Config {
	return Config{Timeslice: 30 * time.Millisecond, DeliverCost: 20 * time.Microsecond}
}

// VM is one guest. CPU-bound VMs are always runnable; an idle VM yields its
// slice immediately (boosted wakeup), which is how lightly-loaded guests
// dodge the parking problem.
type VM struct {
	ID       int
	CPUBound bool

	parked []parkedMsg
}

type parkedMsg struct {
	fn func()
}

// Host is the VMM: a single physical core multiplexed round-robin across
// runnable VMs (the §8.2 contention scenario: "CPU-intensive VMs can
// contend with each other").
type Host struct {
	eng *sim.Engine
	cfg Config
	vms []*VM

	current  int
	sliceEnd sim.Time

	delivered uint64
	rejected  uint64
}

// NewHost builds the VMM with the given guests and starts the scheduler.
func NewHost(eng *sim.Engine, cfg Config, vms []*VM) *Host {
	if len(vms) == 0 {
		panic("vmm: need at least one VM")
	}
	if cfg.Timeslice <= 0 {
		panic("vmm: timeslice must be positive")
	}
	h := &Host{eng: eng, cfg: cfg, vms: vms}
	h.schedule(0)
	return h
}

// schedule gives VM i the CPU: a full timeslice when CPU-bound, an instant
// yield otherwise (idle guests don't burn their quantum).
func (h *Host) schedule(i int) {
	h.current = i
	vm := h.vms[i]
	dur := h.cfg.Timeslice
	if !vm.CPUBound {
		dur = h.cfg.DeliverCost
		if dur <= 0 {
			dur = time.Microsecond
		}
	}
	h.sliceEnd = h.eng.Now().Add(dur)
	// Deliver everything parked for this VM.
	for _, m := range vm.parked {
		m := m
		h.eng.After(h.cfg.DeliverCost, m.fn)
	}
	vm.parked = nil
	h.eng.After(dur, func() {
		h.schedule((i + 1) % len(h.vms))
	})
}

// Running reports the VM currently holding the CPU.
func (h *Host) Running() int { return h.current }

// TimeUntilRun predicts when VM id next holds the CPU: 0 if running now,
// otherwise the remaining slices ahead of it. This is exactly the
// information the VMM has and the guest OS does not — MittVMM's white-box
// signal.
func (h *Host) TimeUntilRun(id int) time.Duration {
	idx := h.indexOf(id)
	if idx < 0 {
		panic(fmt.Sprintf("vmm: unknown VM %d", id))
	}
	if idx == h.current {
		return 0
	}
	now := h.eng.Now()
	remaining := h.sliceEnd.Sub(now)
	if remaining < 0 {
		remaining = 0
	}
	ahead := idx - h.current
	if ahead < 0 {
		ahead += len(h.vms)
	}
	// Idle VMs between here and the target yield instantly.
	wait := remaining
	for k := 1; k < ahead; k++ {
		j := (h.current + k) % len(h.vms)
		if h.vms[j].CPUBound {
			wait += h.cfg.Timeslice
		}
	}
	return wait
}

func (h *Host) indexOf(id int) int {
	for i, vm := range h.vms {
		if vm.ID == id {
			return i
		}
	}
	return -1
}

// Stats returns delivered/rejected counters.
func (h *Host) Stats() (delivered, rejected uint64) { return h.delivered, h.rejected }

// Deliver hands a message to VM id with an optional deadline SLO. Without
// MittVMM semantics (deadline 0) the message parks until the VM runs — the
// tens-of-ms stall of §8.2. With a deadline, the VMM rejects instantly when
// the target VM must still sleep longer than the deadline.
func (h *Host) Deliver(id int, deadline time.Duration, onDone func(error)) {
	idx := h.indexOf(id)
	if idx < 0 {
		panic(fmt.Sprintf("vmm: unknown VM %d", id))
	}
	wait := h.TimeUntilRun(id)
	if deadline > 0 && wait > deadline {
		h.rejected++
		onDone(&core.BusyError{PredictedWait: wait})
		return
	}
	h.delivered++
	deliver := func() { onDone(nil) }
	if wait == 0 {
		h.eng.After(h.cfg.DeliverCost, deliver)
		return
	}
	h.vms[idx].parked = append(h.vms[idx].parked, parkedMsg{fn: deliver})
}
