package vmm

import (
	"errors"
	"testing"
	"time"

	"mittos/internal/core"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

func newHost(t *testing.T, n int, cpuBound ...int) (*sim.Engine, *Host) {
	t.Helper()
	eng := sim.NewEngine()
	vms := make([]*VM, n)
	for i := range vms {
		vms[i] = &VM{ID: i}
	}
	for _, i := range cpuBound {
		vms[i].CPUBound = true
	}
	return eng, NewHost(eng, DefaultConfig(), vms)
}

func TestDeliverToRunningVMIsFast(t *testing.T) {
	eng, h := newHost(t, 3, 0, 1, 2)
	var lat time.Duration
	start := eng.Now()
	h.Deliver(0, 0, func(err error) {
		if err != nil {
			t.Fatalf("deliver: %v", err)
		}
		lat = eng.Now().Sub(start)
	})
	eng.RunFor(time.Millisecond)
	if lat == 0 || lat > time.Millisecond {
		t.Fatalf("delivery to running VM took %v", lat)
	}
}

func TestParkedVMStallsWithoutDeadline(t *testing.T) {
	// §8.2: "user requests to a frozen VM will be parked in the VMM for
	// tens of ms".
	eng, h := newHost(t, 3, 0, 1, 2)
	var lat time.Duration
	start := eng.Now()
	h.Deliver(2, 0, func(error) { lat = eng.Now().Sub(start) })
	eng.RunFor(200 * time.Millisecond)
	// VM2 runs after VM0's and VM1's 30ms slices.
	if lat < 50*time.Millisecond || lat > 70*time.Millisecond {
		t.Fatalf("parked delivery took %v, want ≈60ms", lat)
	}
}

func TestMittVMMRejectsFrozenVM(t *testing.T) {
	eng, h := newHost(t, 3, 0, 1, 2)
	var err error
	h.Deliver(2, 20*time.Millisecond, func(e error) { err = e })
	eng.RunFor(time.Millisecond)
	if !core.IsBusy(err) {
		t.Fatalf("frozen-VM deliver: %v, want EBUSY", err)
	}
	be := err.(*core.BusyError)
	if be.PredictedWait < 50*time.Millisecond {
		t.Fatalf("wait hint %v, want ≈60ms", be.PredictedWait)
	}
	_, rejected := h.Stats()
	if rejected != 1 {
		t.Fatalf("rejected = %d", rejected)
	}
}

func TestMittVMMAcceptsWhenWaitFitsDeadline(t *testing.T) {
	eng, h := newHost(t, 3, 0, 1, 2)
	var err error = errors.New("unset")
	h.Deliver(1, 40*time.Millisecond, func(e error) { err = e })
	eng.RunFor(100 * time.Millisecond)
	if err != nil {
		t.Fatalf("deliver within deadline: %v", err)
	}
}

func TestIdleVMsYieldInstantly(t *testing.T) {
	// Only VM0 is CPU-bound; messages to idle VM2 should not wait behind
	// idle VM1's quantum.
	eng, h := newHost(t, 3, 0)
	var lat time.Duration
	start := eng.Now()
	h.Deliver(2, 0, func(error) { lat = eng.Now().Sub(start) })
	eng.RunFor(100 * time.Millisecond)
	if lat > 35*time.Millisecond {
		t.Fatalf("idle-chain delivery took %v; idle VMs must yield", lat)
	}
}

func TestMittVMMTailDistribution(t *testing.T) {
	// Probes to a random VM on a contended host: with deadlines + failover
	// to a replica VM on an idle host, the tail collapses.
	run := func(useDeadline bool) *stats.Sample {
		eng := sim.NewEngine()
		busyHost := NewHost(eng, DefaultConfig(), []*VM{
			{ID: 0, CPUBound: true}, {ID: 1, CPUBound: true}, {ID: 2, CPUBound: true},
		})
		idleHost := NewHost(eng, DefaultConfig(), []*VM{{ID: 0}})
		lat := stats.NewSample(0)
		rng := sim.NewRNG(9, "vm-probe")
		eng.NewTicker(5*time.Millisecond, func() {
			target := rng.Intn(3)
			start := eng.Now()
			deadline := time.Duration(0)
			if useDeadline {
				deadline = 10 * time.Millisecond
			}
			busyHost.Deliver(target, deadline, func(err error) {
				if core.IsBusy(err) {
					// Instant failover to the replica on the idle host.
					idleHost.Deliver(0, 0, func(error) {
						lat.Add(eng.Now().Sub(start))
					})
					return
				}
				lat.Add(eng.Now().Sub(start))
			})
		})
		eng.RunUntil(sim.Time(10 * sim.Second))
		return lat
	}
	base := run(false)
	mitt := run(true)
	if mitt.Percentile(95) >= base.Percentile(95) {
		t.Fatalf("MittVMM p95 %v not better than Base %v",
			mitt.Percentile(95), base.Percentile(95))
	}
	if base.Percentile(95) < 30*time.Millisecond {
		t.Fatalf("base p95 %v; VM parking not visible", base.Percentile(95))
	}
	// Accepted deliveries may wait up to the deadline; nothing should
	// exceed it by more than scheduling slop.
	if mitt.Percentile(99) > 11*time.Millisecond {
		t.Fatalf("MittVMM p99 %v exceeds the 10ms deadline", mitt.Percentile(99))
	}
}

func TestInvalidHostPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHost(sim.NewEngine(), DefaultConfig(), nil) },
		func() {
			NewHost(sim.NewEngine(), Config{Timeslice: 0}, []*VM{{ID: 0}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestUnknownVMPanics(t *testing.T) {
	eng, h := newHost(t, 2, 0, 1)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Deliver(99, 0, func(error) {})
}
