package cluster

import (
	"fmt"
	"time"

	"mittos/internal/sim"
)

// FaultAdapter maps the abstract fault timeline (faults.Injector) onto a
// concrete fleet: device knobs, node crash state, the shared network, and
// the Mitt* predictors. It satisfies faults.Injector without importing the
// package — the interface seam points the other way.
//
// Error-injection draws come from per-node RNG streams forked eagerly at
// construction, so enabling a fault never shifts any other stream's
// sequence: a schedule with rate 0 everywhere is byte-identical to no
// adapter at all.
type FaultAdapter struct {
	c    *Cluster
	rngs []*sim.RNG
}

// NewFaultAdapter builds an adapter for the cluster, forking one
// error-injection RNG stream per node from rng.
func NewFaultAdapter(c *Cluster, rng *sim.RNG) *FaultAdapter {
	a := &FaultAdapter{c: c, rngs: make([]*sim.RNG, len(c.Nodes))}
	for i := range c.Nodes {
		a.rngs[i] = rng.Fork(fmt.Sprintf("fault-node-%d", i))
	}
	return a
}

// each fans a per-node fault out to one node or (node == faults.AllNodes,
// i.e. any negative index) the whole fleet.
func (a *FaultAdapter) each(node int, fn func(i int, n *Node)) {
	if node >= 0 {
		fn(node, a.c.Nodes[node])
		return
	}
	for i, n := range a.c.Nodes {
		fn(i, n)
	}
}

// FailSlow scales node's device timing by factor (1 restores).
func (a *FaultAdapter) FailSlow(node int, factor float64) {
	a.each(node, func(_ int, n *Node) {
		if n.Disk != nil {
			n.Disk.SetDegradation(factor)
		}
		if n.SSD != nil {
			n.SSD.SetDegradation(factor)
		}
		if n.Cache != nil {
			n.Cache.SetDegradation(factor)
		}
	})
}

// SetIOErrorRate makes node's device fail IOs with EIO at rate (0 restores).
func (a *FaultAdapter) SetIOErrorRate(node int, rate float64) {
	a.each(node, func(i int, n *Node) {
		if n.Disk != nil {
			n.Disk.SetErrorInjection(rate, a.rngs[i])
		}
		if n.SSD != nil {
			n.SSD.SetErrorInjection(rate, a.rngs[i])
		}
	})
}

// Crash takes node down fail-stop; Revive brings it back.
func (a *FaultAdapter) Crash(node int)  { a.each(node, func(_ int, n *Node) { n.Crash() }) }
func (a *FaultAdapter) Revive(node int) { a.each(node, func(_ int, n *Node) { n.Revive() }) }

// NetDegrade adds per-hop latency/jitter fleet-wide; NetRestore heals.
func (a *FaultAdapter) NetDegrade(extraLatency, extraJitter time.Duration) {
	a.c.Net.SetDegradation(extraLatency, extraJitter)
}
func (a *FaultAdapter) NetRestore() { a.c.Net.ClearDegradation() }

// Miscalibrate distorts node's Mitt* wait predictions to wait×scale + bias
// ((0,0) restores). Layers built without Mitt are unaffected.
func (a *FaultAdapter) Miscalibrate(node int, bias time.Duration, scale float64) {
	a.each(node, func(_ int, n *Node) {
		if n.MittNoop != nil {
			n.MittNoop.SetMiscalibration(bias, scale)
		}
		if n.MittCFQ != nil {
			n.MittCFQ.SetMiscalibration(bias, scale)
		}
		if n.MittSSD != nil {
			n.MittSSD.SetMiscalibration(bias, scale)
		}
		if n.MittCache != nil {
			n.MittCache.SetMiscalibration(bias, scale)
		}
	})
}

// CachePressure evicts frac of node's OS cache, once.
func (a *FaultAdapter) CachePressure(node int, frac float64) {
	a.each(node, func(i int, n *Node) {
		if n.Cache != nil {
			n.Cache.EvictFraction(frac, a.rngs[i])
		}
	})
}
