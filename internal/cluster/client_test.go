package cluster

import (
	"errors"
	"testing"
	"time"

	"mittos/internal/sim"
	"mittos/internal/ycsb"
)

// fakeStrategy completes every get after a fixed delay (and, optionally,
// stalls one specific request) — a pure client-loop harness with no cluster
// underneath.
type fakeStrategy struct {
	eng   *sim.Engine
	delay time.Duration
	err   error
	// stallAt, when > 0, makes the stallAt'th call take stall instead of
	// delay — the injected hiccup the CO-correction tests need.
	stallAt int
	stall   time.Duration
	calls   int
}

func (f *fakeStrategy) Name() string { return "fake" }

func (f *fakeStrategy) Get(key int64, onDone func(GetResult)) {
	f.calls++
	d := f.delay
	if f.stallAt > 0 && f.calls == f.stallAt {
		d = f.stall
	}
	err := f.err
	f.eng.After(d, func() { onDone(GetResult{Latency: d, Tries: 1, Err: err}) })
}

// countingPut counts puts without ever completing more than trivially.
type countingPut struct {
	eng   *sim.Engine
	calls int
}

func (p *countingPut) Name() string { return "counting" }

func (p *countingPut) Put(key int64, onDone func(PutResult)) {
	p.calls++
	p.eng.After(time.Millisecond, func() { onDone(PutResult{Latency: time.Millisecond, Acks: 3}) })
}

func newLoopClient(eng *sim.Engine, cfg ClientConfig, strat Strategy, salt string) *Client {
	wl := ycsb.New(ycsb.DefaultConfig(1000), sim.NewRNG(7, salt+"-wl"))
	return NewClient(eng, cfg, strat, wl, sim.NewRNG(7, salt+"-cl"))
}

// TestPoissonArrivalsMeanAndDeterminism drives an open-loop Poisson client
// for a long window and checks the realized rate against 1/Interval, then
// replays the same seed and requires identical issue counts and latencies.
func TestPoissonArrivalsMeanAndDeterminism(t *testing.T) {
	run := func() (int, time.Duration) {
		eng := sim.NewEngine()
		strat := &fakeStrategy{eng: eng, delay: time.Millisecond}
		cfg := ClientConfig{Interval: 10 * time.Millisecond, Arrival: ArrivalPoisson, ScaleFactor: 1}
		cl := newLoopClient(eng, cfg, strat, "poisson")
		cl.Start()
		eng.RunFor(100 * time.Second)
		cl.Stop()
		eng.RunFor(time.Second)
		return cl.Issued(), cl.UserLatencies.Percentile(99)
	}
	issued, p99 := run()
	// 100s / 10ms mean gap = 10000 expected arrivals; a Poisson count's
	// stddev is √10000 = 100, so ±5% is a fifty-sigma safety margin against
	// bias while still catching a wrong mean (e.g. 2× or half).
	if issued < 9500 || issued > 10500 {
		t.Fatalf("Poisson client issued %d requests in 100s at 10ms mean; want ~10000", issued)
	}
	issued2, p992 := run()
	if issued != issued2 || p99 != p992 {
		t.Fatalf("same seed, different run: issued %d vs %d, p99 %v vs %v",
			issued, issued2, p99, p992)
	}
}

// recordingStrategy logs each get's issue instant — the probe the gap-
// distribution test watches arrivals through.
type recordingStrategy struct {
	eng   *sim.Engine
	times []sim.Time
}

func (r *recordingStrategy) Name() string { return "recording" }

func (r *recordingStrategy) Get(key int64, onDone func(GetResult)) {
	r.times = append(r.times, r.eng.Now())
	r.eng.After(time.Microsecond, func() { onDone(GetResult{Latency: time.Microsecond, Tries: 1}) })
}

// TestPoissonGapsVary guards against the degenerate "fixed interval
// relabeled Poisson" failure: the inter-arrival gaps must actually spread.
func TestPoissonGapsVary(t *testing.T) {
	eng := sim.NewEngine()
	strat := &recordingStrategy{eng: eng}
	cfg := ClientConfig{Interval: 10 * time.Millisecond, Arrival: ArrivalPoisson, ScaleFactor: 1}
	cl := newLoopClient(eng, cfg, strat, "gaps")
	cl.Start()
	eng.RunFor(10 * time.Second)
	cl.Stop()
	eng.RunFor(time.Second)
	gaps := map[time.Duration]bool{}
	for i := 1; i < len(strat.times); i++ {
		gaps[strat.times[i].Sub(strat.times[i-1])] = true
	}
	if len(gaps) < len(strat.times)/2 {
		t.Fatalf("%d arrivals produced only %d distinct gaps; exponential draws should almost never repeat",
			len(strat.times), len(gaps))
	}
}

// TestCOCorrectedSampleDivergesUnderStall pins the HdrHistogram-style
// correction: a closed-loop client stalled for 50 intervals must show the
// hidden wait in UserLatenciesCO while raw UserLatencies stays blind to it.
func TestCOCorrectedSampleDivergesUnderStall(t *testing.T) {
	eng := sim.NewEngine()
	interval := 10 * time.Millisecond
	strat := &fakeStrategy{eng: eng, delay: time.Millisecond, stallAt: 10, stall: 500 * time.Millisecond}
	cfg := ClientConfig{Interval: interval, Closed: true, CORecord: true, ScaleFactor: 1}
	cl := newLoopClient(eng, cfg, strat, "co")
	cl.Start()
	eng.RunFor(2 * time.Second)
	cl.Stop()
	eng.RunFor(time.Second)

	raw, co := cl.UserLatencies, cl.UserLatenciesCO
	if co == nil {
		t.Fatal("CORecord set but UserLatenciesCO is nil")
	}
	// The 500ms stall hides ~49 omitted issues behind one slow request;
	// the corrected sample must contain synthetic stand-ins for them.
	want := raw.N() + int(500*time.Millisecond/interval) - 1
	if co.N() < want-2 || co.N() > want+2 {
		t.Fatalf("CO sample has %d observations, raw %d; want raw+~49 = ~%d",
			co.N(), raw.N(), want)
	}
	// The synthetic samples drag the upper percentiles far above raw: the
	// raw p90 is the 1ms service time, while the corrected p90 sees the
	// decaying 490ms, 480ms, … ladder.
	if co.FractionAbove(100*time.Millisecond) <= raw.FractionAbove(100*time.Millisecond) {
		t.Fatalf("CO correction did not surface the stall: co frac>100ms = %v, raw = %v",
			co.FractionAbove(100*time.Millisecond), raw.FractionAbove(100*time.Millisecond))
	}
	if co.Max() != raw.Max() {
		t.Fatalf("correction must not invent a worse max: co %v, raw %v", co.Max(), raw.Max())
	}
}

// TestOpenLoopIgnoresCORecord pins that the twin sample is a closed-loop
// construct: open-loop latencies are CO-free already.
func TestOpenLoopIgnoresCORecord(t *testing.T) {
	eng := sim.NewEngine()
	strat := &fakeStrategy{eng: eng, delay: time.Millisecond}
	cfg := ClientConfig{Interval: 10 * time.Millisecond, CORecord: true, ScaleFactor: 1}
	cl := newLoopClient(eng, cfg, strat, "openco")
	if cl.UserLatenciesCO != nil {
		t.Fatal("open-loop client built a CO twin sample")
	}
}

// TestRMWFailedGetShortCircuits pins the workload-F chain bugfix: a failed
// read leg must fail the user op without issuing the follow-up put.
func TestRMWFailedGetShortCircuits(t *testing.T) {
	eng := sim.NewEngine()
	strat := &fakeStrategy{eng: eng, delay: time.Millisecond, err: errors.New("all replicas busy")}
	ps := &countingPut{eng: eng}
	wcfg := ycsb.DefaultConfig(1000)
	wcfg.ReadFraction = 0 // every op is a write → every op is an RMW chain
	wcfg.InsertFraction = 0
	wl := ycsb.New(wcfg, sim.NewRNG(7, "rmw-wl"))
	cfg := ClientConfig{Interval: 10 * time.Millisecond, ScaleFactor: 1}
	cl := NewClient(eng, cfg, strat, wl, sim.NewRNG(7, "rmw-cl"))
	cl.SetPutStrategy(ps, true)
	cl.Start()
	eng.RunFor(time.Second)
	cl.Stop()
	eng.RunFor(time.Second)

	if cl.Finished() == 0 {
		t.Fatal("client never finished a request")
	}
	if ps.calls != 0 {
		t.Fatalf("failed RMW gets issued %d follow-up puts; want 0", ps.calls)
	}
	if cl.Errors() != cl.Finished() {
		t.Fatalf("every RMW should fail: %d errors of %d finished", cl.Errors(), cl.Finished())
	}
	if cl.PutLatencies.N() != 0 {
		t.Fatalf("recorded %d bogus put latencies for failed gets", cl.PutLatencies.N())
	}
}

// TestRMWSuccessfulGetStillChains is the control for the short-circuit: a
// healthy read leg must still issue the put and complete cleanly.
func TestRMWSuccessfulGetStillChains(t *testing.T) {
	eng := sim.NewEngine()
	strat := &fakeStrategy{eng: eng, delay: time.Millisecond}
	ps := &countingPut{eng: eng}
	wcfg := ycsb.DefaultConfig(1000)
	wcfg.ReadFraction = 0
	wcfg.InsertFraction = 0
	wl := ycsb.New(wcfg, sim.NewRNG(7, "rmwok-wl"))
	cfg := ClientConfig{Interval: 10 * time.Millisecond, ScaleFactor: 1}
	cl := NewClient(eng, cfg, strat, wl, sim.NewRNG(7, "rmwok-cl"))
	cl.SetPutStrategy(ps, true)
	cl.Start()
	eng.RunFor(time.Second)
	cl.Stop()
	eng.RunFor(time.Second)

	if cl.Finished() == 0 || cl.Errors() != 0 {
		t.Fatalf("healthy RMW chain: %d finished, %d errors", cl.Finished(), cl.Errors())
	}
	if ps.calls != cl.Finished() {
		t.Fatalf("%d puts for %d finished RMWs", ps.calls, cl.Finished())
	}
	if cl.PutLatencies.N() != cl.Finished() {
		t.Fatalf("recorded %d put latencies for %d RMWs", cl.PutLatencies.N(), cl.Finished())
	}
}

// TestClosedLoopRequestsCap pins Requests-cap accounting in closed loop:
// exactly the cap is issued and finished, no trailing tick.
func TestClosedLoopRequestsCap(t *testing.T) {
	eng := sim.NewEngine()
	strat := &fakeStrategy{eng: eng, delay: time.Millisecond}
	cfg := ClientConfig{Interval: 5 * time.Millisecond, Closed: true, Requests: 7, ScaleFactor: 1}
	cl := newLoopClient(eng, cfg, strat, "cap")
	cl.Start()
	eng.RunFor(10 * time.Second)
	if cl.Issued() != 7 || cl.Finished() != 7 {
		t.Fatalf("Requests=7 closed loop issued %d, finished %d; want 7/7", cl.Issued(), cl.Finished())
	}
	if strat.calls != 7 {
		t.Fatalf("strategy saw %d gets; want 7", strat.calls)
	}
}

// TestJitterFracValidated pins the NewClient guard: out-of-range jitter
// fractions used to silently produce zero or negative gaps.
func TestJitterFracValidated(t *testing.T) {
	for _, frac := range []float64{-0.1, 1.01, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("JitterFrac=%v: expected panic", frac)
				}
			}()
			eng := sim.NewEngine()
			cfg := ClientConfig{Interval: time.Millisecond, JitterFrac: frac}
			newLoopClient(eng, cfg, &fakeStrategy{eng: eng}, "jitter")
		}()
	}
}

// TestFullJitterKeepsGapsPositive drives the boundary case the clamp
// exists for: JitterFrac = 1 can draw a zero gap, which must be floored
// rather than re-firing the tick at the same instant forever.
func TestFullJitterKeepsGapsPositive(t *testing.T) {
	eng := sim.NewEngine()
	strat := &fakeStrategy{eng: eng, delay: time.Microsecond}
	cfg := ClientConfig{Interval: time.Millisecond, JitterFrac: 1, ScaleFactor: 1}
	cl := newLoopClient(eng, cfg, strat, "fulljitter")
	cl.Start()
	eng.RunFor(time.Second)
	cl.Stop()
	eng.RunFor(time.Second)
	// Mean gap stays Interval under symmetric jitter: ~1000 issues in 1s.
	if cl.Issued() < 500 || cl.Issued() > 2000 {
		t.Fatalf("full-jitter client issued %d in 1s at 1ms mean; want ~1000", cl.Issued())
	}
}

// TestInflightGaugeHighWaterMark pins the shared gauge: a slow strategy
// under a fast open loop accumulates in-flight requests, and completions
// drain the current count back to zero.
func TestInflightGaugeHighWaterMark(t *testing.T) {
	eng := sim.NewEngine()
	strat := &fakeStrategy{eng: eng, delay: 50 * time.Millisecond}
	g := &InflightGauge{}
	cfg := ClientConfig{Interval: 10 * time.Millisecond, ScaleFactor: 1, Inflight: g}
	cl := newLoopClient(eng, cfg, strat, "gauge")
	cl.Start()
	eng.RunFor(time.Second)
	cl.Stop()
	eng.RunFor(time.Second)
	if g.Max < 4 {
		t.Fatalf("5× service/interval ratio should stack ~5 in flight; max = %d", g.Max)
	}
	if g.Cur != 0 {
		t.Fatalf("all requests drained but gauge still reads %d", g.Cur)
	}
}

// TestSLOAttainmentCounters pins the client-side verdict split around a
// known latency: every request takes exactly delay, so the counts are
// all-or-nothing on either side of the SLO.
func TestSLOAttainmentCounters(t *testing.T) {
	run := func(slo time.Duration) (met, missed int) {
		eng := sim.NewEngine()
		strat := &fakeStrategy{eng: eng, delay: 2 * time.Millisecond}
		cfg := ClientConfig{Interval: 10 * time.Millisecond, ScaleFactor: 1, SLO: slo}
		cl := newLoopClient(eng, cfg, strat, "slo")
		cl.Start()
		eng.RunFor(time.Second)
		cl.Stop()
		eng.RunFor(time.Second)
		return cl.SLOMet(), cl.SLOMissed()
	}
	met, missed := run(5 * time.Millisecond)
	if met == 0 || missed != 0 {
		t.Fatalf("2ms latencies under a 5ms SLO: met %d, missed %d", met, missed)
	}
	met, missed = run(time.Millisecond)
	if met != 0 || missed == 0 {
		t.Fatalf("2ms latencies under a 1ms SLO: met %d, missed %d", met, missed)
	}
}
