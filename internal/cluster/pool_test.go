package cluster

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/noise"
	"mittos/internal/sim"
)

// TestServeReuseAfterCancel exercises the request pool's revocation path:
// cancel a queued serve, then keep issuing gets through the same node. A
// double release or a use-after-recycle panics (generation guard) or
// corrupts a later get's result.
func TestServeReuseAfterCancel(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	n := c.Nodes[0]

	// Queue depth so cancels land while requests still sit in the
	// scheduler (a busy spindle keeps the queue non-empty).
	st := noise.NewSteady(c.Eng, n.NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 10, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(50 * time.Millisecond)

	canceled, completed := 0, 0
	for i := 0; i < 50; i++ {
		key := int64(i % 100)
		if i%2 == 0 {
			h := n.ServeGetCancelable(key, 0, func(err error) {
				if err == nil {
					completed++
				}
			})
			// Cancel immediately: the IO is still queued behind the noise.
			h.Cancel()
			h.Done()
			canceled++
			// Cancel again after release: the generation guard must make
			// this a no-op rather than revoking a recycled request.
			h.Cancel()
		} else {
			n.ServeGet(key, 0, func(err error) {
				if err == nil {
					completed++
				}
			})
		}
		c.Eng.RunFor(5 * time.Millisecond)
	}
	st.Stop()
	c.Eng.RunFor(10 * time.Second)

	// Every non-canceled get must complete; canceled ones may or may not,
	// depending on whether the cancel beat dispatch.
	if completed < 25 {
		t.Fatalf("completed %d gets, want at least the 25 uncanceled ones", completed)
	}
	_ = canceled
}

// TestTiedRevokeThenComplete drives the tied-request protocol until losers
// are being revoked while winners complete, then verifies the node still
// serves correctly — i.e. the revoked terminal released each pooled
// request exactly once and recycling did not corrupt later IOs.
func TestTiedRevokeThenComplete(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	busy := c.ReplicasFor(0)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[busy].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 10, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)

	s := &TiedStrategy{C: c, RNG: sim.NewRNG(3, "tied"), Delay: time.Millisecond}
	done := 0
	for i := 0; i < 30; i++ {
		s.Get(0, func(r GetResult) {
			if r.Err != nil {
				t.Fatalf("tied get failed: %v", r.Err)
			}
			done++
		})
		c.Eng.RunFor(50 * time.Millisecond)
	}
	st.Stop()
	c.Eng.RunFor(5 * time.Second)

	if done != 30 {
		t.Fatalf("completed %d of 30 tied gets", done)
	}
	if s.Cancelled == 0 {
		t.Fatal("no sibling revocations happened; the revoke-then-complete path was not exercised")
	}

	// The pool must still be coherent: a fresh burst of plain gets on the
	// previously-busy node completes cleanly on recycled requests.
	after := 0
	for i := 0; i < 20; i++ {
		c.Nodes[busy].ServeGet(int64(i), 0, func(err error) {
			if err == nil {
				after++
			}
		})
	}
	c.Eng.RunFor(5 * time.Second)
	if after != 20 {
		t.Fatalf("post-revocation gets completed %d of 20", after)
	}
}
