package cluster

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/noise"
	"mittos/internal/sim"
	"mittos/internal/ycsb"
)

func TestC3AvoidsBusyReplicaAfterFeedback(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	busy := c.ReplicasFor(0)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[busy].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 8, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)
	s := &C3Strategy{C: c}
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i == 0 {
			return
		}
		s.Get(0, func(GetResult) {
			done++
			issue(i - 1)
		})
	}
	issue(40)
	c.Eng.RunFor(20 * time.Second)
	st.Stop()
	c.Eng.RunFor(5 * time.Second)
	if done != 40 {
		t.Fatalf("completed %d of 40", done)
	}
	// After warmup, the cubic queue penalty must steer most requests away
	// from the saturated replica.
	if c.Nodes[busy].Served() > 20 {
		t.Fatalf("C3 sent %d/40 to the saturated replica", c.Nodes[busy].Served())
	}
}

func TestC3StaleFeedbackMissesShortBurst(t *testing.T) {
	// The §7.8.3 failure mode in isolation: C3's estimate of a replica is
	// as old as its last response, so a request landing right at burst
	// onset pays the full price.
	c := newTestCluster(t, 3, false, 10000)
	s := &C3Strategy{C: c}
	// Warm up estimates with all replicas idle.
	warm := 0
	var issue func(i int)
	issue = func(i int) {
		if i == 0 {
			return
		}
		s.Get(0, func(GetResult) { warm++; issue(i - 1) })
	}
	issue(9)
	c.Eng.RunFor(2 * time.Second)
	// Now a burst starts on whichever replica C3 currently prefers; its
	// next request cannot know.
	var preferred int
	bestServed := uint64(0)
	for i, n := range c.Nodes {
		if n.Served() >= bestServed {
			bestServed, preferred = n.Served(), i
		}
	}
	st := noise.NewSteady(c.Eng, c.Nodes[preferred].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 8, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(50 * time.Millisecond)
	var lat time.Duration
	start := c.Eng.Now()
	s.Get(0, func(GetResult) { lat = c.Eng.Now().Sub(start) })
	c.Eng.RunFor(5 * time.Second)
	st.Stop()
	c.Eng.RunFor(5 * time.Second)
	if lat < 20*time.Millisecond {
		t.Skipf("C3 got lucky (%v); replica choice dodged the burst", lat)
	}
	// The point: latencies like this are what MittOS's EBUSY avoids.
}

func TestSnitchExploresUnknownReplicas(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	s := &SnitchStrategy{C: c}
	seen := map[int]bool{}
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i == 0 {
			return
		}
		s.Get(0, func(GetResult) {
			done++
			issue(i - 1)
		})
	}
	issue(9)
	c.Eng.Run()
	for i, n := range c.Nodes {
		if n.Served() > 0 {
			seen[i] = true
		}
	}
	if len(seen) < 3 {
		t.Fatalf("snitch explored %d replicas, want all 3", len(seen))
	}
}

func TestClientErrorsCounted(t *testing.T) {
	// A strategy that errors must surface in the client's error counter.
	c := newTestCluster(t, 3, false, 100)
	cfg := DefaultClientConfig()
	cfg.Requests = 5
	wlKeys := int64(100)
	strat := &failingStrategy{}
	cl := NewClient(c.Eng, cfg, strat, newWorkload(wlKeys), sim.NewRNG(1, "cl"))
	cl.Start()
	c.Eng.Run()
	if cl.Errors() != 5 {
		t.Fatalf("errors = %d, want 5", cl.Errors())
	}
}

type failingStrategy struct{}

func (f *failingStrategy) Name() string { return "fail" }
func (f *failingStrategy) Get(key int64, onDone func(GetResult)) {
	onDone(GetResult{Err: blockio.ErrBusy})
}

func TestClientClosedLoopSelfLimits(t *testing.T) {
	// In closed-loop mode the client never has more than one user request
	// outstanding, no matter how slow the cluster is.
	c := newTestCluster(t, 3, false, 10000)
	st := noise.NewSteady(c.Eng, c.Nodes[0].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 8, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	cfg := DefaultClientConfig()
	cfg.Closed = true
	cfg.Interval = time.Millisecond
	cl := NewClient(c.Eng, cfg, &BaseStrategy{C: c}, newWorkload(10000), sim.NewRNG(2, "cl"))
	cl.Start()
	c.Eng.RunFor(2 * time.Second)
	cl.Stop()
	st.Stop()
	c.Eng.RunFor(5 * time.Second)
	if cl.Issued()-cl.Finished() > 1 {
		t.Fatalf("closed loop had %d outstanding", cl.Issued()-cl.Finished())
	}
	if cl.Finished() == 0 {
		t.Fatal("closed loop made no progress")
	}
}

func TestClientInvalidIntervalPanics(t *testing.T) {
	c := newTestCluster(t, 3, false, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClient(c.Eng, ClientConfig{Interval: 0}, &BaseStrategy{C: c},
		newWorkload(100), sim.NewRNG(1, "cl"))
}

// newWorkload builds a uniform read-only YCSB workload for tests.
func newWorkload(keys int64) *ycsb.Workload {
	return ycsb.New(ycsb.DefaultConfig(keys), sim.NewRNG(77, "test-wl"))
}
