package cluster

import (
	"time"

	"mittos/internal/core"
)

// ConsistentMittOSStrategy is the §8.3 discussion implemented: "MittOS
// encourages fast failover, however many NoSQL systems ... attempt to
// minimize replica switching to ensure monotonic reads. MittOS-powered
// NoSQL can be made more conservative about switching replicas that may
// lead to inconsistencies (e.g., do not failover until the other replicas
// are no longer stale)."
//
// The client tracks the highest version it has observed per key (a session
// token, as in MongoDB's causal sessions). On EBUSY it fails over only to
// replicas whose applied version is at least the session's; if every
// alternative is stale, it waits out the busy primary rather than violate
// monotonic reads — trading tail latency for the consistency guarantee,
// which is exactly the tension §8.3 describes.
type ConsistentMittOSStrategy struct {
	C        *Cluster
	Deadline time.Duration

	// session holds the highest version read per key.
	session map[int64]uint64

	Failovers     uint64
	StaleSkips    uint64 // replicas skipped for staleness
	ForcedToWait  uint64 // requests that had to wait on the busy replica
	monotonicFail uint64 // would-be violations avoided (diagnostics)
}

// Name implements Strategy.
func (s *ConsistentMittOSStrategy) Name() string { return "MittOS-consistent" }

// Get implements Strategy.
func (s *ConsistentMittOSStrategy) Get(key int64, onDone func(GetResult)) {
	if s.session == nil {
		s.session = make(map[int64]uint64)
	}
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	minVersion := s.session[key]

	finish := func(tries int, err error) {
		// Advance the session to what we just (implicitly) read.
		onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: tries, Err: err})
	}

	var attempt func(i, tries int)
	attempt = func(i, tries int) {
		deadline := s.Deadline
		if i == len(replicas)-1 {
			deadline = 0
		}
		node := s.C.Nodes[replicas[i]]
		replicaCall(s.C, replicas[i], key, deadline, func(err error) {
			if err != nil && core.IsBusy(err) {
				s.Failovers++
				// Find the next replica that is fresh enough.
				for j := i + 1; j < len(replicas); j++ {
					cand := s.C.Nodes[replicas[j]]
					if cand.KeyVersion(key) >= minVersion {
						attempt(j, tries+1)
						return
					}
					s.StaleSkips++
				}
				// No fresh alternative: wait out the busy replica rather
				// than serve a stale read (§8.3's conservative choice).
				s.ForcedToWait++
				s.monotonicFail++
				replicaCall(s.C, replicas[i], key, 0, func(err2 error) {
					s.recordVersion(key, node)
					finish(tries+1, err2)
				})
				return
			}
			s.recordVersion(key, node)
			finish(tries, err)
		})
	}
	attempt(0, 1)
}

func (s *ConsistentMittOSStrategy) recordVersion(key int64, n *Node) {
	if v := n.KeyVersion(key); v > s.session[key] {
		s.session[key] = v
	}
}
