package cluster

import (
	"errors"
	"time"

	"mittos/internal/core"
	"mittos/internal/sim"
)

// ErrQuorumFailed reports a replicated put that could not assemble W acks:
// every base copy, replacement, and last-ditch retry either refused or
// failed. The write may still be partially durable on the acking minority.
var ErrQuorumFailed = errors.New("cluster: write quorum failed")

// PutResult reports one finished user-level replicated put.
type PutResult struct {
	Latency time.Duration
	// Acks is how many replicas had acknowledged when the verdict fired.
	Acks int
	// Copies is how many copies the strategy had sent by then (base
	// replicas plus replacements/hedges/failovers).
	Copies int
	// Err is non-nil only when the quorum failed (ErrQuorumFailed).
	Err error
}

// PutStrategy issues one client put against the cluster and reports the
// user-observed quorum verdict — the write-side mirror of Strategy.
type PutStrategy interface {
	Name() string
	Put(key int64, onDone func(PutResult))
}

// quorumVerdict is a quorumState transition.
type quorumVerdict int

// Verdicts returned by quorumState.report.
const (
	quorumPending quorumVerdict = iota // no terminal yet
	quorumReached                      // this reply delivered the Wth ack
	quorumLate                         // reply after the terminal verdict
)

// quorumState is the W-of-N ack assembly for one replicated put: copies go
// out via add, replies come back via report, and exactly one terminal is
// reached — quorumReached from the Wth ack, or the strategy calling fail
// once it is out of copies to send. Every copy targets a distinct node, so
// ack counting needs no per-node dedup. The type is deliberately free of
// cluster plumbing: the FuzzQuorumPut harness drives it directly against a
// reference model.
type quorumState struct {
	w      int
	copies int // copies sent
	acks   int
	busy   int
	down   int
	errs   int
	done   bool
}

// add records n more copies sent.
func (q *quorumState) add(n int) { q.copies += n }

// pending reports copies still awaiting a reply.
func (q *quorumState) pending() int { return q.copies - q.acks - q.busy - q.down - q.errs }

// report classifies one replica reply. Replies keep being tallied after the
// terminal (the late arrivals the wasted-write accounting inspects), so
// after a full drain acks+busy+down+errs == copies always holds.
func (q *quorumState) report(err error) quorumVerdict {
	late := q.done
	switch {
	case err == nil:
		q.acks++
	case core.IsBusy(err):
		q.busy++
	case errors.Is(err, ErrNodeDown):
		q.down++
	default:
		q.errs++
	}
	if late {
		return quorumLate
	}
	if err == nil && q.acks >= q.w {
		q.done = true
		return quorumReached
	}
	return quorumPending
}

// fail marks the failure terminal: the strategy has no copies left to send
// and the outstanding set cannot reach W.
func (q *quorumState) fail() { q.done = true }

// PutCounters is the shared per-strategy accounting, embedded in every put
// strategy. Every reply is counted — including late ones — so after the
// cluster drains, CopiesSent == Acks+Busy+NodeDown+Errors and
// Puts == Quorums+Failed.
type PutCounters struct {
	Puts       uint64 // user-level puts issued
	CopiesSent uint64 // replica copies sent (base + extras)
	Acks       uint64
	Busy       uint64 // EBUSY fast rejections
	NodeDown   uint64 // crashed-replica refusals
	Errors     uint64 // WAL write failures (EIO)
	Quorums    uint64 // puts that assembled W acks
	Failed     uint64 // puts that exhausted every option short of W
	// WastedWrites counts executed acks/errors from EXTRA copies (timeout
	// replacements, hedges, MittOS failovers) that landed after the put's
	// terminal verdict — durable work the client never waited for. Base
	// replica copies are replication, never waste.
	WastedWrites uint64
}

func (pc *PutCounters) count(err error) {
	switch {
	case err == nil:
		pc.Acks++
	case core.IsBusy(err):
		pc.Busy++
	case errors.Is(err, ErrNodeDown):
		pc.NodeDown++
	default:
		pc.Errors++
	}
}

// quorumW resolves a strategy's W knob: 0 means a majority of the
// replication factor (W = R/2+1, the Riak/Cassandra QUORUM default).
func quorumW(c *Cluster, w int) int {
	if w > 0 {
		return w
	}
	return c.R/2 + 1
}

// putTerminalObserve feeds the client-visible quorum-assembly latency into
// the key's primary-replica span histograms (the put path's quorum stage).
func putTerminalObserve(c *Cluster, primary int, lat time.Duration) {
	c.Nodes[primary].ObservePutQuorum(lat)
}

// BasePut is vanilla quorum replication: send one copy to each of the key's
// R replicas with no SLO, ack the user at the Wth reply, wait out stragglers
// silently. The straggler tail IS the user tail whenever W replies include a
// contended replica.
type BasePut struct {
	C *Cluster
	// W is the ack quorum; 0 means majority (R/2+1).
	W int

	PutCounters
}

// Name implements PutStrategy.
func (s *BasePut) Name() string { return "Base" }

// Put implements PutStrategy.
func (s *BasePut) Put(key int64, onDone func(PutResult)) {
	s.Puts++
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	q := &quorumState{w: quorumW(s.C, s.W)}
	q.add(len(replicas))
	s.CopiesSent += uint64(len(replicas))
	reply := func(err error) {
		s.count(err)
		switch q.report(err) {
		case quorumReached:
			s.Quorums++
			lat := s.C.Eng.Now().Sub(start)
			putTerminalObserve(s.C, replicas[0], lat)
			onDone(PutResult{Latency: lat, Acks: q.acks, Copies: q.copies})
		case quorumPending:
			if q.pending() == 0 {
				// Everything replied and we are short of W: no extras in
				// this strategy, so the put fails.
				q.fail()
				s.Failed++
				onDone(PutResult{Latency: s.C.Eng.Now().Sub(start),
					Acks: q.acks, Copies: q.copies, Err: ErrQuorumFailed})
			}
		}
	}
	for _, r := range replicas {
		s.C.PutDurableCall(r, key, 0, reply)
	}
}

// ringCandidates walks the consistent-hash ring past the key's replica set,
// handing out each remaining node index once — the Dynamo-style sloppy-
// quorum handoff targets replacements, hedges, and failovers write to.
type ringCandidates struct {
	c    *Cluster
	base int // the key's primary replica
	next int // next ring offset to hand out (starts past the replica set)
}

func newRingCandidates(c *Cluster, primary int) ringCandidates {
	return ringCandidates{c: c, base: primary, next: c.R}
}

// take returns the next unused live node on the ring, or -1 when the ring is
// exhausted. Crashed nodes are skipped (a handoff to a dead node is an RTT
// spent on a refusal).
func (rc *ringCandidates) take() int {
	for rc.next < len(rc.c.Nodes) {
		n := (rc.base + rc.next) % len(rc.c.Nodes)
		rc.next++
		if !rc.c.Nodes[n].Down() {
			return n
		}
	}
	return -1
}

// TimeoutPut is the "AppTO" write: quorum-replicate with no SLO and, after a
// conservative timeout, hand the still-missing acks off to the next nodes on
// the ring (there is nothing to cancel — the stragglers' WAL appends are
// group-committed and will land regardless, which is exactly why their late
// acks show up as wasted writes). A crashed replica's refusal triggers the
// handoff immediately instead of burning the timeout.
type TimeoutPut struct {
	C  *Cluster
	TO time.Duration
	// W is the ack quorum; 0 means majority (R/2+1).
	W int

	PutCounters
	Retries uint64
}

// Name implements PutStrategy.
func (s *TimeoutPut) Name() string { return "AppTO" }

// Put implements PutStrategy.
func (s *TimeoutPut) Put(key int64, onDone func(PutResult)) {
	s.Puts++
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	q := &quorumState{w: quorumW(s.C, s.W)}
	cands := newRingCandidates(s.C, replicas[0])
	var timer *sim.Event
	var send func(node int, extra bool)
	terminal := func(err error) {
		if timer != nil {
			timer.Cancel()
		}
		lat := s.C.Eng.Now().Sub(start)
		if err == nil {
			s.Quorums++
			putTerminalObserve(s.C, replicas[0], lat)
		} else {
			s.Failed++
		}
		onDone(PutResult{Latency: lat, Acks: q.acks, Copies: q.copies, Err: err})
	}
	reply := func(extra bool, err error) {
		s.count(err)
		switch q.report(err) {
		case quorumReached:
			terminal(nil)
		case quorumLate:
			if extra && wasted(err) {
				s.WastedWrites++ // the handoff copy landed after the verdict
			}
		case quorumPending:
			if errors.Is(err, ErrNodeDown) {
				// Crashed replica: its refusal came back in one RTT; hand
				// off now rather than waiting out TO.
				if n := cands.take(); n >= 0 {
					s.Retries++
					send(n, true)
					return
				}
			}
			if q.pending() == 0 {
				q.fail()
				terminal(ErrQuorumFailed)
			}
		}
	}
	send = func(node int, extra bool) {
		q.add(1)
		s.CopiesSent++
		s.C.PutDurableCall(node, key, 0, func(err error) { reply(extra, err) })
	}
	timer = s.C.Eng.Schedule(s.TO, func() {
		if q.done {
			return
		}
		// Hand the missing acks off to the ring; the abandoned stragglers
		// keep running (no revocation on the write path).
		need := q.w - q.acks
		sent := false
		for i := 0; i < need; i++ {
			n := cands.take()
			if n < 0 {
				break
			}
			sent = true
			send(n, true)
		}
		if sent {
			s.Retries++
		}
	})
	for _, r := range replicas {
		send(r, false)
	}
}

// HedgedPut is the Dean & Barroso hedge applied to writes: quorum-replicate
// with no SLO and, once the put has been outstanding past the expected p95,
// proactively duplicate the missing acks onto the next ring nodes. The
// losing copies are pure write amplification (WastedWrites); a crashed
// replica's refusal hedges immediately.
type HedgedPut struct {
	C          *Cluster
	HedgeAfter time.Duration
	// W is the ack quorum; 0 means majority (R/2+1).
	W int

	PutCounters
	Hedges uint64
}

// Name implements PutStrategy.
func (s *HedgedPut) Name() string { return "Hedged" }

// Put implements PutStrategy.
func (s *HedgedPut) Put(key int64, onDone func(PutResult)) {
	s.Puts++
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	q := &quorumState{w: quorumW(s.C, s.W)}
	cands := newRingCandidates(s.C, replicas[0])
	var timer *sim.Event
	var send func(node int, extra bool)
	terminal := func(err error) {
		timer.Cancel()
		lat := s.C.Eng.Now().Sub(start)
		if err == nil {
			s.Quorums++
			putTerminalObserve(s.C, replicas[0], lat)
		} else {
			s.Failed++
		}
		onDone(PutResult{Latency: lat, Acks: q.acks, Copies: q.copies, Err: err})
	}
	reply := func(extra bool, err error) {
		s.count(err)
		switch q.report(err) {
		case quorumReached:
			terminal(nil)
		case quorumLate:
			if extra && wasted(err) {
				s.WastedWrites++ // the hedge lost the race
			}
		case quorumPending:
			if errors.Is(err, ErrNodeDown) {
				if n := cands.take(); n >= 0 {
					send(n, true)
					return
				}
			}
			if q.pending() == 0 {
				q.fail()
				terminal(ErrQuorumFailed)
			}
		}
	}
	send = func(node int, extra bool) {
		q.add(1)
		s.CopiesSent++
		s.C.PutDurableCall(node, key, 0, func(err error) { reply(extra, err) })
	}
	timer = s.C.Eng.Schedule(s.HedgeAfter, func() {
		if q.done {
			return
		}
		need := q.w - q.acks
		sent := false
		for i := 0; i < need; i++ {
			n := cands.take()
			if n < 0 {
				break
			}
			sent = true
			send(n, true)
		}
		if sent {
			s.Hedges++
		}
	})
	for _, r := range replicas {
		send(r, false)
	}
}

// MittOSPut is the paper's contribution on the write path: every copy
// carries the deadline SLO, so a contended replica's WAL admission answers
// EBUSY in one RTT instead of holding the quorum hostage; the client fails
// the copy over to the next ring node instantly (still with the deadline).
// When the ring is exhausted and the quorum is still short, the last-ditch
// pass re-sends the missing acks to rejecting replicas with the deadline
// disabled — §5's "cancel the SLO on the final try" no-error guarantee —
// picking the least-busy rejectors first when UseWaitHint exposes the
// predicted-wait hints (§7.8.1/§8.1).
type MittOSPut struct {
	C        *Cluster
	Deadline time.Duration
	// W is the ack quorum; 0 means majority (R/2+1).
	W int
	// UseWaitHint ranks last-ditch targets by their EBUSY predicted-wait
	// hints instead of rejection order.
	UseWaitHint bool

	PutCounters
	Failovers uint64
	LastDitch uint64
}

// Name implements PutStrategy.
func (s *MittOSPut) Name() string { return "MittOS" }

// Put implements PutStrategy.
func (s *MittOSPut) Put(key int64, onDone func(PutResult)) {
	s.Puts++
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	q := &quorumState{w: quorumW(s.C, s.W)}
	cands := newRingCandidates(s.C, replicas[0])
	// Rejecting nodes and their predicted waits, in rejection order — the
	// last-ditch candidate pool.
	type reject struct {
		node int
		wait time.Duration
	}
	var rejects []reject
	terminal := func(err error) {
		lat := s.C.Eng.Now().Sub(start)
		if err == nil {
			s.Quorums++
			putTerminalObserve(s.C, replicas[0], lat)
		} else {
			s.Failed++
		}
		onDone(PutResult{Latency: lat, Acks: q.acks, Copies: q.copies, Err: err})
	}
	var send func(node int, deadline time.Duration, extra bool)
	lastDitch := func() bool {
		// Re-target rejectors with the deadline disabled; they executed
		// nothing for the rejected copy, so a retry duplicates no work.
		need := q.w - q.acks - q.pending()
		sent := false
		for ; need > 0 && len(rejects) > 0; need-- {
			best := 0
			if s.UseWaitHint {
				for j := 1; j < len(rejects); j++ {
					if rejects[j].wait < rejects[best].wait {
						best = j
					}
				}
			}
			n := rejects[best].node
			rejects[best] = rejects[len(rejects)-1]
			rejects = rejects[:len(rejects)-1]
			if s.C.Nodes[n].Down() {
				continue
			}
			sent = true
			s.LastDitch++
			send(n, 0, true)
		}
		return sent || q.pending() > 0
	}
	reply := func(node int, extra bool, err error) {
		s.count(err)
		switch q.report(err) {
		case quorumReached:
			terminal(nil)
		case quorumLate:
			if extra && wasted(err) {
				s.WastedWrites++ // the failover landed after the verdict
			}
		case quorumPending:
			if core.IsBusy(err) {
				wait := time.Duration(0)
				if be, ok := err.(*core.BusyError); ok {
					wait = be.PredictedWait
				}
				rejects = append(rejects, reject{node: node, wait: wait})
			}
			if core.IsBusy(err) || errors.Is(err, ErrNodeDown) {
				// Instant failover: the refusal cost one RTT, not a queue
				// wait. The replacement still carries the deadline.
				if n := cands.take(); n >= 0 {
					s.Failovers++
					send(n, s.Deadline, true)
					return
				}
			}
			if q.w-q.acks > q.pending() && lastDitch() {
				return // last-ditch copies (or stragglers) still in flight
			}
			if q.pending() == 0 {
				q.fail()
				terminal(ErrQuorumFailed)
			}
		}
	}
	send = func(node int, deadline time.Duration, extra bool) {
		q.add(1)
		s.CopiesSent++
		s.C.PutDurableCall(node, key, deadline, func(err error) { reply(node, extra, err) })
	}
	for _, r := range replicas {
		send(r, s.Deadline, false)
	}
}
