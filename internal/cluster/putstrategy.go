package cluster

import (
	"errors"
	"time"

	"mittos/internal/core"
	"mittos/internal/sim"
)

// ErrQuorumFailed reports a replicated put that could not assemble W acks:
// every base copy, replacement, and last-ditch retry either refused or
// failed. The write may still be partially durable on the acking minority.
var ErrQuorumFailed = errors.New("cluster: write quorum failed")

// PutResult reports one finished user-level replicated put.
type PutResult struct {
	Latency time.Duration
	// Acks is how many replicas had acknowledged when the verdict fired.
	Acks int
	// Copies is how many copies the strategy had sent by then (base
	// replicas plus replacements/hedges/failovers).
	Copies int
	// Err is non-nil only when the quorum failed (ErrQuorumFailed).
	Err error
}

// PutStrategy issues one client put against the cluster and reports the
// user-observed quorum verdict — the write-side mirror of Strategy.
type PutStrategy interface {
	Name() string
	Put(key int64, onDone func(PutResult))
}

// quorumVerdict is a quorumState transition.
type quorumVerdict int

// Verdicts returned by quorumState.report.
const (
	quorumPending quorumVerdict = iota // no terminal yet
	quorumReached                      // this reply delivered the Wth ack
	quorumLate                         // reply after the terminal verdict
)

// quorumState is the W-of-N ack assembly for one replicated put: copies go
// out via add, replies come back via report, and exactly one terminal is
// reached — quorumReached from the Wth ack, or the strategy calling fail
// once it is out of copies to send. Every copy targets a distinct node, so
// ack counting needs no per-node dedup. The type is deliberately free of
// cluster plumbing: the FuzzQuorumPut harness drives it directly against a
// reference model, and the pooled per-put op contexts embed it by value.
type quorumState struct {
	w      int
	copies int // copies sent
	acks   int
	busy   int
	down   int
	errs   int
	done   bool
}

// add records n more copies sent.
func (q *quorumState) add(n int) { q.copies += n }

// pending reports copies still awaiting a reply.
func (q *quorumState) pending() int { return q.copies - q.acks - q.busy - q.down - q.errs }

// report classifies one replica reply. Replies keep being tallied after the
// terminal (the late arrivals the wasted-write accounting inspects), so
// after a full drain acks+busy+down+errs == copies always holds.
func (q *quorumState) report(err error) quorumVerdict {
	late := q.done
	switch {
	case err == nil:
		q.acks++
	case core.IsBusy(err):
		q.busy++
	case errors.Is(err, ErrNodeDown):
		q.down++
	default:
		q.errs++
	}
	if late {
		return quorumLate
	}
	if err == nil && q.acks >= q.w {
		q.done = true
		return quorumReached
	}
	return quorumPending
}

// fail marks the failure terminal: the strategy has no copies left to send
// and the outstanding set cannot reach W.
func (q *quorumState) fail() { q.done = true }

// PutCounters is the shared per-strategy accounting, embedded in every put
// strategy. Every reply is counted — including late ones — so after the
// cluster drains, CopiesSent == Acks+Busy+NodeDown+Errors and
// Puts == Quorums+Failed.
type PutCounters struct {
	Puts       uint64 // user-level puts issued
	CopiesSent uint64 // replica copies sent (base + extras)
	Acks       uint64
	Busy       uint64 // EBUSY fast rejections
	NodeDown   uint64 // crashed-replica refusals
	Errors     uint64 // WAL write failures (EIO)
	Quorums    uint64 // puts that assembled W acks
	Failed     uint64 // puts that exhausted every option short of W
	// WastedWrites counts executed acks/errors from EXTRA copies (timeout
	// replacements, hedges, MittOS failovers) that landed after the put's
	// terminal verdict — durable work the client never waited for. Base
	// replica copies are replication, never waste.
	WastedWrites uint64
}

func (pc *PutCounters) count(err error) {
	switch {
	case err == nil:
		pc.Acks++
	case core.IsBusy(err):
		pc.Busy++
	case errors.Is(err, ErrNodeDown):
		pc.NodeDown++
	default:
		pc.Errors++
	}
}

// quorumW resolves a strategy's W knob: 0 means a majority of the
// replication factor (W = R/2+1, the Riak/Cassandra QUORUM default).
func quorumW(c *Cluster, w int) int {
	if w > 0 {
		return w
	}
	return c.R/2 + 1
}

// putTerminalObserve feeds the client-visible quorum-assembly latency into
// the key's primary-replica span histograms (the put path's quorum stage).
func putTerminalObserve(c *Cluster, primary int, lat time.Duration) {
	c.Nodes[primary].ObservePutQuorum(lat)
}

// BasePut is vanilla quorum replication: send one copy to each of the key's
// R replicas with no SLO, ack the user at the Wth reply, wait out stragglers
// silently. The straggler tail IS the user tail whenever W replies include a
// contended replica.
type BasePut struct {
	C *Cluster
	// W is the ack quorum; 0 means majority (R/2+1).
	W int

	PutCounters
}

// basePutOp is the pooled per-put context: the quorum state is embedded by
// value and every copy shares one pre-bound reply callback, so a
// steady-state put allocates nothing. Like every strategy op it pools on
// the cluster's shared Pools bundle and rebinds its owner at acquire.
// refs keeps the op alive until the
// straggler replies after the verdict have been tallied.
type basePutOp struct {
	s        *BasePut
	start    sim.Time
	onDone   func(PutResult)
	q        quorumState
	refs     int
	replyFn  func(error) // pre-bound op.reply
	replicas []int
}

// Name implements PutStrategy.
func (s *BasePut) Name() string { return "Base" }

// Put implements PutStrategy.
func (s *BasePut) Put(key int64, onDone func(PutResult)) {
	s.Puts++
	var op *basePutOp
	p := s.C.pools
	if n := len(p.basePutOps); n > 0 {
		op = p.basePutOps[n-1]
		p.basePutOps = p.basePutOps[:n-1]
	} else {
		op = &basePutOp{}
		op.replyFn = op.reply
	}
	op.s = s // pooled across fleets: rebind the owner
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.q = quorumState{w: quorumW(s.C, s.W)}
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	op.q.add(len(op.replicas))
	op.refs = len(op.replicas)
	s.CopiesSent += uint64(len(op.replicas))
	for _, r := range op.replicas {
		s.C.PutDurableCall(r, key, 0, op.replyFn)
	}
}

func (op *basePutOp) deref() {
	op.refs--
	if op.refs > 0 {
		return
	}
	s := op.s
	op.onDone = nil
	s.C.pools.basePutOps = append(s.C.pools.basePutOps, op)
}

func (op *basePutOp) reply(err error) {
	s := op.s
	s.count(err)
	switch op.q.report(err) {
	case quorumReached:
		s.Quorums++
		lat := s.C.Eng.Now().Sub(op.start)
		putTerminalObserve(s.C, op.replicas[0], lat)
		op.onDone(PutResult{Latency: lat, Acks: op.q.acks, Copies: op.q.copies})
	case quorumPending:
		if op.q.pending() == 0 {
			// Everything replied and we are short of W: no extras in
			// this strategy, so the put fails.
			op.q.fail()
			s.Failed++
			op.onDone(PutResult{Latency: s.C.Eng.Now().Sub(op.start),
				Acks: op.q.acks, Copies: op.q.copies, Err: ErrQuorumFailed})
		}
	}
	op.deref()
}

// ringCandidates walks the consistent-hash ring past the key's replica set,
// handing out each remaining node index once — the Dynamo-style sloppy-
// quorum handoff targets replacements, hedges, and failovers write to.
type ringCandidates struct {
	c    *Cluster
	base int // the key's primary replica
	next int // next ring offset to hand out (starts past the replica set)
}

func newRingCandidates(c *Cluster, primary int) ringCandidates {
	return ringCandidates{c: c, base: primary, next: c.R}
}

// take returns the next unused live node on the ring, or -1 when the ring is
// exhausted. Crashed nodes are skipped (a handoff to a dead node is an RTT
// spent on a refusal).
func (rc *ringCandidates) take() int {
	for rc.next < len(rc.c.Nodes) {
		n := (rc.base + rc.next) % len(rc.c.Nodes)
		rc.next++
		if !rc.c.Nodes[n].Down() {
			return n
		}
	}
	return -1
}

// TimeoutPut is the "AppTO" write: quorum-replicate with no SLO and, after a
// conservative timeout, hand the still-missing acks off to the next nodes on
// the ring (there is nothing to cancel — the stragglers' WAL appends are
// group-committed and will land regardless, which is exactly why their late
// acks show up as wasted writes). A crashed replica's refusal triggers the
// handoff immediately instead of burning the timeout.
type TimeoutPut struct {
	C  *Cluster
	TO time.Duration
	// W is the ack quorum; 0 means majority (R/2+1).
	W int

	PutCounters
	Retries uint64
}

// timeoutPutOp is the pooled per-put context. Base and handoff copies get
// distinct pre-bound reply callbacks so the wasted-write accounting can
// tell them apart without a per-copy closure. The handoff timer is an
// engine-owned recycled event that cannot be cancelled; it holds a
// reference and stays quiet when it finds the quorum already decided.
type timeoutPutOp struct {
	s        *TimeoutPut
	key      int64
	start    sim.Time
	onDone   func(PutResult)
	q        quorumState
	cands    ringCandidates
	refs     int
	baseFn   func(error) // pre-bound op.replyBase
	extraFn  func(error) // pre-bound op.replyExtra
	timerFn  func()      // pre-bound op.timerFire
	replicas []int
}

// Name implements PutStrategy.
func (s *TimeoutPut) Name() string { return "AppTO" }

// Put implements PutStrategy.
func (s *TimeoutPut) Put(key int64, onDone func(PutResult)) {
	s.Puts++
	var op *timeoutPutOp
	p := s.C.pools
	if n := len(p.timeoutPutOps); n > 0 {
		op = p.timeoutPutOps[n-1]
		p.timeoutPutOps = p.timeoutPutOps[:n-1]
	} else {
		op = &timeoutPutOp{}
		op.baseFn = op.replyBase
		op.extraFn = op.replyExtra
		op.timerFn = op.timerFire
	}
	op.s = s // pooled across fleets: rebind the owner
	op.key = key
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.q = quorumState{w: quorumW(s.C, s.W)}
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	op.cands = newRingCandidates(s.C, op.replicas[0])
	op.refs = 1 // the handoff timer
	s.C.Eng.After(s.TO, op.timerFn)
	for _, r := range op.replicas {
		op.send(r, false)
	}
}

func (op *timeoutPutOp) send(node int, extra bool) {
	s := op.s
	op.q.add(1)
	op.refs++
	s.CopiesSent++
	fn := op.baseFn
	if extra {
		fn = op.extraFn
	}
	s.C.PutDurableCall(node, op.key, 0, fn)
}

func (op *timeoutPutOp) deref() {
	op.refs--
	if op.refs > 0 {
		return
	}
	s := op.s
	op.onDone = nil
	s.C.pools.timeoutPutOps = append(s.C.pools.timeoutPutOps, op)
}

func (op *timeoutPutOp) terminal(err error) {
	s := op.s
	lat := s.C.Eng.Now().Sub(op.start)
	if err == nil {
		s.Quorums++
		putTerminalObserve(s.C, op.replicas[0], lat)
	} else {
		s.Failed++
	}
	op.onDone(PutResult{Latency: lat, Acks: op.q.acks, Copies: op.q.copies, Err: err})
}

func (op *timeoutPutOp) replyBase(err error) { op.reply(false, err) }

func (op *timeoutPutOp) replyExtra(err error) { op.reply(true, err) }

func (op *timeoutPutOp) reply(extra bool, err error) {
	s := op.s
	s.count(err)
	switch op.q.report(err) {
	case quorumReached:
		op.terminal(nil)
	case quorumLate:
		if extra && wasted(err) {
			s.WastedWrites++ // the handoff copy landed after the verdict
		}
	case quorumPending:
		if errors.Is(err, ErrNodeDown) {
			// Crashed replica: its refusal came back in one RTT; hand
			// off now rather than waiting out TO.
			if n := op.cands.take(); n >= 0 {
				s.Retries++
				op.send(n, true)
				break
			}
		}
		if op.q.pending() == 0 {
			op.q.fail()
			op.terminal(ErrQuorumFailed)
		}
	}
	op.deref()
}

func (op *timeoutPutOp) timerFire() {
	s := op.s
	if !op.q.done {
		// Hand the missing acks off to the ring; the abandoned stragglers
		// keep running (no revocation on the write path).
		need := op.q.w - op.q.acks
		sent := false
		for i := 0; i < need; i++ {
			n := op.cands.take()
			if n < 0 {
				break
			}
			sent = true
			op.send(n, true)
		}
		if sent {
			s.Retries++
		}
	}
	op.deref()
}

// HedgedPut is the Dean & Barroso hedge applied to writes: quorum-replicate
// with no SLO and, once the put has been outstanding past the expected p95,
// proactively duplicate the missing acks onto the next ring nodes. The
// losing copies are pure write amplification (WastedWrites); a crashed
// replica's refusal hedges immediately.
type HedgedPut struct {
	C          *Cluster
	HedgeAfter time.Duration
	// W is the ack quorum; 0 means majority (R/2+1).
	W int

	PutCounters
	Hedges uint64
}

// hedgedPutOp is the pooled per-put context, structurally the same as
// timeoutPutOp: the hedge timer holds a reference and no-ops after the
// verdict, and base vs hedge copies use distinct pre-bound callbacks.
type hedgedPutOp struct {
	s        *HedgedPut
	key      int64
	start    sim.Time
	onDone   func(PutResult)
	q        quorumState
	cands    ringCandidates
	refs     int
	baseFn   func(error) // pre-bound op.replyBase
	extraFn  func(error) // pre-bound op.replyExtra
	timerFn  func()      // pre-bound op.timerFire
	replicas []int
}

// Name implements PutStrategy.
func (s *HedgedPut) Name() string { return "Hedged" }

// Put implements PutStrategy.
func (s *HedgedPut) Put(key int64, onDone func(PutResult)) {
	s.Puts++
	var op *hedgedPutOp
	p := s.C.pools
	if n := len(p.hedgedPutOps); n > 0 {
		op = p.hedgedPutOps[n-1]
		p.hedgedPutOps = p.hedgedPutOps[:n-1]
	} else {
		op = &hedgedPutOp{}
		op.baseFn = op.replyBase
		op.extraFn = op.replyExtra
		op.timerFn = op.timerFire
	}
	op.s = s // pooled across fleets: rebind the owner
	op.key = key
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.q = quorumState{w: quorumW(s.C, s.W)}
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	op.cands = newRingCandidates(s.C, op.replicas[0])
	op.refs = 1 // the hedge timer
	s.C.Eng.After(s.HedgeAfter, op.timerFn)
	for _, r := range op.replicas {
		op.send(r, false)
	}
}

func (op *hedgedPutOp) send(node int, extra bool) {
	s := op.s
	op.q.add(1)
	op.refs++
	s.CopiesSent++
	fn := op.baseFn
	if extra {
		fn = op.extraFn
	}
	s.C.PutDurableCall(node, op.key, 0, fn)
}

func (op *hedgedPutOp) deref() {
	op.refs--
	if op.refs > 0 {
		return
	}
	s := op.s
	op.onDone = nil
	s.C.pools.hedgedPutOps = append(s.C.pools.hedgedPutOps, op)
}

func (op *hedgedPutOp) terminal(err error) {
	s := op.s
	lat := s.C.Eng.Now().Sub(op.start)
	if err == nil {
		s.Quorums++
		putTerminalObserve(s.C, op.replicas[0], lat)
	} else {
		s.Failed++
	}
	op.onDone(PutResult{Latency: lat, Acks: op.q.acks, Copies: op.q.copies, Err: err})
}

func (op *hedgedPutOp) replyBase(err error) { op.reply(false, err) }

func (op *hedgedPutOp) replyExtra(err error) { op.reply(true, err) }

func (op *hedgedPutOp) reply(extra bool, err error) {
	s := op.s
	s.count(err)
	switch op.q.report(err) {
	case quorumReached:
		op.terminal(nil)
	case quorumLate:
		if extra && wasted(err) {
			s.WastedWrites++ // the hedge lost the race
		}
	case quorumPending:
		if errors.Is(err, ErrNodeDown) {
			if n := op.cands.take(); n >= 0 {
				op.send(n, true)
				break
			}
		}
		if op.q.pending() == 0 {
			op.q.fail()
			op.terminal(ErrQuorumFailed)
		}
	}
	op.deref()
}

func (op *hedgedPutOp) timerFire() {
	s := op.s
	if !op.q.done {
		need := op.q.w - op.q.acks
		sent := false
		for i := 0; i < need; i++ {
			n := op.cands.take()
			if n < 0 {
				break
			}
			sent = true
			op.send(n, true)
		}
		if sent {
			s.Hedges++
		}
	}
	op.deref()
}

// MittOSPut is the paper's contribution on the write path: every copy
// carries the deadline SLO, so a contended replica's WAL admission answers
// EBUSY in one RTT instead of holding the quorum hostage; the client fails
// the copy over to the next ring node instantly (still with the deadline).
// When the ring is exhausted and the quorum is still short, the last-ditch
// pass re-sends the missing acks to rejecting replicas with the deadline
// disabled — §5's "cancel the SLO on the final try" no-error guarantee —
// picking the least-busy rejectors first when UseWaitHint exposes the
// predicted-wait hints (§7.8.1/§8.1).
type MittOSPut struct {
	C        *Cluster
	Deadline time.Duration
	// W is the ack quorum; 0 means majority (R/2+1).
	W int
	// UseWaitHint ranks last-ditch targets by their EBUSY predicted-wait
	// hints instead of rejection order.
	UseWaitHint bool

	PutCounters
	Failovers uint64
	LastDitch uint64
}

// putReject is a rejecting node and its predicted wait, in rejection order —
// the last-ditch candidate pool.
type putReject struct {
	node int
	wait time.Duration
}

// mittPutOp is the pooled per-put context; the rejects scratch is reused
// across puts.
type mittPutOp struct {
	s        *MittOSPut
	key      int64
	start    sim.Time
	onDone   func(PutResult)
	q        quorumState
	cands    ringCandidates
	refs     int
	replicas []int
	rejects  []putReject
}

// mittPutCopy is the pooled per-copy context: unlike the other put
// strategies, a MittOS reply needs to know which node it came from (the
// rejects pool records it), so each in-flight copy carries one of these
// instead of a closure.
type mittPutCopy struct {
	s     *MittOSPut
	op    *mittPutOp
	node  int
	extra bool
	fn    func(error) // pre-bound cp.reply
}

// Name implements PutStrategy.
func (s *MittOSPut) Name() string { return "MittOS" }

// Put implements PutStrategy.
func (s *MittOSPut) Put(key int64, onDone func(PutResult)) {
	s.Puts++
	var op *mittPutOp
	p := s.C.pools
	if n := len(p.mittPutOps); n > 0 {
		op = p.mittPutOps[n-1]
		p.mittPutOps = p.mittPutOps[:n-1]
	} else {
		op = &mittPutOp{}
	}
	op.s = s // pooled across fleets: rebind the owner
	op.key = key
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.q = quorumState{w: quorumW(s.C, s.W)}
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	op.cands = newRingCandidates(s.C, op.replicas[0])
	op.rejects = op.rejects[:0]
	for _, r := range op.replicas {
		op.send(r, s.Deadline, false)
	}
}

func (op *mittPutOp) send(node int, deadline time.Duration, extra bool) {
	s := op.s
	op.q.add(1)
	op.refs++
	s.CopiesSent++
	var cp *mittPutCopy
	p := s.C.pools
	if n := len(p.mittPutCopies); n > 0 {
		cp = p.mittPutCopies[n-1]
		p.mittPutCopies = p.mittPutCopies[:n-1]
	} else {
		cp = &mittPutCopy{}
		cp.fn = cp.reply
	}
	cp.s = s // pooled across fleets: rebind the owner
	cp.op, cp.node, cp.extra = op, node, extra
	s.C.PutDurableCall(node, op.key, deadline, cp.fn)
}

func (cp *mittPutCopy) reply(err error) {
	s, op, node, extra := cp.s, cp.op, cp.node, cp.extra
	cp.op = nil
	s.C.pools.mittPutCopies = append(s.C.pools.mittPutCopies, cp)
	op.reply(node, extra, err)
}

func (op *mittPutOp) deref() {
	op.refs--
	if op.refs > 0 {
		return
	}
	s := op.s
	op.onDone = nil
	s.C.pools.mittPutOps = append(s.C.pools.mittPutOps, op)
}

func (op *mittPutOp) terminal(err error) {
	s := op.s
	lat := s.C.Eng.Now().Sub(op.start)
	if err == nil {
		s.Quorums++
		putTerminalObserve(s.C, op.replicas[0], lat)
	} else {
		s.Failed++
	}
	op.onDone(PutResult{Latency: lat, Acks: op.q.acks, Copies: op.q.copies, Err: err})
}

// lastDitch re-targets rejectors with the deadline disabled; they executed
// nothing for the rejected copy, so a retry duplicates no work.
func (op *mittPutOp) lastDitch() bool {
	s := op.s
	need := op.q.w - op.q.acks - op.q.pending()
	sent := false
	for ; need > 0 && len(op.rejects) > 0; need-- {
		best := 0
		if s.UseWaitHint {
			for j := 1; j < len(op.rejects); j++ {
				if op.rejects[j].wait < op.rejects[best].wait {
					best = j
				}
			}
		}
		n := op.rejects[best].node
		op.rejects[best] = op.rejects[len(op.rejects)-1]
		op.rejects = op.rejects[:len(op.rejects)-1]
		if s.C.Nodes[n].Down() {
			continue
		}
		sent = true
		s.LastDitch++
		op.send(n, 0, true)
	}
	return sent || op.q.pending() > 0
}

func (op *mittPutOp) reply(node int, extra bool, err error) {
	s := op.s
	s.count(err)
	switch op.q.report(err) {
	case quorumReached:
		op.terminal(nil)
	case quorumLate:
		if extra && wasted(err) {
			s.WastedWrites++ // the failover landed after the verdict
		}
	case quorumPending:
		if core.IsBusy(err) {
			wait := time.Duration(0)
			if be, ok := err.(*core.BusyError); ok {
				wait = be.PredictedWait
			}
			op.rejects = append(op.rejects, putReject{node: node, wait: wait})
		}
		if core.IsBusy(err) || errors.Is(err, ErrNodeDown) {
			// Instant failover: the refusal cost one RTT, not a queue
			// wait. The replacement still carries the deadline.
			if n := op.cands.take(); n >= 0 {
				s.Failovers++
				op.send(n, s.Deadline, true)
				break
			}
		}
		if errors.Is(err, ErrRevoked) {
			// Teardown harvest of a stranded copy: the engine is being
			// reset, so sending last-ditch copies would only strand more
			// contexts. Fall through to the pending check.
		} else if op.q.w-op.q.acks > op.q.pending() && op.lastDitch() {
			break // last-ditch copies (or stragglers) still in flight
		}
		if op.q.pending() == 0 {
			op.q.fail()
			op.terminal(ErrQuorumFailed)
		}
	}
	op.deref()
}
