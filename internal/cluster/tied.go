package cluster

import (
	"errors"
	"time"

	"mittos/internal/sim"
)

// TiedStrategy approximates Dean & Barroso's "tied requests": the request
// is sent to two replicas with a small delay between them, each tagged with
// the other's identity, and when one begins execution it cancels its
// sibling.
//
// The paper could NOT evaluate this faithfully (§7.8.2): with MongoDB over
// a stock kernel there is no "begin execution" signal — "device queue is in
// fact invisible to the OS" and "it is not easy to build a begin-execution
// signal path from the OS/device layer to the application". The simulation
// has the same constraint for device-resident IOs, so this implementation
// does exactly what an application-level port could do: the *winner's
// completion* cancels the sibling, which helps only if the sibling is still
// cancellable in the scheduler queues. It exists as the comparison point
// the paper wanted, with its documented weakness intact.
type TiedStrategy struct {
	C *Cluster
	// Delay before the second (tied) copy is sent; Dean & Barroso suggest
	// ~2× the network hop.
	Delay time.Duration
	RNG   *sim.RNG

	Cancelled uint64
	// WastedIOs counts losing copies whose IO escaped the cancellation —
	// it was already device-resident, ran to completion, and was discarded.
	WastedIOs uint64

	live []int // selection scratch, reused across gets
}

// Name implements Strategy.
func (s *TiedStrategy) Name() string { return "Tied" }

// Get implements Strategy.
func (s *TiedStrategy) Get(key int64, onDone func(GetResult)) {
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	// Tie only live replicas; with every node up the filter is the
	// identity and the random draws are unchanged.
	s.live = s.live[:0]
	for _, r := range replicas {
		if !s.C.Nodes[r].Down() {
			s.live = append(s.live, r)
		}
	}
	if len(s.live) == 0 {
		// Whole replica set down: fail fast via the primary's refusal.
		replicaCall(s.C, replicas[0], key, 0, func(err error) {
			onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: 1, Err: err})
		})
		return
	}
	if len(s.live) == 1 {
		// One survivor: a tied pair is impossible (the old code's
		// RNG.Intn(0) panic); send a single plain copy.
		replicaCall(s.C, s.live[0], key, 0, func(err error) {
			onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: 1, Err: err})
		})
		return
	}
	i := s.RNG.Intn(len(s.live))
	j := s.RNG.Intn(len(s.live) - 1)
	if j >= i {
		j++
	}
	won := false
	pending := 0
	handles := [2]*ServeHandle{}
	finish := func(idx, tries int) func(error) {
		return func(err error) {
			if won {
				if wasted(err) {
					s.WastedIOs++ // the cancel lost the race with the device
				}
				return
			}
			pending--
			if errors.Is(err, ErrNodeDown) && (pending > 0 || tries == 1) {
				// That node crashed mid-flight; the sibling (already out,
				// or still to be sent by the delay timer) decides.
				return
			}
			won = true
			// Cancellation message to the sibling: one network hop, then
			// revoke whatever is still in the scheduler queues. Both handles
			// are released afterwards; the pooled handle must not be touched
			// once Done, so they are dropped in the same hop.
			other := 1 - idx
			s.C.Net.Send(func() {
				if h := handles[other]; h != nil {
					h.Cancel()
					s.Cancelled++
				}
				for k, h := range handles {
					if h != nil {
						h.Done()
						handles[k] = nil
					}
				}
			})
			onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: tries, Err: err})
		}
	}
	send := func(idx, node, tries int) {
		s.C.Net.Send(func() {
			if won {
				return // lost the race with the winner's cancel hop
			}
			pending++
			handles[idx] = s.C.Nodes[node].ServeGetCancelable(key, 0, func(err error) {
				if errors.Is(err, ErrRevoked) {
					// The winner's cancel dropped this IO before it ran;
					// there is no reply to race.
					return
				}
				s.C.Net.Send(func() { finish(idx, tries)(err) })
			})
		})
	}
	// Resolve the pair to node indices now: s.live is shared scratch and
	// the delay timer below outlives this Get.
	first, second := s.live[i], s.live[j]
	// First copy immediately; the tied copy after Delay unless already won.
	send(0, first, 1)
	delay := s.Delay
	if delay <= 0 {
		delay = 2 * s.C.Net.Config().HopLatency
	}
	s.C.Eng.After(delay, func() {
		if won {
			return
		}
		send(1, second, 2)
	})
}
