package cluster

import (
	"errors"
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/netsim"
	"mittos/internal/noise"
	"mittos/internal/sim"
)

func newSingleNodeCluster(t *testing.T) *Cluster {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.DefaultConfig(), sim.NewRNG(61, t.Name()+"-net"))
	return NewCluster(eng, net, 1, 1, diskNodeTemplate(false, 10000), sim.NewRNG(62, t.Name()))
}

// TestCrashDropsInFlightAndRefuses exercises the node-level crash contract
// directly: in-flight gets error out the moment Crash fires, new calls are
// refused until Revive, and the pooled per-get state survives the whole
// cycle (the race detector and repeated reuse would catch a double-free).
func TestCrashDropsInFlightAndRefuses(t *testing.T) {
	c := newSingleNodeCluster(t)
	n := c.Nodes[0]

	var inflightErr error
	inflightDone := false
	n.ServeGet(7, 0, func(err error) { inflightErr = err; inflightDone = true })
	c.Eng.RunFor(100 * time.Microsecond) // the IO is now in the storage stack
	if inflightDone {
		t.Fatal("get finished before the crash; pick a shorter warmup")
	}

	n.Crash()
	if !inflightDone {
		t.Fatal("in-flight get not aborted at crash time")
	}
	if !errors.Is(inflightErr, ErrNodeDown) {
		t.Fatalf("in-flight get got %v, want ErrNodeDown", inflightErr)
	}

	var refusedErr error
	n.ServeGet(8, 0, func(err error) { refusedErr = err })
	if !errors.Is(refusedErr, ErrNodeDown) {
		t.Fatalf("get on a down node got %v, want ErrNodeDown", refusedErr)
	}
	n.ServePut(9, func(err error) { refusedErr = err })
	if !errors.Is(refusedErr, ErrNodeDown) {
		t.Fatalf("put on a down node got %v, want ErrNodeDown", refusedErr)
	}
	if n.Refused() != 2 {
		t.Fatalf("Refused = %d, want 2", n.Refused())
	}
	c.Eng.RunFor(time.Second) // drain the aborted IO's completion

	n.Revive()
	for i := 0; i < 50; i++ { // pooled ctx/handle reuse after the abort cycle
		done := false
		n.ServeGet(int64(i), 0, func(err error) {
			if err != nil {
				t.Fatalf("get %d after revive: %v", i, err)
			}
			done = true
		})
		c.Eng.Run()
		if !done {
			t.Fatalf("get %d after revive never completed", i)
		}
	}
}

// TestCrashAbortsCancelableGet covers the handle path: the caller's handle
// stays usable (Cancel/Done) after the crash already aborted the get.
func TestCrashAbortsCancelableGet(t *testing.T) {
	c := newSingleNodeCluster(t)
	n := c.Nodes[0]
	var got error
	h := n.ServeGetCancelable(7, 0, func(err error) { got = err })
	c.Eng.RunFor(100 * time.Microsecond)
	n.Crash()
	if !errors.Is(got, ErrNodeDown) {
		t.Fatalf("cancelable get got %v, want ErrNodeDown", got)
	}
	h.Cancel() // must be a no-op against the recycled request
	h.Done()
	c.Eng.RunFor(time.Second)
}

// TestEveryStrategyVsCrashedPrimary runs each strategy against a replica
// set whose primary is down. None may hang; every strategy with a second
// replica to try must succeed, and Base (which has none) must surface
// ErrNodeDown rather than stalling.
func TestEveryStrategyVsCrashedPrimary(t *testing.T) {
	const key = 0
	cases := []struct {
		name    string
		make    func(c *Cluster) Strategy
		wantErr bool
	}{
		{"Base", func(c *Cluster) Strategy { return &BaseStrategy{C: c} }, true},
		{"AppTO", func(c *Cluster) Strategy { return &TimeoutStrategy{C: c, TO: 15 * time.Millisecond} }, false},
		{"Clone", func(c *Cluster) Strategy { return &CloneStrategy{C: c, RNG: sim.NewRNG(9, "clone")} }, false},
		{"Hedged", func(c *Cluster) Strategy { return &HedgedStrategy{C: c, HedgeAfter: 20 * time.Millisecond} }, false},
		{"Tied", func(c *Cluster) Strategy { return &TiedStrategy{C: c, RNG: sim.NewRNG(9, "tied")} }, false},
		{"Snitch", func(c *Cluster) Strategy { return &SnitchStrategy{C: c} }, false},
		{"C3", func(c *Cluster) Strategy { return &C3Strategy{C: c} }, false},
		{"MittOS", func(c *Cluster) Strategy { return &MittOSStrategy{C: c, Deadline: 10 * time.Millisecond} }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCluster(t, 3, true, 10000)
			primary := c.ReplicasFor(key)[0]
			c.Nodes[primary].Crash()
			s := tc.make(c)
			done := false
			var res GetResult
			s.Get(key, func(r GetResult) { res = r; done = true })
			c.Eng.RunFor(5 * time.Second)
			if !done {
				t.Fatal("get hung against a crashed primary")
			}
			if tc.wantErr {
				if !errors.Is(res.Err, ErrNodeDown) {
					t.Fatalf("err = %v, want ErrNodeDown", res.Err)
				}
				return
			}
			if res.Err != nil {
				t.Fatalf("err = %v, want failover to a live replica", res.Err)
			}
		})
	}
}

// TestEveryStrategyVsWholeSetDown: with all replicas down nothing can
// succeed, but nothing may hang either.
func TestEveryStrategyVsWholeSetDown(t *testing.T) {
	const key = 0
	cases := []struct {
		name string
		make func(c *Cluster) Strategy
	}{
		{"Base", func(c *Cluster) Strategy { return &BaseStrategy{C: c} }},
		{"AppTO", func(c *Cluster) Strategy { return &TimeoutStrategy{C: c, TO: 15 * time.Millisecond} }},
		{"Clone", func(c *Cluster) Strategy { return &CloneStrategy{C: c, RNG: sim.NewRNG(9, "clone")} }},
		{"Hedged", func(c *Cluster) Strategy { return &HedgedStrategy{C: c, HedgeAfter: 20 * time.Millisecond} }},
		{"Tied", func(c *Cluster) Strategy { return &TiedStrategy{C: c, RNG: sim.NewRNG(9, "tied")} }},
		{"Snitch", func(c *Cluster) Strategy { return &SnitchStrategy{C: c} }},
		{"C3", func(c *Cluster) Strategy { return &C3Strategy{C: c} }},
		{"MittOS", func(c *Cluster) Strategy { return &MittOSStrategy{C: c, Deadline: 10 * time.Millisecond} }},
		{"MittOS+hint", func(c *Cluster) Strategy {
			return &MittOSStrategy{C: c, Deadline: 10 * time.Millisecond, UseWaitHint: true}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCluster(t, 3, true, 10000)
			for _, n := range c.Nodes {
				n.Crash()
			}
			s := tc.make(c)
			done := false
			var res GetResult
			s.Get(key, func(r GetResult) { res = r; done = true })
			c.Eng.RunFor(5 * time.Second)
			if !done {
				t.Fatal("get hung with the whole replica set down")
			}
			if !errors.Is(res.Err, ErrNodeDown) {
				t.Fatalf("err = %v, want ErrNodeDown", res.Err)
			}
		})
	}
}

// TestMittOSWaitHintSkipsCrashedNode forces every live replica to reject
// (100% false-positive injection) while one replica is crashed: the
// wait-hint last-ditch retry must target a live node, not the crashed one
// whose "predicted wait" was never reported.
func TestMittOSWaitHintSkipsCrashedNode(t *testing.T) {
	c := newTestCluster(t, 3, true, 10000)
	replicas := c.ReplicasFor(0)
	rng := sim.NewRNG(11, "fp")
	for _, r := range replicas {
		c.Nodes[r].MittCFQ.SetErrorInjection(0, 1.0, rng) // reject every SLO'd IO
	}
	crashed := replicas[1]
	c.Nodes[crashed].Crash()

	s := &MittOSStrategy{C: c, Deadline: 10 * time.Millisecond, UseWaitHint: true}
	done := false
	var res GetResult
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.RunFor(5 * time.Second)
	if !done {
		t.Fatal("wait-hint get hung")
	}
	if res.Err != nil {
		t.Fatalf("err = %v; the last-ditch try has no deadline and must succeed", res.Err)
	}
	if s.LastDitch != 1 {
		t.Fatalf("LastDitch = %d, want 1", s.LastDitch)
	}
	if got := c.Nodes[crashed].Refused(); got != 1 {
		t.Fatalf("crashed node refused %d calls, want exactly the one probe", got)
	}
}

// TestCloneSingleLiveReplica: with one live replica a clone pair is
// impossible; the old code panicked in RNG.Intn(0). Now it degrades to a
// single copy.
func TestCloneSingleLiveReplica(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	replicas := c.ReplicasFor(0)
	c.Nodes[replicas[0]].Crash()
	c.Nodes[replicas[2]].Crash()
	s := &CloneStrategy{C: c, RNG: sim.NewRNG(9, "clone")}
	done := false
	var res GetResult
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.Run()
	if !done || res.Err != nil {
		t.Fatalf("single-survivor clone: done=%v err=%v", done, res.Err)
	}
	if res.Tries != 1 {
		t.Fatalf("tries = %d, want 1 (no clone pair possible)", res.Tries)
	}
	if got := c.Nodes[replicas[1]].Served(); got != 1 {
		t.Fatalf("survivor served %d, want 1", got)
	}
}

// TestTiedSingleLiveReplica is the same degradation for tied requests.
func TestTiedSingleLiveReplica(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	replicas := c.ReplicasFor(0)
	c.Nodes[replicas[0]].Crash()
	c.Nodes[replicas[2]].Crash()
	s := &TiedStrategy{C: c, RNG: sim.NewRNG(9, "tied")}
	done := false
	var res GetResult
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.Run()
	if !done || res.Err != nil {
		t.Fatalf("single-survivor tied: done=%v err=%v", done, res.Err)
	}
	if res.Tries != 1 {
		t.Fatalf("tries = %d, want 1 (no tied pair possible)", res.Tries)
	}
}

// TestSingleNodeClusterStrategies: an R=1 cluster offers no second replica
// at all — Clone and Tied must not draw from an empty range (the
// RNG.Intn(0) panic), they send one plain copy.
func TestSingleNodeClusterStrategies(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.DefaultConfig(), sim.NewRNG(61, "r1-net"))
	c := NewCluster(eng, net, 1, 1, diskNodeTemplate(false, 10000), sim.NewRNG(62, "r1"))
	for _, s := range []Strategy{
		&CloneStrategy{C: c, RNG: sim.NewRNG(9, "clone")},
		&TiedStrategy{C: c, RNG: sim.NewRNG(9, "tied")},
	} {
		done := false
		var res GetResult
		s.Get(0, func(r GetResult) { res = r; done = true })
		eng.Run()
		if !done || res.Err != nil || res.Tries != 1 {
			t.Fatalf("%s on R=1: done=%v err=%v tries=%d", s.Name(), done, res.Err, res.Tries)
		}
	}
}

// TestHedgedTriesCountsHedgedCopy is the regression test for the Tries
// accounting bug: when the hedge fired, the result must report 2 tries no
// matter which copy wins (the old code reported 1 when the primary won).
func TestHedgedTriesCountsHedgedCopy(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	s := &HedgedStrategy{C: c, HedgeAfter: time.Microsecond}
	done := false
	var res GetResult
	s.Get(7, func(r GetResult) { res = r; done = true })
	c.Eng.Run()
	if !done || res.Err != nil {
		t.Fatalf("hedged get: done=%v err=%v", done, res.Err)
	}
	if s.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1 (HedgeAfter is 1µs)", s.Hedges)
	}
	if res.Tries != 2 {
		t.Fatalf("Tries = %d, want 2: the hedge fired, two IOs were issued", res.Tries)
	}
	if s.WastedIOs != 1 {
		t.Fatalf("WastedIOs = %d, want 1 (the losing copy ran to completion)", s.WastedIOs)
	}
}

// TestAppTOCancelsAbandonedIO: the timeout fires while the abandoned IO is
// already device-resident (beyond revocation), so it completes and is
// counted as wasted; the retry wins on another replica.
func TestAppTOCancelsAbandonedIO(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	primary := c.ReplicasFor(0)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[primary].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 12, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)
	s := &TimeoutStrategy{C: c, TO: 15 * time.Millisecond}
	done := false
	var res GetResult
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.RunFor(3 * time.Second)
	st.Stop()
	c.Eng.RunFor(3 * time.Second) // drain: any abandoned IO completes here
	if !done || res.Err != nil {
		t.Fatalf("AppTO get: done=%v err=%v", done, res.Err)
	}
	if res.Tries < 2 || s.Retries == 0 {
		t.Fatalf("no retry under saturation (tries=%d retries=%d)", res.Tries, s.Retries)
	}
	// Every abandoned attempt either had its IO revoked in the scheduler
	// queues (no waste) or it ran to completion (wasted); it can never be
	// counted both ways.
	if s.WastedIOs > s.Retries {
		t.Fatalf("WastedIOs %d > Retries %d", s.WastedIOs, s.Retries)
	}
}

// TestAppTOWastedIOWhenDeviceResident pins the wasted-IO path: an idle disk
// dispatches the IO immediately, so a 1ms timeout cannot revoke it and the
// abandoned IO must complete and count as wasted.
func TestAppTOWastedIOWhenDeviceResident(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	s := &TimeoutStrategy{C: c, TO: time.Millisecond}
	done := false
	var res GetResult
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.Run()
	if !done || res.Err != nil {
		t.Fatalf("AppTO get: done=%v err=%v", done, res.Err)
	}
	if s.Retries == 0 {
		t.Fatal("a 1ms timeout must beat a cold disk read")
	}
	if s.WastedIOs == 0 {
		t.Fatal("the abandoned device-resident IO must be counted as wasted")
	}
}

// TestEIOPropagatesToCaller: device-level error injection must surface as
// the get's verdict at the client, not vanish in the completion chain.
func TestEIOPropagatesToCaller(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	primary := c.ReplicasFor(0)[0]
	c.Nodes[primary].Disk.SetErrorInjection(1.0, sim.NewRNG(3, "eio"))
	s := &BaseStrategy{C: c}
	done := false
	var res GetResult
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.Run()
	if !done {
		t.Fatal("get hung")
	}
	if !errors.Is(res.Err, blockio.ErrIO) {
		t.Fatalf("err = %v, want ErrIO", res.Err)
	}
}

// TestFaultAdapterRoutesFaults spot-checks the Injector seam end to end.
func TestFaultAdapterRoutesFaults(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	a := NewFaultAdapter(c, sim.NewRNG(17, "faults"))

	a.FailSlow(1, 8)
	if got := c.Nodes[1].Disk.Degradation(); got != 8 {
		t.Fatalf("node 1 degradation = %g, want 8", got)
	}
	if got := c.Nodes[0].Disk.Degradation(); got != 1 {
		t.Fatalf("node 0 degradation = %g, want 1", got)
	}
	a.FailSlow(-1, 2)
	for i, n := range c.Nodes {
		if got := n.Disk.Degradation(); got != 2 {
			t.Fatalf("node %d degradation = %g after AllNodes, want 2", i, got)
		}
	}
	a.FailSlow(-1, 1)

	a.Crash(2)
	if !c.Nodes[2].Down() {
		t.Fatal("Crash(2) did not take the node down")
	}
	a.Revive(2)
	if c.Nodes[2].Down() {
		t.Fatal("Revive(2) did not bring the node back")
	}

	a.NetDegrade(200*time.Microsecond, 50*time.Microsecond)
	if !c.Net.Degraded() {
		t.Fatal("network not degraded")
	}
	a.NetRestore()
	if c.Net.Degraded() {
		t.Fatal("network still degraded after restore")
	}
}
