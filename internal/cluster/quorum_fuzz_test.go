package cluster

import (
	"testing"

	"mittos/internal/blockio"
	"mittos/internal/core"
)

// FuzzQuorumPut drives quorumState — the W-of-N ack assembly under every put
// strategy — with a byte-program of copy sends and ack/EBUSY/crash/EIO
// replies, checking it against a naive reference model after every step:
//
//   - exactly one terminal: quorumReached fires at the Wth ack and never
//     again; once done (reached or failed) every further reply is classified
//     quorumLate;
//   - the tallies never leak: acks+busy+down+errs always equals the replies
//     fed in, and pending() is exactly copies minus replies;
//   - a failure terminal is only ever legal when the outstanding set cannot
//     reach W, and replies arriving after it stay late.
func FuzzQuorumPut(f *testing.F) {
	f.Add(uint8(2), uint8(3), []byte{0, 0, 1, 2, 0})
	f.Add(uint8(1), uint8(1), []byte{3, 4, 0})
	f.Add(uint8(3), uint8(5), []byte{1, 1, 4, 0, 4, 0, 4, 0})
	f.Add(uint8(2), uint8(3), []byte{2, 2, 2, 4, 0, 0, 0})

	f.Fuzz(func(t *testing.T, wB, copiesB uint8, prog []byte) {
		w := int(wB)%5 + 1
		copies := int(copiesB)%8 + 1
		if len(prog) > 512 {
			prog = prog[:512]
		}

		q := &quorumState{w: w}
		q.add(copies)

		// Reference model: plain counters over the same reply stream.
		var acks, busy, down, errs, replies int
		reached, failed := false, false

		replyErrs := []error{
			nil,                               // ack
			blockio.ErrBusy,                   // EBUSY fast reject
			&core.BusyError{PredictedWait: 1}, // EBUSY with wait hint
			ErrNodeDown,                       // crashed replica
			blockio.ErrIO,                     // WAL write failure
		}

		check := func(step int) {
			t.Helper()
			if q.acks != acks || q.busy != busy || q.down != down || q.errs != errs {
				t.Fatalf("step %d: tallies (a%d b%d d%d e%d) vs model (a%d b%d d%d e%d)",
					step, q.acks, q.busy, q.down, q.errs, acks, busy, down, errs)
			}
			if got, want := q.pending(), copies-replies; got != want {
				t.Fatalf("step %d: pending %d, want copies %d - replies %d = %d",
					step, got, copies, replies, want)
			}
			if q.done != (reached || failed) {
				t.Fatalf("step %d: done=%v, model reached=%v failed=%v", step, q.done, reached, failed)
			}
		}
		check(-1)

		for i, b := range prog {
			if op := int(b) % 8; op == 7 {
				// A strategy sending an extra copy (replacement, hedge,
				// failover) — legal at any point before or after the verdict.
				q.add(1)
				copies++
				check(i)
				continue
			} else if op == 6 {
				// The failure terminal: a strategy may only call fail when it
				// is out of options — nothing pending and short of W.
				if reached || failed || copies-replies != 0 || acks >= w {
					continue
				}
				q.fail()
				failed = true
				check(i)
				continue
			}
			if replies == copies {
				continue // nothing outstanding to reply
			}
			err := replyErrs[int(b)%len(replyErrs)]
			late := reached || failed
			verdict := q.report(err)
			replies++
			switch {
			case err == nil:
				acks++
			case core.IsBusy(err):
				busy++
			case err == ErrNodeDown:
				down++
			default:
				errs++
			}
			switch {
			case late:
				if verdict != quorumLate {
					t.Fatalf("step %d: reply after terminal classified %d, want quorumLate", i, verdict)
				}
			case err == nil && acks == w:
				if verdict != quorumReached {
					t.Fatalf("step %d: Wth ack (w=%d) classified %d, want quorumReached", i, w, verdict)
				}
				reached = true
			default:
				if verdict != quorumPending {
					t.Fatalf("step %d: verdict %d, want quorumPending (acks %d/%d)", i, verdict, acks, w)
				}
			}
			check(i)
		}

		// Drain every outstanding copy with acks: the books must close and
		// no second terminal may fire.
		for replies < copies {
			late := reached || failed
			verdict := q.report(nil)
			replies++
			acks++
			if late && verdict == quorumReached {
				t.Fatal("drain: second quorumReached terminal")
			}
			if !late && acks >= w && verdict != quorumReached {
				t.Fatalf("drain: Wth ack classified %d", verdict)
			}
			if !late && acks >= w {
				reached = true
			}
			check(-2)
		}
		if q.acks+q.busy+q.down+q.errs != q.copies {
			t.Fatalf("after drain: a%d+b%d+d%d+e%d != copies %d",
				q.acks, q.busy, q.down, q.errs, q.copies)
		}
	})
}
