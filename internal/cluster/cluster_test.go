package cluster

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/netsim"
	"mittos/internal/noise"
	"mittos/internal/sim"
	"mittos/internal/ycsb"
)

// diskProfile is computed once; profiling is deterministic and shared.
var diskProfile = disk.ProfileTwin(disk.DefaultConfig(),
	42, disk.ProfilerOptions{Buckets: 32, Tries: 6, ProbeSize: 4096})

func diskNodeTemplate(mitt bool, keys int64) NodeConfig {
	return NodeConfig{
		Device:      DeviceDisk,
		DiskConfig:  disk.DefaultConfig(),
		UseCFQ:      true,
		Mitt:        mitt,
		MittOptions: core.DefaultOptions(),
		Keys:        keys,
		DiskProfile: diskProfile,
	}
}

func newTestCluster(t *testing.T, n int, mitt bool, keys int64) *Cluster {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.DefaultConfig(), sim.NewRNG(61, t.Name()+"-net"))
	return NewCluster(eng, net, n, 3, diskNodeTemplate(mitt, keys), sim.NewRNG(62, t.Name()))
}

func TestReplicasForSpreadAndStability(t *testing.T) {
	c := newTestCluster(t, 5, false, 100)
	a := c.ReplicasFor(7)
	b := c.ReplicasFor(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replica placement unstable")
		}
	}
	if len(a) != 3 {
		t.Fatalf("R = %d", len(a))
	}
	seen := map[int]bool{}
	for _, r := range a {
		if seen[r] {
			t.Fatal("duplicate replica")
		}
		seen[r] = true
	}
}

func TestBaseGetCompletes(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	s := &BaseStrategy{C: c}
	var res GetResult
	s.Get(42, func(r GetResult) { res = r })
	c.Eng.Run()
	if res.Err != nil {
		t.Fatalf("Base get: %v", res.Err)
	}
	// 2 network hops (~0.6ms) + a disk read (sequential reads can be
	// sub-millisecond; random ones several ms).
	if res.Latency < 600*time.Microsecond || res.Latency > 60*time.Millisecond {
		t.Fatalf("Base latency %v implausible", res.Latency)
	}
}

func TestMittOSFailoverOnBusyReplica(t *testing.T) {
	c := newTestCluster(t, 3, true, 10000)
	// Make node holding key 0's primary busy.
	primary := c.ReplicasFor(0)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[primary].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 8, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond) // let contention build
	s := &MittOSStrategy{C: c, Deadline: 15 * time.Millisecond}
	var res GetResult
	s.Get(0, func(r GetResult) { res = r })
	c.Eng.RunFor(2 * time.Second)
	st.Stop()
	if res.Err != nil {
		t.Fatalf("MittOS get: %v", res.Err)
	}
	if res.Tries < 2 {
		t.Fatalf("no failover happened (tries=%d) despite a saturated primary", res.Tries)
	}
	if s.Failovers == 0 {
		t.Fatal("failover counter not incremented")
	}
	if res.Latency > 30*time.Millisecond {
		t.Fatalf("MittOS failover latency %v; should dodge the busy node", res.Latency)
	}
}

func TestMittOSThirdTryDisablesDeadline(t *testing.T) {
	// With every replica saturated, the request must still complete (the
	// final try runs without a deadline) rather than erroring.
	c := newTestCluster(t, 3, true, 10000)
	var injectors []*noise.Steady
	for i := 0; i < 3; i++ {
		st := noise.NewSteady(c.Eng, c.Nodes[i].NoiseSink(), sim.NewRNG(int64(i), "noise"),
			blockio.Read, 1<<20, 4, blockio.ClassBestEffort, 4, 99, 500<<30)
		st.Start()
		injectors = append(injectors, st)
	}
	c.Eng.RunFor(100 * time.Millisecond)
	s := &MittOSStrategy{C: c, Deadline: 10 * time.Millisecond}
	var res GetResult
	done := false
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.RunFor(5 * time.Second)
	for _, st := range injectors {
		st.Stop()
	}
	if !done {
		t.Fatal("request never completed")
	}
	if res.Err != nil {
		t.Fatalf("user saw error %v; §7.2 requires the last try to succeed", res.Err)
	}
	if res.Tries != 3 {
		t.Fatalf("tries = %d, want 3", res.Tries)
	}
}

func TestMittOSWaitHintPicksLeastBusy(t *testing.T) {
	c := newTestCluster(t, 3, true, 10000)
	var injectors []*noise.Steady
	for i := 0; i < 3; i++ {
		streams := 6
		if i == 1 {
			streams = 2 // node 1 is the least busy
		}
		st := noise.NewSteady(c.Eng, c.Nodes[i].NoiseSink(), sim.NewRNG(int64(i), "noise"),
			blockio.Read, 1<<20, streams, blockio.ClassBestEffort, 4, 99, 500<<30)
		st.Start()
		injectors = append(injectors, st)
	}
	c.Eng.RunFor(100 * time.Millisecond)
	s := &MittOSStrategy{C: c, Deadline: 5 * time.Millisecond, UseWaitHint: true}
	var res GetResult
	done := false
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.RunFor(5 * time.Second)
	for _, st := range injectors {
		st.Stop()
	}
	if !done || res.Err != nil {
		t.Fatalf("wait-hint get failed: done=%v err=%v", done, res.Err)
	}
	if s.LastDitch != 1 {
		t.Fatalf("LastDitch = %d, want 1 (all replicas busy)", s.LastDitch)
	}
	if res.Tries != 4 {
		t.Fatalf("tries = %d, want 4 (3 rejections + least-busy retry)", res.Tries)
	}
}

func TestHedgedFiresOnlyWhenSlow(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	s := &HedgedStrategy{C: c, HedgeAfter: 100 * time.Millisecond}
	var res GetResult
	s.Get(7, func(r GetResult) { res = r })
	c.Eng.Run()
	if res.Err != nil || res.Tries != 1 {
		t.Fatalf("fast path hedged anyway: %+v", res)
	}
	if s.Hedges != 0 {
		t.Fatal("hedge fired under no contention")
	}
	// Now with an aggressive hedge threshold every request hedges.
	s2 := &HedgedStrategy{C: c, HedgeAfter: time.Microsecond}
	s2.Get(7, func(GetResult) {})
	c.Eng.Run()
	if s2.Hedges != 1 {
		t.Fatalf("hedge did not fire: %d", s2.Hedges)
	}
}

func TestCloneUsesTwoReplicas(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	before := uint64(0)
	for _, n := range c.Nodes {
		before += n.Served()
	}
	s := &CloneStrategy{C: c, RNG: sim.NewRNG(9, "clone")}
	var res GetResult
	s.Get(3, func(r GetResult) { res = r })
	c.Eng.Run()
	if res.Err != nil {
		t.Fatalf("clone get: %v", res.Err)
	}
	after := uint64(0)
	for _, n := range c.Nodes {
		after += n.Served()
	}
	if after-before != 2 {
		t.Fatalf("clone touched %d replicas, want 2", after-before)
	}
}

func TestTimeoutStrategyRetries(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	primary := c.ReplicasFor(0)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[primary].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 12, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)
	s := &TimeoutStrategy{C: c, TO: 15 * time.Millisecond}
	var res GetResult
	done := false
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.RunFor(3 * time.Second)
	st.Stop()
	if !done || res.Err != nil {
		t.Fatalf("timeout get: done=%v err=%v", done, res.Err)
	}
	if res.Tries < 2 {
		t.Fatalf("no retry under saturation (tries=%d)", res.Tries)
	}
	// The timeout strategy pays the full TO before reacting.
	if res.Latency < 15*time.Millisecond {
		t.Fatalf("latency %v below the timeout", res.Latency)
	}
}

func TestSnitchAvoidsSlowReplica(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	slow := c.ReplicasFor(0)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[slow].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 6, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	s := &SnitchStrategy{C: c}
	done := 0
	// Issue sequential requests; after warming up, the snitch should
	// mostly route to the fast replicas.
	var issue func(i int)
	issue = func(i int) {
		if i == 0 {
			return
		}
		s.Get(0, func(GetResult) {
			done++
			issue(i - 1)
		})
	}
	issue(30)
	c.Eng.RunFor(10 * time.Second)
	st.Stop()
	if done != 30 {
		t.Fatalf("completed %d of 30", done)
	}
	if c.Nodes[slow].Served() > 15 {
		t.Fatalf("snitch kept hammering the slow replica (%d/30)", c.Nodes[slow].Served())
	}
}

func TestClientScaleFactorWaitsForAll(t *testing.T) {
	c := newTestCluster(t, 6, false, 10000)
	wl := ycsb.New(ycsb.DefaultConfig(10000), sim.NewRNG(3, "wl"))
	cfg := DefaultClientConfig()
	cfg.ScaleFactor = 5
	cfg.Requests = 20
	cl := NewClient(c.Eng, cfg, &BaseStrategy{C: c}, wl, sim.NewRNG(4, "cl"))
	cl.Start()
	c.Eng.Run()
	if cl.Finished() != 20 {
		t.Fatalf("finished %d of 20", cl.Finished())
	}
	if cl.IOLatencies.N() != 100 {
		t.Fatalf("sub-IOs = %d, want 100", cl.IOLatencies.N())
	}
	if cl.UserLatencies.N() != 20 {
		t.Fatalf("user latencies = %d", cl.UserLatencies.N())
	}
	// A user request is the max of its fan-out: its distribution must
	// dominate the per-IO distribution.
	if cl.UserLatencies.Percentile(50) < cl.IOLatencies.Percentile(50) {
		t.Fatal("scale-factor amplification missing")
	}
}

func TestCPUPoolQueuesBeyondCores(t *testing.T) {
	eng := sim.NewEngine()
	p := NewCPUPool(eng, 2)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		p.Run(10*time.Millisecond, func() { order = append(order, i) })
	}
	if p.Busy() != 2 || p.Queued() != 2 {
		t.Fatalf("busy=%d queued=%d, want 2/2", p.Busy(), p.Queued())
	}
	eng.Run()
	if len(order) != 4 {
		t.Fatalf("ran %d tasks", len(order))
	}
	if eng.Now() != sim.Time(20*time.Millisecond) {
		t.Fatalf("4 tasks × 10ms on 2 cores took %v, want 20ms", eng.Now())
	}
}

func TestNodeRejectionCounter(t *testing.T) {
	c := newTestCluster(t, 3, true, 10000)
	primary := c.ReplicasFor(0)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[primary].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 6, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)
	s := &MittOSStrategy{C: c, Deadline: 10 * time.Millisecond}
	for i := 0; i < 5; i++ {
		s.Get(0, func(GetResult) {})
	}
	c.Eng.RunFor(3 * time.Second)
	st.Stop()
	if c.Nodes[primary].Rejected() == 0 {
		t.Fatal("busy node never rejected")
	}
}

func TestInvalidClusterPanics(t *testing.T) {
	for _, fn := range []func(){
		func() {
			NewCluster(sim.NewEngine(), nil, 0, 1, NodeConfig{}, sim.NewRNG(1, "x"))
		},
		func() {
			NewCluster(sim.NewEngine(), nil, 2, 3, NodeConfig{}, sim.NewRNG(1, "x"))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
