package cluster

import (
	"time"

	"mittos/internal/metrics"
	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// ArrivalProcess selects how a client spaces its request arrivals (open
// loop) or think times (closed loop).
type ArrivalProcess int

// Arrival processes.
const (
	// ArrivalFixed issues one request per Interval with optional ±JitterFrac
	// uniform jitter — the original §7.2 client.
	ArrivalFixed ArrivalProcess = iota
	// ArrivalPoisson draws exponentially distributed gaps with mean Interval
	// (a Poisson arrival process): the memoryless open-loop model the
	// loadsweep experiment offers load with, where burstiness is unbounded
	// rather than capped by the jitter window.
	ArrivalPoisson
)

// InflightGauge counts user requests currently outstanding across the
// clients sharing it, with a high-water mark. It is the load sweep's
// overload diagnostic: an open-loop fleet pushed past saturation grows the
// mark without bound, while a fast-rejecting strategy keeps it flat.
type InflightGauge struct {
	Cur int
	Max int
}

func (g *InflightGauge) inc() {
	if g == nil {
		return
	}
	g.Cur++
	if g.Cur > g.Max {
		g.Max = g.Cur
	}
}

func (g *InflightGauge) dec() {
	if g == nil {
		return
	}
	g.Cur--
}

// ClientConfig shapes one YCSB client.
type ClientConfig struct {
	// Interval is the open-loop period between user requests.
	Interval time.Duration
	// JitterFrac randomizes each ArrivalFixed gap by ±frac to avoid
	// phase-locking a fleet of clients. Must be in [0, 1].
	JitterFrac float64
	// Arrival selects the inter-arrival process: ArrivalFixed (default)
	// keeps the jittered fixed interval, ArrivalPoisson draws exponential
	// gaps with mean Interval.
	Arrival ArrivalProcess
	// ScaleFactor is the number of parallel get() sub-requests per user
	// request; the user waits for all of them (§7.3).
	ScaleFactor int
	// Requests caps how many user requests this client issues (0 = until
	// the engine stops scheduling it).
	Requests int
	// Closed switches to closed-loop issuing: the next request goes out
	// Interval after the previous one COMPLETES (the §7.5 client model,
	// where "only 6 threads are busy all the time").
	Closed bool
	// CORecord makes a closed-loop client also record every latency into
	// UserLatenciesCO with HdrHistogram-style coordinated-omission
	// correction: synthetic samples stand in for the requests the stalled
	// loop never issued. Open-loop clients are CO-free by construction
	// (latency runs from the intended arrival tick) and ignore this.
	CORecord bool
	// SLO, when positive, classifies every finished user request as meeting
	// or missing the deadline (SLOMet/SLOMissed, mirrored into the metrics
	// registry when Rec is set) — the load sweep's attainment metric.
	SLO time.Duration
	// Rec, when non-nil, mirrors the SLO verdicts into the metrics registry
	// (RNode slo-met / slo-missed). The nil default records nothing.
	Rec *metrics.Recorder
	// Inflight, when non-nil, is a gauge shared across a fleet of clients
	// tracking concurrently outstanding user requests.
	Inflight *InflightGauge
	// ExpectedOps pre-sizes the latency samples to the leg's expected user
	// request count so steady-state recording never reallocates (0 keeps a
	// small default).
	ExpectedOps int
	// Bufs, when non-nil, is a shared sample-buffer pool the latency
	// samples draw their backing arrays from. An experiment arena passes
	// one pool across legs and steals the buffers back (ReclaimBufs) at
	// teardown, so per-client latency recording stops costing a fresh
	// ExpectedOps-sized array every leg. Nil allocates normally.
	Bufs *stats.BufPool
}

// DefaultClientConfig matches the §7.2 runs: one get per user request.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{Interval: 20 * time.Millisecond, JitterFrac: 0.2, ScaleFactor: 1}
}

// Client drives a strategy with a YCSB workload and records latencies.
type Client struct {
	eng   *sim.Engine
	cfg   ClientConfig
	strat Strategy
	wl    *ycsb.Workload
	rng   *sim.RNG

	// putStrat, when set via SetPutStrategy, switches the client to mixed
	// read/write issuing: each tick draws an op from the workload mix and
	// writes go through the put strategy.
	putStrat PutStrategy
	// rmw makes every write a read-modify-write (YCSB workload F): the get
	// completes first, then the put is issued, and the user latency covers
	// both legs.
	rmw bool

	// UserLatencies holds per-user-request completion times (max over the
	// scale-factor fan-out) — the Figure 6 metric.
	UserLatencies *stats.Sample
	// IOLatencies holds per-get completion times — the Figure 5 metric.
	IOLatencies *stats.Sample
	// PutLatencies holds per-put quorum-ack times (empty for read-only
	// clients).
	PutLatencies *stats.Sample
	// UserLatenciesCO is the coordinated-omission-corrected twin of
	// UserLatencies (nil unless Closed && CORecord).
	UserLatenciesCO *stats.Sample

	issued    int
	finished  int
	errors    int
	sloMet    int
	sloMissed int
	stopped   bool
	// nextAt is the intended arrival instant of the scheduled tick: the
	// CO-free start time every request's latency is measured from.
	nextAt sim.Time

	tickFn   func()     // pre-bound issue timer
	userFree []*userReq // pooled per-user-request contexts
}

// userReq is one in-flight user request: the scale-factor fan-out shares a
// single pooled context (all sub-gets are issued at the same virtual
// instant, so one start time covers both metrics).
type userReq struct {
	cl        *Client
	start     sim.Time
	remaining int
	failed    bool
	key       int64           // RMW carry: the key the follow-up put writes
	fn        func(GetResult) // pre-bound u.done
	putFn     func(PutResult) // pre-bound u.putDone
	rmwFn     func(GetResult) // pre-bound u.rmwGet: get leg of a workload-F op
}

func (u *userReq) done(res GetResult) {
	cl := u.cl
	cl.IOLatencies.Add(cl.eng.Now().Sub(u.start))
	if res.Err != nil {
		u.failed = true
	}
	u.remaining--
	if u.remaining > 0 {
		return
	}
	u.finish()
}

func (u *userReq) putDone(res PutResult) {
	cl := u.cl
	cl.PutLatencies.Add(cl.eng.Now().Sub(u.start))
	if res.Err != nil {
		u.failed = true
	}
	u.remaining--
	if u.remaining > 0 {
		return
	}
	u.finish()
}

// rmwGet is the read leg of a read-modify-write: record the get like any
// sub-get, then chain the put on the same key without releasing the context.
// A failed read short-circuits the chain — there is nothing to modify, so
// issuing the put anyway would burn a quorum write and record a bogus put
// latency for a user op that already failed.
func (u *userReq) rmwGet(res GetResult) {
	cl := u.cl
	cl.IOLatencies.Add(cl.eng.Now().Sub(u.start))
	if res.Err != nil {
		u.failed = true
		u.remaining--
		if u.remaining == 0 {
			u.finish()
		}
		return
	}
	cl.putStrat.Put(u.key, u.putFn)
}

func (u *userReq) finish() {
	cl := u.cl
	cl.finished++
	if u.failed {
		cl.errors++
	}
	lat := cl.eng.Now().Sub(u.start)
	cl.UserLatencies.Add(lat)
	if cl.UserLatenciesCO != nil {
		cl.UserLatenciesCO.AddCO(lat, cl.cfg.Interval)
	}
	if cl.cfg.SLO > 0 {
		if lat <= cl.cfg.SLO {
			cl.sloMet++
			cl.cfg.Rec.Incr(metrics.RNode, metrics.CSLOMet)
		} else {
			cl.sloMissed++
			cl.cfg.Rec.Incr(metrics.RNode, metrics.CSLOMissed)
		}
	}
	cl.cfg.Inflight.dec()
	cl.userFree = append(cl.userFree, u)
	if cl.cfg.Closed {
		cl.scheduleNext()
	}
}

// NewClient builds a client.
func NewClient(eng *sim.Engine, cfg ClientConfig, strat Strategy,
	wl *ycsb.Workload, rng *sim.RNG) *Client {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 1
	}
	if cfg.Interval <= 0 {
		panic("cluster: client Interval must be positive")
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac > 1 {
		panic("cluster: client JitterFrac must be in [0, 1]")
	}
	ops := cfg.ExpectedOps
	if ops <= 0 {
		ops = 4096
	}
	cl := &Client{
		eng: eng, cfg: cfg, strat: strat, wl: wl, rng: rng,
		UserLatencies: newSample(cfg.Bufs, ops),
		IOLatencies:   newSample(cfg.Bufs, ops*cfg.ScaleFactor),
		// Read-only clients never record a put; SetPutStrategy sizes this
		// for real when the client actually issues writes.
		PutLatencies: stats.NewSample(0),
	}
	if cfg.Closed && cfg.CORecord {
		// Sized for the raw count; the synthetic fills a rare stall adds
		// grow the buffer, which is off the steady-state path.
		cl.UserLatenciesCO = newSample(cfg.Bufs, ops)
	}
	cl.tickFn = cl.tick
	return cl
}

// newSample draws a sample's backing buffer from the shared pool when one is
// configured, else allocates it.
func newSample(bufs *stats.BufPool, capacity int) *stats.Sample {
	if bufs != nil {
		return stats.NewSampleBuf(bufs.Get(capacity))
	}
	return stats.NewSample(capacity)
}

// SetPutStrategy switches the client to mixed issuing: each tick draws
// Workload.Next and routes writes through ps. rmw turns writes into
// read-modify-writes (YCSB F); the per-request context carries one RMW key,
// so rmw requires ScaleFactor 1. Must be called before Start.
func (cl *Client) SetPutStrategy(ps PutStrategy, rmw bool) {
	if rmw && cl.cfg.ScaleFactor != 1 {
		panic("cluster: RMW clients require ScaleFactor 1")
	}
	cl.putStrat = ps
	cl.rmw = rmw
	// Now that the client is known to write, give PutLatencies its real
	// pre-sizing from the expected op count (the put share is bounded by the
	// total user ops), pooled like the other two samples.
	ops := cl.cfg.ExpectedOps
	if ops <= 0 {
		ops = 4096
	}
	cl.PutLatencies = newSample(cl.cfg.Bufs, ops)
}

// ReclaimBufs hands the samples' backing buffers back to the shared pool.
// Call only at leg teardown, after every consumer has merged or copied the
// latencies it needs: the samples are empty afterwards. No-op without a
// configured pool.
func (cl *Client) ReclaimBufs() {
	if cl.cfg.Bufs == nil {
		return
	}
	cl.cfg.Bufs.Put(cl.UserLatencies.TakeBuf())
	cl.cfg.Bufs.Put(cl.IOLatencies.TakeBuf())
	cl.cfg.Bufs.Put(cl.PutLatencies.TakeBuf())
	if cl.UserLatenciesCO != nil {
		cl.cfg.Bufs.Put(cl.UserLatenciesCO.TakeBuf())
	}
}

// Start begins issuing requests.
func (cl *Client) Start() { cl.scheduleNext() }

// Stop ceases new requests (in-flight ones still complete).
func (cl *Client) Stop() { cl.stopped = true }

// Issued and Finished report progress; Errors counts failed user requests.
func (cl *Client) Issued() int { return cl.issued }

// Finished reports completed user requests.
func (cl *Client) Finished() int { return cl.finished }

// Errors counts user requests that ended in an error.
func (cl *Client) Errors() int { return cl.errors }

// SLOMet counts finished user requests at or under cfg.SLO (zero when no
// SLO is configured).
func (cl *Client) SLOMet() int { return cl.sloMet }

// SLOMissed counts finished user requests over cfg.SLO.
func (cl *Client) SLOMissed() int { return cl.sloMissed }

func (cl *Client) scheduleNext() {
	if cl.stopped || (cl.cfg.Requests > 0 && cl.issued >= cl.cfg.Requests) {
		return
	}
	var gap time.Duration
	switch cl.cfg.Arrival {
	case ArrivalPoisson:
		gap = cl.rng.Exp(cl.cfg.Interval)
	default:
		gap = cl.cfg.Interval
		if cl.cfg.JitterFrac > 0 {
			span := time.Duration(float64(gap) * cl.cfg.JitterFrac)
			gap = gap - span + cl.rng.Duration(2*span)
		}
	}
	// JitterFrac = 1 can draw a zero gap and Exp can round to one: floor at
	// a tick so the client never re-fires at the same instant.
	if gap <= 0 {
		gap = time.Nanosecond
	}
	cl.nextAt = cl.eng.Now().Add(gap)
	cl.eng.After(gap, cl.tickFn)
}

func (cl *Client) tick() {
	cl.issueOne()
	if !cl.cfg.Closed {
		cl.scheduleNext()
	}
}

func (cl *Client) issueOne() {
	cl.issued++
	var u *userReq
	if n := len(cl.userFree); n > 0 {
		u = cl.userFree[n-1]
		cl.userFree = cl.userFree[:n-1]
	} else {
		u = &userReq{cl: cl}
		u.fn = u.done
		u.putFn = u.putDone
		u.rmwFn = u.rmwGet
	}
	// The latency clock starts at the *intended* arrival tick, not the
	// moment the loop got around to issuing — the coordinated-omission-free
	// convention. The engine fires ticks exactly when scheduled, so the two
	// coincide in virtual time; the contract is what matters.
	u.start = cl.nextAt
	u.remaining = cl.cfg.ScaleFactor
	u.failed = false
	cl.cfg.Inflight.inc()
	if cl.putStrat == nil {
		// Read-only clients draw keys exactly as before the mixed path
		// existed, keeping their RNG streams golden-stable.
		for i := 0; i < cl.cfg.ScaleFactor; i++ {
			cl.strat.Get(cl.wl.NextKey(), u.fn)
		}
		return
	}
	for i := 0; i < cl.cfg.ScaleFactor; i++ {
		op := cl.wl.Next()
		switch {
		case op.Kind == ycsb.OpRead:
			cl.strat.Get(op.Key, u.fn)
		case cl.rmw:
			// Workload F: the write is a get→put chain on one key; the
			// user leg stays outstanding until the put's quorum ack.
			u.key = op.Key
			cl.strat.Get(op.Key, u.rmwFn)
		default:
			cl.putStrat.Put(op.Key, u.putFn)
		}
	}
}
