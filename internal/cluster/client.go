package cluster

import (
	"time"

	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// ClientConfig shapes one YCSB client.
type ClientConfig struct {
	// Interval is the open-loop period between user requests.
	Interval time.Duration
	// JitterFrac randomizes each gap by ±frac to avoid phase-locking a
	// fleet of clients.
	JitterFrac float64
	// ScaleFactor is the number of parallel get() sub-requests per user
	// request; the user waits for all of them (§7.3).
	ScaleFactor int
	// Requests caps how many user requests this client issues (0 = until
	// the engine stops scheduling it).
	Requests int
	// Closed switches to closed-loop issuing: the next request goes out
	// Interval after the previous one COMPLETES (the §7.5 client model,
	// where "only 6 threads are busy all the time").
	Closed bool
}

// DefaultClientConfig matches the §7.2 runs: one get per user request.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{Interval: 20 * time.Millisecond, JitterFrac: 0.2, ScaleFactor: 1}
}

// Client drives a strategy with a YCSB workload and records latencies.
type Client struct {
	eng   *sim.Engine
	cfg   ClientConfig
	strat Strategy
	wl    *ycsb.Workload
	rng   *sim.RNG

	// UserLatencies holds per-user-request completion times (max over the
	// scale-factor fan-out) — the Figure 6 metric.
	UserLatencies *stats.Sample
	// IOLatencies holds per-get completion times — the Figure 5 metric.
	IOLatencies *stats.Sample

	issued   int
	finished int
	errors   int
	stopped  bool
}

// NewClient builds a client.
func NewClient(eng *sim.Engine, cfg ClientConfig, strat Strategy,
	wl *ycsb.Workload, rng *sim.RNG) *Client {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 1
	}
	if cfg.Interval <= 0 {
		panic("cluster: client Interval must be positive")
	}
	return &Client{
		eng: eng, cfg: cfg, strat: strat, wl: wl, rng: rng,
		UserLatencies: stats.NewSample(4096),
		IOLatencies:   stats.NewSample(4096),
	}
}

// Start begins issuing requests.
func (cl *Client) Start() { cl.scheduleNext() }

// Stop ceases new requests (in-flight ones still complete).
func (cl *Client) Stop() { cl.stopped = true }

// Issued and Finished report progress; Errors counts failed user requests.
func (cl *Client) Issued() int { return cl.issued }

// Finished reports completed user requests.
func (cl *Client) Finished() int { return cl.finished }

// Errors counts user requests that ended in an error.
func (cl *Client) Errors() int { return cl.errors }

func (cl *Client) scheduleNext() {
	if cl.stopped || (cl.cfg.Requests > 0 && cl.issued >= cl.cfg.Requests) {
		return
	}
	gap := cl.cfg.Interval
	if cl.cfg.JitterFrac > 0 {
		span := time.Duration(float64(gap) * cl.cfg.JitterFrac)
		gap = gap - span + cl.rng.Duration(2*span)
	}
	cl.eng.After(gap, func() {
		cl.issueOne()
		if !cl.cfg.Closed {
			cl.scheduleNext()
		}
	})
}

func (cl *Client) issueOne() {
	cl.issued++
	start := cl.eng.Now()
	remaining := cl.cfg.ScaleFactor
	failed := false
	for i := 0; i < cl.cfg.ScaleFactor; i++ {
		key := cl.wl.NextKey()
		subStart := cl.eng.Now()
		cl.strat.Get(key, func(res GetResult) {
			cl.IOLatencies.Add(cl.eng.Now().Sub(subStart))
			if res.Err != nil {
				failed = true
			}
			remaining--
			if remaining == 0 {
				cl.finished++
				if failed {
					cl.errors++
				}
				cl.UserLatencies.Add(cl.eng.Now().Sub(start))
				if cl.cfg.Closed {
					cl.scheduleNext()
				}
			}
		})
	}
}
