package cluster

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/noise"
	"mittos/internal/sim"
)

func TestConsistentFailoverToFreshReplica(t *testing.T) {
	c := newTestCluster(t, 3, true, 10000)
	primary := c.ReplicasFor(0)[0]
	// All replicas hold version 1 of key 0 (replication caught up).
	for _, idx := range c.ReplicasFor(0) {
		c.Nodes[idx].Store.ApplyReplicated(0, 1)
	}
	st := noise.NewSteady(c.Eng, c.Nodes[primary].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 8, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)
	s := &ConsistentMittOSStrategy{C: c, Deadline: 15 * time.Millisecond}
	// Establish the session at version 1.
	s.session = map[int64]uint64{0: 1}
	var res GetResult
	s.Get(0, func(r GetResult) { res = r })
	c.Eng.RunFor(2 * time.Second)
	st.Stop()
	c.Eng.RunFor(3 * time.Second)
	if res.Err != nil {
		t.Fatalf("get: %v", res.Err)
	}
	if res.Tries < 2 || s.Failovers == 0 {
		t.Fatalf("no failover (tries=%d)", res.Tries)
	}
	if s.ForcedToWait != 0 {
		t.Fatal("waited despite fresh replicas being available")
	}
	if res.Latency > 30*time.Millisecond {
		t.Fatalf("failover latency %v", res.Latency)
	}
}

func TestConsistentWaitsWhenReplicasStale(t *testing.T) {
	c := newTestCluster(t, 3, true, 10000)
	replicas := c.ReplicasFor(0)
	primary := replicas[0]
	// Only the (busy) primary has applied version 5; the others lag.
	c.Nodes[primary].Store.ApplyReplicated(0, 5)
	st := noise.NewSteady(c.Eng, c.Nodes[primary].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 8, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)
	s := &ConsistentMittOSStrategy{C: c, Deadline: 15 * time.Millisecond}
	s.session = map[int64]uint64{0: 5}
	var res GetResult
	done := false
	s.Get(0, func(r GetResult) { res = r; done = true })
	c.Eng.RunFor(5 * time.Second)
	st.Stop()
	c.Eng.RunFor(5 * time.Second)
	if !done || res.Err != nil {
		t.Fatalf("get: done=%v err=%v", done, res.Err)
	}
	if s.StaleSkips == 0 {
		t.Fatal("stale replicas not skipped")
	}
	if s.ForcedToWait == 0 {
		t.Fatal("should have waited on the busy-but-fresh primary")
	}
	// The price of monotonic reads: this request DID wait.
	if res.Latency < 15*time.Millisecond {
		t.Fatalf("latency %v; the conservative path must pay the wait", res.Latency)
	}
}

func TestConsistentSessionAdvances(t *testing.T) {
	c := newTestCluster(t, 3, true, 1000)
	primary := c.ReplicasFor(0)[0]
	c.Nodes[primary].Store.ApplyReplicated(0, 3)
	s := &ConsistentMittOSStrategy{C: c, Deadline: 50 * time.Millisecond}
	var res GetResult
	s.Get(0, func(r GetResult) { res = r })
	c.Eng.Run()
	if res.Err != nil {
		t.Fatalf("get: %v", res.Err)
	}
	if s.session[0] != 3 {
		t.Fatalf("session version = %d, want 3", s.session[0])
	}
}
