package cluster

import (
	"errors"
	"math"
	"time"

	"mittos/internal/core"
	"mittos/internal/sim"
)

// wasted reports whether a late (already-superseded) reply represents an IO
// the cluster actually executed and threw away. Fast refusals — EBUSY and
// node-down — never reached a device, so they are not waste.
func wasted(err error) bool {
	return !core.IsBusy(err) && !errors.Is(err, ErrNodeDown)
}

// GetResult reports one finished user-level get.
type GetResult struct {
	Latency time.Duration
	// Tries is how many replica attempts the winning path made.
	Tries int
	// Err is non-nil only when every path failed (e.g. all replicas
	// returned EBUSY and error fallback was disabled).
	Err error
}

// Strategy issues one client get against the cluster and reports the
// user-observed completion. Implementations are the paper's comparison
// points (§7.2).
type Strategy interface {
	Name() string
	Get(key int64, onDone func(GetResult))
}

// replicaCall sends a get to one node over the network and hands back the
// result; the shared plumbing under every strategy.
func replicaCall(c *Cluster, node int, key int64, deadline time.Duration, onDone func(error)) {
	c.ReplicaCall(node, key, deadline, onDone)
}

// BaseStrategy is vanilla MongoDB on vanilla Linux: ask the primary
// replica, wait however long it takes.
type BaseStrategy struct {
	C *Cluster
}

// Name implements Strategy.
func (s *BaseStrategy) Name() string { return "Base" }

// Get implements Strategy.
func (s *BaseStrategy) Get(key int64, onDone func(GetResult)) {
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	replicaCall(s.C, replicas[0], key, 0, func(err error) {
		onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: 1, Err: err})
	})
}

// TimeoutStrategy is the "AppTO" comparison: cancel and retry on the next
// replica after TO, with the timeout disabled on the final try so users do
// not see read errors (§7.2). The timed-out attempt is revoked: if its IO is
// still in the replica's scheduler queues the cancel drops it; an IO already
// on the device runs to completion and is discarded (counted in WastedIOs).
// A replica that refuses because it crashed triggers an immediate retry on
// the next one instead of burning the full timeout.
type TimeoutStrategy struct {
	C  *Cluster
	TO time.Duration

	Retries uint64
	// WastedIOs counts abandoned attempts whose IO the cluster executed
	// anyway — the revocation arrived too late to drop it from a queue.
	WastedIOs uint64
}

// Name implements Strategy.
func (s *TimeoutStrategy) Name() string { return "AppTO" }

// Get implements Strategy.
func (s *TimeoutStrategy) Get(key int64, onDone func(GetResult)) {
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	var attempt func(i int)
	attempt = func(i int) {
		last := i == len(replicas)-1
		done := false
		var h *ServeHandle
		var timer *sim.Event
		if !last {
			timer = s.C.Eng.Schedule(s.TO, func() {
				if done {
					return
				}
				done = true
				s.Retries++
				// Abandon the attempt AND revoke its IO (the fix: the old
				// code retried without cancelling, leaving the stale IO to
				// compete with every later attempt for the device).
				if h != nil {
					h.Cancel()
					h.Done()
					h = nil
				}
				attempt(i + 1)
			})
		}
		s.C.Net.Send(func() {
			if done {
				return // timed out before the request hop even landed
			}
			h = s.C.Nodes[replicas[i]].ServeGetCancelable(key, 0, func(err error) {
				s.C.Net.Send(func() {
					if done {
						if wasted(err) {
							s.WastedIOs++ // revoked too late: the IO ran
						}
						return
					}
					done = true
					if timer != nil {
						timer.Cancel()
					}
					if h != nil {
						h.Done()
						h = nil
					}
					if errors.Is(err, ErrNodeDown) && !last {
						// Crashed replica: its refusal came back in one
						// RTT; retry now rather than waiting out TO.
						s.Retries++
						attempt(i + 1)
						return
					}
					onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: i + 1, Err: err})
				})
			})
		})
	}
	attempt(0)
}

// CloneStrategy duplicates every request to two random replicas and takes
// the first response — "this proactive speculation however doubles the IO
// intensity" (§1).
type CloneStrategy struct {
	C   *Cluster
	RNG *sim.RNG

	// WastedIOs counts losing copies whose IO the cluster executed anyway.
	WastedIOs uint64

	live []int // selection scratch, reused across gets
}

// Name implements Strategy.
func (s *CloneStrategy) Name() string { return "Clone" }

// Get implements Strategy.
func (s *CloneStrategy) Get(key int64, onDone func(GetResult)) {
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	// Select among live replicas only; cloning to a crashed node would
	// just burn an RTT on a refusal. With every node up this filter is
	// the identity and the random draws are unchanged.
	s.live = s.live[:0]
	for _, r := range replicas {
		if !s.C.Nodes[r].Down() {
			s.live = append(s.live, r)
		}
	}
	if len(s.live) == 0 {
		// Whole replica set down: fail fast via the primary's refusal.
		replicaCall(s.C, replicas[0], key, 0, func(err error) {
			onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: 1, Err: err})
		})
		return
	}
	if len(s.live) == 1 {
		// One survivor: a clone pair is impossible (the old code's
		// RNG.Intn(0) panic); send a single copy.
		replicaCall(s.C, s.live[0], key, 0, func(err error) {
			onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: 1, Err: err})
		})
		return
	}
	// Two distinct random replicas out of the live choices.
	i := s.RNG.Intn(len(s.live))
	j := s.RNG.Intn(len(s.live) - 1)
	if j >= i {
		j++
	}
	won := false
	pending := 2
	reply := func(err error) {
		if won {
			if wasted(err) {
				s.WastedIOs++ // the losing copy's IO ran to completion
			}
			return
		}
		pending--
		if errors.Is(err, ErrNodeDown) && pending > 0 {
			return // that node crashed mid-flight; the sibling decides
		}
		won = true
		onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: 2, Err: err})
	}
	replicaCall(s.C, s.live[i], key, 0, reply)
	replicaCall(s.C, s.live[j], key, 0, reply)
}

// HedgedStrategy sends a secondary request only after the first has been
// outstanding longer than the expected p95 latency (Dean & Barroso;
// §7.2). Neither request is cancelled; the loser's IO is wasted work
// (WastedIOs). A primary that refuses because it crashed fails over to the
// secondary immediately instead of waiting out the hedge delay.
type HedgedStrategy struct {
	C          *Cluster
	HedgeAfter time.Duration

	Hedges uint64
	// WastedIOs counts losing copies whose IO the cluster executed anyway.
	WastedIOs uint64
}

// Name implements Strategy.
func (s *HedgedStrategy) Name() string { return "Hedged" }

// Get implements Strategy.
func (s *HedgedStrategy) Get(key int64, onDone func(GetResult)) {
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	won := false
	sent := 1    // copies issued so far; the winner reports this as Tries
	pending := 1 // copies still awaiting a reply
	var timer *sim.Event
	var reply func(error)
	hedge := func() {
		sent = 2
		pending++
		replicaCall(s.C, replicas[1], key, 0, reply)
	}
	reply = func(err error) {
		if won {
			if wasted(err) {
				s.WastedIOs++ // the losing copy's IO ran to completion
			}
			return
		}
		pending--
		if errors.Is(err, ErrNodeDown) {
			if sent == 1 {
				// Primary crashed: don't wait out HedgeAfter, go to the
				// secondary now. The timer must not fire a third copy.
				timer.Cancel()
				hedge()
				return
			}
			if pending > 0 {
				return // the other copy may still answer
			}
		}
		won = true
		timer.Cancel()
		// The fix: a primary that completes after the hedge fired used to
		// report Tries: 1, hiding the duplicated IO from the per-try
		// accounting. The winner reports how many copies were issued.
		onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: sent, Err: err})
	}
	timer = s.C.Eng.Schedule(s.HedgeAfter, func() {
		if won || sent > 1 {
			return
		}
		s.Hedges++
		hedge()
	})
	replicaCall(s.C, replicas[0], key, 0, reply)
}

// SnitchStrategy keeps an EWMA of each replica's recent latency and always
// asks the currently-fastest one — Cassandra's dynamic snitch (§7.8.3).
type SnitchStrategy struct {
	C *Cluster
	// Alpha is the EWMA weight of new samples.
	Alpha float64

	ewma map[int]float64
}

// Name implements Strategy.
func (s *SnitchStrategy) Name() string { return "Snitch" }

// Get implements Strategy.
func (s *SnitchStrategy) Get(key int64, onDone func(GetResult)) {
	if s.ewma == nil {
		s.ewma = make(map[int]float64)
	}
	if s.Alpha <= 0 {
		s.Alpha = 0.3
	}
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	best := replicas[0]
	bestScore := math.MaxFloat64
	for _, r := range replicas {
		if s.C.Nodes[r].Down() {
			continue // a crashed replica's fast refusals would look "fast"
		}
		score, seen := s.ewma[r]
		if !seen {
			score = 0 // explore unknown replicas first
		}
		if score < bestScore {
			best, bestScore = r, score
		}
	}
	replicaCall(s.C, best, key, 0, func(err error) {
		lat := s.C.Eng.Now().Sub(start)
		prev, seen := s.ewma[best]
		if !seen {
			prev = float64(lat)
		}
		s.ewma[best] = prev*(1-s.Alpha) + float64(lat)*s.Alpha
		onDone(GetResult{Latency: lat, Tries: 1, Err: err})
	})
}

// C3Strategy implements C3's replica ranking (Suresh et al., NSDI'15): an
// EWMA of response latencies plus a cubic penalty on the server-reported
// queue size, both piggybacked on responses. That feedback loop is exactly
// why the paper finds C3 helpless against sub-second burstiness (§7.8.3):
// the queue-size estimate a client holds is as old as the last response it
// received from that replica, so a burst that arrives and leaves within a
// second is never observed in time.
type C3Strategy struct {
	C     *Cluster
	Alpha float64

	lat   map[int]float64  // EWMA response latency per replica
	qEst  map[int]float64  // server-reported queue size (stale feedback)
	qAt   map[int]sim.Time // when that feedback was received
	out   map[int]int      // client-local concurrency compensation
	decay time.Duration    // feedback aging constant (C3's rate control)
}

// Name implements Strategy.
func (s *C3Strategy) Name() string { return "C3" }

// Get implements Strategy.
func (s *C3Strategy) Get(key int64, onDone func(GetResult)) {
	if s.lat == nil {
		s.lat = make(map[int]float64)
		s.qEst = make(map[int]float64)
		s.qAt = make(map[int]sim.Time)
		s.out = make(map[int]int)
	}
	if s.Alpha <= 0 {
		s.Alpha = 0.3
	}
	if s.decay <= 0 {
		s.decay = 2 * time.Second
	}
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	best := replicas[0]
	bestScore := math.MaxFloat64
	for _, r := range replicas {
		if s.C.Nodes[r].Down() {
			continue // crashed replicas drop out of the ranking
		}
		l := s.lat[r]
		// C3's concurrency-compensated queue estimate: the stale
		// server-reported depth (aged — C3's rate control lets shunned
		// replicas be retried after a while) plus our own outstanding.
		age := float64(start.Sub(s.qAt[r])) / float64(s.decay)
		stale := s.qEst[r] / (1 + age)
		q := stale + float64(s.out[r]) + 1
		score := l * q * q * q // the cubic queue penalty
		if score < bestScore {
			best, bestScore = r, score
		}
	}
	s.out[best]++
	node := s.C.Nodes[best]
	s.C.Net.Send(func() {
		node.ServeGet(key, 0, func(err error) {
			// The response piggybacks the server's queue depth *now* —
			// by the time the client reads it, it is one hop stale, and
			// it only refreshes when this replica is asked again.
			reported := float64(node.OutstandingIOs())
			s.C.Net.Send(func() {
				s.out[best]--
				s.qEst[best] = reported
				s.qAt[best] = s.C.Eng.Now()
				lat := s.C.Eng.Now().Sub(start)
				prev, seen := s.lat[best]
				if !seen {
					prev = float64(lat)
				}
				s.lat[best] = prev*(1-s.Alpha) + float64(lat)*s.Alpha
				onDone(GetResult{Latency: lat, Tries: 1, Err: err})
			})
		})
	})
}

// MittOSStrategy is the paper's contribution at the client: send with the
// deadline SLO, failover instantly on EBUSY — or on a crashed replica's
// refusal, which is just as fast — and disable the deadline on the final
// try so the user never sees an error (§5). With UseWaitHint the
// §7.8.1/§8.1 extension kicks in: when every replica rejected, the 4th try
// targets the one that predicted the shortest wait.
type MittOSStrategy struct {
	C        *Cluster
	Deadline time.Duration
	// UseWaitHint enables the least-busy 4th retry extension.
	UseWaitHint bool
	// RetryOverhead models the application's failover path cost. The
	// paper's exceptionless path makes this ~0; C++ exception unwinding
	// would add 200µs (§5) — kept as an ablation knob.
	RetryOverhead time.Duration

	Failovers uint64
	LastDitch uint64
}

// Name implements Strategy.
func (s *MittOSStrategy) Name() string { return "MittOS" }

// Get implements Strategy.
func (s *MittOSStrategy) Get(key int64, onDone func(GetResult)) {
	start := s.C.Eng.Now()
	replicas := s.C.ReplicasFor(key)
	waits := make([]time.Duration, len(replicas))
	var attempt func(i int)
	attempt = func(i int) {
		last := i == len(replicas)-1
		deadline := s.Deadline
		if last && !s.UseWaitHint {
			deadline = 0 // 3rd try disables the deadline (§5)
		}
		replicaCall(s.C, replicas[i], key, deadline, func(err error) {
			down := errors.Is(err, ErrNodeDown)
			if core.IsBusy(err) || down {
				if be, ok := err.(*core.BusyError); ok {
					waits[i] = be.PredictedWait
				} else if down {
					// A crashed replica is "busy forever": never the
					// least-busy pick below.
					waits[i] = time.Duration(math.MaxInt64)
				}
				s.Failovers++
				next := func() {
					if !last {
						attempt(i + 1)
						return
					}
					if down && !s.UseWaitHint {
						// The deadline was already disabled on this final
						// try; a crash leaves nothing to fail over to.
						onDone(GetResult{Latency: s.C.Eng.Now().Sub(start),
							Tries: i + 1, Err: err})
						return
					}
					// All replicas rejected under the wait-hint
					// extension: go to the least busy one with the
					// deadline disabled, skipping crashed nodes.
					s.LastDitch++
					best := -1
					for j := range waits {
						if s.C.Nodes[replicas[j]].Down() {
							continue
						}
						if best < 0 || waits[j] < waits[best] {
							best = j
						}
					}
					if best < 0 {
						// The whole replica set is down.
						onDone(GetResult{Latency: s.C.Eng.Now().Sub(start),
							Tries: len(replicas), Err: err})
						return
					}
					replicaCall(s.C, replicas[best], key, 0, func(err error) {
						onDone(GetResult{Latency: s.C.Eng.Now().Sub(start),
							Tries: len(replicas) + 1, Err: err})
					})
				}
				if s.RetryOverhead > 0 {
					s.C.Eng.After(s.RetryOverhead, next)
				} else {
					next()
				}
				return
			}
			onDone(GetResult{Latency: s.C.Eng.Now().Sub(start), Tries: i + 1, Err: err})
		})
	}
	attempt(0)
}
