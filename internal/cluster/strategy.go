package cluster

import (
	"errors"
	"math"
	"time"

	"mittos/internal/core"
	"mittos/internal/sim"
)

// wasted reports whether a late (already-superseded) reply represents an IO
// the cluster actually executed and threw away. Fast refusals — EBUSY,
// node-down, and revoked-before-dispatch — never reached a device, so they
// are not waste.
func wasted(err error) bool {
	return !core.IsBusy(err) && !errors.Is(err, ErrNodeDown) && !errors.Is(err, ErrRevoked)
}

// GetResult reports one finished user-level get.
type GetResult struct {
	Latency time.Duration
	// Tries is how many replica attempts the winning path made.
	Tries int
	// Err is non-nil only when every path failed (e.g. all replicas
	// returned EBUSY and error fallback was disabled).
	Err error
}

// Strategy issues one client get against the cluster and reports the
// user-observed completion. Implementations are the paper's comparison
// points (§7.2).
type Strategy interface {
	Name() string
	Get(key int64, onDone func(GetResult))
}

// replicaCall sends a get to one node over the network and hands back the
// result; the shared plumbing under every strategy.
func replicaCall(c *Cluster, node int, key int64, deadline time.Duration, onDone func(error)) {
	c.ReplicaCall(node, key, deadline, onDone)
}

// BaseStrategy is vanilla MongoDB on vanilla Linux: ask the primary
// replica, wait however long it takes.
type BaseStrategy struct {
	C *Cluster
}

// baseOp is the pooled per-get context: one reply callback bound once, so a
// steady-state get allocates nothing. Ops pool on the cluster's shared
// Pools bundle (not the strategy — strategies are per-leg) and rebind their
// owner at acquire.
type baseOp struct {
	s        *BaseStrategy
	start    sim.Time
	onDone   func(GetResult)
	replyFn  func(error) // pre-bound op.reply
	replicas []int
}

// Name implements Strategy.
func (s *BaseStrategy) Name() string { return "Base" }

// Get implements Strategy.
func (s *BaseStrategy) Get(key int64, onDone func(GetResult)) {
	var op *baseOp
	p := s.C.pools
	if n := len(p.baseOps); n > 0 {
		op = p.baseOps[n-1]
		p.baseOps = p.baseOps[:n-1]
	} else {
		op = &baseOp{}
		op.replyFn = op.reply
	}
	op.s = s // pooled across fleets: rebind the owner
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	replicaCall(s.C, op.replicas[0], key, 0, op.replyFn)
}

func (op *baseOp) reply(err error) {
	s, onDone := op.s, op.onDone
	lat := s.C.Eng.Now().Sub(op.start)
	op.onDone = nil
	s.C.pools.baseOps = append(s.C.pools.baseOps, op)
	onDone(GetResult{Latency: lat, Tries: 1, Err: err})
}

// TimeoutStrategy is the "AppTO" comparison: cancel and retry on the next
// replica after TO, with the timeout disabled on the final try so users do
// not see read errors (§7.2). The timed-out attempt is revoked: if its IO is
// still in the replica's scheduler queues the cancel drops it; an IO already
// on the device runs to completion and is discarded (counted in WastedIOs).
// A replica that refuses because it crashed triggers an immediate retry on
// the next one instead of burning the full timeout.
type TimeoutStrategy struct {
	C  *Cluster
	TO time.Duration

	Retries uint64
	// WastedIOs counts abandoned attempts whose IO the cluster executed
	// anyway — the revocation arrived too late to drop it from a queue.
	WastedIOs uint64
}

// timeoutOp is the pooled per-get context. Each retry round is a separate
// pooled timeoutAttempt, because a superseded attempt's callbacks (a late
// completion, or the drop of its revoked IO) can still be in flight while
// the next round runs; the op is reclaimed when its last attempt resolves.
type timeoutOp struct {
	s        *TimeoutStrategy
	key      int64
	start    sim.Time
	onDone   func(GetResult)
	refs     int // live attempts holding this op
	replicas []int
}

// timeoutAttempt is one retry round: request hop, serve callback, response
// hop, and (except on the final round) the retry timer. The timer is an
// engine-owned recycled event that cannot be cancelled, so it holds a
// reference and no-ops when it finds the attempt already resolved.
type timeoutAttempt struct {
	s    *TimeoutStrategy
	op   *timeoutOp
	idx  int
	done bool
	h    *ServeHandle
	err  error
	refs int // pending callbacks: the hop/serve/reply chain plus the timer

	sendFn  func()      // pre-bound a.send: request hop
	serveFn func(error) // pre-bound a.serve: serve completion
	replyFn func()      // pre-bound a.reply: response hop
	timerFn func()      // pre-bound a.timerFire: retry timer
}

// Name implements Strategy.
func (s *TimeoutStrategy) Name() string { return "AppTO" }

// Get implements Strategy.
func (s *TimeoutStrategy) Get(key int64, onDone func(GetResult)) {
	var op *timeoutOp
	p := s.C.pools
	if n := len(p.timeoutOps); n > 0 {
		op = p.timeoutOps[n-1]
		p.timeoutOps = p.timeoutOps[:n-1]
	} else {
		op = &timeoutOp{}
	}
	op.s = s // pooled across fleets: rebind the owner
	op.key = key
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	op.attempt(0)
}

func (op *timeoutOp) attempt(i int) {
	s := op.s
	var a *timeoutAttempt
	p := s.C.pools
	if n := len(p.timeoutAtts); n > 0 {
		a = p.timeoutAtts[n-1]
		p.timeoutAtts = p.timeoutAtts[:n-1]
	} else {
		a = &timeoutAttempt{}
		a.sendFn = a.send
		a.serveFn = a.serve
		a.replyFn = a.reply
		a.timerFn = a.timerFire
	}
	a.s = s // pooled across fleets: rebind the owner
	a.op, a.idx = op, i
	op.refs++
	if i < len(op.replicas)-1 {
		a.refs = 2 // the callback chain plus the retry timer
		s.C.Eng.After(s.TO, a.timerFn)
	} else {
		a.refs = 1 // final try: the timeout is disabled (§7.2)
	}
	s.C.Net.Send(a.sendFn)
}

func (op *timeoutOp) deref() {
	op.refs--
	if op.refs > 0 {
		return
	}
	s := op.s
	op.onDone = nil
	s.C.pools.timeoutOps = append(s.C.pools.timeoutOps, op)
}

func (a *timeoutAttempt) deref() {
	a.refs--
	if a.refs > 0 {
		return
	}
	s, op := a.s, a.op
	a.op, a.h, a.err = nil, nil, nil
	a.done = false
	s.C.pools.timeoutAtts = append(s.C.pools.timeoutAtts, a)
	op.deref()
}

// send is the request hop landing at the replica.
func (a *timeoutAttempt) send() {
	if a.done {
		// Timed out before the request hop even landed: nothing was served.
		a.deref()
		return
	}
	op := a.op
	a.h = a.s.C.Nodes[op.replicas[a.idx]].ServeGetCancelable(op.key, 0, a.serveFn)
}

func (a *timeoutAttempt) serve(err error) {
	if errors.Is(err, ErrRevoked) {
		// The revocation dropped the IO before it ran: the abandoned
		// attempt resolves silently — no reply hop, no wasted IO. A
		// mid-run revocation already Cancel+Done'd the handle in timerFire;
		// the handle is still held only when the teardown harvest revokes a
		// stranded attempt, and must go back to the pool with it.
		if a.h != nil {
			a.h.Done()
			a.h = nil
		}
		a.deref()
		return
	}
	a.err = err
	a.s.C.Net.Send(a.replyFn)
}

// reply is the response hop landing back at the client.
func (a *timeoutAttempt) reply() {
	s, op, err := a.s, a.op, a.err
	if a.done {
		if wasted(err) {
			s.WastedIOs++ // revoked too late: the IO ran
		}
		a.deref()
		return
	}
	a.done = true
	if a.h != nil {
		a.h.Done()
		a.h = nil
	}
	if errors.Is(err, ErrNodeDown) && a.idx < len(op.replicas)-1 {
		// Crashed replica: its refusal came back in one RTT; retry now
		// rather than waiting out TO.
		s.Retries++
		op.attempt(a.idx + 1)
		a.deref()
		return
	}
	res := GetResult{Latency: s.C.Eng.Now().Sub(op.start), Tries: a.idx + 1, Err: err}
	onDone := op.onDone
	a.deref()
	onDone(res)
}

func (a *timeoutAttempt) timerFire() {
	s, op := a.s, a.op
	if !a.done {
		a.done = true
		s.Retries++
		// Abandon the attempt AND revoke its IO, so the stale IO does not
		// compete with every later attempt for the device.
		if a.h != nil {
			a.h.Cancel()
			a.h.Done()
			a.h = nil
		}
		op.attempt(a.idx + 1)
	}
	a.deref()
}

// CloneStrategy duplicates every request to two random replicas and takes
// the first response — "this proactive speculation however doubles the IO
// intensity" (§1).
type CloneStrategy struct {
	C   *Cluster
	RNG *sim.RNG

	// WastedIOs counts losing copies whose IO the cluster executed anyway.
	WastedIOs uint64

	live []int // selection scratch, reused across gets
}

// cloneOp is the pooled per-get context: both copies share one reply
// callback; refs keeps the op alive until the losing copy's late reply has
// been counted.
type cloneOp struct {
	s        *CloneStrategy
	start    sim.Time
	onDone   func(GetResult)
	won      bool
	pending  int
	tries    int
	refs     int
	replyFn  func(error) // pre-bound op.reply
	replicas []int
}

// Name implements Strategy.
func (s *CloneStrategy) Name() string { return "Clone" }

// Get implements Strategy.
func (s *CloneStrategy) Get(key int64, onDone func(GetResult)) {
	var op *cloneOp
	p := s.C.pools
	if n := len(p.cloneOps); n > 0 {
		op = p.cloneOps[n-1]
		p.cloneOps = p.cloneOps[:n-1]
	} else {
		op = &cloneOp{}
		op.replyFn = op.reply
	}
	op.s = s // pooled across fleets: rebind the owner
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	// Select among live replicas only; cloning to a crashed node would
	// just burn an RTT on a refusal. With every node up this filter is
	// the identity and the random draws are unchanged.
	s.live = s.live[:0]
	for _, r := range op.replicas {
		if !s.C.Nodes[r].Down() {
			s.live = append(s.live, r)
		}
	}
	if len(s.live) == 0 {
		// Whole replica set down: fail fast via the primary's refusal.
		op.tries, op.pending, op.refs = 1, 1, 1
		replicaCall(s.C, op.replicas[0], key, 0, op.replyFn)
		return
	}
	if len(s.live) == 1 {
		// One survivor: a clone pair is impossible (the old code's
		// RNG.Intn(0) panic); send a single copy.
		op.tries, op.pending, op.refs = 1, 1, 1
		replicaCall(s.C, s.live[0], key, 0, op.replyFn)
		return
	}
	// Two distinct random replicas out of the live choices.
	i := s.RNG.Intn(len(s.live))
	j := s.RNG.Intn(len(s.live) - 1)
	if j >= i {
		j++
	}
	op.tries, op.pending, op.refs = 2, 2, 2
	replicaCall(s.C, s.live[i], key, 0, op.replyFn)
	replicaCall(s.C, s.live[j], key, 0, op.replyFn)
}

func (op *cloneOp) deref() {
	op.refs--
	if op.refs > 0 {
		return
	}
	s := op.s
	op.onDone = nil
	op.won = false
	s.C.pools.cloneOps = append(s.C.pools.cloneOps, op)
}

func (op *cloneOp) reply(err error) {
	s := op.s
	if op.won {
		if wasted(err) {
			s.WastedIOs++ // the losing copy's IO ran to completion
		}
		op.deref()
		return
	}
	op.pending--
	if errors.Is(err, ErrNodeDown) && op.pending > 0 {
		op.deref()
		return // that node crashed mid-flight; the sibling decides
	}
	op.won = true
	res := GetResult{Latency: s.C.Eng.Now().Sub(op.start), Tries: op.tries, Err: err}
	onDone := op.onDone
	op.deref()
	onDone(res)
}

// HedgedStrategy sends a secondary request only after the first has been
// outstanding longer than the expected p95 latency (Dean & Barroso;
// §7.2). Neither request is cancelled; the loser's IO is wasted work
// (WastedIOs). A primary that refuses because it crashed fails over to the
// secondary immediately instead of waiting out the hedge delay.
type HedgedStrategy struct {
	C          *Cluster
	HedgeAfter time.Duration

	Hedges uint64
	// WastedIOs counts losing copies whose IO the cluster executed anyway.
	WastedIOs uint64
}

// hedgedOp is the pooled per-get context. The hedge timer is an
// engine-owned recycled event that cannot be cancelled; it holds a
// reference and stays quiet when it finds the get already hedged or won.
type hedgedOp struct {
	s        *HedgedStrategy
	key      int64
	start    sim.Time
	onDone   func(GetResult)
	won      bool
	sent     int // copies issued so far; the winner reports this as Tries
	pending  int // copies still awaiting a reply
	refs     int
	replyFn  func(error) // pre-bound op.reply
	timerFn  func()      // pre-bound op.timerFire
	replicas []int
}

// Name implements Strategy.
func (s *HedgedStrategy) Name() string { return "Hedged" }

// Get implements Strategy.
func (s *HedgedStrategy) Get(key int64, onDone func(GetResult)) {
	var op *hedgedOp
	p := s.C.pools
	if n := len(p.hedgedOps); n > 0 {
		op = p.hedgedOps[n-1]
		p.hedgedOps = p.hedgedOps[:n-1]
	} else {
		op = &hedgedOp{}
		op.replyFn = op.reply
		op.timerFn = op.timerFire
	}
	op.s = s // pooled across fleets: rebind the owner
	op.key = key
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.sent, op.pending = 1, 1
	op.refs = 2 // the primary's reply plus the hedge timer
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	s.C.Eng.After(s.HedgeAfter, op.timerFn)
	replicaCall(s.C, op.replicas[0], key, 0, op.replyFn)
}

func (op *hedgedOp) hedge() {
	op.sent = 2
	op.pending++
	op.refs++
	replicaCall(op.s.C, op.replicas[1], op.key, 0, op.replyFn)
}

func (op *hedgedOp) timerFire() {
	s := op.s
	if !op.won && op.sent == 1 {
		s.Hedges++
		op.hedge()
	}
	op.deref()
}

func (op *hedgedOp) deref() {
	op.refs--
	if op.refs > 0 {
		return
	}
	s := op.s
	op.onDone = nil
	op.won = false
	s.C.pools.hedgedOps = append(s.C.pools.hedgedOps, op)
}

func (op *hedgedOp) reply(err error) {
	s := op.s
	if op.won {
		if wasted(err) {
			s.WastedIOs++ // the losing copy's IO ran to completion
		}
		op.deref()
		return
	}
	op.pending--
	if errors.Is(err, ErrNodeDown) {
		if op.sent == 1 {
			// Primary crashed: don't wait out HedgeAfter, go to the
			// secondary now. The timer finds sent == 2 and stays quiet, so
			// no third copy ever goes out.
			op.hedge()
			op.deref()
			return
		}
		if op.pending > 0 {
			op.deref()
			return // the other copy may still answer
		}
	}
	op.won = true
	// A primary that completes after the hedge fired must not report
	// Tries: 1, hiding the duplicated IO from the per-try accounting. The
	// winner reports how many copies were issued.
	res := GetResult{Latency: s.C.Eng.Now().Sub(op.start), Tries: op.sent, Err: err}
	onDone := op.onDone
	op.deref()
	onDone(res)
}

// SnitchStrategy keeps an EWMA of each replica's recent latency and always
// asks the currently-fastest one — Cassandra's dynamic snitch (§7.8.3).
type SnitchStrategy struct {
	C *Cluster
	// Alpha is the EWMA weight of new samples.
	Alpha float64

	ewma     map[int]float64
	replicas []int // scratch, reused across gets
}

// Name implements Strategy.
func (s *SnitchStrategy) Name() string { return "Snitch" }

// Get implements Strategy.
func (s *SnitchStrategy) Get(key int64, onDone func(GetResult)) {
	if s.ewma == nil {
		s.ewma = make(map[int]float64)
	}
	if s.Alpha <= 0 {
		s.Alpha = 0.3
	}
	start := s.C.Eng.Now()
	s.replicas = s.C.ReplicasInto(key, s.replicas)
	best := s.replicas[0]
	bestScore := math.MaxFloat64
	for _, r := range s.replicas {
		if s.C.Nodes[r].Down() {
			continue // a crashed replica's fast refusals would look "fast"
		}
		score, seen := s.ewma[r]
		if !seen {
			score = 0 // explore unknown replicas first
		}
		if score < bestScore {
			best, bestScore = r, score
		}
	}
	replicaCall(s.C, best, key, 0, func(err error) {
		lat := s.C.Eng.Now().Sub(start)
		prev, seen := s.ewma[best]
		if !seen {
			prev = float64(lat)
		}
		s.ewma[best] = prev*(1-s.Alpha) + float64(lat)*s.Alpha
		onDone(GetResult{Latency: lat, Tries: 1, Err: err})
	})
}

// C3Strategy implements C3's replica ranking (Suresh et al., NSDI'15): an
// EWMA of response latencies plus a cubic penalty on the server-reported
// queue size, both piggybacked on responses. That feedback loop is exactly
// why the paper finds C3 helpless against sub-second burstiness (§7.8.3):
// the queue-size estimate a client holds is as old as the last response it
// received from that replica, so a burst that arrives and leaves within a
// second is never observed in time.
type C3Strategy struct {
	C     *Cluster
	Alpha float64

	lat      map[int]float64  // EWMA response latency per replica
	qEst     map[int]float64  // server-reported queue size (stale feedback)
	qAt      map[int]sim.Time // when that feedback was received
	out      map[int]int      // client-local concurrency compensation
	decay    time.Duration    // feedback aging constant (C3's rate control)
	replicas []int            // scratch, reused across gets
}

// Name implements Strategy.
func (s *C3Strategy) Name() string { return "C3" }

// Get implements Strategy.
func (s *C3Strategy) Get(key int64, onDone func(GetResult)) {
	if s.lat == nil {
		s.lat = make(map[int]float64)
		s.qEst = make(map[int]float64)
		s.qAt = make(map[int]sim.Time)
		s.out = make(map[int]int)
	}
	if s.Alpha <= 0 {
		s.Alpha = 0.3
	}
	if s.decay <= 0 {
		s.decay = 2 * time.Second
	}
	start := s.C.Eng.Now()
	s.replicas = s.C.ReplicasInto(key, s.replicas)
	best := s.replicas[0]
	bestScore := math.MaxFloat64
	for _, r := range s.replicas {
		if s.C.Nodes[r].Down() {
			continue // crashed replicas drop out of the ranking
		}
		l := s.lat[r]
		// C3's concurrency-compensated queue estimate: the stale
		// server-reported depth (aged — C3's rate control lets shunned
		// replicas be retried after a while) plus our own outstanding.
		age := float64(start.Sub(s.qAt[r])) / float64(s.decay)
		stale := s.qEst[r] / (1 + age)
		q := stale + float64(s.out[r]) + 1
		score := l * q * q * q // the cubic queue penalty
		if score < bestScore {
			best, bestScore = r, score
		}
	}
	s.out[best]++
	node := s.C.Nodes[best]
	s.C.Net.Send(func() {
		node.ServeGet(key, 0, func(err error) {
			// The response piggybacks the server's queue depth *now* —
			// by the time the client reads it, it is one hop stale, and
			// it only refreshes when this replica is asked again.
			reported := float64(node.OutstandingIOs())
			s.C.Net.Send(func() {
				s.out[best]--
				s.qEst[best] = reported
				s.qAt[best] = s.C.Eng.Now()
				lat := s.C.Eng.Now().Sub(start)
				prev, seen := s.lat[best]
				if !seen {
					prev = float64(lat)
				}
				s.lat[best] = prev*(1-s.Alpha) + float64(lat)*s.Alpha
				onDone(GetResult{Latency: lat, Tries: 1, Err: err})
			})
		})
	})
}

// MittOSStrategy is the paper's contribution at the client: send with the
// deadline SLO, failover instantly on EBUSY — or on a crashed replica's
// refusal, which is just as fast — and disable the deadline on the final
// try so the user never sees an error (§5). With UseWaitHint the
// §7.8.1/§8.1 extension kicks in: when every replica rejected, the 4th try
// targets the one that predicted the shortest wait.
type MittOSStrategy struct {
	C        *Cluster
	Deadline time.Duration
	// UseWaitHint enables the least-busy 4th retry extension.
	UseWaitHint bool
	// RetryOverhead models the application's failover path cost. The
	// paper's exceptionless path makes this ~0; C++ exception unwinding
	// would add 200µs (§5) — kept as an ablation knob.
	RetryOverhead time.Duration

	Failovers uint64
	LastDitch uint64
}

// mittOp is the pooled per-get context: attempts are strictly sequential
// (at most one replica call outstanding), so one context with pre-bound
// callbacks and per-op replica/wait scratch covers the whole failover chain.
type mittOp struct {
	s        *MittOSStrategy
	key      int64
	start    sim.Time
	onDone   func(GetResult)
	idx      int
	err      error       // the refusal carried across a RetryOverhead delay
	replyFn  func(error) // pre-bound op.reply
	lastFn   func(error) // pre-bound op.lastDitchReply
	nextFn   func()      // pre-bound op.next: post-refusal failover step
	replicas []int
	waits    []time.Duration
}

// Name implements Strategy.
func (s *MittOSStrategy) Name() string { return "MittOS" }

// Get implements Strategy.
func (s *MittOSStrategy) Get(key int64, onDone func(GetResult)) {
	var op *mittOp
	p := s.C.pools
	if n := len(p.mittOps); n > 0 {
		op = p.mittOps[n-1]
		p.mittOps = p.mittOps[:n-1]
	} else {
		op = &mittOp{}
		op.replyFn = op.reply
		op.lastFn = op.lastDitchReply
		op.nextFn = op.next
	}
	op.s = s // pooled across fleets: rebind the owner
	op.key = key
	op.start = s.C.Eng.Now()
	op.onDone = onDone
	op.idx = 0
	op.replicas = s.C.ReplicasInto(key, op.replicas)
	op.waits = op.waits[:0]
	for range op.replicas {
		op.waits = append(op.waits, 0)
	}
	op.attempt()
}

func (op *mittOp) attempt() {
	s := op.s
	deadline := s.Deadline
	if op.idx == len(op.replicas)-1 && !s.UseWaitHint {
		deadline = 0 // 3rd try disables the deadline (§5)
	}
	replicaCall(s.C, op.replicas[op.idx], op.key, deadline, op.replyFn)
}

func (op *mittOp) reply(err error) {
	s := op.s
	down := errors.Is(err, ErrNodeDown)
	if core.IsBusy(err) || down {
		if be, ok := err.(*core.BusyError); ok {
			op.waits[op.idx] = be.PredictedWait
		} else if down {
			// A crashed replica is "busy forever": never the least-busy
			// pick below.
			op.waits[op.idx] = time.Duration(math.MaxInt64)
		}
		s.Failovers++
		op.err = err
		if s.RetryOverhead > 0 {
			s.C.Eng.After(s.RetryOverhead, op.nextFn)
			return
		}
		op.next()
		return
	}
	op.deliver(op.idx+1, err)
}

// next is the failover step after a refusal (EBUSY or node-down), possibly
// delayed by RetryOverhead.
func (op *mittOp) next() {
	s := op.s
	if op.idx < len(op.replicas)-1 {
		op.idx++
		op.attempt()
		return
	}
	err := op.err
	if errors.Is(err, ErrNodeDown) && !s.UseWaitHint {
		// The deadline was already disabled on this final try; a crash
		// leaves nothing to fail over to.
		op.deliver(op.idx+1, err)
		return
	}
	// All replicas rejected under the wait-hint extension: go to the
	// least busy one with the deadline disabled, skipping crashed nodes.
	s.LastDitch++
	best := -1
	for j := range op.waits {
		if s.C.Nodes[op.replicas[j]].Down() {
			continue
		}
		if best < 0 || op.waits[j] < op.waits[best] {
			best = j
		}
	}
	if best < 0 {
		// The whole replica set is down.
		op.deliver(len(op.replicas), err)
		return
	}
	replicaCall(s.C, op.replicas[best], op.key, 0, op.lastFn)
}

func (op *mittOp) lastDitchReply(err error) {
	op.deliver(len(op.replicas)+1, err)
}

func (op *mittOp) deliver(tries int, err error) {
	s := op.s
	res := GetResult{Latency: s.C.Eng.Now().Sub(op.start), Tries: tries, Err: err}
	onDone := op.onDone
	op.onDone, op.err = nil, nil
	s.C.pools.mittOps = append(s.C.pools.mittOps, op)
	onDone(res)
}
