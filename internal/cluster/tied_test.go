package cluster

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/noise"
	"mittos/internal/sim"
)

func TestTiedFastPathNoSecondCopy(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	s := &TiedStrategy{C: c, RNG: sim.NewRNG(1, "tied"), Delay: 50 * time.Millisecond}
	var res GetResult
	s.Get(7, func(r GetResult) { res = r })
	served := func() uint64 {
		var n uint64
		for _, node := range c.Nodes {
			n += node.Served()
		}
		return n
	}
	c.Eng.Run()
	if res.Err != nil {
		t.Fatalf("tied get: %v", res.Err)
	}
	if res.Tries != 1 {
		t.Fatalf("tries = %d; fast path should win before the tied copy", res.Tries)
	}
	if served() != 1 {
		t.Fatalf("servers touched = %d, want 1 (second copy never sent)", served())
	}
}

func TestTiedSecondCopyWinsUnderContention(t *testing.T) {
	c := newTestCluster(t, 3, false, 10000)
	// Saturate every replica of key 0 except by luck; the tied copy to a
	// different replica should win when the first stalls.
	primaryKey := int64(0)
	busy := c.ReplicasFor(primaryKey)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[busy].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 10, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)
	// Force the first copy to the busy node by seeding the RNG choice:
	// run several gets and check that at least one won via the tied copy.
	s := &TiedStrategy{C: c, RNG: sim.NewRNG(3, "tied"), Delay: 5 * time.Millisecond}
	tiedWins := 0
	done := 0
	for i := 0; i < 20; i++ {
		s.Get(primaryKey, func(r GetResult) {
			done++
			if r.Tries == 2 {
				tiedWins++
			}
		})
		c.Eng.RunFor(50 * time.Millisecond)
	}
	c.Eng.RunFor(3 * time.Second)
	st.Stop()
	c.Eng.RunFor(3 * time.Second)
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	if tiedWins == 0 {
		t.Fatal("tied copy never won despite a saturated replica")
	}
	if s.Cancelled == 0 {
		t.Fatal("no sibling cancellations recorded")
	}
}

func TestTiedCancellationRevokesQueuedIO(t *testing.T) {
	// When the tied copy wins, the loser's IO should be revoked while
	// still queued, reducing load — the mechanism's whole point.
	c := newTestCluster(t, 3, false, 10000)
	busy := c.ReplicasFor(0)[0]
	st := noise.NewSteady(c.Eng, c.Nodes[busy].NoiseSink(), sim.NewRNG(5, "noise"),
		blockio.Read, 1<<20, 10, blockio.ClassBestEffort, 4, 99, 500<<30)
	st.Start()
	c.Eng.RunFor(100 * time.Millisecond)
	servedBefore := c.Nodes[busy].Disk.Served()
	s := &TiedStrategy{C: c, RNG: sim.NewRNG(3, "tied"), Delay: time.Millisecond}
	for i := 0; i < 10; i++ {
		s.Get(0, func(GetResult) {})
		c.Eng.RunFor(100 * time.Millisecond)
	}
	st.Stop()
	c.Eng.RunFor(5 * time.Second)
	// The busy node's spindle should not have served every tied-loser 4KB
	// read: some were revoked before reaching the device. We can't pin an
	// exact count (races with dispatch), so assert the cancellation
	// counter moved and the run completed.
	if s.Cancelled == 0 {
		t.Fatal("no cancellations")
	}
	_ = servedBefore
}
