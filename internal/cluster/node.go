// Package cluster implements the distributed NoSQL store of the paper's
// evaluation (§5, §7): replica nodes with a full local storage stack
// (device → IO scheduler → optional page cache → KV engine, with or without
// MittOS), a shared-CPU model for colocated server processes, and the
// client-side request strategies the paper compares — Base, application
// timeout, cloning, tied requests, hedged requests, snitching, C3 adaptive
// replica selection, and MittOS instant failover.
package cluster

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/kv"
	"mittos/internal/metrics"
	"mittos/internal/netsim"
	"mittos/internal/oscache"
	"mittos/internal/sim"
	"mittos/internal/ssd"
)

// DeviceKind selects a node's storage medium.
type DeviceKind int

// Storage media.
const (
	DeviceDisk DeviceKind = iota
	DeviceSSD
)

// NodeConfig shapes one replica node.
type NodeConfig struct {
	Index  int
	Device DeviceKind
	// DiskConfig applies when Device == DeviceDisk.
	DiskConfig disk.Config
	// SSDConfig applies when Device == DeviceSSD.
	SSDConfig ssd.Config
	// UseCFQ selects CFQ over noop for disk nodes (SSDs always bypass the
	// scheduler, as §4.3 prescribes).
	UseCFQ bool
	// Mitt enables the MittOS admission layer; off = vanilla Linux.
	Mitt bool
	// MittOptions configure the admission layer when enabled.
	MittOptions core.Options
	// CachePages > 0 inserts an OS page cache of that size, fronted by
	// MittCache when Mitt is set.
	CachePages int
	// Mmap selects the §5 MongoDB read path (addrcheck + page faults)
	// instead of read(); requires Mitt and CachePages.
	Mmap bool
	// Keys is the KV keyspace preloaded on this node.
	Keys int64
	// CPU, when non-nil, charges CPUPerOp per request stage on the shared
	// pool — the §7.5 colocated-processes model.
	CPU      *CPUPool
	CPUPerOp time.Duration
	// DiskProfile is the offline profile MittNoop/MittCFQ consume. One
	// profile is shared fleet-wide (same device model).
	DiskProfile *disk.Profile
	// Metrics, when non-nil, threads a per-node metrics recorder through
	// every layer of the node's storage stack and wraps its entry points
	// with the per-IO span boundary. Nil (the default) costs nothing.
	Metrics *metrics.Set
}

// TargetDevice adapts a core.Target to blockio.Device, so components that
// speak the plain device interface (the page cache's read-through path,
// noise tenants) still enter through the MittOS block layer — in the real
// kernel MittOS sees every tenant's IOs, which is exactly what its wait
// accounting relies on.
type TargetDevice struct {
	T        core.Target
	Rec      *metrics.Recorder // span boundary for IOs entering here (nil ok)
	inflight int
}

// Submit implements blockio.Device.
func (d *TargetDevice) Submit(req *blockio.Request) {
	d.inflight++
	if d.Rec != nil {
		d.Rec.IOBegin(req)
		d.T.SubmitSLO(req, func(err error) {
			d.Rec.IOEnd(req, err, core.IsBusy(err))
			d.inflight--
		})
		return
	}
	d.T.SubmitSLO(req, func(error) { d.inflight-- })
}

// tracedTarget wraps a node's SLO-aware entry point with the metrics span
// boundary: IOBegin as the request enters the stack, IOEnd with the final
// verdict. Installed only when metrics are enabled, so the default path
// keeps the bare Target.
type tracedTarget struct {
	rec *metrics.Recorder
	t   core.Target
}

// SubmitSLO implements core.Target.
func (t *tracedTarget) SubmitSLO(req *blockio.Request, onDone func(error)) {
	t.rec.IOBegin(req)
	t.t.SubmitSLO(req, func(err error) {
		t.rec.IOEnd(req, err, core.IsBusy(err))
		onDone(err)
	})
}

// InFlight implements blockio.Device.
func (d *TargetDevice) InFlight() int { return d.inflight }

// Node is one replica server.
type Node struct {
	Index int
	eng   *sim.Engine

	Disk  *disk.Disk
	SSD   *ssd.SSD
	Sched blockio.Device // noop or CFQ over the disk; nil for SSD nodes
	Cache *oscache.Cache

	// Target is the SLO-aware entry point requests go through.
	Target core.Target
	// BlockLayer is the SLO-aware block-layer entry (below the cache);
	// noise tenants and cache background IO enter here.
	BlockLayer *TargetDevice
	// MittNoop/MittCFQ/MittSSD/MittCache expose layer-specific state when
	// Mitt is enabled (at most one device layer is non-nil).
	MittNoop  *core.MittNoop
	MittCFQ   *core.MittCFQ
	MittSSD   *core.MittSSD
	MittCache *core.MittCache

	Store *kv.Store
	IDs   blockio.IDGen

	cfg NodeConfig

	served   uint64
	rejected uint64
}

// NewNode builds a node on the engine. rng seeds the device model.
func NewNode(eng *sim.Engine, cfg NodeConfig, rng *sim.RNG) *Node {
	n := &Node{Index: cfg.Index, eng: eng, cfg: cfg}
	rec := cfg.Metrics.Node(cfg.Index) // nil when metrics are off

	var ioTarget core.Target
	var capacity int64
	switch cfg.Device {
	case DeviceDisk:
		n.Disk = disk.New(eng, cfg.DiskConfig, rng.Fork(fmt.Sprintf("disk-%d", cfg.Index)))
		n.Disk.SetRecorder(rec)
		capacity = cfg.DiskConfig.CapacityBytes
		if cfg.UseCFQ {
			cfq := iosched.NewCFQ(eng, iosched.DefaultCFQConfig(), n.Disk)
			cfq.SetRecorder(rec)
			n.Sched = cfq
			if cfg.Mitt {
				n.MittCFQ = core.NewMittCFQ(eng, cfq, cfg.DiskProfile, cfg.MittOptions)
				n.MittCFQ.SetRecorder(rec)
				ioTarget = n.MittCFQ
			} else {
				ioTarget = &core.Vanilla{Dev: cfq}
			}
		} else {
			nop := iosched.NewNoop(eng, n.Disk)
			nop.SetRecorder(rec)
			n.Sched = nop
			if cfg.Mitt {
				n.MittNoop = core.NewMittNoop(eng, nop, cfg.DiskProfile, cfg.MittOptions)
				n.MittNoop.SetRecorder(rec)
				ioTarget = n.MittNoop
			} else {
				ioTarget = &core.Vanilla{Dev: nop}
			}
		}
	case DeviceSSD:
		n.SSD = ssd.New(eng, cfg.SSDConfig)
		n.SSD.SetRecorder(rec)
		capacity = cfg.SSDConfig.LogicalBytes()
		if cfg.Mitt {
			n.MittSSD = core.NewMittSSD(eng, n.SSD, cfg.MittOptions)
			n.MittSSD.SetRecorder(rec)
			ioTarget = n.MittSSD
		} else {
			ioTarget = &core.Vanilla{Dev: n.SSD}
		}
	default:
		panic("cluster: unknown device kind")
	}

	n.BlockLayer = &TargetDevice{T: ioTarget, Rec: rec}
	target := ioTarget
	if cfg.CachePages > 0 {
		ccfg := oscache.DefaultConfig()
		ccfg.CapacityPages = cfg.CachePages
		// The cache's background traffic (read-through, write-back,
		// prefetch) enters through the block layer so MittOS accounts it.
		n.Cache = oscache.New(eng, ccfg, n.BlockLayer)
		n.Cache.SetRecorder(rec)
		if cfg.Mitt {
			n.MittCache = core.NewMittCache(eng, n.Cache, ioTarget, minIOLatency(cfg), cfg.MittOptions)
			n.MittCache.SetRecorder(rec)
			target = n.MittCache
		} else {
			target = &core.Vanilla{Dev: n.Cache}
		}
	}
	if rec != nil {
		// Every client IO enters the stack through exactly one span
		// boundary: here (the KV path) or the block layer (noise and cache
		// background traffic).
		target = &tracedTarget{rec: rec, t: target}
	}
	n.Target = target

	region := capacity * 9 / 10
	kcfg := kv.DefaultConfig(0, region)
	kcfg.Proc = 1 // the NoSQL server process
	n.Store = kv.New(eng, kcfg, target, &n.IDs)
	if cfg.Mmap && n.MittCache != nil {
		n.Store.UseMmap(n.MittCache)
	}
	if cfg.Keys > 0 {
		n.Store.Preload(cfg.Keys)
	}
	return n
}

// minIOLatency returns the smallest possible device IO latency under the
// cache (§4.4's in-memory-expectation check).
func minIOLatency(cfg NodeConfig) time.Duration {
	if cfg.Device == DeviceSSD {
		return cfg.SSDConfig.ChipReadTime + cfg.SSDConfig.ChannelXferTime
	}
	return cfg.DiskConfig.SeqCost
}

// NoiseSink returns the device noise injectors should contend on: the
// SLO-aware block layer, so MittOS observes neighbor IOs exactly as the
// in-kernel implementation would.
func (n *Node) NoiseSink() blockio.Device { return n.BlockLayer }

// Served and Rejected report request counters.
func (n *Node) Served() uint64 { return n.served }

// Rejected reports EBUSY verdicts issued by this node.
func (n *Node) Rejected() uint64 { return n.rejected }

// OutstandingIOs reports queue depth at the node's storage stack (the
// Fig 13b busyness signal).
func (n *Node) OutstandingIOs() int {
	if n.Sched != nil {
		return n.Sched.InFlight()
	}
	return n.SSD.InFlight()
}

// ServeHandle lets a client revoke a request it no longer needs (the tied
// requests cancellation path, §7.8.2). Cancelling only helps while the IO
// is still in scheduler queues; device-resident IOs are beyond revocation,
// exactly as on a real kernel.
type ServeHandle struct {
	canceled bool
	req      *blockio.Request
}

// Cancel revokes the request's IO if it is still cancellable.
func (h *ServeHandle) Cancel() {
	h.canceled = true
	if h.req != nil {
		h.req.Cancel()
	}
}

// KeyVersion exposes the node's current version of a key (the replication
// timestamp consistency-aware clients compare, §8.3).
func (n *Node) KeyVersion(key int64) uint64 { return n.Store.Version(key) }

// ServeGet executes a get locally (network hops are the caller's job):
// optional CPU stage, then the KV read with the deadline SLO. onDone gets
// nil, EBUSY, or kv.ErrNotFound. The returned handle supports revocation.
func (n *Node) ServeGet(key int64, deadline time.Duration, onDone func(error)) *ServeHandle {
	n.served++
	h := &ServeHandle{}
	work := func() {
		h.req = n.Store.Get(key, deadline, func(err error) {
			if core.IsBusy(err) {
				// EBUSY is the exceptionless fast path (§5): no response
				// marshalling, just the errno.
				n.rejected++
				onDone(err)
				return
			}
			if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
				// Response-path CPU (marshalling the reply).
				n.cfg.CPU.Run(n.cfg.CPUPerOp, func() { onDone(err) })
				return
			}
			onDone(err)
		})
	}
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		n.cfg.CPU.Run(n.cfg.CPUPerOp, func() {
			if h.canceled {
				// Revoked before the handler ran: nothing is submitted.
				onDone(blockio.ErrBusy)
				return
			}
			work()
		})
		return h
	}
	work()
	if h.canceled && h.req != nil {
		h.req.Cancel()
	}
	return h
}

// ServePut executes a put locally.
func (n *Node) ServePut(key int64, onDone func(error)) {
	n.served++
	n.Store.Put(key, onDone)
}

// Cluster is a fleet of nodes with R-way replication.
type Cluster struct {
	Eng   *sim.Engine
	Net   *netsim.Network
	Nodes []*Node
	R     int
}

// NewCluster builds nodes 0..n-1 from a template config (Index overridden
// per node).
func NewCluster(eng *sim.Engine, net *netsim.Network, n, replication int,
	tmpl NodeConfig, rng *sim.RNG) *Cluster {
	if n <= 0 || replication <= 0 || replication > n {
		panic("cluster: invalid size/replication")
	}
	c := &Cluster{Eng: eng, Net: net, R: replication}
	for i := 0; i < n; i++ {
		cfg := tmpl
		cfg.Index = i
		c.Nodes = append(c.Nodes, NewNode(eng, cfg, rng.Fork(fmt.Sprintf("node-%d", i))))
	}
	return c
}

// ReplicasFor returns the R node indexes holding a key, primary first.
func (c *Cluster) ReplicasFor(key int64) []int {
	out := make([]int, c.R)
	h := key % int64(len(c.Nodes))
	if h < 0 {
		h += int64(len(c.Nodes))
	}
	for i := 0; i < c.R; i++ {
		out[i] = int(h+int64(i)) % len(c.Nodes)
	}
	return out
}

// CPUPool models a node machine's cores: colocated server processes share
// it, and when more request-handler threads are runnable than cores exist,
// they queue — the §7.5 mechanism that makes hedging backfire on fast SSDs
// ("12 threads on a 8-thread machine cause the long tail").
type CPUPool struct {
	eng   *sim.Engine
	cores int
	busy  int
	queue []cpuTask
}

type cpuTask struct {
	d  time.Duration
	fn func()
}

// NewCPUPool builds a pool of the given core count.
func NewCPUPool(eng *sim.Engine, cores int) *CPUPool {
	if cores <= 0 {
		panic("cluster: CPUPool needs cores")
	}
	return &CPUPool{eng: eng, cores: cores}
}

// Busy reports the number of running tasks.
func (p *CPUPool) Busy() int { return p.busy }

// Queued reports the number of runnable-but-waiting tasks.
func (p *CPUPool) Queued() int { return len(p.queue) }

// Run executes fn after the task has held a core for d.
func (p *CPUPool) Run(d time.Duration, fn func()) {
	p.queue = append(p.queue, cpuTask{d: d, fn: fn})
	p.kick()
}

func (p *CPUPool) kick() {
	for p.busy < p.cores && len(p.queue) > 0 {
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.busy++
		p.eng.After(t.d, func() {
			p.busy--
			t.fn()
			p.kick()
		})
	}
}
