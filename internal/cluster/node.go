// Package cluster implements the distributed NoSQL store of the paper's
// evaluation (§5, §7): replica nodes with a full local storage stack
// (device → IO scheduler → optional page cache → KV engine, with or without
// MittOS), a shared-CPU model for colocated server processes, and the
// client-side request strategies the paper compares — Base, application
// timeout, cloning, tied requests, hedged requests, snitching, C3 adaptive
// replica selection, and MittOS instant failover.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/kv"
	"mittos/internal/metrics"
	"mittos/internal/netsim"
	"mittos/internal/oscache"
	"mittos/internal/sim"
	"mittos/internal/ssd"
)

// ErrNodeDown is the verdict a crashed node's callers receive: every
// in-flight get when the node dies (the connection drops), and every new
// call until Revive.
var ErrNodeDown = errors.New("cluster: node down")

// ErrRevoked resolves the serve callback of a get whose cancelled IO was
// dropped from a queue before reaching the device: the server will never
// answer (the client revoked the request itself), so the callback chain is
// terminated synchronously instead of left dangling — which is what lets
// pooled client-side per-op contexts be reclaimed instead of leaking on
// every timed-out-then-dropped attempt. It never reaches users; strategies
// treat it as "attempt resolved silently": no reply hop, no wasted IO.
var ErrRevoked = errors.New("cluster: request revoked")

// DeviceKind selects a node's storage medium.
type DeviceKind int

// Storage media.
const (
	DeviceDisk DeviceKind = iota
	DeviceSSD
)

// NodeConfig shapes one replica node.
type NodeConfig struct {
	Index  int
	Device DeviceKind
	// DiskConfig applies when Device == DeviceDisk.
	DiskConfig disk.Config
	// SSDConfig applies when Device == DeviceSSD.
	SSDConfig ssd.Config
	// UseCFQ selects CFQ over noop for disk nodes (SSDs always bypass the
	// scheduler, as §4.3 prescribes).
	UseCFQ bool
	// Mitt enables the MittOS admission layer; off = vanilla Linux.
	Mitt bool
	// MittOptions configure the admission layer when enabled.
	MittOptions core.Options
	// CachePages > 0 inserts an OS page cache of that size, fronted by
	// MittCache when Mitt is set.
	CachePages int
	// Mmap selects the §5 MongoDB read path (addrcheck + page faults)
	// instead of read(); requires Mitt and CachePages.
	Mmap bool
	// Keys is the KV keyspace preloaded on this node.
	Keys int64
	// CPU, when non-nil, charges CPUPerOp per request stage on the shared
	// pool — the §7.5 colocated-processes model.
	CPU      *CPUPool
	CPUPerOp time.Duration
	// DiskProfile is the offline profile MittNoop/MittCFQ consume. One
	// profile is shared fleet-wide (same device model).
	DiskProfile *disk.Profile
	// Metrics, when non-nil, threads a per-node metrics recorder through
	// every layer of the node's storage stack and wraps its entry points
	// with the per-IO span boundary. Nil (the default) costs nothing.
	Metrics *metrics.Set
	// Pools, when non-nil, is the shared freelist bundle the node (and the
	// cluster built from the same template) draws its per-op contexts from.
	// An experiment arena passes one Pools across consecutive legs so a new
	// fleet starts with every pool warm; nil gets a private bundle.
	Pools *Pools
	// SSDPool, when non-nil, recycles SSD devices across fleets: an SSD
	// node takes a reset device from the pool instead of building the
	// multi-megabyte FTL arrays from scratch. The owner reclaims devices at
	// teardown with SSDPool.Put(node.SSD).
	SSDPool *ssd.Pool
}

// Pools bundles every per-op freelist of a node fleet: serve contexts,
// revocation handles, replica-call contexts, and the block-layer request
// pool the KV stores draw from. Contexts rebind their owner (node or
// cluster) at acquire time, so one bundle can serve any number of fleets —
// sequentially, never concurrently — and an experiment arena can carry a
// warm bundle across legs instead of re-growing every pool from zero.
type Pools struct {
	getCtxs  []*getCtx
	putCtxs  []*putCtx
	handles  []*ServeHandle
	calls    []*callCtx
	putCalls []*putCallCtx
	// Client-side strategy op contexts. These live here rather than on the
	// strategy structs because experiments build a fresh strategy per leg:
	// pooling per strategy would start every leg cold AND lose any op a
	// wedged IO stranded past the leg's drain window. The ops rebind their
	// owning strategy at acquire, exactly like the serve contexts above.
	baseOps     []*baseOp
	timeoutOps  []*timeoutOp
	timeoutAtts []*timeoutAttempt
	cloneOps    []*cloneOp
	hedgedOps   []*hedgedOp
	mittOps     []*mittOp
	// Put-strategy twins.
	basePutOps    []*basePutOp
	timeoutPutOps []*timeoutPutOp
	hedgedPutOps  []*hedgedPutOp
	mittPutOps    []*mittPutOp
	mittPutCopies []*mittPutCopy
	// Reqs is the shared block-IO request pool; nodes point their KV
	// stores and page caches at it. (Requests recycle into the pool that
	// created them, so the bundle must outlive every fleet using it.)
	Reqs blockio.Pool
	// Pages is the shared page-cache slab; cached nodes draw their
	// resident-set page structs from it.
	Pages oscache.PageSlab
}

// TargetDevice adapts a core.Target to blockio.Device, so components that
// speak the plain device interface (the page cache's read-through path,
// noise tenants) still enter through the MittOS block layer — in the real
// kernel MittOS sees every tenant's IOs, which is exactly what its wait
// accounting relies on.
type TargetDevice struct {
	T        core.Target
	Rec      *metrics.Recorder // span boundary for IOs entering here (nil ok)
	inflight int
	opFree   []*tdOp
}

// tdOp is the pooled per-IO completion context for the block-layer
// boundary; it replaces the per-submit callback closure and is where
// boundary-owned (AutoFree) pooled requests recycle.
type tdOp struct {
	d   *TargetDevice
	req *blockio.Request
	fn  func(error) // pre-bound op.done
}

func (op *tdOp) done(err error) {
	d, req := op.d, op.req
	op.req = nil
	d.opFree = append(d.opFree, op)
	if d.Rec != nil {
		d.Rec.IOEnd(req, err, core.IsBusy(err))
	}
	d.inflight--
	if req.AutoFree {
		req.Release()
	}
}

// Submit implements blockio.Device.
func (d *TargetDevice) Submit(req *blockio.Request) {
	d.inflight++
	if d.Rec != nil {
		d.Rec.IOBegin(req)
	}
	var op *tdOp
	if n := len(d.opFree); n > 0 {
		op = d.opFree[n-1]
		d.opFree = d.opFree[:n-1]
	} else {
		op = &tdOp{d: d}
		op.fn = op.done
	}
	op.req = req
	d.T.SubmitSLO(req, op.fn)
}

// tracedTarget wraps a node's SLO-aware entry point with the metrics span
// boundary: IOBegin as the request enters the stack, IOEnd with the final
// verdict. Installed only when metrics are enabled, so the default path
// keeps the bare Target.
type tracedTarget struct {
	rec    *metrics.Recorder
	t      core.Target
	opFree []*ttOp
}

// ttOp is the traced boundary's pooled per-IO context.
type ttOp struct {
	t      *tracedTarget
	req    *blockio.Request
	onDone func(error)
	fn     func(error) // pre-bound op.done
}

func (op *ttOp) done(err error) {
	t, req, onDone := op.t, op.req, op.onDone
	op.req, op.onDone = nil, nil
	t.opFree = append(t.opFree, op)
	t.rec.IOEnd(req, err, core.IsBusy(err))
	onDone(err)
}

// SubmitSLO implements core.Target.
func (t *tracedTarget) SubmitSLO(req *blockio.Request, onDone func(error)) {
	t.rec.IOBegin(req)
	var op *ttOp
	if n := len(t.opFree); n > 0 {
		op = t.opFree[n-1]
		t.opFree = t.opFree[:n-1]
	} else {
		op = &ttOp{t: t}
		op.fn = op.done
	}
	op.req, op.onDone = req, onDone
	t.t.SubmitSLO(req, op.fn)
}

// InFlight implements blockio.Device.
func (d *TargetDevice) InFlight() int { return d.inflight }

// Node is one replica server.
type Node struct {
	Index int
	eng   *sim.Engine

	Disk  *disk.Disk
	SSD   *ssd.SSD
	Sched blockio.Device // noop or CFQ over the disk; nil for SSD nodes
	Cache *oscache.Cache

	// Target is the SLO-aware entry point requests go through.
	Target core.Target
	// BlockLayer is the SLO-aware block-layer entry (below the cache);
	// noise tenants and cache background IO enter here.
	BlockLayer *TargetDevice
	// MittNoop/MittCFQ/MittSSD/MittCache expose layer-specific state when
	// Mitt is enabled (at most one device layer is non-nil).
	MittNoop  *core.MittNoop
	MittCFQ   *core.MittCFQ
	MittSSD   *core.MittSSD
	MittCache *core.MittCache

	Store *kv.Store
	IDs   blockio.IDGen

	cfg NodeConfig

	// pools holds the per-op freelists (serve contexts, revocation
	// handles); shared across the fleet — and across legs — when the config
	// injected a bundle.
	pools *Pools

	// Crash fault state: while down, new calls are refused with
	// ErrNodeDown. liveHead/liveTail is the intrusive list of in-flight
	// serve contexts (gets and puts), so Crash can abort them in insertion
	// order without allocating or scanning the freelists.
	down               bool
	liveHead, liveTail *liveEntry

	rec *metrics.Recorder // nil when metrics are off

	served   uint64
	rejected uint64
	refused  uint64
}

// liveEntry is the intrusive live-list node embedded in every in-flight
// serve context (get or put); abortFn and reclaimFn are bound once at
// context allocation so Crash and ReclaimStranded can tear down a mixed
// list without type switches or allocations.
type liveEntry struct {
	linked     bool
	prev, next *liveEntry
	abortFn    func()
	reclaimFn  func()
}

// NewNode builds a node on the engine. rng seeds the device model.
func NewNode(eng *sim.Engine, cfg NodeConfig, rng *sim.RNG) *Node {
	n := &Node{Index: cfg.Index, eng: eng, cfg: cfg}
	n.pools = cfg.Pools
	if n.pools == nil {
		n.pools = &Pools{}
	}
	rec := cfg.Metrics.Node(cfg.Index) // nil when metrics are off
	n.rec = rec

	var ioTarget core.Target
	var capacity int64
	switch cfg.Device {
	case DeviceDisk:
		n.Disk = disk.New(eng, cfg.DiskConfig, rng.Fork(fmt.Sprintf("disk-%d", cfg.Index)))
		n.Disk.SetRecorder(rec)
		capacity = cfg.DiskConfig.CapacityBytes
		if cfg.UseCFQ {
			cfq := iosched.NewCFQ(eng, iosched.DefaultCFQConfig(), n.Disk)
			cfq.SetRecorder(rec)
			n.Sched = cfq
			if cfg.Mitt {
				n.MittCFQ = core.NewMittCFQ(eng, cfq, cfg.DiskProfile, cfg.MittOptions)
				n.MittCFQ.SetRecorder(rec)
				ioTarget = n.MittCFQ
			} else {
				ioTarget = &core.Vanilla{Dev: cfq}
			}
		} else {
			nop := iosched.NewNoop(eng, n.Disk)
			nop.SetRecorder(rec)
			n.Sched = nop
			if cfg.Mitt {
				n.MittNoop = core.NewMittNoop(eng, nop, cfg.DiskProfile, cfg.MittOptions)
				n.MittNoop.SetRecorder(rec)
				ioTarget = n.MittNoop
			} else {
				ioTarget = &core.Vanilla{Dev: nop}
			}
		}
	case DeviceSSD:
		if cfg.SSDPool != nil {
			n.SSD = cfg.SSDPool.Get(eng, cfg.SSDConfig)
		} else {
			n.SSD = ssd.New(eng, cfg.SSDConfig)
		}
		n.SSD.SetRecorder(rec)
		capacity = cfg.SSDConfig.LogicalBytes()
		if cfg.Mitt {
			n.MittSSD = core.NewMittSSD(eng, n.SSD, cfg.MittOptions)
			n.MittSSD.SetRecorder(rec)
			ioTarget = n.MittSSD
		} else {
			ioTarget = &core.Vanilla{Dev: n.SSD}
		}
	default:
		panic("cluster: unknown device kind")
	}

	n.BlockLayer = &TargetDevice{T: ioTarget, Rec: rec}
	target := ioTarget
	if cfg.CachePages > 0 {
		ccfg := oscache.DefaultConfig()
		ccfg.CapacityPages = cfg.CachePages
		ccfg.Slab = &n.pools.Pages
		ccfg.Reqs = &n.pools.Reqs
		// The cache's background traffic (read-through, write-back,
		// prefetch) enters through the block layer so MittOS accounts it.
		n.Cache = oscache.New(eng, ccfg, n.BlockLayer)
		n.Cache.SetRecorder(rec)
		if cfg.Mitt {
			n.MittCache = core.NewMittCache(eng, n.Cache, ioTarget, minIOLatency(cfg), cfg.MittOptions)
			n.MittCache.SetRecorder(rec)
			target = n.MittCache
		} else {
			target = &core.Vanilla{Dev: n.Cache}
		}
	}
	if rec != nil {
		// Every client IO enters the stack through exactly one span
		// boundary: here (the KV path) or the block layer (noise and cache
		// background traffic).
		target = &tracedTarget{rec: rec, t: target}
	}
	n.Target = target

	region := capacity * 9 / 10
	kcfg := kv.DefaultConfig(0, region)
	kcfg.Proc = 1 // the NoSQL server process
	kcfg.Reqs = &n.pools.Reqs
	n.Store = kv.New(eng, kcfg, target, &n.IDs)
	n.Store.SetRecorder(rec)
	if cfg.Mmap && n.MittCache != nil {
		n.Store.UseMmap(n.MittCache)
	}
	if cfg.Keys > 0 {
		n.Store.Preload(cfg.Keys)
	}
	return n
}

// minIOLatency returns the smallest possible device IO latency under the
// cache (§4.4's in-memory-expectation check).
func minIOLatency(cfg NodeConfig) time.Duration {
	if cfg.Device == DeviceSSD {
		return cfg.SSDConfig.ChipReadTime + cfg.SSDConfig.ChannelXferTime
	}
	return cfg.DiskConfig.SeqCost
}

// NoiseSink returns the device noise injectors should contend on: the
// SLO-aware block layer, so MittOS observes neighbor IOs exactly as the
// in-kernel implementation would.
func (n *Node) NoiseSink() blockio.Device { return n.BlockLayer }

// Served and Rejected report request counters.
func (n *Node) Served() uint64 { return n.served }

// Rejected reports EBUSY verdicts issued by this node.
func (n *Node) Rejected() uint64 { return n.rejected }

// Refused reports calls turned away with ErrNodeDown while crashed.
func (n *Node) Refused() uint64 { return n.refused }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// Crash takes the node down fail-stop: every in-flight call is answered
// with ErrNodeDown immediately (the caller's connection drops), its IO is
// revoked where still possible (queued IOs are dropped; device-resident
// IOs finish and are discarded), and new calls are refused until Revive.
// Storage state survives — a crash loses in-flight work, not data. An
// in-flight put's ack is lost the same way, but work its group-commit WAL
// append already made durable survives the restart: the classic
// "ack lost, write applied" ambiguity.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	for e := n.liveHead; e != nil; {
		next := e.next
		e.abortFn()
		e = next
	}
}

// Revive brings a crashed node back. Its stores and devices kept their
// state (fail-stop, not data loss), so it resumes serving immediately.
func (n *Node) Revive() { n.down = false }

// ReclaimStranded force-reclaims every still-linked serve context: the
// aborted gets and puts whose pending callback never fired because the IO it
// was waiting on is wedged (a post-dispatch cancellation can strand a CFQ
// quantum) or its event was discarded. Call only at experiment-leg teardown,
// after the engine has drained and before Engine.Reset discards the
// remaining events — at that point no callback can ever touch these
// contexts again, so handing them back to the (shared) pools is safe.
// Returns the number of contexts reclaimed.
func (n *Node) ReclaimStranded() int {
	count := 0
	for e := n.liveHead; e != nil; {
		next := e.next
		e.reclaimFn()
		e = next
		count++
	}
	return count
}

func (n *Node) link(e *liveEntry) {
	e.linked = true
	e.prev = n.liveTail
	e.next = nil
	if n.liveTail != nil {
		n.liveTail.next = e
	} else {
		n.liveHead = e
	}
	n.liveTail = e
}

func (n *Node) unlink(e *liveEntry) {
	if !e.linked {
		return
	}
	e.linked = false
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		n.liveHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		n.liveTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// OutstandingIOs reports queue depth at the node's storage stack (the
// Fig 13b busyness signal).
func (n *Node) OutstandingIOs() int {
	if n.Sched != nil {
		return n.Sched.InFlight()
	}
	return n.SSD.InFlight()
}

// ServeHandle lets a client revoke a request it no longer needs (the tied
// requests cancellation path, §7.8.2). Cancelling only helps while the IO
// is still in scheduler queues; device-resident IOs are beyond revocation,
// exactly as on a real kernel.
//
// Handles are pooled per node. Two parties hold one: the serve path (until
// the get's terminal — completion, EBUSY, or revocation drop) and the
// caller, who must call Done when finished with it. The request-generation
// guard makes Cancel a no-op if the underlying request already terminated
// and was recycled for an unrelated IO.
type ServeHandle struct {
	n        *Node
	canceled bool
	req      *blockio.Request
	gen      uint32
	refs     int8
}

// Cancel revokes the request's IO if it is still cancellable.
func (h *ServeHandle) Cancel() {
	h.canceled = true
	if h.req != nil && h.req.Gen() == h.gen {
		h.req.Cancel()
	}
}

// Done releases the caller's reference; the handle must not be used after.
func (h *ServeHandle) Done() { h.deref() }

func (h *ServeHandle) deref() {
	h.refs--
	if h.refs > 0 {
		return
	}
	n := h.n
	h.req, h.canceled, h.gen = nil, false, 0
	n.pools.handles = append(n.pools.handles, h)
}

func (n *Node) getHandle() *ServeHandle {
	var h *ServeHandle
	if ln := len(n.pools.handles); ln > 0 {
		h = n.pools.handles[ln-1]
		n.pools.handles = n.pools.handles[:ln-1]
	} else {
		h = &ServeHandle{}
	}
	h.n = n // pooled across the fleet: rebind the owner
	h.refs = 2
	return h
}

// KeyVersion exposes the node's current version of a key (the replication
// timestamp consistency-aware clients compare, §8.3).
func (n *Node) KeyVersion(key int64) uint64 { return n.Store.Version(key) }

// getCtx is the pooled per-get context: the callback fields are bound once
// at allocation, so a get costs no closure allocations as it moves through
// the CPU stage, the KV read, and the response stage.
type getCtx struct {
	n        *Node
	key      int64
	deadline time.Duration
	onDone   func(error)
	h        *ServeHandle // nil on the non-cancelable fast path
	req      *blockio.Request
	err      error

	// Crash bookkeeping: live-list membership plus the aborted flag. An
	// aborted get already delivered ErrNodeDown from Crash; whichever of
	// its pending callbacks fires next only reclaims state.
	aborted bool
	live    liveEntry

	workFn func()                 // pre-bound ctx.work: CPU admission stage
	kvFn   func(error)            // pre-bound ctx.kv: Store.Get callback
	respFn func()                 // pre-bound ctx.resp: CPU response stage
	dropFn func(*blockio.Request) // pre-bound ctx.drop: revocation terminal
}

func (n *Node) getGetCtx() *getCtx {
	var ctx *getCtx
	if ln := len(n.pools.getCtxs); ln > 0 {
		ctx = n.pools.getCtxs[ln-1]
		n.pools.getCtxs = n.pools.getCtxs[:ln-1]
	} else {
		ctx = &getCtx{}
		ctx.workFn = ctx.work
		ctx.kvFn = ctx.kv
		ctx.respFn = ctx.resp
		ctx.dropFn = ctx.drop
		ctx.live.abortFn = ctx.abort
		ctx.live.reclaimFn = ctx.reclaim
	}
	ctx.n = n // pooled across the fleet: rebind the owner
	return ctx
}

func (n *Node) freeGetCtx(ctx *getCtx) {
	n.unlink(&ctx.live)
	ctx.aborted = false
	ctx.onDone, ctx.h, ctx.req, ctx.err = nil, nil, nil, nil
	n.pools.getCtxs = append(n.pools.getCtxs, ctx)
}

// abort is Crash's per-get teardown: the caller hears ErrNodeDown now; the
// get's IO is revoked if still queued; the context itself is reclaimed
// later, by whichever pending callback fires next (work/kv/resp/drop). The
// entry stays on the live list until that reclaim so ReclaimStranded can
// harvest contexts whose callback never comes.
func (ctx *getCtx) abort() {
	if ctx.aborted {
		return
	}
	ctx.aborted = true
	onDone := ctx.onDone
	ctx.onDone = nil
	if ctx.req != nil {
		ctx.req.Cancel()
	}
	onDone(ErrNodeDown)
}

// reclaim is the terminal for an aborted get — the verdict already went out
// at crash time — and for ReclaimStranded's teardown harvest of a wedged
// one, which still owes its caller a verdict: that caller's op context (and
// the whole reply chain above it) is pooled, and without a resolution it
// would be stranded right along with the serve context. The verdict is
// ErrRevoked, delivered synchronously after the context is back in the
// pools, mirroring drop().
func (ctx *getCtx) reclaim() {
	n, req, h, onDone := ctx.n, ctx.req, ctx.h, ctx.onDone
	n.freeGetCtx(ctx)
	if req != nil {
		req.Release()
	}
	if h != nil {
		h.deref()
	}
	if onDone != nil {
		onDone(ErrRevoked)
	}
}

func (ctx *getCtx) work() {
	n := ctx.n
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	if ctx.h != nil && ctx.h.canceled {
		// Revoked before the handler ran: nothing is submitted.
		ctx.deliver(blockio.ErrBusy)
		return
	}
	ctx.req = n.Store.Get(ctx.key, ctx.deadline, ctx.kvFn)
	if ctx.req != nil {
		ctx.req.OnDrop = ctx.dropFn
		if ctx.h != nil {
			ctx.h.req = ctx.req
			ctx.h.gen = ctx.req.Gen()
		}
	}
}

func (ctx *getCtx) kv(err error) {
	n := ctx.n
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	if core.IsBusy(err) {
		// EBUSY is the exceptionless fast path (§5): no response
		// marshalling, just the errno.
		n.rejected++
		ctx.deliver(err)
		return
	}
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		// Response-path CPU (marshalling the reply).
		ctx.err = err
		n.cfg.CPU.Run(n.cfg.CPUPerOp, ctx.respFn)
		return
	}
	ctx.deliver(err)
}

func (ctx *getCtx) resp() {
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	ctx.deliver(ctx.err)
}

// deliver is the get's completion terminal: hand the verdict to the caller,
// then recycle the request, the context, and the serve path's handle ref.
func (ctx *getCtx) deliver(err error) {
	n, onDone, req, h := ctx.n, ctx.onDone, ctx.req, ctx.h
	n.freeGetCtx(ctx)
	onDone(err)
	if req != nil {
		req.Release()
	}
	if h != nil {
		h.deref()
	}
}

// drop is the get's revocation terminal: the scheduler or device discarded
// the cancelled IO, so no completion will ever be delivered (span verdict
// "revoked"). The per-get state is reclaimed and — unless a crash already
// aborted the get, which delivered ErrNodeDown and nilled onDone — the serve
// callback is resolved synchronously with ErrRevoked. The delivery is
// deliberately hop-free: a revoked get sends no reply message, so it must
// not draw network latency or post events.
func (ctx *getCtx) drop(req *blockio.Request) {
	n, h, onDone := ctx.n, ctx.h, ctx.onDone
	n.freeGetCtx(ctx)
	req.Release()
	if h != nil {
		h.deref()
	}
	if onDone != nil {
		onDone(ErrRevoked)
	}
}

// ServeGet executes a get locally (network hops are the caller's job):
// optional CPU stage, then the KV read with the deadline SLO. onDone gets
// nil, EBUSY, or kv.ErrNotFound. Use ServeGetCancelable when the caller
// needs a revocation handle.
func (n *Node) ServeGet(key int64, deadline time.Duration, onDone func(error)) {
	n.serveGet(key, deadline, onDone, nil)
}

// ServeGetCancelable is ServeGet returning a revocation handle (tied
// requests, §7.8.2). The caller must call Done on the handle when it no
// longer needs it.
func (n *Node) ServeGetCancelable(key int64, deadline time.Duration, onDone func(error)) *ServeHandle {
	h := n.getHandle()
	n.serveGet(key, deadline, onDone, h)
	return h
}

func (n *Node) serveGet(key int64, deadline time.Duration, onDone func(error), h *ServeHandle) {
	if n.down {
		n.refused++
		if h != nil {
			h.deref() // the serve path's ref; the caller still owes Done
		}
		onDone(ErrNodeDown)
		return
	}
	n.served++
	ctx := n.getGetCtx()
	ctx.key, ctx.deadline, ctx.onDone, ctx.h = key, deadline, onDone, h
	n.link(&ctx.live)
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		n.cfg.CPU.Run(n.cfg.CPUPerOp, ctx.workFn)
		return
	}
	ctx.work()
}

// putCtx is the pooled per-put serve context, the write-side twin of getCtx:
// optional CPU admission stage, the SLO-aware KV put, optional CPU response
// stage, then the ack. There is no revocation handle and no per-put request
// pointer — a put rides a shared group-commit WAL IO that cannot be
// cancelled on one member's behalf.
type putCtx struct {
	n        *Node
	key      int64
	deadline time.Duration
	onDone   func(error)
	err      error

	// durable routes the put through Store.PutDurable (ack at WAL
	// durability, even with deadline 0) instead of PutSLO's legacy
	// memtable-ack path — the quorum replication contract.
	durable bool
	aborted bool
	live    liveEntry

	workFn func()      // pre-bound ctx.work: CPU admission stage
	kvFn   func(error) // pre-bound ctx.kv: Store.PutSLO callback
	respFn func()      // pre-bound ctx.resp: CPU response stage
}

func (n *Node) getPutCtx() *putCtx {
	var ctx *putCtx
	if ln := len(n.pools.putCtxs); ln > 0 {
		ctx = n.pools.putCtxs[ln-1]
		n.pools.putCtxs = n.pools.putCtxs[:ln-1]
	} else {
		ctx = &putCtx{}
		ctx.workFn = ctx.work
		ctx.kvFn = ctx.kv
		ctx.respFn = ctx.resp
		ctx.live.abortFn = ctx.abort
		ctx.live.reclaimFn = ctx.reclaim
	}
	ctx.n = n // pooled across the fleet: rebind the owner
	return ctx
}

func (n *Node) freePutCtx(ctx *putCtx) {
	n.unlink(&ctx.live)
	ctx.aborted = false
	ctx.onDone, ctx.err = nil, nil
	n.pools.putCtxs = append(n.pools.putCtxs, ctx)
}

// abort is Crash's per-put teardown: the caller hears ErrNodeDown now (the
// ack is lost); whether the write survives depends on how far its WAL group
// got. The context is reclaimed by whichever pending callback fires next;
// like an aborted get, it stays on the live list until then.
func (ctx *putCtx) abort() {
	if ctx.aborted {
		return
	}
	ctx.aborted = true
	onDone := ctx.onDone
	ctx.onDone = nil
	onDone(ErrNodeDown)
}

// reclaim mirrors getCtx.reclaim: aborted puts already delivered their
// verdict, but a stranded one harvested at teardown still owes its quorum an
// answer — ErrRevoked, so the pooled put op above resolves and recycles.
func (ctx *putCtx) reclaim() {
	onDone := ctx.onDone
	ctx.n.freePutCtx(ctx)
	if onDone != nil {
		onDone(ErrRevoked)
	}
}

func (ctx *putCtx) work() {
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	if ctx.durable {
		ctx.n.Store.PutDurable(ctx.key, ctx.deadline, ctx.kvFn)
		return
	}
	ctx.n.Store.PutSLO(ctx.key, ctx.deadline, ctx.kvFn)
}

func (ctx *putCtx) kv(err error) {
	n := ctx.n
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	if core.IsBusy(err) {
		// EBUSY is the exceptionless fast path (§5): no response
		// marshalling, just the errno.
		n.rejected++
		ctx.deliver(err)
		return
	}
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		// Response-path CPU (marshalling the ack).
		ctx.err = err
		n.cfg.CPU.Run(n.cfg.CPUPerOp, ctx.respFn)
		return
	}
	ctx.deliver(err)
}

func (ctx *putCtx) resp() {
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	ctx.deliver(ctx.err)
}

func (ctx *putCtx) deliver(err error) {
	n, onDone := ctx.n, ctx.onDone
	n.freePutCtx(ctx)
	onDone(err)
}

// ServePut executes a put locally with no SLO (the vanilla write() path).
// A crashed node refuses with ErrNodeDown.
func (n *Node) ServePut(key int64, onDone func(error)) {
	n.servePut(key, 0, false, onDone)
}

// ServePutSLO executes a put locally with a deadline SLO: the WAL append is
// admitted through the node's Mitt* target and EBUSY surfaces before the
// memtable mutates. onDone gets nil, a busy error, blockio.ErrIO, or
// ErrNodeDown.
func (n *Node) ServePutSLO(key int64, deadline time.Duration, onDone func(error)) {
	n.servePut(key, deadline, false, onDone)
}

// ServePutDurable executes a put acked only at WAL durability — the quorum
// replication path. Deadline 0 means durable-but-no-SLO (never rejected);
// a positive deadline adds the WAL admission fast reject on top.
func (n *Node) ServePutDurable(key int64, deadline time.Duration, onDone func(error)) {
	n.servePut(key, deadline, true, onDone)
}

func (n *Node) servePut(key int64, deadline time.Duration, durable bool, onDone func(error)) {
	if n.down {
		n.refused++
		onDone(ErrNodeDown)
		return
	}
	n.served++
	ctx := n.getPutCtx()
	ctx.key, ctx.deadline, ctx.onDone = key, deadline, onDone
	ctx.durable = durable
	n.link(&ctx.live)
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		n.cfg.CPU.Run(n.cfg.CPUPerOp, ctx.workFn)
		return
	}
	ctx.work()
}

// ObservePutQuorum feeds the put path's quorum stage (client-visible
// quorum-assembly latency) into this node's span histograms.
func (n *Node) ObservePutQuorum(d time.Duration) {
	n.rec.Observe(metrics.RNode, metrics.HPutQuorum, blockio.Write, d)
}

// Cluster is a fleet of nodes with R-way replication.
type Cluster struct {
	Eng   *sim.Engine
	Net   *netsim.Network
	Nodes []*Node
	R     int

	pools *Pools
}

// callCtx is a pooled replica call: request hop → serve → response hop.
// Its three callbacks are bound once, so a call allocates nothing in
// steady state.
type callCtx struct {
	c        *Cluster
	node     int
	key      int64
	deadline time.Duration
	onDone   func(error)
	err      error

	sendFn  func()      // pre-bound (*callCtx).send
	serveFn func(error) // pre-bound (*callCtx).serve
	replyFn func()      // pre-bound (*callCtx).reply
}

func (ctx *callCtx) send() {
	ctx.c.Nodes[ctx.node].ServeGet(ctx.key, ctx.deadline, ctx.serveFn)
}

func (ctx *callCtx) serve(err error) {
	ctx.err = err
	if errors.Is(err, ErrRevoked) {
		// Teardown harvest of a stranded serve context: the engine is about
		// to be reset, so a reply hop would never land. Resolve in place.
		// Mid-run serves never answer ErrRevoked through a call context —
		// revocation is only raised against ServeGetCancelable callers.
		ctx.reply()
		return
	}
	ctx.c.Net.Send(ctx.replyFn)
}

func (ctx *callCtx) reply() {
	c, onDone, err := ctx.c, ctx.onDone, ctx.err
	ctx.onDone = nil
	ctx.err = nil
	c.pools.calls = append(c.pools.calls, ctx)
	onDone(err)
}

// ReplicaCall sends a get to one node over the network and hands back the
// result after the response hop; the shared plumbing under every strategy.
func (c *Cluster) ReplicaCall(node int, key int64, deadline time.Duration, onDone func(error)) {
	var ctx *callCtx
	if n := len(c.pools.calls); n > 0 {
		ctx = c.pools.calls[n-1]
		c.pools.calls = c.pools.calls[:n-1]
	} else {
		ctx = &callCtx{}
		ctx.sendFn = ctx.send
		ctx.serveFn = ctx.serve
		ctx.replyFn = ctx.reply
	}
	ctx.c = c // pooled across fleets: rebind the owner
	ctx.node, ctx.key, ctx.deadline, ctx.onDone = node, key, deadline, onDone
	c.Net.Send(ctx.sendFn)
}

// putCallCtx is the pooled put twin of callCtx: request hop → serve →
// response hop (or no hop at all for one-way fire-and-forget writes).
type putCallCtx struct {
	c        *Cluster
	node     int
	key      int64
	deadline time.Duration
	onDone   func(error)
	err      error
	oneway   bool
	durable  bool

	sendFn  func()      // pre-bound (*putCallCtx).send
	serveFn func(error) // pre-bound (*putCallCtx).serve
	replyFn func()      // pre-bound (*putCallCtx).reply
}

func (ctx *putCallCtx) send() {
	if ctx.durable {
		ctx.c.Nodes[ctx.node].ServePutDurable(ctx.key, ctx.deadline, ctx.serveFn)
		return
	}
	ctx.c.Nodes[ctx.node].ServePutSLO(ctx.key, ctx.deadline, ctx.serveFn)
}

func (ctx *putCallCtx) serve(err error) {
	if ctx.oneway {
		c := ctx.c
		ctx.onDone, ctx.err = nil, nil
		c.pools.putCalls = append(c.pools.putCalls, ctx)
		return
	}
	ctx.err = err
	if errors.Is(err, ErrRevoked) {
		// Teardown harvest: resolve in place, as in callCtx.serve.
		ctx.reply()
		return
	}
	ctx.c.Net.Send(ctx.replyFn)
}

func (ctx *putCallCtx) reply() {
	c, onDone, err := ctx.c, ctx.onDone, ctx.err
	ctx.onDone, ctx.err = nil, nil
	c.pools.putCalls = append(c.pools.putCalls, ctx)
	onDone(err)
}

func (c *Cluster) getPutCall() *putCallCtx {
	var ctx *putCallCtx
	if n := len(c.pools.putCalls); n > 0 {
		ctx = c.pools.putCalls[n-1]
		c.pools.putCalls = c.pools.putCalls[:n-1]
	} else {
		ctx = &putCallCtx{}
		ctx.sendFn = ctx.send
		ctx.serveFn = ctx.serve
		ctx.replyFn = ctx.reply
	}
	ctx.c = c // pooled across fleets: rebind the owner
	return ctx
}

// PutCall sends a put to one node over the network and hands back the ack
// after the response hop; the shared plumbing under every put strategy.
func (c *Cluster) PutCall(node int, key int64, deadline time.Duration, onDone func(error)) {
	ctx := c.getPutCall()
	ctx.node, ctx.key, ctx.deadline, ctx.onDone, ctx.oneway = node, key, deadline, onDone, false
	ctx.durable = false
	c.Net.Send(ctx.sendFn)
}

// PutDurableCall is PutCall with durable-ack semantics: the serving node acks
// only after the WAL group commit, so quorum strategies compare like for like
// (deadline 0 = durable vanilla, never rejected; positive = fast-rejectable).
func (c *Cluster) PutDurableCall(node int, key int64, deadline time.Duration, onDone func(error)) {
	ctx := c.getPutCall()
	ctx.node, ctx.key, ctx.deadline, ctx.onDone, ctx.oneway = node, key, deadline, onDone, false
	ctx.durable = true
	c.Net.Send(ctx.sendFn)
}

// PutOneWay fires a put at a node with neither a reply hop nor an ack — the
// fire-and-forget background-write shape (fig13's 10% write mix), routed
// through the traced/pooled serve path instead of raw closures.
func (c *Cluster) PutOneWay(node int, key int64) {
	ctx := c.getPutCall()
	ctx.node, ctx.key, ctx.deadline, ctx.onDone, ctx.oneway = node, key, 0, nil, true
	ctx.durable = false
	c.Net.Send(ctx.sendFn)
}

// NewCluster builds nodes 0..n-1 from a template config (Index overridden
// per node).
func NewCluster(eng *sim.Engine, net *netsim.Network, n, replication int,
	tmpl NodeConfig, rng *sim.RNG) *Cluster {
	if n <= 0 || replication <= 0 || replication > n {
		panic("cluster: invalid size/replication")
	}
	c := &Cluster{Eng: eng, Net: net, R: replication, pools: tmpl.Pools}
	if c.pools == nil {
		c.pools = &Pools{}
	}
	for i := 0; i < n; i++ {
		cfg := tmpl
		cfg.Index = i
		c.Nodes = append(c.Nodes, NewNode(eng, cfg, rng.Fork(fmt.Sprintf("node-%d", i))))
	}
	return c
}

// ReplicasFor returns the R node indexes holding a key, primary first.
func (c *Cluster) ReplicasFor(key int64) []int {
	return c.ReplicasInto(key, make([]int, 0, c.R))
}

// ReplicasInto appends the R node indexes holding a key (primary first) to
// buf[:0] and returns it — the allocation-free ReplicasFor the pooled
// per-op strategy contexts use for their replica scratch.
func (c *Cluster) ReplicasInto(key int64, buf []int) []int {
	buf = buf[:0]
	h := key % int64(len(c.Nodes))
	if h < 0 {
		h += int64(len(c.Nodes))
	}
	for i := 0; i < c.R; i++ {
		buf = append(buf, int(h+int64(i))%len(c.Nodes))
	}
	return buf
}

// CPUPool models a node machine's cores: colocated server processes share
// it, and when more request-handler threads are runnable than cores exist,
// they queue — the §7.5 mechanism that makes hedging backfire on fast SSDs
// ("12 threads on a 8-thread machine cause the long tail").
type CPUPool struct {
	eng     *sim.Engine
	cores   int
	busy    int
	queue   []cpuTask
	head    int
	runFree []*cpuRun
}

type cpuTask struct {
	d  time.Duration
	fn func()
}

// cpuRun is a pooled in-flight task: its timer callback is bound once, so
// dispatching a task allocates nothing.
type cpuRun struct {
	p      *CPUPool
	fn     func()
	stepFn func() // pre-bound r.step
}

func (r *cpuRun) step() {
	p, fn := r.p, r.fn
	r.fn = nil
	p.runFree = append(p.runFree, r)
	p.busy--
	fn()
	p.kick()
}

// NewCPUPool builds a pool of the given core count.
func NewCPUPool(eng *sim.Engine, cores int) *CPUPool {
	if cores <= 0 {
		panic("cluster: CPUPool needs cores")
	}
	return &CPUPool{eng: eng, cores: cores}
}

// Busy reports the number of running tasks.
func (p *CPUPool) Busy() int { return p.busy }

// Queued reports the number of runnable-but-waiting tasks.
func (p *CPUPool) Queued() int { return len(p.queue) - p.head }

// Run executes fn after the task has held a core for d.
func (p *CPUPool) Run(d time.Duration, fn func()) {
	if p.head > 32 && p.head*2 >= len(p.queue) {
		n := copy(p.queue, p.queue[p.head:])
		for i := n; i < len(p.queue); i++ {
			p.queue[i] = cpuTask{}
		}
		p.queue = p.queue[:n]
		p.head = 0
	}
	p.queue = append(p.queue, cpuTask{d: d, fn: fn})
	p.kick()
}

func (p *CPUPool) kick() {
	for p.busy < p.cores && p.head < len(p.queue) {
		t := p.queue[p.head]
		p.queue[p.head] = cpuTask{}
		p.head++
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
		}
		p.busy++
		var r *cpuRun
		if n := len(p.runFree); n > 0 {
			r = p.runFree[n-1]
			p.runFree = p.runFree[:n-1]
		} else {
			r = &cpuRun{p: p}
			r.stepFn = r.step
		}
		r.fn = t.fn
		p.eng.After(t.d, r.stepFn)
	}
}
