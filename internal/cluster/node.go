// Package cluster implements the distributed NoSQL store of the paper's
// evaluation (§5, §7): replica nodes with a full local storage stack
// (device → IO scheduler → optional page cache → KV engine, with or without
// MittOS), a shared-CPU model for colocated server processes, and the
// client-side request strategies the paper compares — Base, application
// timeout, cloning, tied requests, hedged requests, snitching, C3 adaptive
// replica selection, and MittOS instant failover.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/kv"
	"mittos/internal/metrics"
	"mittos/internal/netsim"
	"mittos/internal/oscache"
	"mittos/internal/sim"
	"mittos/internal/ssd"
)

// ErrNodeDown is the verdict a crashed node's callers receive: every
// in-flight get when the node dies (the connection drops), and every new
// call until Revive.
var ErrNodeDown = errors.New("cluster: node down")

// DeviceKind selects a node's storage medium.
type DeviceKind int

// Storage media.
const (
	DeviceDisk DeviceKind = iota
	DeviceSSD
)

// NodeConfig shapes one replica node.
type NodeConfig struct {
	Index  int
	Device DeviceKind
	// DiskConfig applies when Device == DeviceDisk.
	DiskConfig disk.Config
	// SSDConfig applies when Device == DeviceSSD.
	SSDConfig ssd.Config
	// UseCFQ selects CFQ over noop for disk nodes (SSDs always bypass the
	// scheduler, as §4.3 prescribes).
	UseCFQ bool
	// Mitt enables the MittOS admission layer; off = vanilla Linux.
	Mitt bool
	// MittOptions configure the admission layer when enabled.
	MittOptions core.Options
	// CachePages > 0 inserts an OS page cache of that size, fronted by
	// MittCache when Mitt is set.
	CachePages int
	// Mmap selects the §5 MongoDB read path (addrcheck + page faults)
	// instead of read(); requires Mitt and CachePages.
	Mmap bool
	// Keys is the KV keyspace preloaded on this node.
	Keys int64
	// CPU, when non-nil, charges CPUPerOp per request stage on the shared
	// pool — the §7.5 colocated-processes model.
	CPU      *CPUPool
	CPUPerOp time.Duration
	// DiskProfile is the offline profile MittNoop/MittCFQ consume. One
	// profile is shared fleet-wide (same device model).
	DiskProfile *disk.Profile
	// Metrics, when non-nil, threads a per-node metrics recorder through
	// every layer of the node's storage stack and wraps its entry points
	// with the per-IO span boundary. Nil (the default) costs nothing.
	Metrics *metrics.Set
}

// TargetDevice adapts a core.Target to blockio.Device, so components that
// speak the plain device interface (the page cache's read-through path,
// noise tenants) still enter through the MittOS block layer — in the real
// kernel MittOS sees every tenant's IOs, which is exactly what its wait
// accounting relies on.
type TargetDevice struct {
	T        core.Target
	Rec      *metrics.Recorder // span boundary for IOs entering here (nil ok)
	inflight int
	opFree   []*tdOp
}

// tdOp is the pooled per-IO completion context for the block-layer
// boundary; it replaces the per-submit callback closure and is where
// boundary-owned (AutoFree) pooled requests recycle.
type tdOp struct {
	d   *TargetDevice
	req *blockio.Request
	fn  func(error) // pre-bound op.done
}

func (op *tdOp) done(err error) {
	d, req := op.d, op.req
	op.req = nil
	d.opFree = append(d.opFree, op)
	if d.Rec != nil {
		d.Rec.IOEnd(req, err, core.IsBusy(err))
	}
	d.inflight--
	if req.AutoFree {
		req.Release()
	}
}

// Submit implements blockio.Device.
func (d *TargetDevice) Submit(req *blockio.Request) {
	d.inflight++
	if d.Rec != nil {
		d.Rec.IOBegin(req)
	}
	var op *tdOp
	if n := len(d.opFree); n > 0 {
		op = d.opFree[n-1]
		d.opFree = d.opFree[:n-1]
	} else {
		op = &tdOp{d: d}
		op.fn = op.done
	}
	op.req = req
	d.T.SubmitSLO(req, op.fn)
}

// tracedTarget wraps a node's SLO-aware entry point with the metrics span
// boundary: IOBegin as the request enters the stack, IOEnd with the final
// verdict. Installed only when metrics are enabled, so the default path
// keeps the bare Target.
type tracedTarget struct {
	rec    *metrics.Recorder
	t      core.Target
	opFree []*ttOp
}

// ttOp is the traced boundary's pooled per-IO context.
type ttOp struct {
	t      *tracedTarget
	req    *blockio.Request
	onDone func(error)
	fn     func(error) // pre-bound op.done
}

func (op *ttOp) done(err error) {
	t, req, onDone := op.t, op.req, op.onDone
	op.req, op.onDone = nil, nil
	t.opFree = append(t.opFree, op)
	t.rec.IOEnd(req, err, core.IsBusy(err))
	onDone(err)
}

// SubmitSLO implements core.Target.
func (t *tracedTarget) SubmitSLO(req *blockio.Request, onDone func(error)) {
	t.rec.IOBegin(req)
	var op *ttOp
	if n := len(t.opFree); n > 0 {
		op = t.opFree[n-1]
		t.opFree = t.opFree[:n-1]
	} else {
		op = &ttOp{t: t}
		op.fn = op.done
	}
	op.req, op.onDone = req, onDone
	t.t.SubmitSLO(req, op.fn)
}

// InFlight implements blockio.Device.
func (d *TargetDevice) InFlight() int { return d.inflight }

// Node is one replica server.
type Node struct {
	Index int
	eng   *sim.Engine

	Disk  *disk.Disk
	SSD   *ssd.SSD
	Sched blockio.Device // noop or CFQ over the disk; nil for SSD nodes
	Cache *oscache.Cache

	// Target is the SLO-aware entry point requests go through.
	Target core.Target
	// BlockLayer is the SLO-aware block-layer entry (below the cache);
	// noise tenants and cache background IO enter here.
	BlockLayer *TargetDevice
	// MittNoop/MittCFQ/MittSSD/MittCache expose layer-specific state when
	// Mitt is enabled (at most one device layer is non-nil).
	MittNoop  *core.MittNoop
	MittCFQ   *core.MittCFQ
	MittSSD   *core.MittSSD
	MittCache *core.MittCache

	Store *kv.Store
	IDs   blockio.IDGen

	cfg NodeConfig

	// Per-op freelists: serve contexts and revocation handles.
	ctxFree    []*getCtx
	putFree    []*putCtx
	handleFree []*ServeHandle

	// Crash fault state: while down, new calls are refused with
	// ErrNodeDown. liveHead/liveTail is the intrusive list of in-flight
	// serve contexts (gets and puts), so Crash can abort them in insertion
	// order without allocating or scanning the freelists.
	down               bool
	liveHead, liveTail *liveEntry

	rec *metrics.Recorder // nil when metrics are off

	served   uint64
	rejected uint64
	refused  uint64
}

// liveEntry is the intrusive live-list node embedded in every in-flight
// serve context (get or put); abortFn is bound once at context allocation so
// Crash can tear down a mixed list without type switches or allocations.
type liveEntry struct {
	linked     bool
	prev, next *liveEntry
	abortFn    func()
}

// NewNode builds a node on the engine. rng seeds the device model.
func NewNode(eng *sim.Engine, cfg NodeConfig, rng *sim.RNG) *Node {
	n := &Node{Index: cfg.Index, eng: eng, cfg: cfg}
	rec := cfg.Metrics.Node(cfg.Index) // nil when metrics are off
	n.rec = rec

	var ioTarget core.Target
	var capacity int64
	switch cfg.Device {
	case DeviceDisk:
		n.Disk = disk.New(eng, cfg.DiskConfig, rng.Fork(fmt.Sprintf("disk-%d", cfg.Index)))
		n.Disk.SetRecorder(rec)
		capacity = cfg.DiskConfig.CapacityBytes
		if cfg.UseCFQ {
			cfq := iosched.NewCFQ(eng, iosched.DefaultCFQConfig(), n.Disk)
			cfq.SetRecorder(rec)
			n.Sched = cfq
			if cfg.Mitt {
				n.MittCFQ = core.NewMittCFQ(eng, cfq, cfg.DiskProfile, cfg.MittOptions)
				n.MittCFQ.SetRecorder(rec)
				ioTarget = n.MittCFQ
			} else {
				ioTarget = &core.Vanilla{Dev: cfq}
			}
		} else {
			nop := iosched.NewNoop(eng, n.Disk)
			nop.SetRecorder(rec)
			n.Sched = nop
			if cfg.Mitt {
				n.MittNoop = core.NewMittNoop(eng, nop, cfg.DiskProfile, cfg.MittOptions)
				n.MittNoop.SetRecorder(rec)
				ioTarget = n.MittNoop
			} else {
				ioTarget = &core.Vanilla{Dev: nop}
			}
		}
	case DeviceSSD:
		n.SSD = ssd.New(eng, cfg.SSDConfig)
		n.SSD.SetRecorder(rec)
		capacity = cfg.SSDConfig.LogicalBytes()
		if cfg.Mitt {
			n.MittSSD = core.NewMittSSD(eng, n.SSD, cfg.MittOptions)
			n.MittSSD.SetRecorder(rec)
			ioTarget = n.MittSSD
		} else {
			ioTarget = &core.Vanilla{Dev: n.SSD}
		}
	default:
		panic("cluster: unknown device kind")
	}

	n.BlockLayer = &TargetDevice{T: ioTarget, Rec: rec}
	target := ioTarget
	if cfg.CachePages > 0 {
		ccfg := oscache.DefaultConfig()
		ccfg.CapacityPages = cfg.CachePages
		// The cache's background traffic (read-through, write-back,
		// prefetch) enters through the block layer so MittOS accounts it.
		n.Cache = oscache.New(eng, ccfg, n.BlockLayer)
		n.Cache.SetRecorder(rec)
		if cfg.Mitt {
			n.MittCache = core.NewMittCache(eng, n.Cache, ioTarget, minIOLatency(cfg), cfg.MittOptions)
			n.MittCache.SetRecorder(rec)
			target = n.MittCache
		} else {
			target = &core.Vanilla{Dev: n.Cache}
		}
	}
	if rec != nil {
		// Every client IO enters the stack through exactly one span
		// boundary: here (the KV path) or the block layer (noise and cache
		// background traffic).
		target = &tracedTarget{rec: rec, t: target}
	}
	n.Target = target

	region := capacity * 9 / 10
	kcfg := kv.DefaultConfig(0, region)
	kcfg.Proc = 1 // the NoSQL server process
	n.Store = kv.New(eng, kcfg, target, &n.IDs)
	n.Store.SetRecorder(rec)
	if cfg.Mmap && n.MittCache != nil {
		n.Store.UseMmap(n.MittCache)
	}
	if cfg.Keys > 0 {
		n.Store.Preload(cfg.Keys)
	}
	return n
}

// minIOLatency returns the smallest possible device IO latency under the
// cache (§4.4's in-memory-expectation check).
func minIOLatency(cfg NodeConfig) time.Duration {
	if cfg.Device == DeviceSSD {
		return cfg.SSDConfig.ChipReadTime + cfg.SSDConfig.ChannelXferTime
	}
	return cfg.DiskConfig.SeqCost
}

// NoiseSink returns the device noise injectors should contend on: the
// SLO-aware block layer, so MittOS observes neighbor IOs exactly as the
// in-kernel implementation would.
func (n *Node) NoiseSink() blockio.Device { return n.BlockLayer }

// Served and Rejected report request counters.
func (n *Node) Served() uint64 { return n.served }

// Rejected reports EBUSY verdicts issued by this node.
func (n *Node) Rejected() uint64 { return n.rejected }

// Refused reports calls turned away with ErrNodeDown while crashed.
func (n *Node) Refused() uint64 { return n.refused }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// Crash takes the node down fail-stop: every in-flight call is answered
// with ErrNodeDown immediately (the caller's connection drops), its IO is
// revoked where still possible (queued IOs are dropped; device-resident
// IOs finish and are discarded), and new calls are refused until Revive.
// Storage state survives — a crash loses in-flight work, not data. An
// in-flight put's ack is lost the same way, but work its group-commit WAL
// append already made durable survives the restart: the classic
// "ack lost, write applied" ambiguity.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	for e := n.liveHead; e != nil; {
		next := e.next
		e.abortFn()
		e = next
	}
}

// Revive brings a crashed node back. Its stores and devices kept their
// state (fail-stop, not data loss), so it resumes serving immediately.
func (n *Node) Revive() { n.down = false }

func (n *Node) link(e *liveEntry) {
	e.linked = true
	e.prev = n.liveTail
	e.next = nil
	if n.liveTail != nil {
		n.liveTail.next = e
	} else {
		n.liveHead = e
	}
	n.liveTail = e
}

func (n *Node) unlink(e *liveEntry) {
	if !e.linked {
		return
	}
	e.linked = false
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		n.liveHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		n.liveTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// OutstandingIOs reports queue depth at the node's storage stack (the
// Fig 13b busyness signal).
func (n *Node) OutstandingIOs() int {
	if n.Sched != nil {
		return n.Sched.InFlight()
	}
	return n.SSD.InFlight()
}

// ServeHandle lets a client revoke a request it no longer needs (the tied
// requests cancellation path, §7.8.2). Cancelling only helps while the IO
// is still in scheduler queues; device-resident IOs are beyond revocation,
// exactly as on a real kernel.
//
// Handles are pooled per node. Two parties hold one: the serve path (until
// the get's terminal — completion, EBUSY, or revocation drop) and the
// caller, who must call Done when finished with it. The request-generation
// guard makes Cancel a no-op if the underlying request already terminated
// and was recycled for an unrelated IO.
type ServeHandle struct {
	n        *Node
	canceled bool
	req      *blockio.Request
	gen      uint32
	refs     int8
}

// Cancel revokes the request's IO if it is still cancellable.
func (h *ServeHandle) Cancel() {
	h.canceled = true
	if h.req != nil && h.req.Gen() == h.gen {
		h.req.Cancel()
	}
}

// Done releases the caller's reference; the handle must not be used after.
func (h *ServeHandle) Done() { h.deref() }

func (h *ServeHandle) deref() {
	h.refs--
	if h.refs > 0 {
		return
	}
	n := h.n
	h.req, h.canceled, h.gen = nil, false, 0
	n.handleFree = append(n.handleFree, h)
}

func (n *Node) getHandle() *ServeHandle {
	var h *ServeHandle
	if ln := len(n.handleFree); ln > 0 {
		h = n.handleFree[ln-1]
		n.handleFree = n.handleFree[:ln-1]
	} else {
		h = &ServeHandle{n: n}
	}
	h.refs = 2
	return h
}

// KeyVersion exposes the node's current version of a key (the replication
// timestamp consistency-aware clients compare, §8.3).
func (n *Node) KeyVersion(key int64) uint64 { return n.Store.Version(key) }

// getCtx is the pooled per-get context: the callback fields are bound once
// at allocation, so a get costs no closure allocations as it moves through
// the CPU stage, the KV read, and the response stage.
type getCtx struct {
	n        *Node
	key      int64
	deadline time.Duration
	onDone   func(error)
	h        *ServeHandle // nil on the non-cancelable fast path
	req      *blockio.Request
	err      error

	// Crash bookkeeping: live-list membership plus the aborted flag. An
	// aborted get already delivered ErrNodeDown from Crash; whichever of
	// its pending callbacks fires next only reclaims state.
	aborted bool
	live    liveEntry

	workFn func()                 // pre-bound ctx.work: CPU admission stage
	kvFn   func(error)            // pre-bound ctx.kv: Store.Get callback
	respFn func()                 // pre-bound ctx.resp: CPU response stage
	dropFn func(*blockio.Request) // pre-bound ctx.drop: revocation terminal
}

func (n *Node) getGetCtx() *getCtx {
	var ctx *getCtx
	if ln := len(n.ctxFree); ln > 0 {
		ctx = n.ctxFree[ln-1]
		n.ctxFree = n.ctxFree[:ln-1]
	} else {
		ctx = &getCtx{n: n}
		ctx.workFn = ctx.work
		ctx.kvFn = ctx.kv
		ctx.respFn = ctx.resp
		ctx.dropFn = ctx.drop
		ctx.live.abortFn = ctx.abort
	}
	return ctx
}

func (n *Node) freeGetCtx(ctx *getCtx) {
	n.unlink(&ctx.live)
	ctx.aborted = false
	ctx.onDone, ctx.h, ctx.req, ctx.err = nil, nil, nil, nil
	n.ctxFree = append(n.ctxFree, ctx)
}

// abort is Crash's per-get teardown: the caller hears ErrNodeDown now; the
// get's IO is revoked if still queued; the context itself is reclaimed
// later, by whichever pending callback fires next (work/kv/resp/drop).
func (ctx *getCtx) abort() {
	ctx.n.unlink(&ctx.live)
	ctx.aborted = true
	onDone := ctx.onDone
	ctx.onDone = nil
	if ctx.req != nil {
		ctx.req.Cancel()
	}
	onDone(ErrNodeDown)
}

// reclaim is the terminal for an aborted get: the verdict already went out
// at crash time, so only the per-get state comes back to the pools.
func (ctx *getCtx) reclaim() {
	n, req, h := ctx.n, ctx.req, ctx.h
	n.freeGetCtx(ctx)
	if req != nil {
		req.Release()
	}
	if h != nil {
		h.deref()
	}
}

func (ctx *getCtx) work() {
	n := ctx.n
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	if ctx.h != nil && ctx.h.canceled {
		// Revoked before the handler ran: nothing is submitted.
		ctx.deliver(blockio.ErrBusy)
		return
	}
	ctx.req = n.Store.Get(ctx.key, ctx.deadline, ctx.kvFn)
	if ctx.req != nil {
		ctx.req.OnDrop = ctx.dropFn
		if ctx.h != nil {
			ctx.h.req = ctx.req
			ctx.h.gen = ctx.req.Gen()
		}
	}
}

func (ctx *getCtx) kv(err error) {
	n := ctx.n
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	if core.IsBusy(err) {
		// EBUSY is the exceptionless fast path (§5): no response
		// marshalling, just the errno.
		n.rejected++
		ctx.deliver(err)
		return
	}
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		// Response-path CPU (marshalling the reply).
		ctx.err = err
		n.cfg.CPU.Run(n.cfg.CPUPerOp, ctx.respFn)
		return
	}
	ctx.deliver(err)
}

func (ctx *getCtx) resp() {
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	ctx.deliver(ctx.err)
}

// deliver is the get's completion terminal: hand the verdict to the caller,
// then recycle the request, the context, and the serve path's handle ref.
func (ctx *getCtx) deliver(err error) {
	n, onDone, req, h := ctx.n, ctx.onDone, ctx.req, ctx.h
	n.freeGetCtx(ctx)
	onDone(err)
	if req != nil {
		req.Release()
	}
	if h != nil {
		h.deref()
	}
}

// drop is the get's revocation terminal: the scheduler or device discarded
// the cancelled IO, so no verdict will ever be delivered (span verdict
// "revoked"); reclaim the per-get state.
func (ctx *getCtx) drop(req *blockio.Request) {
	n, h := ctx.n, ctx.h
	n.freeGetCtx(ctx)
	req.Release()
	if h != nil {
		h.deref()
	}
}

// ServeGet executes a get locally (network hops are the caller's job):
// optional CPU stage, then the KV read with the deadline SLO. onDone gets
// nil, EBUSY, or kv.ErrNotFound. Use ServeGetCancelable when the caller
// needs a revocation handle.
func (n *Node) ServeGet(key int64, deadline time.Duration, onDone func(error)) {
	n.serveGet(key, deadline, onDone, nil)
}

// ServeGetCancelable is ServeGet returning a revocation handle (tied
// requests, §7.8.2). The caller must call Done on the handle when it no
// longer needs it.
func (n *Node) ServeGetCancelable(key int64, deadline time.Duration, onDone func(error)) *ServeHandle {
	h := n.getHandle()
	n.serveGet(key, deadline, onDone, h)
	return h
}

func (n *Node) serveGet(key int64, deadline time.Duration, onDone func(error), h *ServeHandle) {
	if n.down {
		n.refused++
		if h != nil {
			h.deref() // the serve path's ref; the caller still owes Done
		}
		onDone(ErrNodeDown)
		return
	}
	n.served++
	ctx := n.getGetCtx()
	ctx.key, ctx.deadline, ctx.onDone, ctx.h = key, deadline, onDone, h
	n.link(&ctx.live)
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		n.cfg.CPU.Run(n.cfg.CPUPerOp, ctx.workFn)
		return
	}
	ctx.work()
}

// putCtx is the pooled per-put serve context, the write-side twin of getCtx:
// optional CPU admission stage, the SLO-aware KV put, optional CPU response
// stage, then the ack. There is no revocation handle and no per-put request
// pointer — a put rides a shared group-commit WAL IO that cannot be
// cancelled on one member's behalf.
type putCtx struct {
	n        *Node
	key      int64
	deadline time.Duration
	onDone   func(error)
	err      error

	// durable routes the put through Store.PutDurable (ack at WAL
	// durability, even with deadline 0) instead of PutSLO's legacy
	// memtable-ack path — the quorum replication contract.
	durable bool
	aborted bool
	live    liveEntry

	workFn func()      // pre-bound ctx.work: CPU admission stage
	kvFn   func(error) // pre-bound ctx.kv: Store.PutSLO callback
	respFn func()      // pre-bound ctx.resp: CPU response stage
}

func (n *Node) getPutCtx() *putCtx {
	var ctx *putCtx
	if ln := len(n.putFree); ln > 0 {
		ctx = n.putFree[ln-1]
		n.putFree = n.putFree[:ln-1]
	} else {
		ctx = &putCtx{n: n}
		ctx.workFn = ctx.work
		ctx.kvFn = ctx.kv
		ctx.respFn = ctx.resp
		ctx.live.abortFn = ctx.abort
	}
	return ctx
}

func (n *Node) freePutCtx(ctx *putCtx) {
	n.unlink(&ctx.live)
	ctx.aborted = false
	ctx.onDone, ctx.err = nil, nil
	n.putFree = append(n.putFree, ctx)
}

// abort is Crash's per-put teardown: the caller hears ErrNodeDown now (the
// ack is lost); whether the write survives depends on how far its WAL group
// got. The context is reclaimed by whichever pending callback fires next.
func (ctx *putCtx) abort() {
	ctx.n.unlink(&ctx.live)
	ctx.aborted = true
	onDone := ctx.onDone
	ctx.onDone = nil
	onDone(ErrNodeDown)
}

func (ctx *putCtx) reclaim() { ctx.n.freePutCtx(ctx) }

func (ctx *putCtx) work() {
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	if ctx.durable {
		ctx.n.Store.PutDurable(ctx.key, ctx.deadline, ctx.kvFn)
		return
	}
	ctx.n.Store.PutSLO(ctx.key, ctx.deadline, ctx.kvFn)
}

func (ctx *putCtx) kv(err error) {
	n := ctx.n
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	if core.IsBusy(err) {
		// EBUSY is the exceptionless fast path (§5): no response
		// marshalling, just the errno.
		n.rejected++
		ctx.deliver(err)
		return
	}
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		// Response-path CPU (marshalling the ack).
		ctx.err = err
		n.cfg.CPU.Run(n.cfg.CPUPerOp, ctx.respFn)
		return
	}
	ctx.deliver(err)
}

func (ctx *putCtx) resp() {
	if ctx.aborted {
		ctx.reclaim()
		return
	}
	ctx.deliver(ctx.err)
}

func (ctx *putCtx) deliver(err error) {
	n, onDone := ctx.n, ctx.onDone
	n.freePutCtx(ctx)
	onDone(err)
}

// ServePut executes a put locally with no SLO (the vanilla write() path).
// A crashed node refuses with ErrNodeDown.
func (n *Node) ServePut(key int64, onDone func(error)) {
	n.servePut(key, 0, false, onDone)
}

// ServePutSLO executes a put locally with a deadline SLO: the WAL append is
// admitted through the node's Mitt* target and EBUSY surfaces before the
// memtable mutates. onDone gets nil, a busy error, blockio.ErrIO, or
// ErrNodeDown.
func (n *Node) ServePutSLO(key int64, deadline time.Duration, onDone func(error)) {
	n.servePut(key, deadline, false, onDone)
}

// ServePutDurable executes a put acked only at WAL durability — the quorum
// replication path. Deadline 0 means durable-but-no-SLO (never rejected);
// a positive deadline adds the WAL admission fast reject on top.
func (n *Node) ServePutDurable(key int64, deadline time.Duration, onDone func(error)) {
	n.servePut(key, deadline, true, onDone)
}

func (n *Node) servePut(key int64, deadline time.Duration, durable bool, onDone func(error)) {
	if n.down {
		n.refused++
		onDone(ErrNodeDown)
		return
	}
	n.served++
	ctx := n.getPutCtx()
	ctx.key, ctx.deadline, ctx.onDone = key, deadline, onDone
	ctx.durable = durable
	n.link(&ctx.live)
	if n.cfg.CPU != nil && n.cfg.CPUPerOp > 0 {
		n.cfg.CPU.Run(n.cfg.CPUPerOp, ctx.workFn)
		return
	}
	ctx.work()
}

// ObservePutQuorum feeds the put path's quorum stage (client-visible
// quorum-assembly latency) into this node's span histograms.
func (n *Node) ObservePutQuorum(d time.Duration) {
	n.rec.Observe(metrics.RNode, metrics.HPutQuorum, blockio.Write, d)
}

// Cluster is a fleet of nodes with R-way replication.
type Cluster struct {
	Eng   *sim.Engine
	Net   *netsim.Network
	Nodes []*Node
	R     int

	callFree    []*callCtx
	putCallFree []*putCallCtx
}

// callCtx is a pooled replica call: request hop → serve → response hop.
// Its three callbacks are bound once, so a call allocates nothing in
// steady state.
type callCtx struct {
	c        *Cluster
	node     int
	key      int64
	deadline time.Duration
	onDone   func(error)
	err      error

	sendFn  func()      // pre-bound (*callCtx).send
	serveFn func(error) // pre-bound (*callCtx).serve
	replyFn func()      // pre-bound (*callCtx).reply
}

func (ctx *callCtx) send() {
	ctx.c.Nodes[ctx.node].ServeGet(ctx.key, ctx.deadline, ctx.serveFn)
}

func (ctx *callCtx) serve(err error) {
	ctx.err = err
	ctx.c.Net.Send(ctx.replyFn)
}

func (ctx *callCtx) reply() {
	c, onDone, err := ctx.c, ctx.onDone, ctx.err
	ctx.onDone = nil
	ctx.err = nil
	c.callFree = append(c.callFree, ctx)
	onDone(err)
}

// ReplicaCall sends a get to one node over the network and hands back the
// result after the response hop; the shared plumbing under every strategy.
func (c *Cluster) ReplicaCall(node int, key int64, deadline time.Duration, onDone func(error)) {
	var ctx *callCtx
	if n := len(c.callFree); n > 0 {
		ctx = c.callFree[n-1]
		c.callFree = c.callFree[:n-1]
	} else {
		ctx = &callCtx{c: c}
		ctx.sendFn = ctx.send
		ctx.serveFn = ctx.serve
		ctx.replyFn = ctx.reply
	}
	ctx.node, ctx.key, ctx.deadline, ctx.onDone = node, key, deadline, onDone
	c.Net.Send(ctx.sendFn)
}

// putCallCtx is the pooled put twin of callCtx: request hop → serve →
// response hop (or no hop at all for one-way fire-and-forget writes).
type putCallCtx struct {
	c        *Cluster
	node     int
	key      int64
	deadline time.Duration
	onDone   func(error)
	err      error
	oneway   bool
	durable  bool

	sendFn  func()      // pre-bound (*putCallCtx).send
	serveFn func(error) // pre-bound (*putCallCtx).serve
	replyFn func()      // pre-bound (*putCallCtx).reply
}

func (ctx *putCallCtx) send() {
	if ctx.durable {
		ctx.c.Nodes[ctx.node].ServePutDurable(ctx.key, ctx.deadline, ctx.serveFn)
		return
	}
	ctx.c.Nodes[ctx.node].ServePutSLO(ctx.key, ctx.deadline, ctx.serveFn)
}

func (ctx *putCallCtx) serve(err error) {
	if ctx.oneway {
		c := ctx.c
		ctx.onDone, ctx.err = nil, nil
		c.putCallFree = append(c.putCallFree, ctx)
		return
	}
	ctx.err = err
	ctx.c.Net.Send(ctx.replyFn)
}

func (ctx *putCallCtx) reply() {
	c, onDone, err := ctx.c, ctx.onDone, ctx.err
	ctx.onDone, ctx.err = nil, nil
	c.putCallFree = append(c.putCallFree, ctx)
	onDone(err)
}

func (c *Cluster) getPutCall() *putCallCtx {
	var ctx *putCallCtx
	if n := len(c.putCallFree); n > 0 {
		ctx = c.putCallFree[n-1]
		c.putCallFree = c.putCallFree[:n-1]
	} else {
		ctx = &putCallCtx{c: c}
		ctx.sendFn = ctx.send
		ctx.serveFn = ctx.serve
		ctx.replyFn = ctx.reply
	}
	return ctx
}

// PutCall sends a put to one node over the network and hands back the ack
// after the response hop; the shared plumbing under every put strategy.
func (c *Cluster) PutCall(node int, key int64, deadline time.Duration, onDone func(error)) {
	ctx := c.getPutCall()
	ctx.node, ctx.key, ctx.deadline, ctx.onDone, ctx.oneway = node, key, deadline, onDone, false
	ctx.durable = false
	c.Net.Send(ctx.sendFn)
}

// PutDurableCall is PutCall with durable-ack semantics: the serving node acks
// only after the WAL group commit, so quorum strategies compare like for like
// (deadline 0 = durable vanilla, never rejected; positive = fast-rejectable).
func (c *Cluster) PutDurableCall(node int, key int64, deadline time.Duration, onDone func(error)) {
	ctx := c.getPutCall()
	ctx.node, ctx.key, ctx.deadline, ctx.onDone, ctx.oneway = node, key, deadline, onDone, false
	ctx.durable = true
	c.Net.Send(ctx.sendFn)
}

// PutOneWay fires a put at a node with neither a reply hop nor an ack — the
// fire-and-forget background-write shape (fig13's 10% write mix), routed
// through the traced/pooled serve path instead of raw closures.
func (c *Cluster) PutOneWay(node int, key int64) {
	ctx := c.getPutCall()
	ctx.node, ctx.key, ctx.deadline, ctx.onDone, ctx.oneway = node, key, 0, nil, true
	ctx.durable = false
	c.Net.Send(ctx.sendFn)
}

// NewCluster builds nodes 0..n-1 from a template config (Index overridden
// per node).
func NewCluster(eng *sim.Engine, net *netsim.Network, n, replication int,
	tmpl NodeConfig, rng *sim.RNG) *Cluster {
	if n <= 0 || replication <= 0 || replication > n {
		panic("cluster: invalid size/replication")
	}
	c := &Cluster{Eng: eng, Net: net, R: replication}
	for i := 0; i < n; i++ {
		cfg := tmpl
		cfg.Index = i
		c.Nodes = append(c.Nodes, NewNode(eng, cfg, rng.Fork(fmt.Sprintf("node-%d", i))))
	}
	return c
}

// ReplicasFor returns the R node indexes holding a key, primary first.
func (c *Cluster) ReplicasFor(key int64) []int {
	out := make([]int, c.R)
	h := key % int64(len(c.Nodes))
	if h < 0 {
		h += int64(len(c.Nodes))
	}
	for i := 0; i < c.R; i++ {
		out[i] = int(h+int64(i)) % len(c.Nodes)
	}
	return out
}

// CPUPool models a node machine's cores: colocated server processes share
// it, and when more request-handler threads are runnable than cores exist,
// they queue — the §7.5 mechanism that makes hedging backfire on fast SSDs
// ("12 threads on a 8-thread machine cause the long tail").
type CPUPool struct {
	eng     *sim.Engine
	cores   int
	busy    int
	queue   []cpuTask
	head    int
	runFree []*cpuRun
}

type cpuTask struct {
	d  time.Duration
	fn func()
}

// cpuRun is a pooled in-flight task: its timer callback is bound once, so
// dispatching a task allocates nothing.
type cpuRun struct {
	p      *CPUPool
	fn     func()
	stepFn func() // pre-bound r.step
}

func (r *cpuRun) step() {
	p, fn := r.p, r.fn
	r.fn = nil
	p.runFree = append(p.runFree, r)
	p.busy--
	fn()
	p.kick()
}

// NewCPUPool builds a pool of the given core count.
func NewCPUPool(eng *sim.Engine, cores int) *CPUPool {
	if cores <= 0 {
		panic("cluster: CPUPool needs cores")
	}
	return &CPUPool{eng: eng, cores: cores}
}

// Busy reports the number of running tasks.
func (p *CPUPool) Busy() int { return p.busy }

// Queued reports the number of runnable-but-waiting tasks.
func (p *CPUPool) Queued() int { return len(p.queue) - p.head }

// Run executes fn after the task has held a core for d.
func (p *CPUPool) Run(d time.Duration, fn func()) {
	if p.head > 32 && p.head*2 >= len(p.queue) {
		n := copy(p.queue, p.queue[p.head:])
		for i := n; i < len(p.queue); i++ {
			p.queue[i] = cpuTask{}
		}
		p.queue = p.queue[:n]
		p.head = 0
	}
	p.queue = append(p.queue, cpuTask{d: d, fn: fn})
	p.kick()
}

func (p *CPUPool) kick() {
	for p.busy < p.cores && p.head < len(p.queue) {
		t := p.queue[p.head]
		p.queue[p.head] = cpuTask{}
		p.head++
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
		}
		p.busy++
		var r *cpuRun
		if n := len(p.runFree); n > 0 {
			r = p.runFree[n-1]
			p.runFree = p.runFree[:n-1]
		} else {
			r = &cpuRun{p: p}
			r.stepFn = r.step
		}
		r.fn = t.fn
		p.eng.After(t.d, r.stepFn)
	}
}
