// Package kv implements a LevelDB-shaped single-node storage engine: a
// memtable absorbing writes, a write-ahead log, immutable sorted runs laid
// out on the device address space with in-memory block indexes, and
// background compaction. Reads descend memtable → runs and issue exactly
// one block IO through the SLO-aware storage stack — the engine the paper
// modifies to call MittOS system calls ("we first modify LevelDB to use
// MITTOS system calls, and then the returned EBUSY is propagated to Riak",
// §5).
package kv

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/metrics"
	"mittos/internal/sim"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kv: key not found")

// Config shapes the engine.
type Config struct {
	// BlockSize is the on-device record block (4KB: a 1KB value plus
	// key/metadata padding rounds to one page).
	BlockSize int
	// MemtableCap is the number of entries buffered before a flush.
	MemtableCap int
	// MaxRuns triggers compaction when exceeded.
	MaxRuns int
	// RegionBase/RegionSize bound the device range the engine owns.
	RegionBase int64
	RegionSize int64
	// MemLatency is the cost of a memtable hit.
	MemLatency time.Duration
	// Proc/Class/Priority are the engine's IO identity.
	Proc     int
	Class    blockio.Class
	Priority int
	// Mmap selects the mmap read path (§5: "MongoDB by default uses
	// mmap() to read data file"): gets call addrcheck() before touching
	// the mapped block and page-fault on misses, instead of read().
	// Requires a MittCache target (set via UseMmap).
	Mmap bool
	// StallBytes is the background-IO high-water mark above which SLO puts
	// see flush/compaction backpressure: once the outstanding background
	// bytes (WAL groups, flush chunks, compaction churn) exceed it, the
	// predicted drain time is exposed as the put's predicted wait and puts
	// whose deadline it breaks are fast-rejected before the memtable
	// mutates. 0 disables the check.
	StallBytes int64
	// Reqs, when non-nil, is the block-IO request pool the store draws
	// from — injected so a fleet (or an experiment arena spanning legs) can
	// share one warm pool. Nil gets a private pool.
	Reqs *blockio.Pool
}

// DefaultConfig sizes the engine for a region of the given extent.
func DefaultConfig(base, size int64) Config {
	return Config{
		BlockSize:   4096,
		MemtableCap: 4096,
		MaxRuns:     6,
		RegionBase:  base,
		RegionSize:  size,
		MemLatency:  5 * time.Microsecond,
		Proc:        1,
		Class:       blockio.ClassBestEffort,
		Priority:    4,
		StallBytes:  1 << 20,
	}
}

// run is one immutable sorted table: an in-memory index from key to block
// slot within the run's device extent. stride is the slot spacing: flushed
// runs pack blocks contiguously (stride == block size), while the preloaded
// base run spreads them across the whole region the way a long-lived,
// fragmented database does — giving random gets realistic seek distances.
type run struct {
	base   int64
	stride int64
	index  map[int64]int32
}

func (r *run) offsetOf(key int64, blockSize int) (int64, bool) {
	slot, ok := r.index[key]
	if !ok {
		return 0, false
	}
	stride := r.stride
	if stride < int64(blockSize) {
		stride = int64(blockSize)
	}
	return r.base + int64(slot)*stride, true
}

// Store is the engine.
type Store struct {
	eng    *sim.Engine
	cfg    Config
	target core.Target
	mcache *core.MittCache // non-nil in mmap mode
	ids    *blockio.IDGen

	memtable map[int64]bool
	runs     []*run // newest first
	alloc    int64  // bump allocator within the region
	walPos   int64

	// Per-IO pools: requests, fire-and-forget write completions, and
	// memory-latency completions. Steady-state operation recycles these
	// instead of allocating.
	reqs    *blockio.Pool
	bgFree  []*bgWrite
	memFree []*memOp
	// versions tracks each key's write count — the replication timestamp
	// consistency-aware failover compares (§8.3). Keys absent from the
	// map are at their preloaded base version 0.
	versions map[int64]uint64

	// SLO put path: the group-commit queue of deadline-carrying puts
	// awaiting a WAL append, the in-flight-group latch, and the group
	// context freelist. One WAL group IO is outstanding at a time — the
	// classic single-writer group commit.
	walPend   []putWaiter
	walBusy   bool
	groupFree []*walGroup

	// Backpressure accounting: outstanding background bytes and an EWMA of
	// the observed background service rate (ns/byte), measured from
	// completed background IOs. Their product predicts the drain time a
	// stalled put would wait out.
	bgBytes       int64
	ewmaNsPerByte float64

	// rec, when non-nil, records the put-path stage histograms
	// (wal-queue / wal-service / mem-ack) under the owning node's recorder.
	rec *metrics.Recorder

	gets, puts, flushes, compactions uint64
	walGroups, putRetries            uint64
}

// New builds a store over an SLO-aware storage target. The IDGen is shared
// with the rest of the node so request IDs stay unique.
func New(eng *sim.Engine, cfg Config, target core.Target, ids *blockio.IDGen) *Store {
	if cfg.BlockSize <= 0 || cfg.RegionSize <= 0 {
		panic("kv: invalid config")
	}
	if cfg.MemtableCap <= 0 {
		cfg.MemtableCap = 1024
	}
	if cfg.MaxRuns <= 1 {
		cfg.MaxRuns = 2
	}
	reqs := cfg.Reqs
	if reqs == nil {
		reqs = &blockio.Pool{}
	}
	return &Store{
		eng: eng, cfg: cfg, target: target, ids: ids,
		reqs:     reqs,
		memtable: make(map[int64]bool),
		versions: make(map[int64]uint64),
		alloc:    cfg.RegionBase,
	}
}

// UseMmap switches the store to the mmap read path over the given
// MittCache: every Get does an addrcheck() page-table walk first; EBUSY
// from the walk propagates to the caller exactly as a read() rejection
// would, and misses the application is willing to wait for page-fault
// through the cache.
func (s *Store) UseMmap(mc *core.MittCache) {
	s.cfg.Mmap = true
	s.mcache = mc
}

// Mmap reports whether the store reads via the mmap path.
func (s *Store) Mmap() bool { return s.cfg.Mmap && s.mcache != nil }

// SetRecorder wires the put-path stage histograms (wal-queue, wal-service,
// mem-ack) to the owning node's recorder. A nil recorder (the default) keeps
// every stage observation a no-op.
func (s *Store) SetRecorder(rec *metrics.Recorder) { s.rec = rec }

// Stats returns operation counters.
func (s *Store) Stats() (gets, puts, flushes, compactions uint64) {
	return s.gets, s.puts, s.flushes, s.compactions
}

// WalGroups reports how many group-commit WAL IOs the store has issued.
func (s *Store) WalGroups() uint64 { return s.walGroups }

// PutRetries reports SLO puts re-queued into a fresh WAL group after their
// group was rejected on behalf of a tighter member deadline.
func (s *Store) PutRetries() uint64 { return s.putRetries }

// BackgroundBytes reports the outstanding background-write backlog — the
// flush/compaction pressure the SLO put path exposes as predicted wait.
func (s *Store) BackgroundBytes() int64 { return s.bgBytes }

// Runs returns the current number of immutable runs.
func (s *Store) Runs() int { return len(s.runs) }

// Preload installs keys [0, n) as one base run without consuming virtual
// time — the bulk-load phase every experiment starts from.
func (s *Store) Preload(n int64) {
	if n <= 0 {
		return
	}
	need := n * int64(s.cfg.BlockSize)
	if need > s.cfg.RegionSize {
		panic(fmt.Sprintf("kv: preload of %d keys exceeds region (%d > %d bytes)",
			n, need, s.cfg.RegionSize))
	}
	// Spread the base run across the usable region (minus the WAL tail)
	// so random gets seek like they would on a real aged database.
	const walReserve = 1024 * 4096 * 2
	usable := s.cfg.RegionSize - walReserve
	stride := (usable / n) &^ 4095
	if stride < int64(s.cfg.BlockSize) {
		stride = int64(s.cfg.BlockSize)
	}
	r := &run{base: s.cfg.RegionBase, stride: stride, index: make(map[int64]int32, n)}
	for k := int64(0); k < n; k++ {
		r.index[k] = int32(k)
	}
	s.runs = append([]*run{r}, s.runs...)
	if s.alloc < s.cfg.RegionBase+stride*n {
		s.alloc = s.cfg.RegionBase + stride*n
	}
}

// Version reports a key's current write count (0 for preloaded-only keys).
func (s *Store) Version(key int64) uint64 { return s.versions[key] }

// ApplyReplicated records that a replicated write at the given version has
// been applied locally (replication apply is asynchronous in
// eventually-consistent stores; only newer versions win). The simulation
// does not carry payload bytes, so only the version metadata moves — reads
// of the key still exercise the normal storage path.
func (s *Store) ApplyReplicated(key int64, version uint64) {
	if version > s.versions[key] {
		s.versions[key] = version
	}
}

// KeyOffset reports the device offset currently serving a key (tests and
// the cache-warming setup use it).
func (s *Store) KeyOffset(key int64) (int64, bool) {
	for _, r := range s.runs {
		if off, ok := r.offsetOf(key, s.cfg.BlockSize); ok {
			return off, true
		}
	}
	return 0, false
}

// bgWrite completes a fire-and-forget background write (WAL, flush,
// compaction): it recycles the request and itself. The callback field is
// bound once so background IO allocates nothing in steady state.
type bgWrite struct {
	s      *Store
	req    *blockio.Request
	doneFn func(error) // pre-bound (*bgWrite).done
}

func (w *bgWrite) done(error) {
	s, req := w.s, w.req
	w.req = nil
	s.bgFree = append(s.bgFree, w)
	s.noteBgDone(req)
	req.Release()
}

// noteBgDone retires one background IO from the backpressure accounting and
// folds its observed service rate into the drain-time EWMA. Called before
// the request is released, while its timestamps are still valid.
func (s *Store) noteBgDone(req *blockio.Request) {
	s.bgBytes -= int64(req.Size)
	lat := req.CompleteTime.Sub(req.SubmitTime)
	if lat <= 0 || req.Size <= 0 {
		return
	}
	sample := float64(lat) / float64(req.Size)
	if s.ewmaNsPerByte == 0 {
		s.ewmaNsPerByte = sample
		return
	}
	s.ewmaNsPerByte = 0.8*s.ewmaNsPerByte + 0.2*sample
}

// predictPutStall estimates the flush/compaction backpressure an SLO put
// faces: zero while the background backlog is under the high-water mark,
// else the predicted time to drain it at the observed service rate.
func (s *Store) predictPutStall() time.Duration {
	if s.cfg.StallBytes <= 0 || s.bgBytes <= s.cfg.StallBytes || s.ewmaNsPerByte == 0 {
		return 0
	}
	return time.Duration(float64(s.bgBytes) * s.ewmaNsPerByte)
}

// submitBackground issues one pooled fire-and-forget write/read.
func (s *Store) submitBackground(op blockio.Op, off int64, size int, class blockio.Class, prio int) {
	req := s.reqs.Get()
	req.ID, req.Op, req.Offset, req.Size = s.ids.Next(), op, off, size
	req.Proc, req.Class, req.Priority = s.cfg.Proc, class, prio
	var w *bgWrite
	if n := len(s.bgFree); n > 0 {
		w = s.bgFree[n-1]
		s.bgFree = s.bgFree[:n-1]
	} else {
		w = &bgWrite{s: s}
		w.doneFn = w.done
	}
	w.req = req
	s.bgBytes += int64(size)
	s.target.SubmitSLO(req, w.doneFn)
}

// memOp delivers a memory-latency verdict (memtable hit, miss, mmap
// rejection) through the engine without a per-call closure.
type memOp struct {
	s      *Store
	err    error
	onDone func(error)
	fireFn func() // pre-bound (*memOp).fire
}

func (op *memOp) fire() {
	s, onDone, err := op.s, op.onDone, op.err
	op.onDone = nil
	op.err = nil
	s.memFree = append(s.memFree, op)
	onDone(err)
}

func (s *Store) afterMem(err error, onDone func(error)) {
	var op *memOp
	if n := len(s.memFree); n > 0 {
		op = s.memFree[n-1]
		s.memFree = s.memFree[:n-1]
	} else {
		op = &memOp{s: s}
		op.fireFn = op.fire
	}
	op.err, op.onDone = err, onDone
	s.eng.After(s.cfg.MemLatency, op.fireFn)
}

func (s *Store) allocExtent(size int64) int64 {
	if s.alloc+size > s.cfg.RegionBase+s.cfg.RegionSize {
		// Wrap: immutable runs are replaced wholesale by compaction, so
		// reusing the front of the region models space reclamation.
		s.alloc = s.cfg.RegionBase
	}
	base := s.alloc
	s.alloc += size
	return base
}

// Get reads a key with an optional deadline SLO. onDone receives nil,
// blockio.ErrBusy (possibly wrapped) on MittOS rejection, or ErrNotFound.
// The returned request (nil for memtable hits and misses) lets callers
// revoke the IO while it is still queued — the hook tied requests need.
func (s *Store) Get(key int64, deadline time.Duration, onDone func(error)) *blockio.Request {
	s.gets++
	if s.memtable[key] {
		s.afterMem(nil, onDone)
		return nil
	}
	for _, r := range s.runs {
		off, ok := r.offsetOf(key, s.cfg.BlockSize)
		if !ok {
			continue
		}
		if s.Mmap() {
			// The §5 MongoDB path: addrcheck(&myDB[i], size, deadline)
			// before dereferencing the mapped pointer.
			if err := s.mcache.AddrCheck(off, s.cfg.BlockSize, deadline); err != nil {
				s.afterMem(err, onDone)
				return nil
			}
			// Resident (or a tolerable fault): touch the mapping. The
			// fault path carries no deadline — the check already decided.
			req := s.reqs.Get()
			req.ID, req.Op, req.Offset, req.Size = s.ids.Next(), blockio.Read, off, s.cfg.BlockSize
			req.Proc, req.Class, req.Priority = s.cfg.Proc, s.cfg.Class, s.cfg.Priority
			// Via s.target (== the MittCache, possibly metrics-traced) so
			// the touch crosses the node's span boundary exactly once.
			s.target.SubmitSLO(req, onDone)
			return req
		}
		// Pooled: whoever owns onDone also owns req.Release() at the
		// terminal (cluster.Node's serve context does; bare test callers
		// may simply drop it, which falls back to allocation).
		req := s.reqs.Get()
		req.ID, req.Op, req.Offset, req.Size = s.ids.Next(), blockio.Read, off, s.cfg.BlockSize
		req.Proc, req.Class, req.Priority = s.cfg.Proc, s.cfg.Class, s.cfg.Priority
		req.Deadline = deadline
		s.target.SubmitSLO(req, onDone)
		return req
	}
	s.afterMem(ErrNotFound, onDone)
	return nil
}

// Put inserts/overwrites a key. User-facing latency is the memtable insert:
// "writes are first buffered to memory and flushed in the background, thus
// user-facing write latencies are not directly affected by drive-level
// contention" (§7.8.6). The WAL append proceeds asynchronously (group
// commit) and the memtable flush when it fills.
func (s *Store) Put(key int64, onDone func(error)) {
	s.puts++
	s.memtable[key] = true
	s.versions[key]++
	s.submitBackground(blockio.Write, s.walOffset(), s.cfg.BlockSize, s.cfg.Class, s.cfg.Priority)
	if len(s.memtable) >= s.cfg.MemtableCap {
		s.flush()
	}
	s.afterMem(nil, onDone)
}

// putWaiter is one SLO put queued for the next group-commit WAL append.
type putWaiter struct {
	key      int64
	deadline time.Duration
	enq      sim.Time
	onDone   func(error)
	// retried marks a put already re-queued once after its group was
	// rejected on behalf of a tighter member deadline.
	retried bool
}

// walGroup is one in-flight group-commit WAL IO and the puts riding it; the
// completion callback is bound once so the steady path allocates nothing.
type walGroup struct {
	s       *Store
	req     *blockio.Request
	members []putWaiter
	doneFn  func(error) // pre-bound (*walGroup).done
}

func (s *Store) getGroup() *walGroup {
	var g *walGroup
	if n := len(s.groupFree); n > 0 {
		g = s.groupFree[n-1]
		s.groupFree = s.groupFree[:n-1]
	} else {
		g = &walGroup{s: s}
		g.doneFn = g.done
	}
	return g
}

// PutSLO is the deadline-carrying put (§3's SLO-aware interface applied to
// writes). A zero deadline is exactly Put: vanilla fire-and-forget WAL plus
// memtable ack. With a deadline the put becomes a durable group-commit
// write (PutDurable) whose WAL admission can fast-reject it.
func (s *Store) PutSLO(key int64, deadline time.Duration, onDone func(error)) {
	if deadline <= 0 {
		s.Put(key, onDone)
		return
	}
	s.PutDurable(key, deadline, onDone)
}

// PutDurable is the write-path SLO subsystem's entry point: the put is
// acked only after its WAL append is durable. Concurrent puts batch into
// one group-commit WAL IO admitted through the node's Mitt* target; the
// group carries the tightest member deadline, EBUSY from the WAL admission
// surfaces as a fast reject BEFORE the memtable mutates, and flush/
// compaction backpressure is exposed as predicted wait. A zero deadline
// means durable-but-no-SLO: the put rides the group commit but is never
// rejected (quorum replication's vanilla baseline). onDone receives nil on
// ack, a busy error (possibly *core.BusyError with the predicted wait) on
// rejection, or blockio.ErrIO when the WAL write itself failed.
func (s *Store) PutDurable(key int64, deadline time.Duration, onDone func(error)) {
	s.puts++
	if deadline > 0 {
		if stall := s.predictPutStall(); stall > deadline {
			// Engine-level backpressure the OS cannot see: the background
			// backlog would outlast the deadline, so reject in memory — no
			// IO is submitted and the memtable stays untouched.
			s.afterMem(&core.BusyError{PredictedWait: stall}, onDone)
			return
		}
	}
	s.walPend = append(s.walPend, putWaiter{
		key: key, deadline: deadline, enq: s.eng.Now(), onDone: onDone,
	})
	if !s.walBusy {
		s.flushWalGroup()
	}
}

// flushWalGroup batches every pending put into one WAL append (clamped to
// the contiguous tail of the log ring) and submits it with the group's
// tightest deadline through the SLO-aware target.
func (s *Store) flushWalGroup() {
	if len(s.walPend) == 0 {
		return
	}
	k := len(s.walPend)
	if rem := walBlocks - int(s.walPos%walBlocks); k > rem {
		k = rem
	}
	g := s.getGroup()
	g.members = append(g.members[:0], s.walPend[:k]...)
	n := copy(s.walPend, s.walPend[k:])
	for i := n; i < len(s.walPend); i++ {
		s.walPend[i] = putWaiter{}
	}
	s.walPend = s.walPend[:n]

	// The group's deadline is the tightest member SLO; members without one
	// (deadline 0, durable-but-vanilla) never tighten it, and a group of
	// only those carries no deadline at all — plain admission passthrough.
	minDL := time.Duration(0)
	oldest := g.members[0].enq
	now := s.eng.Now()
	for i := range g.members {
		m := &g.members[i]
		if m.deadline > 0 && (minDL == 0 || m.deadline < minDL) {
			minDL = m.deadline
		}
		if m.enq < oldest {
			oldest = m.enq
		}
		s.rec.Observe(metrics.RNode, metrics.HPutWalQueue, blockio.Write, now.Sub(m.enq))
	}

	req := s.reqs.Get()
	req.ID, req.Op, req.Offset, req.Size = s.ids.Next(), blockio.Write, s.walOffsetN(k), k*s.cfg.BlockSize
	req.Proc, req.Class, req.Priority = s.cfg.Proc, s.cfg.Class, s.cfg.Priority
	req.Deadline = minDL
	req.QueuedTime = oldest
	g.req = req
	s.walBusy = true
	s.walGroups++
	s.bgBytes += int64(req.Size)
	s.target.SubmitSLO(req, g.doneFn)
}

// done is the group's single completion terminal: on success every member's
// key is applied to the memtable and acked at memory latency; on EBUSY no
// memtable state moves — members whose own deadline still fits the predicted
// wait are re-queued once into a fresh group, the rest hear the rejection;
// on EIO every member hears the write failure. Either way the next pending
// group is flushed.
func (g *walGroup) done(err error) {
	s, req := g.s, g.req
	g.req = nil
	busy := core.IsBusy(err)
	s.bgBytes -= int64(req.Size)
	if !busy {
		lat := req.CompleteTime.Sub(req.SubmitTime)
		if lat > 0 && req.Size > 0 {
			sample := float64(lat) / float64(req.Size)
			if s.ewmaNsPerByte == 0 {
				s.ewmaNsPerByte = sample
			} else {
				s.ewmaNsPerByte = 0.8*s.ewmaNsPerByte + 0.2*sample
			}
		}
		if err == nil {
			s.rec.Observe(metrics.RNode, metrics.HPutWalService, blockio.Write, req.CompleteTime.Sub(req.SubmitTime))
		}
	}
	req.Release()

	var predWait time.Duration = -1
	if busy {
		var be *core.BusyError
		if errors.As(err, &be) {
			predWait = be.PredictedWait
		}
	}
	now := s.eng.Now()
	for i := range g.members {
		m := &g.members[i]
		switch {
		case err == nil:
			// WAL durable: mutate the memtable and ack at memory latency.
			s.memtable[m.key] = true
			s.versions[m.key]++
			if len(s.memtable) >= s.cfg.MemtableCap {
				s.flush()
			}
			s.rec.Observe(metrics.RNode, metrics.HPutMemAck, blockio.Write, now.Sub(m.enq))
			s.afterMem(nil, m.onDone)
		case busy && (m.deadline <= 0 ||
			(!m.retried && predWait >= 0 && m.deadline >= predWait)):
			// The group was rejected on behalf of a tighter member deadline.
			// Members with no SLO of their own (deadline 0) always ride the
			// next group — they can never hear EBUSY — and members whose own
			// deadline still fits the predicted wait ride it once instead of
			// a false rejection. Each EBUSY round thus sheds the too-tight
			// members, so within two rounds only deadline-0 members remain
			// and the group submits as plain passthrough.
			s.putRetries++
			s.walPend = append(s.walPend, putWaiter{
				key: m.key, deadline: m.deadline, enq: m.enq,
				onDone: m.onDone, retried: true,
			})
		default:
			// Fast reject (or WAL write failure): the memtable never
			// mutated, the caller hears the verdict now — the EBUSY
			// syscall round trip was already charged by the admission
			// layer.
			m.onDone(err)
		}
		m.onDone = nil
	}
	g.members = g.members[:0]
	s.groupFree = append(s.groupFree, g)
	s.walBusy = false
	if len(s.walPend) > 0 {
		s.flushWalGroup()
	}
}

// walBlocks sizes the log ring at the region tail.
const walBlocks = 1024

// walOffset cycles a small log extent at the region tail.
func (s *Store) walOffset() int64 { return s.walOffsetN(1) }

// walOffsetN reserves n consecutive log blocks (the caller clamps n to the
// ring remainder so a group never wraps) and returns the first's offset.
func (s *Store) walOffsetN(n int) int64 {
	off := s.cfg.RegionBase + s.cfg.RegionSize - int64(walBlocks*s.cfg.BlockSize) +
		(s.walPos%walBlocks)*int64(s.cfg.BlockSize)
	s.walPos += int64(n)
	return off
}

// flush turns the memtable into a new run, writing its blocks sequentially
// in the background at the engine's priority.
func (s *Store) flush() {
	s.flushes++
	n := int64(len(s.memtable))
	r := &run{
		base:   s.allocExtent(n * int64(s.cfg.BlockSize)),
		stride: int64(s.cfg.BlockSize),
		index:  make(map[int64]int32, n),
	}
	// Slot assignment decides each key's device offset, which decides the
	// seek distance of every future read of that key — it must not depend
	// on Go's randomized map order. Flush in sorted key order (real LSM
	// flushes write sorted tables anyway).
	keys := make([]int64, 0, n)
	for k := range s.memtable { //mapiter:sorted
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for slot, k := range keys {
		r.index[k] = int32(slot)
	}
	s.memtable = make(map[int64]bool)
	s.runs = append([]*run{r}, s.runs...)
	// Background sequential writes, fire-and-forget: chunked 256KB IOs.
	const chunk = 256 << 10
	bytes := n * int64(s.cfg.BlockSize)
	for off := int64(0); off < bytes; off += chunk {
		size := chunk
		if off+int64(size) > bytes {
			size = int(bytes - off)
		}
		s.submitBackground(blockio.Write, r.base+off, size, blockio.ClassIdle, 7)
	}
	if len(s.runs) > s.cfg.MaxRuns {
		s.compact()
	}
}

// compact merges all runs into one, reading and rewriting sequentially at
// idle priority — the background churn that makes LSM stores noisy
// neighbors to themselves.
func (s *Store) compact() {
	s.compactions++
	merged := make(map[int64]int32)
	for i := len(s.runs) - 1; i >= 0; i-- { // oldest first; newer overwrite
		for k := range s.runs[i].index { //mapiter:sorted
			merged[k] = 0
		}
	}
	total := int64(len(merged))
	// As in flush: the merged run's slot layout feeds future seek
	// distances, so assign slots in sorted key order, never map order.
	keys := make([]int64, 0, total)
	for k := range merged { //mapiter:sorted
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	r := &run{base: s.allocExtent(total * int64(s.cfg.BlockSize)),
		stride: int64(s.cfg.BlockSize), index: merged}
	for slot, k := range keys {
		merged[k] = int32(slot)
	}
	old := s.runs
	s.runs = []*run{r}
	// Background IO: one large sequential read per old run + sequential
	// writes of the merged run.
	const chunk = 1 << 20
	for _, o := range old {
		bytes := int64(len(o.index)) * int64(s.cfg.BlockSize)
		for off := int64(0); off < bytes; off += chunk {
			size := chunk
			if off+int64(size) > bytes {
				size = int(bytes - off)
			}
			s.submitBackground(blockio.Read, o.base+off, size, blockio.ClassIdle, 7)
		}
	}
	bytes := total * int64(s.cfg.BlockSize)
	for off := int64(0); off < bytes; off += chunk {
		size := chunk
		if off+int64(size) > bytes {
			size = int(bytes - off)
		}
		s.submitBackground(blockio.Write, r.base+off, size, blockio.ClassIdle, 7)
	}
}
