package kv

import (
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/oscache"
	"mittos/internal/sim"
)

type kvRig struct {
	eng   *sim.Engine
	disk  *disk.Disk
	store *Store
	mitt  *core.MittNoop
}

func newKVRig(t *testing.T) *kvRig {
	t.Helper()
	eng := sim.NewEngine()
	dcfg := disk.DefaultConfig()
	d := disk.New(eng, dcfg, sim.NewRNG(51, t.Name()))
	nop := iosched.NewNoop(eng, d)
	prof := disk.ProfileTwin(dcfg, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	mitt := core.NewMittNoop(eng, nop, prof, core.DefaultOptions())
	var ids blockio.IDGen
	store := New(eng, DefaultConfig(0, 100<<30), mitt, &ids)
	return &kvRig{eng: eng, disk: d, store: store, mitt: mitt}
}

func TestGetPreloadedKey(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(10000)
	var err error = blockio.ErrBusy
	r.store.Get(1234, 50*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("Get = %v", err)
	}
	if r.disk.Served() != 1 {
		t.Fatalf("disk served %d IOs, want exactly 1 per get", r.disk.Served())
	}
}

func TestGetMissingKey(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(100)
	var err error
	r.store.Get(9999, 0, func(e error) { err = e })
	r.eng.Run()
	if err != ErrNotFound {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestPutThenGetServedFromMemtable(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(100)
	done := false
	r.store.Put(5, func(e error) {
		if e != nil {
			t.Fatalf("Put = %v", e)
		}
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("Put never completed")
	}
	served := r.disk.Served()
	var err error = blockio.ErrBusy
	r.store.Get(5, 0, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("Get = %v", err)
	}
	if r.disk.Served() != served {
		t.Fatal("memtable hit went to disk")
	}
}

func TestPutIsFastUnderReadNoise(t *testing.T) {
	// §7.8.6: writes are WAL appends absorbed by NVRAM; read contention
	// must not inflate them.
	r := newKVRig(t)
	r.store.Preload(10000)
	rng := sim.NewRNG(3, "noise")
	// Saturate the disk with reads.
	for i := 0; i < 20; i++ {
		r.store.Get(rng.Int63n(10000), 0, func(error) {})
	}
	start := r.eng.Now()
	var lat time.Duration
	r.store.Put(3, func(error) { lat = r.eng.Now().Sub(start) })
	r.eng.Run()
	if lat > time.Millisecond {
		t.Fatalf("Put latency %v under read noise; want NVRAM-fast", lat)
	}
}

func TestGetWithDeadlineGetsEBUSYUnderContention(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(1 << 20) // 4GB of blocks: room for real seeks
	rng := sim.NewRNG(4, "noise")
	// Noise concentrated at the low end of the key space; the probe lands
	// at the far end, so SSTF cannot jump it ahead of the pack.
	for i := 0; i < 15; i++ {
		r.store.Get(rng.Int63n(1000), 0, func(error) {})
	}
	var err error
	r.store.Get(1<<20-1, 5*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !core.IsBusy(err) {
		t.Fatalf("contended deadline Get = %v, want EBUSY", err)
	}
}

func TestFlushCreatesRunsAndGetStillWorks(t *testing.T) {
	r := newKVRig(t)
	cfg := DefaultConfig(0, 100<<30)
	cfg.MemtableCap = 64
	var ids blockio.IDGen
	r.store = New(r.eng, cfg, r.mitt, &ids)
	r.store.Preload(1000)
	for k := int64(2000); k < 2200; k++ {
		r.store.Put(k, func(error) {})
		r.eng.Run()
	}
	_, _, flushes, _ := r.store.Stats()
	if flushes == 0 {
		t.Fatal("no flush after 200 puts with cap 64")
	}
	if r.store.Runs() < 2 {
		t.Fatalf("runs = %d", r.store.Runs())
	}
	// A flushed (non-memtable) key must still be readable via a run.
	var err error = blockio.ErrBusy
	r.store.Get(2000, 0, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("Get(flushed) = %v", err)
	}
}

func TestCompactionBoundsRuns(t *testing.T) {
	r := newKVRig(t)
	cfg := DefaultConfig(0, 100<<30)
	cfg.MemtableCap = 32
	cfg.MaxRuns = 3
	var ids blockio.IDGen
	r.store = New(r.eng, cfg, r.mitt, &ids)
	for k := int64(0); k < 1000; k++ {
		r.store.Put(k%200, func(error) {}) // overwrites force merge work
		r.eng.Run()
	}
	_, _, _, compactions := r.store.Stats()
	if compactions == 0 {
		t.Fatal("no compaction happened")
	}
	if r.store.Runs() > cfg.MaxRuns {
		t.Fatalf("runs = %d > MaxRuns %d after compaction", r.store.Runs(), cfg.MaxRuns)
	}
	// All live keys must remain readable.
	for _, k := range []int64{0, 100, 199} {
		var err error = blockio.ErrBusy
		r.store.Get(k, 0, func(e error) { err = e })
		r.eng.Run()
		if err != nil {
			t.Fatalf("Get(%d) after compaction = %v", k, err)
		}
	}
}

func TestKeyOffsetStable(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(1000)
	off1, ok1 := r.store.KeyOffset(42)
	off2, ok2 := r.store.KeyOffset(42)
	if !ok1 || !ok2 || off1 != off2 {
		t.Fatal("KeyOffset unstable")
	}
	if _, ok := r.store.KeyOffset(99999); ok {
		t.Fatal("KeyOffset found a missing key")
	}
}

func TestPreloadTooBigPanics(t *testing.T) {
	r := newKVRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.store.Preload(1 << 40)
}

func TestMmapPathAddrCheckEBUSY(t *testing.T) {
	// §5's MongoDB integration: gets through the mmap path call
	// addrcheck() first; a swapped-out block with an in-memory deadline
	// bounces with EBUSY and keeps swapping in behind the error.
	eng := sim.NewEngine()
	dcfg := disk.DefaultConfig()
	d := disk.New(eng, dcfg, sim.NewRNG(91, "mmap-disk"))
	nop := iosched.NewNoop(eng, d)
	prof := disk.ProfileTwin(dcfg, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	lower := core.NewMittNoop(eng, nop, prof, core.DefaultOptions())
	ccfg := oscache.DefaultConfig()
	ccfg.CapacityPages = 100000
	cache := oscache.New(eng, ccfg, nop)
	mc := core.NewMittCache(eng, cache, lower, dcfg.SeqCost, core.DefaultOptions())

	var ids blockio.IDGen
	store := New(eng, DefaultConfig(0, 100<<30), mc, &ids)
	store.UseMmap(mc)
	store.Preload(1000)
	if !store.Mmap() {
		t.Fatal("mmap mode not active")
	}

	// Warm key 7's block, then evict it (memory contention).
	off, _ := store.KeyOffset(7)
	cache.Warm(off, 4096)
	var err error = blockio.ErrBusy
	store.Get(7, 200*time.Microsecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("resident mmap get: %v", err)
	}
	cache.EvictRange(off, 4096)
	store.Get(7, 200*time.Microsecond, func(e error) { err = e })
	eng.Run()
	if !core.IsBusy(err) {
		t.Fatalf("evicted mmap get: %v, want EBUSY from addrcheck", err)
	}
	// Background swap-in repopulated the page: the retry hits.
	store.Get(7, 200*time.Microsecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("post-swap-in mmap get: %v", err)
	}
}

func TestMmapPathColdFaultTolerated(t *testing.T) {
	// A cold block with a disk-tolerant deadline page-faults through.
	eng := sim.NewEngine()
	dcfg := disk.DefaultConfig()
	d := disk.New(eng, dcfg, sim.NewRNG(92, "mmap-disk"))
	nop := iosched.NewNoop(eng, d)
	prof := disk.ProfileTwin(dcfg, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	lower := core.NewMittNoop(eng, nop, prof, core.DefaultOptions())
	ccfg := oscache.DefaultConfig()
	cache := oscache.New(eng, ccfg, nop)
	mc := core.NewMittCache(eng, cache, lower, dcfg.SeqCost, core.DefaultOptions())
	var ids blockio.IDGen
	store := New(eng, DefaultConfig(0, 100<<30), mc, &ids)
	store.UseMmap(mc)
	store.Preload(1000)
	var err error = blockio.ErrBusy
	store.Get(3, 50*time.Millisecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("cold mmap fault: %v", err)
	}
	// And it is now resident.
	off, _ := store.KeyOffset(3)
	if !cache.Resident(off, 4096) {
		t.Fatal("fault did not populate the mapping")
	}
}
