package kv

import (
	"errors"
	"testing"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/oscache"
	"mittos/internal/sim"
)

type kvRig struct {
	eng   *sim.Engine
	disk  *disk.Disk
	store *Store
	mitt  *core.MittNoop
}

func newKVRig(t *testing.T) *kvRig {
	t.Helper()
	eng := sim.NewEngine()
	dcfg := disk.DefaultConfig()
	d := disk.New(eng, dcfg, sim.NewRNG(51, t.Name()))
	nop := iosched.NewNoop(eng, d)
	prof := disk.ProfileTwin(dcfg, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	mitt := core.NewMittNoop(eng, nop, prof, core.DefaultOptions())
	var ids blockio.IDGen
	store := New(eng, DefaultConfig(0, 100<<30), mitt, &ids)
	return &kvRig{eng: eng, disk: d, store: store, mitt: mitt}
}

func TestGetPreloadedKey(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(10000)
	var err error = blockio.ErrBusy
	r.store.Get(1234, 50*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("Get = %v", err)
	}
	if r.disk.Served() != 1 {
		t.Fatalf("disk served %d IOs, want exactly 1 per get", r.disk.Served())
	}
}

func TestGetMissingKey(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(100)
	var err error
	r.store.Get(9999, 0, func(e error) { err = e })
	r.eng.Run()
	if err != ErrNotFound {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestPutThenGetServedFromMemtable(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(100)
	done := false
	r.store.Put(5, func(e error) {
		if e != nil {
			t.Fatalf("Put = %v", e)
		}
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("Put never completed")
	}
	served := r.disk.Served()
	var err error = blockio.ErrBusy
	r.store.Get(5, 0, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("Get = %v", err)
	}
	if r.disk.Served() != served {
		t.Fatal("memtable hit went to disk")
	}
}

func TestPutIsFastUnderReadNoise(t *testing.T) {
	// §7.8.6: writes are WAL appends absorbed by NVRAM; read contention
	// must not inflate them.
	r := newKVRig(t)
	r.store.Preload(10000)
	rng := sim.NewRNG(3, "noise")
	// Saturate the disk with reads.
	for i := 0; i < 20; i++ {
		r.store.Get(rng.Int63n(10000), 0, func(error) {})
	}
	start := r.eng.Now()
	var lat time.Duration
	r.store.Put(3, func(error) { lat = r.eng.Now().Sub(start) })
	r.eng.Run()
	if lat > time.Millisecond {
		t.Fatalf("Put latency %v under read noise; want NVRAM-fast", lat)
	}
}

func TestGetWithDeadlineGetsEBUSYUnderContention(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(1 << 20) // 4GB of blocks: room for real seeks
	rng := sim.NewRNG(4, "noise")
	// Noise concentrated at the low end of the key space; the probe lands
	// at the far end, so SSTF cannot jump it ahead of the pack.
	for i := 0; i < 15; i++ {
		r.store.Get(rng.Int63n(1000), 0, func(error) {})
	}
	var err error
	r.store.Get(1<<20-1, 5*time.Millisecond, func(e error) { err = e })
	r.eng.Run()
	if !core.IsBusy(err) {
		t.Fatalf("contended deadline Get = %v, want EBUSY", err)
	}
}

func TestFlushCreatesRunsAndGetStillWorks(t *testing.T) {
	r := newKVRig(t)
	cfg := DefaultConfig(0, 100<<30)
	cfg.MemtableCap = 64
	var ids blockio.IDGen
	r.store = New(r.eng, cfg, r.mitt, &ids)
	r.store.Preload(1000)
	for k := int64(2000); k < 2200; k++ {
		r.store.Put(k, func(error) {})
		r.eng.Run()
	}
	_, _, flushes, _ := r.store.Stats()
	if flushes == 0 {
		t.Fatal("no flush after 200 puts with cap 64")
	}
	if r.store.Runs() < 2 {
		t.Fatalf("runs = %d", r.store.Runs())
	}
	// A flushed (non-memtable) key must still be readable via a run.
	var err error = blockio.ErrBusy
	r.store.Get(2000, 0, func(e error) { err = e })
	r.eng.Run()
	if err != nil {
		t.Fatalf("Get(flushed) = %v", err)
	}
}

func TestCompactionBoundsRuns(t *testing.T) {
	r := newKVRig(t)
	cfg := DefaultConfig(0, 100<<30)
	cfg.MemtableCap = 32
	cfg.MaxRuns = 3
	var ids blockio.IDGen
	r.store = New(r.eng, cfg, r.mitt, &ids)
	for k := int64(0); k < 1000; k++ {
		r.store.Put(k%200, func(error) {}) // overwrites force merge work
		r.eng.Run()
	}
	_, _, _, compactions := r.store.Stats()
	if compactions == 0 {
		t.Fatal("no compaction happened")
	}
	if r.store.Runs() > cfg.MaxRuns {
		t.Fatalf("runs = %d > MaxRuns %d after compaction", r.store.Runs(), cfg.MaxRuns)
	}
	// All live keys must remain readable.
	for _, k := range []int64{0, 100, 199} {
		var err error = blockio.ErrBusy
		r.store.Get(k, 0, func(e error) { err = e })
		r.eng.Run()
		if err != nil {
			t.Fatalf("Get(%d) after compaction = %v", k, err)
		}
	}
}

func TestKeyOffsetStable(t *testing.T) {
	r := newKVRig(t)
	r.store.Preload(1000)
	off1, ok1 := r.store.KeyOffset(42)
	off2, ok2 := r.store.KeyOffset(42)
	if !ok1 || !ok2 || off1 != off2 {
		t.Fatal("KeyOffset unstable")
	}
	if _, ok := r.store.KeyOffset(99999); ok {
		t.Fatal("KeyOffset found a missing key")
	}
}

func TestPreloadTooBigPanics(t *testing.T) {
	r := newKVRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.store.Preload(1 << 40)
}

func TestMmapPathAddrCheckEBUSY(t *testing.T) {
	// §5's MongoDB integration: gets through the mmap path call
	// addrcheck() first; a swapped-out block with an in-memory deadline
	// bounces with EBUSY and keeps swapping in behind the error.
	eng := sim.NewEngine()
	dcfg := disk.DefaultConfig()
	d := disk.New(eng, dcfg, sim.NewRNG(91, "mmap-disk"))
	nop := iosched.NewNoop(eng, d)
	prof := disk.ProfileTwin(dcfg, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	lower := core.NewMittNoop(eng, nop, prof, core.DefaultOptions())
	ccfg := oscache.DefaultConfig()
	ccfg.CapacityPages = 100000
	cache := oscache.New(eng, ccfg, nop)
	mc := core.NewMittCache(eng, cache, lower, dcfg.SeqCost, core.DefaultOptions())

	var ids blockio.IDGen
	store := New(eng, DefaultConfig(0, 100<<30), mc, &ids)
	store.UseMmap(mc)
	store.Preload(1000)
	if !store.Mmap() {
		t.Fatal("mmap mode not active")
	}

	// Warm key 7's block, then evict it (memory contention).
	off, _ := store.KeyOffset(7)
	cache.Warm(off, 4096)
	var err error = blockio.ErrBusy
	store.Get(7, 200*time.Microsecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("resident mmap get: %v", err)
	}
	cache.EvictRange(off, 4096)
	store.Get(7, 200*time.Microsecond, func(e error) { err = e })
	eng.Run()
	if !core.IsBusy(err) {
		t.Fatalf("evicted mmap get: %v, want EBUSY from addrcheck", err)
	}
	// Background swap-in repopulated the page: the retry hits.
	store.Get(7, 200*time.Microsecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("post-swap-in mmap get: %v", err)
	}
}

func TestMmapPathColdFaultTolerated(t *testing.T) {
	// A cold block with a disk-tolerant deadline page-faults through.
	eng := sim.NewEngine()
	dcfg := disk.DefaultConfig()
	d := disk.New(eng, dcfg, sim.NewRNG(92, "mmap-disk"))
	nop := iosched.NewNoop(eng, d)
	prof := disk.ProfileTwin(dcfg, 42, disk.ProfilerOptions{Buckets: 16, Tries: 4, ProbeSize: 4096})
	lower := core.NewMittNoop(eng, nop, prof, core.DefaultOptions())
	ccfg := oscache.DefaultConfig()
	cache := oscache.New(eng, ccfg, nop)
	mc := core.NewMittCache(eng, cache, lower, dcfg.SeqCost, core.DefaultOptions())
	var ids blockio.IDGen
	store := New(eng, DefaultConfig(0, 100<<30), mc, &ids)
	store.UseMmap(mc)
	store.Preload(1000)
	var err error = blockio.ErrBusy
	store.Get(3, 50*time.Millisecond, func(e error) { err = e })
	eng.Run()
	if err != nil {
		t.Fatalf("cold mmap fault: %v", err)
	}
	// And it is now resident.
	off, _ := store.KeyOffset(3)
	if !cache.Resident(off, 4096) {
		t.Fatal("fault did not populate the mapping")
	}
}

// scriptTarget is a deterministic core.Target for put-path unit tests: each
// SLO-carrying submit pops the next scripted verdict; deadline-0 submits
// always execute (the Target contract: no deadline, no admission check).
// Every IO completes after a fixed service time in virtual time.
type scriptTarget struct {
	eng     *sim.Engine
	script  []error // verdicts for deadline-carrying submits, in order
	svc     time.Duration
	submits int // total submits
	sloSubs int // deadline-carrying submits
}

func (f *scriptTarget) SubmitSLO(req *blockio.Request, onDone func(error)) {
	f.submits++
	var err error
	if req.Deadline > 0 {
		if f.sloSubs < len(f.script) {
			err = f.script[f.sloSubs]
		}
		f.sloSubs++
		if err != nil {
			onDone(err)
			return
		}
	}
	req.SubmitTime = f.eng.Now()
	f.eng.After(f.svc, func() {
		req.CompleteTime = f.eng.Now()
		onDone(nil)
	})
}

func newScriptRig(script ...error) (*sim.Engine, *Store, *scriptTarget) {
	eng := sim.NewEngine()
	ft := &scriptTarget{eng: eng, script: script, svc: time.Millisecond}
	var ids blockio.IDGen
	store := New(eng, DefaultConfig(0, 100<<30), ft, &ids)
	return eng, store, ft
}

func TestPutDurableGroupCommitBatches(t *testing.T) {
	eng, store, ft := newScriptRig()
	acks := 0
	store.PutDurable(0, 0, func(e error) {
		if e != nil {
			t.Fatalf("put 0 = %v", e)
		}
		acks++
	})
	// While the first WAL append is in flight, four more puts arrive; they
	// must share one group-commit IO, not get four appends.
	for k := int64(1); k <= 4; k++ {
		store.PutDurable(k, 0, func(e error) {
			if e != nil {
				t.Fatalf("put = %v", e)
			}
			acks++
		})
	}
	eng.Run()
	if acks != 5 {
		t.Fatalf("acked %d puts, want 5", acks)
	}
	if got := store.WalGroups(); got != 2 {
		t.Fatalf("WAL groups = %d, want 2 (leader + one batch)", got)
	}
	if ft.submits != 2 {
		t.Fatalf("target saw %d submits, want 2", ft.submits)
	}
	for k := int64(0); k <= 4; k++ {
		hit := false
		store.Get(k, 0, func(e error) { hit = e == nil })
		eng.Run()
		if !hit {
			t.Fatalf("key %d missing after durable ack", k)
		}
	}
}

func TestPutGroupRejectionSparesFittingMembers(t *testing.T) {
	// One group, three deadlines: tight (1ms < predicted wait), loose
	// (fits), and none. On the group EBUSY only the tight member may hear
	// it; the others ride the next group — the never-false-reject rule.
	// Script entries are consumed by deadline-carrying groups only: the
	// deadline-0 leader group passes through unscripted.
	eng, store, _ := newScriptRig(
		&core.BusyError{PredictedWait: 5 * time.Millisecond}, // {tight, loose, zero}
		nil, // retry group {loose, zero}
	)
	store.PutDurable(100, 0, func(error) {}) // occupies the WAL; batches the rest
	var errTight, errLoose, errZero error = blockio.ErrBusy, blockio.ErrBusy, blockio.ErrBusy
	store.PutDurable(101, time.Millisecond, func(e error) { errTight = e })
	store.PutDurable(102, 10*time.Millisecond, func(e error) { errLoose = e })
	store.PutDurable(103, 0, func(e error) { errZero = e })
	eng.Run()
	if !core.IsBusy(errTight) {
		t.Fatalf("tight put = %v, want EBUSY", errTight)
	}
	var be *core.BusyError
	if !errors.As(errTight, &be) || be.PredictedWait != 5*time.Millisecond {
		t.Fatalf("tight put lost the wait hint: %v", errTight)
	}
	if errLoose != nil {
		t.Fatalf("loose put = %v; deadline fit the predicted wait, rejecting it is a false reject", errLoose)
	}
	if errZero != nil {
		t.Fatalf("no-SLO put = %v; deadline-0 puts must never hear EBUSY", errZero)
	}
	if got := store.PutRetries(); got != 2 {
		t.Fatalf("put retries = %d, want 2 (loose + zero re-enqueued)", got)
	}
	// The rejected put must have left no state behind.
	var errGet error
	store.Get(101, 0, func(e error) { errGet = e })
	eng.Run()
	if errGet != ErrNotFound {
		t.Fatalf("rejected put mutated the store: Get = %v, want ErrNotFound", errGet)
	}
}

func TestPutBackpressureRejectsBeforeSubmit(t *testing.T) {
	// Flush/compaction backlog past the high-water mark surfaces as a
	// predicted-wait rejection in memory: no WAL IO is even submitted.
	eng, store, ft := newScriptRig()
	store.PutDurable(0, 0, func(error) {})
	eng.Run() // seeds the drain-rate EWMA
	// Pile up > StallBytes of background writes without letting any drain.
	for k := int64(1); k <= 300; k++ {
		store.Put(k, func(error) {})
	}
	if store.BackgroundBytes() <= DefaultConfig(0, 100<<30).StallBytes {
		t.Fatalf("backlog %d bytes under the stall mark; test setup broken", store.BackgroundBytes())
	}
	subs := ft.submits
	var errTight error
	store.PutDurable(1000, time.Millisecond, func(e error) { errTight = e })
	var be *core.BusyError
	if !errors.As(errTight, &be) && errTight != nil {
		t.Fatalf("backpressured put = %v", errTight)
	}
	eng.Run()
	if !errors.As(errTight, &be) || be.PredictedWait <= time.Millisecond {
		t.Fatalf("backpressured put = %v, want BusyError with wait > deadline", errTight)
	}
	if ft.submits != subs {
		t.Fatal("rejected put still submitted a WAL IO")
	}
	var errGet error
	store.Get(1000, 0, func(e error) { errGet = e })
	eng.Run()
	if errGet != ErrNotFound {
		t.Fatalf("rejected put mutated the store: Get = %v", errGet)
	}
	// The same backlog must not touch a no-SLO durable put.
	var errZero error = blockio.ErrBusy
	store.PutDurable(1001, 0, func(e error) { errZero = e })
	eng.Run()
	if errZero != nil {
		t.Fatalf("no-SLO put under backpressure = %v, want nil", errZero)
	}
}
