package blockio

import (
	"testing"
	"time"

	"mittos/internal/sim"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{Read: "read", Write: "write", Erase: "erase", Op(9): "op(9)"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{ClassRealTime: "RT", ClassBestEffort: "BE", ClassIdle: "Idle", Class(9): "class(9)"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Fatalf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestRequestEnd(t *testing.T) {
	r := &Request{Offset: 4096, Size: 1024}
	if r.End() != 5120 {
		t.Fatalf("End() = %d, want 5120", r.End())
	}
}

func TestRequestLatency(t *testing.T) {
	r := &Request{
		SubmitTime:   sim.Time(time.Millisecond),
		DispatchTime: sim.Time(3 * time.Millisecond),
		CompleteTime: sim.Time(10 * time.Millisecond),
	}
	if r.Latency() != 9*time.Millisecond {
		t.Fatalf("Latency = %v", r.Latency())
	}
	if r.ServiceTime() != 7*time.Millisecond {
		t.Fatalf("ServiceTime = %v", r.ServiceTime())
	}
}

func TestCancelFlag(t *testing.T) {
	r := &Request{}
	if r.Canceled() {
		t.Fatal("fresh request reports canceled")
	}
	r.Cancel()
	if !r.Canceled() {
		t.Fatal("Cancel did not stick")
	}
}

func TestIDGenUnique(t *testing.T) {
	var g IDGen
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if id == 0 {
			t.Fatal("ID 0 issued; 0 is reserved for 'unset'")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{ID: 7, Op: Read, Offset: 1, Size: 2, Proc: 3, Class: ClassBestEffort, Priority: 4, Deadline: 20 * time.Millisecond}
	s := r.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
