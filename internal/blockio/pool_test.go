package blockio

import "testing"

func TestPoolRecycleAdvancesGeneration(t *testing.T) {
	var p Pool
	r := p.Get()
	r.ID, r.Op, r.Offset, r.Size = 7, Read, 4096, 512
	g := r.Gen()
	r.Release()
	r2 := p.Get()
	if r2 != r {
		t.Fatal("pool did not recycle the released request")
	}
	if r2.Gen() != g+1 {
		t.Fatalf("gen = %d after recycle, want %d", r2.Gen(), g+1)
	}
	if r2.ID != 0 || r2.Offset != 0 || r2.Size != 0 || r2.OnComplete != nil {
		t.Fatalf("recycled request not zeroed: %v", r2)
	}
	if p.Allocated() != 1 {
		t.Fatalf("Allocated() = %d, want 1", p.Allocated())
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	var p Pool
	r := p.Get()
	r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	r.Release()
}

func TestBareRequestReleaseIsNoop(t *testing.T) {
	r := &Request{ID: 3}
	r.Release() // must not panic: bare requests have no pool
	r.Release()
	if r.ID != 3 {
		t.Fatal("Release mutated a bare request")
	}
}

func TestDroppedPrefersOnDropOverAutoFree(t *testing.T) {
	var p Pool
	r := p.Get()
	r.AutoFree = true
	dropped := 0
	r.OnDrop = func(rr *Request) {
		dropped++
		rr.Release()
	}
	r.Dropped()
	if dropped != 1 {
		t.Fatalf("OnDrop ran %d times, want 1", dropped)
	}
	if r2 := p.Get(); r2 != r {
		t.Fatal("OnDrop's Release did not recycle the request")
	}
}

func TestDroppedAutoFreeRecycles(t *testing.T) {
	var p Pool
	r := p.Get()
	r.AutoFree = true
	g := r.Gen()
	r.Dropped()
	r2 := p.Get()
	if r2 != r || r2.Gen() != g+1 {
		t.Fatal("AutoFree drop did not recycle the request")
	}
}

// TestStaleHolderDetectsRecycle is the generation-counter contract: a
// holder that kept the pointer past the terminal compares Gen before
// touching it again.
func TestStaleHolderDetectsRecycle(t *testing.T) {
	var p Pool
	r := p.Get()
	held, heldGen := r, r.Gen()
	r.Release()
	reused := p.Get() // same memory, new IO
	reused.ID = 99
	if held.Gen() == heldGen {
		t.Fatal("stale holder cannot detect recycle: gen unchanged")
	}
}
