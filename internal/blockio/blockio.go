// Package blockio defines the common block-IO request type that flows
// through every layer of the simulated storage stack: OS cache → IO
// scheduler → device. It is the moral equivalent of the kernel's `struct
// bio`/`struct request`, extended with the one field MittOS adds — the
// deadline SLO — plus the bookkeeping MittOS attaches to IO descriptors
// (predicted service time, start time, shadow-mode EBUSY verdicts, §4.1 and
// §7.6 of the paper).
package blockio

import (
	"errors"
	"fmt"
	"time"

	"mittos/internal/sim"
)

// ErrBusy is MittOS's fast-rejection signal: the IO was not queued because
// its deadline SLO cannot be met by this resource (§3.2, step 4). It plays
// the role of the kernel's EBUSY errno.
var ErrBusy = errors.New("mittos: EBUSY (deadline SLO cannot be met)")

// ErrIO is a device-level completion failure: the IO ran to its completion
// point but the medium returned an error. Only fault injection produces it;
// the device models never fail on their own.
var ErrIO = errors.New("mittos: EIO (injected device error)")

// Op is the IO operation type.
type Op uint8

// Operations understood by the device models.
const (
	Read Op = iota
	Write
	// Erase is SSD-internal (garbage collection, wear leveling); it never
	// arrives from applications but occupies chips like any other op.
	Erase
)

// String names the op.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case Erase:
		return "erase"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Class mirrors CFQ's three service trees (§4.2).
type Class uint8

// CFQ scheduling classes. BestEffort is the zero value, matching Linux's
// treatment of IOPRIO_CLASS_NONE: a request that never set a class gets
// best-effort service, so forgetting ionice can never grant RT priority.
const (
	ClassBestEffort Class = iota
	ClassRealTime
	ClassIdle
)

// Rank orders classes by service priority: 0 is served first.
func (c Class) Rank() int {
	switch c {
	case ClassRealTime:
		return 0
	case ClassBestEffort:
		return 1
	default:
		return 2
	}
}

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassRealTime:
		return "RT"
	case ClassBestEffort:
		return "BE"
	case ClassIdle:
		return "Idle"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// NoDeadline marks a request without an SLO; the stack treats it exactly as
// a vanilla read()/write() (§3.3: "keep existing OS policies").
const NoDeadline = time.Duration(0)

// Request is one block IO. Layers annotate it as it descends and completes.
type Request struct {
	ID     uint64
	Op     Op
	Offset int64 // byte offset on the device's logical address space
	Size   int   // bytes

	// Scheduling identity: which tenant/process issued the IO, its CFQ
	// class and ionice priority (0 = highest, 7 = lowest within a class).
	Proc     int
	Class    Class
	Priority int

	// Deadline is the MittOS SLO attached by the application
	// (read(...,slo)). Zero means no SLO.
	Deadline time.Duration

	// Lifecycle timestamps in virtual time.
	SubmitTime   sim.Time // entered the scheduler
	DispatchTime sim.Time // entered the device
	CompleteTime sim.Time // completion callback fired

	// QueuedTime marks when the oldest work batched into this request was
	// enqueued above the stack (group-committed WAL appends): the span
	// tracer exposes queued→submit as the wal-queue stage. Zero for IOs
	// that were never batch-queued.
	QueuedTime sim.Time

	// MittOS bookkeeping, attached to the descriptor exactly as §4.1
	// describes: predicted processing time and IO start time, so the
	// completion path can compute Tdiff = actual − predicted.
	PredictedWait    time.Duration // predicted queueing wait at admission
	PredictedService time.Duration // predicted device service time

	// ShadowBusy is the §7.6 accuracy-measurement flag: in shadow mode the
	// EBUSY verdict is recorded here instead of being returned, so the IO
	// still runs and the actual latency can be compared to the verdict.
	ShadowBusy bool

	// Err is the device's completion verdict: nil on success, ErrIO when
	// the device failed the IO (fault injection). Set just before
	// OnComplete fires; the admission layers hand it to the submitter.
	Err error

	// OnComplete fires when the device finishes the IO. It runs in virtual
	// time on the simulation engine.
	OnComplete func(*Request)

	// SchedPriv is the admission layer's per-request context back-pointer
	// (MittCFQ's pooled op), replacing a request-keyed map on the hot path.
	// Owned by whichever layer set it; cleared when the request leaves that
	// layer and by pool recycling.
	SchedPriv any

	// OnDrop fires when a scheduler or device discards a cancelled request
	// (the revoked terminal). Exactly one of the completion path and OnDrop
	// runs for a submitted request; owners that must reclaim per-IO state on
	// revocation hook it here.
	OnDrop func(*Request)

	// AutoFree marks a pooled request whose lifecycle ends at the completion
	// boundary that delivered it (the block-layer Submit callback or the
	// drop path): that boundary calls Release after its last touch. Owners
	// that keep the pointer past completion must leave it false and Release
	// themselves.
	AutoFree bool

	// canceled requests are dropped by the scheduler before dispatch
	// (MittCFQ's late cancellation, §4.2).
	canceled bool

	// Pool bookkeeping: the freelist this request recycles into (nil for
	// plain &Request{} allocations), a generation counter bumped on every
	// recycle so stale holders can detect reuse, and the in-pool flag that
	// turns a double Release into a panic instead of silent corruption.
	pool   *Pool
	gen    uint32
	inPool bool
}

// Cancel marks the request so schedulers drop it before dispatch. A request
// already on the device cannot be cancelled (device queues are invisible to
// the OS, §7.8.2).
func (r *Request) Cancel() { r.canceled = true }

// Canceled reports whether Cancel was called.
func (r *Request) Canceled() bool { return r.canceled }

// End returns the exclusive end offset.
func (r *Request) End() int64 { return r.Offset + int64(r.Size) }

// Latency returns the submit→complete latency; valid after completion.
func (r *Request) Latency() time.Duration {
	return r.CompleteTime.Sub(r.SubmitTime)
}

// ServiceTime returns the dispatch→complete device time.
func (r *Request) ServiceTime() time.Duration {
	return r.CompleteTime.Sub(r.DispatchTime)
}

// String renders a compact description for logs and tests.
func (r *Request) String() string {
	return fmt.Sprintf("io#%d %s off=%d size=%d proc=%d %s/%d dl=%v",
		r.ID, r.Op, r.Offset, r.Size, r.Proc, r.Class, r.Priority, r.Deadline)
}

// Device is anything that accepts block IOs and eventually completes them:
// raw device models (disk, SSD) and IO schedulers stacked above them.
type Device interface {
	// Submit enqueues the request. Completion is signalled by invoking
	// req.OnComplete in virtual time; Submit itself never blocks.
	Submit(req *Request)
	// InFlight reports the number of submitted-but-incomplete requests,
	// used by monitors and the EBUSY-timeline experiment (Fig. 13b).
	InFlight() int
}

// Gen returns the request's recycle generation. A holder that may outlive
// the request (e.g. a cancellation handle) records Gen at issue time and
// compares before touching the pointer again.
func (r *Request) Gen() uint32 { return r.gen }

// Dropped is the revoked terminal: schedulers and devices call it after
// recording SchedDrop/DevDrop for a cancelled request they are discarding.
// It fires OnDrop (handing per-IO state back to the owner) or, for
// boundary-owned requests, recycles the request directly.
func (r *Request) Dropped() {
	if fn := r.OnDrop; fn != nil {
		r.OnDrop = nil
		fn(r)
		return
	}
	if r.AutoFree {
		r.Release()
	}
}

// Pool is a Request freelist. Requests are pooled per simulation engine
// (every leg is single-threaded, so no locking), handed out by Get and
// recycled by Release exactly once per IO, at its single terminal:
// completion delivery, EBUSY delivery, or the scheduler/device drop of a
// revoked request — the same exactly-once points the span tracer enforces.
// The zero value is ready to use.
type Pool struct {
	free []*Request
	news int // Gets served by a fresh allocation (pool-size telemetry)
}

// Get returns a zeroed request. Reuses a recycled one when available.
func (p *Pool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		r.inPool = false
		return r
	}
	p.news++
	return &Request{pool: p}
}

// Allocated returns how many distinct requests the pool has created — the
// steady-state working set once the freelist is warm.
func (p *Pool) Allocated() int { return p.news }

// Release recycles a pooled request. All fields reset; the generation
// counter advances so stale holders (Gen mismatch) can tell the pointer now
// belongs to a different IO. Releasing a request twice panics. No-op for
// requests not obtained from a Pool, so callers may Release unconditionally.
func (r *Request) Release() {
	p := r.pool
	if p == nil {
		return
	}
	if r.inPool {
		panic(fmt.Sprintf("blockio: double release of io#%d (gen %d)", r.ID, r.gen))
	}
	*r = Request{pool: p, gen: r.gen + 1, inPool: true}
	p.free = append(p.free, r)
}

// IDGen hands out unique request IDs. The zero value is ready to use.
type IDGen struct{ next uint64 }

// Next returns a fresh ID (first ID is 1).
func (g *IDGen) Next() uint64 {
	g.next++
	return g.next
}
