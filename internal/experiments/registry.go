package experiments

import (
	"fmt"
	"sort"
)

// RunConfig selects scale, seed, parallelism, and observability for one
// registry run. The zero value is full scale, seed 0, one worker per CPU,
// metrics off.
type RunConfig struct {
	// Quick selects the reduced test/bench scale.
	Quick bool
	// Seed drives every RNG stream.
	Seed int64
	// Workers bounds the leg worker pool (0 = one per CPU, 1 = serial);
	// output is byte-identical for any value.
	Workers int
	// Metrics enables the observability registry; fig4/fig7 attach per-leg
	// snapshots to the Result.
	Metrics bool
	// TraceIOs bounds per-IO span capture (0 = off, <0 = unlimited).
	TraceIOs int
	// Faults overrides the failslow experiment's fault schedule (a
	// faults.ParseSchedule config string; empty = built-in scenario).
	Faults string
	// Rates overrides the loadsweep experiment's offered-load multipliers
	// (empty = the built-in 0.2→1.5 sweep).
	Rates []float64
}

// options maps the config onto macro-experiment Options.
func (c RunConfig) options() Options {
	o := DefaultOptions()
	if c.Quick {
		o = QuickOptions()
	}
	o.Seed = c.Seed
	o.Workers = c.Workers
	o.Metrics = c.Metrics
	o.TraceIOs = c.TraceIOs
	o.Faults = c.Faults
	o.Rates = c.Rates
	return o
}

// runners maps experiment ids to their runners. Each regenerates one table
// or figure of the paper (see DESIGN.md's per-experiment index).
var runners = map[string]func(RunConfig) *Result{
	"table1": func(c RunConfig) *Result { return Table1(c.options()) },
	"fig3": func(c RunConfig) *Result {
		o := DefaultFig3Options()
		if c.Quick {
			o = QuickFig3Options()
		}
		o.Seed = c.Seed
		return &Fig3(o).Result
	},
	"fig4": func(c RunConfig) *Result {
		o := DefaultFig4Options()
		if c.Quick {
			o = QuickFig4Options()
		}
		o.Seed = c.Seed
		o.Workers = c.Workers
		o.Metrics = c.Metrics
		o.TraceIOs = c.TraceIOs
		return Fig4(o)
	},
	"fig5": func(c RunConfig) *Result { return Fig5(c.options()) },
	"fig6": func(c RunConfig) *Result { return Fig6(c.options()) },
	"fig7": func(c RunConfig) *Result { return Fig7(c.options()) },
	"fig8": func(c RunConfig) *Result {
		o := DefaultFig8Options()
		if c.Quick {
			o = QuickFig8Options()
		}
		o.Seed = c.Seed
		o.Workers = c.Workers
		return Fig8(o)
	},
	"fig9": func(c RunConfig) *Result {
		o := DefaultFig9Options()
		if c.Quick {
			o = QuickFig9Options()
		}
		o.Seed = c.Seed
		res, _ := Fig9(o)
		return res
	},
	"fig10":     func(c RunConfig) *Result { return Fig10(c.options()) },
	"fig11":     func(c RunConfig) *Result { return Fig11(c.options()) },
	"fig12":     func(c RunConfig) *Result { return Fig12(c.options()) },
	"fig13":     func(c RunConfig) *Result { return &Fig13(c.options()).Result },
	"allinone":  func(c RunConfig) *Result { return AllInOne(c.options()) },
	"writes":    func(c RunConfig) *Result { return Writes(c.options()) },
	"failslow":  func(c RunConfig) *Result { return Failslow(c.options()) },
	"ycsbmix":   func(c RunConfig) *Result { return YCSBMix(c.options()) },
	"loadsweep": func(c RunConfig) *Result { return LoadSweep(c.options()) },
}

// IDs lists the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(runners))
	for id := range runners { //mapiter:sorted
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates one experiment by id under the given config.
func Run(id string, cfg RunConfig) (*Result, error) {
	fn, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return fn(cfg), nil
}
