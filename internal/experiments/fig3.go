package experiments

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/noise"
	"mittos/internal/oscache"
	"mittos/internal/sim"
	"mittos/internal/ssd"
	"mittos/internal/stats"
)

// Fig3Options shape the EC2 millisecond-dynamism study (§6). The paper ran
// 20 nodes × 8 hours per resource; virtual hours are cheap but not free, so
// the observation window is configurable.
type Fig3Options struct {
	Seed  int64
	Nodes int
	// Window is the observation period per resource (paper: 8h).
	Window time.Duration
}

// DefaultFig3Options observes 20 nodes for 20 virtual minutes — enough for
// every distributional claim of §6 to stabilize (the paper's 8h × 20-node
// run had the same goal on much noisier hardware).
func DefaultFig3Options() Fig3Options {
	return Fig3Options{Seed: 1, Nodes: 20, Window: 20 * time.Minute}
}

// QuickFig3Options shrinks the window for tests and benches.
func QuickFig3Options() Fig3Options {
	return Fig3Options{Seed: 1, Nodes: 10, Window: 3 * time.Minute}
}

// Fig3Result carries the three panels' data per resource plus the
// busy-simultaneity distribution.
type Fig3Result struct {
	Result
	// PerNode[resource][node] is each node's probe-latency sample
	// (panels a–c: 20 CDF lines per resource).
	PerNode map[string][]*stats.Sample
	// InterArrival[resource] is the CDF of gaps between noisy periods
	// (panels d–f).
	InterArrival map[string]*stats.Sample
	// BusyPMF[k] = fraction of time exactly k nodes were simultaneously
	// busy, using the disk fleet (panel g).
	BusyPMF []float64
}

// fig3Thresholds: a probe above the threshold marks a "noisy period" (§6:
// >20ms disk, >1ms SSD, >0.05ms cache).
var fig3Thresholds = map[string]time.Duration{
	"disk":  20 * time.Millisecond,
	"ssd":   time.Millisecond,
	"cache": 50 * time.Microsecond,
}

// fig3ProbePeriods: §6 probes 4KB every 100ms on disk, every 20ms on SSD
// and cache.
var fig3ProbePeriods = map[string]time.Duration{
	"disk":  100 * time.Millisecond,
	"ssd":   20 * time.Millisecond,
	"cache": 20 * time.Millisecond,
}

// Fig3 reproduces Figure 3: per-node latency CDFs, noisy-period
// inter-arrival CDFs, and the probability of k nodes being busy at once.
func Fig3(opt Fig3Options) *Fig3Result {
	res := &Fig3Result{
		Result:       Result{ID: "fig3", Title: "Millisecond-level latency dynamism in EC2 (§6)"},
		PerNode:      map[string][]*stats.Sample{},
		InterArrival: map[string]*stats.Sample{},
	}
	for _, resource := range []string{"disk", "ssd", "cache"} {
		perNode, inter, busyPMF := fig3Resource(opt, resource)
		res.PerNode[resource] = perNode
		res.InterArrival[resource] = inter
		if resource == "disk" {
			res.BusyPMF = busyPMF
		}
		merged := stats.NewSample(0)
		for _, s := range perNode {
			merged.Merge(s)
		}
		res.Series = append(res.Series, Series{Name: resource, Sample: merged})
	}
	tb := &stats.Table{Header: []string{"k nodes busy", "P(N=k)"}}
	for k, p := range res.BusyPMF {
		if k > 4 {
			break
		}
		tb.AddRow(fmt.Sprint(k), fmt.Sprintf("%.3f", p))
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes, fmt.Sprintf("%d nodes observed for %v per resource",
		opt.Nodes, opt.Window))
	return res
}

// fig3Resource runs one resource's fleet and returns per-node samples, the
// noisy-period inter-arrival sample, and the busy-simultaneity PMF.
func fig3Resource(opt Fig3Options, resource string) ([]*stats.Sample, *stats.Sample, []float64) {
	eng := sim.NewEngine()
	period := fig3ProbePeriods[resource]
	threshold := fig3Thresholds[resource]

	perNode := make([]*stats.Sample, opt.Nodes)
	inter := stats.NewSample(0)
	busy := make([]bool, opt.Nodes)
	busyTicks := make([]int, opt.Nodes+1)
	totalTicks := 0

	type nodeState struct {
		probe     func()
		lastNoisy sim.Time
		hasNoisy  bool
	}
	states := make([]*nodeState, opt.Nodes)

	for i := 0; i < opt.Nodes; i++ {
		i := i
		perNode[i] = stats.NewSample(4096)
		ns := &nodeState{}
		states[i] = ns
		rng := sim.NewRNG(opt.Seed, fmt.Sprintf("fig3-%s-%d", resource, i))
		var ids blockio.IDGen
		record := func(lat time.Duration) {
			perNode[i].Add(lat)
			noisy := lat > threshold
			busy[i] = noisy
			if noisy {
				if ns.hasNoisy {
					gap := eng.Now().Sub(ns.lastNoisy)
					if gap > period {
						inter.Add(gap)
					}
				}
				ns.hasNoisy = true
				ns.lastNoisy = eng.Now()
			}
		}
		// One pool and one completion closure per node: probes recycle
		// their descriptors as soon as the latency is recorded (the layers
		// below never touch a request after its completion fires).
		var reqs blockio.Pool
		onProbe := func(r *blockio.Request) {
			record(r.Latency())
			r.Release()
		}
		switch resource {
		case "disk":
			dcfg := disk.DefaultConfig()
			d := disk.New(eng, dcfg, rng.Fork("disk"))
			sched := iosched.NewCFQ(eng, iosched.DefaultCFQConfig(), d)
			b := noise.NewBursty(eng, noise.DefaultDiskBursty(500<<30, 900+i), sched, rng.Fork("noise"))
			b.Start()
			ns.probe = func() {
				req := reqs.Get()
				req.ID, req.Op = ids.Next(), blockio.Read
				req.Offset, req.Size, req.Proc = rng.Int63n(900<<30), 4096, 1
				req.SubmitTime = eng.Now()
				req.OnComplete = onProbe
				sched.Submit(req)
			}
		case "ssd":
			scfg := ssd.DefaultConfig()
			dev := ssd.New(eng, scfg)
			space := scfg.LogicalBytes() / 2
			b := noise.NewBursty(eng, noise.DefaultSSDBursty(space, 900+i), dev, rng.Fork("noise"))
			b.Start()
			ns.probe = func() {
				req := reqs.Get()
				req.ID, req.Op = ids.Next(), blockio.Read
				req.Offset, req.Size, req.Proc = rng.Int63n(space), 4096, 1
				req.SubmitTime = eng.Now()
				req.OnComplete = onProbe
				dev.Submit(req)
			}
		case "cache":
			dcfg := disk.DefaultConfig()
			d := disk.New(eng, dcfg, rng.Fork("disk"))
			sched := iosched.NewNoop(eng, d)
			ccfg := oscache.DefaultConfig()
			// The paper pre-reads a 3.5GB file that fits the cache; what
			// matters distributionally is hit-vs-miss under eviction, so a
			// 512MB set keeps the simulation cheap with identical shape.
			ccfg.CapacityPages = 160000
			workingSet := int64(131072) * 4096
			cache := oscache.New(eng, ccfg, sched)
			cache.Warm(0, int(workingSet))
			// Memory contention: a neighbor claims a random slab of pages
			// every half second (range eviction costs O(evicted), unlike a
			// full LRU sweep, which matters at 870k pages × 20 nodes).
			evictRNG := rng.Fork("evict")
			slab := workingSet / 250 // 0.4% per tick
			eng.NewTicker(500*time.Millisecond, func() {
				off := evictRNG.Int63n(workingSet-slab) &^ 4095
				cache.EvictRange(off, int(slab))
				// The owner touches its set continuously; re-warm slowly in
				// the background so misses are transient, as on EC2.
				eng.After(2*time.Second, func() { cache.Warm(off, int(slab)) })
			})
			ns.probe = func() {
				off := rng.Int63n(workingSet-4096) &^ 4095
				req := reqs.Get()
				req.ID, req.Op = ids.Next(), blockio.Read
				req.Offset, req.Size, req.Proc = off, 4096, 1
				req.SubmitTime = eng.Now()
				req.OnComplete = onProbe
				cache.Submit(req)
			}
		}
		eng.NewTicker(period, ns.probe)
	}

	// Sample simultaneity every probe period.
	eng.NewTicker(period, func() {
		totalTicks++
		k := 0
		for _, b := range busy {
			if b {
				k++
			}
		}
		busyTicks[k]++
	})

	eng.RunUntil(sim.Time(opt.Window))
	pmf := make([]float64, opt.Nodes+1)
	for k, c := range busyTicks {
		pmf[k] = float64(c) / float64(totalTicks)
	}
	return perNode, inter, pmf
}
