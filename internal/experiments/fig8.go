package experiments

import (
	"fmt"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/core"
	"mittos/internal/netsim"
	"mittos/internal/noise"
	"mittos/internal/sim"
	"mittos/internal/ssd"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// Fig8Options shape the §7.5 single-box SSD experiment.
type Fig8Options struct {
	Seed     int64
	Duration time.Duration
	// Cores is the machine's CPU count (the paper's box has 8 threads).
	Cores int
	// Partitions is the number of MongoDB processes / SSD partitions (6).
	Partitions int
	// CPUPerOp is the handler CPU burned per request stage; with fast
	// flash, requests are CPU-bound ("processes are not IO bound").
	CPUPerOp time.Duration
	Keys     int64
	// Workers bounds the leg worker pool (0 = one per CPU); see Options.
	Workers int
}

// DefaultFig8Options mirror §7.5: 6 partitions, 6 closed-loop clients, one
// 8-core machine.
func DefaultFig8Options() Fig8Options {
	return Fig8Options{
		Seed: 1, Duration: 30 * time.Second, Cores: 8, Partitions: 6,
		CPUPerOp: 300 * time.Microsecond, Keys: 20000,
	}
}

// QuickFig8Options shrink the run.
func QuickFig8Options() Fig8Options {
	o := DefaultFig8Options()
	o.Duration = 8 * time.Second
	return o
}

// Fig8 reproduces Figure 8: MittSSD vs hedged requests on one machine with
// six SSD partitions. Hedging backfires here: the extra requests double the
// busy handler threads past the core count, and the resulting CPU queueing
// creates the very tail hedging was meant to cut (§7.5).
func Fig8(opt Fig8Options) *Result {
	res := &Result{ID: "fig8", Title: "MittSSD vs Hedged on one 8-core SSD box (§7.5)"}

	// Stage 1: the Base run sets the p95 knob.
	var base *stats.Sample
	runLegs(opt.Workers, legs{func(a *legArena) {
		base = fig8Run(a, opt, "Base", func(c *cluster.Cluster, p95 time.Duration) cluster.Strategy {
			return &cluster.BaseStrategy{C: c}
		}, 0)
	}})
	p95 := base.Percentile(95)
	res.Series = append(res.Series, Series{Name: "Base", Sample: base})
	res.Notes = append(res.Notes, fmt.Sprintf("deadline/hedge trigger = Base p95 = %v (no network hop: local clients)", p95))

	// Stage 2: Hedged and MittSSD are independent given p95.
	var hedged, mitt *stats.Sample
	runLegs(opt.Workers, legs{
		func(a *legArena) {
			hedged = fig8Run(a, opt, "Hedged", func(c *cluster.Cluster, p95 time.Duration) cluster.Strategy {
				return &cluster.HedgedStrategy{C: c, HedgeAfter: p95}
			}, p95)
		},
		func(a *legArena) {
			mitt = fig8Run(a, opt, "MittSSD", func(c *cluster.Cluster, p95 time.Duration) cluster.Strategy {
				return &cluster.MittOSStrategy{C: c, Deadline: p95}
			}, p95)
		},
	})
	res.Series = append(res.Series, Series{Name: "Hedged", Sample: hedged})
	res.Series = append(res.Series, Series{Name: "MittSSD", Sample: mitt})

	tb := &stats.Table{Header: []string{"vs", "Avg", "p75", "p90", "p95", "p99"}}
	for _, cmp := range []struct {
		name  string
		other *stats.Sample
	}{{"Hedged", hedged}, {"Base", base}} {
		row := stats.ReductionRow(mitt, cmp.other)
		cells := []string{cmp.name}
		for _, v := range row {
			cells = append(cells, stats.FormatPct(v))
		}
		tb.AddRow(cells...)
	}
	res.Tables = append(res.Tables, tb)
	return res
}

// fig8Run builds the single-box fleet: 6 SSD "partitions" (one node each,
// no overlapping channels — modeled as independent SSDs) sharing one CPU
// pool, driven by 6 closed-loop clients. The run draws its engine, device
// pools, and sample buffers from the leg arena.
func fig8Run(a *legArena, opt Fig8Options, salt string,
	mk func(*cluster.Cluster, time.Duration) cluster.Strategy, p95 time.Duration) *stats.Sample {
	eng := a.eng
	// Local clients: a ~20µs IPC hop instead of the 0.3ms network.
	net := netsim.New(eng, netsim.Config{HopLatency: 20 * time.Microsecond, JitterStd: 2 * time.Microsecond},
		sim.NewRNG(opt.Seed, "fig8-net-"+salt))
	cpu := cluster.NewCPUPool(eng, opt.Cores)
	scfg := ssd.DefaultConfig()
	// One partition's share of the device: fewer channels per partition.
	scfg.Channels = 4
	scfg.ChipsPerChannel = 4
	tmpl := cluster.NodeConfig{
		Device:      cluster.DeviceSSD,
		SSDConfig:   scfg,
		Mitt:        true,
		MittOptions: core.DefaultOptions(),
		Keys:        opt.Keys,
		CPU:         cpu,
		CPUPerOp:    opt.CPUPerOp,
		Pools:       a.pools,
		SSDPool:     a.ssds,
	}
	c := cluster.NewCluster(eng, net, opt.Partitions, 3, tmpl, sim.NewRNG(opt.Seed, "fig8-nodes"))
	f := &fleet{eng: eng, net: net, c: c, arena: a}
	a.fleets = append(a.fleets, f)
	// SSD noise: write bursts on each partition (the §6 SSD distribution).
	for i, n := range c.Nodes {
		space := n.SSD.Config().LogicalBytes() / 2
		cfg := noise.DefaultSSDBursty(space, 900+i)
		b := noise.NewBursty(eng, cfg, n.NoiseSink(), sim.NewRNG(opt.Seed, fmt.Sprintf("fig8-noise-%d", i)))
		b.Start()
		f.noise = append(f.noise, b)
	}
	strat := mk(c, p95)
	ccfg := cluster.ClientConfig{Interval: 50 * time.Microsecond, JitterFrac: 0.5, ScaleFactor: 1,
		Closed: true, Bufs: a.bufs}
	io := stats.NewSample(1 << 14)
	var clients []*cluster.Client
	for i := 0; i < opt.Partitions; i++ {
		wl := ycsb.New(ycsb.DefaultConfig(opt.Keys), sim.NewRNG(opt.Seed, fmt.Sprintf("fig8-wl-%d", i)))
		cl := cluster.NewClient(eng, ccfg, strat, wl, sim.NewRNG(opt.Seed, fmt.Sprintf("fig8-cl-%d", i)))
		cl.Start()
		clients = append(clients, cl)
	}
	a.adoptClients(clients)
	eng.RunFor(opt.Duration)
	for _, cl := range clients {
		cl.Stop()
	}
	eng.RunFor(2 * time.Second)
	for _, cl := range clients {
		io.Merge(cl.IOLatencies)
	}
	return io
}
