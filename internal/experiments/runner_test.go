package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestRunLegsOrderAndClamp checks the pool mechanics directly: every leg
// runs exactly once for any worker count, including pools larger than the
// leg list and the serial reference path.
func TestRunLegsOrderAndClamp(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got := make([]int, 5)
		var ls legs
		for i := 0; i < 5; i++ {
			i := i
			ls.add(func(*legArena) { got[i]++ })
		}
		runLegs(workers, ls)
		for i, n := range got {
			if n != 1 {
				t.Fatalf("workers=%d: leg %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestRunLegsPanicPropagates: a panicking leg must not deadlock the pool,
// and the panic must surface on the caller's goroutine.
func TestRunLegsPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
			}()
			runLegs(workers, legs{
				func(*legArena) {},
				func(*legArena) { panic("leg boom") },
				func(*legArena) {},
			})
		}()
	}
}

// TestFig4ParallelDeterminism is the tentpole's contract: the same Fig4
// run on one worker (the serial reference schedule) and on eight workers
// must produce deeply-equal results and byte-identical renders. Legs own
// their engines and RNGs, so the worker count can only change wall-clock
// time, never output.
func TestFig4ParallelDeterminism(t *testing.T) {
	opt := QuickFig4Options()
	opt.Duration = 2 * time.Second

	serial := opt
	serial.Workers = 1
	parallel := opt
	parallel.Workers = 8

	a := Fig4(serial)
	b := Fig4(parallel)
	if a.String() != b.String() {
		t.Fatalf("Fig4 render differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatal("Fig4 series differ between Workers=1 and Workers=8")
	}
}

// TestConvertedExperimentsParallelDeterminism runs every runLegs-converted
// experiment at tiny scale twice — serial vs a deliberately oversubscribed
// pool — and requires byte-identical renders.
func TestConvertedExperimentsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every converted experiment twice")
	}
	runs := []struct {
		name string
		fn   func(Options) string
	}{
		{"fig5", func(o Options) string { return Fig5(o).String() }},
		{"fig6", func(o Options) string { return Fig6(o).String() }},
		{"fig7", func(o Options) string { return Fig7(o).String() }},
		{"fig10", func(o Options) string { return Fig10(o).String() }},
		{"fig11", func(o Options) string { return Fig11(o).String() }},
		{"fig12", func(o Options) string { return Fig12(o).String() }},
		{"fig13", func(o Options) string { return Fig13(o).String() }},
	}
	for _, run := range runs {
		run := run
		t.Run(run.name, func(t *testing.T) {
			t.Parallel()
			opt := tinyOptions()
			opt.Duration = 2 * time.Second
			serial := opt
			serial.Workers = 1
			parallel := opt
			parallel.Workers = 8
			if a, b := run.fn(serial), run.fn(parallel); a != b {
				t.Errorf("%s render differs between Workers=1 and Workers=8", run.name)
			}
		})
	}
}
