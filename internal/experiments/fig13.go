package experiments

import (
	"fmt"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// Fig13Timeline is one sample of panel (b): a node's outstanding-IO count
// and the EBUSY decisions it has issued so far.
type Fig13Timeline struct {
	At          time.Duration
	Outstanding int
	Rejected    uint64
}

// Fig13Result extends the common result with the panel-(b) timeline.
type Fig13Result struct {
	Result
	Timeline []Fig13Timeline
}

// Fig13 reproduces Figure 13: MittOS integrated two levels deep —
// LevelDB-style engine below, Riak-style replicated store above — with
// EBUSY propagating from the storage stack through the engine to the
// cluster layer where failover happens (§7.8.4, §5). Panel (a) compares
// latency CDFs; panel (b) tracks one node's outstanding IOs against the
// moments MittOS returned EBUSY: rejections cluster exactly where the
// queue is deep.
func Fig13(opt Options) *Fig13Result {
	res := &Fig13Result{Result: Result{ID: "fig13",
		Title: "MittOS-powered LevelDB+Riak (§7.8.4)"}}
	// Riak-like: small replicated cluster with an LSM engine that also
	// takes writes (flushes + compactions add background churn).
	ropt := opt
	if ropt.Nodes > 6 {
		ropt.Nodes = 6
	}
	if ropt.Clients > ropt.Nodes {
		// Keep the per-node load of the big-fleet experiments.
		ropt.Clients = ropt.Nodes
	}

	// Stage 1: the Base run sets the deadline.
	var baseIO *stats.Sample
	runLegs(ropt.Workers, legs{func(a *legArena) {
		fb := a.newFleet(ropt, fleetDisk, false, "fig13-base")
		fb.addEC2DiskNoise(ropt)
		baseIO = fig13Run(fb, ropt, nil, nil)
	}})
	p95 := baseIO.Percentile(95)
	res.Series = append(res.Series, Series{Name: "Base", Sample: baseIO})
	res.Notes = append(res.Notes, fmt.Sprintf("deadline = Base p95 = %v", p95))

	// Stage 2: the MittCFQ run (with its panel-(b) timeline probe).
	var mittIO *stats.Sample
	var timeline []Fig13Timeline
	runLegs(ropt.Workers, legs{func(a *legArena) {
		fm := a.newFleet(ropt, fleetDisk, true, "fig13-mitt")
		fm.addEC2DiskNoise(ropt)
		watch := fm.c.Nodes[0]
		fm.eng.NewTicker(250*time.Millisecond, func() {
			timeline = append(timeline, Fig13Timeline{
				At:          fm.eng.Now().Duration(),
				Outstanding: watch.OutstandingIOs(),
				Rejected:    watch.Rejected(),
			})
		})
		mittIO = fig13Run(fm, ropt, &p95, nil)
	}})
	res.Series = append(res.Series, Series{Name: "MittCFQ", Sample: mittIO})
	res.Timeline = timeline

	tb := &stats.Table{Header: []string{"vs", "Avg", "p75", "p90", "p95", "p99"}}
	row := stats.ReductionRow(mittIO, baseIO)
	cells := []string{"Base"}
	for _, v := range row {
		cells = append(cells, stats.FormatPct(v))
	}
	tb.AddRow(cells...)
	res.Tables = append(res.Tables, tb)
	return res
}

// fig13Run drives a 90/10 read/insert workload (LSM churn included) with
// either Base gets or MittOS failover gets.
func fig13Run(f *fleet, opt Options, deadline *time.Duration, _ interface{}) *stats.Sample {
	io := stats.NewSample(1 << 14)
	var strat cluster.Strategy
	if deadline != nil {
		strat = &cluster.MittOSStrategy{C: f.c, Deadline: *deadline}
	} else {
		strat = &cluster.BaseStrategy{C: f.c}
	}
	var ticks []*sim.Ticker
	for i := 0; i < opt.Clients; i++ {
		wcfg := ycsb.DefaultConfig(opt.Keys)
		wcfg.ReadFraction = 0.9
		wl := ycsb.New(wcfg, sim.NewRNG(opt.Seed, fmt.Sprintf("fig13-wl-%d", i)))
		tick := f.eng.NewTicker(opt.Interval, func() {
			op := wl.Next()
			if op.Kind == ycsb.OpInsert {
				// Writes go to the key's primary replica (Riak put path),
				// through the traced/pooled one-way put plumbing.
				primary := f.c.ReplicasFor(op.Key)[0]
				f.c.PutOneWay(primary, op.Key%opt.Keys)
				return
			}
			start := f.eng.Now()
			strat.Get(op.Key, func(res cluster.GetResult) {
				io.Add(f.eng.Now().Sub(start))
			})
		})
		ticks = append(ticks, tick)
	}
	f.eng.RunFor(opt.Duration)
	for _, t := range ticks {
		t.Stop()
	}
	f.stopNoise()
	f.eng.RunFor(3 * time.Second)
	return io
}
