package experiments

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/cluster"
	"mittos/internal/disk"
	"mittos/internal/netsim"
	"mittos/internal/noise"
	"mittos/internal/nosqlsurvey"
	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// Table1 reproduces Table 1 (§2) via the nosqlsurvey package, running each
// NoSQL system's behavioural model against 1-second rotating severe
// contention on a 3-replica cluster.
func Table1(opt Options) *Result {
	res := &Result{ID: "table1", Title: "No 'TT' in NoSQL (§2, Table 1)"}
	sopt := nosqlsurvey.DefaultRunOptions()
	sopt.Seed = opt.Seed
	sopt.Keys = opt.Keys
	if opt.Duration < 30*time.Second {
		sopt.Requests = 600 // quick mode
	}
	results := nosqlsurvey.Run(sopt, func(seed int64) (*cluster.Cluster, func(), func()) {
		eng := sim.NewEngine()
		net := netsim.New(eng, netsim.DefaultConfig(), sim.NewRNG(seed, "t1-net"))
		tmpl := cluster.NodeConfig{
			Device:      cluster.DeviceDisk,
			DiskConfig:  disk.DefaultConfig(),
			UseCFQ:      true,
			Keys:        sopt.Keys,
			DiskProfile: sharedDiskProfile,
		}
		c := cluster.NewCluster(eng, net, 3, 3, tmpl, sim.NewRNG(seed, "t1-nodes"))
		sinks := []blockio.Device{
			c.Nodes[0].NoiseSink(), c.Nodes[1].NoiseSink(), c.Nodes[2].NoiseSink(),
		}
		rot := noise.NewRotating(eng, sinks, sopt.RotationPeriod, 4, 1<<20, 500<<30,
			sim.NewRNG(seed, "t1-rot"))
		return c, rot.Start, rot.Stop
	})
	res.Notes = append(res.Notes, nosqlsurvey.Table(results))
	return res
}

// Writes reproduces §7.8.6: a write-only YCSB workload under disk noise.
// Because the engine's writes are WAL appends absorbed by NVRAM (and
// memtable inserts), the noisy and noise-free lines nearly coincide.
func Writes(opt Options) *Result {
	res := &Result{ID: "writes", Title: "Write-only workload: Base ≈ NoNoise (§7.8.6)"}
	variants := []string{"NoNoise", "Base"}
	outs := make([]*stats.Sample, len(variants))
	var ls legs
	for vi, variant := range variants {
		vi, variant := vi, variant
		ls.add(func(a *legArena) {
			f := a.newFleet(opt, fleetDisk, false, "writes-"+variant)
			if variant == "Base" {
				f.addEC2DiskNoise(opt)
			}
			io := stats.NewSample(1 << 14)
			var ticks []*sim.Ticker
			for i := 0; i < opt.Clients; i++ {
				wl := ycsb.New(ycsb.DefaultConfig(opt.Keys), sim.NewRNG(opt.Seed, fmt.Sprintf("w-wl-%d", i)))
				tick := f.eng.NewTicker(opt.Interval, func() {
					key := wl.NextKey()
					primary := f.c.ReplicasFor(key)[0]
					start := f.eng.Now()
					f.c.PutCall(primary, key, 0, func(error) {
						io.Add(f.eng.Now().Sub(start))
					})
				})
				ticks = append(ticks, tick)
			}
			f.eng.RunFor(opt.Duration)
			for _, t := range ticks {
				t.Stop()
			}
			f.stopNoise()
			f.eng.RunFor(2 * time.Second)
			outs[vi] = io
		})
	}
	runLegs(opt.Workers, ls)
	for vi, variant := range variants {
		res.Series = append(res.Series, Series{Name: variant, Sample: outs[vi]})
	}
	return res
}

// AllInOne reproduces §7.8.5: MittCFQ, MittSSD, and MittCache all enabled
// in one deployment, three users with three deadlines (20ms disk / 1ms
// flash / 0.2ms memory), three simultaneous noises, all on ONE simulation
// engine so the three admission layers demonstrably co-exist. Substitution
// note: the paper stacks the resources in one box with bcache; here each
// user's data lives on the matching 3-node tier of the shared deployment,
// which exercises the same three layers concurrently (DESIGN.md).
func AllInOne(opt Options) *Result {
	res := &Result{ID: "allinone", Title: "MittCFQ + MittSSD + MittCache together (§7.8.5)"}
	type tier struct {
		name     string
		kind     fleetKind
		deadline time.Duration
		noisy    func(f *fleet)
	}
	topt := opt
	topt.Nodes = 3
	topt.Clients = 2
	tiers := []tier{
		// The microbenchmark noises of §7.1, all running at once.
		{"disk-user(20ms)", fleetDisk, 20 * time.Millisecond, func(f *fleet) {
			st := noise.NewSteady(f.eng, f.c.Nodes[0].NoiseSink(),
				sim.NewRNG(opt.Seed, "aio-disk-noise"), blockio.Read, 4096, 4,
				blockio.ClassBestEffort, 6, 99, 500<<30)
			st.Start()
		}},
		{"ssd-user(1ms)", fleetSSD, time.Millisecond, func(f *fleet) {
			st := noise.NewSteady(f.eng, f.c.Nodes[0].NoiseSink(),
				sim.NewRNG(opt.Seed, "aio-ssd-noise"), blockio.Write, 256<<10, 2,
				blockio.ClassBestEffort, 4, 99, 512<<10)
			st.Start()
		}},
		{"cache-user(0.2ms)", fleetDiskCache, 200 * time.Microsecond, func(f *fleet) {
			for _, n := range f.c.Nodes {
				warmNodeCache(n, topt.Keys)
			}
			evictFractionOfKeys(f, f.c.Nodes[0], topt.Keys, 0.2,
				sim.NewRNG(opt.Seed, "aio-evict"))
		}},
	}
	// For each variant, ALL tiers start on one engine, run together, and
	// are collected together: the three Mitt layers genuinely co-exist.
	// Each variant is one leg: the tiers must share an engine, but the two
	// variants are independent of each other.
	type tierResult struct{ p95, p99 [2]time.Duration }
	results := make([]tierResult, len(tiers))
	samples := make([]*stats.Sample, 2*len(tiers))
	var ls legs
	for vi, mitt := range []bool{false, true} {
		vi, mitt := vi, mitt
		ls.add(func(a *legArena) {
			var allClients [][]*cluster.Client
			for _, ti := range tiers {
				f := newFleetOn(a, a.eng, topt, ti.kind, mitt, "allinone-"+ti.name)
				ti.noisy(f)
				var strat cluster.Strategy
				if mitt {
					strat = &primaryFirstMitt{c: f.c, deadline: ti.deadline, primary: 0}
				} else {
					strat = &primaryFirstBase{c: f.c, primary: 0}
				}
				allClients = append(allClients, f.startClients(topt, strat, 1))
			}
			a.eng.RunFor(topt.Duration)
			for _, cls := range allClients {
				for _, cl := range cls {
					cl.Stop()
				}
			}
			a.eng.RunFor(2 * time.Second)
			for i, cls := range allClients {
				io, _ := collectClients(cls)
				samples[vi*len(tiers)+i] = io
				results[i].p95[vi] = io.Percentile(95)
				results[i].p99[vi] = io.Percentile(99)
			}
		})
	}
	runLegs(opt.Workers, ls)
	for vi, mitt := range []bool{false, true} {
		for i := range tiers {
			name := tiers[i].name + "/Base"
			if mitt {
				name = tiers[i].name + "/Mitt"
			}
			res.Series = append(res.Series, Series{Name: name, Sample: samples[vi*len(tiers)+i]})
		}
	}
	tb := &stats.Table{Header: []string{"user", "Base p95", "Mitt p95", "Base p99", "Mitt p99"}}
	for i, ti := range tiers {
		tb.AddRow(ti.name,
			stats.FormatDuration(results[i].p95[0]), stats.FormatDuration(results[i].p95[1]),
			stats.FormatDuration(results[i].p99[0]), stats.FormatDuration(results[i].p99[1]))
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"all three tiers share one simulation engine per variant: the three Mitt layers run concurrently")
	return res
}
