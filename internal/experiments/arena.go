package experiments

import (
	"sync"

	"mittos/internal/cluster"
	"mittos/internal/sim"
	"mittos/internal/ssd"
	"mittos/internal/stats"
)

// legArena is a worker-local, reusable simulation context. A leg that runs
// inside runLegs builds its fleets through the arena instead of from a cold
// heap: the engine (with its event freelist), the cluster-level serve/call
// context freelists, the shared block-request pool, the page-cache slab,
// recycled SSD devices, and the latency-sample buffer pool all survive from
// one leg to the next. Between legs the runner calls reset, which reclaims
// everything the finished leg left behind and rewinds the engine to time
// zero.
//
// Arena reuse is invisible to the simulation: every pooled object is fully
// reinitialized at acquire, the engine's (time, seq) order restarts from the
// same zero state a fresh engine has, and sample-buffer capacity does not
// affect Sample semantics. TestLegArenaReuse pins this (a reused arena must
// render byte-identically to fresh heaps), and the golden suite runs the
// whole experiment matrix through arenas at -golden-workers 1 and 8.
type legArena struct {
	eng   *sim.Engine
	pools *cluster.Pools
	ssds  *ssd.Pool
	bufs  *stats.BufPool

	// Per-leg registries, drained by reset: fleets built via a.newFleet /
	// newFleetOn and the clients started on them.
	fleets  []*fleet
	clients []*cluster.Client
}

func newLegArena() *legArena {
	return &legArena{
		eng:   sim.NewEngine(),
		pools: &cluster.Pools{},
		ssds:  &ssd.Pool{},
		bufs:  &stats.BufPool{},
	}
}

// newFleet builds a fleet on the arena's engine, drawing every poolable
// resource from the arena.
func (a *legArena) newFleet(opt Options, kind fleetKind, mitt bool, seedSalt string) *fleet {
	return newFleetOn(a, a.eng, opt, kind, mitt, seedSalt)
}

// adoptClients registers externally-built clients (fig8's single-box run)
// so reset returns their sample buffers to the arena pool.
func (a *legArena) adoptClients(clients []*cluster.Client) {
	a.clients = append(a.clients, clients...)
}

// reset reclaims everything the finished leg stranded and rewinds the arena
// for the next leg. It must only run after the leg has returned: the engine
// is quiescent, every result the leg produced has been copied or merged out
// of the pooled samples, and no callback can fire between the reclaim and
// the engine reset (Engine.Reset discards all pending events, so stranded
// contexts harvested here are never touched again).
func (a *legArena) reset() {
	for _, f := range a.fleets {
		f.stopNoise() // idempotent; legs usually stopped their own noise
		for _, n := range f.c.Nodes {
			// Hand stranded serve contexts (and their block requests) back
			// to the shared pools. Safe only here: the engine reset below
			// guarantees none of their pending callbacks ever fire.
			n.ReclaimStranded()
			if n.Cache != nil {
				n.Cache.Reclaim()
			}
			if n.SSD != nil {
				a.ssds.Put(n.SSD)
				n.SSD = nil
			}
		}
	}
	for _, cl := range a.clients {
		cl.ReclaimBufs()
	}
	for i := range a.fleets {
		a.fleets[i] = nil
	}
	a.fleets = a.fleets[:0]
	for i := range a.clients {
		a.clients[i] = nil
	}
	a.clients = a.clients[:0]
	a.eng.Reset()
}

// The package-level arena pool: arenas persist across runLegs calls (and
// across benchmark iterations), so the multi-megabyte freelists they
// accumulate — SSD FTL arrays, page slabs, sample buffers — are paid for
// once per worker, not once per leg.
var (
	arenaMu   sync.Mutex
	arenaFree []*legArena
)

func acquireArena() *legArena {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	if n := len(arenaFree); n > 0 {
		a := arenaFree[n-1]
		arenaFree[n-1] = nil
		arenaFree = arenaFree[:n-1]
		return a
	}
	return newLegArena()
}

func releaseArena(a *legArena) {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	arenaFree = append(arenaFree, a)
}
