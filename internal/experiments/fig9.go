package experiments

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/iosched"
	"mittos/internal/sim"
	"mittos/internal/ssd"
	"mittos/internal/stats"
	"mittos/internal/trace"
)

// Fig9Options shape the §7.6 accuracy study.
type Fig9Options struct {
	Seed int64
	// TraceLen is the synthesized length per workload; the busiest Window
	// of it is replayed (the paper picks "the busiest 5 minutes").
	TraceLen time.Duration
	Window   time.Duration
	// SSDRerate compresses the disk-born traces for the flash test (the
	// paper re-rates 128× for 128 chips).
	SSDRerate float64
}

// DefaultFig9Options mirror §7.6.
func DefaultFig9Options() Fig9Options {
	return Fig9Options{Seed: 1, TraceLen: 20 * time.Minute, Window: 5 * time.Minute, SSDRerate: 128}
}

// QuickFig9Options shrink the run.
func QuickFig9Options() Fig9Options {
	return Fig9Options{Seed: 1, TraceLen: 4 * time.Minute, Window: time.Minute, SSDRerate: 128}
}

// Fig9Row is one (trace, layer) accuracy measurement.
type Fig9Row struct {
	Trace    string
	Layer    string
	Deadline time.Duration
	Acc      core.Accuracy
}

// Fig9 reproduces Figure 9: false-positive and false-negative rates of
// MittCFQ and MittSSD when replaying the busiest window of five production
// workloads in shadow mode, with the deadline at each trace's p95 (§7.6).
// It also runs the precision ablation the section describes: the naive
// FIFO-TnextFree predictor whose inaccuracy is dramatically higher.
func Fig9(opt Fig9Options) (*Result, []Fig9Row) {
	res := &Result{ID: "fig9", Title: "Prediction inaccuracy on production traces (§7.6)"}
	var rows []Fig9Row
	tb := &stats.Table{Header: []string{"trace", "layer", "deadline(p95)",
		"FP%", "FN%", "inacc%", "mean |diff|"}}

	for _, prof := range trace.Profiles(500 << 30) {
		full := trace.Generate(prof, opt.TraceLen, sim.NewRNG(opt.Seed, "fig9-"+prof.Name))
		busiest := full.Busiest(opt.Window)

		for _, layer := range []string{"MittCFQ", "MittDL", "MittSSD", "Naive"} {
			var acc core.Accuracy
			var deadline time.Duration
			switch layer {
			case "MittCFQ":
				deadline, acc = fig9Disk(opt, busiest, diskCFQ)
			case "MittDL":
				// Scheduler generality (§3.4): the same admission idea on
				// the deadline scheduler.
				deadline, acc = fig9Disk(opt, busiest, diskDeadline)
			case "Naive":
				// The "without our precision improvements" ablation.
				deadline, acc = fig9Disk(opt, busiest, diskNaive)
			case "MittSSD":
				deadline, acc = fig9SSD(opt, busiest)
			}
			rows = append(rows, Fig9Row{Trace: prof.Name, Layer: layer, Deadline: deadline, Acc: acc})
			tb.AddRow(prof.Name, layer, stats.FormatDuration(deadline),
				fmt.Sprintf("%.2f", 100*acc.FalsePosRate()),
				fmt.Sprintf("%.2f", 100*acc.FalseNegRate()),
				fmt.Sprintf("%.2f", 100*acc.InaccuracyRate()),
				stats.FormatDuration(acc.MeanAbsDiff()))
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"shadow mode: EBUSY recorded on the descriptor, IO still runs (§7.6)",
		"'Naive' is the no-SSTF-model, no-calibration ablation on the noop path",
		"'MittDL' runs the same admission on the deadline scheduler (§3.4 generality)")
	return res, rows
}

// derateForDisk slows a trace down to a sustainable single-disk load. The
// original volumes behind the production traces were multi-spindle arrays;
// replaying them 1:1 against one disk just measures saturation, not
// prediction quality.
func derateForDisk(tr *trace.Trace, cfg disk.Config) *trace.Trace {
	st := tr.Stats()
	if st.Records == 0 || st.Duration <= 0 {
		return tr
	}
	// Offered utilization over 1s windows; derate so even the burstiest
	// window stays below the target (saturated minutes measure queueing
	// growth, not prediction quality).
	svcOf := func(size int) time.Duration {
		return 6*time.Millisecond + time.Duration(size/1024)*cfg.TransferPerKB
	}
	window := time.Second
	var maxUtil float64
	cur := time.Duration(0)
	j := 0
	for i := range tr.Records {
		cur += svcOf(tr.Records[i].Size)
		for tr.Records[j].At < tr.Records[i].At-window {
			cur -= svcOf(tr.Records[j].Size)
			j++
		}
		if u := cur.Seconds() / window.Seconds(); u > maxUtil {
			maxUtil = u
		}
	}
	const target = 0.75
	if maxUtil <= target {
		return tr
	}
	return tr.Rerate(target / maxUtil)
}

// fig9Op is the pooled replay completion: it records the measured wait and
// recycles the request descriptor. Rejected IOs never queue (and late
// cancels are Remove()d from the scheduler before the EBUSY delivery), so
// the release at the terminal is always the last reference.
type fig9Op struct {
	waits *stats.Sample
	free  *[]*fig9Op
	req   *blockio.Request
	fn    func(error) // pre-bound op.done
}

func (op *fig9Op) done(err error) {
	req, waits := op.req, op.waits
	op.req = nil
	*op.free = append(*op.free, op)
	if err == nil {
		w := req.Latency() - req.PredictedService
		if w < 0 {
			w = 0
		}
		waits.Add(w)
	}
	req.Release()
}

func getFig9Op(free *[]*fig9Op, waits *stats.Sample) *fig9Op {
	if n := len(*free); n > 0 {
		op := (*free)[n-1]
		*free = (*free)[:n-1]
		return op
	}
	op := &fig9Op{waits: waits, free: free}
	op.fn = op.done
	return op
}

// diskVariant selects the fig9 disk-side discipline.
type diskVariant int

const (
	diskCFQ diskVariant = iota
	diskNaive
	diskDeadline
)

// fig9Disk replays a trace against one disk machine. Pass 1 (no SLO)
// measures the p95 wait for the deadline; pass 2 replays in shadow mode.
func fig9Disk(opt Fig9Options, tr *trace.Trace, variant diskVariant) (time.Duration, core.Accuracy) {
	tr = derateForDisk(tr, disk.DefaultConfig())
	waits := fig9DiskPass(opt, tr, 0, variant, nil)
	deadline := waits.Percentile(95)
	if deadline <= 0 {
		deadline = time.Millisecond
	}
	var acc core.Accuracy
	fig9DiskPass(opt, tr, deadline, variant, &acc)
	return deadline, acc
}

func fig9DiskPass(opt Fig9Options, tr *trace.Trace, deadline time.Duration,
	variant diskVariant, accOut *core.Accuracy) *stats.Sample {
	eng := sim.NewEngine()
	dcfg := disk.DefaultConfig()
	d := disk.New(eng, dcfg, sim.NewRNG(opt.Seed, "fig9-disk"))
	mopt := core.DefaultOptions()
	mopt.Shadow = true
	mopt.Thop = 0 // single machine, no failover hop (§7.6)
	var target core.Target
	var accuracy func() core.Accuracy
	switch variant {
	case diskNaive:
		mopt.Naive = true
		mopt.Calibrate = false
		nop := iosched.NewNoop(eng, d)
		m := core.NewMittNoop(eng, nop, sharedDiskProfile, mopt)
		target, accuracy = m, m.Accuracy
	case diskDeadline:
		dl := iosched.NewDeadline(eng, iosched.DefaultDeadlineConfig(), d)
		m := core.NewMittDeadline(eng, dl, sharedDiskProfile, mopt)
		target, accuracy = m, m.Accuracy
	default:
		cfq := iosched.NewCFQ(eng, iosched.DefaultCFQConfig(), d)
		m := core.NewMittCFQ(eng, cfq, sharedDiskProfile, mopt)
		target, accuracy = m, m.Accuracy
	}
	waits := stats.NewSample(len(tr.Records))
	var ids blockio.IDGen
	clamped := tr.Clamp(dcfg.CapacityBytes)
	var reqs blockio.Pool
	var opFree []*fig9Op
	rep := trace.NewReplayer(eng, clamped, func(rec trace.Record) {
		req := reqs.Get()
		req.ID, req.Op, req.Offset = ids.Next(), rec.Op, rec.Offset
		req.Size, req.Proc = rec.Size, 1
		if rec.Op == blockio.Read {
			req.Deadline = deadline
		}
		op := getFig9Op(&opFree, waits)
		op.req = req
		target.SubmitSLO(req, op.fn)
	})
	rep.Start()
	eng.Run()
	if accOut != nil {
		*accOut = accuracy()
	}
	return waits
}

// fig9SSD replays the trace, re-rated for flash, against one OpenChannel
// SSD with MittSSD in shadow mode.
func fig9SSD(opt Fig9Options, tr *trace.Trace) (time.Duration, core.Accuracy) {
	fast := tr.Rerate(opt.SSDRerate)
	waits := fig9SSDPass(opt, fast, 0, nil)
	deadline := waits.Percentile(95)
	if deadline <= 0 {
		deadline = 200 * time.Microsecond
	}
	var acc core.Accuracy
	fig9SSDPass(opt, fast, deadline, &acc)
	return deadline, acc
}

func fig9SSDPass(opt Fig9Options, tr *trace.Trace, deadline time.Duration,
	accOut *core.Accuracy) *stats.Sample {
	eng := sim.NewEngine()
	scfg := ssd.DefaultConfig()
	dev := ssd.New(eng, scfg)
	mopt := core.DefaultOptions()
	mopt.Shadow = true
	mopt.Thop = 0
	m := core.NewMittSSD(eng, dev, mopt)
	waits := stats.NewSample(len(tr.Records))
	var ids blockio.IDGen
	clamped := tr.Clamp(scfg.LogicalBytes())
	var reqs blockio.Pool
	var opFree []*fig9Op
	rep := trace.NewReplayer(eng, clamped, func(rec trace.Record) {
		req := reqs.Get()
		req.ID, req.Op, req.Offset = ids.Next(), rec.Op, rec.Offset
		req.Size, req.Proc = rec.Size, 1
		if rec.Op == blockio.Read {
			req.Deadline = deadline
		}
		op := getFig9Op(&opFree, waits)
		op.req = req
		m.SubmitSLO(req, op.fn)
	})
	rep.Start()
	eng.Run()
	if accOut != nil {
		*accOut = m.Accuracy()
	}
	return waits
}
