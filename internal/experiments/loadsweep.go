package experiments

import (
	"fmt"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/metrics"
	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// defaultSweepRates are the offered-load multipliers (× measured saturation)
// the sweep visits when Options.Rates is empty: well under the knee, at the
// knee, and past it, so the tables show the whole hockey stick.
var defaultSweepRates = []float64{0.2, 0.5, 0.8, 0.95, 1.2, 1.5}

// SweepPoint is one (path, strategy, offered-rate) cell of the loadsweep
// matrix — the machine-readable twin of the rendered tables, dumped by
// mittbench -sweep-json.
type SweepPoint struct {
	// Path is "get" or "put".
	Path string `json:"path"`
	// Strategy is Base, AppTO, Hedged, or MittOS.
	Strategy string `json:"strategy"`
	// RateMult is the offered-load multiplier (× measured saturation).
	RateMult float64 `json:"rate_mult"`
	// OfferedPerSec is the aggregate target arrival rate.
	OfferedPerSec float64 `json:"offered_per_sec"`
	// DonePerSec is completed user requests over the measured window.
	DonePerSec float64 `json:"done_per_sec"`
	// GoodputPerSec counts only completions at or under the deadline.
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// AttainPct is the fraction of finished requests meeting the SLO.
	AttainPct float64 `json:"attain_pct"`
	// P50Ns/P95Ns/P99Ns are user-latency percentiles in nanoseconds.
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
	// InflightHWM is the high-water mark of concurrently outstanding user
	// requests across the leg's client fleet.
	InflightHWM int `json:"inflight_hwm"`
	// Busy counts fast EBUSY refusals the strategy heard (MittOS failovers
	// on the read path, rejected put copies on the write path).
	Busy uint64 `json:"busy"`
	// Wasted counts IOs/durable writes executed past their usefulness
	// (abandoned timeout attempts, losing hedges, post-verdict put copies).
	Wasted uint64 `json:"wasted"`
	// Errors counts failed user requests; Finished counts completed ones.
	Errors   int `json:"errors"`
	Finished int `json:"finished"`
}

// sweepStratDiag pulls the overload diagnostics off a read strategy.
func sweepStratDiag(s cluster.Strategy) (busy, wasted uint64) {
	switch t := s.(type) {
	case *cluster.TimeoutStrategy:
		return 0, t.WastedIOs
	case *cluster.HedgedStrategy:
		return 0, t.WastedIOs
	case *cluster.MittOSStrategy:
		// No crashes in this experiment, so every failover is an EBUSY
		// fast reject.
		return t.Failovers, 0
	}
	return 0, 0
}

// sweepOut is one sweep leg's harvest.
type sweepOut struct {
	sample      *stats.Sample
	finished    int
	errors      int
	met, missed int
	inflightHWM int
	busy        uint64
	wasted      uint64
	snap        *metrics.Snapshot
}

// startSweepClients launches opt.Clients clients under an explicit loop
// config, all sharing one in-flight gauge. A non-nil put strategy makes the
// clients write-only (the workload config must then draw only updates);
// otherwise they are read-only and draw keys via NextKey. Streams are salted
// per leg so every (strategy, rate) cell sees an identical workload.
func (f *fleet) startSweepClients(opt Options, ccfg cluster.ClientConfig,
	wcfg ycsb.Config, strat cluster.Strategy, ps cluster.PutStrategy,
	salt string) ([]*cluster.Client, *cluster.InflightGauge) {
	gauge := &cluster.InflightGauge{}
	ccfg.Inflight = gauge
	if f.arena != nil {
		ccfg.Bufs = f.arena.bufs
	}
	var clients []*cluster.Client
	for i := 0; i < opt.Clients; i++ {
		if f.metrics != nil {
			// Client-side verdicts have no home node; spread them round-
			// robin so fleet totals are right and no counter hot-spots.
			ccfg.Rec = f.metrics.Node(i % opt.Nodes)
		}
		wl := ycsb.New(wcfg, sim.NewRNG(opt.Seed, fmt.Sprintf("%s-wl-%d", salt, i)))
		cl := cluster.NewClient(f.eng, ccfg, strat, wl, sim.NewRNG(opt.Seed, fmt.Sprintf("%s-cl-%d", salt, i)))
		if ps != nil {
			cl.SetPutStrategy(ps, false)
		}
		cl.Start()
		clients = append(clients, cl)
	}
	if f.arena != nil {
		f.arena.adoptClients(clients)
	}
	return clients, gauge
}

// putOnlyConfig is the write-path sweep workload: every op is an update of
// an existing key, zipfian like the YCSB mixes.
func putOnlyConfig(keys int64) ycsb.Config {
	cfg := ycsb.DefaultConfig(keys)
	cfg.ReadFraction = 0
	cfg.InsertFraction = 0
	cfg.Dist = ycsb.Zipfian
	return cfg
}

// sweepDrain is how long a sweep leg keeps the engine running after the
// clients stop. It is deliberately bounded: requests still queued when it
// expires never finish, so past saturation done/s plateaus at capacity
// instead of crediting an arbitrarily long tail.
const sweepDrain = 10 * time.Second

// LoadSweep sweeps offered load from well under to past measured saturation
// across the full read and write strategy matrices — the hockey-stick view
// of the paper's claim that fast rejection keeps tails bounded as load
// approaches saturation. Calibration first measures the per-path p95 knobs
// (deadline/timeout/hedge trigger, §7.2) and the fleet's saturation
// throughput (closed-loop Base clients with near-zero think time); the
// sweep then offers each rate multiple through open-loop Poisson clients
// and reports throughput, tail latencies, SLO attainment, goodput, and
// overload diagnostics per (strategy, rate) cell.
func LoadSweep(opt Options) *Result {
	res := &Result{ID: "loadsweep", Title: "offered-load sweep: SLO attainment and goodput vs saturation (§7.2, §7.8.6)"}

	rates := opt.Rates
	if len(rates) == 0 {
		rates = defaultSweepRates
	}

	// Stage 1: calibration. Three independent legs — the p95 knob run (the
	// noisy Base baseline every strategy's deadline/timeout/hedge comes
	// from) and one closed-loop saturation probe per path. The saturation
	// probes drive ~3 outstanding requests per node with near-zero think
	// time: the sustained completion rate is the knee the sweep's rate
	// multipliers are anchored to.
	var getP95, putP95 time.Duration
	var satGet, satPut float64
	satOpt := opt
	satOpt.Clients = 3 * opt.Nodes
	satCfg := cluster.ClientConfig{
		Interval:    time.Microsecond,
		ScaleFactor: 1,
		Closed:      true,
		ExpectedOps: int(opt.Duration / (2 * time.Millisecond)),
	}
	satRate := func(clients []*cluster.Client, d time.Duration) float64 {
		finished := 0
		for _, cl := range clients {
			finished += cl.Finished()
		}
		return float64(finished) / d.Seconds()
	}
	runLegs(opt.Workers, legs{
		func(a *legArena) {
			f := a.newFleet(opt, fleetDisk, false, "lsw-knobs")
			f.addEC2DiskNoise(opt)
			strat := &cluster.BaseStrategy{C: f.c}
			ps := &cluster.BasePut{C: f.c}
			clients := f.startMixedClients(opt, strat, ps, ycsbMixWorkloads[0].config(opt.Keys), false)
			f.eng.RunFor(opt.Duration)
			for _, cl := range clients {
				cl.Stop()
			}
			f.stopNoise()
			f.eng.RunFor(5 * time.Second)
			io, _ := collectClients(clients)
			puts := collectPuts(clients)
			getP95 = io.Percentile(95)
			putP95 = puts.Percentile(95)
		},
		func(a *legArena) {
			f := a.newFleet(satOpt, fleetDisk, false, "lsw-satget")
			f.addEC2DiskNoise(satOpt)
			clients, _ := f.startSweepClients(satOpt, satCfg,
				ycsb.DefaultConfig(opt.Keys), &cluster.BaseStrategy{C: f.c}, nil, "lsw-satget")
			f.eng.RunFor(opt.Duration)
			for _, cl := range clients {
				cl.Stop()
			}
			f.stopNoise()
			f.eng.RunFor(5 * time.Second)
			satGet = satRate(clients, opt.Duration)
		},
		func(a *legArena) {
			f := a.newFleet(satOpt, fleetDisk, false, "lsw-satput")
			f.addEC2DiskNoise(satOpt)
			clients, _ := f.startSweepClients(satOpt, satCfg,
				putOnlyConfig(opt.Keys), &cluster.BaseStrategy{C: f.c},
				&cluster.BasePut{C: f.c}, "lsw-satput")
			f.eng.RunFor(opt.Duration)
			for _, cl := range clients {
				cl.Stop()
			}
			f.stopNoise()
			f.eng.RunFor(5 * time.Second)
			satPut = satRate(clients, opt.Duration)
		},
	})
	// The user-level SLO the attainment columns count against is 2× the
	// OS-level deadline: the paper's guidance (§4) is to hand the OS a
	// fraction of the end-to-end budget so a rejected request has headroom
	// for a failover round before the user notices.
	getSLO, putSLO := 2*getP95, 2*putP95
	res.Notes = append(res.Notes, fmt.Sprintf(
		"knobs from noisy Base baseline: get p95 = %v, put p95 = %v (deadline, timeout, and hedge trigger per path); "+
			"user SLO = 2× the deadline (§4: leave failover headroom inside the user budget)",
		getP95, putP95))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"measured saturation (closed loop, %d clients, ~zero think): gets %.0f ops/s, durable puts %.0f ops/s; offered load = rate × saturation over %d open-loop Poisson clients",
		satOpt.Clients, satGet, satPut, opt.Clients))

	strategies := []struct {
		name string
		mitt bool
		mk   func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy)
	}{
		{"Base", false, func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy) {
			return &cluster.BaseStrategy{C: c}, &cluster.BasePut{C: c}
		}},
		{"AppTO", false, func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy) {
			return &cluster.TimeoutStrategy{C: c, TO: getP95},
				&cluster.TimeoutPut{C: c, TO: putP95}
		}},
		{"Hedged", false, func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy) {
			return &cluster.HedgedStrategy{C: c, HedgeAfter: getP95},
				&cluster.HedgedPut{C: c, HedgeAfter: putP95}
		}},
		{"MittOS", true, func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy) {
			return &cluster.MittOSStrategy{C: c, Deadline: getP95, UseWaitHint: true},
				&cluster.MittOSPut{C: c, Deadline: putP95, UseWaitHint: true}
		}},
	}
	paths := []struct {
		name string
		sat  *float64
		slo  *time.Duration
	}{
		{"get", &satGet, &getSLO},
		{"put", &satPut, &putSLO},
	}

	// Stage 2: the sweep proper — one hermetic leg per (path, strategy,
	// rate) cell, every cell facing the identical noise timeline and
	// workload streams for its leg salt.
	nCells := len(paths) * len(strategies) * len(rates)
	outs := make([]sweepOut, nCells)
	var ls legs
	idx := 0
	for pi, path := range paths {
		for _, st := range strategies {
			for _, m := range rates {
				i, pi, path, st, m := idx, pi, path, st, m
				idx++
				ls.add(func(a *legArena) {
					sat := *path.sat
					if sat <= 0 {
						return
					}
					salt := fmt.Sprintf("lsw-%s-%s-%.2f", path.name, st.name, m)
					f := a.newFleet(opt, fleetDisk, st.mitt, salt)
					f.addEC2DiskNoise(opt)
					strat, ps := st.mk(f.c)
					// Split the aggregate offered rate evenly across the
					// client fleet; superposed Poisson arrivals are again
					// Poisson at the aggregate rate.
					iv := time.Duration(float64(opt.Clients) / (m * sat) * float64(time.Second))
					if iv <= 0 {
						iv = time.Nanosecond
					}
					ccfg := cluster.ClientConfig{
						Interval:    iv,
						Arrival:     cluster.ArrivalPoisson,
						ScaleFactor: 1,
						SLO:         *path.slo,
						ExpectedOps: int(opt.Duration/iv) + 1,
					}
					wcfg := ycsb.DefaultConfig(opt.Keys)
					if pi == 1 {
						wcfg = putOnlyConfig(opt.Keys)
					} else {
						ps = nil
					}
					clients, gauge := f.startSweepClients(opt, ccfg, wcfg, strat, ps, salt)
					f.eng.RunFor(opt.Duration)
					for _, cl := range clients {
						cl.Stop()
					}
					f.stopNoise()
					f.eng.RunFor(sweepDrain)
					_, user := collectClients(clients)
					o := sweepOut{sample: user, inflightHWM: gauge.Max}
					for _, cl := range clients {
						o.finished += cl.Finished()
						o.errors += cl.Errors()
						o.met += cl.SLOMet()
						o.missed += cl.SLOMissed()
					}
					if pi == 1 {
						pc := putCounters(ps)
						o.busy, o.wasted = pc.Busy, pc.WastedWrites
					} else {
						o.busy, o.wasted = sweepStratDiag(strat)
					}
					o.snap = f.snapshot("loadsweep/" + path.name + "/" + st.name + fmt.Sprintf("/%.2fx", m))
					outs[i] = o
				})
			}
		}
	}
	runLegs(opt.Workers, ls)

	// The headline comparison rate: the highest multiplier still under
	// saturation (the knee's near side), where fast rejection should win
	// without the excuse that the system was overloaded anyway.
	knee := 0.0
	for _, m := range rates {
		if m < 1.0 && m > knee {
			knee = m
		}
	}
	if knee == 0 {
		knee = rates[len(rates)-1]
	}

	idx = 0
	for _, path := range paths {
		tb := &stats.Table{Header: []string{"strategy", "rate", "offered/s", "done/s",
			"goodput/s", "attain", "p50", "p95", "p99", "maxinfl", "busy", "wasted", "errs"}}
		for _, st := range strategies {
			for _, m := range rates {
				o := outs[idx]
				idx++
				offered := m * *path.sat
				attain := 0.0
				if n := o.met + o.missed; n > 0 {
					attain = 100 * float64(o.met) / float64(n)
				}
				tb.AddRow(st.name,
					fmt.Sprintf("%.2fx", m),
					fmt.Sprintf("%.0f", offered),
					fmt.Sprintf("%.0f", float64(o.finished)/opt.Duration.Seconds()),
					fmt.Sprintf("%.0f", float64(o.met)/opt.Duration.Seconds()),
					stats.FormatPct(attain),
					stats.FormatDuration(o.sample.Percentile(50)),
					stats.FormatDuration(o.sample.Percentile(95)),
					stats.FormatDuration(o.sample.Percentile(99)),
					fmt.Sprint(o.inflightHWM),
					fmt.Sprint(o.busy),
					fmt.Sprint(o.wasted),
					fmt.Sprint(o.errors),
				)
				if m == knee {
					res.Series = append(res.Series, Series{
						Name:   fmt.Sprintf("%s/%s@%.2fx", path.name, st.name, m),
						Sample: o.sample,
					})
				}
				if o.snap != nil {
					res.Metrics = append(res.Metrics, o.snap)
				}
				res.Sweep = append(res.Sweep, SweepPoint{
					Path:          path.name,
					Strategy:      st.name,
					RateMult:      m,
					OfferedPerSec: offered,
					DonePerSec:    float64(o.finished) / opt.Duration.Seconds(),
					GoodputPerSec: float64(o.met) / opt.Duration.Seconds(),
					AttainPct:     attain,
					P50Ns:         int64(o.sample.Percentile(50)),
					P95Ns:         int64(o.sample.Percentile(95)),
					P99Ns:         int64(o.sample.Percentile(99)),
					InflightHWM:   o.inflightHWM,
					Busy:          o.busy,
					Wasted:        o.wasted,
					Errors:        o.errors,
					Finished:      o.finished,
				})
			}
		}
		res.Tables = append(res.Tables, tb)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"tables: gets then durable puts; attain = %% of finished requests at or under the per-path user SLO, "+
			"goodput = SLO-met completions per second, maxinfl = in-flight high-water mark, "+
			"busy = fast EBUSY rejections heard, wasted = IOs/writes executed past usefulness; "+
			"done/s counts completions within the run + %v drain, so past saturation it plateaus at capacity", sweepDrain))
	return res
}
