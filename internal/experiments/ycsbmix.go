package experiments

import (
	"fmt"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/metrics"
	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// ycsbMixWorkload is one YCSB mix the experiment drives: the canonical A
// (update-heavy), B (read-mostly), and F (read-modify-write) shapes, all
// zipfian like the original benchmark.
type ycsbMixWorkload struct {
	name         string
	readFraction float64
	rmw          bool
}

var ycsbMixWorkloads = []ycsbMixWorkload{
	{name: "A", readFraction: 0.5},
	{name: "B", readFraction: 0.95},
	{name: "F", readFraction: 0.5, rmw: true},
}

func (w ycsbMixWorkload) config(keys int64) ycsb.Config {
	cfg := ycsb.DefaultConfig(keys)
	cfg.ReadFraction = w.readFraction
	cfg.Dist = ycsb.Zipfian
	cfg.InsertFraction = 0 // A/B/F writes are updates of existing keys
	return cfg
}

// putCounters reaches a put strategy's embedded accounting.
func putCounters(ps cluster.PutStrategy) *cluster.PutCounters {
	switch t := ps.(type) {
	case *cluster.BasePut:
		return &t.PutCounters
	case *cluster.TimeoutPut:
		return &t.PutCounters
	case *cluster.HedgedPut:
		return &t.PutCounters
	case *cluster.MittOSPut:
		return &t.PutCounters
	}
	return nil
}

// startMixedClients launches opt.Clients mixed read/write YCSB clients: the
// workload mix decides per op whether the read strategy or the put strategy
// fires (rmw chains both). Streams are salted "ymix" so the mixes are
// identical across every strategy leg but uncorrelated with the read-only
// experiments.
func (f *fleet) startMixedClients(opt Options, strat cluster.Strategy,
	ps cluster.PutStrategy, wcfg ycsb.Config, rmw bool) []*cluster.Client {
	ccfg := cluster.DefaultClientConfig()
	ccfg.Interval = opt.Interval
	ccfg.ScaleFactor = 1
	if opt.Interval > 0 {
		ccfg.ExpectedOps = int(opt.Duration/opt.Interval) + 1
	}
	if f.arena != nil {
		ccfg.Bufs = f.arena.bufs
	}
	var clients []*cluster.Client
	for i := 0; i < opt.Clients; i++ {
		wl := ycsb.New(wcfg, sim.NewRNG(opt.Seed, fmt.Sprintf("ymix-wl-%d", i)))
		cl := cluster.NewClient(f.eng, ccfg, strat, wl, sim.NewRNG(opt.Seed, fmt.Sprintf("ymix-cl-%d", i)))
		cl.SetPutStrategy(ps, rmw)
		cl.Start()
		clients = append(clients, cl)
	}
	if f.arena != nil {
		f.arena.adoptClients(clients)
	}
	return clients
}

// collectPuts merges the clients' put samples, pre-sized to the exact total.
func collectPuts(clients []*cluster.Client) *stats.Sample {
	n := 0
	for _, cl := range clients {
		n += cl.PutLatencies.N()
	}
	out := stats.NewSample(n)
	for _, cl := range clients {
		out.Merge(cl.PutLatencies)
	}
	return out
}

// YCSBMix drives YCSB A/B/F read/write mixes through the full read+write
// strategy matrix under EC2 disk noise: every get goes through the read
// strategy, every put through its write-side mirror (quorum-replicated,
// W = majority), and MittOS legs carry the deadline SLO on both paths. The
// put-side comparison is the experiment's point: a contended replica holds
// Base's quorum hostage for the full queue wait, AppTO/Hedged pay for ring
// handoffs with duplicated durable writes, while MittOSPut hears EBUSY from
// the WAL admission in one RTT and reassembles the quorum elsewhere.
func YCSBMix(opt Options) *Result {
	res := &Result{ID: "ycsbmix", Title: "YCSB A/B/F mixes: SLO-aware writes vs Base/AppTO/Hedged (§5, §7.2)"}

	// Stage 1: a noisy Base/BasePut workload-A run sets the knobs — read
	// deadline/timeout/hedge = get p95, write deadline/timeout/hedge =
	// put p95 (the §7.2 "use the p95 latency" rule applied per path).
	var getP95, putP95 time.Duration
	runLegs(opt.Workers, legs{func(a *legArena) {
		f := a.newFleet(opt, fleetDisk, false, "ymix-baseline")
		f.addEC2DiskNoise(opt)
		strat := &cluster.BaseStrategy{C: f.c}
		ps := &cluster.BasePut{C: f.c}
		clients := f.startMixedClients(opt, strat, ps, ycsbMixWorkloads[0].config(opt.Keys), false)
		f.eng.RunFor(opt.Duration)
		for _, cl := range clients {
			cl.Stop()
		}
		f.stopNoise()
		f.eng.RunFor(5 * time.Second)
		io, _ := collectClients(clients)
		puts := collectPuts(clients)
		getP95 = io.Percentile(95)
		putP95 = puts.Percentile(95)
	}})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"knobs from noisy Base baseline: get p95 = %v, put p95 = %v", getP95, putP95))

	strategies := []struct {
		name string
		mitt bool
		mk   func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy)
	}{
		{"Base", false, func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy) {
			return &cluster.BaseStrategy{C: c}, &cluster.BasePut{C: c}
		}},
		{"AppTO", false, func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy) {
			return &cluster.TimeoutStrategy{C: c, TO: getP95},
				&cluster.TimeoutPut{C: c, TO: putP95}
		}},
		{"Hedged", false, func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy) {
			return &cluster.HedgedStrategy{C: c, HedgeAfter: getP95},
				&cluster.HedgedPut{C: c, HedgeAfter: putP95}
		}},
		{"MittOS", true, func(c *cluster.Cluster) (cluster.Strategy, cluster.PutStrategy) {
			return &cluster.MittOSStrategy{C: c, Deadline: getP95, UseWaitHint: true},
				&cluster.MittOSPut{C: c, Deadline: putP95, UseWaitHint: true}
		}},
	}

	type legOut struct {
		io, puts *stats.Sample
		finished int
		errors   int
		counters cluster.PutCounters
		snap     *metrics.Snapshot
	}
	nLegs := len(ycsbMixWorkloads) * len(strategies)
	outs := make([]legOut, nLegs)
	var ls legs
	for wi, wl := range ycsbMixWorkloads {
		for si, st := range strategies {
			i, wl, st := wi*len(strategies)+si, wl, st
			ls.add(func(a *legArena) {
				f := a.newFleet(opt, fleetDisk, st.mitt, "ymix-"+wl.name+"-"+st.name)
				f.addEC2DiskNoise(opt)
				strat, ps := st.mk(f.c)
				clients := f.startMixedClients(opt, strat, ps, wl.config(opt.Keys), wl.rmw)
				f.eng.RunFor(opt.Duration)
				for _, cl := range clients {
					cl.Stop()
				}
				f.stopNoise()
				f.eng.RunFor(5 * time.Second) // drain in-flight quorums
				io, _ := collectClients(clients)
				o := legOut{io: io, puts: collectPuts(clients)}
				if pc := putCounters(ps); pc != nil {
					o.counters = *pc
				}
				for _, cl := range clients {
					o.finished += cl.Finished()
					o.errors += cl.Errors()
				}
				o.snap = f.snapshot("ycsbmix/" + wl.name + "/" + st.name)
				outs[i] = o
			})
		}
	}
	runLegs(opt.Workers, ls)

	for wi, wl := range ycsbMixWorkloads {
		tb := &stats.Table{Header: []string{"strategy", "finished", "errors", "err%",
			"get p95", "get p99", "put p95", "put p99", "copies", "wasted wr"}}
		for si, st := range strategies {
			o := outs[wi*len(strategies)+si]
			res.Series = append(res.Series, Series{Name: wl.name + "/" + st.name + " put", Sample: o.puts})
			errPct := 0.0
			if o.finished > 0 {
				errPct = 100 * float64(o.errors) / float64(o.finished)
			}
			tb.AddRow(st.name,
				fmt.Sprint(o.finished),
				fmt.Sprint(o.errors),
				fmt.Sprintf("%.2f%%", errPct),
				stats.FormatDuration(o.io.Percentile(95)),
				stats.FormatDuration(o.io.Percentile(99)),
				stats.FormatDuration(o.puts.Percentile(95)),
				stats.FormatDuration(o.puts.Percentile(99)),
				fmt.Sprint(o.counters.CopiesSent),
				fmt.Sprint(o.counters.WastedWrites),
			)
			if o.snap != nil {
				res.Metrics = append(res.Metrics, o.snap)
			}
		}
		res.Tables = append(res.Tables, tb)
	}
	res.Notes = append(res.Notes,
		"tables: one per YCSB mix (A update-heavy, B read-mostly, F read-modify-write); "+
			"copies = replica put copies sent, wasted wr = extra copies durably applied after the quorum verdict")
	return res
}
