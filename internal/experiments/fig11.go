package experiments

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/cluster"
	"mittos/internal/sim"
	"mittos/internal/stats"
	"mittos/internal/trace"
)

// Fig11 reproduces Figure 11: MittCFQ vs Hedged vs Base when the noisy
// neighbors are real workloads — filebench-like fileserver/varmail/
// webserver mixes and Hadoop batch jobs — colocated on different nodes at
// different intensities (§7.8.1). Panel (b) is the per-percentile
// reduction of MittCFQ vs Hedged, which the paper shows going negative
// above p99 (the 3rd-retry pathology).
func Fig11(opt Options) *Result {
	res := &Result{ID: "fig11", Title: "Macrobenchmark + production workload mix (§7.8.1)"}

	// Stage 1: baseline under the mix sets the knobs.
	var baseIO *stats.Sample
	runLegs(opt.Workers, legs{func(a *legArena) {
		fb := a.newFleet(opt, fleetDisk, false, "fig11-base")
		addWorkloadMix(fb, opt)
		baseIO, _ = fb.runClients(opt, &cluster.BaseStrategy{C: fb.c}, 1)
	}})
	p95 := baseIO.Percentile(95)
	res.Series = append(res.Series, Series{Name: "Base", Sample: baseIO})
	res.Notes = append(res.Notes, fmt.Sprintf("deadline/hedge trigger = Base p95 = %v", p95))

	// Stage 2: Hedged and MittCFQ fleets are independent given p95.
	var hedged, mitt *stats.Sample
	runLegs(opt.Workers, legs{
		func(a *legArena) {
			fh := a.newFleet(opt, fleetDisk, false, "fig11-hedged")
			addWorkloadMix(fh, opt)
			hedged, _ = fh.runClients(opt, &cluster.HedgedStrategy{C: fh.c, HedgeAfter: p95}, 1)
		},
		func(a *legArena) {
			fm := a.newFleet(opt, fleetDisk, true, "fig11-mitt")
			addWorkloadMix(fm, opt)
			mitt, _ = fm.runClients(opt, &cluster.MittOSStrategy{C: fm.c, Deadline: p95}, 1)
		},
	})
	res.Series = append(res.Series, Series{Name: "Hedged", Sample: hedged})
	res.Series = append(res.Series, Series{Name: "MittCFQ", Sample: mitt})

	// Panel (b): reduction per percentile.
	tb := &stats.Table{Header: []string{"percentile", "reduction vs Hedged"}}
	for _, p := range []float64{50, 75, 90, 95, 99, 99.5} {
		tb.AddRow(fmt.Sprintf("p%g", p),
			stats.FormatPct(stats.Reduction(mitt.Percentile(p), hedged.Percentile(p))))
	}
	res.Tables = append(res.Tables, tb)
	return res
}

// addWorkloadMix replays a different neighbor workload on each node, cycling
// through four profiles at varied intensity — "filebench's fileserver,
// varmail, and webserver macrobenchmarks on different nodes (creating
// different levels of noise) and the first 50 Hadoop jobs" (§7.8.1). The
// synthetic stand-ins: DTRS≈fileserver (large sequential), EXCH≈varmail
// (small fsync-heavy), DAPPS≈webserver (read-mostly), LMBE≈Hadoop batch.
func addWorkloadMix(f *fleet, opt Options) {
	names := []string{"DTRS", "EXCH", "DAPPS", "LMBE"}
	for i, n := range f.c.Nodes {
		prof, _ := trace.ProfileByName(names[i%len(names)], 500<<30)
		// Vary intensity across nodes: every third node runs hot.
		switch i % 3 {
		case 0:
			prof.MeanIOPS *= 0.7
		case 1:
			prof.MeanIOPS *= 0.3
		case 2:
			prof.MeanIOPS *= 0.1
		}
		tr := trace.Generate(prof, opt.Duration+5*time.Second,
			sim.NewRNG(opt.Seed, fmt.Sprintf("fig11-%d", i)))
		tr = derateForDisk(tr, f.c.Nodes[i].Disk.Config())
		sink := n.NoiseSink()
		var ids blockio.IDGen
		reqs := &blockio.Pool{}
		rep := trace.NewReplayer(f.eng, tr, func(rec trace.Record) {
			req := reqs.Get()
			req.ID, req.Op, req.Offset, req.Size = ids.Next(), rec.Op, rec.Offset, rec.Size
			req.Proc, req.Class, req.Priority = 800+i, blockio.ClassBestEffort, 5
			req.AutoFree = true // recycled by the block-layer boundary
			sink.Submit(req)
		})
		rep.Start()
	}
}
