package experiments

import (
	"time"

	"mittos/internal/blockio"
	"mittos/internal/cluster"
	"mittos/internal/metrics"
	"mittos/internal/noise"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

// Fig4Options shape the §7.1 microbenchmarks.
type Fig4Options struct {
	Seed     int64
	Duration time.Duration
	Interval time.Duration
	Keys     int64
	// Workers bounds the leg worker pool (0 = one per CPU); see Options.
	Workers int
	// Metrics/TraceIOs mirror Options: per-leg observability snapshots
	// attached to the Result, without changing its rendered output.
	Metrics  bool
	TraceIOs int
}

// DefaultFig4Options mirror §7.1: a 3-node cluster, one noisy replica, all
// gets directed at the noisy node first.
func DefaultFig4Options() Fig4Options {
	return Fig4Options{Seed: 1, Duration: 30 * time.Second, Interval: 30 * time.Millisecond, Keys: 20000}
}

// QuickFig4Options shrink the run for tests/benches.
func QuickFig4Options() Fig4Options {
	o := DefaultFig4Options()
	o.Duration = 8 * time.Second
	return o
}

// Fig4 reproduces Figure 4: the four microbenchmarks showing each Mitt
// layer detecting contention and letting the store fail over instantly:
// (a) MittCFQ with low-priority noise, (b) MittCFQ with high-priority
// noise, (c) MittSSD behind a writer, (d) MittCache with evicted pages.
func Fig4(opt Fig4Options) *Result {
	res := &Result{ID: "fig4", Title: "Microbenchmarks: NoNoise vs Base vs MittOS (§7.1)"}
	panels := []struct {
		name     string
		kind     fleetKind
		deadline time.Duration
		noise    func(f *fleet, node int)
	}{
		{
			// (a) 4 threads of 4KB random reads at lower priority than the
			// store.
			name: "CFQ-LowPrioNoise", kind: fleetDisk, deadline: 20 * time.Millisecond,
			noise: func(f *fleet, node int) {
				st := noise.NewSteady(f.eng, f.c.Nodes[node].NoiseSink(),
					sim.NewRNG(opt.Seed, "fig4a-noise"), blockio.Read, 4096, 4,
					blockio.ClassBestEffort, 6, 99, 500<<30)
				st.Start()
			},
		},
		{
			// (b) the same noise at higher ionice priority (BE/0 vs the
			// store's BE/4 — pure RT class would starve BE entirely).
			name: "CFQ-HighPrioNoise", kind: fleetDisk, deadline: 20 * time.Millisecond,
			noise: func(f *fleet, node int) {
				st := noise.NewSteady(f.eng, f.c.Nodes[node].NoiseSink(),
					sim.NewRNG(opt.Seed, "fig4b-noise"), blockio.Read, 4096, 4,
					blockio.ClassBestEffort, 0, 99, 500<<30)
				st.Start()
			},
		},
		{
			// (c) a tenant writing a hot range on the SSD node: the writes
			// keep landing on the same 16 chips, so reads mapped there
			// queue behind 1–2ms programs (§4.3's motivating contention).
			name: "SSD-WriteNoise", kind: fleetSSD, deadline: time.Millisecond,
			noise: func(f *fleet, node int) {
				st := noise.NewSteady(f.eng, f.c.Nodes[node].NoiseSink(),
					sim.NewRNG(opt.Seed, "fig4c-noise"), blockio.Write, 256<<10, 2,
					blockio.ClassBestEffort, 4, 99, 512<<10)
				st.Start()
			},
		},
		{
			// (d) ~20% of the cached working set evicted (posix_fadvise).
			name: "Cache-Evict20", kind: fleetDiskCache, deadline: 200 * time.Microsecond,
			noise: func(f *fleet, node int) {
				n := f.c.Nodes[node]
				warmNodeCache(n, opt.Keys)
				evictFractionOfKeys(f, n, opt.Keys, 0.2, sim.NewRNG(opt.Seed, "fig4d-evict"))
			},
		},
	}

	// Each (panel, variant) pair is a hermetic leg: its own engine, fleet,
	// and noise, nothing shared. All twelve run on the worker pool; Series
	// are assembled in declaration order afterwards.
	variants := []string{"NoNoise", "Base", "MittOS"}
	samples := make([]*stats.Sample, len(panels)*len(variants))
	snaps := make([]*metrics.Snapshot, len(panels)*len(variants))
	var ls legs
	for pi, panel := range panels {
		for vi, variant := range variants {
			pi, vi, panel, variant := pi, vi, panel, variant
			ls.add(func(a *legArena) {
				fopt := Options{Seed: opt.Seed, Nodes: 3, Clients: 2,
					Duration: opt.Duration, Interval: opt.Interval, Keys: opt.Keys,
					Metrics: opt.Metrics, TraceIOs: opt.TraceIOs}
				f := a.newFleet(fopt, panel.kind, variant == "MittOS", panel.name+variant)
				// Warm caches on every node for the cache panel so the
				// non-noisy replicas serve from memory.
				if panel.kind == fleetDiskCache {
					for _, n := range f.c.Nodes {
						warmNodeCache(n, opt.Keys)
					}
				}
				noisyNode := 0
				if variant != "NoNoise" {
					panel.noise(f, noisyNode)
				}
				var strat cluster.Strategy
				if variant == "MittOS" {
					strat = &primaryFirstMitt{c: f.c, deadline: panel.deadline, primary: noisyNode}
				} else {
					strat = &primaryFirstBase{c: f.c, primary: noisyNode}
				}
				io, _ := f.runClients(fopt, strat, 1)
				samples[pi*len(variants)+vi] = io
				snaps[pi*len(variants)+vi] = f.snapshot("fig4/" + panel.name + "/" + variant)
			})
		}
	}
	runLegs(opt.Workers, ls)
	for pi, panel := range panels {
		for vi, variant := range variants {
			res.Series = append(res.Series, Series{
				Name: panel.name + "/" + variant, Sample: samples[pi*len(variants)+vi]})
			if s := snaps[pi*len(variants)+vi]; s != nil {
				res.Metrics = append(res.Metrics, s)
			}
		}
	}
	res.Notes = append(res.Notes,
		"all get()s are first directed at the noisy replica (§7.1)")
	res.Tables = append(res.Tables, fig4Summary(res))
	return res
}

// warmNodeCache loads every key's block into the node's page cache (§7.1:
// the working set starts fully cached).
func warmNodeCache(n *cluster.Node, keys int64) {
	for k := int64(0); k < keys; k++ {
		if off, ok := n.Store.KeyOffset(k); ok {
			n.Cache.Warm(off, 4096)
		}
	}
}

// evictFractionOfKeys throws away frac of the cached blocks on one node.
func evictFractionOfKeys(f *fleet, n *cluster.Node, keys int64, frac float64, rng *sim.RNG) {
	for k := int64(0); k < keys; k++ {
		if rng.Bool(frac) {
			if off, ok := n.Store.KeyOffset(k); ok {
				n.Cache.EvictRange(off, 4096)
			}
		}
	}
}

// primaryFirstBase always asks the designated (noisy) node first and waits.
type primaryFirstBase struct {
	c       *cluster.Cluster
	primary int
}

// Name implements cluster.Strategy.
func (s *primaryFirstBase) Name() string { return "Base" }

// Get implements cluster.Strategy.
func (s *primaryFirstBase) Get(key int64, onDone func(cluster.GetResult)) {
	start := s.c.Eng.Now()
	replicaCallOn(s.c, s.primary, key, 0, func(err error) {
		onDone(cluster.GetResult{Latency: s.c.Eng.Now().Sub(start), Tries: 1, Err: err})
	})
}

// primaryFirstMitt asks the noisy node with a deadline and fails over on
// EBUSY to the other replicas.
type primaryFirstMitt struct {
	c        *cluster.Cluster
	deadline time.Duration
	primary  int
}

// Name implements cluster.Strategy.
func (s *primaryFirstMitt) Name() string { return "MittOS" }

// Get implements cluster.Strategy.
func (s *primaryFirstMitt) Get(key int64, onDone func(cluster.GetResult)) {
	start := s.c.Eng.Now()
	order := []int{s.primary,
		(s.primary + 1) % len(s.c.Nodes), (s.primary + 2) % len(s.c.Nodes)}
	var attempt func(i int)
	attempt = func(i int) {
		deadline := s.deadline
		if i == len(order)-1 {
			deadline = 0
		}
		replicaCallOn(s.c, order[i], key, deadline, func(err error) {
			if err != nil && i+1 < len(order) {
				attempt(i + 1)
				return
			}
			onDone(cluster.GetResult{Latency: s.c.Eng.Now().Sub(start), Tries: i + 1, Err: err})
		})
	}
	attempt(0)
}

// replicaCallOn mirrors the cluster strategies' network plumbing for a
// fixed node, via the cluster's pooled call context.
func replicaCallOn(c *cluster.Cluster, node int, key int64, deadline time.Duration, onDone func(error)) {
	c.ReplicaCall(node, key, deadline, onDone)
}

// fig4Summary renders the per-panel p95/p99 deltas for EXPERIMENTS.md.
func fig4Summary(res *Result) *stats.Table {
	tb := &stats.Table{Header: []string{"panel", "NoNoise p95", "Base p95", "MittOS p95", "Base p99", "MittOS p99"}}
	for _, panel := range []string{"CFQ-LowPrioNoise", "CFQ-HighPrioNoise", "SSD-WriteNoise", "Cache-Evict20"} {
		row := []string{panel}
		for _, m := range []struct {
			variant string
			pct     float64
		}{{"NoNoise", 95}, {"Base", 95}, {"MittOS", 95}, {"Base", 99}, {"MittOS", 99}} {
			s := res.FindSeries(panel + "/" + m.variant)
			if s == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, stats.FormatDuration(s.Sample.Percentile(m.pct)))
		}
		tb.AddRow(row...)
	}
	return tb
}
