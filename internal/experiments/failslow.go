package experiments

import (
	"fmt"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/faults"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

// The cluster's fault adapter must satisfy the faults seam; checked here so
// neither package imports the other just for the assertion.
var _ faults.Injector = (*cluster.FaultAdapter)(nil)

// defaultFailslowSchedule is the composite degradation scenario, scaled to
// the run length d: a fail-slow device that also throws occasional EIOs
// (§8.1's "hardware degrades" case — the profile no longer matches
// reality), a fail-stop crash with a restart, a network brown-out, and a
// miscalibrated predictor (§7.6's accuracy hazard made structural).
func defaultFailslowSchedule(d time.Duration) *faults.Schedule {
	s := &faults.Schedule{}
	s.Add(faults.Event{Kind: faults.FailSlow, Node: 1, At: d / 5, For: 2 * d / 5, Factor: 8})
	s.Add(faults.Event{Kind: faults.IOErrors, Node: 1, At: d / 5, For: 2 * d / 5, Factor: 0.02})
	s.Add(faults.Event{Kind: faults.Crash, Node: 2, At: 2 * d / 5, For: d / 4})
	s.Add(faults.Event{Kind: faults.NetDegrade, At: 7 * d / 10, For: d / 10,
		Extra: 200 * time.Microsecond, Jitter: 50 * time.Microsecond})
	s.Add(faults.Event{Kind: faults.Miscalibrate, Node: 3, At: d / 2, For: 2 * d / 5,
		Extra: 2 * time.Millisecond})
	return s
}

// wastedIOs reads a strategy's wasted-IO counter, where it keeps one:
// abandoned, duplicated, or revoked-too-late IOs the cluster executed and
// threw away.
func wastedIOs(s cluster.Strategy) uint64 {
	switch t := s.(type) {
	case *cluster.TimeoutStrategy:
		return t.WastedIOs
	case *cluster.CloneStrategy:
		return t.WastedIOs
	case *cluster.HedgedStrategy:
		return t.WastedIOs
	case *cluster.TiedStrategy:
		return t.WastedIOs
	}
	return 0
}

// Failslow runs the full strategy matrix through a multi-fault degradation
// scenario and reports how gracefully each one degrades: per-strategy
// latency CDFs plus a table of tail latencies, user-visible errors, and
// wasted IOs. The schedule defaults to defaultFailslowSchedule scaled to
// the run length; Options.Faults overrides it with a parsed config string
// (the mittbench -faults flag).
func Failslow(opt Options) *Result {
	res := &Result{ID: "failslow", Title: "Graceful degradation under injected faults (§7.6, §8.1)"}

	sched := defaultFailslowSchedule(opt.Duration)
	if opt.Faults != "" {
		s, err := faults.ParseSchedule(opt.Faults)
		if err != nil {
			panic(fmt.Sprintf("failslow: bad fault schedule: %v", err))
		}
		sched = s
	}
	for _, e := range sched.Events {
		if e.Node >= opt.Nodes {
			panic(fmt.Sprintf("failslow: fault event targets node %d but the fleet has %d nodes",
				e.Node, opt.Nodes))
		}
	}
	res.Notes = append(res.Notes, "fault schedule: "+sched.String())

	// The quiet (fault-free, noise-free) baseline p95 sets the deadline and
	// timeout knobs; the faults themselves are this experiment's noise.
	p95, _ := baselineP95(opt, fleetDisk, false)
	res.Notes = append(res.Notes, fmt.Sprintf("deadline/timeout/hedge trigger = quiet-Base p95 = %v", p95))

	runs := []struct {
		name string
		mitt bool
		mk   func(c *cluster.Cluster) cluster.Strategy
	}{
		{"Base", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.BaseStrategy{C: c}
		}},
		{"AppTO", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.TimeoutStrategy{C: c, TO: p95}
		}},
		{"Clone", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.CloneStrategy{C: c, RNG: sim.NewRNG(opt.Seed, "clone")}
		}},
		{"Hedged", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.HedgedStrategy{C: c, HedgeAfter: p95}
		}},
		{"Tied", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.TiedStrategy{C: c, RNG: sim.NewRNG(opt.Seed, "tied")}
		}},
		{"Snitch", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.SnitchStrategy{C: c}
		}},
		{"C3", false, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.C3Strategy{C: c}
		}},
		{"MittOS", true, func(c *cluster.Cluster) cluster.Strategy {
			return &cluster.MittOSStrategy{C: c, Deadline: p95, UseWaitHint: true}
		}},
	}

	type legOut struct {
		io       *stats.Sample
		finished int
		errors   int
		wasted   uint64
	}
	outs := make([]legOut, len(runs))
	var ls legs
	for i, r := range runs {
		i, r := i, r
		ls.add(func(a *legArena) {
			f := a.newFleet(opt, fleetDisk, r.mitt, "failslow-"+r.name)
			ad := cluster.NewFaultAdapter(f.c, sim.NewRNG(opt.Seed, "faults-"+r.name))
			sched.Start(f.eng, ad)
			strat := r.mk(f.c)
			clients := f.startClients(opt, strat, 1)
			f.eng.RunFor(opt.Duration)
			for _, cl := range clients {
				cl.Stop()
			}
			f.eng.RunFor(5 * time.Second) // drain in-flight requests
			io, _ := collectClients(clients)
			o := legOut{io: io, wasted: wastedIOs(strat)}
			for _, cl := range clients {
				o.finished += cl.Finished()
				o.errors += cl.Errors()
			}
			outs[i] = o
		})
	}
	runLegs(opt.Workers, ls)

	tb := &stats.Table{Header: []string{"strategy", "finished", "errors", "err%", "wasted IOs", "p95", "p99"}}
	for i, r := range runs {
		o := outs[i]
		res.Series = append(res.Series, Series{Name: r.name, Sample: o.io})
		errPct := 0.0
		if o.finished > 0 {
			errPct = 100 * float64(o.errors) / float64(o.finished)
		}
		tb.AddRow(r.name,
			fmt.Sprint(o.finished),
			fmt.Sprint(o.errors),
			fmt.Sprintf("%.2f%%", errPct),
			fmt.Sprint(o.wasted),
			stats.FormatDuration(o.io.Percentile(95)),
			stats.FormatDuration(o.io.Percentile(99)),
		)
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"table: user-visible errors and wasted IOs per strategy under the fault scenario")
	return res
}
