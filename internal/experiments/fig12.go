package experiments

import (
	"fmt"
	"time"

	"mittos/internal/blockio"
	"mittos/internal/cluster"
	"mittos/internal/noise"
	"mittos/internal/sim"
	"mittos/internal/stats"
)

// Fig12 reproduces Figure 12: adaptive replica selection (C3) cannot react
// to sub-second burstiness (§7.8.3). C3 runs under four noise regimes —
// none, EC2-bursty, one-busy-two-free rotating every second, and rotating
// every five seconds — and only the slow rotation lets its latency feedback
// catch up. A MittOS run under the harshest regime is included for
// contrast.
func Fig12(opt Options) *Result {
	res := &Result{ID: "fig12", Title: "C3/snitching vs sub-second burstiness (§7.8.3)"}
	// The paper's scenario is literal: THREE replicas, one busy and two
	// free in a rotating manner (§7.8.3). A bigger fleet dilutes it.
	opt.Nodes = 3
	if opt.Clients > 3 {
		opt.Clients = 3
	}
	regimes := []struct {
		name  string
		noise func(f *fleet) func()
	}{
		{"NoBusy", func(f *fleet) func() { return func() {} }},
		{"Bursty", func(f *fleet) func() {
			f.addEC2DiskNoise(opt)
			return f.stopNoise
		}},
		{"1B2F-1sec", func(f *fleet) func() { return addRotating(f, opt, time.Second) }},
		{"1B2F-5sec", func(f *fleet) func() { return addRotating(f, opt, 5*time.Second) }},
	}
	// Stage 1: the four C3 regimes are independent legs.
	outs := make([]*stats.Sample, len(regimes))
	var ls legs
	for i, reg := range regimes {
		i, reg := i, reg
		ls.add(func(a *legArena) {
			f := a.newFleet(opt, fleetDisk, false, "fig12-"+reg.name)
			stop := reg.noise(f)
			strat := &cluster.C3Strategy{C: f.c}
			io, _ := f.runClients(opt, strat, 1)
			stop()
			outs[i] = io
		})
	}
	runLegs(opt.Workers, ls)
	for i, reg := range regimes {
		res.Series = append(res.Series, Series{Name: "C3/" + reg.name, Sample: outs[i]})
	}
	// Stage 2: the MittOS contrast run needs the NoBusy p95 from stage 1.
	p95 := time.Duration(0)
	if s := res.FindSeries("C3/NoBusy"); s != nil {
		p95 = s.Sample.Percentile(95)
	}
	if p95 <= 0 {
		p95 = 15 * time.Millisecond
	}
	var mitt *stats.Sample
	runLegs(opt.Workers, legs{func(a *legArena) {
		fm := a.newFleet(opt, fleetDisk, true, "fig12-mitt")
		stop := addRotating(fm, opt, time.Second)
		mitt, _ = fm.runClients(opt, &cluster.MittOSStrategy{C: fm.c, Deadline: p95}, 1)
		stop()
	}})
	res.Series = append(res.Series, Series{Name: "MittOS/1B2F-1sec", Sample: mitt})
	res.Notes = append(res.Notes, fmt.Sprintf("MittOS deadline = NoBusy p95 = %v", p95))
	return res
}

// addRotating attaches the 1-busy/(N−1)-free rotating severe contention.
func addRotating(f *fleet, opt Options, period time.Duration) func() {
	sinks := make([]blockio.Device, len(f.c.Nodes))
	for i, n := range f.c.Nodes {
		sinks[i] = n.NoiseSink()
	}
	rot := noise.NewRotating(f.eng, sinks, period, 6, 1<<20, 500<<30,
		sim.NewRNG(opt.Seed, "fig12-rot"))
	rot.Start()
	return rot.Stop
}
