// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §6, §7). Each experiment is a pure function of its
// options: the same seed produces byte-identical output. The experiment
// index lives in DESIGN.md; EXPERIMENTS.md records paper-vs-measured for
// each run.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"mittos/internal/cluster"
	"mittos/internal/core"
	"mittos/internal/disk"
	"mittos/internal/metrics"
	"mittos/internal/netsim"
	"mittos/internal/noise"
	"mittos/internal/sim"
	"mittos/internal/ssd"
	"mittos/internal/stats"
	"mittos/internal/ycsb"
)

// Options control experiment scale; defaults reproduce the paper's setup at
// simulation-friendly durations, and tests/benches shrink them further.
type Options struct {
	// Seed drives every RNG stream in the experiment.
	Seed int64
	// Nodes is the fleet size for macro experiments (paper: 20).
	Nodes int
	// Clients is the number of concurrent YCSB clients (paper: 20).
	Clients int
	// Duration is the measured virtual time per strategy run.
	Duration time.Duration
	// Interval is the per-client request period.
	Interval time.Duration
	// Keys is the KV keyspace per node.
	Keys int64
	// Workers bounds the worker pool the experiment's independent legs run
	// on. 0 (the default) means one worker per CPU; 1 forces the serial
	// reference schedule. Output is byte-identical for any value: legs are
	// hermetic and results are assembled in declaration order.
	Workers int
	// Metrics enables the per-layer metrics registry (and, for fig4/fig7,
	// per-leg snapshots attached to the Result). Off by default: the
	// simulation carries only a nil recorder pointer.
	Metrics bool
	// TraceIOs bounds per-IO span capture per fleet when Metrics is on:
	// 0 captures counters/histograms only, N > 0 the first N spans, and a
	// negative value every span.
	TraceIOs int
	// Faults overrides the failslow experiment's fault schedule with a
	// parsed config string (see faults.ParseSchedule; the mittbench
	// -faults flag). Empty means the experiment's built-in scenario.
	Faults string
	// Rates overrides the loadsweep experiment's offered-load multipliers
	// (× measured saturation; the mittbench -rates flag). Empty means the
	// built-in 0.2→1.5 sweep.
	Rates []float64
}

// DefaultOptions is the full-scale configuration.
func DefaultOptions() Options {
	return Options{
		Seed:     1,
		Nodes:    20,
		Clients:  20,
		Duration: 60 * time.Second,
		Interval: 15 * time.Millisecond,
		Keys:     100000,
	}
}

// QuickOptions is a reduced configuration for tests and benches.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Nodes = 9
	o.Clients = 6
	o.Duration = 10 * time.Second
	o.Interval = 10 * time.Millisecond // same ~67 IOPS/node as full scale
	o.Keys = 20000
	return o
}

// Series is one labelled latency distribution (a CDF line in a figure).
type Series struct {
	Name   string
	Sample *stats.Sample
}

// CDF returns the series' plotted points.
func (s Series) CDF(points int) []stats.CDFPoint { return s.Sample.CDF(points) }

// Result is a rendered experiment.
type Result struct {
	ID     string
	Title  string
	Series []Series
	Tables []*stats.Table
	Notes  []string
	// Metrics holds per-leg observability snapshots when the experiment ran
	// with Options.Metrics set (fig4 and fig7 attach them), in leg
	// declaration order. They are NOT part of String(): golden outputs stay
	// identical with metrics on or off.
	Metrics []*metrics.Snapshot
	// Sweep holds the loadsweep experiment's per-cell results (empty for
	// every other experiment) — the machine-readable twin of its tables,
	// dumped by mittbench -sweep-json. Like Metrics, it is NOT part of
	// String().
	Sweep []SweepPoint
}

// String renders the result in paper-style ASCII.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Series) > 0 {
		tb := &stats.Table{Header: []string{"series", "n", "avg", "p50", "p75", "p90", "p95", "p99", "max"}}
		for _, s := range r.Series {
			tb.AddRow(s.Name,
				fmt.Sprint(s.Sample.N()),
				stats.FormatDuration(s.Sample.Mean()),
				stats.FormatDuration(s.Sample.Percentile(50)),
				stats.FormatDuration(s.Sample.Percentile(75)),
				stats.FormatDuration(s.Sample.Percentile(90)),
				stats.FormatDuration(s.Sample.Percentile(95)),
				stats.FormatDuration(s.Sample.Percentile(99)),
				stats.FormatDuration(s.Sample.Max()),
			)
		}
		b.WriteString(tb.String())
	}
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	return b.String()
}

// Plot renders the result's series as an ASCII CDF chart (the shape of the
// paper's latency-CDF figures).
func (r *Result) Plot(width, height int) string {
	in := make([]struct {
		Name   string
		Sample *stats.Sample
	}, 0, len(r.Series))
	for _, s := range r.Series {
		in = append(in, struct {
			Name   string
			Sample *stats.Sample
		}{s.Name, s.Sample})
	}
	return stats.PlotCDFs(in, width, height)
}

// FindSeries returns the named series, or nil.
func (r *Result) FindSeries(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// sharedDiskProfile caches the (deterministic, seed-fixed) offline profile:
// the paper profiles its disk once and reuses the model everywhere.
var sharedDiskProfile = disk.ProfileTwin(disk.DefaultConfig(), 42,
	disk.ProfilerOptions{Buckets: 48, Tries: 8, ProbeSize: 4096})

// DiskProfile exposes the shared profile (examples reuse it).
func DiskProfile() *disk.Profile { return sharedDiskProfile }

// fleet bundles one engine + cluster + noise for a strategy run.
type fleet struct {
	eng     *sim.Engine
	net     *netsim.Network
	c       *cluster.Cluster
	noise   []*noise.Bursty
	metrics *metrics.Set // non-nil only when Options.Metrics is set
	arena   *legArena    // non-nil when the fleet draws from a leg arena
}

// snapshot captures the fleet's metrics under the leg label, or nil when
// metrics are off.
func (f *fleet) snapshot(leg string) *metrics.Snapshot {
	if f.metrics == nil {
		return nil
	}
	return f.metrics.Snapshot(leg)
}

// fleetKind selects the storage flavour of a fleet.
type fleetKind int

const (
	fleetDisk fleetKind = iota
	fleetDiskCache
	fleetSSD
)

// newFleet builds a fresh fleet on a cold heap. Each strategy run gets its
// own fleet with the same seed, so strategies face identical noise timelines
// — the paper's "apply EC2 noise distributions to our testbed" methodology
// (§7.2). Legs running under runLegs should prefer legArena.newFleet, which
// recycles the engine and every pooled resource between legs.
func newFleet(opt Options, kind fleetKind, mitt bool, seedSalt string) *fleet {
	return newFleetOn(nil, sim.NewEngine(), opt, kind, mitt, seedSalt)
}

// newFleetOn builds a fleet on an existing engine — used when several
// tiers must demonstrably co-exist in one deployment (§7.8.5) and by the
// arena path. A non-nil arena supplies the shared serve-context/request
// pools, the SSD device pool, and the sample-buffer pool, and registers the
// fleet for teardown at arena reset.
func newFleetOn(a *legArena, eng *sim.Engine, opt Options, kind fleetKind, mitt bool, seedSalt string) *fleet {
	root := sim.NewRNG(opt.Seed, "fleet-"+seedSalt)
	net := netsim.New(eng, netsim.DefaultConfig(), root.Fork("net"))
	var ms *metrics.Set
	if opt.Metrics {
		ms = metrics.New(eng, opt.Nodes, opt.TraceIOs)
	}
	tmpl := cluster.NodeConfig{
		MittOptions: core.DefaultOptions(),
		Mitt:        mitt,
		Keys:        opt.Keys,
		DiskProfile: sharedDiskProfile,
		Metrics:     ms,
	}
	if a != nil {
		tmpl.Pools = a.pools
		tmpl.SSDPool = a.ssds
	}
	switch kind {
	case fleetDisk:
		tmpl.Device = cluster.DeviceDisk
		tmpl.DiskConfig = disk.DefaultConfig()
		tmpl.UseCFQ = true
	case fleetDiskCache:
		tmpl.Device = cluster.DeviceDisk
		tmpl.DiskConfig = disk.DefaultConfig()
		tmpl.UseCFQ = true
		// Cache sized to hold the working set (the paper's 3.5GB-in-4GB
		// setup): keys × 4KB blocks, plus headroom.
		tmpl.CachePages = int(opt.Keys + opt.Keys/4)
		// The §5 MongoDB read path: addrcheck() + page faults (applies
		// when the Mitt layer is present).
		tmpl.Mmap = true
	case fleetSSD:
		tmpl.Device = cluster.DeviceSSD
		cfg := ssd.DefaultConfig()
		tmpl.SSDConfig = cfg
		if opt.Keys*4096 > cfg.LogicalBytes() {
			panic("experiments: keyspace exceeds SSD capacity")
		}
	}
	// NOTE: the node RNG stream is derived from opt.Seed only (not the
	// salt) so Mitt and non-Mitt fleets share device randomness.
	c := cluster.NewCluster(eng, net, opt.Nodes, 3, tmpl, sim.NewRNG(opt.Seed, "nodes"))
	f := &fleet{eng: eng, net: net, c: c, metrics: ms, arena: a}
	if a != nil {
		a.fleets = append(a.fleets, f)
	}
	return f
}

// addEC2DiskNoise attaches a per-node bursty neighbor calibrated per §6.
func (f *fleet) addEC2DiskNoise(opt Options) {
	for i, n := range f.c.Nodes {
		cfg := noise.DefaultDiskBursty(500<<30, 900+i)
		b := noise.NewBursty(f.eng, cfg, n.NoiseSink(), sim.NewRNG(opt.Seed, fmt.Sprintf("noise-%d", i)))
		b.Start()
		f.noise = append(f.noise, b)
	}
}

// addEC2SSDNoise attaches SSD write-burst neighbors.
func (f *fleet) addEC2SSDNoise(opt Options) {
	for i, n := range f.c.Nodes {
		space := n.SSD.Config().LogicalBytes() / 2
		cfg := noise.DefaultSSDBursty(space, 900+i)
		b := noise.NewBursty(f.eng, cfg, n.NoiseSink(), sim.NewRNG(opt.Seed, fmt.Sprintf("noise-%d", i)))
		b.Start()
		f.noise = append(f.noise, b)
	}
}

func (f *fleet) stopNoise() {
	for _, b := range f.noise {
		b.Stop()
	}
}

// startClients launches opt.Clients open-loop YCSB clients against the
// strategy and returns them (collection happens after the engine runs).
func (f *fleet) startClients(opt Options, strat cluster.Strategy, scaleFactor int) []*cluster.Client {
	ccfg := cluster.DefaultClientConfig()
	ccfg.Interval = opt.Interval
	ccfg.ScaleFactor = scaleFactor
	// Pre-size each client's samples to the leg's expected op count so
	// steady-state recording never grows a slice.
	if opt.Interval > 0 {
		ccfg.ExpectedOps = int(opt.Duration/opt.Interval) + 1
	}
	if f.arena != nil {
		ccfg.Bufs = f.arena.bufs
	}
	var clients []*cluster.Client
	for i := 0; i < opt.Clients; i++ {
		wl := ycsb.New(ycsb.DefaultConfig(opt.Keys), sim.NewRNG(opt.Seed, fmt.Sprintf("wl-%d", i)))
		cl := cluster.NewClient(f.eng, ccfg, strat, wl, sim.NewRNG(opt.Seed, fmt.Sprintf("cl-%d", i)))
		cl.Start()
		clients = append(clients, cl)
	}
	if f.arena != nil {
		f.arena.adoptClients(clients)
	}
	return clients
}

// collectClients merges the clients' samples, pre-sized to the exact total.
func collectClients(clients []*cluster.Client) (io, user *stats.Sample) {
	nIO, nUser := 0, 0
	for _, cl := range clients {
		nIO += cl.IOLatencies.N()
		nUser += cl.UserLatencies.N()
	}
	io = stats.NewSample(nIO)
	user = stats.NewSample(nUser)
	for _, cl := range clients {
		io.Merge(cl.IOLatencies)
		user.Merge(cl.UserLatencies)
	}
	return io, user
}

// runClients drives the strategy with opt.Clients open-loop YCSB clients
// for opt.Duration and returns (per-IO latencies, per-user-request
// latencies).
func (f *fleet) runClients(opt Options, strat cluster.Strategy, scaleFactor int) (io, user *stats.Sample) {
	clients := f.startClients(opt, strat, scaleFactor)
	f.eng.RunFor(opt.Duration)
	for _, cl := range clients {
		cl.Stop()
	}
	f.stopNoise()
	f.eng.RunFor(5 * time.Second) // drain in-flight requests
	return collectClients(clients)
}

// baselineP95 measures the Base strategy's p95 on a fresh fleet — the value
// the paper uses for deadlines, hedge triggers, and timeouts ("we will use
// 13ms, the p95 latency, for deadline and timeout values", §7.2). It is the
// first stage of every experiment that needs the knob: expressed as a
// single runLegs stage so the dependency on it is an explicit barrier.
func baselineP95(opt Options, kind fleetKind, withNoise bool) (time.Duration, *stats.Sample) {
	var io *stats.Sample
	runLegs(opt.Workers, legs{func(a *legArena) {
		f := a.newFleet(opt, kind, false, "baseline")
		if withNoise {
			switch kind {
			case fleetSSD:
				f.addEC2SSDNoise(opt)
			default:
				f.addEC2DiskNoise(opt)
			}
		}
		io, _ = f.runClients(opt, &cluster.BaseStrategy{C: f.c}, 1)
	}})
	return io.Percentile(95), io
}

// reductionTable renders the paper's %-latency-reduction bars: one row per
// comparison, columns Avg/p75/p90/p95/p99 (footnote 2 of §7.2).
func reductionTable(mitt *stats.Sample, others map[string]*stats.Sample) *stats.Table {
	tb := &stats.Table{Header: []string{"vs", "Avg", "p75", "p90", "p95", "p99"}}
	for _, name := range []string{"Hedged", "Clone", "AppTO", "Base"} {
		o, ok := others[name]
		if !ok {
			continue
		}
		row := stats.ReductionRow(mitt, o)
		cells := []string{name}
		for _, v := range row {
			cells = append(cells, stats.FormatPct(v))
		}
		tb.AddRow(cells...)
	}
	return tb
}
